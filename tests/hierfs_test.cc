// Tests for the hierarchical baseline file system.
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/hierfs/hierfs.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace hierfs {
namespace {

constexpr uint64_t kDev = 64 * 1024 * 1024;

class HierFsTest : public ::testing::Test {
 protected:
  HierFsTest() : dev_(std::make_shared<MemoryBlockDevice>(kDev)) {
    auto fs = HierFs::Create(dev_);
    EXPECT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  std::string ReadFile(const std::string& path) {
    auto ino = fs_->ResolvePath(path);
    EXPECT_TRUE(ino.ok()) << path;
    std::string out;
    EXPECT_TRUE(fs_->Read(*ino, 0, 1 << 20, &out).ok());
    return out;
  }

  std::shared_ptr<MemoryBlockDevice> dev_;
  std::unique_ptr<HierFs> fs_;
};

TEST_F(HierFsTest, RootResolves) {
  auto ino = fs_->ResolvePath("/");
  ASSERT_TRUE(ino.ok());
  EXPECT_EQ(*ino, kRootIno);
  auto st = fs_->Stat("/");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->is_dir());
}

TEST_F(HierFsTest, MkdirAndResolve) {
  ASSERT_TRUE(fs_->Mkdir("/home").ok());
  ASSERT_TRUE(fs_->Mkdir("/home/margo").ok());
  auto ino = fs_->ResolvePath("/home/margo");
  ASSERT_TRUE(ino.ok());
  auto st = fs_->StatIno(*ino);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->is_dir());
  EXPECT_TRUE(fs_->Mkdir("/home").IsAlreadyExists());
  EXPECT_TRUE(fs_->Mkdir("/nope/deep").IsNotFound());
}

TEST_F(HierFsTest, CreateWriteRead) {
  ASSERT_TRUE(fs_->Mkdir("/docs").ok());
  auto ino = fs_->CreateFile("/docs/paper.tex");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, "hierarchies forever").ok());
  EXPECT_EQ(ReadFile("/docs/paper.tex"), "hierarchies forever");
  auto st = fs_->Stat("/docs/paper.tex");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 19u);
  EXPECT_FALSE(st->is_dir());
}

TEST_F(HierFsTest, ResolveCountsComponentsAndLocks) {
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b/c").ok());
  ASSERT_TRUE(fs_->CreateFile("/a/b/c/f").ok());
  stats::ResetAll();
  ASSERT_TRUE(fs_->ResolvePath("/a/b/c/f").ok());
  // One component walked + one lock acquired per path element — the §2.3 cost.
  EXPECT_EQ(stats::Get(stats::Counter::kDirComponentsWalked), 4u);
  EXPECT_EQ(stats::Get(stats::Counter::kLockAcquisitions), 4u);
  EXPECT_GE(stats::Get(stats::Counter::kIndexTraversals), 4u);
}

TEST_F(HierFsTest, UnlinkAndRmdir) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  ASSERT_TRUE(fs_->CreateFile("/d/f").ok());
  EXPECT_FALSE(fs_->Rmdir("/d").ok());  // Not empty.
  ASSERT_TRUE(fs_->Unlink("/d/f").ok());
  EXPECT_TRUE(fs_->ResolvePath("/d/f").status().IsNotFound());
  ASSERT_TRUE(fs_->Rmdir("/d").ok());
  EXPECT_TRUE(fs_->ResolvePath("/d").status().IsNotFound());
  EXPECT_TRUE(fs_->Unlink("/d").IsNotFound());
}

TEST_F(HierFsTest, HardLinksBumpNlink) {
  auto ino = fs_->CreateFile("/orig");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, "payload").ok());
  ASSERT_TRUE(fs_->Link("/orig", "/alias").ok());
  auto st = fs_->Stat("/alias");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 2u);
  EXPECT_EQ(ReadFile("/alias"), "payload");
  ASSERT_TRUE(fs_->Unlink("/orig").ok());
  EXPECT_EQ(ReadFile("/alias"), "payload");  // Object alive through second link.
  auto st2 = fs_->Stat("/alias");
  ASSERT_TRUE(st2.ok());
  EXPECT_EQ(st2->nlink, 1u);
}

TEST_F(HierFsTest, RenameMovesEntryBetweenDirectories) {
  ASSERT_TRUE(fs_->Mkdir("/src").ok());
  ASSERT_TRUE(fs_->Mkdir("/dst").ok());
  auto ino = fs_->CreateFile("/src/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, "moving").ok());
  ASSERT_TRUE(fs_->Rename("/src/f", "/dst/g").ok());
  EXPECT_TRUE(fs_->ResolvePath("/src/f").status().IsNotFound());
  EXPECT_EQ(ReadFile("/dst/g"), "moving");
  // Directory rename is a pointer swing: children keep resolving.
  ASSERT_TRUE(fs_->Rename("/dst", "/renamed").ok());
  EXPECT_EQ(ReadFile("/renamed/g"), "moving");
}

TEST_F(HierFsTest, ReaddirSorted) {
  ASSERT_TRUE(fs_->Mkdir("/dir").ok());
  ASSERT_TRUE(fs_->CreateFile("/dir/zeta").ok());
  ASSERT_TRUE(fs_->CreateFile("/dir/alpha").ok());
  ASSERT_TRUE(fs_->Mkdir("/dir/mid").ok());
  auto entries = fs_->Readdir("/dir");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].name, "alpha");
  EXPECT_EQ((*entries)[1].name, "mid");
  EXPECT_TRUE((*entries)[1].is_dir);
  EXPECT_EQ((*entries)[2].name, "zeta");
}

TEST_F(HierFsTest, ReaddirPageStreamsInNameOrder) {
  ASSERT_TRUE(fs_->Mkdir("/big").ok());
  std::vector<std::string> names;
  for (int i = 0; i < 25; i++) {
    char name[16];
    snprintf(name, sizeof(name), "f%02d", i);
    names.push_back(name);
    ASSERT_TRUE(fs_->CreateFile(std::string("/big/") + name).ok());
  }
  std::vector<std::string> collected;
  std::string after;
  for (;;) {
    bool has_more = false;
    auto page = fs_->ReaddirPage("/big", 7, after, &has_more);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    ASSERT_LE(page->size(), 7u);
    for (const DirEntry& e : *page) {
      collected.push_back(e.name);
    }
    if (!has_more) {
      break;
    }
    after = page->back().name;
  }
  EXPECT_EQ(collected, names);

  // Unpaged Readdir is the limit-0 page.
  auto all = fs_->Readdir("/big");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), names.size());
}

TEST_F(HierFsTest, TruncateAndInsertViaRewrite) {
  auto ino = fs_->CreateFile("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, "helloworld").ok());
  ASSERT_TRUE(fs_->InsertViaRewrite(*ino, 5, ", ").ok());
  EXPECT_EQ(ReadFile("/f"), "hello, world");
  ASSERT_TRUE(fs_->Truncate(*ino, 5).ok());
  EXPECT_EQ(ReadFile("/f"), "hello");
  ASSERT_TRUE(fs_->Truncate(*ino, 8).ok());
  EXPECT_EQ(ReadFile("/f"), std::string("hello") + std::string(3, '\0'));
}

TEST_F(HierFsTest, DeepTreeManyFiles) {
  std::string path;
  for (int d = 0; d < 8; d++) {
    path += "/level" + std::to_string(d);
    ASSERT_TRUE(fs_->Mkdir(path).ok());
  }
  for (int i = 0; i < 100; i++) {
    auto ino = fs_->CreateFile(path + "/file" + std::to_string(i));
    ASSERT_TRUE(ino.ok()) << i;
    ASSERT_TRUE(fs_->Write(*ino, 0, std::to_string(i)).ok());
  }
  auto entries = fs_->Readdir(path);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 100u);
  EXPECT_EQ(ReadFile(path + "/file42"), "42");
}

TEST_F(HierFsTest, PersistsAcrossReopen) {
  ASSERT_TRUE(fs_->Mkdir("/keep").ok());
  auto ino = fs_->CreateFile("/keep/data");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs_->Write(*ino, 0, "durable hierarchy").ok());
  ASSERT_TRUE(fs_->Flush().ok());
  fs_.reset();

  auto fs = HierFs::Open(dev_);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  fs_ = std::move(fs).value();
  EXPECT_EQ(ReadFile("/keep/data"), "durable hierarchy");
  // New inodes do not collide with recovered ones.
  auto fresh = fs_->CreateFile("/keep/new");
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, *ino);
}

TEST_F(HierFsTest, ConcurrentCreatesInSeparateDirs) {
  constexpr int kThreads = 8;
  for (int t = 0; t < kThreads; t++) {
    ASSERT_TRUE(fs_->Mkdir("/u" + std::to_string(t)).ok());
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < 40; i++) {
        auto ino = fs_->CreateFile("/u" + std::to_string(t) + "/f" + std::to_string(i));
        ASSERT_TRUE(ino.ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; t++) {
    auto entries = fs_->Readdir("/u" + std::to_string(t));
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), 40u);
  }
}

}  // namespace
}  // namespace hierfs
}  // namespace hfad
