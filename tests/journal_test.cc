// Unit and failure-injection tests for the write-ahead journal.
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/io/io_engine.h"
#include "src/journal/journal.h"
#include "src/storage/block_device.h"
#include "tests/crash_harness.h"

namespace hfad {
namespace journal {
namespace {

constexpr uint64_t kRegion = 256 * 1024;

using Records = std::vector<std::pair<uint64_t, std::string>>;

Records RecoverAll(Journal* j, uint64_t* count = nullptr) {
  Records out;
  auto n = j->Recover([&](uint64_t seq, Slice payload) {
    out.emplace_back(seq, payload.ToString());
  });
  EXPECT_TRUE(n.ok()) << n.status().ToString();
  if (count != nullptr) {
    *count = n.ok() ? *n : 0;
  }
  return out;
}

TEST(JournalTest, EmptyLogRecoversNothing) {
  MemoryBlockDevice dev(kRegion);
  Journal j(&dev, 0, kRegion);
  Records r = RecoverAll(&j);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(j.next_sequence(), 1u);
}

TEST(JournalTest, AppendCommitRecover) {
  MemoryBlockDevice dev(kRegion);
  {
    Journal j(&dev, 0, kRegion);
    auto s1 = j.Append("first record");
    auto s2 = j.Append("second record");
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    EXPECT_EQ(*s1, 1u);
    EXPECT_EQ(*s2, 2u);
    ASSERT_TRUE(j.Commit().ok());
  }
  Journal j2(&dev, 0, kRegion);
  Records r = RecoverAll(&j2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (std::pair<uint64_t, std::string>{1, "first record"}));
  EXPECT_EQ(r[1], (std::pair<uint64_t, std::string>{2, "second record"}));
  EXPECT_EQ(j2.next_sequence(), 3u);
}

TEST(JournalTest, UncommittedRecordsAreNotDurable) {
  MemoryBlockDevice dev(kRegion);
  {
    Journal j(&dev, 0, kRegion);
    ASSERT_TRUE(j.Append("committed").ok());
    ASSERT_TRUE(j.Commit().ok());
    ASSERT_TRUE(j.Append("lost in crash").ok());
    EXPECT_EQ(j.pending_records(), 1u);
    // No commit: simulated crash.
  }
  Journal j2(&dev, 0, kRegion);
  Records r = RecoverAll(&j2);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].second, "committed");
}

TEST(JournalTest, GroupCommitBatchesPending) {
  auto base = std::make_shared<MemoryBlockDevice>(kRegion);
  FaultyBlockDevice dev(base);
  Journal j(&dev, 0, kRegion);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(j.Append("record " + std::to_string(i)).ok());
  }
  uint64_t writes_before = dev.writes_attempted();
  ASSERT_TRUE(j.Commit().ok());
  EXPECT_EQ(dev.writes_attempted(), writes_before + 1);  // One write for 100 records.
  EXPECT_EQ(j.pending_records(), 0u);
}

TEST(JournalTest, CommitIsNoOpWithNothingPending) {
  auto base = std::make_shared<MemoryBlockDevice>(kRegion);
  FaultyBlockDevice dev(base);
  Journal j(&dev, 0, kRegion);
  uint64_t before = dev.writes_attempted();
  ASSERT_TRUE(j.Commit().ok());
  EXPECT_EQ(dev.writes_attempted(), before);
}

TEST(JournalTest, EmptyPayloadIsValid) {
  MemoryBlockDevice dev(kRegion);
  Journal j(&dev, 0, kRegion);
  ASSERT_TRUE(j.Append("").ok());
  ASSERT_TRUE(j.Commit().ok());
  Journal j2(&dev, 0, kRegion);
  Records r = RecoverAll(&j2);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r[0].second.empty());
}

TEST(JournalTest, BinaryPayloadSurvives) {
  MemoryBlockDevice dev(kRegion);
  Journal j(&dev, 0, kRegion);
  std::string payload;
  for (int i = 0; i < 256; i++) {
    payload.push_back(static_cast<char>(i));
  }
  ASSERT_TRUE(j.Append(payload).ok());
  ASSERT_TRUE(j.Commit().ok());
  Journal j2(&dev, 0, kRegion);
  Records r = RecoverAll(&j2);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].second, payload);
}

TEST(JournalTest, NoSpaceWhenRegionFull) {
  MemoryBlockDevice dev(8192);
  Journal j(&dev, 0, 8192);
  std::string big(4080, 'x');  // One record: 16 + 4080 = 4096 bytes.
  ASSERT_TRUE(j.Append(big).ok());
  ASSERT_TRUE(j.Append(big).status().IsNoSpace());
  // Small records still fit in the remainder.
  ASSERT_TRUE(j.Append("small").ok());
}

TEST(JournalTest, ResetEmptiesTheLog) {
  MemoryBlockDevice dev(kRegion);
  Journal j(&dev, 0, kRegion);
  ASSERT_TRUE(j.Append("before checkpoint").ok());
  ASSERT_TRUE(j.Commit().ok());
  ASSERT_TRUE(j.Reset().ok());
  EXPECT_EQ(j.committed_bytes(), 0u);
  // Sequence numbering continues across the reset.
  auto s = j.Append("after checkpoint");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, 2u);
  ASSERT_TRUE(j.Commit().ok());

  Journal j2(&dev, 0, kRegion);
  Records r = RecoverAll(&j2);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].second, "after checkpoint");
  EXPECT_EQ(r[0].first, 2u);
}

TEST(JournalTest, RecoveryStopsAtStaleGenerationRecords) {
  // Reset() only zeroes one header; stale records from a longer previous log generation
  // remain beyond the new tail. The sequence-continuity check must reject them.
  MemoryBlockDevice dev(kRegion);
  Journal j(&dev, 0, kRegion);
  ASSERT_TRUE(j.Append("old-1").ok());
  ASSERT_TRUE(j.Append("old-2").ok());
  ASSERT_TRUE(j.Append("old-3").ok());
  ASSERT_TRUE(j.Commit().ok());
  ASSERT_TRUE(j.Reset().ok());
  ASSERT_TRUE(j.Append("new-4").ok());  // Sequence 4.
  ASSERT_TRUE(j.Commit().ok());

  Journal j2(&dev, 0, kRegion);
  Records r = RecoverAll(&j2);
  // Recovery sees new-4 (seq 4) then old-2 (seq 2) — discontinuous, so it stops.
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].second, "new-4");
}

TEST(JournalTest, TornFinalRecordIsDiscarded) {
  test::RunTornWriteCrash(
      kRegion, /*budget=*/0,
      [&](const std::shared_ptr<FaultyBlockDevice>& dev, test::CrashPoint* point) {
        Journal j(dev.get(), 0, kRegion);
        ASSERT_TRUE(j.Append("intact record").ok());
        ASSERT_TRUE(j.Commit().ok());
        // Second commit is torn mid-write.
        ASSERT_TRUE(j.Append(std::string(1000, 'T')).ok());
        point->Tear();
        EXPECT_FALSE(j.Commit().ok());
      },
      [&](const std::shared_ptr<MemoryBlockDevice>& base) {
        Journal j2(base.get(), 0, kRegion);
        Records r = RecoverAll(&j2);
        ASSERT_EQ(r.size(), 1u);
        EXPECT_EQ(r[0].second, "intact record");
        // The journal is positioned to append after the intact record; new appends
        // work.
        ASSERT_TRUE(j2.Append("after recovery").ok());
        ASSERT_TRUE(j2.Commit().ok());
        Journal j3(base.get(), 0, kRegion);
        Records r3 = RecoverAll(&j3);
        ASSERT_EQ(r3.size(), 2u);
        EXPECT_EQ(r3[1].second, "after recovery");
      });
}

TEST(JournalTest, CorruptMiddleRecordTruncatesRecovery) {
  MemoryBlockDevice dev(kRegion);
  Journal j(&dev, 0, kRegion);
  ASSERT_TRUE(j.Append("one").ok());
  ASSERT_TRUE(j.Append("two").ok());
  ASSERT_TRUE(j.Append("three").ok());
  ASSERT_TRUE(j.Commit().ok());
  // Flip a byte in the second record's payload.
  uint64_t second_payload_off = (16 + 3) + 16;
  std::string b;
  ASSERT_TRUE(dev.Read(second_payload_off, 1, &b).ok());
  b[0] ^= 0x40;
  ASSERT_TRUE(dev.Write(second_payload_off, Slice(b)).ok());

  Journal j2(&dev, 0, kRegion);
  Records r = RecoverAll(&j2);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].second, "one");
}

TEST(JournalTest, FailedCommitKeepsRecordsPending) {
  auto base = std::make_shared<MemoryBlockDevice>(kRegion);
  FaultyBlockDevice dev(base);
  Journal j(&dev, 0, kRegion);
  ASSERT_TRUE(j.Append("retry me").ok());
  dev.SetWriteBudget(0);
  EXPECT_FALSE(j.Commit().ok());
  EXPECT_EQ(j.pending_records(), 1u);
  dev.SetWriteBudget(-1);
  ASSERT_TRUE(j.Commit().ok());
  Journal j2(base.get(), 0, kRegion);
  Records r = RecoverAll(&j2);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].second, "retry me");
}

TEST(JournalTest, RegionOffsetIsRespected) {
  MemoryBlockDevice dev(kRegion);
  constexpr uint64_t kOff = 64 * 1024;
  Journal j(&dev, kOff, 64 * 1024);
  ASSERT_TRUE(j.Append("at offset").ok());
  ASSERT_TRUE(j.Commit().ok());
  // Nothing before the region was touched.
  std::string head;
  ASSERT_TRUE(dev.Read(0, 1024, &head).ok());
  EXPECT_EQ(head, std::string(1024, '\0'));
  Journal j2(&dev, kOff, 64 * 1024);
  Records r = RecoverAll(&j2);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].second, "at offset");
}

TEST(JournalTest, SequencesContinueAfterRecovery) {
  MemoryBlockDevice dev(kRegion);
  {
    Journal j(&dev, 0, kRegion, 100);
    ASSERT_TRUE(j.Append("a").ok());
    auto s = j.Append("b");
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, 101u);
    ASSERT_TRUE(j.Commit().ok());
  }
  Journal j2(&dev, 0, kRegion);
  RecoverAll(&j2);
  EXPECT_EQ(j2.next_sequence(), 102u);
}

// ---- Group commit: the leader/follower protocol ----

// Park the device inside its first Sync (the leader's fsync), let two more threads
// append AND commit meanwhile, then release: the two followers' records must share one
// further sync between them — fsync cost amortizes across the whole commit window.
TEST(JournalGroupCommitTest, FollowersShareOneSyncPerWindow) {
  auto base = std::make_shared<MemoryBlockDevice>(kRegion);
  FaultyBlockDevice dev(base);
  Journal j(&dev, 0, kRegion);

  std::atomic<bool> leader_in_sync{false};
  std::atomic<bool> release_sync{false};
  dev.SetSyncHook([&] {
    leader_in_sync.store(true);
    while (!release_sync.load()) {
      std::this_thread::yield();
    }
  });

  ASSERT_TRUE(j.Append("window-1 record").ok());
  std::thread leader([&] { EXPECT_TRUE(j.Commit().ok()); });
  while (!leader_in_sync.load()) {
    std::this_thread::yield();
  }

  std::atomic<int> appended{0};
  auto worker = [&](const char* payload) {
    EXPECT_TRUE(j.Append(payload).ok());
    appended.fetch_add(1);
    EXPECT_TRUE(j.Commit().ok());
  };
  std::thread w1(worker, "window-2 record a");
  std::thread w2(worker, "window-2 record b");
  while (appended.load() < 2) {
    std::this_thread::yield();
  }
  // Both appends completed while the first sync was still parked: appenders never wait
  // behind an in-flight fsync.
  EXPECT_TRUE(leader_in_sync.load());
  EXPECT_FALSE(release_sync.load());
  release_sync.store(true);  // Later syncs fall straight through the hook.
  leader.join();
  w1.join();
  w2.join();

  EXPECT_EQ(j.committed_sequence(), 3u);
  EXPECT_EQ(j.pending_records(), 0u);
  // Exactly two batch syncs: the parked leader's window, then ONE window shared by both
  // followers (whichever of them led drained both records).
  EXPECT_EQ(dev.syncs_attempted(), 2u);

  Journal j2(base.get(), 0, kRegion);
  Records r = RecoverAll(&j2);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].second, "window-1 record");
}

// The acceptance-criterion test: Append must complete while a slow device Sync is in
// flight, because the commit protocol releases the journal lock around the fsync.
TEST(JournalGroupCommitTest, AppendNeverBlocksOnInFlightSync) {
  auto base = std::make_shared<MemoryBlockDevice>(kRegion);
  FaultyBlockDevice dev(base);
  Journal j(&dev, 0, kRegion);

  std::atomic<bool> in_sync{false};
  std::atomic<bool> release{false};
  dev.SetSyncHook([&] {
    in_sync.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });

  ASSERT_TRUE(j.Append("synced record").ok());
  std::thread committer([&] { EXPECT_TRUE(j.Commit().ok()); });
  while (!in_sync.load()) {
    std::this_thread::yield();
  }
  // 100 appends land while the fsync is parked. If Append took the lock the leader holds
  // across Sync, this loop would deadlock (the hook never releases by itself).
  for (int i = 0; i < 100; i++) {
    auto seq = j.Append("unblocked append " + std::to_string(i));
    ASSERT_TRUE(seq.ok());
  }
  EXPECT_FALSE(release.load());  // The sync really was still parked throughout.
  EXPECT_EQ(j.pending_records(), 101u);  // 100 new + the in-flight (not yet durable) one.
  release.store(true);
  committer.join();
  EXPECT_EQ(j.committed_sequence(), 1u);  // Only the drained window is durable.
  ASSERT_TRUE(j.Commit().ok());
  EXPECT_EQ(j.committed_sequence(), 101u);
}

TEST(JournalGroupCommitTest, CommittedSequenceWatermark) {
  MemoryBlockDevice dev(kRegion);
  Journal j(&dev, 0, kRegion);
  EXPECT_EQ(j.committed_sequence(), 0u);
  ASSERT_TRUE(j.Append("a").ok());
  ASSERT_TRUE(j.Append("b").ok());
  // CommitThrough(1) may (and here does) cover more: one batch drains all pending.
  ASSERT_TRUE(j.CommitThrough(1).ok());
  EXPECT_EQ(j.committed_sequence(), 2u);
  // Covered and beyond-appended targets return without further device work.
  auto base_syncless = j.committed_sequence();
  ASSERT_TRUE(j.CommitThrough(2).ok());
  ASSERT_TRUE(j.CommitThrough(999).ok());
  EXPECT_EQ(j.committed_sequence(), base_syncless);
  // Reset keeps pre-reset sequences covered (they are checkpoint-durable).
  ASSERT_TRUE(j.Reset().ok());
  EXPECT_EQ(j.committed_sequence(), 2u);
  ASSERT_TRUE(j.Append("c").ok());  // Sequence 3.
  ASSERT_TRUE(j.Commit().ok());
  EXPECT_EQ(j.committed_sequence(), 3u);
}

// A torn commit never advances the watermark, and recovery replays exactly the covered
// records plus at most a durable prefix of the torn batch — never a torn suffix.
// Parameterized over the commit path: sync leader vs the IoEngine completion chain,
// which must tear identically (same device ops in the same order).
class JournalTearModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(JournalTearModeTest, WatermarkNeverIncludesATornSuffix) {
  const bool async = GetParam();
  test::RunTornWriteCrash(
      kRegion, /*budget=*/0,
      [&](const std::shared_ptr<FaultyBlockDevice>& dev, test::CrashPoint* point) {
        Journal j(dev.get(), 0, kRegion);
        // Declared after the journal so the engine shuts down (draining its
        // completions into the still-live journal) before the journal dies.
        std::unique_ptr<io::IoEngine> engine;
        if (async) {
          engine = io::CreateThreadPoolEngine(dev.get(), 2);
          j.SetIoEngine(engine.get());
        }
        ASSERT_TRUE(j.Append("covered 1").ok());
        ASSERT_TRUE(j.Append("covered 2").ok());
        ASSERT_TRUE(j.Append("covered 3").ok());
        ASSERT_TRUE(j.Commit().ok());
        EXPECT_EQ(j.committed_sequence(), 3u);
        ASSERT_TRUE(j.Append(std::string(900, 'd')).ok());
        ASSERT_TRUE(j.Append(std::string(900, 'e')).ok());
        point->Tear();
        EXPECT_FALSE(j.Commit().ok());
        EXPECT_EQ(j.committed_sequence(), 3u);  // The failed window is not covered.
        EXPECT_EQ(j.pending_records(), 2u);     // Its records remain pending.
      },
      [&](const std::shared_ptr<MemoryBlockDevice>& base) {
        Journal j2(base.get(), 0, kRegion);
        Records r = RecoverAll(&j2);
        ASSERT_GE(r.size(), 3u);
        ASSERT_LE(r.size(), 4u);  // The torn half-write can keep record 4, never 5.
        EXPECT_EQ(r[0].second, "covered 1");
        EXPECT_EQ(r[1].second, "covered 2");
        EXPECT_EQ(r[2].second, "covered 3");
        if (r.size() == 4) {
          EXPECT_EQ(r[3].second, std::string(900, 'd'));
        }
        // The recovered journal's watermark covers exactly what the scan validated.
        EXPECT_EQ(j2.committed_sequence(), r.empty() ? 0 : r.back().first);
      });
}

INSTANTIATE_TEST_SUITE_P(SyncAndAsync, JournalTearModeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "AsyncEngine" : "SyncLeader";
                         });

// Property sweep: random append/commit/crash cycles always recover exactly the committed
// prefix, across payload-size regimes.
struct JournalWorkload {
  uint64_t seed;
  uint64_t max_payload;
  bool async = false;  // Commit through the IoEngine completion chain.
};

class JournalPropertyTest : public ::testing::TestWithParam<JournalWorkload> {};

TEST_P(JournalPropertyTest, RecoversExactlyCommittedPrefix) {
  const JournalWorkload p = GetParam();
  Random rng(p.seed);
  auto base = std::make_shared<MemoryBlockDevice>(4 * 1024 * 1024);
  Records committed;
  Records in_flight;  // Batch being committed when the crash (if any) happened.
  {
    FaultyBlockDevice dev(base);
    Journal j(&dev, 0, 4 * 1024 * 1024);
    std::unique_ptr<io::IoEngine> engine;  // After j: engine drains first.
    if (p.async) {
      engine = io::CreateThreadPoolEngine(&dev, 2);
      j.SetIoEngine(engine.get());
    }
    Records batch;
    for (int op = 0; op < 500; op++) {
      if (rng.OneIn(4)) {
        if (rng.OneIn(10) && !batch.empty()) {
          // Crash this commit partway through.
          dev.SetWriteBudget(0);
          dev.EnableTornWrites(true);
          EXPECT_FALSE(j.Commit().ok());
          in_flight = batch;
          break;
        }
        ASSERT_TRUE(j.Commit().ok());
        committed.insert(committed.end(), batch.begin(), batch.end());
        batch.clear();
      } else {
        std::string payload = rng.NextString(rng.Range(0, p.max_payload));
        auto s = j.Append(payload);
        ASSERT_TRUE(s.ok());
        batch.emplace_back(*s, payload);
      }
    }
    if (!batch.empty() && in_flight.empty() && rng.OneIn(2)) {
      if (j.Commit().ok()) {
        committed.insert(committed.end(), batch.begin(), batch.end());
      }
    }
  }
  Journal j2(base.get(), 0, 4 * 1024 * 1024);
  Records r = RecoverAll(&j2);
  // Everything acked as committed must be recovered, in order; a torn commit may
  // additionally surface a prefix of the in-flight batch (each record is a complete op).
  ASSERT_GE(r.size(), committed.size());
  for (size_t i = 0; i < committed.size(); i++) {
    ASSERT_EQ(r[i], committed[i]) << "committed record " << i;
  }
  for (size_t i = committed.size(); i < r.size(); i++) {
    size_t k = i - committed.size();
    ASSERT_LT(k, in_flight.size());
    ASSERT_EQ(r[i], in_flight[k]) << "in-flight record " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, JournalPropertyTest,
                         ::testing::Values(JournalWorkload{11, 32},
                                           JournalWorkload{22, 512},
                                           JournalWorkload{33, 4096},
                                           JournalWorkload{44, 1},
                                           JournalWorkload{11, 32, true},
                                           JournalWorkload{22, 512, true},
                                           JournalWorkload{33, 4096, true},
                                           JournalWorkload{44, 1, true}));

}  // namespace
}  // namespace journal
}  // namespace hfad
