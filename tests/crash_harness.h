// Shared torn-write crash harness for failure-injection tests.
//
// journal_test.cc, osd_test.cc, lazy_index_test.cc, and cluster_test.cc all drive the
// same crash shape: build acknowledged state behind a FaultyBlockDevice, arm a write
// budget with torn writes enabled, run the operation under test until the device dies
// mid-write, hard-kill the device so teardown reaches nothing, then reopen from the
// underlying MemoryBlockDevice and verify every acknowledged effect survived. This
// header owns that plumbing so each test supplies only its workload and its checks.
//
// A sweep is the same run repeated at every write budget (typically via TEST_P over
// ::testing::Range), which moves the tear across every device write the operation
// issues — epilogue pages, in-place batches, superblock, journal reset.
#ifndef HFAD_TESTS_CRASH_HARNESS_H_
#define HFAD_TESTS_CRASH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/block_device.h"

namespace hfad {
namespace test {

// Handle passed to the crash body. Tear() arms the fault: the next `budget` writes
// succeed and the one after is torn in half, after which all writes fail. Crash()
// kills the device outright so destructors and close paths reach nothing. The driver
// calls Crash() again after the body returns, so a body only needs its own Crash()
// when locals (an Osd, a FileSystem) would otherwise write during destruction.
class CrashPoint {
 public:
  CrashPoint(FaultyBlockDevice* dev, int64_t budget) : dev_(dev), budget_(budget) {}

  int64_t budget() const { return budget_; }

  void Tear() {
    dev_->SetWriteBudget(budget_);
    dev_->EnableTornWrites(true);
  }

  void Crash() { dev_->SetWriteBudget(0); }

 private:
  FaultyBlockDevice* dev_;
  int64_t budget_;
};

// Single-device torn-write crash: `body` builds state on the faulty device (budget
// unlimited until it calls point->Tear()), the driver hard-crashes the device, and
// `verify` reopens from the pristine base device — exactly what a real restart sees.
inline void RunTornWriteCrash(
    uint64_t device_bytes, int64_t budget,
    const std::function<void(const std::shared_ptr<FaultyBlockDevice>&, CrashPoint*)>&
        body,
    const std::function<void(const std::shared_ptr<MemoryBlockDevice>&)>& verify) {
  auto base = std::make_shared<MemoryBlockDevice>(device_bytes);
  {
    auto faulty = std::make_shared<FaultyBlockDevice>(base);
    CrashPoint point(faulty.get(), budget);
    body(faulty, &point);
    point.Crash();
  }
  verify(base);
}

// Multi-device variant for sharded clusters: `count` backing devices with the fault
// injected on shard `victim`. `body` receives the device vector with the victim slot
// wrapped in the FaultyBlockDevice; `verify` receives the bare base devices.
inline void RunTornWriteCrashMulti(
    size_t count, uint64_t device_bytes, size_t victim, int64_t budget,
    const std::function<void(const std::vector<std::shared_ptr<BlockDevice>>&,
                             CrashPoint*)>& body,
    const std::function<void(const std::vector<std::shared_ptr<BlockDevice>>&)>&
        verify) {
  std::vector<std::shared_ptr<BlockDevice>> bases;
  for (size_t i = 0; i < count; i++) {
    bases.push_back(std::make_shared<MemoryBlockDevice>(device_bytes));
  }
  {
    auto faulty = std::make_shared<FaultyBlockDevice>(bases[victim]);
    std::vector<std::shared_ptr<BlockDevice>> devices = bases;
    devices[victim] = faulty;
    CrashPoint point(faulty.get(), budget);
    body(devices, &point);
    point.Crash();
  }
  verify(bases);
}

// Read-fault sweep: run `round` once per arming position in [0, max_after], with the
// device failing `fail_count` consecutive reads (transient; -1 = persistent) starting
// `after` successful reads into the round. Moves the fault across every device read
// the operation under test issues, the read-side analogue of the write-budget sweep.
// Injection is cleared between rounds.
inline void RunReadFaultSweep(FaultyBlockDevice* dev, int64_t max_after, int64_t fail_count,
                              const std::function<void(int64_t after)>& round) {
  for (int64_t after = 0; after <= max_after; after++) {
    dev->SetReadFaults(after, fail_count);
    round(after);
    dev->SetReadFaults(-1, 0);
  }
}

// Bit-flip sweep: for every page of `device_bytes`, save the pristine page, flip one
// bit (position varied deterministically per page so the corruption lands in headers,
// payloads, and CRC fields alike), run `check(page_offset)` with the corruption
// present, then restore the saved bytes — each page's round is independent even when
// the check repairs or rewrites the page.
inline void RunBitFlipSweep(const std::shared_ptr<MemoryBlockDevice>& base,
                            FaultyBlockDevice* dev, uint64_t device_bytes,
                            uint64_t page_size,
                            const std::function<void(uint64_t page_offset)>& check) {
  for (uint64_t off = 0; off + page_size <= device_bytes; off += page_size) {
    std::string saved;
    if (!base->Read(off, page_size, &saved).ok()) {
      continue;
    }
    uint64_t page_index = off / page_size;
    uint64_t byte = (page_index * 131) % page_size;
    int bit = static_cast<int>(page_index % 8);
    if (!dev->FlipBit(off + byte, bit).ok()) {
      continue;
    }
    check(off);
    (void)base->Write(off, Slice(saved));
  }
}

}  // namespace test
}  // namespace hfad

#endif  // HFAD_TESTS_CRASH_HARNESS_H_
