// Tests for the boolean query engine: parser, evaluator, optimizer.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/index/index_store.h"
#include "src/osd/osd.h"
#include "src/query/query.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace query {
namespace {

constexpr uint64_t kDev = 64 * 1024 * 1024;

// ---------------------------------------------------------------- parser

TEST(QueryParseTest, SingleTerm) {
  auto e = Parse("UDEF:vacation");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(ToString(**e), "UDEF:\"vacation\"");
}

TEST(QueryParseTest, QuotedValue) {
  auto e = Parse("POSIX:\"/home/m/my file.txt\"");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, Expr::Kind::kTerm);
  EXPECT_EQ((*e)->value, "/home/m/my file.txt");
}

TEST(QueryParseTest, ValuesMayContainColons) {
  auto e = Parse("UDEF:person:grandma");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->tag, "UDEF");
  EXPECT_EQ((*e)->value, "person:grandma");
  auto multi = Parse("UDEF:a:b:c AND USER:margo");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(ToString(**multi), "(UDEF:\"a:b:c\" AND USER:\"margo\")");
}

TEST(QueryParseTest, ImplicitAndExplicitAnd) {
  auto implicit = Parse("UDEF:a USER:b");
  auto explicit_and = Parse("UDEF:a AND USER:b");
  ASSERT_TRUE(implicit.ok());
  ASSERT_TRUE(explicit_and.ok());
  EXPECT_EQ(ToString(**implicit), ToString(**explicit_and));
  EXPECT_EQ(ToString(**implicit), "(UDEF:\"a\" AND USER:\"b\")");
}

TEST(QueryParseTest, PrecedenceOrLowerThanAnd) {
  auto e = Parse("UDEF:a AND USER:b OR APP:c");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(ToString(**e), "((UDEF:\"a\" AND USER:\"b\") OR APP:\"c\")");
}

TEST(QueryParseTest, ParenthesesOverridePrecedence) {
  auto e = Parse("UDEF:a AND (USER:b OR APP:c)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(ToString(**e), "(UDEF:\"a\" AND (USER:\"b\" OR APP:\"c\"))");
}

TEST(QueryParseTest, NotBindsTightest) {
  auto e = Parse("UDEF:a AND NOT UDEF:b");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(ToString(**e), "(UDEF:\"a\" AND NOT UDEF:\"b\")");
}

TEST(QueryParseTest, KeywordsAreCaseInsensitive) {
  auto e = Parse("UDEF:a and not UDEF:b or APP:c");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(ToString(**e), "((UDEF:\"a\" AND NOT UDEF:\"b\") OR APP:\"c\")");
}

TEST(QueryParseTest, MalformedQueriesRejected) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("UDEF").ok());           // Missing colon.
  EXPECT_FALSE(Parse("UDEF:").ok());          // Missing value.
  EXPECT_FALSE(Parse("(UDEF:a").ok());        // Unbalanced paren.
  EXPECT_FALSE(Parse("UDEF:a)").ok());        // Trailing paren.
  EXPECT_FALSE(Parse("UDEF:\"unterminated").ok());
  EXPECT_FALSE(Parse("AND UDEF:a").ok());     // Operator with no left operand... AND is a
                                              // keyword, not a term.
}

// Every malformed input is InvalidArgument (never a crash, never a misleading code) and
// names the 1-based position of the problem.
TEST(QueryParseTest, ErrorsCarryPositionInfo) {
  struct Case {
    const char* input;
    const char* expect;  // Substring of the error message.
  };
  const Case cases[] = {
      {"", "empty query"},
      {"   ", "empty query"},
      {"UDEF:a AND", "position 11"},              // Dangling AND: term expected at end.
      {"UDEF:a OR", "position 10"},               // Dangling OR.
      {"NOT", "dangling NOT"},                    // Dangling NOT.
      {"UDEF:a AND NOT", "dangling NOT"},
      {"(UDEF:a", "unclosed '(' opened at position 1"},
      {"UDEF:x AND (UDEF:a OR UDEF:b", "unclosed '(' opened at position 12"},
      {"UDEF:a)", "position 7"},                  // Trailing input.
      {"()", "empty parentheses at position 1"},
      {"UDEF:", "expected value after 'UDEF:' at position 6"},
      {"UDEF:\"\"", "empty value for tag 'UDEF'"},
      {"UDEF:\"unterminated", "unterminated quoted value at position 6"},
      {":value", "position 1"},                   // Term starting with a colon.
  };
  for (const Case& c : cases) {
    auto r = Parse(c.input);
    ASSERT_FALSE(r.ok()) << "'" << c.input << "' unexpectedly parsed";
    EXPECT_TRUE(r.status().IsInvalidArgument())
        << "'" << c.input << "': " << r.status().ToString();
    EXPECT_NE(r.status().ToString().find(c.expect), std::string::npos)
        << "'" << c.input << "' error was: " << r.status().ToString();
  }
}

TEST(QueryParseTest, DeepNestingRejectedNotCrashed) {
  // Adversarial nesting must hit the depth bound, not the process stack.
  std::string deep(5000, '(');
  deep += "UDEF:a";
  deep += std::string(5000, ')');
  auto r = Parse(deep);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().ToString().find("nesting"), std::string::npos);

  // Chained NOTs recurse without passing through the paren/or path: same bound applies.
  std::string nots;
  for (int i = 0; i < 200000; i++) {
    nots += "NOT ";
  }
  nots += "UDEF:a";
  auto rn = Parse(nots);
  ASSERT_FALSE(rn.ok());
  EXPECT_TRUE(rn.status().IsInvalidArgument());
  EXPECT_NE(rn.status().ToString().find("nesting"), std::string::npos);

  // Nesting under the bound still parses.
  std::string shallow(10, '(');
  shallow += "UDEF:a";
  shallow += std::string(10, ')');
  EXPECT_TRUE(Parse(shallow).ok());
  EXPECT_TRUE(Parse("NOT NOT NOT UDEF:a OR UDEF:b").ok());
}

TEST(QueryParseTest, UnquotedTrailingStarIsAPrefixTerm) {
  auto e = Parse("POSIX:/home/margo/*");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->kind, Expr::Kind::kPrefix);
  EXPECT_EQ((*e)->tag, "POSIX");
  EXPECT_EQ((*e)->value, "/home/margo/");
  EXPECT_EQ(ToString(**e), "POSIX:/home/margo/*");

  // Quoted values keep the star literal.
  auto literal = Parse("UDEF:\"a*\"");
  ASSERT_TRUE(literal.ok());
  EXPECT_EQ((*literal)->kind, Expr::Kind::kTerm);
  EXPECT_EQ((*literal)->value, "a*");
}

// ---------------------------------------------------------------- evaluation fixture

class QueryEvalTest : public ::testing::Test {
 protected:
  QueryEvalTest() {
    auto osd = osd::Osd::Create(std::make_shared<MemoryBlockDevice>(kDev),
                                osd::OsdOptions{});
    EXPECT_TRUE(osd.ok());
    osd_ = std::move(osd).value();
    auto coll = index::IndexCollection::Mount(osd_.get());
    EXPECT_TRUE(coll.ok());
    indexes_ = std::move(coll).value();

    // A small photo-library corpus.
    //   oid  user    tags                 content
    //   a    margo   vacation,beach       "sunset over the pacific"
    //   b    margo   vacation,mountains   "alpine hike photos"
    //   c    margo   work                 "quarterly budget spreadsheet"
    //   d    nick    vacation,beach       "surfing at dawn"
    a_ = Tag("margo", {"vacation", "beach"}, "sunset over pacific ocean");
    b_ = Tag("margo", {"vacation", "mountains"}, "alpine hike photos");
    c_ = Tag("margo", {"work"}, "quarterly budget spreadsheet");
    d_ = Tag("nick", {"vacation", "beach"}, "surfing at dawn");
  }

  ObjectId Tag(const std::string& user, const std::vector<std::string>& tags,
               const std::string& content) {
    auto oid = osd_->CreateObject();
    EXPECT_TRUE(oid.ok());
    EXPECT_TRUE(indexes_->store(index::kTagUser)->Add(user, *oid).ok());
    for (const std::string& t : tags) {
      EXPECT_TRUE(indexes_->store(index::kTagUdef)->Add(t, *oid).ok());
    }
    EXPECT_TRUE(indexes_->store(index::kTagFulltext)->Add(content, *oid).ok());
    return *oid;
  }

  std::vector<ObjectId> Run(const std::string& q, PlanStats* stats = nullptr) {
    QueryEngine engine(indexes_.get());
    auto r = engine.Run(q, stats);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    return r.ok() ? *r : std::vector<ObjectId>{};
  }

  std::unique_ptr<osd::Osd> osd_;
  std::unique_ptr<index::IndexCollection> indexes_;
  ObjectId a_, b_, c_, d_;
};

TEST_F(QueryEvalTest, SingleTerm) {
  EXPECT_EQ(Run("UDEF:beach"), (std::vector<ObjectId>{a_, d_}));
  EXPECT_EQ(Run("USER:nick"), (std::vector<ObjectId>{d_}));
}

TEST_F(QueryEvalTest, Conjunction) {
  EXPECT_EQ(Run("UDEF:vacation AND USER:margo"), (std::vector<ObjectId>{a_, b_}));
  EXPECT_EQ(Run("UDEF:beach AND UDEF:vacation AND USER:nick"),
            (std::vector<ObjectId>{d_}));
}

TEST_F(QueryEvalTest, Disjunction) {
  EXPECT_EQ(Run("UDEF:mountains OR UDEF:work"), (std::vector<ObjectId>{b_, c_}));
  // Union deduplicates.
  EXPECT_EQ(Run("UDEF:beach OR UDEF:vacation"), (std::vector<ObjectId>{a_, b_, d_}));
}

TEST_F(QueryEvalTest, Negation) {
  EXPECT_EQ(Run("USER:margo AND NOT UDEF:work"), (std::vector<ObjectId>{a_, b_}));
  EXPECT_EQ(Run("UDEF:vacation AND NOT UDEF:beach"), (std::vector<ObjectId>{b_}));
}

TEST_F(QueryEvalTest, BareNegationRejected) {
  QueryEngine engine(indexes_.get());
  EXPECT_FALSE(engine.Run("NOT UDEF:work").ok());
  EXPECT_FALSE(engine.Run("NOT UDEF:a AND NOT UDEF:b").ok());
}

TEST_F(QueryEvalTest, MixedStoresAndFulltext) {
  EXPECT_EQ(Run("FULLTEXT:alpine"), (std::vector<ObjectId>{b_}));
  EXPECT_EQ(Run("FULLTEXT:photos AND USER:margo"), (std::vector<ObjectId>{b_}));
  EXPECT_EQ(Run("(FULLTEXT:sunset OR FULLTEXT:surfing) AND UDEF:beach"),
            (std::vector<ObjectId>{a_, d_}));
}

TEST_F(QueryEvalTest, ComplexNesting) {
  EXPECT_EQ(Run("(USER:margo OR USER:nick) AND UDEF:beach AND NOT FULLTEXT:surfing"),
            (std::vector<ObjectId>{a_}));
}

TEST_F(QueryEvalTest, EmptyResultIsOkNotError) {
  EXPECT_TRUE(Run("UDEF:nonexistent").empty());
  EXPECT_TRUE(Run("UDEF:beach AND UDEF:work").empty());
}

TEST_F(QueryEvalTest, UnknownTagFails) {
  QueryEngine engine(indexes_.get());
  EXPECT_FALSE(engine.Run("BOGUS:x").ok());
}

TEST_F(QueryEvalTest, OptimizerRunsSelectiveTermFirst) {
  // Add skew: 500 objects tagged "common", one of which is also "rare".
  ObjectId needle = Tag("bulk", {"common", "rare"}, "needle");
  for (int i = 0; i < 500; i++) {
    Tag("bulk", {"common"}, "hay");
  }
  // Optimized: evaluates UDEF:rare (1 row) first; the common lookup still scans its 501
  // rows, but the intersection work is bounded by the small side. Unoptimized left-to-
  // right starts with the 501-row set.
  PlanStats optimized;
  QueryEngine opt(indexes_.get(), /*optimize=*/true);
  auto r1 = opt.Run("UDEF:common AND UDEF:rare", &optimized);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, (std::vector<ObjectId>{needle}));

  PlanStats naive;
  QueryEngine no_opt(indexes_.get(), /*optimize=*/false);
  auto r2 = no_opt.Run("UDEF:common AND UDEF:rare", &naive);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, *r1);

  // Both issue 2 lookups here, but the optimized plan's intermediate results are smaller.
  EXPECT_LE(optimized.intermediate_rows, naive.intermediate_rows);
}

TEST_F(QueryEvalTest, OptimizerEarlyExitSkipsLookups) {
  for (int i = 0; i < 100; i++) {
    Tag("bulk", {"everywhere"}, "filler");
  }
  PlanStats stats;
  QueryEngine engine(indexes_.get(), /*optimize=*/true);
  // "absent" has cardinality 0: the optimizer runs it first, sees an empty set, and
  // never looks up "everywhere".
  auto r = engine.Run("UDEF:everywhere AND UDEF:absent", &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(stats.index_lookups, 1u);
  EXPECT_TRUE(stats.early_exit);
}

TEST_F(QueryEvalTest, SmallIntersectionUsesMembershipProbes) {
  // One "rare" object among many "common" ones: after evaluating rare (1 row), the
  // optimizer should probe common membership instead of scanning its 501 postings.
  ObjectId needle = Tag("bulk", {"probecommon", "proberare"}, "x");
  for (int i = 0; i < 500; i++) {
    Tag("bulk", {"probecommon"}, "y");
  }
  PlanStats stats;
  QueryEngine engine(indexes_.get(), /*optimize=*/true);
  auto r = engine.Run("UDEF:probecommon AND UDEF:proberare", &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<ObjectId>{needle}));
  EXPECT_EQ(stats.index_lookups, 1u);       // Only the rare term materialized.
  EXPECT_EQ(stats.membership_probes, 1u);   // One candidate probed against common.
  EXPECT_LT(stats.rows_scanned, 10u);
}

TEST_F(QueryEvalTest, StatsCountLookups) {
  PlanStats stats;
  QueryEngine engine(indexes_.get());
  auto r = engine.Run("UDEF:vacation AND USER:margo AND FULLTEXT:photos", &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.index_lookups, 3u);
  EXPECT_GT(stats.rows_scanned, 0u);
}

}  // namespace
}  // namespace query
}  // namespace hfad
