// Unit + property tests for the slotted-page B+tree.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/btree/btree.h"
#include "src/common/random.h"
#include "src/storage/block_device.h"
#include "src/storage/buddy_allocator.h"
#include "src/storage/pager.h"

namespace hfad {
namespace btree {
namespace {

constexpr uint64_t kHeap = 64 * 1024 * 1024;

// Shared fixture: a memory device, pager, and allocator per test.
class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest()
      : dev_(kPageSize + kHeap),
        pager_(&dev_, 1024),
        alloc_(kPageSize, kHeap),
        tree_(&pager_, &alloc_, 0) {}

  MemoryBlockDevice dev_;
  Pager pager_;
  BuddyAllocator alloc_;
  BTree tree_;
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_EQ(tree_.root(), 0u);
  EXPECT_EQ(tree_.Count(), 0u);
  EXPECT_FALSE(tree_.Contains("a"));
  EXPECT_TRUE(tree_.Get("a").status().IsNotFound());
  EXPECT_TRUE(tree_.Delete("a").IsNotFound());
  int visited = 0;
  ASSERT_TRUE(tree_.Scan("", "", [&](Slice, Slice) {
    visited++;
    return true;
  }).ok());
  EXPECT_EQ(visited, 0);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(BTreeTest, PutGetSingle) {
  ASSERT_TRUE(tree_.Put("key", "value").ok());
  EXPECT_NE(tree_.root(), 0u);
  EXPECT_EQ(tree_.Count(), 1u);
  auto v = tree_.Get("key");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "value");
}

TEST_F(BTreeTest, PutOverwrites) {
  ASSERT_TRUE(tree_.Put("k", "v1").ok());
  ASSERT_TRUE(tree_.Put("k", "v2-longer-than-before").ok());
  EXPECT_EQ(tree_.Count(), 1u);
  EXPECT_EQ(*tree_.Get("k"), "v2-longer-than-before");
  ASSERT_TRUE(tree_.Put("k", "s").ok());  // Shrink.
  EXPECT_EQ(*tree_.Get("k"), "s");
  EXPECT_EQ(tree_.Count(), 1u);
}

TEST_F(BTreeTest, EmptyValueAndEmptyKey) {
  ASSERT_TRUE(tree_.Put("k", "").ok());
  auto v = tree_.Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
  // Empty key is a legal byte string.
  ASSERT_TRUE(tree_.Put("", "empty-key").ok());
  EXPECT_EQ(*tree_.Get(""), "empty-key");
  EXPECT_EQ(tree_.Count(), 2u);
}

TEST_F(BTreeTest, KeyTooLargeRejected) {
  std::string big(kMaxKeySize + 1, 'k');
  EXPECT_FALSE(tree_.Put(big, "v").ok());
  std::string ok_key(kMaxKeySize, 'k');
  EXPECT_TRUE(tree_.Put(ok_key, "v").ok());
}

TEST_F(BTreeTest, DeleteRestoresAbsence) {
  ASSERT_TRUE(tree_.Put("a", "1").ok());
  ASSERT_TRUE(tree_.Put("b", "2").ok());
  ASSERT_TRUE(tree_.Delete("a").ok());
  EXPECT_FALSE(tree_.Contains("a"));
  EXPECT_TRUE(tree_.Contains("b"));
  EXPECT_EQ(tree_.Count(), 1u);
  EXPECT_TRUE(tree_.Delete("a").IsNotFound());
}

TEST_F(BTreeTest, ManyInsertsForceSplits) {
  constexpr int kN = 5000;
  for (int i = 0; i < kN; i++) {
    std::string key = "key" + std::to_string(i * 7919 % kN);  // Shuffled order.
    ASSERT_TRUE(tree_.Put(key, "value-" + key).ok()) << i;
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  auto h = tree_.Height();
  ASSERT_TRUE(h.ok());
  EXPECT_GE(*h, 2);  // Must have split at least once.
  for (int i = 0; i < kN; i++) {
    std::string key = "key" + std::to_string(i);
    auto v = tree_.Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, "value-" + key);
  }
  EXPECT_EQ(tree_.Count(), static_cast<uint64_t>(kN));
}

TEST_F(BTreeTest, ScanIsOrderedAndBounded) {
  for (int i = 0; i < 1000; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%04d", i);
    ASSERT_TRUE(tree_.Put(buf, std::to_string(i)).ok());
  }
  std::vector<std::string> keys;
  ASSERT_TRUE(tree_.Scan("k0100", "k0200", [&](Slice k, Slice v) {
    keys.push_back(k.ToString());
    EXPECT_EQ(v.ToString(), std::to_string(std::stoi(k.ToString().substr(1))));
    return true;
  }).ok());
  ASSERT_EQ(keys.size(), 100u);
  EXPECT_EQ(keys.front(), "k0100");
  EXPECT_EQ(keys.back(), "k0199");
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_F(BTreeTest, ScanEarlyStop) {
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(tree_.Put("k" + std::to_string(100 + i), "v").ok());
  }
  int seen = 0;
  ASSERT_TRUE(tree_.Scan("", "", [&](Slice, Slice) {
    seen++;
    return seen < 10;
  }).ok());
  EXPECT_EQ(seen, 10);
}

TEST_F(BTreeTest, ScanPrefix) {
  ASSERT_TRUE(tree_.Put("app/alpha", "1").ok());
  ASSERT_TRUE(tree_.Put("app/beta", "2").ok());
  ASSERT_TRUE(tree_.Put("apple", "3").ok());
  ASSERT_TRUE(tree_.Put("aqua", "4").ok());
  std::vector<std::string> hits;
  ASSERT_TRUE(tree_.ScanPrefix("app/", [&](Slice k, Slice) {
    hits.push_back(k.ToString());
    return true;
  }).ok());
  EXPECT_EQ(hits, (std::vector<std::string>{"app/alpha", "app/beta"}));
}

TEST_F(BTreeTest, ScanPrefixWith0xFFBytes) {
  // Prefix ending in 0xFF exercises the "increment prefix" upper-bound logic.
  std::string pre = "a";
  pre.push_back(static_cast<char>(0xff));
  ASSERT_TRUE(tree_.Put(pre + "1", "v1").ok());
  ASSERT_TRUE(tree_.Put(pre + "2", "v2").ok());
  ASSERT_TRUE(tree_.Put("b", "other").ok());
  int hits = 0;
  ASSERT_TRUE(tree_.ScanPrefix(pre, [&](Slice, Slice) {
    hits++;
    return true;
  }).ok());
  EXPECT_EQ(hits, 2);
}

TEST_F(BTreeTest, LargeValuesSpillToOverflow) {
  std::string big(100 * 1024, 'B');
  ASSERT_TRUE(tree_.Put("big", big).ok());
  std::string medium(kMaxInlineValue + 1, 'M');
  ASSERT_TRUE(tree_.Put("medium", medium).ok());
  EXPECT_EQ(*tree_.Get("big"), big);
  EXPECT_EQ(*tree_.Get("medium"), medium);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  // Overwriting an overflow value frees the old extent (no leak => allocator count stable
  // after delete).
  size_t before = alloc_.allocation_count();
  ASSERT_TRUE(tree_.Put("big", "now-small").ok());
  EXPECT_LT(alloc_.allocation_count(), before);
  ASSERT_TRUE(tree_.Delete("medium").ok());
  EXPECT_EQ(*tree_.Get("big"), "now-small");
}

TEST_F(BTreeTest, ClearFreesEverything) {
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(tree_.Put("key" + std::to_string(i), std::string(200, 'v')).ok());
  }
  ASSERT_TRUE(tree_.Clear().ok());
  EXPECT_EQ(tree_.root(), 0u);
  EXPECT_EQ(tree_.Count(), 0u);
  EXPECT_EQ(alloc_.allocation_count(), 0u);  // All pages and overflow extents returned.
  // Tree is reusable after Clear.
  ASSERT_TRUE(tree_.Put("x", "y").ok());
  EXPECT_EQ(*tree_.Get("x"), "y");
}

TEST_F(BTreeTest, PersistsAcrossReopen) {
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(tree_.Put("key" + std::to_string(i), "value" + std::to_string(i)).ok());
  }
  uint64_t root = tree_.root();
  ASSERT_TRUE(pager_.Flush().ok());
  ASSERT_TRUE(pager_.DropCacheForTesting().ok());

  BTree reopened(&pager_, &alloc_, root);
  EXPECT_EQ(reopened.Count(), 3000u);
  for (int i = 0; i < 3000; i += 17) {
    auto v = reopened.Get("key" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, "value" + std::to_string(i));
  }
  ASSERT_TRUE(reopened.CheckInvariants().ok());
}

TEST_F(BTreeTest, DeleteToEmptyFreesAllPages) {
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(tree_.Put("key" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(tree_.Delete("key" + std::to_string(i)).ok()) << i;
  }
  EXPECT_EQ(tree_.Count(), 0u);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  // All pages reclaimed: the allocator should be (nearly) empty — at most the root.
  EXPECT_LE(alloc_.allocation_count(), 1u);
}

TEST_F(BTreeTest, BinaryKeysAndValues) {
  // Keys containing every byte value, including 0x00 and 0xFF.
  std::vector<std::string> keys;
  for (int b = 0; b < 256; b++) {
    std::string k;
    k.push_back(static_cast<char>(b));
    k.push_back('\0');
    k.push_back(static_cast<char>(255 - b));
    keys.push_back(k);
    std::string v(3, static_cast<char>(b));
    ASSERT_TRUE(tree_.Put(k, v).ok());
  }
  for (int b = 0; b < 256; b++) {
    auto v = tree_.Get(keys[b]);
    ASSERT_TRUE(v.ok()) << b;
    EXPECT_EQ(*v, std::string(3, static_cast<char>(b)));
  }
  // Scan returns them in unsigned-byte order.
  std::vector<std::string> scanned;
  ASSERT_TRUE(tree_.Scan("", "", [&](Slice k, Slice) {
    scanned.push_back(k.ToString());
    return true;
  }).ok());
  std::vector<std::string> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(scanned, sorted);
}

TEST_F(BTreeTest, TwoTreesShareAllocatorIndependently) {
  BTree other(&pager_, &alloc_, 0);
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(tree_.Put("a" + std::to_string(i), "1").ok());
    ASSERT_TRUE(other.Put("b" + std::to_string(i), "2").ok());
  }
  EXPECT_EQ(tree_.Count(), 500u);
  EXPECT_EQ(other.Count(), 500u);
  EXPECT_FALSE(tree_.Contains("b0"));
  EXPECT_FALSE(other.Contains("a0"));
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  ASSERT_TRUE(other.CheckInvariants().ok());
}

// Property test: mirror a std::map through random Put/Delete/Get/Scan and verify
// equivalence, across value-size regimes (inline vs overflow).
struct WorkloadParam {
  uint64_t seed;
  size_t min_value;
  size_t max_value;
  int ops;
};

class BTreePropertyTest : public ::testing::TestWithParam<WorkloadParam> {};

TEST_P(BTreePropertyTest, MatchesStdMap) {
  const WorkloadParam p = GetParam();
  MemoryBlockDevice dev(kPageSize + kHeap);
  Pager pager(&dev, 512);
  BuddyAllocator alloc(kPageSize, kHeap);
  BTree tree(&pager, &alloc, 0);
  std::map<std::string, std::string> model;
  Random rng(p.seed);

  for (int op = 0; op < p.ops; op++) {
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 5) {  // Put
      std::string key = "k" + std::to_string(rng.Uniform(500));
      std::string value = rng.NextString(rng.Range(p.min_value, p.max_value));
      ASSERT_TRUE(tree.Put(key, value).ok());
      model[key] = value;
    } else if (action < 7) {  // Delete
      std::string key = "k" + std::to_string(rng.Uniform(500));
      Status s = tree.Delete(key);
      if (model.erase(key)) {
        ASSERT_TRUE(s.ok());
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else if (action < 9) {  // Get
      std::string key = "k" + std::to_string(rng.Uniform(500));
      auto v = tree.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(v.status().IsNotFound());
      } else {
        ASSERT_TRUE(v.ok());
        ASSERT_EQ(*v, it->second);
      }
    } else {  // Full scan equivalence.
      auto it = model.begin();
      bool mismatch = false;
      ASSERT_TRUE(tree.Scan("", "", [&](Slice k, Slice v) {
        if (it == model.end() || it->first != k.ToString() || it->second != v.ToString()) {
          mismatch = true;
          return false;
        }
        ++it;
        return true;
      }).ok());
      ASSERT_FALSE(mismatch);
      ASSERT_TRUE(it == model.end());
    }
    ASSERT_EQ(tree.Count(), model.size());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, BTreePropertyTest,
    ::testing::Values(WorkloadParam{1, 1, 32, 4000},        // Small inline values.
                      WorkloadParam{2, 100, 800, 3000},     // Mid-size inline values.
                      WorkloadParam{3, 1400, 2000, 1500},   // Straddles the overflow limit.
                      WorkloadParam{4, 3000, 9000, 800},    // All overflow values.
                      WorkloadParam{5, 1, 9000, 2000}));    // Mixed.

// ---------------------------------------------------------------- BulkLoad

TEST_F(BTreeTest, BulkLoadIntoEmptyTreeMatchesPuts) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 5000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i);
    entries.emplace_back(key, "v" + std::to_string(i));
  }
  uint64_t inserted = 0;
  ASSERT_TRUE(tree_.BulkLoad(entries, &inserted).ok());
  EXPECT_EQ(inserted, entries.size());
  EXPECT_EQ(tree_.Count(), entries.size());
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  for (const auto& [k, v] : entries) {
    auto got = tree_.Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }
}

TEST_F(BTreeTest, BulkLoadRejectsOutOfOrderBeforeMutating) {
  ASSERT_TRUE(tree_.Put("existing", "x").ok());
  std::vector<std::pair<std::string, std::string>> bad = {
      {"b", "1"}, {"a", "2"}};
  EXPECT_TRUE(tree_.BulkLoad(bad).IsInvalidArgument());
  // Nothing was applied.
  EXPECT_EQ(tree_.Count(), 1u);
  EXPECT_FALSE(tree_.Contains("b"));
  std::string big_key(1024, 'k');
  std::vector<std::pair<std::string, std::string>> oversize = {{big_key, "v"}};
  EXPECT_TRUE(tree_.BulkLoad(oversize).IsInvalidArgument());
}

TEST_F(BTreeTest, BulkLoadAdjacentDuplicatesLastWins) {
  std::vector<std::pair<std::string, std::string>> entries = {
      {"a", "first"}, {"a", "second"}, {"b", "only"}, {"c", "one"}, {"c", "two"}};
  uint64_t inserted = 0;
  ASSERT_TRUE(tree_.BulkLoad(entries, &inserted).ok());
  EXPECT_EQ(inserted, 3u);
  EXPECT_EQ(tree_.Count(), 3u);
  EXPECT_EQ(*tree_.Get("a"), "second");
  EXPECT_EQ(*tree_.Get("c"), "two");
}

TEST_F(BTreeTest, BulkLoadOverwritesAndInterleavesWithExistingKeys) {
  // Seed via Put, then bulk-load a run that interleaves fresh keys with overwrites.
  for (int i = 0; i < 1000; i += 2) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(tree_.Put(key, "old").ok());
  }
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 1000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    entries.emplace_back(key, "new" + std::to_string(i));
  }
  uint64_t inserted = 0;
  ASSERT_TRUE(tree_.BulkLoad(entries, &inserted).ok());
  EXPECT_EQ(inserted, 500u);  // The odd keys; evens were overwrites.
  EXPECT_EQ(tree_.Count(), 1000u);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  for (int i = 0; i < 1000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    EXPECT_EQ(*tree_.Get(key), "new" + std::to_string(i));
  }
}

TEST_F(BTreeTest, BulkLoadOverflowValuesAndScanOrder) {
  std::vector<std::pair<std::string, std::string>> entries;
  Random rng(77);
  for (int i = 0; i < 300; i++) {
    char key[16];
    snprintf(key, sizeof(key), "ov%06d", i);
    // Straddle the inline/overflow boundary.
    entries.emplace_back(key, rng.NextString(1200 + rng.Uniform(800)));
  }
  ASSERT_TRUE(tree_.BulkLoad(entries).ok());
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  size_t i = 0;
  ASSERT_TRUE(tree_.Scan("", "", [&](Slice k, Slice v) {
    EXPECT_EQ(k.ToString(), entries[i].first);
    EXPECT_EQ(v.ToString(), entries[i].second);
    i++;
    return true;
  }).ok());
  EXPECT_EQ(i, entries.size());
  // Overwriting an overflow value through BulkLoad frees the old extent cleanly.
  std::vector<std::pair<std::string, std::string>> overwrite = {
      {"ov000000", "short now"}};
  ASSERT_TRUE(tree_.BulkLoad(overwrite).ok());
  EXPECT_EQ(*tree_.Get("ov000000"), "short now");
  ASSERT_TRUE(tree_.CheckInvariants().ok());
}

}  // namespace
}  // namespace btree
}  // namespace hfad
