// Lazy background tag indexing: visibility semantics, crash-replay of acknowledged
// intents (tear sweep over every checkpoint write budget), a seeded differential check
// against an inline-indexed reference, and a multi-threaded tag-storm stress run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/filesystem.h"
#include "src/core/fsck.h"
#include "src/storage/block_device.h"
#include "tests/crash_harness.h"

namespace hfad {
namespace core {
namespace {

constexpr uint64_t kDev = 64 * 1024 * 1024;

FileSystemOptions LazyOptions() {
  FileSystemOptions opts;
  opts.lazy_indexing_threads = 0;  // Content indexing out of the way; tags only.
  opts.lazy_tag_indexing = true;
  return opts;
}

FileSystemOptions InlineOptions() {
  FileSystemOptions opts;
  opts.lazy_indexing_threads = 0;
  opts.lazy_tag_indexing = false;
  return opts;
}

std::unique_ptr<FileSystem> MakeFs(std::shared_ptr<BlockDevice> dev,
                                   FileSystemOptions opts) {
  auto fs = FileSystem::Create(std::move(dev), opts);
  EXPECT_TRUE(fs.ok()) << fs.status().ToString();
  return fs.ok() ? std::move(fs).value() : nullptr;
}

std::vector<ObjectId> StrictFind(FileSystem* fs, const std::string& query) {
  query::FindOptions o;
  o.visibility = query::Visibility::kStrict;
  auto page = fs->Find(Slice(query), o);
  EXPECT_TRUE(page.ok()) << query << ": " << page.status().ToString();
  return page.ok() ? page->ids : std::vector<ObjectId>{};
}

std::vector<ObjectId> RelaxedFind(FileSystem* fs, const std::string& query) {
  query::FindOptions o;
  o.visibility = query::Visibility::kRelaxed;
  auto page = fs->Find(Slice(query), o);
  EXPECT_TRUE(page.ok()) << query << ": " << page.status().ToString();
  return page.ok() ? page->ids : std::vector<ObjectId>{};
}

// ---------------------------------------------------------------- visibility

TEST(LazyIndexTest, StrictFindSeesEveryAcknowledgedMutation) {
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev), LazyOptions());
  std::vector<ObjectId> oids;
  for (int i = 0; i < 50; i++) {
    auto oid = fs->Create({{"UDEF", "lazy" + std::to_string(i % 5)}});
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  // Strict visibility: every acknowledged add is in the result, no drain call needed.
  std::vector<ObjectId> expect;
  for (size_t i = 0; i < oids.size(); i += 5) {
    expect.push_back(oids[i]);
  }
  EXPECT_EQ(StrictFind(fs.get(), "UDEF:lazy0"), expect);
}

TEST(LazyIndexTest, RelaxedFindServesCurrentPostingsWithoutWaiting) {
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev), LazyOptions());
  auto oid = fs->Create();
  ASSERT_TRUE(oid.ok());
  fs->tag_indexer_for_testing()->SetPausedForTesting(true);
  ASSERT_TRUE(fs->AddTag(*oid, {"UDEF", "pinned"}).ok());
  // The add is acknowledged but unapplied: relaxed misses it, the reverse map
  // (authoritative naming state) already has it.
  EXPECT_TRUE(RelaxedFind(fs.get(), "UDEF:pinned").empty());
  EXPECT_TRUE(fs->HasName(*oid, {"UDEF", "pinned"}));
  auto tags = fs->Tags(*oid);
  ASSERT_TRUE(tags.ok());
  ASSERT_EQ(tags->size(), 1u);
  EXPECT_EQ((*tags)[0].value, "pinned");
  EXPECT_EQ(fs->PendingIndexIntents().size(), 1u);

  fs->tag_indexer_for_testing()->SetPausedForTesting(false);
  ASSERT_TRUE(fs->WaitForTagIndexing().ok());
  EXPECT_EQ(RelaxedFind(fs.get(), "UDEF:pinned"), std::vector<ObjectId>{*oid});
  EXPECT_TRUE(fs->PendingIndexIntents().empty());
}

TEST(LazyIndexTest, StrictFindBlocksUntilTheHorizonIsApplied) {
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev), LazyOptions());
  auto oid = fs->Create();
  ASSERT_TRUE(oid.ok());
  fs->tag_indexer_for_testing()->SetPausedForTesting(true);
  ASSERT_TRUE(fs->AddTag(*oid, {"UDEF", "gated"}).ok());

  std::atomic<bool> done{false};
  std::vector<ObjectId> got;
  std::thread reader([&] {
    got = StrictFind(fs.get(), "UDEF:gated");
    done.store(true);
  });
  // The strict reader must be parked on the applied-sequence horizon.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done.load());
  fs->tag_indexer_for_testing()->SetPausedForTesting(false);
  reader.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(got, std::vector<ObjectId>{*oid});
}

TEST(LazyIndexTest, RemoveTagAndRemoveObjectConvergeThroughTheQueue) {
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev), LazyOptions());
  auto a = fs->Create({{"UDEF", "keep"}, {"USER", "m"}});
  auto b = fs->Create({{"UDEF", "keep"}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(fs->RemoveTag(*a, {"USER", "m"}).ok());
  // Double remove fails against the inline reverse map, exactly like inline mode.
  EXPECT_TRUE(fs->RemoveTag(*a, {"USER", "m"}).IsNotFound());
  ASSERT_TRUE(fs->Remove(*b).ok());
  EXPECT_EQ(StrictFind(fs.get(), "UDEF:keep"), std::vector<ObjectId>{*a});
  EXPECT_TRUE(StrictFind(fs.get(), "USER:m").empty());
  ASSERT_TRUE(fs->WaitForTagIndexing().ok());
  auto report = CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
}

TEST(LazyIndexTest, FsckSuppressesInFlightIntentsInsteadOfReportingOrphans) {
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev), LazyOptions());
  auto oid = fs->Create();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(fs->WaitForTagIndexing().ok());
  fs->tag_indexer_for_testing()->SetPausedForTesting(true);
  // Reverse map ahead of the forward index — previously phase 2's "missing from
  // forward index" orphan.
  ASSERT_TRUE(fs->AddTag(*oid, {"UDEF", "inflight"}).ok());
  auto report = CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
  fs->tag_indexer_for_testing()->SetPausedForTesting(false);
  ASSERT_TRUE(fs->WaitForTagIndexing().ok());
}

// ---------------------------------------------------------------- crash replay

// The tear sweep (satellite of the osd-level CheckpointTearTest): acknowledged tag
// intents with the indexer queue deliberately HALF drained, then a checkpoint cut off
// after `budget` device writes with the last one torn. Whatever the tear position —
// inside the pending-intent tree epilogue, mid page image, before the journal reset —
// reopening must rebuild the unapplied queue and strict reads must converge on every
// acknowledged tag. Large budgets let the checkpoint complete and exercise the
// persisted pending set instead of journal-suffix replay.
class LazyIndexTearTest : public ::testing::TestWithParam<int> {};

TEST_P(LazyIndexTearTest, AcknowledgedIntentsSurviveATornCheckpoint) {
  const int64_t budget = GetParam();
  FileSystemOptions opts = LazyOptions();
  opts.osd.group_commit = false;  // Every op durable on return.
  std::vector<std::pair<ObjectId, std::string>> acked;  // (oid, UDEF value)
  test::RunTornWriteCrash(
      kDev, budget,
      [&](const std::shared_ptr<FaultyBlockDevice>& faulty, test::CrashPoint* point) {
        auto fs = MakeFs(faulty, opts);
        ASSERT_NE(fs, nullptr);
        std::vector<ObjectId> oids;
        for (int i = 0; i < 6; i++) {
          auto oid = fs->Create();
          ASSERT_TRUE(oid.ok());
          oids.push_back(*oid);
        }
        // First half: acknowledged AND applied.
        for (int i = 0; i < 3; i++) {
          ASSERT_TRUE(fs->AddTag(oids[i], {"UDEF", "crash" + std::to_string(i)}).ok());
          acked.emplace_back(oids[i], "crash" + std::to_string(i));
        }
        ASSERT_TRUE(fs->WaitForTagIndexing().ok());
        // Second half: acknowledged, pinned unapplied — the crash window the design
        // is for.
        fs->tag_indexer_for_testing()->SetPausedForTesting(true);
        for (int i = 3; i < 6; i++) {
          ASSERT_TRUE(fs->AddTag(oids[i], {"UDEF", "crash" + std::to_string(i)}).ok());
          acked.emplace_back(oids[i], "crash" + std::to_string(i));
        }
        ASSERT_TRUE(fs->Sync().ok());
        EXPECT_EQ(fs->PendingIndexIntents().size(), 3u);

        point->Tear();
        (void)fs->Checkpoint();  // May fail anywhere, including mid-WriteBatch.
        point->Crash();          // Hard crash: the destructor reaches nothing.
      },
      [&](const std::shared_ptr<MemoryBlockDevice>& base) {
        auto reopened = FileSystem::Open(base, opts);
        ASSERT_TRUE(reopened.ok())
            << "budget " << budget << ": " << reopened.status().ToString();
        FileSystem* fs = reopened->get();
        ASSERT_TRUE(fs->WaitForTagIndexing().ok()) << "budget " << budget;
        for (const auto& [oid, value] : acked) {
          EXPECT_EQ(StrictFind(fs, "UDEF:" + value), std::vector<ObjectId>{oid})
              << "budget " << budget << " lost acknowledged tag " << value;
          EXPECT_TRUE(fs->HasName(oid, {"UDEF", value})) << "budget " << budget;
        }
        auto report = CheckFileSystem(fs);
        ASSERT_TRUE(report.ok()) << "budget " << budget;
        EXPECT_TRUE(report->clean())
            << "budget " << budget << ": " << report->ToString();
      });
}

INSTANTIATE_TEST_SUITE_P(TearAtEveryWrite, LazyIndexTearTest, ::testing::Range(0, 26));

// An inline (non-lazy) reopen of a lazily-written volume must apply the recovered
// intents immediately instead of seeding a queue it does not have.
TEST(LazyIndexRecoveryTest, InlineReopenAppliesRecoveredIntents) {
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  FileSystemOptions opts = LazyOptions();
  opts.osd.group_commit = false;
  ObjectId oid = 0;
  {
    auto fs = MakeFs(faulty, opts);
    ASSERT_NE(fs, nullptr);
    auto r = fs->Create();
    ASSERT_TRUE(r.ok());
    oid = *r;
    fs->tag_indexer_for_testing()->SetPausedForTesting(true);
    ASSERT_TRUE(fs->AddTag(oid, {"UDEF", "adopted"}).ok());
    ASSERT_TRUE(fs->Sync().ok());
    faulty->SetWriteBudget(0);
  }
  auto reopened = FileSystem::Open(base, InlineOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->PendingIndexIntents().size(), 0u);
  EXPECT_EQ(StrictFind(reopened->get(), "UDEF:adopted"), std::vector<ObjectId>{oid});
  auto report = CheckFileSystem(reopened->get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
}

// A clean close with the queue still partially drained: the destructor's checkpoint
// persists the pending set, and the next open re-seeds it.
TEST(LazyIndexRecoveryTest, CleanCloseCarriesUnappliedIntentsAcrossReopen) {
  auto dev = std::make_shared<MemoryBlockDevice>(kDev);
  ObjectId oid = 0;
  {
    auto fs = MakeFs(dev, LazyOptions());
    ASSERT_NE(fs, nullptr);
    auto r = fs->Create();
    ASSERT_TRUE(r.ok());
    oid = *r;
    fs->tag_indexer_for_testing()->SetPausedForTesting(true);
    ASSERT_TRUE(fs->AddTag(oid, {"UDEF", "carried"}).ok());
  }  // Destructor: Drain is a paused no-op, checkpoint persists the pending set.
  auto reopened = FileSystem::Open(dev, LazyOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_TRUE((*reopened)->WaitForTagIndexing().ok());
  EXPECT_EQ(StrictFind(reopened->get(), "UDEF:carried"), std::vector<ObjectId>{oid});
}

// ---------------------------------------------------------------- differential

// Randomized seeded workloads applied to a lazy filesystem and an inline-indexed
// reference in lockstep: after every op the acknowledged statuses must match, and at
// every sync point strict Find on the lazy side must equal Find on the reference.
TEST(LazyIndexDifferentialTest, StrictFindMatchesInlineReference) {
  const std::vector<std::string> kTags = {"UDEF", "USER"};
  const int kValues = 8;
  for (uint64_t seed : {7u, 19u, 43u}) {
    auto lazy = MakeFs(std::make_shared<MemoryBlockDevice>(kDev), LazyOptions());
    auto ref = MakeFs(std::make_shared<MemoryBlockDevice>(kDev), InlineOptions());
    ASSERT_NE(lazy, nullptr);
    ASSERT_NE(ref, nullptr);
    Random rng(seed);
    std::vector<ObjectId> oids;
    auto check_all = [&] {
      for (const std::string& tag : kTags) {
        for (int v = 0; v < kValues; v++) {
          std::string q = tag + ":v" + std::to_string(v);
          EXPECT_EQ(StrictFind(lazy.get(), q), StrictFind(ref.get(), q))
              << "seed " << seed << " query " << q;
        }
      }
      std::string boolean = "UDEF:v1 AND USER:v2";
      EXPECT_EQ(StrictFind(lazy.get(), boolean), StrictFind(ref.get(), boolean))
          << "seed " << seed;
      std::string negated = "UDEF:v3 AND NOT USER:v0";
      EXPECT_EQ(StrictFind(lazy.get(), negated), StrictFind(ref.get(), negated))
          << "seed " << seed;
    };
    for (int op = 0; op < 400; op++) {
      uint64_t dice = rng.Uniform(100);
      if (oids.empty() || dice < 10) {
        auto a = lazy->Create();
        auto b = ref->Create();
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        ASSERT_EQ(*a, *b) << "oid sequences diverged";
        oids.push_back(*a);
      } else if (dice < 55) {
        ObjectId oid = oids[rng.Uniform(oids.size())];
        TagValue name{kTags[rng.Uniform(kTags.size())],
                      "v" + std::to_string(rng.Uniform(kValues))};
        Status sa = lazy->AddTag(oid, name);
        Status sb = ref->AddTag(oid, name);
        EXPECT_EQ(sa.code(), sb.code()) << "seed " << seed << " op " << op;
      } else if (dice < 85) {
        ObjectId oid = oids[rng.Uniform(oids.size())];
        TagValue name{kTags[rng.Uniform(kTags.size())],
                      "v" + std::to_string(rng.Uniform(kValues))};
        Status sa = lazy->RemoveTag(oid, name);
        Status sb = ref->RemoveTag(oid, name);
        EXPECT_EQ(sa.code(), sb.code()) << "seed " << seed << " op " << op;
      } else {
        // A staged batch: 1-4 adds/removes committed as one journal record.
        NamespaceBatch lb = lazy->NewBatch();
        NamespaceBatch rb = ref->NewBatch();
        int n = 1 + static_cast<int>(rng.Uniform(4));
        for (int i = 0; i < n; i++) {
          ObjectId oid = oids[rng.Uniform(oids.size())];
          TagValue name{kTags[rng.Uniform(kTags.size())],
                        "v" + std::to_string(rng.Uniform(kValues))};
          if (rng.OneIn(3)) {
            ASSERT_TRUE(lb.RemoveTag(oid, name).ok());
            ASSERT_TRUE(rb.RemoveTag(oid, name).ok());
          } else {
            ASSERT_TRUE(lb.AddTag(oid, name).ok());
            ASSERT_TRUE(rb.AddTag(oid, name).ok());
          }
        }
        Status sa = lb.Commit();
        Status sb = rb.Commit();
        EXPECT_EQ(sa.code(), sb.code()) << "seed " << seed << " op " << op;
      }
      if (op % 100 == 99) {
        check_all();
      }
    }
    check_all();
    ASSERT_TRUE(lazy->WaitForTagIndexing().ok());
    auto report = CheckFileSystem(lazy.get());
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean()) << "seed " << seed << ": " << report->ToString();
  }
}

// ---------------------------------------------------------------- multi-worker

// With several application workers, tags are hash-partitioned so per-tag FIFO order
// is preserved; add/remove/add sequences queued before any of them apply must net to
// the same final postings as single-worker operation.
TEST(LazyIndexTest, MultiWorkerAppliesPerTagFifoOrder) {
  FileSystemOptions opts = LazyOptions();
  opts.tag_indexer_workers = 4;
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev), opts);
  ASSERT_NE(fs, nullptr);
  auto oid = fs->Create();
  ASSERT_TRUE(oid.ok());
  fs->tag_indexer_for_testing()->SetPausedForTesting(true);
  for (int t = 0; t < 32; t++) {
    TagValue name{"UDEF", "mw" + std::to_string(t)};
    ASSERT_TRUE(fs->AddTag(*oid, name).ok());
    ASSERT_TRUE(fs->RemoveTag(*oid, name).ok());
    if (t % 2 == 0) ASSERT_TRUE(fs->AddTag(*oid, name).ok());
  }
  EXPECT_FALSE(fs->PendingIndexIntents().empty());
  fs->tag_indexer_for_testing()->SetPausedForTesting(false);
  ASSERT_TRUE(fs->WaitForTagIndexing().ok());
  for (int t = 0; t < 32; t++) {
    std::string q = "UDEF:mw" + std::to_string(t);
    if (t % 2 == 0) {
      EXPECT_EQ(StrictFind(fs.get(), q), std::vector<ObjectId>{*oid}) << q;
    } else {
      EXPECT_TRUE(StrictFind(fs.get(), q).empty()) << q;
    }
  }
  auto report = CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
}

// ---------------------------------------------------------------- concurrency

// 8 threads against one lazy filesystem: 4 tag-storm writers, a strict reader, a
// relaxed reader, and an fsck loop, with the background indexer draining throughout.
// Registered in the CI ThreadSanitizer job; the assertions here are liveness (no
// deadlock between ReserveSlots / the worker / checkpoints), ack-loss (strict reads
// converge on everything after the storm), and a clean final fsck.
TEST(LazyIndexStressTest, TagStormWithConcurrentReadersAndFsck) {
  FileSystemOptions opts = LazyOptions();
  // A small queue so writers regularly block in ReserveSlots and exercise the
  // backpressure path against the worker and checkpoints. Three workers (uneven
  // hash split) so the TSan job covers multi-worker draining too.
  opts.tag_intent_queue_capacity = 64;
  opts.tag_indexer_workers = 3;
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev), opts);
  ASSERT_NE(fs, nullptr);

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 250;
  std::vector<ObjectId> oids;
  for (int i = 0; i < 32; i++) {
    auto oid = fs->Create();
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      Random rng(1000 + w);
      for (int i = 0; i < kOpsPerWriter; i++) {
        ObjectId oid = oids[rng.Uniform(oids.size())];
        TagValue name{"UDEF", "w" + std::to_string(w) + "v" +
                                  std::to_string(rng.Uniform(16))};
        if (rng.OneIn(4)) {
          Status s = fs->RemoveTag(oid, name);
          if (!s.ok() && !s.IsNotFound()) failures.fetch_add(1);
        } else {
          if (!fs->AddTag(oid, name).ok()) failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {  // Strict reader.
    Random rng(2000);
    while (!stop.load()) {
      query::FindOptions o;
      o.visibility = query::Visibility::kStrict;
      auto page = fs->Find(Slice("UDEF:w" + std::to_string(rng.Uniform(4)) + "v" +
                                 std::to_string(rng.Uniform(16))),
                           o);
      if (!page.ok()) failures.fetch_add(1);
    }
  });
  threads.emplace_back([&] {  // Relaxed reader.
    Random rng(3000);
    while (!stop.load()) {
      query::FindOptions o;
      o.visibility = query::Visibility::kRelaxed;
      auto page = fs->Find(Slice("UDEF:w" + std::to_string(rng.Uniform(4)) + "v" +
                                 std::to_string(rng.Uniform(16))),
                           o);
      if (!page.ok()) failures.fetch_add(1);
    }
  });
  threads.emplace_back([&] {  // Fsck loop: must run to completion, mid-storm reports
    while (!stop.load()) {     // may be transiently stale and are not asserted clean.
      auto report = CheckFileSystem(fs.get());
      if (!report.ok()) failures.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  for (int w = 0; w < kWriters; w++) {
    threads[w].join();
  }
  stop.store(true);
  for (size_t i = kWriters; i < threads.size(); i++) {
    threads[i].join();
  }
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(fs->WaitForTagIndexing().ok());
  EXPECT_TRUE(fs->PendingIndexIntents().empty());

  // Quiesced: the forward postings must now mirror the reverse map exactly.
  auto report = CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
  // And strict Find agrees with the authoritative reverse map for every value.
  for (int w = 0; w < kWriters; w++) {
    for (int v = 0; v < 16; v++) {
      std::string value = "w" + std::to_string(w) + "v" + std::to_string(v);
      std::vector<ObjectId> expect;
      for (ObjectId oid : oids) {
        if (fs->HasName(oid, {"UDEF", value})) {
          expect.push_back(oid);
        }
      }
      std::sort(expect.begin(), expect.end());
      EXPECT_EQ(StrictFind(fs.get(), "UDEF:" + value), expect) << value;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace hfad
