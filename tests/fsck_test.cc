// Tests for the offline consistency checker, including detection of injected damage.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/core/filesystem.h"
#include "src/core/fsck.h"
#include "src/posix/posix_fs.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace core {
namespace {

constexpr uint64_t kDev = 64 * 1024 * 1024;

std::unique_ptr<FileSystem> MakeFs(std::shared_ptr<BlockDevice> dev) {
  FileSystemOptions opts;
  opts.lazy_indexing_threads = 0;
  auto fs = FileSystem::Create(std::move(dev), opts);
  EXPECT_TRUE(fs.ok());
  return std::move(fs).value();
}

TEST(FsckTest, FreshVolumeIsClean) {
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev));
  auto report = CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_EQ(report->objects_checked, 0u);
}

TEST(FsckTest, PopulatedVolumeIsClean) {
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev));
  auto pfs = std::move(posix::PosixFs::Mount(fs.get())).value();
  ASSERT_TRUE(pfs->Mkdir("/d").ok());
  for (int i = 0; i < 50; i++) {
    auto oid = fs->Create({{"USER", "u" + std::to_string(i % 5)},
                           {"UDEF", "tag" + std::to_string(i)}});
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE(fs->Write(*oid, 0, "content " + std::to_string(i)).ok());
    ASSERT_TRUE(fs->IndexContent(*oid).ok());
  }
  auto fd = pfs->Open("/d/file", posix::kWrite | posix::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pfs->Close(*fd).ok());

  auto report = CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_EQ(report->objects_checked, 53u);  // 50 tagged + "/" + "/d" + "/d/file".
  EXPECT_GT(report->names_checked, 100u);
  EXPECT_EQ(report->postings_checked, 50u);
}

TEST(FsckTest, CleanAfterChurn) {
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev));
  std::vector<ObjectId> oids;
  for (int i = 0; i < 60; i++) {
    auto oid = fs->Create({{"UDEF", "churn" + std::to_string(i % 7)}});
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE(fs->Write(*oid, 0, std::string(100 + i, 'x')).ok());
    ASSERT_TRUE(fs->IndexContent(*oid).ok());
    oids.push_back(*oid);
  }
  for (size_t i = 0; i < oids.size(); i += 2) {
    ASSERT_TRUE(fs->Remove(oids[i]).ok());
  }
  auto report = CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_EQ(report->objects_checked, 30u);
  EXPECT_EQ(report->postings_checked, 30u);
}

TEST(FsckTest, DetectsOrphanedForwardIndexEntry) {
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev));
  auto oid = fs->Create({{"UDEF", "legit"}});
  ASSERT_TRUE(oid.ok());
  // Inject damage: add a forward index entry with no reverse record, referencing a
  // dead object.
  ASSERT_TRUE(fs->indexes()->store("UDEF")->Add("phantom", 424242).ok());

  auto report = CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  bool mentions_dead = false;
  for (const std::string& p : report->problems) {
    if (p.find("dead object 424242") != std::string::npos) {
      mentions_dead = true;
    }
  }
  EXPECT_TRUE(mentions_dead) << report->ToString();
}

TEST(FsckTest, DetectsDanglingFulltextPosting) {
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev));
  auto oid = fs->Create();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(fs->Write(*oid, 0, "ghost words").ok());
  ASSERT_TRUE(fs->IndexContent(*oid).ok());
  // Delete the object behind the index's back (the OSD API, not FileSystem::Remove).
  ASSERT_TRUE(fs->volume()->DeleteObject(*oid).ok());

  auto report = CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  EXPECT_NE(report->ToString().find("full-text index contains dead object"),
            std::string::npos)
      << report->ToString();
}

TEST(FsckTest, DetectsMissingForwardEntry) {
  auto fs = MakeFs(std::make_shared<MemoryBlockDevice>(kDev));
  auto oid = fs->Create({{"UDEF", "will-vanish"}});
  ASSERT_TRUE(oid.ok());
  // Remove the forward entry directly, leaving the reverse record dangling.
  ASSERT_TRUE(fs->indexes()->store("UDEF")->Remove("will-vanish", *oid).ok());

  auto report = CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  EXPECT_NE(report->ToString().find("missing from forward index"), std::string::npos)
      << report->ToString();
}

}  // namespace
}  // namespace core
}  // namespace hfad
