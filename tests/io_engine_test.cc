// Tests for the src/io/ completion-based IoEngine: exactly-once user_data
// round-trips through Poll/Wait, callback delivery, error propagation from
// fault-injected runs, shutdown with in-flight ops, multi-submitter stress
// (run under TSan in CI), and parity of FaultyBlockDevice accounting between
// the synchronous device API and the engine path. The io_uring backend is
// exercised when the runtime allows it, with a skip (not a failure) otherwise.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/io/io_engine.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace io {
namespace {

constexpr uint64_t kMiB = 1024 * 1024;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("hfad_io_engine_test_" + name))
      .string();
}

// Engine factory parameterization: every behavioral test runs against the
// thread-pool backend; the io_uring-specific suite below covers the other
// backend when the environment permits.
std::unique_ptr<IoEngine> MakePoolEngine(BlockDevice* dev, int threads = 3) {
  IoEngineOptions opts;
  opts.threads = threads;
  opts.backend = IoBackend::kThreadPool;
  return CreateIoEngine(dev, opts);
}

TEST(IoEngineTest, UserDataRoundTripsExactlyOnceThroughPollAndWait) {
  MemoryBlockDevice dev(kMiB);
  auto engine = MakePoolEngine(&dev, 4);

  constexpr uint64_t kOps = 200;
  for (uint64_t i = 0; i < kOps; ++i) {
    IoRequest req;
    req.user_data = 1000 + i;
    switch (i % 3) {
      case 0:
        req.op = IoOp::kWrite;
        req.offset = 4096 + i * 16;
        req.data = Slice("payload");
        break;
      case 1:
        req.op = IoOp::kRead;
        req.offset = 0;
        req.size = 8;
        break;
      default:
        req.op = IoOp::kSync;
        break;
    }
    auto h = engine->Submit(std::move(req));
    ASSERT_TRUE(h.ok()) << h.status().ToString();
  }

  // Completion order is unspecified; the contract is each user_data arrives
  // exactly once. Mix Poll and Wait while draining.
  std::multiset<uint64_t> seen;
  std::vector<IoCompletion> batch;
  while (seen.size() < kOps) {
    batch.clear();
    if (engine->Poll(&batch) == 0) {
      engine->Wait(&batch);
    }
    for (const auto& c : batch) {
      EXPECT_TRUE(c.status.ok()) << c.status.ToString();
      seen.insert(c.user_data);
    }
  }
  EXPECT_EQ(seen.size(), kOps);
  for (uint64_t i = 0; i < kOps; ++i) {
    EXPECT_EQ(seen.count(1000 + i), 1u) << "user_data " << 1000 + i;
  }
  EXPECT_EQ(engine->submitted(), kOps);
  EXPECT_EQ(engine->completed(), kOps);
  EXPECT_EQ(engine->in_flight(), 0u);
  EXPECT_GE(engine->max_queue_depth(), 1u);
}

TEST(IoEngineTest, CallbacksBypassTheCompletionQueue) {
  MemoryBlockDevice dev(kMiB);
  auto engine = MakePoolEngine(&dev);

  IoRequest write;
  write.op = IoOp::kWrite;
  write.offset = 512;
  write.data = Slice("callback data");
  ASSERT_TRUE(SubmitAndWait(engine.get(), std::move(write)).ok());

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::string read_back;
  IoRequest read;
  read.op = IoOp::kRead;
  read.offset = 512;
  read.size = 13;
  read.on_complete = [&](IoCompletion c) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(c.status.ok()) << c.status.ToString();
    read_back = std::move(c.read_data);
    done = true;
    cv.notify_one();
  };
  ASSERT_TRUE(engine->Submit(std::move(read)).ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  EXPECT_EQ(read_back, "callback data");

  // Nothing may have leaked into the Poll/Wait queue.
  std::vector<IoCompletion> leaked;
  EXPECT_EQ(engine->Poll(&leaked), 0u);
}

TEST(IoEngineTest, ErrorsFromAFailedRunPropagateToTheCompletion) {
  auto base = std::make_unique<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice faulty(std::move(base));
  auto engine = MakePoolEngine(&faulty, 1);

  faulty.SetWriteBudget(2);
  std::vector<Status> results;
  for (int i = 0; i < 4; ++i) {
    IoRequest req;
    req.op = IoOp::kWrite;
    req.offset = 4096 * (1 + i);
    req.data = Slice("x");
    results.push_back(SubmitAndWait(engine.get(), std::move(req)));
  }
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  EXPECT_FALSE(results[3].ok());

  // Sync after the injected crash fails through the engine exactly as it does
  // through the direct device API.
  IoRequest sync;
  sync.op = IoOp::kSync;
  EXPECT_FALSE(SubmitAndWait(engine.get(), std::move(sync)).ok());
}

TEST(IoEngineTest, FaultyDeviceAccountingIsIdenticalThroughTheEngine) {
  // Same op sequence executed (a) directly and (b) via the engine must land on
  // identical writes_attempted / syncs_attempted counts — the crash harness
  // depends on budget positions meaning the same thing on both paths.
  auto run_ops = [](FaultyBlockDevice* dev, IoEngine* engine) {
    std::vector<WriteExtent> batch = {{8192, Slice("tail")},
                                      {4096, Slice("head")},
                                      {4100, Slice("-mid-")}};
    if (engine == nullptr) {
      ASSERT_TRUE(dev->Write(0, Slice("one")).ok());
      ASSERT_TRUE(dev->WriteBatch(std::move(batch)).ok());
      ASSERT_TRUE(dev->Sync().ok());
    } else {
      IoRequest w;
      w.op = IoOp::kWrite;
      w.offset = 0;
      w.data = Slice("one");
      ASSERT_TRUE(SubmitAndWait(engine, std::move(w)).ok());
      IoRequest v;
      v.op = IoOp::kWritev;
      v.extents = std::move(batch);
      ASSERT_TRUE(SubmitAndWait(engine, std::move(v)).ok());
      IoRequest s;
      s.op = IoOp::kSync;
      ASSERT_TRUE(SubmitAndWait(engine, std::move(s)).ok());
    }
  };

  FaultyBlockDevice direct(std::make_unique<MemoryBlockDevice>(kMiB));
  run_ops(&direct, nullptr);

  FaultyBlockDevice via_engine(std::make_unique<MemoryBlockDevice>(kMiB));
  auto engine = MakePoolEngine(&via_engine, 2);
  run_ops(&via_engine, engine.get());

  EXPECT_EQ(direct.writes_attempted(), via_engine.writes_attempted());
  EXPECT_EQ(direct.syncs_attempted(), via_engine.syncs_attempted());
}

TEST(IoEngineTest, ShutdownAbortsQueuedOpsAndCompletesEverySubmission) {
  auto base = std::make_unique<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice faulty(std::move(base));

  // Park the single worker inside Sync() so later submissions stack up in the
  // engine queue, then shut down with them in flight.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  bool parked = false;
  faulty.SetSyncHook([&] {
    std::unique_lock<std::mutex> lock(gate_mu);
    parked = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return gate_open; });
  });

  auto engine = MakePoolEngine(&faulty, 1);

  std::atomic<int> completions{0};
  std::atomic<int> aborted{0};
  auto counting_cb = [&](IoCompletion c) {
    completions.fetch_add(1);
    if (!c.status.ok()) aborted.fetch_add(1);
  };

  IoRequest sync;
  sync.op = IoOp::kSync;
  sync.on_complete = counting_cb;
  ASSERT_TRUE(engine->Submit(std::move(sync)).ok());
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return parked; });
  }
  constexpr int kQueued = 5;
  for (int i = 0; i < kQueued; ++i) {
    IoRequest w;
    w.op = IoOp::kWrite;
    w.offset = 4096 * (1 + i);
    w.data = Slice("queued");
    w.on_complete = counting_cb;
    ASSERT_TRUE(engine->Submit(std::move(w)).ok());
  }

  std::thread shutdown_thread([&] { engine->Shutdown(); });
  // Shutdown flips the refusal flag and swaps out the queue in one critical
  // section, so keep submitting until one is refused: at that point every
  // accepted write above (and in this loop) is provably in the orphan set,
  // since the lone worker is still parked inside the sync hook.
  int extra = 0;
  for (;;) {
    IoRequest w;
    w.op = IoOp::kWrite;
    w.offset = 4096 * (1 + kQueued + extra);
    w.data = Slice("racing");
    w.on_complete = counting_cb;
    if (!engine->Submit(std::move(w)).ok()) break;
    ++extra;
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  shutdown_thread.join();

  // Exactly-once across the board: the parked sync ran to completion, every
  // queued write was aborted — no completion lost, none duplicated.
  EXPECT_EQ(completions.load(), 1 + kQueued + extra);
  EXPECT_EQ(aborted.load(), kQueued + extra);
  EXPECT_EQ(engine->completed(), engine->submitted());

  auto refused = engine->Submit(IoRequest{});
  EXPECT_FALSE(refused.ok());

  // Wait() on a drained, shut-down engine returns 0 instead of blocking.
  std::vector<IoCompletion> none;
  EXPECT_EQ(engine->Wait(&none), 0u);
}

TEST(IoEngineTest, EightSubmitterStress) {
  MemoryBlockDevice dev(8 * kMiB);
  auto engine = MakePoolEngine(&dev, 4);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> ok_count{0};
  std::atomic<int> done_count{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        IoRequest req;
        if (i % 7 == 0) {
          req.op = IoOp::kSync;
        } else {
          req.op = IoOp::kWrite;
          req.offset =
              static_cast<uint64_t>(t) * kMiB + static_cast<uint64_t>(i) * 64;
          req.data = Slice("stress");
        }
        req.user_data = static_cast<uint64_t>(t) * 1000 + i;
        req.on_complete = [&](IoCompletion c) {
          if (c.status.ok()) ok_count.fetch_add(1);
          if (done_count.fetch_add(1) + 1 == kThreads * kOpsPerThread) {
            std::lock_guard<std::mutex> lock(done_mu);
            done_cv.notify_all();
          }
        };
        auto h = engine->Submit(std::move(req));
        ASSERT_TRUE(h.ok());
      }
    });
  }
  for (auto& s : submitters) s.join();
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock,
                 [&] { return done_count.load() == kThreads * kOpsPerThread; });
  }
  EXPECT_EQ(ok_count.load(), kThreads * kOpsPerThread);
  EXPECT_EQ(engine->submitted(), static_cast<uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(engine->in_flight(), 0u);
}

TEST(IoEngineTest, CompletionCallbackMaySubmitFollowUpRequests) {
  // The journal's async chain submits the sync from the write's completion;
  // prove that re-entrant Submit from a completion thread is safe.
  MemoryBlockDevice dev(kMiB);
  auto engine = MakePoolEngine(&dev, 2);

  std::mutex mu;
  std::condition_variable cv;
  bool chain_done = false;
  Status chain_status;

  IoRequest write;
  write.op = IoOp::kWrite;
  write.offset = 4096;
  write.data = Slice("chained");
  write.on_complete = [&](IoCompletion wc) {
    if (!wc.status.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      chain_status = wc.status;
      chain_done = true;
      cv.notify_one();
      return;
    }
    IoRequest sync;
    sync.op = IoOp::kSync;
    sync.on_complete = [&](IoCompletion sc) {
      std::lock_guard<std::mutex> lock(mu);
      chain_status = sc.status;
      chain_done = true;
      cv.notify_one();
    };
    ASSERT_TRUE(engine->Submit(std::move(sync)).ok());
  };
  ASSERT_TRUE(engine->Submit(std::move(write)).ok());
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return chain_done; });
  EXPECT_TRUE(chain_status.ok()) << chain_status.ToString();
}

// ------------------------------------------------------------------ io_uring

TEST(UringEngineTest, RoundTripsThroughTheKernelWhenAvailable) {
  std::string path = TempPath("uring_roundtrip");
  std::filesystem::remove(path);
  auto dev = FileBlockDevice::Open(path, kMiB);
  ASSERT_TRUE(dev.ok()) << dev.status().ToString();

  IoEngineOptions opts;
  opts.backend = IoBackend::kAuto;
  auto engine = CreateIoEngine(dev->get(), opts);
  if (std::string(engine->backend_name()) != "io_uring") {
    GTEST_SKIP() << "io_uring unavailable (not built or kernel refused); "
                    "thread-pool fallback covered by IoEngineTest";
  }

  IoRequest write;
  write.op = IoOp::kWrite;
  write.offset = 4096;
  write.data = Slice("via the ring");
  ASSERT_TRUE(SubmitAndWait(engine.get(), std::move(write)).ok());

  // Out-of-order adjacent extents: the engine must coalesce exactly like the
  // synchronous WriteBatch path before handing runs to the kernel.
  IoRequest writev;
  writev.op = IoOp::kWritev;
  writev.extents = {{16384, Slice("tail")}, {8192, Slice("head")},
                    {8196, Slice("-mid-")}};
  ASSERT_TRUE(SubmitAndWait(engine.get(), std::move(writev)).ok());

  IoRequest sync;
  sync.op = IoOp::kSync;
  ASSERT_TRUE(SubmitAndWait(engine.get(), std::move(sync)).ok());

  struct ReadCase {
    uint64_t offset;
    size_t size;
    std::string expect;
  };
  for (const auto& rc : {ReadCase{4096, 12, "via the ring"},
                         ReadCase{8192, 9, "head-mid-"},
                         ReadCase{16384, 4, "tail"}}) {
    IoRequest read;
    read.op = IoOp::kRead;
    read.offset = rc.offset;
    read.size = rc.size;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::string got;
    Status st;
    read.on_complete = [&](IoCompletion c) {
      std::lock_guard<std::mutex> lock(mu);
      st = c.status;
      got = std::move(c.read_data);
      done = true;
      cv.notify_one();
    };
    ASSERT_TRUE(engine->Submit(std::move(read)).ok());
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(got, rc.expect);
  }

  // Reads/writes beyond the fixed capacity must fail instead of growing the
  // file the way a raw kernel write would.
  IoRequest oob;
  oob.op = IoOp::kWrite;
  oob.offset = kMiB;
  oob.data = Slice("x");
  EXPECT_FALSE(SubmitAndWait(engine.get(), std::move(oob)).ok());

  engine->Shutdown();
  EXPECT_EQ(engine->completed(), engine->submitted());
  std::filesystem::remove(path);
}

TEST(UringEngineTest, MemoryDevicesNeverSelectUring) {
  // No native fd -> CreateIoEngine must pick the thread pool even on kAuto,
  // because kernel IO would bypass MemoryBlockDevice/FaultyBlockDevice
  // semantics entirely.
  MemoryBlockDevice dev(kMiB);
  IoEngineOptions opts;
  opts.backend = IoBackend::kAuto;
  auto engine = CreateIoEngine(&dev, opts);
  EXPECT_STREQ(engine->backend_name(), "thread_pool");

  FaultyBlockDevice faulty(std::make_unique<MemoryBlockDevice>(kMiB));
  EXPECT_EQ(faulty.native_fd(), -1);
  auto faulty_engine = CreateIoEngine(&faulty, opts);
  EXPECT_STREQ(faulty_engine->backend_name(), "thread_pool");
}

}  // namespace
}  // namespace io
}  // namespace hfad
