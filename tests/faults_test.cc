// Fault-domain hardening tests: page checksums, transient-IO retry, scrub
// repair/quarantine, volume health gates, and degraded-shard cluster availability.
//
// The corruption sweep here is the PR's acceptance bar: a single bit flipped in ANY
// page of the volume is either invisible (a region with its own integrity check, or
// bytes nothing reads) or caught — by read-path verify, by scrub, or by an open-time
// CRC — and never served to a caller as wrong data.
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/filesystem.h"
#include "src/core/fsck.h"
#include "src/osd/osd.h"
#include "src/osd/osd_cluster.h"
#include "src/osd/scrubber.h"
#include "src/storage/block_device.h"
#include "src/storage/pager.h"
#include "tests/crash_harness.h"

namespace hfad {
namespace osd {
namespace {

constexpr uint64_t kSmallDev = 4 * 1024 * 1024;
constexpr uint64_t kDev = 16 * 1024 * 1024;

std::string Payload(int i, size_t len = 8000) {
  std::string out;
  out.reserve(len);
  while (out.size() < len) {
    out += "object-" + std::to_string(i) + "-payload|";
  }
  out.resize(len);
  return out;
}

OsdOptions SyncOptions() {
  OsdOptions opts;
  opts.io_threads = 0;  // Synchronous paths: deterministic read/write counts.
  return opts;
}

// ---------------------------------------------------------------- corruption sweep

// Flip one bit in every page of the device in turn. For each flip: scrub must flag
// the page whenever it carries a checksum, and every object read must return either
// the exact expected bytes or a non-OK status — never silently wrong data.
TEST(FaultsTest, BitFlipSweepNeverServesCorruptDataSilently) {
  auto base = std::make_shared<MemoryBlockDevice>(kSmallDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  auto created = Osd::Create(faulty, SyncOptions());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto osd = std::move(created).value();
  ASSERT_NE(osd->checksums(), nullptr);

  constexpr int kObjects = 12;
  std::vector<ObjectId> oids;
  for (int i = 0; i < kObjects; i++) {
    auto oid = osd->CreateObject();
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE(osd->Write(*oid, 0, Payload(i)).ok());
    oids.push_back(*oid);
  }
  ASSERT_TRUE(osd->Checkpoint().ok());

  // Pages carrying a CRC after the checkpoint; the sweep must catch a flip in each.
  std::vector<uint64_t> stamped;
  for (uint64_t off = 0; off + kPageSize <= kSmallDev; off += kPageSize) {
    if (osd->checksums()->HasChecksum(off)) {
      stamped.push_back(off);
    }
  }
  ASSERT_GT(stamped.size(), 20u) << "checkpoint should have stamped data pages";

  uint64_t stamped_caught = 0, stamped_seen = 0;
  test::RunBitFlipSweep(base, faulty.get(), kSmallDev, kPageSize, [&](uint64_t off) {
    const bool was_stamped = osd->checksums()->HasChecksum(off);
    ScrubReport rep;
    ASSERT_TRUE(osd->ScrubNow(&rep).ok());
    if (was_stamped) {
      stamped_seen++;
      EXPECT_GE(rep.errors_found, 1u)
          << "scrub missed a bit flip in stamped page at offset " << off;
      if (rep.errors_found >= 1) {
        stamped_caught++;
      }
    }
    for (int i = 0; i < kObjects; i++) {
      std::string out;
      Status s = osd->Read(oids[i], 0, Payload(i).size(), &out);
      if (s.ok()) {
        ASSERT_EQ(out, Payload(i))
            << "corrupt bytes served silently for object " << oids[i]
            << " with flip at offset " << off;
      }
    }
    // Restore iteration independence: RunBitFlipSweep puts the pristine bytes back;
    // we refresh the CRC entry (a quarantined entry stays quarantined otherwise) and
    // clear the health escalation the detection rightfully made.
    std::string pristine;
    ASSERT_TRUE(base->Read(off, kPageSize, &pristine).ok());
    if (was_stamped) {
      osd->checksums()->Stamp(off, Slice(pristine));
    }
    osd->health().Reset();
  });
  EXPECT_EQ(stamped_caught, stamped_seen);
  EXPECT_GE(stamped_seen, stamped.size());
}

// ---------------------------------------------------------------- scrub repair paths

// Returns a stamped page offset that currently backs object data (the highest stamped
// offset is always in the heap, past the fixed metadata regions).
uint64_t LastStampedPage(Osd* osd, uint64_t device_bytes) {
  uint64_t last = 0;
  for (uint64_t off = 0; off + kPageSize <= device_bytes; off += kPageSize) {
    if (osd->checksums()->HasChecksum(off)) {
      last = off;
    }
  }
  return last;
}

TEST(FaultsTest, ScrubRepairsCorruptPageFromCachedCopy) {
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  auto created = Osd::Create(faulty, SyncOptions());
  ASSERT_TRUE(created.ok());
  auto osd = std::move(created).value();

  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(osd->Write(*oid, 0, Payload(7)).ok());
  ASSERT_TRUE(osd->Checkpoint().ok());

  // Pick a stamped page that is RESIDENT in the pager — only cached pages can be
  // repaired in place (object data reads bypass the cache, so data pages get
  // quarantined instead). Under no-steal the cached clean copy IS the checkpoint
  // content, which is exactly what the repair re-stamps to disk.
  uint64_t victim = 0;
  for (uint64_t off = 0; off + kPageSize <= kDev; off += kPageSize) {
    if (osd->checksums()->HasChecksum(off) && osd->pager()->Peek(off)) {
      victim = off;
    }
  }
  ASSERT_GT(victim, 0u);
  ASSERT_TRUE(faulty->FlipBit(victim + 100, 3).ok());

  ScrubReport rep;
  ASSERT_TRUE(osd->ScrubNow(&rep).ok());
  EXPECT_GE(rep.errors_found, 1u);
  EXPECT_GE(rep.pages_repaired, 1u);
  EXPECT_EQ(rep.pages_quarantined, 0u);
  EXPECT_EQ(osd->health_state(), HealthState::kDegraded);

  // The repair lands at the next checkpoint: device bytes match the CRC again.
  ASSERT_TRUE(osd->Checkpoint().ok());
  ScrubReport after;
  ASSERT_TRUE(osd->ScrubNow(&after).ok());
  EXPECT_EQ(after.errors_found, 0u);
  std::string out;
  ASSERT_TRUE(osd->Read(*oid, 0, Payload(7).size(), &out).ok());
  EXPECT_EQ(out, Payload(7));
}

TEST(FaultsTest, ScrubQuarantinesCorruptPageWithNoCachedCopy) {
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  OsdOptions opts = SyncOptions();
  uint64_t victim = 0;
  {
    auto created = Osd::Create(faulty, opts);
    ASSERT_TRUE(created.ok());
    auto osd = std::move(created).value();
    auto oid = osd->CreateObject();
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE(osd->Write(*oid, 0, Payload(3)).ok());
    ASSERT_TRUE(osd->Checkpoint().ok());
    victim = LastStampedPage(osd.get(), kDev);
    ASSERT_TRUE(osd->Close().ok());
  }
  // Cold cache after reopen: the corrupt device page has no in-memory copy left.
  ASSERT_TRUE(faulty->FlipBit(victim + 17, 5).ok());
  auto reopened = Osd::Open(faulty, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto osd = std::move(reopened).value();

  ScrubReport rep;
  ASSERT_TRUE(osd->ScrubNow(&rep).ok());
  EXPECT_GE(rep.errors_found, 1u);
  EXPECT_GE(rep.pages_quarantined, 1u);
  EXPECT_TRUE(osd->checksums()->IsQuarantined(victim));
  EXPECT_EQ(osd->health_state(), HealthState::kDegraded);
  EXPECT_FALSE(osd->checksums()->QuarantinedPages().empty());
}

// ---------------------------------------------------------------- transient retry

TEST(FaultsTest, TransientReadFaultIsAbsorbedByRetry) {
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  OsdOptions opts = SyncOptions();  // Default RetryPolicy: 3 attempts.
  auto created = Osd::Create(faulty, opts);
  ASSERT_TRUE(created.ok());
  auto osd = std::move(created).value();
  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(osd->Write(*oid, 0, Payload(1)).ok());
  ASSERT_TRUE(osd->Close().ok());

  auto reopened = Osd::Open(faulty, opts);
  ASSERT_TRUE(reopened.ok());
  osd = std::move(reopened).value();
  // Fail the next two device reads; the third attempt of the retry loop succeeds.
  faulty->SetReadFaults(0, 2);
  std::string out;
  ASSERT_TRUE(osd->Read(*oid, 0, Payload(1).size(), &out).ok());
  EXPECT_EQ(out, Payload(1));
  EXPECT_EQ(osd->health_state(), HealthState::kHealthy);
}

TEST(FaultsTest, PersistentReadFaultDegradesVolumeButKeepsItWritable) {
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  OsdOptions opts = SyncOptions();
  auto created = Osd::Create(faulty, opts);
  ASSERT_TRUE(created.ok());
  auto osd = std::move(created).value();
  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(osd->Write(*oid, 0, Payload(2)).ok());
  ASSERT_TRUE(osd->Close().ok());

  auto reopened = Osd::Open(faulty, opts);
  ASSERT_TRUE(reopened.ok());
  osd = std::move(reopened).value();
  faulty->SetReadFaults(0, -1);  // Every read fails, past any retry budget.
  std::string out;
  EXPECT_FALSE(osd->Read(*oid, 0, 16, &out).ok());
  EXPECT_EQ(osd->health_state(), HealthState::kDegraded);

  // Degraded is not read-only: once the fault clears, both reads and writes serve.
  faulty->SetReadFaults(-1, 0);
  ASSERT_TRUE(osd->Read(*oid, 0, Payload(2).size(), &out).ok());
  EXPECT_EQ(out, Payload(2));
  EXPECT_TRUE(osd->Write(*oid, 0, "still writable").ok());
}

// Sweep a transient two-read fault across every read position of a reopen+read
// workload: the retry policy must absorb all of them with zero caller-visible errors.
TEST(FaultsTest, ReadFaultSweepIsInvisibleUnderRetry) {
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  OsdOptions opts = SyncOptions();
  std::vector<ObjectId> oids;
  {
    auto created = Osd::Create(faulty, opts);
    ASSERT_TRUE(created.ok());
    auto osd = std::move(created).value();
    for (int i = 0; i < 8; i++) {
      auto oid = osd->CreateObject();
      ASSERT_TRUE(oid.ok());
      ASSERT_TRUE(osd->Write(*oid, 0, Payload(i)).ok());
      oids.push_back(*oid);
    }
    ASSERT_TRUE(osd->Close().ok());
  }
  test::RunReadFaultSweep(faulty.get(), /*max_after=*/30, /*fail_count=*/2,
                          [&](int64_t after) {
                            auto r = Osd::Open(faulty, opts);
                            ASSERT_TRUE(r.ok()) << "open failed with transient fault after "
                                                << after << " reads: " << r.status().ToString();
                            auto osd = std::move(r).value();
                            for (size_t i = 0; i < oids.size(); i++) {
                              std::string out;
                              ASSERT_TRUE(osd->Read(oids[i], 0, Payload(i).size(), &out).ok());
                              EXPECT_EQ(out, Payload(i));
                            }
                            ASSERT_TRUE(osd->Close().ok());
                          });
}

// ---------------------------------------------------------------- health gates

TEST(FaultsTest, ReadOnlyVolumeServesReadsAndRejectsMutations) {
  auto osd_r = Osd::Create(std::make_shared<MemoryBlockDevice>(kDev), SyncOptions());
  ASSERT_TRUE(osd_r.ok());
  auto osd = std::move(osd_r).value();
  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(osd->Write(*oid, 0, Payload(9)).ok());

  osd->health().Escalate(HealthState::kReadOnly, "test: simulated persistent write failure");

  std::string out;
  EXPECT_TRUE(osd->Read(*oid, 0, Payload(9).size(), &out).ok());
  EXPECT_EQ(out, Payload(9));
  EXPECT_TRUE(osd->Stat(*oid).ok());
  EXPECT_TRUE(osd->Write(*oid, 0, "x").IsReadOnly());
  EXPECT_TRUE(osd->Insert(*oid, 0, "x").IsReadOnly());
  EXPECT_TRUE(osd->RemoveRange(*oid, 0, 1).IsReadOnly());
  EXPECT_TRUE(osd->Truncate(*oid, 1).IsReadOnly());
  EXPECT_TRUE(osd->DeleteObject(*oid).IsReadOnly());
  EXPECT_TRUE(osd->CreateObject().status().IsReadOnly());

  osd->health().Escalate(HealthState::kFailed, "test: simulated total failure");
  EXPECT_FALSE(osd->Read(*oid, 0, 1, &out).ok());
  EXPECT_FALSE(osd->Stat(*oid).ok());

  // Metrics reflect the transition (gauge + name).
  std::string metrics = osd->DumpMetrics();
  EXPECT_NE(metrics.find("\"volume_health\""), std::string::npos);
  EXPECT_NE(metrics.find("failed"), std::string::npos);

  osd->health().Reset();  // Let teardown close cleanly.
}

TEST(FaultsTest, CheckpointWriteFailureEscalatesToReadOnly) {
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  OsdOptions opts = SyncOptions();
  opts.retry = RetryPolicy::None();  // One shot: the budget kill is persistent.
  auto created = Osd::Create(faulty, opts);
  ASSERT_TRUE(created.ok());
  auto osd = std::move(created).value();
  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(osd->Write(*oid, 0, Payload(4)).ok());
  ASSERT_TRUE(osd->Sync().ok());

  // Budget 2: the checkpoint's journal epilogue (one batched write + sync) still
  // lands — journal-phase failures are clean aborts that deliberately don't
  // escalate — and the device then dies under the in-place phase, which does.
  faulty->SetWriteBudget(2);
  Status ck = osd->Checkpoint();
  EXPECT_FALSE(ck.ok()) << ck.ToString();
  EXPECT_EQ(osd->health_state(), HealthState::kReadOnly);
  EXPECT_TRUE(osd->Write(*oid, 0, "y").IsReadOnly());
  std::string out;
  EXPECT_TRUE(osd->Read(*oid, 0, Payload(4).size(), &out).ok());
  EXPECT_EQ(out, Payload(4));
}

// ---------------------------------------------------------------- degraded cluster

std::vector<std::shared_ptr<BlockDevice>> MakeDevices(size_t n) {
  std::vector<std::shared_ptr<BlockDevice>> out;
  for (size_t i = 0; i < n; i++) {
    out.push_back(std::make_shared<MemoryBlockDevice>(kDev));
  }
  return out;
}

// The acceptance scenario: one persistently failing shard fails exactly its own
// objects; every other shard stays fully available and the health gauges say so.
TEST(FaultsTest, FailedShardLeavesOtherShardsAvailable) {
  auto r = OsdCluster::Create(MakeDevices(4), SyncOptions());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto cluster = std::move(r).value();

  std::vector<ObjectId> oids;
  for (int i = 0; i < 64; i++) {
    auto oid = cluster->CreateObject();
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE(cluster->Write(*oid, 0, Payload(i, 500)).ok());
    oids.push_back(*oid);
  }

  const size_t victim = 2;
  cluster->shard(victim)->health().Escalate(HealthState::kFailed,
                                            "test: simulated dead shard");
  EXPECT_EQ(cluster->worst_health(), HealthState::kFailed);
  EXPECT_EQ(cluster->shard_health(victim), HealthState::kFailed);
  EXPECT_EQ(cluster->shard_health(0), HealthState::kHealthy);

  size_t on_victim = 0, served = 0;
  for (size_t i = 0; i < oids.size(); i++) {
    std::string out;
    Status s = cluster->Read(oids[i], 0, 500, &out);
    if (cluster->ShardOf(oids[i]) == victim) {
      on_victim++;
      EXPECT_FALSE(s.ok()) << "read served from a failed shard";
      EXPECT_FALSE(cluster->Write(oids[i], 0, "z").ok());
    } else {
      served++;
      ASSERT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(out, Payload(static_cast<int>(i), 500));
      EXPECT_TRUE(cluster->Write(oids[i], 0, Payload(static_cast<int>(i), 500)).ok());
    }
  }
  EXPECT_GT(on_victim, 0u) << "hash placed nothing on the victim; test is vacuous";
  EXPECT_GT(served, 0u);

  // New creations keep landing on healthy shards' ids; ones hashed to the victim fail
  // loudly instead of landing elsewhere (placement stays deterministic).
  size_t created_ok = 0, created_failed = 0;
  for (int i = 0; i < 32; i++) {
    auto oid = cluster->CreateObject();
    if (oid.ok()) {
      created_ok++;
      EXPECT_NE(cluster->ShardOf(*oid), victim);
    } else {
      created_failed++;
    }
  }
  EXPECT_GT(created_ok, 0u);
  EXPECT_GT(created_failed, 0u);

  // Cluster-wide durability ops report the failure but still run the healthy shards.
  EXPECT_FALSE(cluster->Checkpoint().ok());
  std::string out;
  ASSERT_TRUE(cluster->Read(oids[0], 0, 500, &out).ok());

  cluster->shard(victim)->health().Reset();  // Close cleanly in teardown.
}

TEST(FaultsTest, ReadOnlyShardRejectsForeignAppends) {
  auto r = OsdCluster::Create(MakeDevices(4), SyncOptions());
  ASSERT_TRUE(r.ok());
  auto cluster = std::move(r).value();
  auto oid = cluster->CreateObject();
  ASSERT_TRUE(oid.ok());

  size_t owner = cluster->ShardOf(*oid);
  cluster->shard(owner)->health().Escalate(HealthState::kReadOnly, "test");
  uint64_t token = 0;
  EXPECT_TRUE(cluster->AppendForeign(*oid, "namespace-record", &token).IsReadOnly());
  cluster->shard(owner)->health().Reset();
}

// ---------------------------------------------------------------- scrub vs. live load

// TSan target: a background scrubber at full tilt under an 8-thread tag storm. Proves
// the scrubber's lock discipline (flush_mu_ shared -> stripe Peek, no content-byte
// reads from cached pages) against concurrent tag mutations, checkpoints, and reads.
TEST(FaultsTest, ScrubUnderTagStormIsRaceFree) {
  core::FileSystemOptions opts;
  opts.lazy_indexing_threads = 0;
  opts.osd.scrub_interval_ms = 1;  // Scrub continuously.
  opts.osd.scrub_pages_per_batch = 64;
  opts.osd.scrub_pause_us = 0;
  auto fs_r = core::FileSystem::Create(std::make_shared<MemoryBlockDevice>(kDev), opts);
  ASSERT_TRUE(fs_r.ok()) << fs_r.status().ToString();
  auto fs = std::move(fs_r).value();

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        std::string val = "t" + std::to_string(t) + "-" + std::to_string(i);
        auto oid = fs->Create({{"UDEF", val}});
        if (!oid.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (!fs->Write(*oid, 0, Payload(i, 600)).ok() ||
            !fs->AddTag(*oid, {"USER", "storm"}).ok()) {
          failures.fetch_add(1);
          continue;
        }
        std::string out;
        if (!fs->Read(*oid, 0, 600, &out).ok() || out != Payload(i, 600)) {
          failures.fetch_add(1);
        }
        if (i % 16 == 0 && !fs->RemoveTag(*oid, {"USER", "storm"}).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Foreground synchronous passes race the background thread and the storm.
  for (int i = 0; i < 5; i++) {
    ScrubReport rep;
    ASSERT_TRUE(fs->cluster()->ScrubAll(&rep).ok());
    EXPECT_EQ(rep.errors_found, 0u) << "scrub flagged a healthy volume under load";
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fs->cluster()->worst_health(), HealthState::kHealthy);

  auto report = core::CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
  EXPECT_EQ(report->quarantined_pages, 0u);
}

// Quarantined pages surface through fsck so the operator sees which shard/offset died.
TEST(FaultsTest, FsckReportsQuarantinedPages) {
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  core::FileSystemOptions opts;
  opts.lazy_indexing_threads = 0;
  opts.osd.io_threads = 0;
  uint64_t victim = 0;
  {
    auto fs_r = core::FileSystem::Create(faulty, opts);
    ASSERT_TRUE(fs_r.ok());
    auto fs = std::move(fs_r).value();
    auto oid = fs->Create({{"UDEF", "doomed"}});
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE(fs->Write(*oid, 0, Payload(0)).ok());
    ASSERT_TRUE(fs->Checkpoint().ok());
    victim = LastStampedPage(fs->cluster()->shard(0), kDev);
  }  // Destructor closes the filesystem; cache is cold at reopen.
  ASSERT_TRUE(faulty->FlipBit(victim + 9, 2).ok());
  auto fs_r = core::FileSystem::Open(faulty, opts);
  ASSERT_TRUE(fs_r.ok()) << fs_r.status().ToString();
  auto fs = std::move(fs_r).value();
  ScrubReport rep;
  ASSERT_TRUE(fs->cluster()->ScrubAll(&rep).ok());
  ASSERT_GE(rep.pages_quarantined, 1u);

  auto report = core::CheckFileSystem(fs.get());
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->quarantined_pages, 1u);
  EXPECT_FALSE(report->clean());
}

// Pre-checksum volumes (superblock without a checksum region) still open and serve;
// they simply run unverified, and ScrubNow is a no-op.
TEST(FaultsTest, VolumeCreatedWithoutChecksumsStillOpens) {
  auto dev = std::make_shared<MemoryBlockDevice>(kDev);
  OsdOptions opts = SyncOptions();
  opts.page_checksums = false;
  ObjectId oid_v = 0;
  {
    auto created = Osd::Create(dev, opts);
    ASSERT_TRUE(created.ok());
    auto osd = std::move(created).value();
    auto oid = osd->CreateObject();
    ASSERT_TRUE(oid.ok());
    oid_v = *oid;
    ASSERT_TRUE(osd->Write(*oid, 0, Payload(5)).ok());
    ASSERT_TRUE(osd->Close().ok());
  }
  auto reopened = Osd::Open(dev, opts);
  ASSERT_TRUE(reopened.ok());
  auto osd = std::move(reopened).value();
  EXPECT_EQ(osd->checksums(), nullptr);
  std::string out;
  ASSERT_TRUE(osd->Read(oid_v, 0, Payload(5).size(), &out).ok());
  EXPECT_EQ(out, Payload(5));
  ScrubReport rep;
  ASSERT_TRUE(osd->ScrubNow(&rep).ok());
  EXPECT_EQ(rep.pages_scanned, 0u);
}

// The checksum table survives close/reopen via the superblock generation gate, and a
// stale table (generation mismatch) is dropped rather than trusted.
TEST(FaultsTest, ChecksumTablePersistsAcrossReopen) {
  auto dev = std::make_shared<MemoryBlockDevice>(kDev);
  OsdOptions opts = SyncOptions();
  ObjectId oid_v = 0;
  {
    auto created = Osd::Create(dev, opts);
    ASSERT_TRUE(created.ok());
    auto osd = std::move(created).value();
    auto oid = osd->CreateObject();
    ASSERT_TRUE(oid.ok());
    oid_v = *oid;
    ASSERT_TRUE(osd->Write(*oid, 0, Payload(6)).ok());
    ASSERT_TRUE(osd->Close().ok());
  }
  auto reopened = Osd::Open(dev, opts);
  ASSERT_TRUE(reopened.ok());
  auto osd = std::move(reopened).value();
  ASSERT_NE(osd->checksums(), nullptr);
  // A loaded table means reads verify immediately — and scrub scans real pages.
  ScrubReport rep;
  ASSERT_TRUE(osd->ScrubNow(&rep).ok());
  EXPECT_GT(rep.pages_scanned, 0u);
  EXPECT_EQ(rep.errors_found, 0u);
  std::string out;
  ASSERT_TRUE(osd->Read(oid_v, 0, Payload(6).size(), &out).ok());
  EXPECT_EQ(out, Payload(6));
}

}  // namespace
}  // namespace osd
}  // namespace hfad
