// Observability: histogram bucketing and percentiles, concurrent recording, the trace
// ring (nesting, sampling, wraparound, concurrent readers), query EXPLAIN annotation,
// and DumpMetrics JSON emitted during a live multi-threaded tag storm.
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/core/filesystem.h"
#include "src/query/query.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace {

using core::FileSystem;
using core::FileSystemOptions;
using core::SearchCursor;
using index::ObjectId;
using index::TagValue;

constexpr uint64_t kDev = 64 * 1024 * 1024;

// ---------------------------------------------------------------- histograms

TEST(MetricsBuckets, RoundTripAndMonotonic) {
  int prev_idx = -1;
  const std::vector<uint64_t> samples = {0,    1,    2,     3,          4,
                                         5,    7,    8,     100,        1000,
                                         4096, 65535, 1u << 20, (uint64_t{1} << 40) + 12345,
                                         ~uint64_t{0} >> 1};
  for (uint64_t v : samples) {
    int idx = metrics::BucketIndex(v);
    ASSERT_GE(idx, prev_idx) << v;
    prev_idx = idx;
    ASSERT_LT(idx, metrics::kNumBuckets) << v;
    EXPECT_LE(metrics::BucketLowerBound(idx), v) << v;
    if (idx + 1 < metrics::kNumBuckets) {
      EXPECT_GT(metrics::BucketLowerBound(idx + 1), v) << v;
    }
  }
}

TEST(MetricsHistogram, RecordsCountSumMaxAndPercentiles) {
  metrics::ResetAll();
  uint64_t sum = 0;
  for (uint64_t v = 1; v <= 1000; v++) {
    metrics::Record(metrics::Hist::kFind, v);
    sum += v;
  }
  metrics::HistSnapshot snap = metrics::HistSnapshot::Take(metrics::Hist::kFind);
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.Mean(), sum / 1000);
  // Percentiles carry the log-linear bucketing's bounded relative error.
  uint64_t p50 = snap.Percentile(0.5);
  uint64_t p99 = snap.Percentile(0.99);
  EXPECT_GE(p50, 400u);
  EXPECT_LE(p50, 625u);
  EXPECT_GE(p99, 850u);
  EXPECT_LE(p99, 1000u);
  EXPECT_LE(snap.Percentile(1.0), snap.max);
}

TEST(MetricsHistogram, DisableStopsRecordingAndClockReads) {
  metrics::ResetAll();
  metrics::SetEnabled(false);
  metrics::Record(metrics::Hist::kCreate, 123);
  {
    metrics::ScopedLatency latency(metrics::Hist::kCreate);
  }
  metrics::SetEnabled(true);
  EXPECT_EQ(metrics::HistSnapshot::Take(metrics::Hist::kCreate).count, 0u);
  metrics::Record(metrics::Hist::kCreate, 123);
  EXPECT_EQ(metrics::HistSnapshot::Take(metrics::Hist::kCreate).count, 1u);
}

TEST(MetricsHistogram, ConcurrentRecordingLosesNothing) {
  metrics::ResetAll();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; i++) {
        metrics::Record(metrics::Hist::kAddTag, static_cast<uint64_t>(i % 1024) + 1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  metrics::HistSnapshot snap = metrics::HistSnapshot::Take(metrics::Hist::kAddTag);
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t per_thread_sum = 0;
  for (int i = 0; i < kPerThread; i++) {
    per_thread_sum += static_cast<uint64_t>(i % 1024) + 1;
  }
  EXPECT_EQ(snap.sum, per_thread_sum * kThreads);
  EXPECT_EQ(snap.max, 1024u);
}

// ---------------------------------------------------------------- trace ring

TEST(TraceRing, CapturesNestedSpansOfOneOperation) {
  trace::SetSampleEvery(1);
  trace::ResetRing();
  {
    trace::OpScope op("outer_op");
    EXPECT_TRUE(trace::Active());
    trace::SpanScope span("inner_span");
  }
  EXPECT_FALSE(trace::Active());
  std::vector<trace::SpanRecord> spans = trace::DumpRecent();
  ASSERT_EQ(spans.size(), 2u);
  // Newest first: the root publishes at scope exit, after its children.
  EXPECT_EQ(spans[0].name, "outer_op");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "inner_span");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[0].op_id, spans[1].op_id);
  EXPECT_LE(spans[1].duration_ns, spans[0].duration_ns);
  trace::SetSampleEvery(64);
}

TEST(TraceRing, SampleEveryZeroDisables) {
  trace::SetSampleEvery(0);
  trace::ResetRing();
  {
    trace::OpScope op("never_recorded");
    EXPECT_FALSE(trace::Active());
  }
  EXPECT_TRUE(trace::DumpRecent().empty());
  trace::SetSampleEvery(64);
}

TEST(TraceRing, WraparoundKeepsNewestSpans) {
  trace::SetSampleEvery(1);
  trace::ResetRing();
  const size_t total = trace::kRingSize + 100;
  for (size_t i = 0; i < total; i++) {
    trace::OpScope op("wrap_op");
  }
  std::vector<trace::SpanRecord> all = trace::DumpRecent();
  EXPECT_LE(all.size(), trace::kRingSize);
  EXPECT_GE(all.size(), trace::kRingSize / 2);  // Tolerate skipped torn slots.
  std::vector<trace::SpanRecord> ten = trace::DumpRecent(10);
  ASSERT_EQ(ten.size(), 10u);
  // Newest first means descending op ids for identical single-span ops.
  for (size_t i = 1; i < ten.size(); i++) {
    EXPECT_GT(ten[i - 1].op_id, ten[i].op_id);
  }
  trace::SetSampleEvery(64);
}

TEST(TraceRing, ConcurrentPublishAndDump) {
  trace::SetSampleEvery(1);
  trace::ResetRing();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; t++) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        trace::OpScope op("storm_op");
        trace::SpanScope span("storm_span");
      }
    });
  }
  for (int i = 0; i < 200; i++) {
    std::vector<trace::SpanRecord> spans = trace::DumpRecent(64);
    for (const trace::SpanRecord& s : spans) {
      // Names are always string literals from the fixed instrumentation set.
      EXPECT_TRUE(s.name == "storm_op" || s.name == "storm_span");
    }
  }
  stop.store(true);
  for (auto& th : writers) {
    th.join();
  }
  trace::SetSampleEvery(64);
}

// ---------------------------------------------------------------- EXPLAIN

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    options.osd.journaling = false;
    auto fs = FileSystem::Create(std::make_shared<MemoryBlockDevice>(kDev), options);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
    // Skewed cardinalities: huge on all 300, mid on 30, rare on 3.
    for (int i = 0; i < 300; i++) {
      auto oid = fs_->Create({{"UDEF", "huge"}});
      ASSERT_TRUE(oid.ok());
      if (i % 10 == 0) {
        ASSERT_TRUE(fs_->AddTag(*oid, {"UDEF", "mid"}).ok());
      }
      if (i % 100 == 0) {
        ASSERT_TRUE(fs_->AddTag(*oid, {"UDEF", "rare"}).ok());
      }
    }
  }

  std::unique_ptr<FileSystem> fs_;
};

TEST_F(ExplainTest, ThreeTermConjunctionReportsOrderEstimatesAndActuals) {
  query::Explain explain;
  query::PlanStats stats;
  query::FindOptions options;
  options.explain = &explain;
  options.stats = &stats;
  auto page = fs_->Find("UDEF:huge AND UDEF:mid AND UDEF:rare", options);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->ids.size(), 3u);

  const query::PlanNode& root = explain.root;
  EXPECT_TRUE(explain.planner_optimized);
  EXPECT_EQ(root.op, "and");
  ASSERT_EQ(root.children.size(), 3u);

  // Children mirror textual order; planner_order records execution order.
  const query::PlanNode& huge = root.children[0];
  const query::PlanNode& mid = root.children[1];
  const query::PlanNode& rare = root.children[2];
  EXPECT_EQ(huge.detail, "UDEF=huge");
  EXPECT_EQ(mid.detail, "UDEF=mid");
  EXPECT_EQ(rare.detail, "UDEF=rare");

  // Estimates come from the cardinality caches (exact here); actuals are measured.
  EXPECT_EQ(huge.estimate, 300u);
  EXPECT_EQ(mid.estimate, 30u);
  EXPECT_EQ(rare.estimate, 3u);
  EXPECT_EQ(huge.actual, 300u);
  EXPECT_EQ(mid.actual, 30u);
  EXPECT_EQ(rare.actual, 3u);

  // Cheapest drives; the 100x conjunct degrades to membership probes.
  EXPECT_EQ(rare.planner_order, 0);
  EXPECT_EQ(mid.planner_order, 1);
  EXPECT_EQ(huge.planner_order, 2);
  EXPECT_TRUE(huge.degraded_to_probe);
  EXPECT_FALSE(rare.degraded_to_probe);

  // Root carries the whole-plan execution stats and counter deltas.
  EXPECT_GT(root.stats.index_lookups, 0u);
  EXPECT_GT(root.stats.membership_probes, 0u);
  EXPECT_EQ(root.stats.index_lookups, stats.index_lookups);

  const std::string text = explain.ToString();
  EXPECT_NE(text.find("order=0 (driver)"), std::string::npos) << text;
  EXPECT_NE(text.find("UDEF=rare"), std::string::npos) << text;
  EXPECT_NE(text.find("[probe]"), std::string::npos) << text;
  const std::string json = explain.ToJson();
  EXPECT_NE(json.find("\"planner_optimized\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"planner_order\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"estimate\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"actual\""), std::string::npos) << json;
}

TEST_F(ExplainTest, NotAndOrShapesAnnotate) {
  query::Explain explain;
  query::FindOptions options;
  options.explain = &explain;
  auto page = fs_->Find("(UDEF:mid OR UDEF:rare) AND NOT UDEF:missing", options);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(explain.root.op, "and");
  ASSERT_EQ(explain.root.children.size(), 2u);
  EXPECT_EQ(explain.root.children[0].op, "or");
  EXPECT_EQ(explain.root.children[1].op, "not");
  ASSERT_EQ(explain.root.children[1].children.size(), 1u);
  EXPECT_EQ(explain.root.children[1].children[0].detail, "UDEF=missing");
  EXPECT_EQ(explain.root.children[1].children[0].actual, 0u);
}

// ---------------------------------------------------------------- DumpMetrics

void ExpectBalancedJson(const std::string& doc) {
  long depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < doc.size(); i++) {
    char c = doc[i];
    if (in_string) {
      if (c == '\\') {
        i++;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      depth++;
    } else if (c == '}' || c == ']') {
      depth--;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(DumpMetricsTest, JsonDuringLiveTagStorm) {
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.lazy_tag_indexing = true;
  auto fs_or = FileSystem::Create(std::make_shared<MemoryBlockDevice>(kDev), options);
  ASSERT_TRUE(fs_or.ok()) << fs_or.status().ToString();
  std::unique_ptr<FileSystem> fs = std::move(fs_or).value();

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 150;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&fs, &failures, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        auto oid = fs->Create({{"UDEF", "storm"}});
        if (!oid.ok()) {
          failures++;
          continue;
        }
        if (!fs->AddTag(*oid, {"USER", "t" + std::to_string(t)}).ok()) {
          failures++;
        }
      }
    });
  }
  // Dump (and read) continuously while the storm runs: the JSON emitter and every
  // gauge/lock accessor it calls must be safe against live mutation.
  for (int i = 0; i < 40; i++) {
    std::string doc = fs->DumpMetrics();
    ExpectBalancedJson(doc);
    std::string osd_doc = fs->volume()->DumpMetrics();
    ExpectBalancedJson(osd_doc);
    query::FindOptions relaxed;
    relaxed.visibility = query::Visibility::kRelaxed;
    relaxed.limit = 8;
    (void)fs->Find("UDEF:storm", relaxed);
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(fs->WaitForTagIndexing().ok());

  const std::string doc = fs->DumpMetrics();
  ExpectBalancedJson(doc);
  for (const char* key :
       {"\"schema_version\"", "\"scope\"", "\"filesystem\"", "\"counters\"",
        "\"histograms\"", "\"create\"", "\"add_tag\"", "\"find\"", "\"search_text\"",
        "\"journal_commit\"", "\"page_read\"", "\"gauges\"", "\"journal_occupancy_pct\"",
        "\"pager_resident_pages\"", "\"pager_dirty_pages\"", "\"indexer_queue_depth\"",
        "\"checkpointer_state\"", "\"locks\"", "\"tag_shards\"", "\"pager_stripes\"",
        "\"top_contended\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << "missing " << key << " in " << doc;
  }
  const std::string osd_doc = fs->volume()->DumpMetrics();
  EXPECT_NE(osd_doc.find("\"scope\":\"osd\""), std::string::npos) << osd_doc;
  EXPECT_NE(osd_doc.find("\"object_mutex\""), std::string::npos) << osd_doc;
}

// ---------------------------------------------------------------- visibility options

TEST(VisibilityOptions, SearchTextAndCursorExposeVisibility) {
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.lazy_tag_indexing = true;
  auto fs_or = FileSystem::Create(std::make_shared<MemoryBlockDevice>(kDev), options);
  ASSERT_TRUE(fs_or.ok()) << fs_or.status().ToString();
  std::unique_ptr<FileSystem> fs = std::move(fs_or).value();

  auto oid = fs->Create({{"UDEF", "doc"}});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(fs->Write(*oid, 0, Slice("tagged observability document")).ok());
  ASSERT_TRUE(fs->IndexContent(*oid).ok());
  ASSERT_TRUE(fs->WaitForTagIndexing().ok());

  FileSystem::SearchTextOptions search;
  search.limit = 4;
  search.visibility = query::Visibility::kRelaxed;
  auto hits = fs->SearchText({"observability"}, search);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].docid, *oid);

  SearchCursor cursor = fs->OpenCursor();
  cursor.set_visibility(query::Visibility::kRelaxed);
  EXPECT_EQ(cursor.visibility(), query::Visibility::kRelaxed);
  ASSERT_TRUE(cursor.Refine({"UDEF", "doc"}).ok());
  auto results = cursor.Results();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0], *oid);
}

}  // namespace
}  // namespace hfad
