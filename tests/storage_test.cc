// Unit tests for hfad_storage: block devices, buddy allocator, pager, superblock.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/crc32.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/storage/block_device.h"
#include "src/storage/buddy_allocator.h"
#include "src/storage/pager.h"
#include "src/storage/superblock.h"

namespace hfad {
namespace {

constexpr uint64_t kMiB = 1024 * 1024;
// Allocator regions never start at 0: offset 0 is the superblock in a real volume.
constexpr uint64_t kBase = 4096;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("hfad_storage_test_" + name)).string();
}

// ---------------------------------------------------------------- MemoryBlockDevice

TEST(MemoryBlockDeviceTest, WriteReadRoundTrip) {
  MemoryBlockDevice dev(kMiB);
  EXPECT_EQ(dev.Size(), kMiB);
  ASSERT_TRUE(dev.Write(4096, Slice("hello")).ok());
  std::string out;
  ASSERT_TRUE(dev.Read(4096, 5, &out).ok());
  EXPECT_EQ(out, "hello");
}

TEST(MemoryBlockDeviceTest, FreshDeviceReadsZeros) {
  MemoryBlockDevice dev(8192);
  std::string out;
  ASSERT_TRUE(dev.Read(0, 16, &out).ok());
  EXPECT_EQ(out, std::string(16, '\0'));
}

TEST(MemoryBlockDeviceTest, OutOfBoundsRejected) {
  MemoryBlockDevice dev(8192);
  std::string out;
  EXPECT_FALSE(dev.Read(8192, 1, &out).ok());
  EXPECT_FALSE(dev.Read(8190, 4, &out).ok());
  EXPECT_FALSE(dev.Write(8192, Slice("x")).ok());
  EXPECT_FALSE(dev.Write(8190, Slice("abcd")).ok());
  // Exactly at the boundary is fine.
  EXPECT_TRUE(dev.Write(8188, Slice("abcd")).ok());
  EXPECT_TRUE(dev.Read(8188, 4, &out).ok());
}

TEST(MemoryBlockDeviceTest, OverlappingWritesLastWins) {
  MemoryBlockDevice dev(8192);
  ASSERT_TRUE(dev.Write(0, Slice("aaaaaaaa")).ok());
  ASSERT_TRUE(dev.Write(4, Slice("bbbb")).ok());
  std::string out;
  ASSERT_TRUE(dev.Read(0, 8, &out).ok());
  EXPECT_EQ(out, "aaaabbbb");
}

// ---------------------------------------------------------------- FileBlockDevice

TEST(FileBlockDeviceTest, PersistsAcrossReopen) {
  std::string path = TempPath("persist");
  std::filesystem::remove(path);
  {
    auto dev = FileBlockDevice::Open(path, kMiB);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    ASSERT_TRUE((*dev)->Write(4096, Slice("durable data")).ok());
    ASSERT_TRUE((*dev)->Sync().ok());
  }
  {
    auto dev = FileBlockDevice::Open(path, kMiB);
    ASSERT_TRUE(dev.ok());
    std::string out;
    ASSERT_TRUE((*dev)->Read(4096, 12, &out).ok());
    EXPECT_EQ(out, "durable data");
  }
  std::filesystem::remove(path);
}

TEST(FileBlockDeviceTest, RespectsCapacity) {
  std::string path = TempPath("capacity");
  std::filesystem::remove(path);
  auto dev = FileBlockDevice::Open(path, 8192);
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ((*dev)->Size(), 8192u);
  EXPECT_FALSE((*dev)->Write(8192, Slice("x")).ok());
  std::string out;
  EXPECT_FALSE((*dev)->Read(8192, 1, &out).ok());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- FaultyBlockDevice

TEST(FaultyBlockDeviceTest, UnlimitedByDefault) {
  auto base = std::make_shared<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice dev(base);
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(dev.Write(0, Slice("x")).ok());
  }
  EXPECT_EQ(dev.writes_attempted(), 100u);
}

TEST(FaultyBlockDeviceTest, BudgetExhaustionFailsWrites) {
  auto base = std::make_shared<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice dev(base);
  dev.SetWriteBudget(3);
  EXPECT_TRUE(dev.Write(0, Slice("a")).ok());
  EXPECT_TRUE(dev.Write(1, Slice("b")).ok());
  EXPECT_TRUE(dev.Write(2, Slice("c")).ok());
  EXPECT_FALSE(dev.Write(3, Slice("d")).ok());
  EXPECT_FALSE(dev.Write(4, Slice("e")).ok());
  // Reads still succeed after write failures.
  std::string out;
  EXPECT_TRUE(dev.Read(0, 3, &out).ok());
  EXPECT_EQ(out, "abc");
}

TEST(FaultyBlockDeviceTest, TornWritePersistsOnlyPrefix) {
  auto base = std::make_shared<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice dev(base);
  dev.SetWriteBudget(0);
  dev.EnableTornWrites(true);
  std::string payload(256, 'Z');
  EXPECT_FALSE(dev.Write(0, Slice(payload)).ok());
  std::string out;
  ASSERT_TRUE(base->Read(0, 256, &out).ok());
  // Some (possibly zero-length) prefix of Z's, then untouched zeros — never all Z's.
  size_t z_run = 0;
  while (z_run < out.size() && out[z_run] == 'Z') {
    z_run++;
  }
  EXPECT_LT(z_run, 256u);
  for (size_t i = z_run; i < out.size(); i++) {
    EXPECT_EQ(out[i], '\0') << "byte " << i << " written past the torn prefix";
  }
}

// ---------------------------------------------------------------- WriteBatch

// Out-of-order adjacent extents coalesce into one device run; the gap starts another.
TEST(WriteBatchTest, MemoryCoalescesSortedAdjacentExtents) {
  MemoryBlockDevice dev(kMiB);
  stats::ResetAll();
  std::vector<WriteExtent> batch = {
      {4, Slice("45")}, {0, Slice("0123")}, {6, Slice("6789")}, {100, Slice("far")}};
  ASSERT_TRUE(dev.WriteBatch(std::move(batch)).ok());
  EXPECT_EQ(stats::Get(stats::Counter::kDeviceWriteBatches), 1u);
  EXPECT_EQ(stats::Get(stats::Counter::kDeviceBatchRuns), 2u);  // [0,10) and [100,103).
  std::string out;
  ASSERT_TRUE(dev.Read(0, 10, &out).ok());
  EXPECT_EQ(out, "0123456789");
  ASSERT_TRUE(dev.Read(100, 3, &out).ok());
  EXPECT_EQ(out, "far");
}

TEST(WriteBatchTest, FileDeviceAssemblesRunsWithPwritev) {
  std::string path = TempPath("writebatch");
  std::remove(path.c_str());
  auto dev = FileBlockDevice::Open(path, kMiB);
  ASSERT_TRUE(dev.ok());
  std::vector<WriteExtent> batch = {
      {8192, Slice("tail")}, {4096, Slice("head")}, {4100, Slice("-mid-")}};
  ASSERT_TRUE((*dev)->WriteBatch(std::move(batch)).ok());
  ASSERT_TRUE((*dev)->Sync().ok());
  std::string out;
  ASSERT_TRUE((*dev)->Read(4096, 9, &out).ok());
  EXPECT_EQ(out, "head-mid-");
  ASSERT_TRUE((*dev)->Read(8192, 4, &out).ok());
  EXPECT_EQ(out, "tail");
  std::remove(path.c_str());
}

// A single coalesced run with more parts than IOV_MAX (1024 on Linux) must span
// multiple pwritev windows without losing or misplacing a byte — regression test for
// the window-offset bug where window 2+ wrote past the end of the run.
TEST(WriteBatchTest, FileDeviceRunsLargerThanIovMax) {
  std::string path = TempPath("writebatch_iovmax");
  std::remove(path.c_str());
  auto dev = FileBlockDevice::Open(path, kMiB);
  ASSERT_TRUE(dev.ok());
  constexpr size_t kParts = 1030;  // > IOV_MAX, 3 bytes each, all adjacent: one run.
  std::vector<std::string> bufs;
  bufs.reserve(kParts);
  std::vector<WriteExtent> batch;
  std::string expect;
  for (size_t i = 0; i < kParts; i++) {
    bufs.push_back(std::string(1, static_cast<char>('a' + (i % 26))) +
                   std::string(2, static_cast<char>('0' + (i % 10))));
    batch.push_back(WriteExtent{kPageSize + 3 * i, Slice(bufs.back())});
    expect += bufs.back();
  }
  ASSERT_TRUE((*dev)->WriteBatch(std::move(batch)).ok());
  std::string out;
  ASSERT_TRUE((*dev)->Read(kPageSize, expect.size(), &out).ok());
  EXPECT_EQ(out, expect);
  // Nothing leaked past the end of the run.
  ASSERT_TRUE((*dev)->Read(kPageSize + expect.size(), 64, &out).ok());
  EXPECT_EQ(out, std::string(64, '\0'));
  std::remove(path.c_str());
}

TEST(WriteBatchTest, EmptyAndSingleExtentBatches) {
  MemoryBlockDevice dev(kMiB);
  ASSERT_TRUE(dev.WriteBatch({}).ok());
  ASSERT_TRUE(dev.WriteBatch({{64, Slice("one")}}).ok());
  std::string out;
  ASSERT_TRUE(dev.Read(64, 3, &out).ok());
  EXPECT_EQ(out, "one");
}

// Each coalesced run consumes one write-budget unit, so a batch can crash between runs
// (first run durable, second torn, third lost) — the torn-batch crash shape the journal
// watermark and checkpoint recovery are tested against.
TEST(WriteBatchTest, FaultyDeviceTearsMidBatch) {
  auto base = std::make_shared<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice dev(base);
  dev.SetWriteBudget(1);
  dev.EnableTornWrites(true);
  std::vector<WriteExtent> batch = {
      {0, Slice("AAAA")}, {8192, Slice("BBBB")}, {16384, Slice("CCCC")}};
  EXPECT_FALSE(dev.WriteBatch(std::move(batch)).ok());
  std::string out;
  ASSERT_TRUE(base->Read(0, 4, &out).ok());
  EXPECT_EQ(out, "AAAA");  // First run: within budget.
  ASSERT_TRUE(base->Read(8192, 4, &out).ok());
  EXPECT_EQ(out, std::string("BB") + std::string(2, '\0'));  // Second run: torn in half.
  ASSERT_TRUE(base->Read(16384, 4, &out).ok());
  EXPECT_EQ(out, std::string(4, '\0'));  // Third run: never attempted (batch aborts).
  EXPECT_EQ(dev.writes_attempted(), 2u);
}

// ---------------------------------------------------------------- BuddyAllocator

TEST(BuddyAllocatorTest, AllocateRoundsUpToPowerOfTwo) {
  BuddyAllocator alloc(kBase, kMiB);
  auto e = alloc.Allocate(1);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->length, BuddyAllocator::kMinBlockSize);
  auto e2 = alloc.Allocate(4097);
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2->length, 8192u);
  auto e3 = alloc.Allocate(65536);
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(e3->length, 65536u);
}

TEST(BuddyAllocatorTest, DistinctAllocationsDoNotOverlap) {
  BuddyAllocator alloc(kBase, kMiB);
  std::vector<BuddyAllocator::Extent> extents;
  Random rng(17);
  for (int i = 0; i < 50; i++) {
    auto e = alloc.Allocate(rng.Range(1, 16384));
    ASSERT_TRUE(e.ok());
    extents.push_back(*e);
  }
  std::sort(extents.begin(), extents.end(),
            [](const auto& a, const auto& b) { return a.offset < b.offset; });
  for (size_t i = 1; i < extents.size(); i++) {
    EXPECT_GE(extents[i].offset, extents[i - 1].offset + extents[i - 1].length);
  }
}

TEST(BuddyAllocatorTest, RegionStartRespected) {
  BuddyAllocator alloc(64 * 1024, kMiB);
  auto e = alloc.Allocate(4096);
  ASSERT_TRUE(e.ok());
  EXPECT_GE(e->offset, 64u * 1024);
}

TEST(BuddyAllocatorTest, FreeCoalescesBuddies) {
  BuddyAllocator alloc(kBase, kMiB);
  // Fill the region with min-size blocks, then free all: the region must coalesce back
  // into one max-size block.
  std::vector<uint64_t> offsets;
  while (true) {
    auto e = alloc.Allocate(BuddyAllocator::kMinBlockSize);
    if (!e.ok()) {
      break;
    }
    offsets.push_back(e->offset);
  }
  EXPECT_EQ(offsets.size(), kMiB / BuddyAllocator::kMinBlockSize);
  EXPECT_EQ(alloc.largest_free_block(), 0u);
  for (uint64_t off : offsets) {
    ASSERT_TRUE(alloc.Free(off).ok());
  }
  EXPECT_EQ(alloc.allocated_bytes(), 0u);
  EXPECT_EQ(alloc.largest_free_block(), kMiB);
  EXPECT_EQ(alloc.allocation_count(), 0u);
}

TEST(BuddyAllocatorTest, ExhaustionReturnsNoSpace) {
  BuddyAllocator alloc(kBase, 64 * 1024);
  auto big = alloc.Allocate(64 * 1024);
  ASSERT_TRUE(big.ok());
  auto more = alloc.Allocate(1);
  EXPECT_FALSE(more.ok());
  EXPECT_TRUE(more.status().IsNoSpace());
}

TEST(BuddyAllocatorTest, OversizedRequestRejected) {
  BuddyAllocator alloc(kBase, 64 * 1024);
  EXPECT_FALSE(alloc.Allocate(128 * 1024).ok());
}

TEST(BuddyAllocatorTest, DoubleFreeRejected) {
  BuddyAllocator alloc(kBase, kMiB);
  auto e = alloc.Allocate(4096);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(alloc.Free(e->offset).ok());
  EXPECT_FALSE(alloc.Free(e->offset).ok());
}

TEST(BuddyAllocatorTest, FreeUnknownOffsetRejected) {
  BuddyAllocator alloc(kBase, kMiB);
  EXPECT_FALSE(alloc.Free(4096).ok());
}

TEST(BuddyAllocatorTest, AccountingTracksAllocations) {
  BuddyAllocator alloc(kBase, kMiB);
  EXPECT_EQ(alloc.free_bytes(), kMiB);
  auto a = alloc.Allocate(4096);
  auto b = alloc.Allocate(10000);  // Rounds to 16384.
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.allocated_bytes(), 4096u + 16384u);
  EXPECT_EQ(alloc.free_bytes(), kMiB - 4096 - 16384);
  EXPECT_EQ(alloc.allocation_count(), 2u);
  ASSERT_TRUE(alloc.Free(a->offset).ok());
  EXPECT_EQ(alloc.allocated_bytes(), 16384u);
}

TEST(BuddyAllocatorTest, FragmentationMetricBehaves) {
  BuddyAllocator alloc(kBase, kMiB);
  EXPECT_DOUBLE_EQ(alloc.ExternalFragmentation(), 0.0);
  // Allocate everything as 4K then free every other block: free space exists but the
  // largest block stays 4K => fragmentation approaches 1 - 4K/free.
  std::vector<uint64_t> offsets;
  while (true) {
    auto e = alloc.Allocate(4096);
    if (!e.ok()) {
      break;
    }
    offsets.push_back(e->offset);
  }
  for (size_t i = 0; i < offsets.size(); i += 2) {
    ASSERT_TRUE(alloc.Free(offsets[i]).ok());
  }
  double frag = alloc.ExternalFragmentation();
  EXPECT_GT(frag, 0.9);
  EXPECT_LE(frag, 1.0);
}

TEST(BuddyAllocatorTest, SerializeDeserializeRestoresState) {
  BuddyAllocator alloc(kBase, kMiB);
  Random rng(23);
  std::vector<uint64_t> live;
  for (int i = 0; i < 30; i++) {
    auto e = alloc.Allocate(rng.Range(1, 32768));
    ASSERT_TRUE(e.ok());
    live.push_back(e->offset);
  }
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(alloc.Free(live.back()).ok());
    live.pop_back();
  }
  std::string blob = alloc.Serialize();

  BuddyAllocator restored(kBase, kMiB);
  ASSERT_TRUE(restored.Deserialize(blob).ok());
  EXPECT_EQ(restored.allocated_bytes(), alloc.allocated_bytes());
  EXPECT_EQ(restored.allocation_count(), alloc.allocation_count());
  EXPECT_EQ(restored.free_bytes(), alloc.free_bytes());
  // The restored allocator must refuse to hand out live offsets again.
  std::vector<uint64_t> fresh;
  while (true) {
    auto e = restored.Allocate(4096);
    if (!e.ok()) {
      break;
    }
    fresh.push_back(e->offset);
  }
  for (uint64_t f : fresh) {
    EXPECT_EQ(std::count(live.begin(), live.end(), f), 0) << "offset " << f << " double-handed";
  }
}

TEST(BuddyAllocatorTest, DeserializeGarbageRejected) {
  BuddyAllocator alloc(kBase, kMiB);
  EXPECT_FALSE(alloc.Deserialize("not a snapshot").ok());
}

// Property sweep: random alloc/free interleavings keep accounting consistent and
// allocations disjoint, for several region sizes.
class BuddyAllocatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuddyAllocatorPropertyTest, RandomWorkloadMaintainsInvariants) {
  const uint64_t region = GetParam();
  BuddyAllocator alloc(kBase, region);
  Random rng(region);
  std::map<uint64_t, uint64_t> live;  // offset -> length
  for (int step = 0; step < 2000; step++) {
    if (live.empty() || rng.OneIn(2)) {
      auto e = alloc.Allocate(rng.Range(1, 64 * 1024));
      if (e.ok()) {
        // No overlap with any live extent.
        auto next = live.lower_bound(e->offset);
        if (next != live.end()) {
          ASSERT_LE(e->offset + e->length, next->first);
        }
        if (next != live.begin()) {
          auto prev = std::prev(next);
          ASSERT_LE(prev->first + prev->second, e->offset);
        }
        ASSERT_LE(e->offset + e->length, kBase + region);
        ASSERT_GE(e->offset, kBase);
        live[e->offset] = e->length;
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      ASSERT_TRUE(alloc.Free(it->first).ok());
      live.erase(it);
    }
    uint64_t live_bytes = 0;
    for (const auto& [off, len] : live) {
      live_bytes += len;
    }
    ASSERT_EQ(alloc.allocated_bytes(), live_bytes);
    ASSERT_EQ(alloc.allocation_count(), live.size());
    ASSERT_EQ(alloc.free_bytes(), region - live_bytes);
  }
  for (const auto& [off, len] : live) {
    ASSERT_TRUE(alloc.Free(off).ok());
  }
  EXPECT_EQ(alloc.largest_free_block(), region);
}

INSTANTIATE_TEST_SUITE_P(Regions, BuddyAllocatorPropertyTest,
                         ::testing::Values(256 * 1024, kMiB, 4 * kMiB, 16 * kMiB));

// ---------------------------------------------------------------- Pager

TEST(PagerTest, GetReadsThrough) {
  MemoryBlockDevice dev(kMiB);
  ASSERT_TRUE(dev.Write(4096, Slice("page-one")).ok());
  Pager pager(&dev, 16);
  auto p = pager.Get(4096);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(memcmp((*p)->cdata(), "page-one", 8), 0);
}

TEST(PagerTest, CacheHitAvoidsDeviceRead) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  stats::ResetAll();
  ASSERT_TRUE(pager.Get(0).ok());
  uint64_t misses_after_first = stats::Get(stats::Counter::kPageReads);
  ASSERT_TRUE(pager.Get(0).ok());
  EXPECT_EQ(stats::Get(stats::Counter::kPageReads), misses_after_first);
  EXPECT_GE(stats::Get(stats::Counter::kPagerHits), 1u);
}

TEST(PagerTest, DirtyPageWritesBackOnFlush) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  {
    auto p = pager.Get(8192);
    ASSERT_TRUE(p.ok());
    memcpy((*p)->cdata(), "dirty!", 6);
    (*p)->MarkDirty();
  }
  ASSERT_TRUE(pager.Flush().ok());
  std::string out;
  ASSERT_TRUE(dev.Read(8192, 6, &out).ok());
  EXPECT_EQ(out, "dirty!");
}

TEST(PagerTest, EvictionWritesBackDirtyPages) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 4);  // Tiny cache to force eviction.
  for (uint64_t i = 0; i < 16; i++) {
    auto p = pager.GetZeroed(i * kPageSize);
    ASSERT_TRUE(p.ok());
    (*p)->cdata()[0] = static_cast<char>('A' + i);
    (*p)->MarkDirty();
  }
  EXPECT_LE(pager.cached_pages(), 4u);
  ASSERT_TRUE(pager.Flush().ok());
  for (uint64_t i = 0; i < 16; i++) {
    std::string out;
    ASSERT_TRUE(dev.Read(i * kPageSize, 1, &out).ok());
    EXPECT_EQ(out[0], static_cast<char>('A' + i)) << "page " << i;
  }
}

// A checkpoint flush of scattered-but-clustered dirty pages issues one sorted batch:
// each adjacent cluster becomes a single device write.
TEST(PagerTest, FlushCoalescesDirtyPagesIntoRuns) {
  auto base = std::make_shared<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice dev(base);
  Pager pager(&dev, 64);
  // Cluster A: pages 0..3 (adjacent). Cluster B: pages 32..33. One loner: page 60.
  for (uint64_t i : {0, 1, 2, 3, 32, 33, 60}) {
    auto p = pager.GetZeroed(i * kPageSize);
    ASSERT_TRUE(p.ok());
    (*p)->cdata()[0] = static_cast<char>('0' + (i % 10));
    (*p)->MarkDirty();
  }
  uint64_t writes_before = dev.writes_attempted();
  ASSERT_TRUE(pager.Flush().ok());
  EXPECT_EQ(dev.writes_attempted() - writes_before, 3u);  // One write per cluster.
  for (uint64_t i : {0, 1, 2, 3, 32, 33, 60}) {
    std::string out;
    ASSERT_TRUE(base->Read(i * kPageSize, 1, &out).ok());
    EXPECT_EQ(out[0], static_cast<char>('0' + (i % 10))) << "page " << i;
  }
  EXPECT_EQ(pager.dirty_pages(), 0u);
}

// Eviction never removes a dirty page outright: clean victims are evicted in place,
// dirty ones are written back in one batch (outside the stripe lock) and stay cached.
TEST(PagerTest, EvictionPrefersCleanVictimsAndBatchesWriteBack) {
  auto base = std::make_shared<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice dev(base);
  Pager pager(&dev, 4);  // One stripe; capacity 4.
  // Two dirty pages (adjacent: one write-back run) and two clean ones.
  for (uint64_t i : {0, 1}) {
    auto p = pager.GetZeroed(i * kPageSize);
    ASSERT_TRUE(p.ok());
    (*p)->cdata()[0] = 'D';
    (*p)->MarkDirty();
  }
  ASSERT_TRUE(pager.Get(8 * kPageSize).ok());
  ASSERT_TRUE(pager.Get(9 * kPageSize).ok());
  uint64_t writes_before = dev.writes_attempted();
  // The miss forces an eviction sweep: the dirty pair is written back as ONE batch run
  // and stays resident; a clean page is evicted instead.
  ASSERT_TRUE(pager.Get(10 * kPageSize).ok());
  EXPECT_EQ(dev.writes_attempted() - writes_before, 1u);
  EXPECT_EQ(pager.dirty_pages(), 0u);  // Written back (epoch unchanged), now clean.
  std::string out;
  for (uint64_t i : {0, 1}) {
    ASSERT_TRUE(base->Read(i * kPageSize, 1, &out).ok());
    EXPECT_EQ(out[0], 'D') << "page " << i;
  }
  // Capacity is honored once the write-back made the dirty pair evictable.
  EXPECT_LE(pager.cached_pages(), 4u);
  // And the written-back content survives a fresh read path.
  auto p0 = pager.Get(0);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ((*p0)->cdata()[0], 'D');
}

// With no_steal (the journaled OSD's mode) eviction still never writes a dirty page.
TEST(PagerTest, NoStealEvictionNeverTouchesTheDevice) {
  auto base = std::make_shared<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice dev(base);
  Pager pager(&dev, 4, /*no_steal=*/true);
  for (uint64_t i = 0; i < 12; i++) {
    auto p = pager.GetZeroed(i * kPageSize);
    ASSERT_TRUE(p.ok());
    (*p)->MarkDirty();
  }
  EXPECT_EQ(dev.writes_attempted(), 0u);
  EXPECT_EQ(pager.dirty_pages(), 12u);  // All retained (cache overflows by design).
}

TEST(PagerTest, GetZeroedSkipsDeviceRead) {
  MemoryBlockDevice dev(kMiB);
  ASSERT_TRUE(dev.Write(0, Slice("junkjunk")).ok());
  Pager pager(&dev, 16);
  stats::ResetAll();
  auto p = pager.GetZeroed(0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(stats::Get(stats::Counter::kPageReads), 0u);
  EXPECT_EQ((*p)->cdata()[0], '\0');  // Zeroed, not the junk on the device.
}

TEST(PagerTest, InvalidateDiscardsDirtyData) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  {
    auto p = pager.GetZeroed(0);
    ASSERT_TRUE(p.ok());
    (*p)->cdata()[0] = 'X';
    (*p)->MarkDirty();
  }
  pager.Invalidate(0);
  ASSERT_TRUE(pager.Flush().ok());
  std::string out;
  ASSERT_TRUE(dev.Read(0, 1, &out).ok());
  EXPECT_EQ(out[0], '\0');
}

TEST(PagerTest, UnalignedOffsetRejected) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  EXPECT_FALSE(pager.Get(100).ok());
}

TEST(PagerTest, RawIoBypassesCache) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  ASSERT_TRUE(pager.WriteRaw(64 * 1024, Slice("raw payload")).ok());
  std::string out;
  ASSERT_TRUE(pager.ReadRaw(64 * 1024, 11, &out).ok());
  EXPECT_EQ(out, "raw payload");
  // Raw data is immediately on the device, no flush needed.
  std::string direct;
  ASSERT_TRUE(dev.Read(64 * 1024, 11, &direct).ok());
  EXPECT_EQ(direct, "raw payload");
}

TEST(PagerTest, DropCacheForcesReRead) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  {
    auto p = pager.GetZeroed(0);
    ASSERT_TRUE(p.ok());
    (*p)->cdata()[0] = 'Q';
    (*p)->MarkDirty();
  }
  ASSERT_TRUE(pager.DropCacheForTesting().ok());
  EXPECT_EQ(pager.cached_pages(), 0u);
  auto p = pager.Get(0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->cdata()[0], 'Q');  // Was flushed by the drop, then re-read.
}

TEST(PagerTest, ConcurrentDistinctPages) {
  MemoryBlockDevice dev(16 * kMiB);
  Pager pager(&dev, 256);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&pager, t] {
      for (int i = 0; i < 200; i++) {
        uint64_t off = (static_cast<uint64_t>(t) * 200 + i) * kPageSize;
        auto p = pager.GetZeroed(off);
        ASSERT_TRUE(p.ok());
        (*p)->cdata()[0] = static_cast<char>(t);
        (*p)->MarkDirty();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_TRUE(pager.Flush().ok());
  for (int t = 0; t < kThreads; t++) {
    std::string out;
    ASSERT_TRUE(dev.Read(static_cast<uint64_t>(t) * 200 * kPageSize, 1, &out).ok());
    EXPECT_EQ(out[0], static_cast<char>(t));
  }
}

// ---------------------------------------------------------------- Superblock

Superblock MakeSample() {
  Superblock sb;
  sb.device_size = 64 * kMiB;
  sb.alloc_area_offset = 4096;
  sb.alloc_area_size = 1 * kMiB;
  sb.alloc_snapshot_size = 777;
  sb.journal_offset = 2 * kMiB;
  sb.journal_size = 4 * kMiB;
  sb.heap_offset = 8 * kMiB;
  sb.heap_size = 32 * kMiB;
  sb.object_table_root = 8 * kMiB + 4096;
  sb.index_dir_root = 8 * kMiB + 8192;
  sb.next_oid = 1234;
  sb.journal_sequence = 99;
  return sb;
}

TEST(SuperblockTest, EncodeDecodeRoundTrip) {
  Superblock sb = MakeSample();
  std::string buf = sb.Encode();
  EXPECT_EQ(buf.size(), Superblock::kSuperblockSize);
  auto decoded = Superblock::Decode(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->device_size, sb.device_size);
  EXPECT_EQ(decoded->alloc_area_offset, sb.alloc_area_offset);
  EXPECT_EQ(decoded->alloc_snapshot_size, sb.alloc_snapshot_size);
  EXPECT_EQ(decoded->journal_offset, sb.journal_offset);
  EXPECT_EQ(decoded->journal_size, sb.journal_size);
  EXPECT_EQ(decoded->heap_offset, sb.heap_offset);
  EXPECT_EQ(decoded->heap_size, sb.heap_size);
  EXPECT_EQ(decoded->object_table_root, sb.object_table_root);
  EXPECT_EQ(decoded->index_dir_root, sb.index_dir_root);
  EXPECT_EQ(decoded->next_oid, sb.next_oid);
  EXPECT_EQ(decoded->journal_sequence, sb.journal_sequence);
}

TEST(SuperblockTest, SingleSlotCorruptionFallsBackToTheReplica) {
  // A torn or corrupted write that damages one slot must not lose the volume: the
  // other slot still decodes (the point of the dual-slot layout).
  Superblock sample = MakeSample();
  std::string buf = sample.Encode();
  for (size_t pos : {size_t{0}, size_t{8}, size_t{64}, Superblock::kSlotSize - 1}) {
    std::string mutated = buf;
    mutated[pos] ^= 0x1;  // Damage the primary slot only.
    auto decoded = Superblock::Decode(mutated);
    ASSERT_TRUE(decoded.ok()) << "flip at " << pos;
    EXPECT_EQ(decoded->object_table_root, sample.object_table_root);
    mutated[Superblock::kSlotSize + pos] ^= 0x1;  // Now damage the replica too.
    EXPECT_FALSE(Superblock::Decode(mutated).ok()) << "flip at " << pos;
  }
}

TEST(SuperblockTest, TornWriteLeavesADecodableSuperblock) {
  // Old superblock on disk, new image torn at an arbitrary byte: some prefix of the new
  // image lands over the old one. Every tear position must leave a decodable result —
  // fully old or fully new, never an unreadable volume.
  Superblock old_sb = MakeSample();
  Superblock new_sb = MakeSample();
  new_sb.object_table_root = 0x99999;
  std::string old_img = old_sb.Encode();
  std::string new_img = new_sb.Encode();
  for (size_t torn = 0; torn <= old_img.size(); torn += 509) {
    std::string on_disk = new_img.substr(0, torn) + old_img.substr(torn);
    auto decoded = Superblock::Decode(on_disk);
    ASSERT_TRUE(decoded.ok()) << "torn at " << torn;
    EXPECT_TRUE(decoded->object_table_root == old_sb.object_table_root ||
                decoded->object_table_root == new_sb.object_table_root)
        << "torn at " << torn;
  }
}

TEST(SuperblockTest, ReadsV1SingleSlotLayout) {
  // v1 volumes (single whole-page image, CRC in the last 4 bytes, version field 1)
  // must still open; the next checkpoint rewrites them as v2 dual-slot.
  Superblock sample = MakeSample();
  std::string slot = sample.Encode().substr(0, Superblock::kSlotSize);
  std::string v1 = slot.substr(0, Superblock::kSlotSize - 4);  // Fields, minus slot CRC.
  v1[4] = 1;                                                   // Version field = 1.
  v1.resize(Superblock::kSuperblockSize - 4, 0);
  uint32_t crc = MaskCrc(Crc32c(Slice(v1)));
  v1.push_back(static_cast<char>(crc & 0xff));
  v1.push_back(static_cast<char>((crc >> 8) & 0xff));
  v1.push_back(static_cast<char>((crc >> 16) & 0xff));
  v1.push_back(static_cast<char>((crc >> 24) & 0xff));
  auto decoded = Superblock::Decode(v1);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->object_table_root, sample.object_table_root);
  EXPECT_EQ(decoded->next_oid, sample.next_oid);
}

TEST(SuperblockTest, WrongSizeRejected) {
  std::string buf = MakeSample().Encode();
  EXPECT_FALSE(Superblock::Decode(buf.substr(0, 100)).ok());
  EXPECT_FALSE(Superblock::Decode(buf + "x").ok());
}

TEST(SuperblockTest, BadMagicInBothSlotsRejected) {
  std::string buf = MakeSample().Encode();
  buf[0] = 'X';
  buf[1] = 'Y';
  buf[Superblock::kSlotSize] = 'X';
  buf[Superblock::kSlotSize + 1] = 'Y';
  EXPECT_FALSE(Superblock::Decode(buf).ok());
}

}  // namespace
}  // namespace hfad
