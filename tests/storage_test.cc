// Unit tests for hfad_storage: block devices, buddy allocator, pager, superblock.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/storage/block_device.h"
#include "src/storage/buddy_allocator.h"
#include "src/storage/pager.h"
#include "src/storage/superblock.h"

namespace hfad {
namespace {

constexpr uint64_t kMiB = 1024 * 1024;
// Allocator regions never start at 0: offset 0 is the superblock in a real volume.
constexpr uint64_t kBase = 4096;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("hfad_storage_test_" + name)).string();
}

// ---------------------------------------------------------------- MemoryBlockDevice

TEST(MemoryBlockDeviceTest, WriteReadRoundTrip) {
  MemoryBlockDevice dev(kMiB);
  EXPECT_EQ(dev.Size(), kMiB);
  ASSERT_TRUE(dev.Write(4096, Slice("hello")).ok());
  std::string out;
  ASSERT_TRUE(dev.Read(4096, 5, &out).ok());
  EXPECT_EQ(out, "hello");
}

TEST(MemoryBlockDeviceTest, FreshDeviceReadsZeros) {
  MemoryBlockDevice dev(8192);
  std::string out;
  ASSERT_TRUE(dev.Read(0, 16, &out).ok());
  EXPECT_EQ(out, std::string(16, '\0'));
}

TEST(MemoryBlockDeviceTest, OutOfBoundsRejected) {
  MemoryBlockDevice dev(8192);
  std::string out;
  EXPECT_FALSE(dev.Read(8192, 1, &out).ok());
  EXPECT_FALSE(dev.Read(8190, 4, &out).ok());
  EXPECT_FALSE(dev.Write(8192, Slice("x")).ok());
  EXPECT_FALSE(dev.Write(8190, Slice("abcd")).ok());
  // Exactly at the boundary is fine.
  EXPECT_TRUE(dev.Write(8188, Slice("abcd")).ok());
  EXPECT_TRUE(dev.Read(8188, 4, &out).ok());
}

TEST(MemoryBlockDeviceTest, OverlappingWritesLastWins) {
  MemoryBlockDevice dev(8192);
  ASSERT_TRUE(dev.Write(0, Slice("aaaaaaaa")).ok());
  ASSERT_TRUE(dev.Write(4, Slice("bbbb")).ok());
  std::string out;
  ASSERT_TRUE(dev.Read(0, 8, &out).ok());
  EXPECT_EQ(out, "aaaabbbb");
}

// ---------------------------------------------------------------- FileBlockDevice

TEST(FileBlockDeviceTest, PersistsAcrossReopen) {
  std::string path = TempPath("persist");
  std::filesystem::remove(path);
  {
    auto dev = FileBlockDevice::Open(path, kMiB);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    ASSERT_TRUE((*dev)->Write(4096, Slice("durable data")).ok());
    ASSERT_TRUE((*dev)->Sync().ok());
  }
  {
    auto dev = FileBlockDevice::Open(path, kMiB);
    ASSERT_TRUE(dev.ok());
    std::string out;
    ASSERT_TRUE((*dev)->Read(4096, 12, &out).ok());
    EXPECT_EQ(out, "durable data");
  }
  std::filesystem::remove(path);
}

TEST(FileBlockDeviceTest, RespectsCapacity) {
  std::string path = TempPath("capacity");
  std::filesystem::remove(path);
  auto dev = FileBlockDevice::Open(path, 8192);
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ((*dev)->Size(), 8192u);
  EXPECT_FALSE((*dev)->Write(8192, Slice("x")).ok());
  std::string out;
  EXPECT_FALSE((*dev)->Read(8192, 1, &out).ok());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- FaultyBlockDevice

TEST(FaultyBlockDeviceTest, UnlimitedByDefault) {
  auto base = std::make_shared<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice dev(base);
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(dev.Write(0, Slice("x")).ok());
  }
  EXPECT_EQ(dev.writes_attempted(), 100u);
}

TEST(FaultyBlockDeviceTest, BudgetExhaustionFailsWrites) {
  auto base = std::make_shared<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice dev(base);
  dev.SetWriteBudget(3);
  EXPECT_TRUE(dev.Write(0, Slice("a")).ok());
  EXPECT_TRUE(dev.Write(1, Slice("b")).ok());
  EXPECT_TRUE(dev.Write(2, Slice("c")).ok());
  EXPECT_FALSE(dev.Write(3, Slice("d")).ok());
  EXPECT_FALSE(dev.Write(4, Slice("e")).ok());
  // Reads still succeed after write failures.
  std::string out;
  EXPECT_TRUE(dev.Read(0, 3, &out).ok());
  EXPECT_EQ(out, "abc");
}

TEST(FaultyBlockDeviceTest, TornWritePersistsOnlyPrefix) {
  auto base = std::make_shared<MemoryBlockDevice>(kMiB);
  FaultyBlockDevice dev(base);
  dev.SetWriteBudget(0);
  dev.EnableTornWrites(true);
  std::string payload(256, 'Z');
  EXPECT_FALSE(dev.Write(0, Slice(payload)).ok());
  std::string out;
  ASSERT_TRUE(base->Read(0, 256, &out).ok());
  // Some (possibly zero-length) prefix of Z's, then untouched zeros — never all Z's.
  size_t z_run = 0;
  while (z_run < out.size() && out[z_run] == 'Z') {
    z_run++;
  }
  EXPECT_LT(z_run, 256u);
  for (size_t i = z_run; i < out.size(); i++) {
    EXPECT_EQ(out[i], '\0') << "byte " << i << " written past the torn prefix";
  }
}

// ---------------------------------------------------------------- BuddyAllocator

TEST(BuddyAllocatorTest, AllocateRoundsUpToPowerOfTwo) {
  BuddyAllocator alloc(kBase, kMiB);
  auto e = alloc.Allocate(1);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->length, BuddyAllocator::kMinBlockSize);
  auto e2 = alloc.Allocate(4097);
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2->length, 8192u);
  auto e3 = alloc.Allocate(65536);
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(e3->length, 65536u);
}

TEST(BuddyAllocatorTest, DistinctAllocationsDoNotOverlap) {
  BuddyAllocator alloc(kBase, kMiB);
  std::vector<BuddyAllocator::Extent> extents;
  Random rng(17);
  for (int i = 0; i < 50; i++) {
    auto e = alloc.Allocate(rng.Range(1, 16384));
    ASSERT_TRUE(e.ok());
    extents.push_back(*e);
  }
  std::sort(extents.begin(), extents.end(),
            [](const auto& a, const auto& b) { return a.offset < b.offset; });
  for (size_t i = 1; i < extents.size(); i++) {
    EXPECT_GE(extents[i].offset, extents[i - 1].offset + extents[i - 1].length);
  }
}

TEST(BuddyAllocatorTest, RegionStartRespected) {
  BuddyAllocator alloc(64 * 1024, kMiB);
  auto e = alloc.Allocate(4096);
  ASSERT_TRUE(e.ok());
  EXPECT_GE(e->offset, 64u * 1024);
}

TEST(BuddyAllocatorTest, FreeCoalescesBuddies) {
  BuddyAllocator alloc(kBase, kMiB);
  // Fill the region with min-size blocks, then free all: the region must coalesce back
  // into one max-size block.
  std::vector<uint64_t> offsets;
  while (true) {
    auto e = alloc.Allocate(BuddyAllocator::kMinBlockSize);
    if (!e.ok()) {
      break;
    }
    offsets.push_back(e->offset);
  }
  EXPECT_EQ(offsets.size(), kMiB / BuddyAllocator::kMinBlockSize);
  EXPECT_EQ(alloc.largest_free_block(), 0u);
  for (uint64_t off : offsets) {
    ASSERT_TRUE(alloc.Free(off).ok());
  }
  EXPECT_EQ(alloc.allocated_bytes(), 0u);
  EXPECT_EQ(alloc.largest_free_block(), kMiB);
  EXPECT_EQ(alloc.allocation_count(), 0u);
}

TEST(BuddyAllocatorTest, ExhaustionReturnsNoSpace) {
  BuddyAllocator alloc(kBase, 64 * 1024);
  auto big = alloc.Allocate(64 * 1024);
  ASSERT_TRUE(big.ok());
  auto more = alloc.Allocate(1);
  EXPECT_FALSE(more.ok());
  EXPECT_TRUE(more.status().IsNoSpace());
}

TEST(BuddyAllocatorTest, OversizedRequestRejected) {
  BuddyAllocator alloc(kBase, 64 * 1024);
  EXPECT_FALSE(alloc.Allocate(128 * 1024).ok());
}

TEST(BuddyAllocatorTest, DoubleFreeRejected) {
  BuddyAllocator alloc(kBase, kMiB);
  auto e = alloc.Allocate(4096);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(alloc.Free(e->offset).ok());
  EXPECT_FALSE(alloc.Free(e->offset).ok());
}

TEST(BuddyAllocatorTest, FreeUnknownOffsetRejected) {
  BuddyAllocator alloc(kBase, kMiB);
  EXPECT_FALSE(alloc.Free(4096).ok());
}

TEST(BuddyAllocatorTest, AccountingTracksAllocations) {
  BuddyAllocator alloc(kBase, kMiB);
  EXPECT_EQ(alloc.free_bytes(), kMiB);
  auto a = alloc.Allocate(4096);
  auto b = alloc.Allocate(10000);  // Rounds to 16384.
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.allocated_bytes(), 4096u + 16384u);
  EXPECT_EQ(alloc.free_bytes(), kMiB - 4096 - 16384);
  EXPECT_EQ(alloc.allocation_count(), 2u);
  ASSERT_TRUE(alloc.Free(a->offset).ok());
  EXPECT_EQ(alloc.allocated_bytes(), 16384u);
}

TEST(BuddyAllocatorTest, FragmentationMetricBehaves) {
  BuddyAllocator alloc(kBase, kMiB);
  EXPECT_DOUBLE_EQ(alloc.ExternalFragmentation(), 0.0);
  // Allocate everything as 4K then free every other block: free space exists but the
  // largest block stays 4K => fragmentation approaches 1 - 4K/free.
  std::vector<uint64_t> offsets;
  while (true) {
    auto e = alloc.Allocate(4096);
    if (!e.ok()) {
      break;
    }
    offsets.push_back(e->offset);
  }
  for (size_t i = 0; i < offsets.size(); i += 2) {
    ASSERT_TRUE(alloc.Free(offsets[i]).ok());
  }
  double frag = alloc.ExternalFragmentation();
  EXPECT_GT(frag, 0.9);
  EXPECT_LE(frag, 1.0);
}

TEST(BuddyAllocatorTest, SerializeDeserializeRestoresState) {
  BuddyAllocator alloc(kBase, kMiB);
  Random rng(23);
  std::vector<uint64_t> live;
  for (int i = 0; i < 30; i++) {
    auto e = alloc.Allocate(rng.Range(1, 32768));
    ASSERT_TRUE(e.ok());
    live.push_back(e->offset);
  }
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(alloc.Free(live.back()).ok());
    live.pop_back();
  }
  std::string blob = alloc.Serialize();

  BuddyAllocator restored(kBase, kMiB);
  ASSERT_TRUE(restored.Deserialize(blob).ok());
  EXPECT_EQ(restored.allocated_bytes(), alloc.allocated_bytes());
  EXPECT_EQ(restored.allocation_count(), alloc.allocation_count());
  EXPECT_EQ(restored.free_bytes(), alloc.free_bytes());
  // The restored allocator must refuse to hand out live offsets again.
  std::vector<uint64_t> fresh;
  while (true) {
    auto e = restored.Allocate(4096);
    if (!e.ok()) {
      break;
    }
    fresh.push_back(e->offset);
  }
  for (uint64_t f : fresh) {
    EXPECT_EQ(std::count(live.begin(), live.end(), f), 0) << "offset " << f << " double-handed";
  }
}

TEST(BuddyAllocatorTest, DeserializeGarbageRejected) {
  BuddyAllocator alloc(kBase, kMiB);
  EXPECT_FALSE(alloc.Deserialize("not a snapshot").ok());
}

// Property sweep: random alloc/free interleavings keep accounting consistent and
// allocations disjoint, for several region sizes.
class BuddyAllocatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuddyAllocatorPropertyTest, RandomWorkloadMaintainsInvariants) {
  const uint64_t region = GetParam();
  BuddyAllocator alloc(kBase, region);
  Random rng(region);
  std::map<uint64_t, uint64_t> live;  // offset -> length
  for (int step = 0; step < 2000; step++) {
    if (live.empty() || rng.OneIn(2)) {
      auto e = alloc.Allocate(rng.Range(1, 64 * 1024));
      if (e.ok()) {
        // No overlap with any live extent.
        auto next = live.lower_bound(e->offset);
        if (next != live.end()) {
          ASSERT_LE(e->offset + e->length, next->first);
        }
        if (next != live.begin()) {
          auto prev = std::prev(next);
          ASSERT_LE(prev->first + prev->second, e->offset);
        }
        ASSERT_LE(e->offset + e->length, kBase + region);
        ASSERT_GE(e->offset, kBase);
        live[e->offset] = e->length;
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      ASSERT_TRUE(alloc.Free(it->first).ok());
      live.erase(it);
    }
    uint64_t live_bytes = 0;
    for (const auto& [off, len] : live) {
      live_bytes += len;
    }
    ASSERT_EQ(alloc.allocated_bytes(), live_bytes);
    ASSERT_EQ(alloc.allocation_count(), live.size());
    ASSERT_EQ(alloc.free_bytes(), region - live_bytes);
  }
  for (const auto& [off, len] : live) {
    ASSERT_TRUE(alloc.Free(off).ok());
  }
  EXPECT_EQ(alloc.largest_free_block(), region);
}

INSTANTIATE_TEST_SUITE_P(Regions, BuddyAllocatorPropertyTest,
                         ::testing::Values(256 * 1024, kMiB, 4 * kMiB, 16 * kMiB));

// ---------------------------------------------------------------- Pager

TEST(PagerTest, GetReadsThrough) {
  MemoryBlockDevice dev(kMiB);
  ASSERT_TRUE(dev.Write(4096, Slice("page-one")).ok());
  Pager pager(&dev, 16);
  auto p = pager.Get(4096);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(memcmp((*p)->cdata(), "page-one", 8), 0);
}

TEST(PagerTest, CacheHitAvoidsDeviceRead) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  stats::ResetAll();
  ASSERT_TRUE(pager.Get(0).ok());
  uint64_t misses_after_first = stats::Get(stats::Counter::kPageReads);
  ASSERT_TRUE(pager.Get(0).ok());
  EXPECT_EQ(stats::Get(stats::Counter::kPageReads), misses_after_first);
  EXPECT_GE(stats::Get(stats::Counter::kPagerHits), 1u);
}

TEST(PagerTest, DirtyPageWritesBackOnFlush) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  {
    auto p = pager.Get(8192);
    ASSERT_TRUE(p.ok());
    memcpy((*p)->cdata(), "dirty!", 6);
    (*p)->MarkDirty();
  }
  ASSERT_TRUE(pager.Flush().ok());
  std::string out;
  ASSERT_TRUE(dev.Read(8192, 6, &out).ok());
  EXPECT_EQ(out, "dirty!");
}

TEST(PagerTest, EvictionWritesBackDirtyPages) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 4);  // Tiny cache to force eviction.
  for (uint64_t i = 0; i < 16; i++) {
    auto p = pager.GetZeroed(i * kPageSize);
    ASSERT_TRUE(p.ok());
    (*p)->cdata()[0] = static_cast<char>('A' + i);
    (*p)->MarkDirty();
  }
  EXPECT_LE(pager.cached_pages(), 4u);
  ASSERT_TRUE(pager.Flush().ok());
  for (uint64_t i = 0; i < 16; i++) {
    std::string out;
    ASSERT_TRUE(dev.Read(i * kPageSize, 1, &out).ok());
    EXPECT_EQ(out[0], static_cast<char>('A' + i)) << "page " << i;
  }
}

TEST(PagerTest, GetZeroedSkipsDeviceRead) {
  MemoryBlockDevice dev(kMiB);
  ASSERT_TRUE(dev.Write(0, Slice("junkjunk")).ok());
  Pager pager(&dev, 16);
  stats::ResetAll();
  auto p = pager.GetZeroed(0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(stats::Get(stats::Counter::kPageReads), 0u);
  EXPECT_EQ((*p)->cdata()[0], '\0');  // Zeroed, not the junk on the device.
}

TEST(PagerTest, InvalidateDiscardsDirtyData) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  {
    auto p = pager.GetZeroed(0);
    ASSERT_TRUE(p.ok());
    (*p)->cdata()[0] = 'X';
    (*p)->MarkDirty();
  }
  pager.Invalidate(0);
  ASSERT_TRUE(pager.Flush().ok());
  std::string out;
  ASSERT_TRUE(dev.Read(0, 1, &out).ok());
  EXPECT_EQ(out[0], '\0');
}

TEST(PagerTest, UnalignedOffsetRejected) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  EXPECT_FALSE(pager.Get(100).ok());
}

TEST(PagerTest, RawIoBypassesCache) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  ASSERT_TRUE(pager.WriteRaw(64 * 1024, Slice("raw payload")).ok());
  std::string out;
  ASSERT_TRUE(pager.ReadRaw(64 * 1024, 11, &out).ok());
  EXPECT_EQ(out, "raw payload");
  // Raw data is immediately on the device, no flush needed.
  std::string direct;
  ASSERT_TRUE(dev.Read(64 * 1024, 11, &direct).ok());
  EXPECT_EQ(direct, "raw payload");
}

TEST(PagerTest, DropCacheForcesReRead) {
  MemoryBlockDevice dev(kMiB);
  Pager pager(&dev, 16);
  {
    auto p = pager.GetZeroed(0);
    ASSERT_TRUE(p.ok());
    (*p)->cdata()[0] = 'Q';
    (*p)->MarkDirty();
  }
  ASSERT_TRUE(pager.DropCacheForTesting().ok());
  EXPECT_EQ(pager.cached_pages(), 0u);
  auto p = pager.Get(0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->cdata()[0], 'Q');  // Was flushed by the drop, then re-read.
}

TEST(PagerTest, ConcurrentDistinctPages) {
  MemoryBlockDevice dev(16 * kMiB);
  Pager pager(&dev, 256);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&pager, t] {
      for (int i = 0; i < 200; i++) {
        uint64_t off = (static_cast<uint64_t>(t) * 200 + i) * kPageSize;
        auto p = pager.GetZeroed(off);
        ASSERT_TRUE(p.ok());
        (*p)->cdata()[0] = static_cast<char>(t);
        (*p)->MarkDirty();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_TRUE(pager.Flush().ok());
  for (int t = 0; t < kThreads; t++) {
    std::string out;
    ASSERT_TRUE(dev.Read(static_cast<uint64_t>(t) * 200 * kPageSize, 1, &out).ok());
    EXPECT_EQ(out[0], static_cast<char>(t));
  }
}

// ---------------------------------------------------------------- Superblock

Superblock MakeSample() {
  Superblock sb;
  sb.device_size = 64 * kMiB;
  sb.alloc_area_offset = 4096;
  sb.alloc_area_size = 1 * kMiB;
  sb.alloc_snapshot_size = 777;
  sb.journal_offset = 2 * kMiB;
  sb.journal_size = 4 * kMiB;
  sb.heap_offset = 8 * kMiB;
  sb.heap_size = 32 * kMiB;
  sb.object_table_root = 8 * kMiB + 4096;
  sb.index_dir_root = 8 * kMiB + 8192;
  sb.next_oid = 1234;
  sb.journal_sequence = 99;
  return sb;
}

TEST(SuperblockTest, EncodeDecodeRoundTrip) {
  Superblock sb = MakeSample();
  std::string buf = sb.Encode();
  EXPECT_EQ(buf.size(), Superblock::kSuperblockSize);
  auto decoded = Superblock::Decode(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->device_size, sb.device_size);
  EXPECT_EQ(decoded->alloc_area_offset, sb.alloc_area_offset);
  EXPECT_EQ(decoded->alloc_snapshot_size, sb.alloc_snapshot_size);
  EXPECT_EQ(decoded->journal_offset, sb.journal_offset);
  EXPECT_EQ(decoded->journal_size, sb.journal_size);
  EXPECT_EQ(decoded->heap_offset, sb.heap_offset);
  EXPECT_EQ(decoded->heap_size, sb.heap_size);
  EXPECT_EQ(decoded->object_table_root, sb.object_table_root);
  EXPECT_EQ(decoded->index_dir_root, sb.index_dir_root);
  EXPECT_EQ(decoded->next_oid, sb.next_oid);
  EXPECT_EQ(decoded->journal_sequence, sb.journal_sequence);
}

TEST(SuperblockTest, CorruptionDetected) {
  std::string buf = MakeSample().Encode();
  for (size_t pos : {size_t{0}, size_t{8}, size_t{64}, buf.size() - 1}) {
    std::string mutated = buf;
    mutated[pos] ^= 0x1;
    EXPECT_FALSE(Superblock::Decode(mutated).ok()) << "flip at " << pos;
  }
}

TEST(SuperblockTest, WrongSizeRejected) {
  std::string buf = MakeSample().Encode();
  EXPECT_FALSE(Superblock::Decode(buf.substr(0, 100)).ok());
  EXPECT_FALSE(Superblock::Decode(buf + "x").ok());
}

TEST(SuperblockTest, BadMagicRejected) {
  std::string buf = MakeSample().Encode();
  buf[0] = 'X';
  buf[1] = 'Y';
  EXPECT_FALSE(Superblock::Decode(buf).ok());
}

}  // namespace
}  // namespace hfad
