// Multi-volume sharded OsdCluster: placement and routing, merged scans, device-set
// stamping, crash-proven cross-shard 2PC batches (tear sweep over every write budget on
// every participant shard), a seeded differential check of 4-shard vs single-volume
// behavior, and a concurrent cross-shard batch storm with live readers and fsck.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/filesystem.h"
#include "src/core/fsck.h"
#include "src/osd/osd.h"
#include "src/osd/osd_cluster.h"
#include "src/storage/block_device.h"
#include "tests/crash_harness.h"

namespace hfad {
namespace core {
namespace {

using osd::ObjectMeta;
using osd::Osd;
using osd::OsdCluster;
using osd::OsdOptions;

constexpr uint64_t kDev = 32 * 1024 * 1024;

std::vector<std::shared_ptr<BlockDevice>> MakeDevices(size_t n) {
  std::vector<std::shared_ptr<BlockDevice>> devices;
  for (size_t i = 0; i < n; i++) {
    devices.push_back(std::make_shared<MemoryBlockDevice>(kDev));
  }
  return devices;
}

FileSystemOptions ShardedOptions(size_t n) {
  FileSystemOptions opts;
  opts.lazy_indexing_threads = 0;  // Synchronous content indexing: deterministic.
  opts.shard_count = n;
  return opts;
}

std::vector<ObjectId> StrictFind(FileSystem* fs, const std::string& q) {
  query::FindOptions o;
  o.visibility = query::Visibility::kStrict;
  auto page = fs->Find(Slice(q), o);
  EXPECT_TRUE(page.ok()) << q << ": " << page.status().ToString();
  return page.ok() ? page->ids : std::vector<ObjectId>{};
}

// Tags() as sortable (tag, value) pairs, for cross-filesystem comparison.
std::vector<std::pair<std::string, std::string>> SortedTags(FileSystem* fs,
                                                            ObjectId oid) {
  std::vector<std::pair<std::string, std::string>> out;
  auto tags = fs->Tags(oid);
  EXPECT_TRUE(tags.ok()) << tags.status().ToString();
  if (tags.ok()) {
    for (const TagValue& t : *tags) {
      out.emplace_back(t.tag, t.value);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------- cluster routing

TEST(ClusterTest, RoutesObjectsAcrossShardsAndMergesScans) {
  auto devices = MakeDevices(4);
  auto r = OsdCluster::Create(devices, OsdOptions{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto cluster = std::move(r).value();
  ASSERT_EQ(cluster->shard_count(), 4u);

  std::vector<ObjectId> oids;
  for (int i = 0; i < 64; i++) {
    auto oid = cluster->CreateObject();
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
    std::string payload = "shard payload #" + std::to_string(i);
    ASSERT_TRUE(cluster->Write(*oid, 0, payload).ok());
  }
  EXPECT_EQ(cluster->object_count(), oids.size());

  // The hash must actually spread: every shard owns some objects, and each object
  // lives exactly on the shard ShardOf names.
  for (size_t k = 0; k < 4; k++) {
    EXPECT_GT(cluster->shard(k)->object_count(), 0u) << "shard " << k << " empty";
  }
  for (ObjectId oid : oids) {
    EXPECT_TRUE(cluster->shard(cluster->ShardOf(oid))->Exists(oid));
    for (size_t k = 0; k < 4; k++) {
      if (k != cluster->ShardOf(oid)) {
        EXPECT_FALSE(cluster->shard(k)->Exists(oid));
      }
    }
  }

  // Merged scan: global ascending oid order, every object exactly once.
  std::vector<ObjectId> scanned;
  ASSERT_TRUE(cluster->ScanObjects([&](ObjectId oid, const ObjectMeta&) {
    scanned.push_back(oid);
    return true;
  }).ok());
  EXPECT_EQ(scanned, oids);  // CreateObject allocates ascending ids.

  // Reopen: placement, payloads, and the id allocator all survive.
  ASSERT_TRUE(cluster->Checkpoint().ok());
  ASSERT_TRUE(cluster->Close().ok());
  cluster.reset();
  auto reopened = OsdCluster::Open(devices, OsdOptions{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (int i = 0; i < 64; i++) {
    std::string out;
    ASSERT_TRUE((*reopened)->Read(oids[i], 0, 64, &out).ok());
    EXPECT_EQ(out, "shard payload #" + std::to_string(i));
  }
  auto fresh = (*reopened)->CreateObject();
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, oids.back());
}

TEST(ClusterTest, SingleShardClusterIsByteCompatibleWithPlainOsd) {
  // A volume created by the plain Osd opens as a 1-shard cluster...
  auto dev = std::make_shared<MemoryBlockDevice>(kDev);
  ObjectId oid;
  {
    auto created = Osd::Create(dev, OsdOptions{});
    ASSERT_TRUE(created.ok());
    auto r = (*created)->CreateObject();
    ASSERT_TRUE(r.ok());
    oid = *r;
    ASSERT_TRUE((*created)->Write(oid, 0, "plain osd bytes").ok());
    ASSERT_TRUE((*created)->Checkpoint().ok());
  }
  auto as_cluster = OsdCluster::Open({dev}, OsdOptions{});
  ASSERT_TRUE(as_cluster.ok()) << as_cluster.status().ToString();
  std::string out;
  ASSERT_TRUE((*as_cluster)->Read(oid, 0, 64, &out).ok());
  EXPECT_EQ(out, "plain osd bytes");
  auto oid2 = (*as_cluster)->CreateObject();
  ASSERT_TRUE(oid2.ok());
  ASSERT_TRUE((*as_cluster)->Write(*oid2, 0, "cluster bytes").ok());
  ASSERT_TRUE((*as_cluster)->Checkpoint().ok());
  ASSERT_TRUE((*as_cluster)->Close().ok());

  // ...and the other way around: a 1-shard cluster's volume opens as a plain Osd.
  auto as_osd = Osd::Open(dev, OsdOptions{});
  ASSERT_TRUE(as_osd.ok()) << as_osd.status().ToString();
  ASSERT_TRUE((*as_osd)->Read(oid, 0, 64, &out).ok());
  EXPECT_EQ(out, "plain osd bytes");
  ASSERT_TRUE((*as_osd)->Read(*oid2, 0, 64, &out).ok());
  EXPECT_EQ(out, "cluster bytes");
}

TEST(ClusterTest, RejectsMisassembledDeviceSets) {
  auto devices = MakeDevices(2);
  {
    auto r = OsdCluster::Create(devices, OsdOptions{});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE((*r)->Checkpoint().ok());
    ASSERT_TRUE((*r)->Close().ok());
  }
  // One shard of a 2-shard cluster is not a standalone volume.
  EXPECT_FALSE(OsdCluster::Open({devices[0]}, OsdOptions{}).ok());
  EXPECT_FALSE(OsdCluster::Open({devices[1]}, OsdOptions{}).ok());
  // Reordered devices put shard 1's stamp where shard 0 is expected.
  EXPECT_FALSE(OsdCluster::Open({devices[1], devices[0]}, OsdOptions{}).ok());
  // Two unstamped single volumes are not a 2-shard cluster.
  auto singles = MakeDevices(2);
  for (auto& d : singles) {
    auto r = Osd::Create(d, OsdOptions{});
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE((*r)->Checkpoint().ok());
  }
  EXPECT_FALSE(OsdCluster::Open(singles, OsdOptions{}).ok());
  // The correct assembly still opens.
  EXPECT_TRUE(OsdCluster::Open(devices, OsdOptions{}).ok());
}

// ------------------------------------------------------- sharded filesystem basics

TEST(ShardedFileSystemTest, NamespaceOpsSpanShardsAndSurviveReopen) {
  auto devices = MakeDevices(4);
  FileSystemOptions opts = ShardedOptions(4);
  std::vector<ObjectId> oids;
  {
    auto fs = FileSystem::Create(devices, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    for (int i = 0; i < 16; i++) {
      auto oid = (*fs)->Create({{"UDEF", "all"}});
      ASSERT_TRUE(oid.ok());
      oids.push_back(*oid);
      std::string body = "searchable document number" + std::to_string(i);
      ASSERT_TRUE((*fs)->Write(*oid, 0, body).ok());
      ASSERT_TRUE((*fs)->IndexContent(*oid).ok());
    }
    // Objects really landed on distinct shards.
    std::set<size_t> owners;
    for (ObjectId oid : oids) {
      owners.insert((*fs)->cluster()->ShardOf(oid));
    }
    EXPECT_GT(owners.size(), 1u);
    EXPECT_EQ(StrictFind(fs->get(), "UDEF:all"), oids);
    auto hits = (*fs)->SearchText({"searchable"});
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(hits->size(), oids.size());
    // Aggregated metrics expose the topology.
    EXPECT_NE((*fs)->DumpMetrics().find("shard_count"), std::string::npos);
    auto report = CheckFileSystem(fs->get());
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean()) << report->ToString();
    EXPECT_EQ(report->shards_checked, 4u);
    ASSERT_TRUE((*fs)->Checkpoint().ok());
  }
  auto reopened = FileSystem::Open(devices, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StrictFind(reopened->get(), "UDEF:all"), oids);
  auto hits = (*reopened)->SearchText({"searchable"});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), oids.size());
  auto report = CheckFileSystem(reopened->get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
}

// A hard crash (no checkpoint, journals only) with lazy tag intents pending on BOTH
// shards: recovery must route each intent back through its owner's journal and rebuild
// the unapplied queue.
TEST(ShardedFileSystemTest, LazyIntentsOnEveryShardSurviveAHardCrash) {
  auto bases = MakeDevices(2);
  std::vector<std::shared_ptr<FaultyBlockDevice>> faulty;
  std::vector<std::shared_ptr<BlockDevice>> devices;
  for (auto& b : bases) {
    faulty.push_back(std::make_shared<FaultyBlockDevice>(b));
    devices.push_back(faulty.back());
  }
  FileSystemOptions opts = ShardedOptions(2);
  opts.lazy_tag_indexing = true;
  opts.osd.group_commit = false;
  std::vector<std::pair<ObjectId, std::string>> acked;
  {
    auto fs = FileSystem::Create(devices, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    std::vector<ObjectId> oids;
    std::set<size_t> owners;
    while (owners.size() < 2) {  // At least one object on each shard.
      auto oid = (*fs)->Create();
      ASSERT_TRUE(oid.ok());
      oids.push_back(*oid);
      owners.insert((*fs)->cluster()->ShardOf(*oid));
    }
    (*fs)->tag_indexer_for_testing()->SetPausedForTesting(true);
    for (size_t i = 0; i < oids.size(); i++) {
      std::string value = "pinned" + std::to_string(i);
      ASSERT_TRUE((*fs)->AddTag(oids[i], {"UDEF", value}).ok());
      acked.emplace_back(oids[i], value);
    }
    ASSERT_TRUE((*fs)->Sync().ok());
    for (auto& f : faulty) {
      f->SetWriteBudget(0);  // Hard crash on every device at once.
    }
  }
  auto reopened = FileSystem::Open(bases, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_TRUE((*reopened)->WaitForTagIndexing().ok());
  for (const auto& [oid, value] : acked) {
    EXPECT_EQ(StrictFind(reopened->get(), "UDEF:" + value), std::vector<ObjectId>{oid})
        << "lost acknowledged intent " << value;
  }
  auto report = CheckFileSystem(reopened->get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
}

// ------------------------------------------------------- cross-shard 2PC tear sweep

// The acceptance sweep: a cross-shard batch is torn after `budget` writes on shard
// `victim` — across every budget, on every participant. After recovery an acked batch
// is fully visible on all member shards; an unacked batch either committed entirely
// (its commit record became durable before the tear) or left no residue at all. fsck
// must come back clean either way: no half-applied batch can exist.
class ClusterBatchTearTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ClusterBatchTearTest, TornCrossShardBatchIsAllOrNothing) {
  const size_t victim = static_cast<size_t>(std::get<0>(GetParam()));
  const int64_t budget = std::get<1>(GetParam());
  FileSystemOptions opts = ShardedOptions(2);
  opts.osd.group_commit = false;
  std::vector<ObjectId> members;  // One object per shard: every batch is cross-shard.
  bool torn_acked = false;
  test::RunTornWriteCrashMulti(
      2, kDev, victim, budget,
      [&](const std::vector<std::shared_ptr<BlockDevice>>& devices,
          test::CrashPoint* point) {
        auto fs = FileSystem::Create(devices, opts);
        ASSERT_TRUE(fs.ok()) << fs.status().ToString();
        std::vector<ObjectId> per_shard(2, 0);
        while (per_shard[0] == 0 || per_shard[1] == 0) {
          auto oid = (*fs)->Create();
          ASSERT_TRUE(oid.ok());
          per_shard[(*fs)->cluster()->ShardOf(*oid)] = *oid;
        }
        members = {std::min(per_shard[0], per_shard[1]),
                   std::max(per_shard[0], per_shard[1])};

        // Acked before the fault: must survive whatever happens next.
        NamespaceBatch acked = (*fs)->NewBatch();
        for (ObjectId oid : members) {
          ASSERT_TRUE(acked.AddTag(oid, {"UDEF", "acked"}).ok());
        }
        ASSERT_TRUE(acked.Commit().ok());
        ASSERT_TRUE((*fs)->Sync().ok());

        point->Tear();
        NamespaceBatch torn = (*fs)->NewBatch();
        for (ObjectId oid : members) {
          ASSERT_TRUE(torn.AddTag(oid, {"UDEF", "torn"}).ok());
        }
        // An ok() return is an acknowledgment: the batch must then be durable on
        // every shard even though `victim`'s device dies right after.
        torn_acked = torn.Commit().ok();
        point->Crash();
      },
      [&](const std::vector<std::shared_ptr<BlockDevice>>& bases) {
        auto reopened = FileSystem::Open(bases, opts);
        ASSERT_TRUE(reopened.ok())
            << "victim " << victim << " budget " << budget << ": "
            << reopened.status().ToString();
        FileSystem* fs = reopened->get();
        EXPECT_EQ(StrictFind(fs, "UDEF:acked"), members)
            << "victim " << victim << " budget " << budget;
        int visible = 0;
        for (ObjectId oid : members) {
          visible += fs->HasName(oid, {"UDEF", "torn"}) ? 1 : 0;
        }
        if (torn_acked) {
          EXPECT_EQ(visible, 2) << "acked batch lost (victim " << victim
                                << " budget " << budget << ")";
        } else {
          EXPECT_TRUE(visible == 0 || visible == 2)
              << "partial batch residue: " << visible << " of 2 members tagged "
              << "(victim " << victim << " budget " << budget << ")";
        }
        // Find and the reverse map agree with each other in either outcome.
        EXPECT_EQ(StrictFind(fs, "UDEF:torn"),
                  visible == 2 ? members : std::vector<ObjectId>{});
        auto report = CheckFileSystem(fs);
        ASSERT_TRUE(report.ok());
        EXPECT_TRUE(report->clean()) << "victim " << victim << " budget " << budget
                                     << ": " << report->ToString();
      });
}

INSTANTIATE_TEST_SUITE_P(TearAtEveryWriteOnEveryShard, ClusterBatchTearTest,
                         ::testing::Combine(::testing::Range(0, 2),
                                            ::testing::Range(0, 8)));

// ------------------------------------------------------------- differential testing

// The same seeded 500-op workload driven against a single volume and a 4-shard
// cluster must be observationally identical: same Find pages, same Tags, same
// full-text hits, same fsck verdict.
class ClusterDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterDifferentialTest, FourShardsMatchSingleVolume) {
  Random rng(GetParam());
  auto fs1r = FileSystem::Create(MakeDevices(1), ShardedOptions(1));
  auto fs4r = FileSystem::Create(MakeDevices(4), ShardedOptions(4));
  ASSERT_TRUE(fs1r.ok()) << fs1r.status().ToString();
  ASSERT_TRUE(fs4r.ok()) << fs4r.status().ToString();
  FileSystem* fs1 = fs1r->get();
  FileSystem* fs4 = fs4r->get();

  const std::vector<std::string> vocab = {"alpha", "bravo", "charlie", "delta",
                                          "echo",  "fox",   "golf",    "hotel"};
  std::vector<ObjectId> live;
  for (int op = 0; op < 500; op++) {
    int dice = rng.Uniform(100);
    if (dice < 25 || live.empty()) {  // create (+ content + fulltext)
      auto o1 = fs1->Create();
      auto o4 = fs4->Create();
      ASSERT_TRUE(o1.ok());
      ASSERT_TRUE(o4.ok());
      ASSERT_EQ(*o1, *o4) << "oid allocation diverged at op " << op;
      std::string body = vocab[rng.Uniform(vocab.size())] + " " +
                         vocab[rng.Uniform(vocab.size())] + " document";
      ASSERT_TRUE(fs1->Write(*o1, 0, body).ok());
      ASSERT_TRUE(fs4->Write(*o4, 0, body).ok());
      ASSERT_TRUE(fs1->IndexContent(*o1).ok());
      ASSERT_TRUE(fs4->IndexContent(*o4).ok());
      live.push_back(*o1);
    } else if (dice < 50) {  // loose AddTag
      ObjectId oid = live[rng.Uniform(live.size())];
      TagValue name{"UDEF", "v" + std::to_string(rng.Uniform(24))};
      Status s1 = fs1->AddTag(oid, name);
      Status s4 = fs4->AddTag(oid, name);
      EXPECT_EQ(s1.ok(), s4.ok()) << s1.ToString() << " vs " << s4.ToString();
    } else if (dice < 62) {  // loose RemoveTag (NotFound in lockstep)
      ObjectId oid = live[rng.Uniform(live.size())];
      TagValue name{"UDEF", "v" + std::to_string(rng.Uniform(24))};
      Status s1 = fs1->RemoveTag(oid, name);
      Status s4 = fs4->RemoveTag(oid, name);
      EXPECT_EQ(s1.code(), s4.code()) << s1.ToString() << " vs " << s4.ToString();
    } else if (dice < 80) {  // atomic batch over 2-4 objects (cross-shard on fs4)
      NamespaceBatch b1 = fs1->NewBatch();
      NamespaceBatch b4 = fs4->NewBatch();
      std::string value = "b" + std::to_string(rng.Uniform(12));
      int width = 2 + rng.Uniform(3);
      for (int i = 0; i < width; i++) {
        ObjectId oid = live[rng.Uniform(live.size())];
        ASSERT_TRUE(b1.AddTag(oid, {"UDEF", value}).ok());
        ASSERT_TRUE(b4.AddTag(oid, {"UDEF", value}).ok());
      }
      Status s1 = b1.Commit();
      Status s4 = b4.Commit();
      EXPECT_EQ(s1.ok(), s4.ok()) << s1.ToString() << " vs " << s4.ToString();
    } else if (dice < 85 && live.size() > 4) {  // remove an object
      size_t pick = rng.Uniform(live.size());
      ObjectId oid = live[pick];
      Status s1 = fs1->Remove(oid);
      Status s4 = fs4->Remove(oid);
      EXPECT_EQ(s1.ok(), s4.ok()) << s1.ToString() << " vs " << s4.ToString();
      live.erase(live.begin() + pick);
    } else {  // interleaved read: strict Find must agree mid-workload
      std::string q = rng.OneIn(2)
                          ? "UDEF:v" + std::to_string(rng.Uniform(24))
                          : "UDEF:b" + std::to_string(rng.Uniform(12));
      EXPECT_EQ(StrictFind(fs1, q), StrictFind(fs4, q)) << "query " << q;
    }
  }

  ASSERT_TRUE(fs1->WaitForIndexing().ok());
  ASSERT_TRUE(fs4->WaitForIndexing().ok());
  for (int v = 0; v < 24; v++) {
    std::string q = "UDEF:v" + std::to_string(v);
    EXPECT_EQ(StrictFind(fs1, q), StrictFind(fs4, q)) << q;
  }
  for (int v = 0; v < 12; v++) {
    std::string q = "UDEF:b" + std::to_string(v);
    EXPECT_EQ(StrictFind(fs1, q), StrictFind(fs4, q)) << q;
  }
  for (ObjectId oid : live) {
    EXPECT_EQ(SortedTags(fs1, oid), SortedTags(fs4, oid)) << "oid " << oid;
  }
  for (const std::string& word : vocab) {
    auto h1 = fs1->SearchText({word});
    auto h4 = fs4->SearchText({word});
    ASSERT_TRUE(h1.ok());
    ASSERT_TRUE(h4.ok());
    ASSERT_EQ(h1->size(), h4->size()) << word;
    for (size_t i = 0; i < h1->size(); i++) {
      EXPECT_EQ((*h1)[i].docid, (*h4)[i].docid) << word << " hit " << i;
      EXPECT_DOUBLE_EQ((*h1)[i].score, (*h4)[i].score) << word << " hit " << i;
    }
  }
  auto r1 = CheckFileSystem(fs1);
  auto r4 = CheckFileSystem(fs4);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r1->clean(), r4->clean());
  EXPECT_TRUE(r1->clean()) << r1->ToString();
  EXPECT_TRUE(r4->clean()) << r4->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterDifferentialTest,
                         ::testing::Values(0xC0FFEEull, 0xDECAFull, 0xF00Dull));

// --------------------------------------------------------------- concurrent storm

// 8 writer threads commit cross-shard batches against a 4-shard lazy filesystem while
// strict and relaxed readers page results and fsck sweeps the live volume. TSan runs
// this in CI. Mid-storm fsck reports may be transiently stale (pending intents) and
// only the quiesced report is asserted clean.
TEST(ClusterStormTest, CrossShardBatchStormWithReadersAndFsck) {
  FileSystemOptions opts = ShardedOptions(4);
  opts.lazy_tag_indexing = true;
  opts.tag_intent_queue_capacity = 64;  // Exercise backpressure.
  auto fsr = FileSystem::Create(MakeDevices(4), opts);
  ASSERT_TRUE(fsr.ok()) << fsr.status().ToString();
  FileSystem* fs = fsr->get();

  constexpr int kWriters = 8;
  constexpr int kBatchesPerWriter = 60;
  std::vector<ObjectId> oids;
  for (int i = 0; i < 48; i++) {
    auto oid = fs->Create();
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      Random rng(7000 + w);
      for (int i = 0; i < kBatchesPerWriter; i++) {
        NamespaceBatch batch = fs->NewBatch();
        std::string value = "w" + std::to_string(w) + "v" +
                            std::to_string(rng.Uniform(8));
        int width = 2 + rng.Uniform(3);
        for (int m = 0; m < width; m++) {
          if (!batch.AddTag(oids[rng.Uniform(oids.size())], {"UDEF", value}).ok()) {
            failures.fetch_add(1);
          }
        }
        if (!batch.Commit().ok()) {
          failures.fetch_add(1);
        }
        if (rng.OneIn(4)) {
          Status s = fs->RemoveTag(oids[rng.Uniform(oids.size())],
                                   {"UDEF", value});
          if (!s.ok() && !s.IsNotFound()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  threads.emplace_back([&] {  // Strict reader.
    Random rng(8100);
    while (!stop.load()) {
      query::FindOptions o;
      o.visibility = query::Visibility::kStrict;
      auto page = fs->Find(Slice("UDEF:w" + std::to_string(rng.Uniform(kWriters)) +
                                 "v" + std::to_string(rng.Uniform(8))),
                           o);
      if (!page.ok()) failures.fetch_add(1);
    }
  });
  threads.emplace_back([&] {  // Relaxed reader.
    Random rng(8200);
    while (!stop.load()) {
      query::FindOptions o;
      o.visibility = query::Visibility::kRelaxed;
      auto page = fs->Find(Slice("UDEF:w" + std::to_string(rng.Uniform(kWriters)) +
                                 "v" + std::to_string(rng.Uniform(8))),
                           o);
      if (!page.ok()) failures.fetch_add(1);
    }
  });
  threads.emplace_back([&] {  // Live fsck: must complete without IO errors.
    while (!stop.load()) {
      auto report = CheckFileSystem(fs);
      if (!report.ok()) failures.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  for (int w = 0; w < kWriters; w++) {
    threads[w].join();
  }
  stop.store(true);
  for (size_t i = kWriters; i < threads.size(); i++) {
    threads[i].join();
  }
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(fs->WaitForTagIndexing().ok());
  EXPECT_TRUE(fs->PendingIndexIntents().empty());

  auto report = CheckFileSystem(fs);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
  // Strict Find agrees with the authoritative reverse map for every value.
  for (int w = 0; w < kWriters; w++) {
    for (int v = 0; v < 8; v++) {
      std::string value = "w" + std::to_string(w) + "v" + std::to_string(v);
      std::vector<ObjectId> expect;
      for (ObjectId oid : oids) {
        if (fs->HasName(oid, {"UDEF", value})) {
          expect.push_back(oid);
        }
      }
      EXPECT_EQ(StrictFind(fs, "UDEF:" + value), expect) << value;
    }
  }
}

// Fault sweep: flip one bit in every page of one shard's device. The cluster must
// never serve corrupt bytes silently — every read is byte-exact or an error — the
// damage stays confined to the flipped shard (other shards' objects always read
// clean), and at least one flip is actually caught (the sweep covers every stamped
// data page, so detections are guaranteed, not incidental).
TEST(ClusterFaultSweepTest, BitFlipOnOneShardIsCaughtAndConfined) {
  constexpr uint64_t kFlipDev = 4 * 1024 * 1024;
  auto base0 = std::make_shared<MemoryBlockDevice>(kFlipDev);
  auto faulty0 = std::make_shared<FaultyBlockDevice>(base0);
  std::vector<std::shared_ptr<BlockDevice>> devices = {
      faulty0, std::make_shared<MemoryBlockDevice>(kFlipDev)};
  OsdOptions opts;
  opts.io_threads = 0;
  opts.pager_capacity_pages = 16;  // Small cache: reads hit the device, not memory.
  auto created = OsdCluster::Create(devices, opts);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto cluster = std::move(created).value();

  std::vector<osd::ObjectId> oids;
  std::vector<std::string> payloads;
  for (int i = 0; i < 32; i++) {
    auto oid = cluster->CreateObject();
    ASSERT_TRUE(oid.ok());
    payloads.push_back("cluster-flip-" + std::to_string(i) +
                       std::string(3000, static_cast<char>('A' + i % 26)));
    ASSERT_TRUE(cluster->Write(*oid, 0, payloads.back()).ok());
    oids.push_back(*oid);
  }
  ASSERT_TRUE(cluster->Checkpoint().ok());

  size_t corruption_caught = 0;
  test::RunBitFlipSweep(base0, faulty0.get(), kFlipDev, kPageSize, [&](uint64_t off) {
    std::string out;
    for (size_t i = 0; i < oids.size(); i++) {
      Status s = cluster->Read(oids[i], 0, payloads[i].size(), &out);
      if (cluster->ShardOf(oids[i]) != 0) {
        ASSERT_TRUE(s.ok()) << "healthy shard read failed with flip at " << off << ": "
                            << s.ToString();
        ASSERT_EQ(out, payloads[i]);
      } else if (s.ok()) {
        ASSERT_EQ(out, payloads[i]) << "silent corruption served, flip at " << off;
      } else {
        corruption_caught++;
      }
    }
    cluster->shard(0)->health().Reset();  // Detection degrades; undo per round.
  });
  EXPECT_GT(corruption_caught, 0u) << "no flip landed on a read data page; vacuous sweep";
  EXPECT_EQ(cluster->shard(1)->health_state(), HealthState::kHealthy);
}

}  // namespace
}  // namespace core
}  // namespace hfad
