// Unit + property tests for the counted extent tree (byte-accessible object data).
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/extent/extent_tree.h"
#include "src/storage/block_device.h"
#include "src/storage/buddy_allocator.h"
#include "src/storage/pager.h"

namespace hfad {
namespace extent {
namespace {

constexpr uint64_t kHeap = 256 * 1024 * 1024;

class ExtentTreeTest : public ::testing::Test {
 protected:
  ExtentTreeTest()
      : dev_(kPageSize + kHeap),
        pager_(&dev_, 2048),
        alloc_(kPageSize, kHeap),
        tree_(&pager_, &alloc_, 0) {}

  std::string ReadAll() {
    std::string out;
    EXPECT_TRUE(tree_.Read(0, tree_.Size(), &out).ok());
    return out;
  }

  MemoryBlockDevice dev_;
  Pager pager_;
  BuddyAllocator alloc_;
  ExtentTree tree_;
};

TEST_F(ExtentTreeTest, EmptyObject) {
  EXPECT_EQ(tree_.Size(), 0u);
  EXPECT_EQ(tree_.root(), 0u);
  std::string out;
  ASSERT_TRUE(tree_.Read(0, 10, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(tree_.Read(1, 1, &out).ok());  // Past the end.
  ASSERT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(ExtentTreeTest, WriteThenRead) {
  ASSERT_TRUE(tree_.Write(0, "hello world").ok());
  EXPECT_EQ(tree_.Size(), 11u);
  EXPECT_EQ(ReadAll(), "hello world");
  std::string out;
  ASSERT_TRUE(tree_.Read(6, 5, &out).ok());
  EXPECT_EQ(out, "world");
}

TEST_F(ExtentTreeTest, ShortReadAtEnd) {
  ASSERT_TRUE(tree_.Write(0, "abc").ok());
  std::string out;
  ASSERT_TRUE(tree_.Read(1, 100, &out).ok());
  EXPECT_EQ(out, "bc");
  ASSERT_TRUE(tree_.Read(3, 10, &out).ok());  // At exactly EOF: empty.
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(tree_.Read(4, 1, &out).ok());  // Beyond EOF: error.
}

TEST_F(ExtentTreeTest, OverwriteMiddle) {
  ASSERT_TRUE(tree_.Write(0, "aaaaaaaaaa").ok());
  ASSERT_TRUE(tree_.Write(3, "BBB").ok());
  EXPECT_EQ(ReadAll(), "aaaBBBaaaa");
  EXPECT_EQ(tree_.Size(), 10u);
}

TEST_F(ExtentTreeTest, WriteExtendsAtEof) {
  ASSERT_TRUE(tree_.Write(0, "12345").ok());
  ASSERT_TRUE(tree_.Write(5, "678").ok());  // Append via write at EOF.
  EXPECT_EQ(ReadAll(), "12345678");
  ASSERT_TRUE(tree_.Write(6, "XYZ").ok());  // Straddles EOF: overwrite + extend.
  EXPECT_EQ(ReadAll(), "123456XYZ");
}

TEST_F(ExtentTreeTest, WritePastEofRejected) {
  ASSERT_TRUE(tree_.Write(0, "abc").ok());
  EXPECT_FALSE(tree_.Write(5, "hole").ok());  // No implicit holes.
}

TEST_F(ExtentTreeTest, InsertIntoMiddle) {
  ASSERT_TRUE(tree_.Write(0, "helloworld").ok());
  ASSERT_TRUE(tree_.Insert(5, ", ").ok());
  EXPECT_EQ(ReadAll(), "hello, world");
  EXPECT_EQ(tree_.Size(), 12u);
}

TEST_F(ExtentTreeTest, InsertAtStartAndEnd) {
  ASSERT_TRUE(tree_.Write(0, "middle").ok());
  ASSERT_TRUE(tree_.Insert(0, "start-").ok());
  ASSERT_TRUE(tree_.Insert(tree_.Size(), "-end").ok());
  EXPECT_EQ(ReadAll(), "start-middle-end");
}

TEST_F(ExtentTreeTest, InsertIntoEmptyObject) {
  ASSERT_TRUE(tree_.Insert(0, "genesis").ok());
  EXPECT_EQ(ReadAll(), "genesis");
}

TEST_F(ExtentTreeTest, InsertBeyondEofRejected) {
  ASSERT_TRUE(tree_.Write(0, "abc").ok());
  EXPECT_FALSE(tree_.Insert(4, "x").ok());
}

TEST_F(ExtentTreeTest, RemoveRangeMiddle) {
  ASSERT_TRUE(tree_.Write(0, "hello, cruel world").ok());
  ASSERT_TRUE(tree_.RemoveRange(5, 6).ok());
  EXPECT_EQ(ReadAll(), std::string("hello, cruel world").erase(5, 6));
}

TEST_F(ExtentTreeTest, RemoveRangePrefixAndSuffix) {
  ASSERT_TRUE(tree_.Write(0, "0123456789").ok());
  ASSERT_TRUE(tree_.RemoveRange(0, 3).ok());
  EXPECT_EQ(ReadAll(), "3456789");
  ASSERT_TRUE(tree_.RemoveRange(4, 3).ok());  // Classic truncate-from-end.
  EXPECT_EQ(ReadAll(), "3456");
}

TEST_F(ExtentTreeTest, RemoveRangeWholeObject) {
  ASSERT_TRUE(tree_.Write(0, "everything").ok());
  ASSERT_TRUE(tree_.RemoveRange(0, 10).ok());
  EXPECT_EQ(tree_.Size(), 0u);
  EXPECT_EQ(ReadAll(), "");
}

TEST_F(ExtentTreeTest, RemoveRangeOutOfBoundsRejected) {
  ASSERT_TRUE(tree_.Write(0, "abc").ok());
  EXPECT_FALSE(tree_.RemoveRange(1, 5).ok());
  EXPECT_FALSE(tree_.RemoveRange(4, 1).ok());
  EXPECT_TRUE(tree_.RemoveRange(1, 0).ok());  // Zero-length is a no-op.
  EXPECT_EQ(ReadAll(), "abc");
}

TEST_F(ExtentTreeTest, LargeWriteChunksIntoExtents) {
  std::string big(1024 * 1024, 'L');
  for (size_t i = 0; i < big.size(); i++) {
    big[i] = static_cast<char>('A' + (i % 26));
  }
  ASSERT_TRUE(tree_.Write(0, big).ok());
  EXPECT_EQ(tree_.Size(), big.size());
  auto extents = tree_.CountExtents();
  ASSERT_TRUE(extents.ok());
  EXPECT_GE(*extents, big.size() / kMaxExtentSize);  // Chunked.
  EXPECT_EQ(ReadAll(), big);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(ExtentTreeTest, InsertIntoLargeObjectPreservesContent) {
  std::string base(512 * 1024, 'x');
  for (size_t i = 0; i < base.size(); i++) {
    base[i] = static_cast<char>('a' + (i % 26));
  }
  ASSERT_TRUE(tree_.Write(0, base).ok());
  std::string inserted(4096, 'I');
  uint64_t pos = base.size() / 2 + 37;  // Unaligned middle offset.
  ASSERT_TRUE(tree_.Insert(pos, inserted).ok());
  std::string expect = base.substr(0, pos) + inserted + base.substr(pos);
  EXPECT_EQ(tree_.Size(), expect.size());
  EXPECT_EQ(ReadAll(), expect);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(ExtentTreeTest, RemoveRangeAcrossManyExtents) {
  std::string base(512 * 1024, 'x');
  for (size_t i = 0; i < base.size(); i++) {
    base[i] = static_cast<char>('a' + (i % 26));
  }
  ASSERT_TRUE(tree_.Write(0, base).ok());
  // Remove a 200 KiB range spanning multiple 64 KiB extents, unaligned ends.
  uint64_t off = 100 * 1024 + 13;
  uint64_t len = 200 * 1024 + 5;
  ASSERT_TRUE(tree_.RemoveRange(off, len).ok());
  std::string expect = base.substr(0, off) + base.substr(off + len);
  EXPECT_EQ(ReadAll(), expect);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(ExtentTreeTest, ClearFreesAllStorage) {
  std::string big(2 * 1024 * 1024, 'C');
  ASSERT_TRUE(tree_.Write(0, big).ok());
  EXPECT_GT(alloc_.allocated_bytes(), big.size() / 2);
  ASSERT_TRUE(tree_.Clear().ok());
  EXPECT_EQ(tree_.Size(), 0u);
  EXPECT_EQ(tree_.root(), 0u);
  EXPECT_EQ(alloc_.allocation_count(), 0u);
  // Reusable after clear.
  ASSERT_TRUE(tree_.Write(0, "again").ok());
  EXPECT_EQ(ReadAll(), "again");
}

TEST_F(ExtentTreeTest, RemoveRangeFreesStorage) {
  std::string big(4 * 1024 * 1024, 'R');
  ASSERT_TRUE(tree_.Write(0, big).ok());
  uint64_t before = alloc_.allocated_bytes();
  ASSERT_TRUE(tree_.RemoveRange(0, big.size() / 2).ok());
  EXPECT_LT(alloc_.allocated_bytes(), before);
}

TEST_F(ExtentTreeTest, PersistsAcrossReopen) {
  std::string content;
  for (int i = 0; i < 1000; i++) {
    content += "line-" + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(tree_.Write(0, content).ok());
  ASSERT_TRUE(tree_.Insert(5, "INSERTED").ok());
  uint64_t root = tree_.root();
  ASSERT_TRUE(pager_.Flush().ok());
  ASSERT_TRUE(pager_.DropCacheForTesting().ok());

  ExtentTree reopened(&pager_, &alloc_, root);
  std::string expect = content.substr(0, 5) + "INSERTED" + content.substr(5);
  EXPECT_EQ(reopened.Size(), expect.size());
  std::string out;
  ASSERT_TRUE(reopened.Read(0, reopened.Size(), &out).ok());
  EXPECT_EQ(out, expect);
  ASSERT_TRUE(reopened.CheckInvariants().ok());
}

TEST_F(ExtentTreeTest, ManySmallInsertsAtFrontForceDeepTree) {
  // Repeated front insertion is the adversarial case for offset-keyed maps; the counted
  // tree must stay O(log n) and correct.
  std::string expect;
  for (int i = 0; i < 3000; i++) {
    std::string piece = std::to_string(i % 10);
    ASSERT_TRUE(tree_.Insert(0, piece).ok()) << i;
    expect = piece + expect;
  }
  EXPECT_EQ(ReadAll(), expect);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
}

// Property test: mirror a std::string model through random byte operations.
struct ExtentWorkload {
  uint64_t seed;
  int ops;
  uint64_t max_piece;  // Largest single write/insert.
};

class ExtentTreePropertyTest : public ::testing::TestWithParam<ExtentWorkload> {};

TEST_P(ExtentTreePropertyTest, MatchesStringModel) {
  const ExtentWorkload p = GetParam();
  MemoryBlockDevice dev(kPageSize + kHeap);
  Pager pager(&dev, 2048);
  BuddyAllocator alloc(kPageSize, kHeap);
  ExtentTree tree(&pager, &alloc, 0);
  std::string model;
  Random rng(p.seed);

  for (int op = 0; op < p.ops; op++) {
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 3) {  // Write at random legal offset.
      uint64_t off = model.empty() ? 0 : rng.Uniform(model.size() + 1);
      std::string data = rng.NextString(rng.Range(1, p.max_piece));
      ASSERT_TRUE(tree.Write(off, data).ok());
      if (off + data.size() > model.size()) {
        model.resize(off + data.size());
      }
      model.replace(off, data.size(), data);
    } else if (action < 6) {  // Insert at random offset.
      uint64_t off = model.empty() ? 0 : rng.Uniform(model.size() + 1);
      std::string data = rng.NextString(rng.Range(1, p.max_piece));
      ASSERT_TRUE(tree.Insert(off, data).ok());
      model.insert(off, data);
    } else if (action < 8 && !model.empty()) {  // RemoveRange.
      uint64_t off = rng.Uniform(model.size());
      uint64_t len = rng.Range(1, model.size() - off);
      ASSERT_TRUE(tree.RemoveRange(off, len).ok());
      model.erase(off, len);
    } else if (!model.empty()) {  // Random read.
      uint64_t off = rng.Uniform(model.size());
      size_t n = rng.Range(1, p.max_piece);
      std::string out;
      ASSERT_TRUE(tree.Read(off, n, &out).ok());
      ASSERT_EQ(out, model.substr(off, n));
    }
    ASSERT_EQ(tree.Size(), model.size());
  }
  std::string all;
  ASSERT_TRUE(tree.Read(0, tree.Size(), &all).ok());
  ASSERT_EQ(all, model);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ExtentTreePropertyTest,
    ::testing::Values(ExtentWorkload{101, 1500, 64},           // Tiny pieces, many ops.
                      ExtentWorkload{202, 600, 4096},          // Page-ish pieces.
                      ExtentWorkload{303, 200, 150 * 1024},    // Pieces above kMaxExtentSize.
                      ExtentWorkload{404, 1000, 700}));        // Mixed.

}  // namespace
}  // namespace extent
}  // namespace hfad
