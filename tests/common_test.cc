// Unit tests for hfad_common: Status/Result, Slice, coding, CRC32C, Random, stats.
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/coding.h"
#include "src/common/crc32.h"
#include "src/common/random.h"
#include "src/common/sharded_lock.h"
#include "src/common/slice.h"
#include "src/common/stats.h"
#include "src/common/status.h"

namespace hfad {
namespace {

// ---------------------------------------------------------------- Status / Result

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("no object with oid 17");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no object with oid 17");
  EXPECT_EQ(s.ToString(), "NotFound: no object with oid 17");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  std::vector<StatusCode> codes = {
      StatusCode::kOk,          StatusCode::kNotFound,   StatusCode::kAlreadyExists,
      StatusCode::kInvalidArgument, StatusCode::kOutOfRange, StatusCode::kNoSpace,
      StatusCode::kCorruption,  StatusCode::kNotSupported, StatusCode::kBusy,
      StatusCode::kIoError,     StatusCode::kInternal};
  std::vector<std::string_view> names;
  for (StatusCode c : codes) {
    names.push_back(StatusCodeName(c));
  }
  for (size_t i = 0; i < names.size(); i++) {
    EXPECT_FALSE(names[i].empty());
    for (size_t j = i + 1; j < names.size(); j++) {
      EXPECT_NE(names[i], names[j]) << i << " vs " << j;
    }
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Ok(), Status::Ok());
  EXPECT_EQ(Status::Busy("x"), Status::Busy("x"));
  EXPECT_FALSE(Status::Busy("x") == Status::Busy("y"));
  EXPECT_FALSE(Status::Busy("x") == Status::IoError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NoSpace("full"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNoSpace());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Status FailingHelper() { return Status::IoError("disk gone"); }

Status PropagateWithMacro() {
  HFAD_RETURN_IF_ERROR(FailingHelper());
  return Status::Internal("unreachable");
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagateWithMacro(), Status::IoError("disk gone"));
}

Result<int> GiveSeven() { return 7; }

Result<int> AssignWithMacro() {
  HFAD_ASSIGN_OR_RETURN(int v, GiveSeven());
  return v * 2;
}

TEST(ResultTest, AssignOrReturn) {
  Result<int> r = AssignWithMacro();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 14);
}

// ---------------------------------------------------------------- Slice

TEST(SliceTest, ConstructionForms) {
  std::string s = "abc";
  EXPECT_EQ(Slice(s).size(), 3u);
  EXPECT_EQ(Slice("abc").size(), 3u);
  EXPECT_EQ(Slice(std::string_view("abc")).size(), 3u);
  std::vector<uint8_t> v = {1, 2, 3, 4};
  EXPECT_EQ(Slice(v).size(), 4u);
  EXPECT_TRUE(Slice().empty());
  EXPECT_EQ(Slice(static_cast<const char*>(nullptr)).size(), 0u);
}

TEST(SliceTest, CompareIsMemcmpWithLengthTiebreak) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);   // Prefix sorts first.
  EXPECT_GT(Slice("abc").Compare(Slice("ab")), 0);
  EXPECT_LT(Slice("").Compare(Slice("a")), 0);
  EXPECT_EQ(Slice("").Compare(Slice("")), 0);
}

TEST(SliceTest, CompareIsUnsignedBytewise) {
  // 0xFF must sort after 0x01 even though signed char comparison says otherwise.
  char hi = static_cast<char>(0xff);
  char lo = 0x01;
  EXPECT_GT(Slice(&hi, 1).Compare(Slice(&lo, 1)), 0);
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("abcdef").StartsWith("abc"));
  EXPECT_TRUE(Slice("abc").StartsWith(""));
  EXPECT_TRUE(Slice("").StartsWith(""));
  EXPECT_FALSE(Slice("ab").StartsWith("abc"));
  EXPECT_FALSE(Slice("xbc").StartsWith("ab"));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("hello world");
  s.RemovePrefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

TEST(SliceTest, EmbeddedNulBytesCompareCorrectly) {
  std::string a("a\0b", 3);
  std::string b("a\0c", 3);
  EXPECT_LT(Slice(a).Compare(Slice(b)), 0);
  EXPECT_EQ(Slice(a).ToString().size(), 3u);
}

// ---------------------------------------------------------------- Coding

TEST(CodingTest, FixedRoundTrip) {
  uint8_t buf[8];
  EncodeFixed16(buf, 0xBEEF);
  EXPECT_EQ(DecodeFixed16(buf), 0xBEEF);
  EncodeFixed32(buf, 0xDEADBEEF);
  EXPECT_EQ(DecodeFixed32(buf), 0xDEADBEEFu);
  EncodeFixed64(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(DecodeFixed64(buf), 0x0123456789ABCDEFull);
}

TEST(CodingTest, FixedIsLittleEndian) {
  uint8_t buf[4];
  EncodeFixed32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> values = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 21) - 1,
                                  1ull << 21,
                                  (1ull << 28) - 1,
                                  1ull << 28,
                                  (1ull << 35),
                                  (1ull << 63),
                                  std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Varint32RoundTrip) {
  for (uint32_t v : {0u, 1u, 300u, 70000u, std::numeric_limits<uint32_t>::max()}) {
    std::string buf;
    PutVarint32(&buf, v);
    Slice in(buf);
    uint32_t out = 0;
    ASSERT_TRUE(GetVarint32(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarintSizes) {
  std::string buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

TEST(CodingTest, VarintTruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  for (size_t cut = 0; cut < buf.size(); cut++) {
    Slice in(buf.data(), cut);
    uint64_t out;
    EXPECT_FALSE(GetVarint64(&in, &out)) << "prefix length " << cut;
  }
}

TEST(CodingTest, VarintEmptyInputFails) {
  Slice in;
  uint32_t v32;
  uint64_t v64;
  EXPECT_FALSE(GetVarint32(&in, &v32));
  EXPECT_FALSE(GetVarint64(&in, &v64));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  std::string big(100000, 'x');
  PutLengthPrefixed(&buf, Slice(big));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.ToString(), big);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedPayloadFails) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  Slice in(buf.data(), buf.size() - 1);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(CodingTest, MixedStreamDecodesInOrder) {
  std::string buf;
  PutVarint32(&buf, 7);
  PutFixed64(&buf, 0x1122334455667788ull);
  PutLengthPrefixed(&buf, Slice("tag"));
  PutVarint64(&buf, 1ull << 33);
  Slice in(buf);
  uint32_t a;
  ASSERT_TRUE(GetVarint32(&in, &a));
  EXPECT_EQ(a, 7u);
  uint64_t f;
  ASSERT_TRUE(GetFixed64(&in, &f));
  EXPECT_EQ(f, 0x1122334455667788ull);
  Slice s;
  ASSERT_TRUE(GetLengthPrefixed(&in, &s));
  EXPECT_EQ(s.ToString(), "tag");
  uint64_t b;
  ASSERT_TRUE(GetVarint64(&in, &b));
  EXPECT_EQ(b, 1ull << 33);
  EXPECT_TRUE(in.empty());
}

// ---------------------------------------------------------------- CRC32C

TEST(Crc32Test, KnownVectors) {
  // RFC 3720 test vectors for CRC32C.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(Slice(zeros)), 0x8a9136aau);
  std::string ones(32, static_cast<char>(0xff));
  EXPECT_EQ(Crc32c(Slice(ones)), 0x62a8ab43u);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; i++) {
    ascending[i] = static_cast<char>(i);
  }
  EXPECT_EQ(Crc32c(Slice(ascending)), 0x46dd794eu);
}

TEST(Crc32Test, ExtendMatchesConcatenation) {
  std::string a = "hello ";
  std::string b = "world";
  uint32_t whole = Crc32c(Slice(a + b));
  uint32_t streamed = Crc32cExtend(Crc32c(Slice(a)), Slice(b));
  EXPECT_EQ(whole, streamed);
}

TEST(Crc32Test, DifferentInputsDiffer) {
  EXPECT_NE(Crc32c(Slice("abc")), Crc32c(Slice("abd")));
  EXPECT_NE(Crc32c(Slice("abc")), Crc32c(Slice("ab")));
}

TEST(Crc32Test, OddLengthsAndSplitsAgree) {
  // The check-value vector, plus a length sweep that forces every 8-byte-chunk /
  // byte-tail combination through the hardware path (when present) and pins it
  // against streamed recombination at every split point.
  EXPECT_EQ(Crc32c(Slice("123456789")), 0xe3069283u);
  std::string buf(41, '\0');
  for (size_t i = 0; i < buf.size(); i++) {
    buf[i] = static_cast<char>(i * 7 + 3);
  }
  for (size_t len = 0; len <= buf.size(); len++) {
    uint32_t whole = Crc32c(Slice(buf.data(), len));
    for (size_t split = 0; split <= len; split++) {
      uint32_t streamed = Crc32cExtend(Crc32c(Slice(buf.data(), split)),
                                       Slice(buf.data() + split, len - split));
      ASSERT_EQ(whole, streamed) << "len=" << len << " split=" << split;
    }
  }
}

TEST(Crc32Test, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, Crc32c(Slice("x"))}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);  // Masking must change the value.
  }
}

// ---------------------------------------------------------------- Random

TEST(RandomTest, DeterministicGivenSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(r.Uniform(10), 10u);
    uint64_t x = r.Range(5, 9);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 9u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(3);
  for (int i = 0; i < 1000; i++) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextStringIsLowercaseOfRequestedLength) {
  Random r(9);
  std::string s = r.NextString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RandomTest, UniformCoversRangeEventually) {
  Random r(11);
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 1000; i++) {
    seen[r.Uniform(8)] = true;
  }
  for (bool b : seen) {
    EXPECT_TRUE(b);
  }
}

// ---------------------------------------------------------------- Stats

TEST(StatsTest, AddAndGet) {
  stats::ResetAll();
  EXPECT_EQ(stats::Get(stats::Counter::kIndexTraversals), 0u);
  stats::Add(stats::Counter::kIndexTraversals);
  stats::Add(stats::Counter::kIndexTraversals, 4);
  EXPECT_EQ(stats::Get(stats::Counter::kIndexTraversals), 5u);
  stats::ResetAll();
  EXPECT_EQ(stats::Get(stats::Counter::kIndexTraversals), 0u);
}

TEST(StatsTest, SnapshotDelta) {
  stats::ResetAll();
  stats::Add(stats::Counter::kPageReads, 3);
  stats::Snapshot before = stats::Snapshot::Take();
  stats::Add(stats::Counter::kPageReads, 7);
  stats::Add(stats::Counter::kPageWrites, 2);
  stats::Snapshot delta = stats::Snapshot::Take().Delta(before);
  EXPECT_EQ(delta[stats::Counter::kPageReads], 7u);
  EXPECT_EQ(delta[stats::Counter::kPageWrites], 2u);
  EXPECT_EQ(delta[stats::Counter::kIndexTraversals], 0u);
}

TEST(StatsTest, CounterNamesDistinctAndNonEmpty) {
  for (int i = 0; i < stats::kNumCounters; i++) {
    auto name_i = stats::CounterName(static_cast<stats::Counter>(i));
    EXPECT_FALSE(name_i.empty());
    for (int j = i + 1; j < stats::kNumCounters; j++) {
      EXPECT_NE(name_i, stats::CounterName(static_cast<stats::Counter>(j)));
    }
  }
}

TEST(StatsTest, ConcurrentAddsDoNotLoseUpdates) {
  stats::ResetAll();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; i++) {
        stats::Add(stats::Counter::kLockAcquisitions);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(stats::Get(stats::Counter::kLockAcquisitions),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(StatsTest, ToStringMentionsNonZeroCounters) {
  stats::ResetAll();
  stats::Add(stats::Counter::kJournalRecords, 5);
  std::string s = stats::Snapshot::Take().ToString();
  EXPECT_NE(s.find(std::string(stats::CounterName(stats::Counter::kJournalRecords))),
            std::string::npos);
}

// ---------------------------------------------------------------- sharded_lock

TEST(ShardedMutexTest, ShardOfSpreadsSequentialKeys) {
  EXPECT_EQ(ShardedMutex<8>::ShardOf(0), 0u);
  EXPECT_EQ(ShardedMutex<8>::ShardOf(7), 7u);
  EXPECT_EQ(ShardedMutex<8>::ShardOf(8), 0u);
}

TEST(ShardedMutexTest, SingleShardCountsAcquisitions) {
  ShardedMutex<4> mu;
  {
    auto lock = mu.LockExclusive(1);
    EXPECT_TRUE(lock.owns_lock());
  }
  {
    auto lock = mu.LockShared(1);
    EXPECT_TRUE(lock.owns_lock());
  }
  EXPECT_EQ(mu.acquisitions(1), 2u);
  EXPECT_EQ(mu.acquisitions(0), 0u);
  EXPECT_EQ(mu.total_acquisitions(), 2u);
}

TEST(ShardedMutexTest, MultiLockDeduplicatesAndOrdersShards) {
  ShardedMutex<4> mu;
  // Keys 5 and 1 share shard 1; 2 adds shard 2; 7 adds shard 3. Order must ascend.
  auto multi = mu.LockMultiExclusive({7, 5, 2, 1});
  ASSERT_TRUE(multi.owns_locks());
  EXPECT_EQ(multi.shards(), (std::vector<size_t>{1, 2, 3}));
  // The held shards are really exclusive: a try-lock from this state must fail, which
  // shows as a contention count once a competing exclusive acquisition would block.
  EXPECT_EQ(mu.acquisitions(1), 1u);
  EXPECT_EQ(mu.acquisitions(2), 1u);
  EXPECT_EQ(mu.acquisitions(3), 1u);
  EXPECT_EQ(mu.acquisitions(0), 0u);
}

TEST(ShardedMutexTest, MultiLockReleasesOnDestruction) {
  ShardedMutex<4> mu;
  {
    auto multi = mu.LockMultiExclusive({0, 1, 2, 3});
    ASSERT_TRUE(multi.owns_locks());
  }
  // All shards reacquirable exclusively after release.
  auto again = mu.LockMultiExclusive({0, 1, 2, 3});
  EXPECT_TRUE(again.owns_locks());
}

TEST(ShardedMutexTest, LockAllSharedCoexistsWithOtherReaders) {
  ShardedMutex<4> mu;
  auto all = mu.LockAllShared();
  ASSERT_TRUE(all.owns_locks());
  EXPECT_EQ(all.shards().size(), 4u);
  auto reader = mu.LockShared(2);  // Shared holds nest.
  EXPECT_TRUE(reader.owns_lock());
}

TEST(ShardedMutexTest, MultiLockMoveTransfersOwnership) {
  ShardedMutex<4> mu;
  auto a = mu.LockMultiExclusive({0, 3});
  auto b = std::move(a);
  EXPECT_FALSE(a.owns_locks());
  EXPECT_TRUE(b.owns_locks());
  EXPECT_EQ(b.shards(), (std::vector<size_t>{0, 3}));
}

TEST(StripedMapTest, PointOperations) {
  StripedMap<std::string, int> map;
  EXPECT_TRUE(map.Put("a", 1));
  EXPECT_FALSE(map.Put("a", 2));  // Overwrite, not insert.
  int v = 0;
  EXPECT_TRUE(map.Get("a", &v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(map.Contains("a"));
  map.Mutate("a", [](int& x) { x++; });
  map.Mutate("b", [](int& x) { x = 7; });  // Default-constructs absent keys.
  EXPECT_TRUE(map.Get("b", &v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(map.MutateIfPresent("missing", [](int&) {}));
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.Erase("a"));
  EXPECT_FALSE(map.Erase("a"));
  EXPECT_EQ(map.size(), 1u);
}

TEST(StripedMapTest, ForEachVisitsEveryEntry) {
  StripedMap<std::string, int> map;
  for (int i = 0; i < 50; i++) {
    map.Put("k" + std::to_string(i), i);
  }
  int sum = 0, visited = 0;
  map.ForEach([&](const std::string&, const int& v) {
    sum += v;
    visited++;
    return true;
  });
  EXPECT_EQ(visited, 50);
  EXPECT_EQ(sum, 49 * 50 / 2);
}

TEST(StripedMapTest, PutWithEvictBoundsEachStripe) {
  StripedMap<std::string, int> map;  // 16 stripes.
  constexpr size_t kStripeCap = 4;
  for (int i = 0; i < 1000; i++) {
    map.PutWithEvict("k" + std::to_string(i), i, kStripeCap);
  }
  EXPECT_LE(map.size(), kStripeCap * decltype(map)::kNumStripes);
  EXPECT_GT(map.size(), 0u);
  // Overwriting a resident key must not evict anything.
  size_t before = map.size();
  int resident = -1;
  bool found = false;
  map.ForEach([&](const std::string& k, const int& v) {
    resident = v;
    found = map.Contains(k);
    return false;
  });
  ASSERT_TRUE(found);
  map.PutWithEvict("k" + std::to_string(resident), resident, kStripeCap);
  EXPECT_EQ(map.size(), before);
}

TEST(StripedMapTest, ConcurrentMixedTrafficStaysCoherent) {
  StripedMap<std::string, uint64_t> map;
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&map, t] {
      for (int i = 0; i < kOps; i++) {
        std::string key = "key" + std::to_string((t + i) % 32);
        map.Mutate(key, [](uint64_t& v) { v++; });
        uint64_t out;
        (void)map.Get(key, &out);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Total increments across the shared keys must equal the op count exactly.
  uint64_t total = 0;
  map.ForEach([&](const std::string& k, const uint64_t& v) {
    if (k.rfind("key", 0) == 0) {
      total += v;
    }
    return true;
  });
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace hfad
