// Whole-system integration tests: every layer exercised together — POSIX veneer, native
// tags, boolean queries, content search, search cursors, durability — on one volume,
// including a full crash in the middle of cross-layer activity.
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/filesystem.h"
#include "src/posix/posix_fs.h"
#include "src/query/query.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace {

using core::FileSystem;
using core::FileSystemOptions;
using core::ObjectId;
using core::TagValue;

constexpr uint64_t kDev = 128 * 1024 * 1024;

class SystemTest : public ::testing::Test {
 protected:
  SystemTest() : dev_(std::make_shared<MemoryBlockDevice>(kDev)) {
    FileSystemOptions opts;
    opts.lazy_indexing_threads = 0;
    auto fs = FileSystem::Create(dev_, opts);
    EXPECT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
    auto pfs = posix::PosixFs::Mount(fs_.get());
    EXPECT_TRUE(pfs.ok());
    pfs_ = std::move(pfs).value();
  }

  void WriteFile(const std::string& path, const std::string& content) {
    auto fd = pfs_->Open(path, posix::kWrite | posix::kCreate | posix::kTruncate);
    ASSERT_TRUE(fd.ok()) << path;
    ASSERT_TRUE(pfs_->Pwrite(*fd, 0, content).ok());
    ASSERT_TRUE(pfs_->Close(*fd).ok());
  }

  std::shared_ptr<MemoryBlockDevice> dev_;
  std::unique_ptr<FileSystem> fs_;
  std::unique_ptr<posix::PosixFs> pfs_;
};

// A document management workflow that crosses every API boundary.
TEST_F(SystemTest, DocumentWorkflowAcrossAllLayers) {
  // Legacy ingestion through POSIX.
  ASSERT_TRUE(pfs_->Mkdir("/projects").ok());
  ASSERT_TRUE(pfs_->Mkdir("/projects/hfad").ok());
  WriteFile("/projects/hfad/paper.tex", "we present a tagged search based namespace");
  WriteFile("/projects/hfad/eval.dat", "traversals four minimum measured three");
  WriteFile("/projects/hfad/notes.txt", "todo rewrite related work section");

  // Enrichment through the native API.
  for (const char* name : {"paper.tex", "eval.dat", "notes.txt"}) {
    auto oid = pfs_->Resolve(std::string("/projects/hfad/") + name);
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE(fs_->AddTag(*oid, {"UDEF", "project:hfad"}).ok());
    ASSERT_TRUE(fs_->IndexContent(*oid).ok());
  }
  auto paper = pfs_->Resolve("/projects/hfad/paper.tex");
  ASSERT_TRUE(paper.ok());
  ASSERT_TRUE(fs_->AddTag(*paper, {"UDEF", "status:submitted"}).ok());

  // Boolean query mixing tag and content predicates.
  query::QueryEngine engine(fs_->indexes());
  auto r = engine.Run("UDEF:project:hfad AND FULLTEXT:namespace");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<ObjectId>{*paper}));

  // Cursor refinement across tag kinds.
  auto cursor = fs_->OpenCursor();
  ASSERT_TRUE(cursor.Refine({"UDEF", "project:hfad"}).ok());
  EXPECT_EQ(cursor.Results()->size(), 3u);
  ASSERT_TRUE(cursor.Refine({"FULLTEXT", "measured"}).ok());
  auto narrowed = cursor.Results();
  ASSERT_TRUE(narrowed.ok());
  ASSERT_EQ(narrowed->size(), 1u);

  // Byte-level edit through POSIX handle, visible to a re-index.
  auto fd = pfs_->Open("/projects/hfad/paper.tex", posix::kRead | posix::kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pfs_->InsertAt(*fd, 0, "ABSTRACT respectfully provocative. ").ok());
  ASSERT_TRUE(pfs_->Close(*fd).ok());
  ASSERT_TRUE(fs_->IndexContent(*paper).ok());
  auto provocative = fs_->Lookup({{"FULLTEXT", "provocative"}});
  ASSERT_TRUE(provocative.ok());
  EXPECT_EQ(*provocative, (std::vector<ObjectId>{*paper}));

  // POSIX unlink of a multi-named object keeps it reachable by its other names.
  ASSERT_TRUE(pfs_->Unlink("/projects/hfad/notes.txt").ok());
  auto still_tagged = fs_->Lookup({{"UDEF", "project:hfad"}});
  ASSERT_TRUE(still_tagged.ok());
  EXPECT_EQ(still_tagged->size(), 3u);  // The object lives: tags still name it.
  auto by_path = fs_->Lookup({{"POSIX", "/projects/hfad/notes.txt"}});
  ASSERT_TRUE(by_path.ok());
  EXPECT_TRUE(by_path->empty());  // But the path name is gone.
}

// Crash in the middle of cross-layer mutations; reopen must see a consistent namespace.
TEST(SystemCrashTest, CrossLayerCrashConsistency) {
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  FileSystemOptions opts;
  opts.lazy_indexing_threads = 0;
  opts.osd.group_commit = false;
  std::string surviving_path;
  ObjectId tagged_oid = 0;
  {
    auto fs = std::move(FileSystem::Create(faulty, opts)).value();
    auto pfs = std::move(posix::PosixFs::Mount(fs.get())).value();
    ASSERT_TRUE(pfs->Mkdir("/data").ok());
    auto fd = pfs->Open("/data/record.bin", posix::kWrite | posix::kCreate);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(pfs->Pwrite(*fd, 0, "crash survivor payload").ok());
    ASSERT_TRUE(pfs->Close(*fd).ok());
    surviving_path = "/data/record.bin";
    auto oid = pfs->Resolve(surviving_path);
    ASSERT_TRUE(oid.ok());
    tagged_oid = *oid;
    ASSERT_TRUE(fs->AddTag(tagged_oid, {"UDEF", "important"}).ok());
    ASSERT_TRUE(fs->IndexContent(tagged_oid).ok());
    ASSERT_TRUE(pfs->Link(surviving_path, "/data/alias.bin").ok());
    faulty->SetWriteBudget(0);  // Crash.
  }
  auto fs = std::move(FileSystem::Open(base, opts)).value();
  auto pfs = std::move(posix::PosixFs::Mount(fs.get())).value();

  // Path, alias, tag, and content must all still name the same object.
  auto by_path = pfs->Resolve(surviving_path);
  ASSERT_TRUE(by_path.ok());
  EXPECT_EQ(*by_path, tagged_oid);
  auto by_alias = pfs->Resolve("/data/alias.bin");
  ASSERT_TRUE(by_alias.ok());
  EXPECT_EQ(*by_alias, tagged_oid);
  auto by_tag = fs->Lookup({{"UDEF", "important"}});
  ASSERT_TRUE(by_tag.ok());
  EXPECT_EQ(*by_tag, (std::vector<ObjectId>{tagged_oid}));
  auto by_text = fs->Lookup({{"FULLTEXT", "survivor"}});
  ASSERT_TRUE(by_text.ok());
  EXPECT_EQ(*by_text, (std::vector<ObjectId>{tagged_oid}));
  auto st = pfs->Stat(surviving_path);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 2u);
  EXPECT_EQ(st->meta.size, 22u);
}

// Randomized cross-layer workload with a model check of name consistency, then a clean
// reopen. Property: the set of (name -> object) mappings survives intact.
struct SystemWorkload {
  uint64_t seed;
  int ops;
  bool journaling;
};

class SystemPropertyTest : public ::testing::TestWithParam<SystemWorkload> {};

TEST_P(SystemPropertyTest, NamespaceModelSurvivesReopen) {
  const SystemWorkload p = GetParam();
  auto dev = std::make_shared<MemoryBlockDevice>(kDev);
  FileSystemOptions opts;
  opts.lazy_indexing_threads = 0;
  opts.osd.journaling = p.journaling;
  Random rng(p.seed);

  // Model: tag value -> set of oids; oid -> content.
  std::map<std::string, std::set<ObjectId>> tag_model;
  std::map<ObjectId, std::string> content_model;
  {
    auto fs = std::move(FileSystem::Create(dev, opts)).value();
    std::vector<ObjectId> live;
    for (int op = 0; op < p.ops; op++) {
      int action = static_cast<int>(rng.Uniform(10));
      if (action < 3 || live.empty()) {
        std::string tag = "t" + std::to_string(rng.Uniform(20));
        auto oid = fs->Create({{"UDEF", tag}});
        ASSERT_TRUE(oid.ok());
        std::string content = rng.NextString(rng.Range(1, 500));
        ASSERT_TRUE(fs->Write(*oid, 0, content).ok());
        live.push_back(*oid);
        tag_model[tag].insert(*oid);
        content_model[*oid] = content;
      } else if (action < 6) {
        ObjectId oid = live[rng.Uniform(live.size())];
        std::string tag = "t" + std::to_string(rng.Uniform(20));
        Status s = fs->AddTag(oid, {"UDEF", tag});
        ASSERT_TRUE(s.ok());
        tag_model[tag].insert(oid);
      } else if (action < 8) {
        ObjectId oid = live[rng.Uniform(live.size())];
        std::string tag = "t" + std::to_string(rng.Uniform(20));
        Status s = fs->RemoveTag(oid, {"UDEF", tag});
        if (tag_model[tag].erase(oid)) {
          ASSERT_TRUE(s.ok());
        } else {
          ASSERT_TRUE(s.IsNotFound());
        }
      } else if (live.size() > 1) {
        size_t idx = rng.Uniform(live.size());
        ObjectId oid = live[idx];
        ASSERT_TRUE(fs->Remove(oid).ok());
        live[idx] = live.back();
        live.pop_back();
        for (auto& [tag, oids] : tag_model) {
          oids.erase(oid);
        }
        content_model.erase(oid);
      }
    }
    ASSERT_TRUE(fs->Checkpoint().ok());
  }
  // Reopen and verify the whole model.
  auto fs = std::move(FileSystem::Open(dev, opts)).value();
  for (const auto& [tag, expected] : tag_model) {
    auto r = fs->Lookup({{"UDEF", tag}});
    ASSERT_TRUE(r.ok()) << tag;
    std::set<ObjectId> got(r->begin(), r->end());
    ASSERT_EQ(got, expected) << "tag " << tag;
  }
  for (const auto& [oid, content] : content_model) {
    std::string out;
    ASSERT_TRUE(fs->Read(oid, 0, content.size() + 10, &out).ok()) << oid;
    ASSERT_EQ(out, content) << "oid " << oid;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SystemPropertyTest,
                         ::testing::Values(SystemWorkload{1, 400, true},
                                           SystemWorkload{2, 400, false},
                                           SystemWorkload{3, 800, true}));

}  // namespace
}  // namespace hfad
