// Tests for the native hFAD API: naming, tagging, access, search cursors, and
// namespace crash recovery.
#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/core/filesystem.h"
#include "src/core/fsck.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace core {
namespace {

constexpr uint64_t kDev = 64 * 1024 * 1024;

class CoreTest : public ::testing::Test {
 protected:
  CoreTest() : dev_(std::make_shared<MemoryBlockDevice>(kDev)) {
    FileSystemOptions opts;
    opts.lazy_indexing_threads = 0;  // Synchronous indexing: deterministic tests.
    auto fs = FileSystem::Create(dev_, opts);
    EXPECT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  std::shared_ptr<MemoryBlockDevice> dev_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(CoreTest, CreateWithInitialNames) {
  auto oid = fs_->Create({{"USER", "margo"}, {"UDEF", "thesis"}});
  ASSERT_TRUE(oid.ok()) << oid.status().ToString();
  auto by_user = fs_->Lookup({{"USER", "margo"}});
  ASSERT_TRUE(by_user.ok());
  EXPECT_EQ(*by_user, (std::vector<ObjectId>{*oid}));
  auto both = fs_->Lookup({{"USER", "margo"}, {"UDEF", "thesis"}});
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(*both, (std::vector<ObjectId>{*oid}));
}

TEST_F(CoreTest, NamesNeedNotBeUnique) {
  // §3.1.1: "no query need uniquely define a data item."
  auto a = fs_->Create({{"UDEF", "draft"}});
  auto b = fs_->Create({{"UDEF", "draft"}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto r = fs_->Lookup({{"UDEF", "draft"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(CoreTest, ManualTagsOnFulltextAndIdRejected) {
  auto oid = fs_->Create();
  ASSERT_TRUE(oid.ok());
  EXPECT_FALSE(fs_->AddTag(*oid, {"FULLTEXT", "sneaky"}).ok());
  EXPECT_FALSE(fs_->AddTag(*oid, {"ID", "42"}).ok());
  EXPECT_FALSE(fs_->Create({{"FULLTEXT", "x"}}).ok());
  EXPECT_FALSE(fs_->AddTag(*oid, {"UNKNOWNTAG", "x"}).ok());
}

TEST_F(CoreTest, TagsEnumeratesAllNames) {
  auto oid = fs_->Create({{"USER", "nick"}});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(fs_->AddTag(*oid, {"UDEF", "inbox"}).ok());
  ASSERT_TRUE(fs_->AddTag(*oid, {"APP", "mailer"}).ok());
  auto tags = fs_->Tags(*oid);
  ASSERT_TRUE(tags.ok());
  ASSERT_EQ(tags->size(), 3u);
  EXPECT_EQ((*tags)[0].tag, "APP");
  EXPECT_EQ((*tags)[0].value, "mailer");
  EXPECT_EQ((*tags)[1].tag, "UDEF");
  EXPECT_EQ((*tags)[2].tag, "USER");
}

TEST_F(CoreTest, RemoveTagUnnames) {
  auto oid = fs_->Create({{"UDEF", "temp"}});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(fs_->RemoveTag(*oid, {"UDEF", "temp"}).ok());
  auto r = fs_->Lookup({{"UDEF", "temp"}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_TRUE(fs_->RemoveTag(*oid, {"UDEF", "temp"}).IsNotFound());
}

TEST_F(CoreTest, RemoveStripsEveryName) {
  auto oid = fs_->Create({{"USER", "margo"}, {"UDEF", "a"}, {"UDEF", "b"}});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(fs_->Write(*oid, 0, "searchable content here").ok());
  ASSERT_TRUE(fs_->IndexContent(*oid).ok());
  ASSERT_TRUE(fs_->Remove(*oid).ok());

  for (const auto& term : std::vector<TagValue>{{"USER", "margo"}, {"UDEF", "a"},
                                                {"UDEF", "b"}}) {
    auto r = fs_->Lookup({term});
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->empty()) << term.tag << ":" << term.value;
  }
  auto text = fs_->Lookup({{"FULLTEXT", "searchable"}});
  ASSERT_TRUE(text.ok());
  EXPECT_TRUE(text->empty());
  EXPECT_TRUE(fs_->Stat(*oid).status().IsNotFound());
}

TEST_F(CoreTest, AccessInterfaces) {
  auto oid = fs_->Create();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(fs_->Write(*oid, 0, "hello world").ok());
  ASSERT_TRUE(fs_->Insert(*oid, 5, ",").ok());
  ASSERT_TRUE(fs_->Truncate(*oid, 6, 1).ok());  // Remove the space.
  std::string out;
  ASSERT_TRUE(fs_->Read(*oid, 0, 100, &out).ok());
  EXPECT_EQ(out, "hello,world");
  EXPECT_EQ(*fs_->Size(*oid), 11u);
}

TEST_F(CoreTest, FulltextContentIndexing) {
  auto report = fs_->Create({{"APP", "editor"}});
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(fs_->Write(*report, 0, "quarterly sales grew twelve percent").ok());
  ASSERT_TRUE(fs_->IndexContent(*report).ok());

  auto hits = fs_->SearchText({"quarterly", "sales"});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].docid, *report);

  // Re-index after an edit: old terms vanish, new ones appear.
  ASSERT_TRUE(fs_->Truncate(*report, 0, *fs_->Size(*report)).ok());
  ASSERT_TRUE(fs_->Write(*report, 0, "annual loss").ok());
  ASSERT_TRUE(fs_->IndexContent(*report).ok());
  auto stale = fs_->Lookup({{"FULLTEXT", "quarterly"}});
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale->empty());
  auto fresh = fs_->Lookup({{"FULLTEXT", "annual"}});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, (std::vector<ObjectId>{*report}));
}

TEST_F(CoreTest, QueryIntegration) {
  auto a = fs_->Create({{"USER", "margo"}, {"UDEF", "beach"}});
  auto b = fs_->Create({{"USER", "margo"}, {"UDEF", "work"}});
  auto c = fs_->Create({{"USER", "nick"}, {"UDEF", "beach"}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  auto r = fs_->Query("USER:margo AND NOT UDEF:work");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<ObjectId>{*a}));
  auto r2 = fs_->Query("UDEF:beach OR UDEF:work");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 3u);
}

TEST_F(CoreTest, IdFastpathThroughLookup) {
  auto oid = fs_->Create();
  ASSERT_TRUE(oid.ok());
  auto r = fs_->Lookup({{"ID", std::to_string(*oid)}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<ObjectId>{*oid}));
}

// ---------------------------------------------------------------- search cursor

TEST_F(CoreTest, CursorRefinementNarrows) {
  auto a = fs_->Create({{"USER", "margo"}, {"UDEF", "photo"}, {"UDEF", "hawaii"}});
  auto b = fs_->Create({{"USER", "margo"}, {"UDEF", "photo"}, {"UDEF", "boston"}});
  auto c = fs_->Create({{"USER", "margo"}, {"UDEF", "doc"}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());

  SearchCursor cursor = fs_->OpenCursor();
  ASSERT_TRUE(cursor.Refine({"USER", "margo"}).ok());
  auto r1 = cursor.Results();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->size(), 3u);

  ASSERT_TRUE(cursor.Refine({"UDEF", "photo"}).ok());
  auto r2 = cursor.Results();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, (std::vector<ObjectId>{*a, *b}));

  ASSERT_TRUE(cursor.Refine({"UDEF", "hawaii"}).ok());
  auto r3 = cursor.Results();
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, (std::vector<ObjectId>{*a}));
  EXPECT_EQ(cursor.depth(), 3u);
}

TEST_F(CoreTest, CursorUpIsCdDotDot) {
  auto a = fs_->Create({{"UDEF", "x"}, {"UDEF", "y"}});
  auto b = fs_->Create({{"UDEF", "x"}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  SearchCursor cursor = fs_->OpenCursor();
  ASSERT_TRUE(cursor.Refine({"UDEF", "x"}).ok());
  ASSERT_TRUE(cursor.Refine({"UDEF", "y"}).ok());
  auto narrow = cursor.Results();
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(*narrow, (std::vector<ObjectId>{*a}));

  ASSERT_TRUE(cursor.Up().ok());
  auto wide = cursor.Results();
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(*wide, (std::vector<ObjectId>{*a, *b}));
  EXPECT_EQ(cursor.depth(), 1u);

  ASSERT_TRUE(cursor.Up().ok());
  auto root = cursor.Results();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->size(), 2u);  // Volume root: everything.
  ASSERT_TRUE(cursor.Up().ok());  // Up at root is a no-op.
}

TEST_F(CoreTest, CursorRootPagingSeeksInsteadOfRescanning) {
  std::vector<ObjectId> all;
  for (int i = 0; i < 10; i++) {
    auto oid = fs_->Create({{"UDEF", "bulk"}});
    ASSERT_TRUE(oid.ok());
    all.push_back(*oid);
  }
  SearchCursor cursor = fs_->OpenCursor();  // Root: the whole volume.
  query::FindOptions options;
  options.limit = 3;
  std::vector<ObjectId> paged;
  stats::ResetAll();
  for (;;) {
    auto page = cursor.ResultsPage(options);
    ASSERT_TRUE(page.ok());
    paged.insert(paged.end(), page->ids.begin(), page->ids.end());
    if (!page->has_more) {
      break;
    }
    options.after = page->next_after;
  }
  EXPECT_EQ(paged, all);
  // Seekable ScanObjects: the 4 pages together touch each object-table entry once (one
  // extra probe per page boundary), instead of page k rescanning the first 3k entries.
  EXPECT_LE(stats::Get(stats::Counter::kIndexTraversals), all.size() + 8);
}

TEST_F(CoreTest, CursorTracksLiveChanges) {
  auto a = fs_->Create({{"UDEF", "inbox"}});
  ASSERT_TRUE(a.ok());
  SearchCursor cursor = fs_->OpenCursor();
  ASSERT_TRUE(cursor.Refine({"UDEF", "inbox"}).ok());
  auto before = cursor.Results();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 1u);
  // Refining again after new objects appear picks them up (each Refine re-queries the
  // newly added term; cached prefix results stay snapshots — documented semantics).
  auto b = fs_->Create({{"UDEF", "inbox"}, {"UDEF", "unread"}});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(cursor.Up().ok());
  ASSERT_TRUE(cursor.Refine({"UDEF", "inbox"}).ok());
  auto after = cursor.Results();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 2u);
}

// ---------------------------------------------------------------- lazy indexing

TEST(CoreLazyTest, BackgroundIndexingBecomesVisibleAfterDrain) {
  FileSystemOptions opts;
  opts.lazy_indexing_threads = 3;
  auto fs = FileSystem::Create(std::make_shared<MemoryBlockDevice>(kDev), opts);
  ASSERT_TRUE(fs.ok());
  std::vector<ObjectId> oids;
  for (int i = 0; i < 100; i++) {
    auto oid = (*fs)->Create({{"APP", "ingest"}});
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE((*fs)->Write(*oid, 0, "lazy document payload " + std::to_string(i)).ok());
    ASSERT_TRUE((*fs)->IndexContent(*oid).ok());
    oids.push_back(*oid);
  }
  ASSERT_TRUE((*fs)->WaitForIndexing().ok());
  auto hits = (*fs)->SearchText({"lazy", "payload"});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 100u);
}

// ---------------------------------------------------------------- persistence & crash

TEST(CorePersistenceTest, NamespaceSurvivesCleanReopen) {
  auto dev = std::make_shared<MemoryBlockDevice>(kDev);
  ObjectId oid;
  {
    FileSystemOptions opts;
    opts.lazy_indexing_threads = 0;
    auto fs = FileSystem::Create(dev, opts);
    ASSERT_TRUE(fs.ok());
    auto r = (*fs)->Create({{"USER", "margo"}, {"UDEF", "keeper"}});
    ASSERT_TRUE(r.ok());
    oid = *r;
    ASSERT_TRUE((*fs)->Write(oid, 0, "persistent text content").ok());
    ASSERT_TRUE((*fs)->IndexContent(oid).ok());
    ASSERT_TRUE((*fs)->Checkpoint().ok());
  }
  auto fs = FileSystem::Open(dev, FileSystemOptions{});
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  auto by_tag = (*fs)->Lookup({{"UDEF", "keeper"}});
  ASSERT_TRUE(by_tag.ok());
  EXPECT_EQ(*by_tag, (std::vector<ObjectId>{oid}));
  auto by_text = (*fs)->Lookup({{"FULLTEXT", "persistent"}});
  ASSERT_TRUE(by_text.ok());
  EXPECT_EQ(*by_text, (std::vector<ObjectId>{oid}));
  auto tags = (*fs)->Tags(oid);
  ASSERT_TRUE(tags.ok());
  EXPECT_EQ(tags->size(), 2u);
}

TEST(CorePersistenceTest, NamespaceRecoversAfterCrash) {
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  ObjectId kept, removed;
  {
    FileSystemOptions opts;
    opts.lazy_indexing_threads = 0;
    opts.osd.group_commit = false;  // Every op durable on return.
    auto fs = FileSystem::Create(faulty, opts);
    ASSERT_TRUE(fs.ok());
    auto r1 = (*fs)->Create({{"USER", "margo"}, {"UDEF", "crash-keeper"}});
    auto r2 = (*fs)->Create({{"UDEF", "doomed"}});
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    kept = *r1;
    removed = *r2;
    ASSERT_TRUE((*fs)->Write(kept, 0, "indexed before the crash").ok());
    ASSERT_TRUE((*fs)->IndexContent(kept).ok());
    ASSERT_TRUE((*fs)->RemoveTag(kept, {"USER", "margo"}).ok());
    ASSERT_TRUE((*fs)->Remove(removed).ok());
    faulty->SetWriteBudget(0);  // Crash: destructor checkpoint cannot reach the device.
  }
  FileSystemOptions opts;
  opts.lazy_indexing_threads = 0;
  opts.osd.group_commit = false;
  auto fs = FileSystem::Open(base, opts);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();

  auto keeper = (*fs)->Lookup({{"UDEF", "crash-keeper"}});
  ASSERT_TRUE(keeper.ok());
  EXPECT_EQ(*keeper, (std::vector<ObjectId>{kept}));
  auto margo = (*fs)->Lookup({{"USER", "margo"}});
  ASSERT_TRUE(margo.ok());
  EXPECT_TRUE(margo->empty());  // Tag removal replayed.
  auto text = (*fs)->Lookup({{"FULLTEXT", "indexed"}});
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, (std::vector<ObjectId>{kept}));
  auto doomed = (*fs)->Lookup({{"UDEF", "doomed"}});
  ASSERT_TRUE(doomed.ok());
  EXPECT_TRUE(doomed->empty());
  EXPECT_FALSE((*fs)->volume()->Exists(removed));
}

// ---------------------------------------------------------------- concurrency

// The lock-striping stress case: N threads tag/untag an OVERLAPPING object set, so tag
// shards, index-store locks, and reverse-map stripes all see concurrent mixed traffic
// on the same objects. The schedule is adversarial but the invariant is exact: after
// the storm, the forward indexes and the reverse map must agree perfectly (Fsck), and
// every surviving name must be reachable through Lookup.
TEST(CoreConcurrencyTest, OverlappingTagStormStaysFsckClean) {
  FileSystemOptions opts;
  opts.lazy_indexing_threads = 0;
  auto fs = FileSystem::Create(std::make_shared<MemoryBlockDevice>(kDev), opts);
  ASSERT_TRUE(fs.ok());

  constexpr int kObjects = 48;
  constexpr int kThreads = 8;
  constexpr int kIters = 120;
  std::vector<ObjectId> oids;
  oids.reserve(kObjects);
  for (int i = 0; i < kObjects; i++) {
    auto oid = (*fs)->Create({{"USER", "owner" + std::to_string(i % 4)}});
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&fs, &oids, t] {
      for (int i = 0; i < kIters; i++) {
        // Deterministic per-thread walk that collides with other threads' walks.
        ObjectId oid = oids[(t * 7 + i * 13) % kObjects];
        TagValue name{"UDEF", "mark" + std::to_string((t + i) % 6)};
        Status add = (*fs)->AddTag(oid, name);
        ASSERT_TRUE(add.ok()) << add.ToString();
        if (i % 3 != 0) {
          // Racing removers may hit NotFound when another thread already won; any
          // other failure is a real bug.
          Status rm = (*fs)->RemoveTag(oid, name);
          ASSERT_TRUE(rm.ok() || rm.IsNotFound()) << rm.ToString();
        }
        if (i % 16 == 0) {
          auto hits = (*fs)->Lookup({{"UDEF", "mark" + std::to_string(i % 6)}});
          ASSERT_TRUE(hits.ok());
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  auto report = CheckFileSystem((*fs).get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean()) << report->ToString();

  // Every name the storm left behind is reachable through the naming interface.
  for (ObjectId oid : oids) {
    auto tags = (*fs)->Tags(oid);
    ASSERT_TRUE(tags.ok());
    for (const TagValue& name : *tags) {
      auto hits = (*fs)->Lookup({name});
      ASSERT_TRUE(hits.ok());
      EXPECT_TRUE(std::find(hits->begin(), hits->end(), oid) != hits->end())
          << name.tag << ":" << name.value << " lookup misses object " << oid;
    }
  }
}

TEST(CoreConcurrencyTest, ParallelTaggingOnIndependentObjects) {
  FileSystemOptions opts;
  opts.lazy_indexing_threads = 0;
  auto fs = FileSystem::Create(std::make_shared<MemoryBlockDevice>(kDev), opts);
  ASSERT_TRUE(fs.ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&fs, t] {
      for (int i = 0; i < kPerThread; i++) {
        auto oid = (*fs)->Create({{"USER", "user" + std::to_string(t)}});
        ASSERT_TRUE(oid.ok());
        ASSERT_TRUE((*fs)->AddTag(*oid, {"UDEF", "batch" + std::to_string(i)}).ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; t++) {
    auto r = (*fs)->Lookup({{"USER", "user" + std::to_string(t)}});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), static_cast<size_t>(kPerThread));
  }
}

}  // namespace
}  // namespace core
}  // namespace hfad
