// Tests for the tokenizer, inverted index, BM25 ranking, and lazy background indexing.
#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/btree/btree.h"
#include "src/common/random.h"
#include "src/fulltext/fulltext.h"
#include "src/fulltext/tokenizer.h"
#include "src/storage/block_device.h"
#include "src/storage/buddy_allocator.h"
#include "src/storage/pager.h"

namespace hfad {
namespace fulltext {
namespace {

constexpr uint64_t kHeap = 128 * 1024 * 1024;

// ---------------------------------------------------------------- tokenizer

TEST(TokenizerTest, SplitsAndLowercases) {
  auto tokens = Tokenize("Hello, World! FOO-bar");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].term, "hello");
  EXPECT_EQ(tokens[1].term, "world");
  EXPECT_EQ(tokens[2].term, "foo");
  EXPECT_EQ(tokens[3].term, "bar");
}

TEST(TokenizerTest, PositionsAreOrdinal) {
  auto tokens = Tokenize("alpha beta gamma");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 1u);
  EXPECT_EQ(tokens[2].position, 2u);
}

TEST(TokenizerTest, StopwordsDroppedButConsumePositions) {
  auto tokens = Tokenize("war and peace");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].term, "war");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].term, "peace");
  EXPECT_EQ(tokens[1].position, 2u);  // "and" consumed position 1.
}

TEST(TokenizerTest, NumbersAreTerms) {
  auto tokens = Tokenize("error 404 not found");
  // "not" is a stopword.
  std::vector<std::string> terms;
  for (const auto& t : tokens) {
    terms.push_back(t.term);
  }
  EXPECT_EQ(terms, (std::vector<std::string>{"error", "404", "found"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... !!! ???").empty());
}

TEST(TokenizerTest, LongTermsTruncated) {
  std::string giant(200, 'x');
  auto tokens = Tokenize(giant);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].term.size(), 64u);
}

TEST(TokenizerTest, NormalizeTermMatchesTokenizer) {
  EXPECT_EQ(NormalizeTerm("Hello!"), "hello");
  EXPECT_EQ(NormalizeTerm("C++"), "c");
  EXPECT_EQ(NormalizeTerm("..."), "");
}

// ---------------------------------------------------------------- index fixture

class FullTextTest : public ::testing::Test {
 protected:
  FullTextTest()
      : dev_(kPageSize + kHeap),
        pager_(&dev_, 4096),
        alloc_(kPageSize, kHeap),
        tree_(&pager_, &alloc_, 0),
        index_(&tree_) {}

  std::vector<uint64_t> Ids(const std::vector<SearchHit>& hits) {
    std::vector<uint64_t> ids;
    for (const auto& h : hits) {
      ids.push_back(h.docid);
    }
    return ids;
  }

  MemoryBlockDevice dev_;
  Pager pager_;
  BuddyAllocator alloc_;
  btree::BTree tree_;
  FullTextIndex index_;
};

TEST_F(FullTextTest, EmptyIndexFindsNothing) {
  auto r = index_.Search({"anything"});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(*index_.doc_count(), 0u);
}

TEST_F(FullTextTest, SingleTermSearch) {
  ASSERT_TRUE(index_.IndexDocument(1, "the quick brown fox").ok());
  ASSERT_TRUE(index_.IndexDocument(2, "the lazy dog").ok());
  auto r = index_.Search({"fox"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<uint64_t>{1}));
  EXPECT_EQ(*index_.doc_count(), 2u);
}

TEST_F(FullTextTest, ConjunctionSemantics) {
  ASSERT_TRUE(index_.IndexDocument(1, "apples and oranges").ok());
  ASSERT_TRUE(index_.IndexDocument(2, "apples and bananas").ok());
  ASSERT_TRUE(index_.IndexDocument(3, "oranges and bananas").ok());
  auto r = index_.Search({"apples", "bananas"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<uint64_t>{2}));
  // A term nobody has makes the conjunction empty.
  auto r2 = index_.Search({"apples", "kiwi"});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST_F(FullTextTest, SearchIsCaseInsensitive) {
  ASSERT_TRUE(index_.IndexDocument(1, "Camera RAW Photo").ok());
  auto r = index_.Search({"CAMERA", "photo"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<uint64_t>{1}));
}

TEST_F(FullTextTest, StopwordQueryRejected) {
  ASSERT_TRUE(index_.IndexDocument(1, "something here").ok());
  EXPECT_FALSE(index_.Search({"the"}).ok());
  EXPECT_FALSE(index_.Search({""}).ok());
  EXPECT_FALSE(index_.Search({}).ok());
}

TEST_F(FullTextTest, Bm25RanksRarerAndDenserTermsHigher) {
  // doc 1 mentions "zebra" three times in a short doc; doc 2 once in a long doc.
  ASSERT_TRUE(index_.IndexDocument(1, "zebra zebra zebra stripes").ok());
  std::string long_doc = "zebra";
  for (int i = 0; i < 200; i++) {
    long_doc += " filler" + std::to_string(i);
  }
  ASSERT_TRUE(index_.IndexDocument(2, long_doc).ok());
  auto r = index_.Search({"zebra"});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].docid, 1u);
  EXPECT_GT((*r)[0].score, (*r)[1].score);
}

TEST_F(FullTextTest, ReindexReplacesOldContent) {
  ASSERT_TRUE(index_.IndexDocument(1, "original content alpha").ok());
  ASSERT_TRUE(index_.IndexDocument(1, "replacement content beta").ok());
  auto old_term = index_.Search({"alpha"});
  ASSERT_TRUE(old_term.ok());
  EXPECT_TRUE(old_term->empty());
  auto new_term = index_.Search({"beta"});
  ASSERT_TRUE(new_term.ok());
  EXPECT_EQ(Ids(*new_term), (std::vector<uint64_t>{1}));
  EXPECT_EQ(*index_.doc_count(), 1u);
}

TEST_F(FullTextTest, RemoveDocument) {
  ASSERT_TRUE(index_.IndexDocument(1, "shared term unique1").ok());
  ASSERT_TRUE(index_.IndexDocument(2, "shared term unique2").ok());
  ASSERT_TRUE(index_.RemoveDocument(1).ok());
  auto shared = index_.Search({"shared"});
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(Ids(*shared), (std::vector<uint64_t>{2}));
  auto unique = index_.Search({"unique1"});
  ASSERT_TRUE(unique.ok());
  EXPECT_TRUE(unique->empty());
  EXPECT_EQ(*index_.doc_count(), 1u);
  EXPECT_EQ(*index_.DocumentFrequency("shared"), 1u);
  EXPECT_EQ(*index_.DocumentFrequency("unique1"), 0u);
  EXPECT_TRUE(index_.RemoveDocument(1).IsNotFound());
}

TEST_F(FullTextTest, DocumentFrequencyTracksCorpus) {
  for (uint64_t d = 1; d <= 10; d++) {
    std::string text = "common";
    if (d <= 3) {
      text += " rare";
    }
    ASSERT_TRUE(index_.IndexDocument(d, text).ok());
  }
  EXPECT_EQ(*index_.DocumentFrequency("common"), 10u);
  EXPECT_EQ(*index_.DocumentFrequency("rare"), 3u);
  EXPECT_EQ(*index_.DocumentFrequency("absent"), 0u);
}

TEST_F(FullTextTest, PostingsReturnsDocids) {
  ASSERT_TRUE(index_.IndexDocument(7, "needle haystack").ok());
  ASSERT_TRUE(index_.IndexDocument(9, "needle thread").ok());
  auto r = index_.Postings("needle");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<uint64_t>{7, 9}));
}

TEST_F(FullTextTest, LimitCapsResults) {
  for (uint64_t d = 1; d <= 20; d++) {
    ASSERT_TRUE(index_.IndexDocument(d, "popular topic").ok());
  }
  auto r = index_.Search({"popular"}, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
}

TEST_F(FullTextTest, PhraseSearch) {
  ASSERT_TRUE(index_.IndexDocument(1, "new york city weather").ok());
  ASSERT_TRUE(index_.IndexDocument(2, "york has a new city hall").ok());
  auto r = index_.SearchPhrase({"new", "york"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<uint64_t>{1}));
  // Phrase with an interior stopword: positions still line up.
  ASSERT_TRUE(index_.IndexDocument(3, "jack and jill went up").ok());
  auto r2 = index_.SearchPhrase({"jack", "and", "jill"});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(Ids(*r2), (std::vector<uint64_t>{3}));
}

TEST_F(FullTextTest, PersistsAcrossReopen) {
  ASSERT_TRUE(index_.IndexDocument(1, "durable full text data").ok());
  ASSERT_TRUE(index_.IndexDocument(2, "volatile nonsense").ok());
  uint64_t root = tree_.root();
  ASSERT_TRUE(pager_.Flush().ok());
  ASSERT_TRUE(pager_.DropCacheForTesting().ok());

  btree::BTree tree2(&pager_, &alloc_, root);
  FullTextIndex reopened(&tree2);
  auto r = reopened.Search({"durable"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), (std::vector<uint64_t>{1}));
  EXPECT_EQ(*reopened.doc_count(), 2u);
}

TEST_F(FullTextTest, LargeCorpusConjunction) {
  Random rng(5);
  std::set<uint64_t> expect;
  for (uint64_t d = 1; d <= 500; d++) {
    std::string text = "filler" + std::to_string(rng.Uniform(50));
    bool has_a = rng.OneIn(3);
    bool has_b = rng.OneIn(3);
    if (has_a) {
      text += " marker alphaterm";
    }
    if (has_b) {
      text += " betaterm trailing";
    }
    if (has_a && has_b) {
      expect.insert(d);
    }
    ASSERT_TRUE(index_.IndexDocument(d, text).ok());
  }
  auto r = index_.Search({"alphaterm", "betaterm"});
  ASSERT_TRUE(r.ok());
  std::vector<uint64_t> ids = Ids(*r);
  std::set<uint64_t> got(ids.begin(), ids.end());
  EXPECT_EQ(got, expect);
}

// ---------------------------------------------------------------- lazy indexer

TEST_F(FullTextTest, LazyIndexerEventuallyIndexesEverything) {
  {
    LazyIndexer lazy(&index_, 4);
    for (uint64_t d = 1; d <= 200; d++) {
      lazy.Submit(d, "background document number" + std::to_string(d) + " lazyterm");
    }
    lazy.Drain();
    EXPECT_EQ(lazy.backlog(), 0u);
    EXPECT_TRUE(lazy.first_error().ok());
  }
  auto r = index_.Search({"lazyterm"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 200u);
  EXPECT_EQ(*index_.doc_count(), 200u);
}

TEST_F(FullTextTest, LazyIndexerDestructorDrains) {
  {
    LazyIndexer lazy(&index_, 2);
    for (uint64_t d = 1; d <= 50; d++) {
      lazy.Submit(d, "destructor drained doc");
    }
    // No explicit Drain: the destructor must finish the backlog.
  }
  EXPECT_EQ(*index_.doc_count(), 50u);
}

TEST_F(FullTextTest, SearchWhileIndexing) {
  LazyIndexer lazy(&index_, 4);
  for (uint64_t d = 1; d <= 300; d++) {
    lazy.Submit(d, "concurrent searchable corpus doc" + std::to_string(d));
  }
  // Searches racing with indexing must not crash or error; results are a snapshot.
  for (int i = 0; i < 20; i++) {
    auto r = index_.Search({"searchable"});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  lazy.Drain();
  auto r = index_.Search({"searchable"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 300u);
}

// Property sweep: every indexed doc is findable by each of its distinct terms; removed
// docs never surface. Across corpus shapes.
struct CorpusParam {
  uint64_t seed;
  int docs;
  int vocab;
  int words_per_doc;
};

class FullTextPropertyTest : public ::testing::TestWithParam<CorpusParam> {};

TEST_P(FullTextPropertyTest, EveryDocFindableByItsTerms) {
  const CorpusParam p = GetParam();
  MemoryBlockDevice dev(kPageSize + kHeap);
  Pager pager(&dev, 4096);
  BuddyAllocator alloc(kPageSize, kHeap);
  btree::BTree tree(&pager, &alloc, 0);
  FullTextIndex index(&tree);
  Random rng(p.seed);

  std::map<uint64_t, std::set<std::string>> doc_terms;
  for (int d = 1; d <= p.docs; d++) {
    std::string text;
    std::set<std::string> terms;
    for (int w = 0; w < p.words_per_doc; w++) {
      std::string word = "w" + std::to_string(rng.Uniform(p.vocab));
      terms.insert(word);
      text += word + " ";
    }
    ASSERT_TRUE(index.IndexDocument(d, text).ok());
    doc_terms[d] = std::move(terms);
  }
  // Remove a third of the docs.
  std::set<uint64_t> removed;
  for (const auto& [d, terms] : doc_terms) {
    if (d % 3 == 0) {
      ASSERT_TRUE(index.RemoveDocument(d).ok());
      removed.insert(d);
    }
  }
  for (const auto& [d, terms] : doc_terms) {
    for (const std::string& term : terms) {
      auto r = index.Search({term});
      ASSERT_TRUE(r.ok());
      bool found = false;
      for (const auto& hit : *r) {
        ASSERT_EQ(removed.count(hit.docid), 0u) << "removed doc surfaced for " << term;
        if (hit.docid == d) {
          found = true;
        }
      }
      ASSERT_EQ(found, removed.count(d) == 0) << "doc " << d << " term " << term;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpora, FullTextPropertyTest,
                         ::testing::Values(CorpusParam{1, 60, 30, 8},
                                           CorpusParam{2, 120, 10, 4},
                                           CorpusParam{3, 40, 200, 20},
                                           CorpusParam{4, 200, 50, 12}));

}  // namespace
}  // namespace fulltext
}  // namespace hfad
