// Tests for the POSIX compatibility layer over the native hFAD API.
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/posix/posix_fs.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace posix {
namespace {

constexpr uint64_t kDev = 64 * 1024 * 1024;

// ---------------------------------------------------------------- path helpers

TEST(PathTest, Normalization) {
  EXPECT_EQ(*NormalizePath("/"), "/");
  EXPECT_EQ(*NormalizePath("/a/b"), "/a/b");
  EXPECT_EQ(*NormalizePath("//a///b/"), "/a/b");
  EXPECT_EQ(*NormalizePath("/a/"), "/a");
  EXPECT_FALSE(NormalizePath("").ok());
  EXPECT_FALSE(NormalizePath("relative/path").ok());
  EXPECT_FALSE(NormalizePath("/a/../b").ok());
  EXPECT_FALSE(NormalizePath("/a/./b").ok());
}

TEST(PathTest, ParentAndBasename) {
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/"), "");
  EXPECT_EQ(Basename("/a/b/c"), "c");
  EXPECT_EQ(Basename("/a"), "a");
  EXPECT_EQ(Basename("/"), "");
}

// ---------------------------------------------------------------- fixture

class PosixFsTest : public ::testing::Test {
 protected:
  PosixFsTest() : dev_(std::make_shared<MemoryBlockDevice>(kDev)) {
    core::FileSystemOptions opts;
    opts.lazy_indexing_threads = 0;
    auto fs = core::FileSystem::Create(dev_, opts);
    EXPECT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
    auto pfs = PosixFs::Mount(fs_.get());
    EXPECT_TRUE(pfs.ok()) << pfs.status().ToString();
    pfs_ = std::move(pfs).value();
  }

  std::string ReadFile(const std::string& path) {
    auto fd = pfs_->Open(path, kRead);
    EXPECT_TRUE(fd.ok()) << path;
    std::string out;
    auto n = pfs_->Pread(*fd, 0, 1 << 20, &out);
    EXPECT_TRUE(n.ok());
    EXPECT_TRUE(pfs_->Close(*fd).ok());
    return out;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    auto fd = pfs_->Open(path, kWrite | kCreate | kTruncate);
    ASSERT_TRUE(fd.ok()) << path;
    ASSERT_TRUE(pfs_->Pwrite(*fd, 0, content).ok());
    ASSERT_TRUE(pfs_->Close(*fd).ok());
  }

  std::shared_ptr<MemoryBlockDevice> dev_;
  std::unique_ptr<core::FileSystem> fs_;
  std::unique_ptr<PosixFs> pfs_;
};

TEST_F(PosixFsTest, RootExistsAfterMount) {
  auto st = pfs_->Stat("/");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->is_dir);
}

TEST_F(PosixFsTest, CreateWriteReadFile) {
  WriteFile("/hello.txt", "hello posix world");
  EXPECT_EQ(ReadFile("/hello.txt"), "hello posix world");
  auto st = pfs_->Stat("/hello.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st->is_dir);
  EXPECT_EQ(st->meta.size, 17u);
}

TEST_F(PosixFsTest, OpenFlagsSemantics) {
  EXPECT_TRUE(pfs_->Open("/absent", kRead).status().IsNotFound());
  WriteFile("/f", "x");
  EXPECT_TRUE(pfs_->Open("/f", kWrite | kCreate | kExclusive).status().IsAlreadyExists());
  EXPECT_FALSE(pfs_->Open("/f", 0).ok());  // Need kRead or kWrite.
  // kTruncate clears content.
  auto fd = pfs_->Open("/f", kWrite | kTruncate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pfs_->Close(*fd).ok());
  EXPECT_EQ(ReadFile("/f"), "");
  // Writing through a read-only fd fails.
  auto ro = pfs_->Open("/f", kRead);
  ASSERT_TRUE(ro.ok());
  EXPECT_FALSE(pfs_->Pwrite(*ro, 0, "nope").ok());
}

TEST_F(PosixFsTest, CreateRequiresExistingParentDir) {
  EXPECT_TRUE(pfs_->Open("/no/such/dir/f", kWrite | kCreate).status().IsNotFound());
  ASSERT_TRUE(pfs_->Mkdir("/dir").ok());
  EXPECT_TRUE(pfs_->Open("/dir/f", kWrite | kCreate).ok());
  // A file is not a valid parent.
  WriteFile("/plain", "data");
  EXPECT_FALSE(pfs_->Open("/plain/child", kWrite | kCreate).ok());
}

TEST_F(PosixFsTest, SequentialReadWriteAdvancesOffset) {
  auto fd = pfs_->Open("/seq", kRead | kWrite | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pfs_->Write(*fd, "abc").ok());
  ASSERT_TRUE(pfs_->Write(*fd, "def").ok());
  ASSERT_TRUE(pfs_->Seek(*fd, 0).ok());
  std::string out;
  auto n1 = pfs_->Read(*fd, 4, &out);
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(out, "abcd");
  auto n2 = pfs_->Read(*fd, 10, &out);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(out, "ef");
  auto n3 = pfs_->Read(*fd, 10, &out);  // At EOF.
  ASSERT_TRUE(n3.ok());
  EXPECT_EQ(*n3, 0u);
}

TEST_F(PosixFsTest, AppendMode) {
  WriteFile("/log", "line1\n");
  auto fd = pfs_->Open("/log", kWrite | kAppend);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pfs_->Pwrite(*fd, 0, "line2\n").ok());  // Offset ignored under kAppend.
  ASSERT_TRUE(pfs_->Close(*fd).ok());
  EXPECT_EQ(ReadFile("/log"), "line1\nline2\n");
}

TEST_F(PosixFsTest, SparseWriteZeroFills) {
  auto fd = pfs_->Open("/sparse", kWrite | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pfs_->Pwrite(*fd, 10, "end").ok());
  ASSERT_TRUE(pfs_->Close(*fd).ok());
  std::string content = ReadFile("/sparse");
  EXPECT_EQ(content, std::string(10, '\0') + "end");
}

TEST_F(PosixFsTest, HfadExtensionsOnHandles) {
  auto fd = pfs_->Open("/doc", kRead | kWrite | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pfs_->Pwrite(*fd, 0, "helloworld").ok());
  ASSERT_TRUE(pfs_->InsertAt(*fd, 5, ", ").ok());          // Insert into the middle.
  ASSERT_TRUE(pfs_->RemoveRange(*fd, 0, 5).ok());          // Two-off_t truncate.
  ASSERT_TRUE(pfs_->Close(*fd).ok());
  EXPECT_EQ(ReadFile("/doc"), ", world");
}

TEST_F(PosixFsTest, MkdirRmdir) {
  ASSERT_TRUE(pfs_->Mkdir("/a").ok());
  ASSERT_TRUE(pfs_->Mkdir("/a/b").ok());
  EXPECT_TRUE(pfs_->Mkdir("/a").IsAlreadyExists());
  EXPECT_TRUE(pfs_->Mkdir("/x/y").IsNotFound());  // Parent missing.
  WriteFile("/a/b/f", "content");
  EXPECT_FALSE(pfs_->Rmdir("/a/b").ok());  // Not empty.
  ASSERT_TRUE(pfs_->Unlink("/a/b/f").ok());
  ASSERT_TRUE(pfs_->Rmdir("/a/b").ok());
  ASSERT_TRUE(pfs_->Rmdir("/a").ok());
  EXPECT_TRUE(pfs_->Stat("/a").status().IsNotFound());
  EXPECT_FALSE(pfs_->Rmdir("/").ok());
}

TEST_F(PosixFsTest, ReaddirListsDirectChildrenOnly) {
  ASSERT_TRUE(pfs_->Mkdir("/home").ok());
  ASSERT_TRUE(pfs_->Mkdir("/home/margo").ok());
  WriteFile("/home/margo/thesis.tex", "abstract");
  WriteFile("/home/margo/notes.txt", "todo");
  ASSERT_TRUE(pfs_->Mkdir("/home/nick").ok());
  WriteFile("/home/nick/deep.txt", "hidden from /home listing");

  auto entries = pfs_->Readdir("/home");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].name, "margo");
  EXPECT_TRUE((*entries)[0].is_dir);
  EXPECT_EQ((*entries)[1].name, "nick");

  auto margo = pfs_->Readdir("/home/margo");
  ASSERT_TRUE(margo.ok());
  ASSERT_EQ(margo->size(), 2u);
  EXPECT_EQ((*margo)[0].name, "notes.txt");
  EXPECT_FALSE((*margo)[0].is_dir);
  EXPECT_EQ((*margo)[1].name, "thesis.tex");

  auto root = pfs_->Readdir("/");
  ASSERT_TRUE(root.ok());
  ASSERT_EQ(root->size(), 1u);
  EXPECT_EQ((*root)[0].name, "home");

  EXPECT_FALSE(pfs_->Readdir("/home/margo/thesis.tex").ok());  // Not a directory.
}

TEST_F(PosixFsTest, UnlinkRemovesFile) {
  WriteFile("/tmp.txt", "ephemeral");
  ASSERT_TRUE(pfs_->Unlink("/tmp.txt").ok());
  EXPECT_TRUE(pfs_->Stat("/tmp.txt").status().IsNotFound());
  EXPECT_TRUE(pfs_->Unlink("/tmp.txt").IsNotFound());
  ASSERT_TRUE(pfs_->Mkdir("/d").ok());
  EXPECT_FALSE(pfs_->Unlink("/d").ok());  // Directories need Rmdir.
}

TEST_F(PosixFsTest, HardLinksShareTheObject) {
  WriteFile("/original", "shared bytes");
  ASSERT_TRUE(pfs_->Link("/original", "/alias").ok());
  auto st = pfs_->Stat("/original");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 2u);
  // Writing through one name is visible through the other.
  auto fd = pfs_->Open("/alias", kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pfs_->Pwrite(*fd, 0, "SHARED").ok());
  ASSERT_TRUE(pfs_->Close(*fd).ok());
  EXPECT_EQ(ReadFile("/original"), "SHARED bytes");
  // Unlinking one name keeps the object alive through the other.
  ASSERT_TRUE(pfs_->Unlink("/original").ok());
  EXPECT_EQ(ReadFile("/alias"), "SHARED bytes");
  auto st2 = pfs_->Stat("/alias");
  ASSERT_TRUE(st2.ok());
  EXPECT_EQ(st2->nlink, 1u);
  ASSERT_TRUE(pfs_->Unlink("/alias").ok());
}

TEST_F(PosixFsTest, RenameFile) {
  WriteFile("/old-name", "payload");
  ASSERT_TRUE(pfs_->Rename("/old-name", "/new-name").ok());
  EXPECT_TRUE(pfs_->Stat("/old-name").status().IsNotFound());
  EXPECT_EQ(ReadFile("/new-name"), "payload");
  // Destination collision fails.
  WriteFile("/other", "x");
  EXPECT_TRUE(pfs_->Rename("/new-name", "/other").IsAlreadyExists());
}

TEST_F(PosixFsTest, RenameDirectoryRewritesDescendants) {
  ASSERT_TRUE(pfs_->Mkdir("/proj").ok());
  ASSERT_TRUE(pfs_->Mkdir("/proj/src").ok());
  WriteFile("/proj/readme.md", "docs");
  WriteFile("/proj/src/main.c", "int main(){}");
  ASSERT_TRUE(pfs_->Rename("/proj", "/project").ok());
  EXPECT_TRUE(pfs_->Stat("/proj").status().IsNotFound());
  EXPECT_EQ(ReadFile("/project/readme.md"), "docs");
  EXPECT_EQ(ReadFile("/project/src/main.c"), "int main(){}");
  auto entries = pfs_->Readdir("/project");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  // Moving a directory into itself is rejected.
  EXPECT_FALSE(pfs_->Rename("/project", "/project/sub").ok());
}

TEST_F(PosixFsTest, TruncateGrowsAndShrinks) {
  WriteFile("/t", "123456");
  ASSERT_TRUE(pfs_->Truncate("/t", 3).ok());
  EXPECT_EQ(ReadFile("/t"), "123");
  ASSERT_TRUE(pfs_->Truncate("/t", 6).ok());
  EXPECT_EQ(ReadFile("/t"), std::string("123") + std::string(3, '\0'));
}

TEST_F(PosixFsTest, PathIsJustOneNameAmongMany) {
  // The same object reached by path, tag, and content search (§3.1.1).
  WriteFile("/report.txt", "bizarre quarterly figures");
  auto oid = pfs_->Resolve("/report.txt");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(fs_->AddTag(*oid, {"UDEF", "finance"}).ok());
  ASSERT_TRUE(fs_->IndexContent(*oid).ok());

  auto by_path = fs_->Lookup({{"POSIX", "/report.txt"}});
  auto by_tag = fs_->Lookup({{"UDEF", "finance"}});
  auto by_text = fs_->Lookup({{"FULLTEXT", "bizarre"}});
  ASSERT_TRUE(by_path.ok());
  ASSERT_TRUE(by_tag.ok());
  ASSERT_TRUE(by_text.ok());
  EXPECT_EQ(*by_path, *by_tag);
  EXPECT_EQ(*by_path, *by_text);
  EXPECT_EQ(*by_path, (std::vector<ObjectId>{*oid}));
}

TEST_F(PosixFsTest, DeepPathsResolveInOneLookup) {
  std::string path;
  for (int d = 0; d < 10; d++) {
    path += "/d" + std::to_string(d);
    ASSERT_TRUE(pfs_->Mkdir(path).ok());
  }
  WriteFile(path + "/leaf", "deep");
  stats::ResetAll();
  auto oid = pfs_->Resolve(path + "/leaf");
  ASSERT_TRUE(oid.ok());
  // One index traversal regardless of depth — the §2.3 argument made measurable.
  EXPECT_EQ(stats::Get(stats::Counter::kIndexTraversals), 1u);
  EXPECT_EQ(stats::Get(stats::Counter::kDirComponentsWalked), 0u);
}

TEST_F(PosixFsTest, ManyFilesInOneDirectory) {
  ASSERT_TRUE(pfs_->Mkdir("/bulk").ok());
  constexpr int kFiles = 500;
  for (int i = 0; i < kFiles; i++) {
    char name[32];
    snprintf(name, sizeof(name), "/bulk/file%04d", i);
    WriteFile(name, "x");
  }
  auto entries = pfs_->Readdir("/bulk");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), static_cast<size_t>(kFiles));
  EXPECT_TRUE(std::is_sorted(entries->begin(), entries->end(),
                             [](const DirEntry& a, const DirEntry& b) {
                               return a.name < b.name;
                             }));
}

TEST_F(PosixFsTest, PersistsAcrossReopen) {
  ASSERT_TRUE(pfs_->Mkdir("/persist").ok());
  WriteFile("/persist/data.bin", "durable posix state");
  ASSERT_TRUE(pfs_->Link("/persist/data.bin", "/persist/alias").ok());
  pfs_.reset();
  ASSERT_TRUE(fs_->Checkpoint().ok());
  fs_.reset();

  auto fs = core::FileSystem::Open(dev_, core::FileSystemOptions{});
  ASSERT_TRUE(fs.ok());
  fs_ = std::move(fs).value();
  auto pfs = PosixFs::Mount(fs_.get());
  ASSERT_TRUE(pfs.ok());
  pfs_ = std::move(pfs).value();

  EXPECT_EQ(ReadFile("/persist/data.bin"), "durable posix state");
  auto st = pfs_->Stat("/persist/alias");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 2u);
}

}  // namespace
}  // namespace posix
}  // namespace hfad
