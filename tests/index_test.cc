// Tests for the index-store collection: Table 1 stores, conjunction lookups, the ID
// fastpath, persistence, and the plug-in model (open question #1).
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/index/index_store.h"
#include "src/osd/osd.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace index {
namespace {

constexpr uint64_t kDev = 64 * 1024 * 1024;

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : dev_(std::make_shared<MemoryBlockDevice>(kDev)) {
    auto osd = osd::Osd::Create(dev_, osd::OsdOptions{});
    EXPECT_TRUE(osd.ok()) << osd.status().ToString();
    osd_ = std::move(osd).value();
    auto coll = IndexCollection::Mount(osd_.get());
    EXPECT_TRUE(coll.ok()) << coll.status().ToString();
    collection_ = std::move(coll).value();
  }

  ObjectId NewObject() {
    auto oid = osd_->CreateObject();
    EXPECT_TRUE(oid.ok());
    return *oid;
  }

  std::shared_ptr<MemoryBlockDevice> dev_;
  std::unique_ptr<osd::Osd> osd_;
  std::unique_ptr<IndexCollection> collection_;
};

TEST_F(IndexTest, MountsAllStandardTags) {
  std::vector<std::string> tags = collection_->tags();
  EXPECT_EQ(tags, (std::vector<std::string>{"APP", "FULLTEXT", "ID", "POSIX", "UDEF",
                                            "USER"}));
  for (const std::string& tag : tags) {
    EXPECT_NE(collection_->store(tag), nullptr) << tag;
  }
  EXPECT_EQ(collection_->store("NOPE"), nullptr);
}

TEST_F(IndexTest, KeyValueAddLookupRemove) {
  IndexStore* udef = collection_->store(kTagUdef);
  ObjectId a = NewObject(), b = NewObject();
  ASSERT_TRUE(udef->Add("vacation", a).ok());
  ASSERT_TRUE(udef->Add("vacation", b).ok());
  ASSERT_TRUE(udef->Add("beach", a).ok());

  auto vacation = udef->Lookup("vacation");
  ASSERT_TRUE(vacation.ok());
  EXPECT_EQ(*vacation, (std::vector<ObjectId>{a, b}));
  auto beach = udef->Lookup("beach");
  ASSERT_TRUE(beach.ok());
  EXPECT_EQ(*beach, (std::vector<ObjectId>{a}));

  ASSERT_TRUE(udef->Remove("vacation", a).ok());
  vacation = udef->Lookup("vacation");
  ASSERT_TRUE(vacation.ok());
  EXPECT_EQ(*vacation, (std::vector<ObjectId>{b}));
  EXPECT_TRUE(udef->Remove("vacation", a).IsNotFound());
}

TEST_F(IndexTest, LookupOfUnknownValueIsEmptyNotError) {
  auto r = collection_->store(kTagUser)->Lookup("nobody");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST_F(IndexTest, OneObjectManyNames) {
  // §2.2: "a single piece of data may belong to multiple collections."
  IndexStore* udef = collection_->store(kTagUdef);
  ObjectId obj = NewObject();
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(udef->Add("collection" + std::to_string(i), obj).ok());
  }
  for (int i = 0; i < 64; i++) {
    auto r = udef->Lookup("collection" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, (std::vector<ObjectId>{obj}));
  }
}

TEST_F(IndexTest, ConjunctionAcrossStores) {
  ObjectId photo1 = NewObject(), photo2 = NewObject(), doc = NewObject();
  ASSERT_TRUE(collection_->store(kTagUser)->Add("margo", photo1).ok());
  ASSERT_TRUE(collection_->store(kTagUser)->Add("margo", photo2).ok());
  ASSERT_TRUE(collection_->store(kTagUser)->Add("nick", doc).ok());
  ASSERT_TRUE(collection_->store(kTagUdef)->Add("hawaii", photo1).ok());
  ASSERT_TRUE(collection_->store(kTagUdef)->Add("boston", photo2).ok());

  auto r = collection_->Lookup({{"USER", "margo"}, {"UDEF", "hawaii"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<ObjectId>{photo1}));

  auto all_margo = collection_->Lookup({{"USER", "margo"}});
  ASSERT_TRUE(all_margo.ok());
  EXPECT_EQ(*all_margo, (std::vector<ObjectId>{photo1, photo2}));

  auto none = collection_->Lookup({{"USER", "nick"}, {"UDEF", "hawaii"}});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(IndexTest, FulltextStoreIndexesContent) {
  ObjectId a = NewObject(), b = NewObject();
  IndexStore* ft = collection_->store(kTagFulltext);
  ASSERT_TRUE(ft->Add("annual report with quarterly numbers", a).ok());
  ASSERT_TRUE(ft->Add("holiday photo album", b).ok());

  auto r = collection_->Lookup({{"FULLTEXT", "quarterly"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<ObjectId>{a}));

  // Multi-term conjunction through the collection (§3.1.1's FULLTEXT/S1, FULLTEXT/S2).
  auto r2 = collection_->Lookup({{"FULLTEXT", "annual"}, {"FULLTEXT", "numbers"}});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, (std::vector<ObjectId>{a}));

  ASSERT_TRUE(ft->Remove("", a).ok());
  auto r3 = collection_->Lookup({{"FULLTEXT", "quarterly"}});
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->empty());
}

TEST_F(IndexTest, IdFastpath) {
  ObjectId obj = NewObject();
  auto r = collection_->Lookup({{"ID", std::to_string(obj)}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<ObjectId>{obj}));

  auto missing = collection_->Lookup({{"ID", "999999"}});
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());

  EXPECT_FALSE(collection_->store(kTagId)->Lookup("not-a-number").ok());
  EXPECT_FALSE(collection_->store(kTagId)->Lookup("").ok());
}

TEST_F(IndexTest, IdFastpathIntersectsWithOtherTags) {
  ObjectId obj = NewObject();
  ASSERT_TRUE(collection_->store(kTagUdef)->Add("starred", obj).ok());
  auto r = collection_->Lookup({{"UDEF", "starred"}, {"ID", std::to_string(obj)}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<ObjectId>{obj}));
}

TEST_F(IndexTest, ScanValuesEnumeratesInOrder) {
  IndexStore* posix = collection_->store(kTagPosix);
  ObjectId a = NewObject(), b = NewObject(), c = NewObject();
  ASSERT_TRUE(posix->Add("/home/margo/a.txt", a).ok());
  ASSERT_TRUE(posix->Add("/home/margo/b.txt", b).ok());
  ASSERT_TRUE(posix->Add("/home/nick/c.txt", c).ok());
  std::vector<std::string> values;
  ASSERT_TRUE(posix->ScanValues("/home/margo/", [&](Slice value, ObjectId) {
    values.push_back(value.ToString());
    return true;
  }).ok());
  EXPECT_EQ(values, (std::vector<std::string>{"/home/margo/a.txt", "/home/margo/b.txt"}));
}

TEST_F(IndexTest, CardinalityEstimates) {
  IndexStore* udef = collection_->store(kTagUdef);
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(udef->Add("common", NewObject()).ok());
  }
  ASSERT_TRUE(udef->Add("rare", NewObject()).ok());
  EXPECT_EQ(*udef->EstimateCardinality("common"), 40u);
  EXPECT_EQ(*udef->EstimateCardinality("rare"), 1u);
  EXPECT_EQ(*udef->EstimateCardinality("absent"), 0u);
}

TEST_F(IndexTest, CappedCardinalityEstimateRecoversAfterRemovals) {
  // Estimates clamp at kCardEstimateCap; removing postings from a clamped value must
  // not decrement the cached clamp (that drifts the estimate arbitrarily below the
  // real count and eventually inverts conjunction plans) — it must re-count.
  IndexStore* udef = collection_->store(kTagUdef);
  const uint64_t cap = KeyValueIndexStore::kCardEstimateCap;
  std::vector<ObjectId> oids;
  for (uint64_t i = 0; i < cap + 6; i++) {
    oids.push_back(NewObject());
    ASSERT_TRUE(udef->Add("huge", oids.back()).ok());
  }
  EXPECT_EQ(*udef->EstimateCardinality("huge"), cap);  // Clamped, now cached.
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(udef->Remove("huge", oids[i]).ok());
  }
  // True count is cap + 2, still above the cap: the estimate must stay at the clamp,
  // not drift to cap - 4.
  EXPECT_EQ(*udef->EstimateCardinality("huge"), cap);
}

TEST_F(IndexTest, UnknownTagInLookupFails) {
  EXPECT_FALSE(collection_->Lookup({{"IMAGE", "sunset"}}).ok());
  EXPECT_FALSE(collection_->Lookup({}).ok());
}

TEST_F(IndexTest, PersistsAcrossReopen) {
  ObjectId a = NewObject();
  ASSERT_TRUE(collection_->store(kTagUdef)->Add("persistent-tag", a).ok());
  ASSERT_TRUE(collection_->store(kTagFulltext)->Add("persistent searchable text", a).ok());
  collection_.reset();
  ASSERT_TRUE(osd_->Checkpoint().ok());
  osd_.reset();

  auto osd = osd::Osd::Open(dev_, osd::OsdOptions{});
  ASSERT_TRUE(osd.ok()) << osd.status().ToString();
  osd_ = std::move(osd).value();
  auto coll = IndexCollection::Mount(osd_.get());
  ASSERT_TRUE(coll.ok());
  collection_ = std::move(coll).value();

  auto tag = collection_->Lookup({{"UDEF", "persistent-tag"}});
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, (std::vector<ObjectId>{a}));
  auto text = collection_->Lookup({{"FULLTEXT", "searchable"}});
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, (std::vector<ObjectId>{a}));
}

// ---------------------------------------------------------------- plug-in model

// Worked example for open question #1: a toy "image" index that tags objects with the
// dominant color extracted at Add time. Any IndexStore can be registered for a new tag.
class ImageIndexStore : public IndexStore {
 public:
  explicit ImageIndexStore(std::unique_ptr<KeyValueIndexStore> backing)
      : backing_(std::move(backing)) {}

  std::string_view tag() const override { return "IMAGE"; }

  // `value` is the image's pixel data; this toy analyzer extracts the most frequent byte
  // as the "dominant color".
  Status Add(Slice value, ObjectId oid) override {
    return backing_->Add(DominantColor(value), oid);
  }
  Status Remove(Slice value, ObjectId oid) override {
    return backing_->Remove(DominantColor(value), oid);
  }
  // Lookup by color name.
  Result<std::vector<ObjectId>> Lookup(Slice color) const override {
    return backing_->Lookup(color);
  }
  Result<bool> Contains(Slice color, ObjectId oid) const override {
    return backing_->Contains(color, oid);
  }
  Result<uint64_t> EstimateCardinality(Slice color) const override {
    return backing_->EstimateCardinality(color);
  }
  Status ScanValues(Slice prefix,
                    const std::function<bool(Slice, ObjectId)>& fn) const override {
    return backing_->ScanValues(prefix, fn);
  }

 private:
  static std::string DominantColor(Slice pixels) {
    int histogram[4] = {};
    for (size_t i = 0; i < pixels.size(); i++) {
      histogram[static_cast<uint8_t>(pixels[i]) % 4]++;
    }
    static const char* kNames[4] = {"red", "green", "blue", "gray"};
    return kNames[std::max_element(histogram, histogram + 4) - histogram];
  }

  std::unique_ptr<KeyValueIndexStore> backing_;
};

TEST_F(IndexTest, PluginStoreIntegratesWithLookup) {
  auto backing = KeyValueIndexStore::Mount(osd_.get(), "IMAGE");
  ASSERT_TRUE(backing.ok());
  ASSERT_TRUE(
      collection_->Register(std::make_unique<ImageIndexStore>(std::move(*backing))).ok());

  ObjectId red_photo = NewObject();
  std::string red_pixels(100, '\0');  // 0 % 4 == 0 -> "red".
  ASSERT_TRUE(collection_->store("IMAGE")->Add(red_pixels, red_photo).ok());
  ASSERT_TRUE(collection_->store(kTagUser)->Add("margo", red_photo).ok());

  // Cross-store conjunction: margo's red images.
  auto r = collection_->Lookup({{"IMAGE", "red"}, {"USER", "margo"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<ObjectId>{red_photo}));
}

// ---- Streaming prefix postings (OpenPrefixPostings) ----

TEST_F(IndexTest, PrefixPostingsStreamDeduplicatedAscendingOids) {
  IndexStore* udef = collection_->store("UDEF");
  // Mixed values under "p/": oid 3 carries two matching names (must dedup), oid 7 only
  // a non-matching one.
  ASSERT_TRUE(udef->Add("p/alpha", 5).ok());
  ASSERT_TRUE(udef->Add("p/alpha", 3).ok());
  ASSERT_TRUE(udef->Add("p/beta", 3).ok());
  ASSERT_TRUE(udef->Add("p/beta", 1).ok());
  ASSERT_TRUE(udef->Add("p/gamma", 9).ok());
  ASSERT_TRUE(udef->Add("q/other", 7).ok());
  auto it = udef->OpenPrefixPostings("p/");
  ASSERT_TRUE(it.ok());
  auto drained = DrainPostings(it->get());
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(*drained, (std::vector<ObjectId>{1, 3, 5, 9}));

  // Seek semantics: forward-only lower bounds, like every other posting iterator.
  auto it2 = udef->OpenPrefixPostings("p/");
  ASSERT_TRUE(it2.ok());
  ASSERT_TRUE((*it2)->SeekTo(4).ok());
  ASSERT_TRUE((*it2)->Valid());
  EXPECT_EQ((*it2)->Value(), 5u);
  ASSERT_TRUE((*it2)->Next().ok());
  ASSERT_TRUE((*it2)->Valid());
  EXPECT_EQ((*it2)->Value(), 9u);
  ASSERT_TRUE((*it2)->Next().ok());
  EXPECT_FALSE((*it2)->Valid());

  // Empty result set stays invalid.
  auto it3 = udef->OpenPrefixPostings("zzz/");
  ASSERT_TRUE(it3.ok());
  ASSERT_TRUE((*it3)->SeekTo(0).ok());
  EXPECT_FALSE((*it3)->Valid());
}

TEST_F(IndexTest, PrefixPostingsSkipLargeValuesDuringDiscovery) {
  IndexStore* udef = collection_->store("UDEF");
  // One huge value (2000 postings) plus a handful of small ones under the same prefix.
  for (ObjectId oid = 1; oid <= 2000; oid++) {
    ASSERT_TRUE(udef->Add("big/hot", oid * 2).ok());
  }
  for (ObjectId oid = 0; oid < 5; oid++) {
    // Odd oids beyond the hot range: disjoint from big/hot's postings.
    ASSERT_TRUE(udef->Add("big/cold" + std::to_string(oid), 4001 + 2 * oid).ok());
  }
  PlanStats stats;
  auto it = udef->OpenPrefixPostings("big/", &stats);
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE((*it)->SeekTo(0).ok());
  // Pull one page worth. Discovery must have jumped over the hot value's posting run
  // instead of materializing it: well under the 2005 total rows are touched (the first
  // 1024-entry batch of the promoted stream plus the absorbed small values).
  std::vector<ObjectId> page;
  for (int i = 0; i < 10 && (*it)->Valid(); i++) {
    page.push_back((*it)->Value());
    ASSERT_TRUE((*it)->Next().ok());
  }
  EXPECT_EQ(page, (std::vector<ObjectId>{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}));
  EXPECT_LT(stats.rows_scanned, 1100u);

  // And a full drain still yields the complete deduplicated union.
  auto it_all = udef->OpenPrefixPostings("big/");
  ASSERT_TRUE(it_all.ok());
  auto drained = DrainPostings(it_all->get());
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), 2005u);
  EXPECT_TRUE(std::is_sorted(drained->begin(), drained->end()));
}

TEST_F(IndexTest, PrefixPostingsObserveLaterMutationsLazily) {
  // The iterator is lazy: values added before first use are visible.
  IndexStore* udef = collection_->store("UDEF");
  auto it = udef->OpenPrefixPostings("lazy/");
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(udef->Add("lazy/x", 42).ok());
  ASSERT_TRUE((*it)->SeekTo(0).ok());
  ASSERT_TRUE((*it)->Valid());
  EXPECT_EQ((*it)->Value(), 42u);
}

TEST_F(IndexTest, DuplicateTagRegistrationRejected) {
  auto backing = KeyValueIndexStore::Mount(osd_.get(), "POSIX");
  ASSERT_TRUE(backing.ok());
  EXPECT_TRUE(collection_->Register(std::move(*backing)).IsAlreadyExists());
}

}  // namespace
}  // namespace index
}  // namespace hfad
