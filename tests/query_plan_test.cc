// Tests for the unified naming core: planner ordering, posting-iterator seek semantics,
// Find pagination (including stability under concurrent tag mutation), and
// NamespaceBatch atomicity — live and across crash recovery (FaultyBlockDevice).
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/filesystem.h"
#include "src/index/index_store.h"
#include "src/index/posting_iterator.h"
#include "src/query/query.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace core {
namespace {

constexpr uint64_t kDev = 256 * 1024 * 1024;

FileSystemOptions FastOptions() {
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.osd.journaling = false;
  return options;
}

class QueryPlanTest : public ::testing::Test {
 protected:
  QueryPlanTest() {
    auto fs = FileSystem::Create(std::make_shared<MemoryBlockDevice>(kDev), FastOptions());
    EXPECT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  ObjectId Create(const std::vector<TagValue>& names) {
    auto oid = fs_->Create(names);
    EXPECT_TRUE(oid.ok()) << oid.status().ToString();
    return oid.ok() ? *oid : 0;
  }

  std::unique_ptr<FileSystem> fs_;
};

// ---------------------------------------------------------------- planner ordering

TEST_F(QueryPlanTest, SmallestPostingListDrivesTheIntersection) {
  ObjectId needle = Create({{"UDEF", "common"}, {"UDEF", "rare"}});
  for (int i = 0; i < 400; i++) {
    Create({{"UDEF", "common"}});
  }
  query::PlanStats stats;
  auto r = fs_->Find("UDEF:common AND UDEF:rare", {0, 0, &stats});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ids, (std::vector<ObjectId>{needle}));
  // The planner must open "rare" (1 posting) as the driver and degrade "common" (401
  // postings) to membership probes: one stream opened, one probe, tiny row count.
  EXPECT_EQ(stats.index_lookups, 1u);
  EXPECT_EQ(stats.membership_probes, 1u);
  EXPECT_LT(stats.rows_scanned, 8u);
}

TEST_F(QueryPlanTest, TextualOrderWithoutOptimizer) {
  Create({{"UDEF", "common2"}, {"UDEF", "rare2"}});
  for (int i = 0; i < 200; i++) {
    Create({{"UDEF", "common2"}});
  }
  query::PlanStats naive;
  query::QueryEngine engine(fs_->indexes(), /*optimize=*/false);
  auto r = engine.Run("UDEF:common2 AND UDEF:rare2", &naive);
  ASSERT_TRUE(r.ok());
  // Unoptimized: the textual-order driver scans all 201 common postings.
  EXPECT_GE(naive.rows_scanned, 201u);
  EXPECT_EQ(naive.membership_probes, 0u);
}

TEST_F(QueryPlanTest, EmptyDriverNeverOpensTheOtherConjuncts) {
  for (int i = 0; i < 50; i++) {
    Create({{"UDEF", "everywhere2"}});
  }
  query::PlanStats stats;
  auto r = fs_->Find("UDEF:everywhere2 AND UDEF:absent2", {0, 0, &stats});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ids.empty());
  EXPECT_EQ(stats.index_lookups, 1u);
  EXPECT_TRUE(stats.early_exit);
}

// ---------------------------------------------------------------- prefix terms

TEST_F(QueryPlanTest, PrefixTermMatchesValuePrefix) {
  ObjectId grandma = Create({{"UDEF", "person:grandma"}});
  ObjectId grandpa = Create({{"UDEF", "person:grandpa"}});
  Create({{"UDEF", "place:hawaii"}});
  auto r = fs_->Find("UDEF:person:*");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ids, (std::vector<ObjectId>{grandma, grandpa}));

  // Prefix terms compose with the rest of the algebra.
  auto conj = fs_->Find("UDEF:person:* AND NOT UDEF:person:grandpa");
  ASSERT_TRUE(conj.ok());
  EXPECT_EQ(conj->ids, (std::vector<ObjectId>{grandma}));

  // A quoted star stays literal.
  auto literal = fs_->Find("UDEF:\"person:*\"");
  ASSERT_TRUE(literal.ok());
  EXPECT_TRUE(literal->ids.empty());
}

// ---------------------------------------------------------------- iterator semantics

TEST_F(QueryPlanTest, PostingIteratorSeeksAcrossBatches) {
  // More than two scan batches (kBatch = 1024) so seeks cross refills.
  constexpr int kCount = 2600;
  std::vector<ObjectId> all;
  for (int i = 0; i < kCount; i++) {
    all.push_back(Create({{"UDEF", "big"}}));
  }
  const index::IndexStore* store = fs_->indexes()->store("UDEF");
  auto it = store->OpenPostings("big");
  ASSERT_TRUE(it.ok());

  ASSERT_TRUE((*it)->SeekTo(0).ok());
  ASSERT_TRUE((*it)->Valid());
  EXPECT_EQ((*it)->Value(), all.front());

  // Forward seek deep into a later batch.
  ObjectId mid = all[2000];
  ASSERT_TRUE((*it)->SeekTo(mid).ok());
  ASSERT_TRUE((*it)->Valid());
  EXPECT_EQ((*it)->Value(), mid);

  // Backward seek is a no-op (forward-only contract).
  ASSERT_TRUE((*it)->SeekTo(all[10]).ok());
  EXPECT_EQ((*it)->Value(), mid);

  // Seek to a non-member lower bound lands on the next member.
  ASSERT_TRUE((*it)->SeekTo(all.back() + 1).ok());
  EXPECT_FALSE((*it)->Valid());

  // Next() walks across a batch boundary without skipping or repeating.
  auto it2 = store->OpenPostings("big");
  ASSERT_TRUE(it2.ok());
  ASSERT_TRUE((*it2)->SeekTo(0).ok());
  std::vector<ObjectId> streamed;
  while ((*it2)->Valid()) {
    streamed.push_back((*it2)->Value());
    ASSERT_TRUE((*it2)->Next().ok());
  }
  EXPECT_EQ(streamed, all);
}

// ---------------------------------------------------------------- pagination

TEST_F(QueryPlanTest, FindPaginatesWithLimitAndAfter) {
  std::vector<ObjectId> all;
  for (int i = 0; i < 100; i++) {
    all.push_back(Create({{"UDEF", "paged"}}));
  }
  std::vector<ObjectId> collected;
  query::FindOptions options;
  options.limit = 7;
  int pages = 0;
  for (;;) {
    auto page = fs_->Find("UDEF:paged", options);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_LE(page->ids.size(), 7u);
    collected.insert(collected.end(), page->ids.begin(), page->ids.end());
    pages++;
    if (!page->has_more) {
      break;
    }
    EXPECT_EQ(page->next_after, page->ids.back());
    options.after = page->next_after;
  }
  EXPECT_EQ(collected, all);
  EXPECT_EQ(pages, 15);  // ceil(100 / 7)

  // Disjunctions and negations paginate through the same path.
  auto disj = fs_->Find("UDEF:paged OR UDEF:absent", {3, all[4], nullptr});
  ASSERT_TRUE(disj.ok());
  EXPECT_EQ(disj->ids, (std::vector<ObjectId>(all.begin() + 5, all.begin() + 8)));
  EXPECT_TRUE(disj->has_more);
}

TEST_F(QueryPlanTest, LookupAndFindAgree) {
  for (int i = 0; i < 30; i++) {
    Create({{"UDEF", "both"}, {"USER", i % 2 == 0 ? "margo" : "nick"}});
  }
  auto lookup = fs_->Lookup({{"UDEF", "both"}, {"USER", "margo"}});
  auto find = fs_->Find("UDEF:both AND USER:margo");
  ASSERT_TRUE(lookup.ok());
  ASSERT_TRUE(find.ok());
  EXPECT_EQ(*lookup, find->ids);
}

TEST_F(QueryPlanTest, CursorRootResultsAreCappedPages) {
  const size_t total = SearchCursor::kDefaultResultLimit + 40;
  for (size_t i = 0; i < total; i++) {
    Create({{"UDEF", "cap"}});
  }
  SearchCursor cursor = fs_->OpenCursor();
  // The old footgun: an unrefined cursor enumerated the whole volume. Now: one page.
  auto page1 = cursor.Results();
  ASSERT_TRUE(page1.ok());
  EXPECT_EQ(page1->size(), SearchCursor::kDefaultResultLimit);

  // ResultsPage continues past it.
  size_t seen = 0;
  query::FindOptions options;
  options.limit = 256;
  for (;;) {
    auto page = cursor.ResultsPage(options);
    ASSERT_TRUE(page.ok());
    seen += page->ids.size();
    if (!page->has_more) {
      break;
    }
    options.after = page->next_after;
  }
  EXPECT_EQ(seen, total);

  // Refined cursors page through Find.
  ASSERT_TRUE(cursor.Refine({"UDEF", "cap"}).ok());
  auto refined = cursor.ResultsPage({5, 0, nullptr});
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ(refined->ids.size(), 5u);
  EXPECT_TRUE(refined->has_more);
}

TEST_F(QueryPlanTest, PaginationStableUnderConcurrentTagMutation) {
  // Stable objects keep the tag for the whole test; churn objects toggle it. Pages must
  // never duplicate or reorder an oid, and every stable object must appear exactly once
  // per full sweep.
  std::vector<ObjectId> stable;
  std::vector<ObjectId> churn;
  for (int i = 0; i < 150; i++) {
    stable.push_back(Create({{"UDEF", "sweep"}}));
  }
  for (int i = 0; i < 150; i++) {
    churn.push_back(Create({{"UDEF", "sweep"}}));
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int round = 0;
    while (!stop.load()) {
      for (ObjectId oid : churn) {
        if (round % 2 == 0) {
          (void)fs_->RemoveTag(oid, {"UDEF", "sweep"});
        } else {
          (void)fs_->AddTag(oid, {"UDEF", "sweep"});
        }
      }
      round++;
    }
  });
  for (int sweep = 0; sweep < 30; sweep++) {
    std::set<ObjectId> seen;
    ObjectId last = 0;
    query::FindOptions options;
    options.limit = 16;
    for (;;) {
      auto page = fs_->Find("UDEF:sweep", options);
      ASSERT_TRUE(page.ok()) << page.status().ToString();
      for (ObjectId oid : page->ids) {
        EXPECT_GT(oid, last);  // Strictly ascending across the whole sweep.
        last = oid;
        EXPECT_TRUE(seen.insert(oid).second);  // Never a duplicate.
      }
      if (!page->has_more) {
        break;
      }
      options.after = page->next_after;
    }
    for (ObjectId oid : stable) {
      EXPECT_EQ(seen.count(oid), 1u);  // Unmutated objects never fall out of a sweep.
    }
  }
  stop.store(true);
  writer.join();
}

// ---------------------------------------------------------------- NamespaceBatch

class NamespaceBatchTest : public ::testing::Test {
 protected:
  NamespaceBatchTest() {
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    options.osd.group_commit = false;  // Every journaled op durable on return.
    base_ = std::make_shared<MemoryBlockDevice>(kDev);
    faulty_ = std::make_shared<FaultyBlockDevice>(base_);
    auto fs = FileSystem::Create(faulty_, options);
    EXPECT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  // Crash (no further writes reach the device, including destructor checkpoints) and
  // reopen from the underlying memory device.
  std::unique_ptr<FileSystem> CrashAndRecover() {
    faulty_->SetWriteBudget(0);
    fs_.reset();
    FileSystemOptions options;
    options.lazy_indexing_threads = 0;
    auto fs = FileSystem::Open(base_, options);
    EXPECT_TRUE(fs.ok()) << fs.status().ToString();
    return fs.ok() ? std::move(fs).value() : nullptr;
  }

  std::shared_ptr<MemoryBlockDevice> base_;
  std::shared_ptr<FaultyBlockDevice> faulty_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(NamespaceBatchTest, StagesAndAppliesMixedOps) {
  auto a = fs_->Create({{"UDEF", "old"}});
  auto b = fs_->Create(std::vector<TagValue>{});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  NamespaceBatch batch = fs_->NewBatch();
  ASSERT_TRUE(batch.AddTag(*a, {"UDEF", "new"}).ok());
  ASSERT_TRUE(batch.RemoveTag(*a, {"UDEF", "old"}).ok());
  ASSERT_TRUE(batch.AddTag(*b, {"USER", "margo"}).ok());
  auto c = batch.Create({{"UDEF", "new"}, {"APP", "batcher"}});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(batch.size(), 5u);

  // Nothing applied before Commit.
  auto pre = fs_->Lookup({{"UDEF", "new"}});
  ASSERT_TRUE(pre.ok());
  EXPECT_TRUE(pre->empty());

  ASSERT_TRUE(batch.Commit().ok());
  EXPECT_TRUE(batch.empty());

  EXPECT_EQ(*fs_->Lookup({{"UDEF", "new"}}), (std::vector<ObjectId>{*a, *c}));
  EXPECT_TRUE(fs_->Lookup({{"UDEF", "old"}})->empty());
  EXPECT_EQ(*fs_->Lookup({{"USER", "margo"}}), (std::vector<ObjectId>{*b}));
  EXPECT_EQ(*fs_->Lookup({{"APP", "batcher"}}), (std::vector<ObjectId>{*c}));
}

TEST_F(NamespaceBatchTest, InvalidTagsRejectedAtStageTime) {
  auto a = fs_->Create(std::vector<TagValue>{});
  ASSERT_TRUE(a.ok());
  NamespaceBatch batch = fs_->NewBatch();
  EXPECT_FALSE(batch.AddTag(*a, {"FULLTEXT", "nope"}).ok());  // Not manually taggable.
  EXPECT_FALSE(batch.AddTag(*a, {"BOGUS", "x"}).ok());        // No such store.
  EXPECT_TRUE(batch.empty());
}

TEST_F(NamespaceBatchTest, RemovePreconditionRejectsWholeBatch) {
  auto a = fs_->Create({{"UDEF", "keep"}});
  ASSERT_TRUE(a.ok());
  NamespaceBatch batch = fs_->NewBatch();
  ASSERT_TRUE(batch.AddTag(*a, {"UDEF", "added"}).ok());
  ASSERT_TRUE(batch.RemoveTag(*a, {"UDEF", "never-there"}).ok());
  Status s = batch.Commit();
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  // All-or-nothing: the valid add did not slip through.
  EXPECT_TRUE(fs_->Lookup({{"UDEF", "added"}})->empty());
  EXPECT_EQ(*fs_->Lookup({{"UDEF", "keep"}}), (std::vector<ObjectId>{*a}));
}

TEST_F(NamespaceBatchTest, OneJournalRecordPerBatch) {
  auto a = fs_->Create(std::vector<TagValue>{});
  ASSERT_TRUE(a.ok());
  osd::Osd* volume = fs_->volume();

  uint64_t before = volume->journal_records_appended();
  NamespaceBatch batch = fs_->NewBatch();
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(batch.AddTag(*a, {"UDEF", "b" + std::to_string(i)}).ok());
  }
  ASSERT_TRUE(batch.Commit().ok());
  EXPECT_EQ(volume->journal_records_appended() - before, 1u);

  before = volume->journal_records_appended();
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(fs_->AddTag(*a, {"UDEF", "l" + std::to_string(i)}).ok());
  }
  EXPECT_EQ(volume->journal_records_appended() - before, 8u);
}

TEST_F(NamespaceBatchTest, CommittedBatchRecoversAsAUnit) {
  auto a = fs_->Create(std::vector<TagValue>{});
  auto b = fs_->Create({{"UDEF", "doomed"}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  NamespaceBatch batch = fs_->NewBatch();
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(batch.AddTag(*a, {"UDEF", "unit" + std::to_string(i)}).ok());
  }
  ASSERT_TRUE(batch.RemoveTag(*b, {"UDEF", "doomed"}).ok());
  ASSERT_TRUE(batch.Commit().ok());  // group_commit off: the record is durable.

  auto fs = CrashAndRecover();
  ASSERT_NE(fs, nullptr);
  for (int i = 0; i < 6; i++) {
    auto r = fs->Lookup({{"UDEF", "unit" + std::to_string(i)}});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, (std::vector<ObjectId>{*a})) << "unit" << i;
  }
  EXPECT_TRUE(fs->Lookup({{"UDEF", "doomed"}})->empty());
  // The recovered namespace is internally consistent.
  auto tags = fs->Tags(*a);
  ASSERT_TRUE(tags.ok());
  EXPECT_EQ(tags->size(), 6u);
}

TEST(NamespaceBatchCrashTest, UnsyncedBatchVanishesAtomically) {
  // With group commit the batch record stays buffered until Sync(); a crash before the
  // sync must lose the WHOLE batch, not a prefix.
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  FileSystemOptions options;
  options.lazy_indexing_threads = 0;
  options.osd.group_commit = true;
  ObjectId a = 0;
  {
    auto fs = std::move(FileSystem::Create(faulty, options)).value();
    auto ra = fs->Create({{"UDEF", "pre-batch"}});
    ASSERT_TRUE(ra.ok());
    a = *ra;
    ASSERT_TRUE(fs->Sync().ok());  // Object + its pre-batch name are durable.
    NamespaceBatch batch = fs->NewBatch();
    for (int i = 0; i < 5; i++) {
      ASSERT_TRUE(batch.AddTag(a, {"UDEF", "lost" + std::to_string(i)}).ok());
    }
    ASSERT_TRUE(batch.Commit().ok());
    faulty->SetWriteBudget(0);  // Crash before any sync.
  }
  auto fs = std::move(FileSystem::Open(base, options)).value();
  EXPECT_EQ(*fs->Lookup({{"UDEF", "pre-batch"}}), (std::vector<ObjectId>{a}));
  for (int i = 0; i < 5; i++) {
    auto r = fs->Lookup({{"UDEF", "lost" + std::to_string(i)}});
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->empty()) << "lost" << i << " leaked through the crash";
  }
}

}  // namespace
}  // namespace core
}  // namespace hfad
