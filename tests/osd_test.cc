// Unit, integration, and crash-recovery tests for the object-based storage device.
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/osd/osd.h"
#include "src/storage/block_device.h"
#include "tests/crash_harness.h"

namespace hfad {
namespace osd {
namespace {

constexpr uint64_t kDev = 64 * 1024 * 1024;

std::unique_ptr<Osd> MakeOsd(std::shared_ptr<BlockDevice> dev, OsdOptions opts = {}) {
  auto r = Osd::Create(std::move(dev), opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST(OsdTest, CreateFormatsAVolume) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  ASSERT_NE(osd, nullptr);
  EXPECT_EQ(osd->object_count(), 0u);
}

TEST(OsdTest, DeviceTooSmallRejected) {
  auto r = Osd::Create(std::make_shared<MemoryBlockDevice>(64 * 1024), OsdOptions{});
  EXPECT_FALSE(r.ok());
}

TEST(OsdTest, CreateObjectAssignsFreshIds) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  std::set<ObjectId> ids;
  for (int i = 0; i < 100; i++) {
    auto oid = osd->CreateObject();
    ASSERT_TRUE(oid.ok());
    EXPECT_TRUE(ids.insert(*oid).second) << "duplicate oid " << *oid;
  }
  EXPECT_EQ(osd->object_count(), 100u);
}

TEST(OsdTest, WriteReadRoundTrip) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(osd->Write(*oid, 0, "hello object world").ok());
  std::string out;
  ASSERT_TRUE(osd->Read(*oid, 6, 6, &out).ok());
  EXPECT_EQ(out, "object");
  auto size = osd->Size(*oid);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 18u);
}

TEST(OsdTest, OpsOnMissingObjectFail) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  std::string out;
  EXPECT_TRUE(osd->Read(999, 0, 1, &out).IsNotFound());
  EXPECT_TRUE(osd->Write(999, 0, "x").IsNotFound());
  EXPECT_TRUE(osd->Insert(999, 0, "x").IsNotFound());
  EXPECT_TRUE(osd->RemoveRange(999, 0, 1).IsNotFound());
  EXPECT_TRUE(osd->DeleteObject(999).IsNotFound());
  EXPECT_TRUE(osd->Stat(999).status().IsNotFound());
  EXPECT_FALSE(osd->Exists(999));
}

TEST(OsdTest, InsertAndRemoveRange) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(osd->Write(*oid, 0, "helloworld").ok());
  ASSERT_TRUE(osd->Insert(*oid, 5, ", ").ok());
  std::string out;
  ASSERT_TRUE(osd->Read(*oid, 0, 100, &out).ok());
  EXPECT_EQ(out, "hello, world");
  ASSERT_TRUE(osd->RemoveRange(*oid, 5, 2).ok());
  ASSERT_TRUE(osd->Read(*oid, 0, 100, &out).ok());
  EXPECT_EQ(out, "helloworld");
}

TEST(OsdTest, TruncateGrowZeroFillsAndShrinkDrops) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(osd->Write(*oid, 0, "abcdef").ok());
  ASSERT_TRUE(osd->Truncate(*oid, 10).ok());
  std::string out;
  ASSERT_TRUE(osd->Read(*oid, 0, 100, &out).ok());
  EXPECT_EQ(out, std::string("abcdef") + std::string(4, '\0'));
  ASSERT_TRUE(osd->Truncate(*oid, 3).ok());
  ASSERT_TRUE(osd->Read(*oid, 0, 100, &out).ok());
  EXPECT_EQ(out, "abc");
}

TEST(OsdTest, DeleteReleasesStorage) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  uint64_t baseline = osd->heap_allocated_bytes();
  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(osd->Write(*oid, 0, std::string(1024 * 1024, 'D')).ok());
  EXPECT_GT(osd->heap_allocated_bytes(), baseline + 512 * 1024);
  ASSERT_TRUE(osd->DeleteObject(*oid).ok());
  EXPECT_FALSE(osd->Exists(*oid));
  EXPECT_LE(osd->heap_allocated_bytes(), baseline + 64 * 1024);
}

TEST(OsdTest, StatReportsMetadata) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  auto meta0 = osd->Stat(*oid);
  ASSERT_TRUE(meta0.ok());
  EXPECT_EQ(meta0->size, 0u);
  EXPECT_GT(meta0->ctime_ns, 0u);

  ASSERT_TRUE(osd->Write(*oid, 0, "0123456789").ok());
  auto meta1 = osd->Stat(*oid);
  ASSERT_TRUE(meta1.ok());
  EXPECT_EQ(meta1->size, 10u);
  EXPECT_GE(meta1->mtime_ns, meta0->mtime_ns);

  ASSERT_TRUE(osd->SetAttributes(*oid, 0755, 1000, 100).ok());
  auto meta2 = osd->Stat(*oid);
  ASSERT_TRUE(meta2.ok());
  EXPECT_EQ(meta2->mode, 0755u);
  EXPECT_EQ(meta2->uid, 1000u);
  EXPECT_EQ(meta2->gid, 100u);
  EXPECT_EQ(meta2->size, 10u);  // SetAttributes does not touch size.
}

TEST(OsdTest, ScanObjectsVisitsInOidOrder) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  std::vector<ObjectId> created;
  for (int i = 0; i < 20; i++) {
    auto oid = osd->CreateObject();
    ASSERT_TRUE(oid.ok());
    created.push_back(*oid);
  }
  ASSERT_TRUE(osd->DeleteObject(created[5]).ok());
  std::vector<ObjectId> seen;
  ASSERT_TRUE(osd->ScanObjects([&](ObjectId oid, const ObjectMeta&) {
    seen.push_back(oid);
    return true;
  }).ok());
  EXPECT_EQ(seen.size(), 19u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(std::count(seen.begin(), seen.end(), created[5]), 0);
}

TEST(OsdTest, ScanObjectsSeeksToStartKey) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(osd->CreateObject().ok());  // Oids 1..10.
  }
  std::vector<ObjectId> seen;
  ASSERT_TRUE(osd->ScanObjects(7, [&](ObjectId oid, const ObjectMeta&) {
                   seen.push_back(oid);
                   return true;
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<ObjectId>{7, 8, 9, 10}));
  seen.clear();
  ASSERT_TRUE(osd->ScanObjects(11, [&](ObjectId oid, const ObjectMeta&) {
                   seen.push_back(oid);
                   return true;
                 })
                  .ok());
  EXPECT_TRUE(seen.empty());
}

// ---- Close status (shutdown errors must not vanish) ----

TEST(OsdCloseTest, CleanCloseRecordsOk) {
  stats::ResetAll();
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  ASSERT_TRUE(osd->CreateObject().ok());
  EXPECT_TRUE(osd->Close().ok());
  EXPECT_TRUE(osd->last_close_status().ok());
  osd.reset();
  EXPECT_EQ(stats::Get(stats::Counter::kOsdCloseErrors), 0u);
}

TEST(OsdCloseTest, FailedFinalCheckpointIsRecordedAndCounted) {
  stats::ResetAll();
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  auto osd = MakeOsd(faulty);
  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(osd->Write(*oid, 0, "will not checkpoint").ok());
  faulty->SetWriteBudget(0);  // The device dies before shutdown.
  Status s = osd->Close();
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(osd->last_close_status().ok());
  EXPECT_EQ(stats::Get(stats::Counter::kOsdCloseErrors), 1u);
  // The destructor reuses the recorded outcome — no double count, no second checkpoint.
  osd.reset();
  EXPECT_EQ(stats::Get(stats::Counter::kOsdCloseErrors), 1u);
}

// ---- Threshold-triggered checkpoints ----

// A tag-storm-sized load against a deliberately tiny journal: the occupancy kick keeps
// checkpoints running in the background so ops keep succeeding long past the point the
// journal would have filled many times over.
TEST(OsdCheckpointTest, ThresholdCheckpointsAbsorbSustainedLoad) {
  OsdOptions opts;
  opts.journal_size = 256 * 1024;
  auto dev = std::make_shared<MemoryBlockDevice>(kDev);
  auto osd = MakeOsd(dev, opts);
  const std::string payload(512, 'p');
  std::vector<ObjectId> oids;
  for (int i = 0; i < 2000; i++) {
    auto oid = osd->CreateObject();
    ASSERT_TRUE(oid.ok()) << "op " << i;
    ASSERT_TRUE(osd->Write(*oid, 0, payload).ok()) << "op " << i;
    oids.push_back(*oid);
  }
  ASSERT_TRUE(osd->Close().ok());
  osd.reset();
  auto reopened = Osd::Open(dev, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->object_count(), oids.size());
  std::string out;
  ASSERT_TRUE((*reopened)->Read(oids.back(), 0, payload.size(), &out).ok());
  EXPECT_EQ(out, payload);
}

// ---- Checkpoint-boundary crash sweep (torn WriteBatch fault injection) ----
//
// Every op below is Sync()ed (acknowledged durable) before the crash, then a checkpoint
// is cut off after `budget` device writes with the final write torn in half. Whatever
// the tear position — mid page-image epilogue, mid in-place WriteBatch, before the
// superblock, before the journal reset — recovery must replay exactly the covered
// watermark: every acknowledged op, never a torn suffix.
// Parameterized over (write budget, async): the sweep runs once with the IoEngine
// disabled (io_threads = 0, the pre-async sync path) and once through the engine.
// The engine issues the same device ops in the same order, so every tear position
// must behave identically on both paths.
class CheckpointTearTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(CheckpointTearTest, SyncedOpsSurviveACheckpointTornAtAnyWrite) {
  const int64_t budget = std::get<0>(GetParam());
  const bool async = std::get<1>(GetParam());
  OsdOptions opts;
  if (!async) opts.io_threads = 0;
  std::vector<std::pair<ObjectId, std::string>> acked;
  test::RunTornWriteCrash(
      kDev, budget,
      [&](const std::shared_ptr<FaultyBlockDevice>& faulty, test::CrashPoint* point) {
        auto r = Osd::Create(faulty, opts);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        auto osd = std::move(r).value();
        for (int i = 0; i < 8; i++) {
          auto oid = osd->CreateObject();
          ASSERT_TRUE(oid.ok());
          std::string payload = "acknowledged payload #" + std::to_string(i) +
                                std::string(200 + 50 * i, 'a' + static_cast<char>(i));
          ASSERT_TRUE(osd->Write(*oid, 0, payload).ok());
          acked.emplace_back(*oid, payload);
        }
        ASSERT_TRUE(osd->Sync().ok());  // Covered by the watermark from here on.

        point->Tear();
        (void)osd->Checkpoint();  // May fail anywhere, including mid-WriteBatch.
        point->Crash();           // Hard crash: the destructor reaches nothing.
      },
      [&](const std::shared_ptr<MemoryBlockDevice>& base) {
        auto reopened = Osd::Open(base, opts);
        ASSERT_TRUE(reopened.ok())
            << "budget " << budget << ": " << reopened.status().ToString();
        for (const auto& [oid, payload] : acked) {
          std::string out;
          ASSERT_TRUE((*reopened)->Read(oid, 0, payload.size() + 16, &out).ok())
              << "budget " << budget << " oid " << oid;
          EXPECT_EQ(out, payload) << "budget " << budget << " oid " << oid;
        }
        EXPECT_EQ((*reopened)->object_count(), acked.size());
      });
}

INSTANTIATE_TEST_SUITE_P(TearAtEveryWrite, CheckpointTearTest,
                         ::testing::Combine(::testing::Range(0, 14),
                                            ::testing::Bool()));

TEST(OsdTest, PersistsAcrossCleanReopen) {
  auto dev = std::make_shared<MemoryBlockDevice>(kDev);
  ObjectId oid;
  {
    auto osd = MakeOsd(dev);
    auto r = osd->CreateObject();
    ASSERT_TRUE(r.ok());
    oid = *r;
    ASSERT_TRUE(osd->Write(oid, 0, "survives reopen").ok());
    ASSERT_TRUE(osd->Checkpoint().ok());
  }
  auto reopened = Osd::Open(dev, OsdOptions{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::string out;
  ASSERT_TRUE((*reopened)->Read(oid, 0, 100, &out).ok());
  EXPECT_EQ(out, "survives reopen");
  EXPECT_EQ((*reopened)->object_count(), 1u);
}

TEST(OsdTest, NamedRootsPersist) {
  auto dev = std::make_shared<MemoryBlockDevice>(kDev);
  {
    auto osd = MakeOsd(dev);
    auto missing = osd->GetNamedRoot("fulltext");
    ASSERT_TRUE(missing.ok());
    EXPECT_EQ(*missing, 0u);
    ASSERT_TRUE(osd->SetNamedRoot("fulltext", 123456).ok());
    ASSERT_TRUE(osd->SetNamedRoot("posix", 789).ok());
    ASSERT_TRUE(osd->Checkpoint().ok());
  }
  auto reopened = Osd::Open(dev, OsdOptions{});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->GetNamedRoot("fulltext"), 123456u);
  EXPECT_EQ(*(*reopened)->GetNamedRoot("posix"), 789u);
}

// ---------------------------------------------------------------- crash recovery

// Crash simulation: the Osd runs on a FaultyBlockDevice; "crashing" sets the write budget
// to zero so nothing (including the destructor's best-effort checkpoint) reaches the
// device afterward, then the volume is reopened from the underlying memory device.
class CrashHarness {
 public:
  explicit CrashHarness(OsdOptions opts = MakeDefaultOptions())
      : base_(std::make_shared<MemoryBlockDevice>(kDev)),
        faulty_(std::make_shared<FaultyBlockDevice>(base_)),
        opts_(opts) {
    auto r = Osd::Create(faulty_, opts_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    osd_ = std::move(r).value();
  }

  static OsdOptions MakeDefaultOptions() {
    OsdOptions opts;
    opts.group_commit = false;  // Every op durable on return.
    return opts;
  }

  Osd* osd() { return osd_.get(); }

  // Crash and reopen. Returns the recovered Osd (running directly on the base device).
  std::unique_ptr<Osd> CrashAndRecover(Osd::ForeignReplayFn replay = nullptr) {
    faulty_->SetWriteBudget(0);
    osd_.reset();  // Destructor checkpoint fails against the dead device.
    auto r = Osd::Open(base_, opts_, std::move(replay));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : nullptr;
  }

 private:
  std::shared_ptr<MemoryBlockDevice> base_;
  std::shared_ptr<FaultyBlockDevice> faulty_;
  OsdOptions opts_;
  std::unique_ptr<Osd> osd_;
};

TEST(OsdRecoveryTest, ReplaysLoggedOpsAfterCrash) {
  CrashHarness h;
  auto ra = h.osd()->CreateObject();
  auto rb = h.osd()->CreateObject();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ObjectId a = *ra, b = *rb;
  ASSERT_TRUE(h.osd()->Write(a, 0, "object a data").ok());
  ASSERT_TRUE(h.osd()->Write(b, 0, "object b data").ok());
  ASSERT_TRUE(h.osd()->Insert(a, 6, "<INS>").ok());
  ASSERT_TRUE(h.osd()->RemoveRange(b, 0, 7).ok());
  ASSERT_TRUE(h.osd()->SetAttributes(a, 0700, 42, 43).ok());

  auto osd = h.CrashAndRecover();
  ASSERT_NE(osd, nullptr);
  std::string out;
  ASSERT_TRUE(osd->Read(a, 0, 100, &out).ok());
  EXPECT_EQ(out, "object<INS> a data");
  ASSERT_TRUE(osd->Read(b, 0, 100, &out).ok());
  EXPECT_EQ(out, "b data");
  auto meta = osd->Stat(a);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->mode, 0700u);
  EXPECT_EQ(meta->uid, 42u);
}

TEST(OsdRecoveryTest, UnsyncedGroupCommitOpsMayVanishButStateIsConsistent) {
  OsdOptions opts;
  opts.group_commit = true;
  CrashHarness h(opts);
  auto ra = h.osd()->CreateObject();
  ASSERT_TRUE(ra.ok());
  ObjectId a = *ra;
  ASSERT_TRUE(h.osd()->Write(a, 0, "synced payload").ok());
  ASSERT_TRUE(h.osd()->Sync().ok());  // Everything so far is durable.
  ASSERT_TRUE(h.osd()->Write(a, 0, "UNSYNCED").ok());  // Overwrite: forces its own sync.
  auto rb = h.osd()->CreateObject();  // Not synced: may vanish.
  ASSERT_TRUE(rb.ok());

  auto osd = h.CrashAndRecover();
  ASSERT_NE(osd, nullptr);
  std::string out;
  ASSERT_TRUE(osd->Read(a, 0, 100, &out).ok());
  // The overwrite forced a journal sync (it clobbers live bytes in place), so it must
  // have survived.
  ASSERT_GE(out.size(), 8u);
  EXPECT_EQ(out.substr(0, 8), "UNSYNCED");
}

TEST(OsdRecoveryTest, CreateDeleteCycleRecovers) {
  CrashHarness h;
  std::vector<ObjectId> kept;
  for (int i = 0; i < 30; i++) {
    auto oid = h.osd()->CreateObject();
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE(h.osd()->Write(*oid, 0, "obj " + std::to_string(*oid)).ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(h.osd()->DeleteObject(*oid).ok());
    } else {
      kept.push_back(*oid);
    }
  }
  auto osd = h.CrashAndRecover();
  ASSERT_NE(osd, nullptr);
  EXPECT_EQ(osd->object_count(), kept.size());
  for (ObjectId oid : kept) {
    std::string out;
    ASSERT_TRUE(osd->Read(oid, 0, 100, &out).ok()) << oid;
    EXPECT_EQ(out, "obj " + std::to_string(oid));
  }
  // New objects get fresh ids, never reusing replayed ones.
  auto fresh = osd->CreateObject();
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, kept.back());
}

TEST(OsdRecoveryTest, RecoveryAfterCheckpointReplaysOnlySuffix) {
  CrashHarness h;
  auto ra = h.osd()->CreateObject();
  ASSERT_TRUE(ra.ok());
  ObjectId a = *ra;
  ASSERT_TRUE(h.osd()->Write(a, 0, "checkpointed").ok());
  ASSERT_TRUE(h.osd()->Checkpoint().ok());
  ASSERT_TRUE(h.osd()->Write(a, 12, " plus suffix").ok());

  auto osd = h.CrashAndRecover();
  ASSERT_NE(osd, nullptr);
  std::string out;
  ASSERT_TRUE(osd->Read(a, 0, 100, &out).ok());
  EXPECT_EQ(out, "checkpointed plus suffix");
}

TEST(OsdRecoveryTest, ForeignRecordsReplayInOrder) {
  CrashHarness h;
  ASSERT_TRUE(h.osd()->AppendForeign("tag-op-1").ok());
  auto ra = h.osd()->CreateObject();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(h.osd()->AppendForeign("tag-op-2").ok());
  ASSERT_TRUE(h.osd()->Sync().ok());

  std::vector<std::string> replayed;
  auto osd = h.CrashAndRecover([&](Osd*, Slice payload) {
    replayed.push_back(payload.ToString());
    return Status::Ok();
  });
  ASSERT_NE(osd, nullptr);
  EXPECT_EQ(replayed, (std::vector<std::string>{"tag-op-1", "tag-op-2"}));
  EXPECT_TRUE(osd->Exists(*ra));
}

TEST(OsdRecoveryTest, RepeatedCrashRecoverCyclesConvergeToSameState) {
  Random rng(77);
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  OsdOptions opts;
  opts.group_commit = false;
  std::vector<ObjectId> live;
  std::map<ObjectId, std::string> model;
  {
    auto faulty = std::make_shared<FaultyBlockDevice>(base);
    auto created = Osd::Create(faulty, opts);
    ASSERT_TRUE(created.ok());
    auto osd = std::move(created).value();
    for (int i = 0; i < 50; i++) {
      auto oid = osd->CreateObject();
      ASSERT_TRUE(oid.ok());
      std::string data = rng.NextString(rng.Range(1, 4000));
      ASSERT_TRUE(osd->Write(*oid, 0, data).ok());
      model[*oid] = data;
    }
    faulty->SetWriteBudget(0);
  }
  // Three crash/recover cycles; state must be identical each time.
  for (int cycle = 0; cycle < 3; cycle++) {
    auto faulty = std::make_shared<FaultyBlockDevice>(base);
    auto r = Osd::Open(faulty, opts);
    ASSERT_TRUE(r.ok()) << "cycle " << cycle << ": " << r.status().ToString();
    auto osd = std::move(r).value();
    EXPECT_EQ(osd->object_count(), model.size());
    for (const auto& [oid, data] : model) {
      std::string out;
      ASSERT_TRUE(osd->Read(oid, 0, data.size() + 10, &out).ok());
      ASSERT_EQ(out, data) << "cycle " << cycle << " oid " << oid;
    }
    if (cycle < 2) {
      faulty->SetWriteBudget(0);  // Crash again (even mid-recovery checkpoint is fine).
    } else {
      ASSERT_TRUE(osd->Checkpoint().ok());
    }
  }
}

// ---------------------------------------------------------------- concurrency

TEST(OsdConcurrencyTest, ParallelOpsOnDistinctObjects) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 100;
  std::vector<ObjectId> oids(kThreads);
  for (int t = 0; t < kThreads; t++) {
    auto oid = osd->CreateObject();
    ASSERT_TRUE(oid.ok());
    oids[t] = *oid;
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&osd, &oids, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        std::string chunk = "t" + std::to_string(t) + "op" + std::to_string(i) + ";";
        auto size = osd->Size(oids[t]);
        ASSERT_TRUE(size.ok());
        ASSERT_TRUE(osd->Write(oids[t], *size, chunk).ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; t++) {
    std::string out;
    ASSERT_TRUE(osd->Read(oids[t], 0, 1 << 20, &out).ok());
    // Every chunk this thread wrote must be present, in order.
    size_t pos = 0;
    for (int i = 0; i < kOpsPerThread; i++) {
      std::string chunk = "t" + std::to_string(t) + "op" + std::to_string(i) + ";";
      size_t found = out.find(chunk, pos);
      ASSERT_NE(found, std::string::npos) << "thread " << t << " op " << i;
      pos = found + chunk.size();
    }
  }
}

// Shared-object stress for the sharded object locks: every thread mutates and reads the
// SAME small object set, so writers on one object serialize through its shard while
// readers take it shared, and distinct objects proceed independently. The end state
// must pass CheckObject on every object, and each object's byte content must be one of
// the values some writer actually wrote (no torn or interleaved pages).
TEST(OsdConcurrencyTest, OverlappingWritersAndReadersStayConsistent) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  constexpr int kObjects = 12;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 150;
  std::vector<ObjectId> oids(kObjects);
  for (int i = 0; i < kObjects; i++) {
    auto oid = osd->CreateObject();
    ASSERT_TRUE(oid.ok());
    oids[i] = *oid;
    ASSERT_TRUE(osd->Write(oids[i], 0, "seed----").ok());
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&osd, &oids, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        ObjectId oid = oids[(t * 5 + i * 3) % kObjects];
        if ((t + i) % 4 == 0) {
          // Fixed-width overwrite at offset 0: the whole value is one page, so any
          // interleaving of writers leaves one complete writer's value behind.
          std::string body = "w" + std::to_string(t % 10) + std::to_string(i % 10) +
                             "-----";
          ASSERT_TRUE(osd->Write(oid, 0, body).ok());
        } else if ((t + i) % 4 == 1) {
          auto meta = osd->Stat(oid);
          ASSERT_TRUE(meta.ok());
        } else if ((t + i) % 4 == 2) {
          auto size = osd->Size(oid);
          ASSERT_TRUE(size.ok());
          ASSERT_GE(*size, 8u);
        } else {
          std::string out;
          ASSERT_TRUE(osd->Read(oid, 0, 8, &out).ok());
          ASSERT_EQ(out.size(), 8u);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int i = 0; i < kObjects; i++) {
    Status s = osd->CheckObject(oids[i]);
    EXPECT_TRUE(s.ok()) << "object " << oids[i] << ": " << s.ToString();
    std::string out;
    ASSERT_TRUE(osd->Read(oids[i], 0, 8, &out).ok());
    ASSERT_EQ(out.size(), 8u);
    // Either still the seed or exactly one writer's 8-byte record.
    EXPECT_TRUE(out == "seed----" || (out[0] == 'w' && out.substr(3, 5) == "-----"))
        << "torn content: '" << out << "'";
  }
}

TEST(OsdConcurrencyTest, CheckpointsInterleaveWithWriters) {
  auto osd = MakeOsd(std::make_shared<MemoryBlockDevice>(kDev));
  auto oid = osd->CreateObject();
  ASSERT_TRUE(oid.ok());
  std::atomic<bool> stop{false};
  std::thread checkpointer([&] {
    while (!stop.load()) {
      ASSERT_TRUE(osd->Checkpoint().ok());
    }
  });
  for (int i = 0; i < 300; i++) {
    auto size = osd->Size(*oid);
    ASSERT_TRUE(size.ok());
    ASSERT_TRUE(osd->Write(*oid, *size, "x").ok());
  }
  stop.store(true);
  checkpointer.join();
  auto size = osd->Size(*oid);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 300u);
}

// ---------------------------------------------------------------- property sweep

struct OsdWorkload {
  uint64_t seed;
  bool journaling;
  bool group_commit;
  int ops;
};

class OsdPropertyTest : public ::testing::TestWithParam<OsdWorkload> {};

// Random op mix mirrored against in-memory models; final state must match after a clean
// reopen as well.
TEST_P(OsdPropertyTest, MatchesModel) {
  const OsdWorkload p = GetParam();
  auto dev = std::make_shared<MemoryBlockDevice>(kDev);
  OsdOptions opts;
  opts.journaling = p.journaling;
  opts.group_commit = p.group_commit;
  auto osd = MakeOsd(dev, opts);
  Random rng(p.seed);
  std::map<ObjectId, std::string> model;

  for (int op = 0; op < p.ops; op++) {
    int action = static_cast<int>(rng.Uniform(12));
    if (action < 3 || model.empty()) {
      auto oid = osd->CreateObject();
      ASSERT_TRUE(oid.ok());
      model[*oid] = "";
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ObjectId oid = it->first;
      std::string& m = it->second;
      if (action < 6) {  // Write.
        uint64_t off = m.empty() ? 0 : rng.Uniform(m.size() + 1);
        std::string data = rng.NextString(rng.Range(1, 2000));
        ASSERT_TRUE(osd->Write(oid, off, data).ok());
        if (off + data.size() > m.size()) {
          m.resize(off + data.size());
        }
        m.replace(off, data.size(), data);
      } else if (action < 8) {  // Insert.
        uint64_t off = m.empty() ? 0 : rng.Uniform(m.size() + 1);
        std::string data = rng.NextString(rng.Range(1, 500));
        ASSERT_TRUE(osd->Insert(oid, off, data).ok());
        m.insert(off, data);
      } else if (action < 9 && !m.empty()) {  // RemoveRange.
        uint64_t off = rng.Uniform(m.size());
        uint64_t len = rng.Range(1, m.size() - off);
        ASSERT_TRUE(osd->RemoveRange(oid, off, len).ok());
        m.erase(off, len);
      } else if (action < 10) {  // Read and compare.
        std::string out;
        ASSERT_TRUE(osd->Read(oid, 0, m.size() + 10, &out).ok());
        ASSERT_EQ(out, m);
      } else if (action < 11) {  // Delete.
        ASSERT_TRUE(osd->DeleteObject(oid).ok());
        model.erase(it);
      } else {  // Truncate.
        uint64_t new_size = rng.Uniform(m.size() + 100);
        ASSERT_TRUE(osd->Truncate(oid, new_size).ok());
        m.resize(new_size, '\0');
      }
    }
  }
  ASSERT_TRUE(osd->Checkpoint().ok());
  osd.reset();

  auto reopened = Osd::Open(dev, opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->object_count(), model.size());
  for (const auto& [oid, data] : model) {
    std::string out;
    ASSERT_TRUE((*reopened)->Read(oid, 0, data.size() + 10, &out).ok()) << oid;
    ASSERT_EQ(out, data) << "oid " << oid;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, OsdPropertyTest,
    ::testing::Values(OsdWorkload{1, true, true, 800},    // Journaled, group commit.
                      OsdWorkload{2, true, false, 400},   // Journaled, sync per op.
                      OsdWorkload{3, false, false, 800},  // No journal.
                      OsdWorkload{4, true, true, 1500})); // Longer journaled run.

// Fault sweep: a two-read transient burst injected at every point in the device read
// stream is invisible — the default RetryPolicy (3 attempts) absorbs it, every object
// reads back byte-exact, and the volume never leaves healthy. A tiny page cache forces
// real device reads so the sweep actually exercises the miss path, not the cache.
TEST(OsdFaultSweepTest, TransientReadBurstsAtEveryOffsetAreAbsorbed) {
  auto base = std::make_shared<MemoryBlockDevice>(kDev);
  auto faulty = std::make_shared<FaultyBlockDevice>(base);
  OsdOptions opts;
  opts.io_threads = 0;
  opts.pager_capacity_pages = 16;
  auto osd = MakeOsd(faulty, opts);
  ASSERT_NE(osd, nullptr);

  std::vector<ObjectId> oids;
  std::vector<std::string> payloads;
  for (int i = 0; i < 24; i++) {
    auto oid = osd->CreateObject();
    ASSERT_TRUE(oid.ok());
    payloads.push_back("sweep-payload-" + std::to_string(i) +
                       std::string(6000, static_cast<char>('a' + i % 26)));
    ASSERT_TRUE(osd->Write(*oid, 0, payloads.back()).ok());
    oids.push_back(*oid);
  }
  ASSERT_TRUE(osd->Checkpoint().ok());

  test::RunReadFaultSweep(faulty.get(), /*max_after=*/40, /*fail_count=*/2,
                          [&](int64_t after) {
                            std::string out;
                            for (size_t i = 0; i < oids.size(); i++) {
                              Status s = osd->Read(oids[i], 0, payloads[i].size(), &out);
                              ASSERT_TRUE(s.ok()) << "after=" << after << " oid#" << i
                                                  << ": " << s.ToString();
                              ASSERT_EQ(out, payloads[i]) << "after=" << after;
                            }
                          });
  EXPECT_EQ(osd->health_state(), HealthState::kHealthy);
}

}  // namespace
}  // namespace osd
}  // namespace hfad
