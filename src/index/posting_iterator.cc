#include "src/index/posting_iterator.h"

#include <algorithm>
#include <utility>

#include "src/index/index_store.h"

namespace hfad {
namespace index {

// ---------------------------------------------------------------- VectorPostingIterator

VectorPostingIterator::VectorPostingIterator(std::vector<ObjectId> ids, PlanStats* stats)
    : owned_(std::move(ids)), ids_(&owned_), stats_(stats) {}

VectorPostingIterator::VectorPostingIterator(
    std::shared_ptr<const std::vector<ObjectId>> ids, PlanStats* stats)
    : shared_(std::move(ids)), ids_(shared_.get()), stats_(stats) {}

void VectorPostingIterator::CountOnce() {
  if (!positioned_) {
    positioned_ = true;
    if (stats_ != nullptr) {
      stats_->index_lookups++;
      stats_->rows_scanned += ids_->size();
    }
  }
}

bool VectorPostingIterator::Valid() const { return positioned_ && idx_ < ids_->size(); }

ObjectId VectorPostingIterator::Value() const { return (*ids_)[idx_]; }

Status VectorPostingIterator::Next() {
  if (Valid()) {
    idx_++;
  }
  return Status::Ok();
}

Status VectorPostingIterator::SeekTo(ObjectId lower_bound) {
  CountOnce();
  if (idx_ < ids_->size() && (*ids_)[idx_] >= lower_bound) {
    return Status::Ok();
  }
  idx_ = std::lower_bound(ids_->begin() + static_cast<ptrdiff_t>(idx_), ids_->end(),
                          lower_bound) -
         ids_->begin();
  return Status::Ok();
}

// ---------------------------------------------------------------- LazyPostingIterator

LazyPostingIterator::LazyPostingIterator(FillFn fill, PlanStats* stats)
    : fill_(std::move(fill)), stats_(stats) {}

Status LazyPostingIterator::Materialize() {
  if (materialized_) {
    return Status::Ok();
  }
  materialized_ = true;
  HFAD_ASSIGN_OR_RETURN(ids_, fill_());
  fill_ = nullptr;
  if (stats_ != nullptr) {
    stats_->index_lookups++;
    stats_->rows_scanned += ids_.size();
  }
  return Status::Ok();
}

bool LazyPostingIterator::Valid() const { return positioned_ && idx_ < ids_.size(); }

ObjectId LazyPostingIterator::Value() const { return ids_[idx_]; }

Status LazyPostingIterator::Next() {
  if (Valid()) {
    idx_++;
  }
  return Status::Ok();
}

Status LazyPostingIterator::SeekTo(ObjectId lower_bound) {
  HFAD_RETURN_IF_ERROR(Materialize());
  positioned_ = true;
  if (idx_ < ids_.size() && ids_[idx_] >= lower_bound) {
    return Status::Ok();
  }
  idx_ = std::lower_bound(ids_.begin() + static_cast<ptrdiff_t>(idx_), ids_.end(),
                          lower_bound) -
         ids_.begin();
  return Status::Ok();
}

// ---------------------------------------------------------------- AndPostingIterator

AndPostingIterator::AndPostingIterator(
    std::vector<std::unique_ptr<PostingIterator>> positives, std::vector<Probe> probes,
    std::vector<std::unique_ptr<PostingIterator>> negatives, PlanStats* stats)
    : positives_(std::move(positives)),
      probes_(std::move(probes)),
      negatives_(std::move(negatives)),
      stats_(stats) {}

Status AndPostingIterator::FindMatch() {
  PostingIterator* driver = positives_[0].get();
  for (;;) {
    if (!driver->Valid()) {
      valid_ = false;
      done_ = true;
      return Status::Ok();
    }
    ObjectId candidate = driver->Value();
    // Leapfrog over the seekable conjuncts: a mismatch names the next possible
    // candidate, so the driver jumps instead of stepping.
    bool advanced = false;
    for (size_t i = 1; i < positives_.size(); i++) {
      HFAD_RETURN_IF_ERROR(positives_[i]->SeekTo(candidate));
      if (!positives_[i]->Valid()) {
        valid_ = false;  // A positive conjunct is exhausted: nothing further matches.
        done_ = true;
        return Status::Ok();
      }
      if (positives_[i]->Value() != candidate) {
        HFAD_RETURN_IF_ERROR(driver->SeekTo(positives_[i]->Value()));
        advanced = true;
        break;
      }
    }
    if (advanced) {
      continue;
    }
    bool pass = true;
    for (const Probe& p : probes_) {
      HFAD_ASSIGN_OR_RETURN(bool has, p.store->Contains(p.value, candidate));
      if (stats_ != nullptr) {
        stats_->membership_probes++;
      }
      if (has == p.negated) {
        pass = false;
        break;
      }
    }
    if (pass) {
      for (const auto& n : negatives_) {
        HFAD_RETURN_IF_ERROR(n->SeekTo(candidate));
        if (n->Valid() && n->Value() == candidate) {
          pass = false;
          break;
        }
      }
    }
    if (!pass) {
      HFAD_RETURN_IF_ERROR(driver->Next());
      continue;
    }
    valid_ = true;
    value_ = candidate;
    if (stats_ != nullptr) {
      stats_->intermediate_rows++;
    }
    return Status::Ok();
  }
}

Status AndPostingIterator::SeekTo(ObjectId lower_bound) {
  if (done_) {
    valid_ = false;
    return Status::Ok();
  }
  if (valid_ && value_ >= lower_bound) {
    return Status::Ok();
  }
  HFAD_RETURN_IF_ERROR(positives_[0]->SeekTo(lower_bound));
  if (!positioned_) {
    positioned_ = true;
    if (!positives_[0]->Valid() && stats_ != nullptr &&
        (positives_.size() > 1 || !probes_.empty())) {
      stats_->early_exit = true;  // Driver empty: the other conjuncts never open.
    }
  }
  return FindMatch();
}

Status AndPostingIterator::Next() {
  if (done_ || !valid_) {
    valid_ = false;
    return Status::Ok();
  }
  HFAD_RETURN_IF_ERROR(positives_[0]->Next());
  return FindMatch();
}

// ---------------------------------------------------------------- OrPostingIterator

OrPostingIterator::OrPostingIterator(std::vector<std::unique_ptr<PostingIterator>> children,
                                     PlanStats* stats)
    : children_(std::move(children)), stats_(stats) {}

void OrPostingIterator::Reposition() {
  bool any = false;
  ObjectId best = 0;
  for (const auto& c : children_) {
    if (c->Valid() && (!any || c->Value() < best)) {
      best = c->Value();
      any = true;
    }
  }
  valid_ = any;
  value_ = best;
  if (any && stats_ != nullptr) {
    stats_->intermediate_rows++;
  }
}

Status OrPostingIterator::SeekTo(ObjectId lower_bound) {
  if (valid_ && value_ >= lower_bound) {
    return Status::Ok();
  }
  for (const auto& c : children_) {
    HFAD_RETURN_IF_ERROR(c->SeekTo(lower_bound));
  }
  Reposition();
  return Status::Ok();
}

Status OrPostingIterator::Next() {
  if (!valid_) {
    return Status::Ok();
  }
  for (const auto& c : children_) {
    if (c->Valid() && c->Value() == value_) {
      HFAD_RETURN_IF_ERROR(c->Next());
    }
  }
  Reposition();
  return Status::Ok();
}

// ---------------------------------------------------------------- BuildConjunction

Result<std::unique_ptr<PostingIterator>> BuildConjunction(std::vector<Conjunct> conjuncts,
                                                          bool optimize, PlanStats* stats) {
  std::vector<Conjunct*> positives;
  std::vector<Conjunct*> negatives;
  for (Conjunct& c : conjuncts) {
    (c.negated ? negatives : positives).push_back(&c);
  }
  if (positives.empty()) {
    return Status::InvalidArgument(
        "a conjunction needs at least one non-negated term (NOT alone names the "
        "unbounded complement)");
  }
  // The planner's whole job (ablated in bench_query_plan): cheapest conjunct first, so
  // the smallest posting list drives the leapfrog intersection.
  if (optimize) {
    std::stable_sort(positives.begin(), positives.end(), [](const Conjunct* a,
                                                            const Conjunct* b) {
      return a->estimate < b->estimate;
    });
  }
  const uint64_t driver_estimate = positives[0]->estimate;
  auto open = [stats](Conjunct* c) -> Result<std::unique_ptr<PostingIterator>> {
    if (c->iter != nullptr) {
      return std::move(c->iter);
    }
    return c->store->OpenPostings(c->value, stats);
  };
  std::vector<std::unique_ptr<PostingIterator>> pos_iters;
  std::vector<AndPostingIterator::Probe> probes;
  std::vector<std::unique_ptr<PostingIterator>> neg_iters;
  HFAD_ASSIGN_OR_RETURN(auto driver, open(positives[0]));
  if (positives[0]->node != nullptr) {
    positives[0]->node->planner_order = 0;  // The leapfrog driver.
  }
  pos_iters.push_back(std::move(driver));
  for (size_t i = 1; i < positives.size(); i++) {
    Conjunct* c = positives[i];
    if (c->node != nullptr) {
      c->node->planner_order = static_cast<int>(i);
    }
    if (c->iter == nullptr && optimize && ShouldProbe(driver_estimate, c->estimate)) {
      // This conjunct's postings dwarf the driver: probe membership per candidate
      // instead of opening the postings at all.
      if (c->node != nullptr) {
        c->node->degraded_to_probe = true;
      }
      probes.push_back({c->store, std::move(c->value), /*negated=*/false});
      continue;
    }
    HFAD_ASSIGN_OR_RETURN(auto it, open(c));
    pos_iters.push_back(std::move(it));
  }
  for (Conjunct* c : negatives) {
    // Same cost rule inverted: probe only when the negative's postings dwarf the
    // driver; a small negative streams as a seek-filter instead.
    if (c->iter == nullptr && optimize && ShouldProbe(driver_estimate, c->estimate)) {
      if (c->node != nullptr) {
        c->node->degraded_to_probe = true;
      }
      probes.push_back({c->store, std::move(c->value), /*negated=*/true});
      continue;
    }
    HFAD_ASSIGN_OR_RETURN(auto it, open(c));
    neg_iters.push_back(std::move(it));
  }
  if (pos_iters.size() == 1 && probes.empty() && neg_iters.empty()) {
    return std::move(pos_iters[0]);
  }
  return std::unique_ptr<PostingIterator>(std::make_unique<AndPostingIterator>(
      std::move(pos_iters), std::move(probes), std::move(neg_iters), stats));
}

// ---------------------------------------------------------------- helpers

std::unique_ptr<PostingIterator> MakePrefixIterator(const IndexStore* store,
                                                    std::string prefix, PlanStats* stats) {
  auto fill = [store, prefix = std::move(prefix)]() -> Result<std::vector<ObjectId>> {
    std::vector<ObjectId> ids;
    HFAD_RETURN_IF_ERROR(store->ScanValues(prefix, [&](Slice, ObjectId oid) {
      ids.push_back(oid);
      return true;
    }));
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  };
  return std::make_unique<LazyPostingIterator>(std::move(fill), stats);
}

Result<std::vector<ObjectId>> DrainPostings(PostingIterator* it) {
  std::vector<ObjectId> out;
  HFAD_RETURN_IF_ERROR(it->SeekTo(0));
  while (it->Valid()) {
    out.push_back(it->Value());
    HFAD_RETURN_IF_ERROR(it->Next());
  }
  return out;
}

}  // namespace index
}  // namespace hfad
