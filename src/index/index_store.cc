#include "src/index/index_store.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/coding.h"

namespace hfad {
namespace index {

namespace {

std::string OidBytes(ObjectId oid) {
  std::string key(8, '\0');
  for (int i = 7; i >= 0; i--) {
    key[i] = static_cast<char>(oid & 0xff);
    oid >>= 8;
  }
  return key;
}

ObjectId OidFromBytes(Slice b) {
  ObjectId v = 0;
  for (size_t i = 0; i < 8 && i < b.size(); i++) {
    v = (v << 8) | static_cast<uint8_t>(b[i]);
  }
  return v;
}

// Entry key: value '\0' oid. The NUL separator keeps "a" and "ab" prefix-disjoint for
// values that do not themselves contain NUL; values with embedded NUL still work for
// exact lookups because the oid suffix has fixed length.
std::string EntryKey(Slice value, ObjectId oid) {
  std::string key = value.ToString();
  key.push_back('\0');
  key += OidBytes(oid);
  return key;
}

std::string ValuePrefix(Slice value) {
  std::string p = value.ToString();
  p.push_back('\0');
  return p;
}

// Smallest key strictly greater than every key starting with `prefix` ("" = open end,
// for an all-0xff prefix).
std::string PrefixEnd(Slice prefix) {
  std::string end = prefix.ToString();
  while (!end.empty()) {
    if (static_cast<uint8_t>(end.back()) != 0xff) {
      end.back() = static_cast<char>(static_cast<uint8_t>(end.back()) + 1);
      return end;
    }
    end.pop_back();
  }
  return end;
}

}  // namespace

std::vector<ObjectId> IntersectSorted(const std::vector<ObjectId>& a,
                                      const std::vector<ObjectId>& b) {
  std::vector<ObjectId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

// ---------------------------------------------------------------- IndexStore defaults

Result<std::unique_ptr<PostingIterator>> IndexStore::OpenPostings(Slice value,
                                                                  PlanStats* stats) const {
  // Plug-in stores fall back to materializing through their own Lookup; the standard
  // stores override with streaming implementations.
  std::string v = value.ToString();
  return std::unique_ptr<PostingIterator>(std::make_unique<LazyPostingIterator>(
      [this, v]() -> Result<std::vector<ObjectId>> { return Lookup(v); }, stats));
}

Result<std::unique_ptr<PostingIterator>> IndexStore::OpenPrefixPostings(
    Slice prefix, PlanStats* stats) const {
  // Materializing fallback for plug-in stores (one ScanValues pass + sort at first use).
  return MakePrefixIterator(this, prefix.ToString(), stats);
}

Status IndexStore::ApplyBatch(const std::vector<std::pair<std::string, ObjectId>>& adds,
                              const std::vector<std::pair<std::string, ObjectId>>& removes) {
  for (const auto& [value, oid] : adds) {
    HFAD_RETURN_IF_ERROR(Add(value, oid));
  }
  for (const auto& [value, oid] : removes) {
    Status s = Remove(value, oid);
    if (!s.ok() && !s.IsNotFound()) {
      return s;
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------- KeyValueIndexStore

KeyValueIndexStore::KeyValueIndexStore(osd::Osd* volume, std::string tag, uint64_t root)
    : volume_(volume),
      tag_(std::move(tag)),
      root_name_("index/" + tag_),
      tree_(std::make_unique<btree::BTree>(volume->pager(), volume->allocator(), root)),
      last_root_(root) {}

Result<std::unique_ptr<KeyValueIndexStore>> KeyValueIndexStore::Mount(osd::Osd* volume,
                                                                      std::string tag) {
  HFAD_ASSIGN_OR_RETURN(uint64_t root, volume->GetNamedRoot("index/" + tag));
  return std::unique_ptr<KeyValueIndexStore>(
      new KeyValueIndexStore(volume, std::move(tag), root));
}

Status KeyValueIndexStore::SyncRoot() {
  uint64_t root = tree_->root();
  if (root != last_root_) {
    HFAD_RETURN_IF_ERROR(volume_->SetNamedRoot(root_name_, root));
    last_root_ = root;
  }
  return Status::Ok();
}

Status KeyValueIndexStore::Add(Slice value, ObjectId oid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  bool inserted = false;
  HFAD_RETURN_IF_ERROR(tree_->Put(EntryKey(value, oid), Slice(), &inserted));
  if (inserted) {
    // Keep warm cardinality estimates exact; values never estimated stay uncached.
    card_cache_.MutateIfPresent(value.ToString(), [](uint64_t& n) { n++; });
    postings_cache_.Erase(value.ToString());
  }
  return SyncRoot();
}

Status KeyValueIndexStore::Remove(Slice value, ObjectId oid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  HFAD_RETURN_IF_ERROR(tree_->Delete(EntryKey(value, oid)));
  // A warm entry at the cap is clamped, not exact — decrementing it would drift the
  // estimate arbitrarily below the real count (and eventually invert plans), so drop
  // it and let the next estimate rescan.
  bool clamped = false;
  card_cache_.MutateIfPresent(value.ToString(), [&](uint64_t& n) {
    if (n >= kCardEstimateCap) {
      clamped = true;
    } else if (n > 0) {
      n--;
    }
  });
  if (clamped) {
    card_cache_.Erase(value.ToString());
  }
  postings_cache_.Erase(value.ToString());
  return SyncRoot();
}

Status KeyValueIndexStore::ApplyBatch(
    const std::vector<std::pair<std::string, ObjectId>>& adds,
    const std::vector<std::pair<std::string, ObjectId>>& removes) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Sort the ENCODED entry keys, not (value, oid) pairs: the NUL value/oid delimiter
  // makes pair order and key order disagree for values with embedded NUL.
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(adds.size());
  for (const auto& [value, oid] : adds) {
    entries.emplace_back(EntryKey(value, oid), std::string());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  HFAD_RETURN_IF_ERROR(tree_->BulkLoad(entries));
  for (const auto& [value, oid] : removes) {
    Status s = tree_->Delete(EntryKey(value, oid));
    if (!s.ok() && !s.IsNotFound()) {
      return s;
    }
  }
  // Per-value increments are not recoverable from an aggregate batch (adds may have
  // been overwrites), so drop every touched value's cached cardinality and postings
  // and let the next estimate/lookup rescan.
  for (const auto& [value, oid] : adds) {
    card_cache_.Erase(value);
    postings_cache_.Erase(value);
  }
  for (const auto& [value, oid] : removes) {
    card_cache_.Erase(value);
    postings_cache_.Erase(value);
  }
  return SyncRoot();
}

Result<std::vector<ObjectId>> KeyValueIndexStore::Lookup(Slice value) const {
  std::string value_key = value.ToString();
  PostingsRef cached;
  if (postings_cache_.Get(value_key, &cached)) {
    return *cached;
  }
  auto postings = std::make_shared<std::vector<ObjectId>>();
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string prefix = ValuePrefix(value);
  HFAD_RETURN_IF_ERROR(tree_->ScanPrefix(prefix, [&](Slice key, Slice) {
    Slice oid_bytes(key.data() + prefix.size(), key.size() - prefix.size());
    postings->push_back(OidFromBytes(oid_bytes));
    return true;
  }));
  std::vector<ObjectId> out = *postings;  // Prefix scan yields ascending oid order.
  // The fill happens while mu_ is still held shared: mutators hold mu_ exclusive when
  // they Erase this value, so they cannot interleave between our scan and our Put —
  // a cached list is always consistent with some tree state no older than the scan.
  postings_cache_.PutWithEvict(std::move(value_key), std::move(postings),
                               kPostingsCacheMaxEntries /
                                   decltype(postings_cache_)::kNumStripes);
  return out;
}

Result<bool> KeyValueIndexStore::Contains(Slice value, ObjectId oid) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tree_->Contains(EntryKey(value, oid));
}

Result<uint64_t> KeyValueIndexStore::EstimateCardinality(Slice value) const {
  std::string key = value.ToString();
  uint64_t cached = 0;
  if (card_cache_.Get(key, &cached)) {
    return cached;
  }
  uint64_t n = 0;
  std::shared_lock<std::shared_mutex> lock(mu_);
  HFAD_RETURN_IF_ERROR(tree_->ScanPrefix(ValuePrefix(value), [&](Slice, Slice) {
    n++;
    return n < kCardEstimateCap;  // Exact up to the cap; beyond that "large" suffices.
  }));
  // Fill while mu_ is still held shared (same ordering as the postings cache): a racing
  // Add/Remove adjusts warm entries under mu_ exclusive, so it cannot slip between our
  // count and our fill and leave the cached baseline permanently stale.
  card_cache_.PutWithEvict(std::move(key), n,
                           kCardCacheMaxEntries / decltype(card_cache_)::kNumStripes);
  return n;
}

Status KeyValueIndexStore::ScanValues(
    Slice prefix, const std::function<bool(Slice value, ObjectId oid)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tree_->ScanPrefix(prefix, [&](Slice key, Slice) {
    // Split "value \0 oid8": the oid is the fixed-size suffix.
    if (key.size() < 9) {
      return true;  // Malformed entry; skip defensively.
    }
    Slice value(key.data(), key.size() - 9);
    Slice oid_bytes(key.data() + key.size() - 8, 8);
    return fn(value, OidFromBytes(oid_bytes));
  });
}

// Batched streaming iterator over one value's postings: each refill takes mu_ shared,
// scans at most kBatch entries from the current position, and releases the lock — so a
// paginated consumer holds no lock between pulls and never materializes the full list.
// When the very first refill (from oid 0) covers the whole posting list, it doubles as
// a Lookup and fills the postings cache while mu_ is still held shared (same ordering
// argument as Lookup's fill).
class KeyValueIndexStore::ScanIterator : public PostingIterator {
 public:
  static constexpr size_t kBatch = 1024;

  ScanIterator(const KeyValueIndexStore* store, std::string value, PlanStats* stats)
      : store_(store),
        value_(std::move(value)),
        prefix_(ValuePrefix(value_)),
        end_key_(value_ + '\x01'),  // First key after the "value \0 ..." range.
        stats_(stats) {}

  bool Valid() const override { return positioned_ && idx_ < buf_.size(); }
  ObjectId Value() const override { return buf_[idx_]; }

  Status Next() override {
    if (!Valid()) {
      return Status::Ok();
    }
    idx_++;
    if (idx_ >= buf_.size() && !exhausted_) {
      return Refill(next_start_);
    }
    return Status::Ok();
  }

  Status SeekTo(ObjectId lower_bound) override {
    if (Valid() && buf_[idx_] >= lower_bound) {
      return Status::Ok();
    }
    if (positioned_) {
      idx_ = std::lower_bound(buf_.begin() + static_cast<ptrdiff_t>(idx_), buf_.end(),
                              lower_bound) -
             buf_.begin();
      if (idx_ < buf_.size() || exhausted_) {
        return Status::Ok();
      }
    }
    positioned_ = true;
    return Refill(std::max(lower_bound, next_start_));
  }

 private:
  Status Refill(ObjectId from) {
    buf_.clear();
    idx_ = 0;
    positioned_ = true;
    bool more = false;
    std::string start = prefix_ + OidBytes(from);
    {
      std::shared_lock<std::shared_mutex> lock(store_->mu_);
      HFAD_RETURN_IF_ERROR(store_->tree_->Scan(start, end_key_, [&](Slice key, Slice) {
        if (buf_.size() == kBatch) {
          more = true;
          return false;
        }
        buf_.push_back(OidFromBytes(Slice(key.data() + key.size() - 8, 8)));
        return true;
      }));
      if (first_fetch_ && from == 0 && !more) {
        store_->postings_cache_.PutWithEvict(
            value_, std::make_shared<const std::vector<ObjectId>>(buf_),
            kPostingsCacheMaxEntries / decltype(store_->postings_cache_)::kNumStripes);
      }
    }
    if (stats_ != nullptr) {
      if (first_fetch_) {
        stats_->index_lookups++;
      }
      stats_->rows_scanned += buf_.size();
    }
    first_fetch_ = false;
    exhausted_ = !more;
    next_start_ = buf_.empty() ? from : buf_.back() + 1;
    return Status::Ok();
  }

  const KeyValueIndexStore* const store_;
  const std::string value_;
  const std::string prefix_;
  const std::string end_key_;
  PlanStats* const stats_;
  std::vector<ObjectId> buf_;
  size_t idx_ = 0;
  ObjectId next_start_ = 0;
  bool positioned_ = false;
  bool exhausted_ = false;
  bool first_fetch_ = true;
};

Result<std::unique_ptr<PostingIterator>> KeyValueIndexStore::OpenPostings(
    Slice value, PlanStats* stats) const {
  PostingsRef cached;
  if (postings_cache_.Get(value.ToString(), &cached)) {
    return std::unique_ptr<PostingIterator>(
        std::make_unique<VectorPostingIterator>(std::move(cached), stats));
  }
  return std::unique_ptr<PostingIterator>(
      std::make_unique<ScanIterator>(this, value.ToString(), stats));
}

// Streaming `prefix*` execution. First use runs a skip-seek DISCOVERY pass: one bounded
// btree scan segment at a time (store lock held per segment only). Values with only a
// few postings are absorbed as they are scanned into one sorted side buffer — a
// directory-style prefix (many values, a posting or two each) therefore costs exactly
// one range scan, no per-value descents. A value that shows a long posting run is
// instead PROMOTED to a lazy batched stream (the same ScanIterator the exact-match path
// uses) and discovery seeks straight past its remaining postings without reading them.
// Emission merges the side buffer and the streams through a min-heap keyed on each
// source's current oid, with duplicate collapse — so a page over a prefix dominated by
// huge posting lists costs O(page) batch refills, never a full materialization.
class KeyValueIndexStore::PrefixMergeIterator : public PostingIterator {
 public:
  // Postings of one value scanned (and side-buffered) before discovery promotes the
  // value to a stream and jumps over the rest.
  static constexpr int kSkipRunLength = 8;
  // Entries per discovery scan segment (lock released between segments).
  static constexpr size_t kDiscoverBatch = 1024;

  PrefixMergeIterator(const KeyValueIndexStore* store, std::string prefix,
                      PlanStats* stats)
      : store_(store), prefix_(std::move(prefix)), stats_(stats) {}

  bool Valid() const override { return valid_; }
  ObjectId Value() const override { return value_; }

  Status SeekTo(ObjectId lower_bound) override {
    if (!positioned_) {
      HFAD_RETURN_IF_ERROR(Discover());
      positioned_ = true;
      if (stats_ != nullptr) {
        stats_->index_lookups++;
      }
      for (const auto& stream : streams_) {
        HFAD_RETURN_IF_ERROR(stream->SeekTo(lower_bound));
        if (stream->Valid()) {
          heap_.push_back(stream.get());
        }
      }
      std::make_heap(heap_.begin(), heap_.end(), HeapGreater);
      Reposition();
      return Status::Ok();
    }
    if (valid_ && value_ >= lower_bound) {
      return Status::Ok();
    }
    while (!heap_.empty() && heap_.front()->Value() < lower_bound) {
      PostingIterator* stream = PopTop();
      HFAD_RETURN_IF_ERROR(stream->SeekTo(lower_bound));
      PushIfValid(stream);
    }
    Reposition();
    return Status::Ok();
  }

  Status Next() override {
    if (!valid_) {
      return Status::Ok();
    }
    // Advance every stream sitting on the current oid — that is the duplicate collapse.
    while (!heap_.empty() && heap_.front()->Value() == value_) {
      PostingIterator* stream = PopTop();
      HFAD_RETURN_IF_ERROR(stream->Next());
      PushIfValid(stream);
    }
    Reposition();
    return Status::Ok();
  }

 private:
  static bool HeapGreater(const PostingIterator* a, const PostingIterator* b) {
    return a->Value() > b->Value();  // std:: heap functions build a max-heap; invert.
  }

  PostingIterator* PopTop() {
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater);
    PostingIterator* top = heap_.back();
    heap_.pop_back();
    return top;
  }

  void PushIfValid(PostingIterator* stream) {
    if (stream->Valid()) {
      heap_.push_back(stream);
      std::push_heap(heap_.begin(), heap_.end(), HeapGreater);
    }
  }

  void Reposition() {
    valid_ = !heap_.empty();
    if (valid_) {
      value_ = heap_.front()->Value();
      if (stats_ != nullptr) {
        stats_->intermediate_rows++;
      }
    }
  }

  Status Discover() {
    std::string start = prefix_;
    const std::string end = PrefixEnd(prefix_);
    std::string cur;                 // Value currently being scanned.
    std::vector<ObjectId> cur_oids;  // Its postings seen so far (scan = ascending oid).
    bool have_cur = false;
    std::vector<ObjectId> buffered;     // Absorbed postings of small values.
    std::vector<std::string> promoted;  // Values handed to lazy streams.
    auto flush_cur = [&] {
      buffered.insert(buffered.end(), cur_oids.begin(), cur_oids.end());
      cur_oids.clear();
    };
    for (;;) {
      std::string resume;
      size_t scanned = 0;
      std::string last_key;
      {
        std::shared_lock<std::shared_mutex> lock(store_->mu_);
        HFAD_RETURN_IF_ERROR(store_->tree_->Scan(start, end, [&](Slice key, Slice) {
          scanned++;
          last_key.assign(key.data(), key.size());
          if (key.size() < 9) {
            return scanned < kDiscoverBatch;  // Malformed entry; skip defensively.
          }
          Slice value(key.data(), key.size() - 9);
          ObjectId oid = OidFromBytes(Slice(key.data() + key.size() - 8, 8));
          if (!have_cur || value != Slice(cur)) {
            flush_cur();
            cur.assign(value.data(), value.size());
            have_cur = true;
            cur_oids.push_back(oid);
            return scanned < kDiscoverBatch;
          }
          cur_oids.push_back(oid);
          if (cur_oids.size() >= kSkipRunLength) {
            // A real posting run: let a lazy stream own the whole value (dropping what
            // was buffered so far — the stream re-reads it in 1024-entry batches) and
            // seek discovery straight past its remaining postings.
            cur_oids.clear();
            promoted.push_back(cur);
            resume = cur + '\x01';
            return false;
          }
          return scanned < kDiscoverBatch;
        }));
      }
      if (!resume.empty()) {
        start = std::move(resume);  // Skip-seek past the promoted value's postings.
        have_cur = false;           // cur was promoted; never absorb it again.
        continue;
      }
      if (scanned >= kDiscoverBatch) {
        start = last_key + '\0';  // Segment boundary: resume at the key successor.
        continue;
      }
      break;  // Scan ran off the prefix range: discovery complete.
    }
    flush_cur();
    if (stats_ != nullptr) {
      stats_->rows_scanned += buffered.size();
    }
    std::sort(buffered.begin(), buffered.end());
    buffered.erase(std::unique(buffered.begin(), buffered.end()), buffered.end());
    if (!buffered.empty()) {
      // Stats already counted above, so the vector iterator gets none.
      streams_.push_back(
          std::make_unique<VectorPostingIterator>(std::move(buffered), nullptr));
    }
    for (const std::string& value : promoted) {
      streams_.push_back(std::make_unique<ScanIterator>(store_, value, stats_));
    }
    return Status::Ok();
  }

  const KeyValueIndexStore* const store_;
  const std::string prefix_;
  PlanStats* const stats_;
  std::vector<std::unique_ptr<PostingIterator>> streams_;
  std::vector<PostingIterator*> heap_;
  bool positioned_ = false;
  bool valid_ = false;
  ObjectId value_ = 0;
};

Result<std::unique_ptr<PostingIterator>> KeyValueIndexStore::OpenPrefixPostings(
    Slice prefix, PlanStats* stats) const {
  return std::unique_ptr<PostingIterator>(
      std::make_unique<PrefixMergeIterator>(this, prefix.ToString(), stats));
}

// ---------------------------------------------------------------- FullTextIndexStore

FullTextIndexStore::FullTextIndexStore(osd::Osd* volume, uint64_t root)
    : volume_(volume),
      tree_(std::make_unique<btree::BTree>(volume->pager(), volume->allocator(), root)),
      engine_(std::make_unique<fulltext::FullTextIndex>(tree_.get())),
      last_root_(root) {}

Result<std::unique_ptr<FullTextIndexStore>> FullTextIndexStore::Mount(osd::Osd* volume) {
  HFAD_ASSIGN_OR_RETURN(uint64_t root, volume->GetNamedRoot("index/FULLTEXT"));
  return std::unique_ptr<FullTextIndexStore>(new FullTextIndexStore(volume, root));
}

Status FullTextIndexStore::SyncRoot() {
  uint64_t root = tree_->root();
  if (root != last_root_) {
    HFAD_RETURN_IF_ERROR(volume_->SetNamedRoot("index/FULLTEXT", root));
    last_root_ = root;
  }
  return Status::Ok();
}

Status FullTextIndexStore::Add(Slice content, ObjectId oid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  HFAD_RETURN_IF_ERROR(engine_->IndexDocument(oid, content));
  return SyncRoot();
}

Status FullTextIndexStore::Remove(Slice, ObjectId oid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  HFAD_RETURN_IF_ERROR(engine_->RemoveDocument(oid));
  return SyncRoot();
}

Result<std::vector<ObjectId>> FullTextIndexStore::Lookup(Slice term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return engine_->Postings(term.ToString());
}

Result<bool> FullTextIndexStore::Contains(Slice term, ObjectId oid) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return engine_->ContainsPosting(term.ToString(), oid);
}

Result<uint64_t> FullTextIndexStore::EstimateCardinality(Slice term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return engine_->DocumentFrequency(term.ToString());
}

// Streams one term's posting range from the inverted index ("P" term '\0' oid keys) in
// batches, store lock held shared only during each refill.
class FullTextIndexStore::ScanIterator : public PostingIterator {
 public:
  static constexpr size_t kBatch = 1024;

  ScanIterator(const FullTextIndexStore* store, std::string term, PlanStats* stats)
      : store_(store), term_(std::move(term)), stats_(stats) {}

  bool Valid() const override { return positioned_ && idx_ < buf_.size(); }
  ObjectId Value() const override { return buf_[idx_]; }

  Status Next() override {
    if (!Valid()) {
      return Status::Ok();
    }
    idx_++;
    if (idx_ >= buf_.size() && !exhausted_) {
      return Refill(next_start_);
    }
    return Status::Ok();
  }

  Status SeekTo(ObjectId lower_bound) override {
    if (Valid() && buf_[idx_] >= lower_bound) {
      return Status::Ok();
    }
    if (positioned_) {
      idx_ = std::lower_bound(buf_.begin() + static_cast<ptrdiff_t>(idx_), buf_.end(),
                              lower_bound) -
             buf_.begin();
      if (idx_ < buf_.size() || exhausted_) {
        return Status::Ok();
      }
    }
    positioned_ = true;
    return Refill(std::max(lower_bound, next_start_));
  }

 private:
  Status Refill(ObjectId from) {
    buf_.clear();
    idx_ = 0;
    positioned_ = true;
    bool more = false;
    {
      std::shared_lock<std::shared_mutex> lock(store_->mu_);
      HFAD_RETURN_IF_ERROR(
          store_->engine_->ScanPostingDocs(term_, from, [&](uint64_t docid) {
            if (buf_.size() == kBatch) {
              more = true;
              return false;
            }
            buf_.push_back(docid);
            return true;
          }));
    }
    if (stats_ != nullptr) {
      if (first_fetch_) {
        stats_->index_lookups++;
      }
      stats_->rows_scanned += buf_.size();
    }
    first_fetch_ = false;
    exhausted_ = !more;
    next_start_ = buf_.empty() ? from : buf_.back() + 1;
    return Status::Ok();
  }

  const FullTextIndexStore* const store_;
  const std::string term_;  // Already normalized.
  PlanStats* const stats_;
  std::vector<ObjectId> buf_;
  size_t idx_ = 0;
  ObjectId next_start_ = 0;
  bool positioned_ = false;
  bool exhausted_ = false;
  bool first_fetch_ = true;
};

Result<std::unique_ptr<PostingIterator>> FullTextIndexStore::OpenPostings(
    Slice term, PlanStats* stats) const {
  std::string norm = fulltext::NormalizeTerm(term);
  if (norm.empty()) {
    return Status::InvalidArgument("term has no indexable characters");
  }
  return std::unique_ptr<PostingIterator>(
      std::make_unique<ScanIterator>(this, std::move(norm), stats));
}

// ---------------------------------------------------------------- IdIndexStore

Result<std::vector<ObjectId>> IdIndexStore::Lookup(Slice value) const {
  if (value.empty() || value.size() > 20) {
    return Status::InvalidArgument("ID value must be a decimal object id");
  }
  ObjectId oid = 0;
  for (size_t i = 0; i < value.size(); i++) {
    if (value[i] < '0' || value[i] > '9') {
      return Status::InvalidArgument("ID value must be a decimal object id");
    }
    oid = oid * 10 + static_cast<ObjectId>(value[i] - '0');
  }
  if (!volume_->Exists(oid)) {
    return std::vector<ObjectId>{};
  }
  return std::vector<ObjectId>{oid};
}

// ---------------------------------------------------------------- IndexCollection

Result<std::unique_ptr<IndexCollection>> IndexCollection::Mount(osd::Osd* volume) {
  std::unique_ptr<IndexCollection> c(new IndexCollection());
  for (std::string_view tag : {kTagPosix, kTagUser, kTagUdef, kTagApp}) {
    HFAD_ASSIGN_OR_RETURN(auto store, KeyValueIndexStore::Mount(volume, std::string(tag)));
    HFAD_RETURN_IF_ERROR(c->Register(std::move(store)));
  }
  HFAD_ASSIGN_OR_RETURN(auto ft, FullTextIndexStore::Mount(volume));
  HFAD_RETURN_IF_ERROR(c->Register(std::move(ft)));
  HFAD_RETURN_IF_ERROR(c->Register(std::make_unique<IdIndexStore>(volume)));
  return c;
}

Status IndexCollection::Register(std::unique_ptr<IndexStore> store) {
  std::string tag(store->tag());
  auto [it, inserted] = stores_.emplace(std::move(tag), std::move(store));
  if (!inserted) {
    return Status::AlreadyExists("index store for tag '" + it->first +
                                 "' already registered");
  }
  return Status::Ok();
}

IndexStore* IndexCollection::store(std::string_view tag) {
  auto it = stores_.find(tag);
  return it == stores_.end() ? nullptr : it->second.get();
}

const IndexStore* IndexCollection::store(std::string_view tag) const {
  auto it = stores_.find(tag);
  return it == stores_.end() ? nullptr : it->second.get();
}

std::vector<std::string> IndexCollection::tags() const {
  std::vector<std::string> out;
  out.reserve(stores_.size());
  for (const auto& [tag, store] : stores_) {
    out.push_back(tag);
  }
  return out;
}

Result<std::unique_ptr<PostingIterator>> IndexCollection::OpenLookupIterator(
    const std::vector<TagValue>& terms, PlanStats* stats) const {
  if (terms.empty()) {
    return Status::InvalidArgument("naming lookup needs at least one tag/value pair");
  }
  std::vector<Conjunct> conjuncts;
  conjuncts.reserve(terms.size());
  for (const TagValue& term : terms) {
    const IndexStore* s = store(term.tag);
    if (s == nullptr) {
      return Status::NotFound("no index store for tag '" + term.tag + "'");
    }
    Conjunct c;
    c.store = s;
    c.value = term.value;
    c.estimate = kUnknownCardinality;
    if (terms.size() > 1) {
      auto est = s->EstimateCardinality(term.value);
      if (est.ok()) {
        c.estimate = *est;
      }
    }
    conjuncts.push_back(std::move(c));
  }
  return BuildConjunction(std::move(conjuncts), /*optimize=*/true, stats);
}

Result<std::vector<ObjectId>> IndexCollection::Lookup(
    const std::vector<TagValue>& terms) const {
  HFAD_ASSIGN_OR_RETURN(auto it, OpenLookupIterator(terms));
  return DrainPostings(it.get());
}

}  // namespace index
}  // namespace hfad
