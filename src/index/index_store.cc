#include "src/index/index_store.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/coding.h"

namespace hfad {
namespace index {

namespace {

std::string OidBytes(ObjectId oid) {
  std::string key(8, '\0');
  for (int i = 7; i >= 0; i--) {
    key[i] = static_cast<char>(oid & 0xff);
    oid >>= 8;
  }
  return key;
}

ObjectId OidFromBytes(Slice b) {
  ObjectId v = 0;
  for (size_t i = 0; i < 8 && i < b.size(); i++) {
    v = (v << 8) | static_cast<uint8_t>(b[i]);
  }
  return v;
}

// Entry key: value '\0' oid. The NUL separator keeps "a" and "ab" prefix-disjoint for
// values that do not themselves contain NUL; values with embedded NUL still work for
// exact lookups because the oid suffix has fixed length.
std::string EntryKey(Slice value, ObjectId oid) {
  std::string key = value.ToString();
  key.push_back('\0');
  key += OidBytes(oid);
  return key;
}

std::string ValuePrefix(Slice value) {
  std::string p = value.ToString();
  p.push_back('\0');
  return p;
}

}  // namespace

std::vector<ObjectId> IntersectSorted(const std::vector<ObjectId>& a,
                                      const std::vector<ObjectId>& b) {
  std::vector<ObjectId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

// ---------------------------------------------------------------- KeyValueIndexStore

KeyValueIndexStore::KeyValueIndexStore(osd::Osd* volume, std::string tag, uint64_t root)
    : volume_(volume),
      tag_(std::move(tag)),
      root_name_("index/" + tag_),
      tree_(std::make_unique<btree::BTree>(volume->pager(), volume->allocator(), root)),
      last_root_(root) {}

Result<std::unique_ptr<KeyValueIndexStore>> KeyValueIndexStore::Mount(osd::Osd* volume,
                                                                      std::string tag) {
  HFAD_ASSIGN_OR_RETURN(uint64_t root, volume->GetNamedRoot("index/" + tag));
  return std::unique_ptr<KeyValueIndexStore>(
      new KeyValueIndexStore(volume, std::move(tag), root));
}

Status KeyValueIndexStore::SyncRoot() {
  uint64_t root = tree_->root();
  if (root != last_root_) {
    HFAD_RETURN_IF_ERROR(volume_->SetNamedRoot(root_name_, root));
    last_root_ = root;
  }
  return Status::Ok();
}

Status KeyValueIndexStore::Add(Slice value, ObjectId oid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  bool inserted = false;
  HFAD_RETURN_IF_ERROR(tree_->Put(EntryKey(value, oid), Slice(), &inserted));
  if (inserted) {
    // Keep warm cardinality estimates exact; values never estimated stay uncached.
    card_cache_.MutateIfPresent(value.ToString(), [](uint64_t& n) { n++; });
    postings_cache_.Erase(value.ToString());
  }
  return SyncRoot();
}

Status KeyValueIndexStore::Remove(Slice value, ObjectId oid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  HFAD_RETURN_IF_ERROR(tree_->Delete(EntryKey(value, oid)));
  card_cache_.MutateIfPresent(value.ToString(), [](uint64_t& n) {
    if (n > 0) {
      n--;
    }
  });
  postings_cache_.Erase(value.ToString());
  return SyncRoot();
}

Result<std::vector<ObjectId>> KeyValueIndexStore::Lookup(Slice value) const {
  std::string value_key = value.ToString();
  PostingsRef cached;
  if (postings_cache_.Get(value_key, &cached)) {
    return *cached;
  }
  auto postings = std::make_shared<std::vector<ObjectId>>();
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string prefix = ValuePrefix(value);
  HFAD_RETURN_IF_ERROR(tree_->ScanPrefix(prefix, [&](Slice key, Slice) {
    Slice oid_bytes(key.data() + prefix.size(), key.size() - prefix.size());
    postings->push_back(OidFromBytes(oid_bytes));
    return true;
  }));
  std::vector<ObjectId> out = *postings;  // Prefix scan yields ascending oid order.
  // The fill happens while mu_ is still held shared: mutators hold mu_ exclusive when
  // they Erase this value, so they cannot interleave between our scan and our Put —
  // a cached list is always consistent with some tree state no older than the scan.
  postings_cache_.PutWithEvict(std::move(value_key), std::move(postings),
                               kPostingsCacheMaxEntries /
                                   decltype(postings_cache_)::kNumStripes);
  return out;
}

Result<bool> KeyValueIndexStore::Contains(Slice value, ObjectId oid) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tree_->Contains(EntryKey(value, oid));
}

Result<uint64_t> KeyValueIndexStore::EstimateCardinality(Slice value) const {
  std::string key = value.ToString();
  uint64_t cached = 0;
  if (card_cache_.Get(key, &cached)) {
    return cached;
  }
  uint64_t n = 0;
  std::shared_lock<std::shared_mutex> lock(mu_);
  HFAD_RETURN_IF_ERROR(tree_->ScanPrefix(ValuePrefix(value), [&](Slice, Slice) {
    n++;
    return n < 1024;  // Exact up to a cap; beyond that "large" is all the optimizer needs.
  }));
  // Fill while mu_ is still held shared (same ordering as the postings cache): a racing
  // Add/Remove adjusts warm entries under mu_ exclusive, so it cannot slip between our
  // count and our fill and leave the cached baseline permanently stale.
  card_cache_.PutWithEvict(std::move(key), n,
                           kCardCacheMaxEntries / decltype(card_cache_)::kNumStripes);
  return n;
}

Status KeyValueIndexStore::ScanValues(
    Slice prefix, const std::function<bool(Slice value, ObjectId oid)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tree_->ScanPrefix(prefix, [&](Slice key, Slice) {
    // Split "value \0 oid8": the oid is the fixed-size suffix.
    if (key.size() < 9) {
      return true;  // Malformed entry; skip defensively.
    }
    Slice value(key.data(), key.size() - 9);
    Slice oid_bytes(key.data() + key.size() - 8, 8);
    return fn(value, OidFromBytes(oid_bytes));
  });
}

// ---------------------------------------------------------------- FullTextIndexStore

FullTextIndexStore::FullTextIndexStore(osd::Osd* volume, uint64_t root)
    : volume_(volume),
      tree_(std::make_unique<btree::BTree>(volume->pager(), volume->allocator(), root)),
      engine_(std::make_unique<fulltext::FullTextIndex>(tree_.get())),
      last_root_(root) {}

Result<std::unique_ptr<FullTextIndexStore>> FullTextIndexStore::Mount(osd::Osd* volume) {
  HFAD_ASSIGN_OR_RETURN(uint64_t root, volume->GetNamedRoot("index/FULLTEXT"));
  return std::unique_ptr<FullTextIndexStore>(new FullTextIndexStore(volume, root));
}

Status FullTextIndexStore::SyncRoot() {
  uint64_t root = tree_->root();
  if (root != last_root_) {
    HFAD_RETURN_IF_ERROR(volume_->SetNamedRoot("index/FULLTEXT", root));
    last_root_ = root;
  }
  return Status::Ok();
}

Status FullTextIndexStore::Add(Slice content, ObjectId oid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  HFAD_RETURN_IF_ERROR(engine_->IndexDocument(oid, content));
  return SyncRoot();
}

Status FullTextIndexStore::Remove(Slice, ObjectId oid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  HFAD_RETURN_IF_ERROR(engine_->RemoveDocument(oid));
  return SyncRoot();
}

Result<std::vector<ObjectId>> FullTextIndexStore::Lookup(Slice term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return engine_->Postings(term.ToString());
}

Result<bool> FullTextIndexStore::Contains(Slice term, ObjectId oid) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return engine_->ContainsPosting(term.ToString(), oid);
}

Result<uint64_t> FullTextIndexStore::EstimateCardinality(Slice term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return engine_->DocumentFrequency(term.ToString());
}

// ---------------------------------------------------------------- IdIndexStore

Result<std::vector<ObjectId>> IdIndexStore::Lookup(Slice value) const {
  if (value.empty() || value.size() > 20) {
    return Status::InvalidArgument("ID value must be a decimal object id");
  }
  ObjectId oid = 0;
  for (size_t i = 0; i < value.size(); i++) {
    if (value[i] < '0' || value[i] > '9') {
      return Status::InvalidArgument("ID value must be a decimal object id");
    }
    oid = oid * 10 + static_cast<ObjectId>(value[i] - '0');
  }
  if (!volume_->Exists(oid)) {
    return std::vector<ObjectId>{};
  }
  return std::vector<ObjectId>{oid};
}

// ---------------------------------------------------------------- IndexCollection

Result<std::unique_ptr<IndexCollection>> IndexCollection::Mount(osd::Osd* volume) {
  std::unique_ptr<IndexCollection> c(new IndexCollection());
  for (std::string_view tag : {kTagPosix, kTagUser, kTagUdef, kTagApp}) {
    HFAD_ASSIGN_OR_RETURN(auto store, KeyValueIndexStore::Mount(volume, std::string(tag)));
    HFAD_RETURN_IF_ERROR(c->Register(std::move(store)));
  }
  HFAD_ASSIGN_OR_RETURN(auto ft, FullTextIndexStore::Mount(volume));
  HFAD_RETURN_IF_ERROR(c->Register(std::move(ft)));
  HFAD_RETURN_IF_ERROR(c->Register(std::make_unique<IdIndexStore>(volume)));
  return c;
}

Status IndexCollection::Register(std::unique_ptr<IndexStore> store) {
  std::string tag(store->tag());
  auto [it, inserted] = stores_.emplace(std::move(tag), std::move(store));
  if (!inserted) {
    return Status::AlreadyExists("index store for tag '" + it->first +
                                 "' already registered");
  }
  return Status::Ok();
}

IndexStore* IndexCollection::store(std::string_view tag) {
  auto it = stores_.find(tag);
  return it == stores_.end() ? nullptr : it->second.get();
}

const IndexStore* IndexCollection::store(std::string_view tag) const {
  auto it = stores_.find(tag);
  return it == stores_.end() ? nullptr : it->second.get();
}

std::vector<std::string> IndexCollection::tags() const {
  std::vector<std::string> out;
  out.reserve(stores_.size());
  for (const auto& [tag, store] : stores_) {
    out.push_back(tag);
  }
  return out;
}

Result<std::vector<ObjectId>> IndexCollection::Lookup(
    const std::vector<TagValue>& terms) const {
  if (terms.empty()) {
    return Status::InvalidArgument("naming lookup needs at least one tag/value pair");
  }
  struct Conjunct {
    const IndexStore* store;
    const TagValue* term;
    uint64_t estimate;
  };
  constexpr uint64_t kUnknown = std::numeric_limits<uint64_t>::max() / 4;
  std::vector<Conjunct> plan;
  plan.reserve(terms.size());
  for (const TagValue& term : terms) {
    const IndexStore* s = store(term.tag);
    if (s == nullptr) {
      return Status::NotFound("no index store for tag '" + term.tag + "'");
    }
    uint64_t estimate = kUnknown;
    if (terms.size() > 1) {
      auto est = s->EstimateCardinality(term.value);
      if (est.ok()) {
        estimate = *est;
      }
    }
    plan.push_back({s, &term, estimate});
  }
  // Cheapest conjunct first: the smallest postings list bounds every intersection that
  // follows (and an empty one ends the lookup before the expensive terms run at all).
  std::stable_sort(plan.begin(), plan.end(),
                   [](const Conjunct& a, const Conjunct& b) {
                     return a.estimate < b.estimate;
                   });
  std::vector<ObjectId> result;
  bool first = true;
  for (const Conjunct& c : plan) {
    if (first) {
      HFAD_ASSIGN_OR_RETURN(result, c.store->Lookup(c.term->value));
      first = false;
    } else if (result.size() * 8 < c.estimate) {
      // The running intersection is small relative to this conjunct: probe membership
      // per candidate instead of materializing the postings (the query engine's plan
      // for AND nodes; the 8x factor matches a probe's descent cost vs. a scan step).
      std::vector<ObjectId> kept;
      kept.reserve(result.size());
      for (ObjectId oid : result) {
        HFAD_ASSIGN_OR_RETURN(bool has, c.store->Contains(c.term->value, oid));
        if (has) {
          kept.push_back(oid);
        }
      }
      result = std::move(kept);
    } else {
      HFAD_ASSIGN_OR_RETURN(std::vector<ObjectId> ids, c.store->Lookup(c.term->value));
      result = IntersectSorted(result, ids);
    }
    if (result.empty()) {
      break;  // Conjunction already empty.
    }
  }
  return result;
}

}  // namespace index
}  // namespace hfad
