// Extensible index stores (§3.2) and the Table 1 tag taxonomy.
//
// "Given one or more type/value specifications, the collection of index stores must
// return a list of object IDs matching the search terms." Each IndexStore maps values of
// one tag to object ids; the IndexCollection dispatches a tag/value vector across stores
// and intersects the results (§3.1.1 conjunction semantics).
//
// Standard stores (Table 1):
//   POSIX     pathname        -> KeyValueIndexStore    (the POSIX layer names through this)
//   FULLTEXT  search term     -> FullTextIndexStore    (inverted index + BM25)
//   USER      logname         -> KeyValueIndexStore
//   UDEF      annotation      -> KeyValueIndexStore    (manual user tags)
//   APP       application     -> KeyValueIndexStore
//   ID        object id       -> IdIndexStore          (fastpath, no storage)
//
// The paper's open question #1 — "should hFAD support arbitrary types of indexing
// through, for example, a plug-in model?" — is answered yes: IndexCollection::Register
// accepts any IndexStore implementation for a new tag (see ImageIndexStore in the tests
// for a worked example).
#ifndef HFAD_SRC_INDEX_INDEX_STORE_H_
#define HFAD_SRC_INDEX_INDEX_STORE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/btree/btree.h"
#include "src/common/sharded_lock.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/fulltext/fulltext.h"
#include "src/index/posting_iterator.h"
#include "src/osd/osd.h"

namespace hfad {
namespace index {

using osd::ObjectId;

// Table 1 tag names.
inline constexpr std::string_view kTagPosix = "POSIX";
inline constexpr std::string_view kTagFulltext = "FULLTEXT";
inline constexpr std::string_view kTagUser = "USER";
inline constexpr std::string_view kTagUdef = "UDEF";
inline constexpr std::string_view kTagApp = "APP";
inline constexpr std::string_view kTagId = "ID";

// One tag/value naming term (§3.1.1).
struct TagValue {
  std::string tag;
  std::string value;
};

// Interface every index store implements. Values are tag-specific byte strings; the tag
// "tells hFAD how to interpret the value and in which of multiple indexes to search".
//
// Thread safety: implementations must be internally synchronized with reader/writer
// separation — Add/Remove exclusive, the read methods shared — so that concurrent
// queries on one store proceed in parallel and never block each other (see
// docs/CONCURRENCY.md). Cross-store operations need no shared lock at all: independent
// indexes have no common ancestor to synchronize through (§2.3).
class IndexStore {
 public:
  virtual ~IndexStore() = default;

  // Tag this store serves ("POSIX", "FULLTEXT", ...).
  virtual std::string_view tag() const = 0;

  // Associate value -> oid. Idempotent per (value, oid) pair.
  virtual Status Add(Slice value, ObjectId oid) = 0;

  // Remove one association. NotFound when absent.
  virtual Status Remove(Slice value, ObjectId oid) = 0;

  // Apply a batch of deferred mutations — the background indexer's write path. Adds
  // apply before removes; removing an absent association is NOT an error here (a
  // deferred remove legitimately chases an add that was collapsed away). The default
  // loops Add/Remove, correct for any plug-in store; KeyValueIndexStore overrides it
  // with one lock acquisition and a sorted Btree::BulkLoad.
  virtual Status ApplyBatch(const std::vector<std::pair<std::string, ObjectId>>& adds,
                            const std::vector<std::pair<std::string, ObjectId>>& removes);

  // All objects associated with the value, ascending oid order.
  virtual Result<std::vector<ObjectId>> Lookup(Slice value) const = 0;

  // Point membership test: is (value, oid) associated? The query engine probes this
  // instead of materializing large postings when the running intersection is small.
  virtual Result<bool> Contains(Slice value, ObjectId oid) const = 0;

  // Estimated result size of Lookup(value); used by the query optimizer to order
  // conjuncts. Exact sizes are not required — relative order is what matters.
  virtual Result<uint64_t> EstimateCardinality(Slice value) const = 0;

  // Seekable pull iterator over Lookup(value)'s postings (ascending oid) — the primitive
  // the unified planner/iterator path executes on. The default materializes through
  // Lookup (correct for any plug-in store); the standard stores stream in batches so
  // paginated consumers never pay for the full posting list. The iterator must not
  // outlive the store and observes concurrent mutations with per-batch consistency.
  virtual Result<std::unique_ptr<PostingIterator>> OpenPostings(
      Slice value, PlanStats* stats = nullptr) const;

  // Enumerate (value, oid) pairs whose value starts with prefix, in value order. Stores
  // that cannot enumerate (e.g. the ID fastpath) return NotSupported.
  virtual Status ScanValues(
      Slice prefix, const std::function<bool(Slice value, ObjectId oid)>& fn) const = 0;

  // All objects carrying ANY value that starts with `prefix` (ascending oid,
  // deduplicated) behind the same pull interface — the executor for `tag:prefix*` terms
  // and POSIX directory enumeration. The default materializes through ScanValues
  // (correct for any plug-in store); KeyValueIndexStore overrides it with a streaming
  // merge so a page over a huge prefix never materializes the full posting set.
  // Prefix enumeration is defined only over values WITHOUT embedded NUL bytes: the
  // standard key encoding uses NUL as the value/oid delimiter (see index_store.cc),
  // so values containing NUL support exact-match naming only.
  virtual Result<std::unique_ptr<PostingIterator>> OpenPrefixPostings(
      Slice prefix, PlanStats* stats = nullptr) const;
};

// Btree-backed exact-match store: one entry per (value, oid) pair, so a value can name
// many objects and an object can carry many values — naming decoupled from access (§2.2).
class KeyValueIndexStore : public IndexStore {
 public:
  // Estimates are exact up to this cap; beyond it "large" is all the planner needs. A
  // cached entry at the cap is clamped, so Remove invalidates rather than decrements it
  // (decrementing a clamped value would drift it arbitrarily below the real count).
  static constexpr uint64_t kCardEstimateCap = 1024;

  // Opens (creating on first use) the backing btree registered on `volume` under the
  // named root "index/<tag>". The store keeps the registration current as its root moves.
  static Result<std::unique_ptr<KeyValueIndexStore>> Mount(osd::Osd* volume,
                                                           std::string tag);

  std::string_view tag() const override { return tag_; }
  Status Add(Slice value, ObjectId oid) override;
  Status Remove(Slice value, ObjectId oid) override;
  // One mu_ acquisition for the whole batch: adds become one sorted BulkLoad into the
  // backing btree, removes a Delete loop, followed by a single root sync.
  Status ApplyBatch(const std::vector<std::pair<std::string, ObjectId>>& adds,
                    const std::vector<std::pair<std::string, ObjectId>>& removes) override;
  Result<std::vector<ObjectId>> Lookup(Slice value) const override;
  Result<bool> Contains(Slice value, ObjectId oid) const override;
  Result<uint64_t> EstimateCardinality(Slice value) const override;
  Status ScanValues(
      Slice prefix, const std::function<bool(Slice value, ObjectId oid)>& fn) const override;
  // Postings-cache hits return a zero-copy materialized iterator; misses stream the
  // btree range in batches (and fill the cache when one batch covers the whole list).
  Result<std::unique_ptr<PostingIterator>> OpenPostings(Slice value,
                                                        PlanStats* stats) const override;
  // Streaming `value*` execution: a lazy skip-seek pass discovers the distinct values
  // under the prefix (postings are jumped over, not read), then a min-heap merges the
  // per-value batched posting streams in ascending-oid order. Each pull costs
  // O(log V + an occasional 1024-entry batch refill); nothing materializes the full set.
  Result<std::unique_ptr<PostingIterator>> OpenPrefixPostings(
      Slice prefix, PlanStats* stats) const override;

  // Number of (value, oid) associations (test support).
  uint64_t entry_count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return tree_->Count();
  }

 private:
  class ScanIterator;         // Batched streaming iterator over one value's postings.
  class PrefixMergeIterator;  // Heap merge of per-value streams for OpenPrefixPostings.

  KeyValueIndexStore(osd::Osd* volume, std::string tag, uint64_t root);

  // Persist the btree root under the named root when it has moved. Callers hold mu_
  // exclusively.
  Status SyncRoot();

  osd::Osd* const volume_;
  const std::string tag_;
  const std::string root_name_;
  std::unique_ptr<btree::BTree> tree_;
  uint64_t last_root_ = 0;

  // Reader/writer separation: queries hold mu_ shared, mutations exclusive. Also what
  // makes last_root_ bookkeeping safe under concurrent Add/Remove.
  mutable std::shared_mutex mu_;

  // Cardinality cache: value -> posting count, maintained on Add/Remove for values that
  // have been estimated at least once. Makes EstimateCardinality O(1) warm, which is
  // what lets conjunction planning (IndexCollection::Lookup, the query optimizer) order
  // terms cheaply on every lookup. Striped so estimates on different values never
  // contend. Bounded per stripe: at capacity each insert displaces one arbitrary
  // resident entry (StripedMap::PutWithEvict) — no global flushes.
  static constexpr size_t kCardCacheMaxEntries = 1 << 16;
  mutable StripedMap<std::string, uint64_t> card_cache_;

  // Postings cache: value -> materialized ascending-oid postings list, filled on
  // Lookup misses and invalidated (per value) on Add/Remove. Repeated naming lookups
  // on warm values skip the btree descent + leaf walk entirely — the §3.1.1 conjunction
  // then runs off cached arrays. Shared_ptr values keep hits zero-copy under the shard
  // lock. Bounded like the cardinality cache: per-stripe single-entry eviction at
  // capacity, no global flushes.
  static constexpr size_t kPostingsCacheMaxEntries = 1 << 14;
  using PostingsRef = std::shared_ptr<const std::vector<ObjectId>>;
  mutable StripedMap<std::string, PostingsRef> postings_cache_;
};

// Full-text store: Add() treats the value as document *content* to index; Lookup()
// treats the value as a single search term. Ranked multi-term search goes through
// engine() directly (the IndexStore interface is set semantics only).
class FullTextIndexStore : public IndexStore {
 public:
  static Result<std::unique_ptr<FullTextIndexStore>> Mount(osd::Osd* volume);

  std::string_view tag() const override { return kTagFulltext; }
  Status Add(Slice content, ObjectId oid) override;
  Status Remove(Slice content, ObjectId oid) override;  // Content is ignored: oid keys it.
  Result<std::vector<ObjectId>> Lookup(Slice term) const override;
  Result<bool> Contains(Slice term, ObjectId oid) const override;
  Result<uint64_t> EstimateCardinality(Slice term) const override;
  Status ScanValues(Slice, const std::function<bool(Slice, ObjectId)>&) const override {
    return Status::NotSupported("full-text store cannot enumerate values");
  }
  // Streams the term's posting range from the inverted index in batches.
  Result<std::unique_ptr<PostingIterator>> OpenPostings(Slice term,
                                                        PlanStats* stats) const override;

  fulltext::FullTextIndex* engine() { return engine_.get(); }
  const fulltext::FullTextIndex* engine() const { return engine_.get(); }

 private:
  class ScanIterator;

  FullTextIndexStore(osd::Osd* volume, uint64_t root);

  // Callers hold mu_ exclusively.
  Status SyncRoot();

  osd::Osd* const volume_;
  std::unique_ptr<btree::BTree> tree_;
  std::unique_ptr<fulltext::FullTextIndex> engine_;
  uint64_t last_root_ = 0;
  // Reader/writer separation for the store API. The LazyIndexer's workers write through
  // engine() directly and rely on the engine's own serialization instead.
  mutable std::shared_mutex mu_;
};

// The ID fastpath (Table 1): "a special tag, ID, indicates that the value is actually a
// unique object ID, supporting object reference caching inside applications." Lookup
// parses the value as a decimal oid and verifies existence — no index storage at all.
class IdIndexStore : public IndexStore {
 public:
  explicit IdIndexStore(osd::Osd* volume) : volume_(volume) {}

  std::string_view tag() const override { return kTagId; }
  Status Add(Slice, ObjectId) override {
    return Status::Ok();  // IDs are intrinsic; nothing to record.
  }
  Status Remove(Slice, ObjectId) override { return Status::Ok(); }
  Result<std::vector<ObjectId>> Lookup(Slice value) const override;
  Result<bool> Contains(Slice value, ObjectId oid) const override {
    HFAD_ASSIGN_OR_RETURN(std::vector<ObjectId> ids, Lookup(value));
    return !ids.empty() && ids[0] == oid;
  }
  Result<uint64_t> EstimateCardinality(Slice) const override { return uint64_t{1}; }
  Status ScanValues(Slice, const std::function<bool(Slice, ObjectId)>&) const override {
    return Status::NotSupported("ID fastpath has no enumerable storage");
  }

 private:
  osd::Osd* const volume_;
};

// The collection of index stores: tag dispatch, plug-in registration, and conjunctive
// naming lookups.
//
// The store map itself is immutable after mount-time registration (Register is not
// thread-safe against concurrent lookups); all run-time synchronization lives inside
// the individual stores.
class IndexCollection {
 public:
  // Mounts the six Table 1 standard stores on `volume`.
  static Result<std::unique_ptr<IndexCollection>> Mount(osd::Osd* volume);

  // Plug-in model (open question #1): add a store for a new tag. AlreadyExists if the
  // tag is taken. Mount-time only: not synchronized against concurrent lookups.
  Status Register(std::unique_ptr<IndexStore> store);

  // Store for a tag, or nullptr.
  IndexStore* store(std::string_view tag);
  const IndexStore* store(std::string_view tag) const;

  // Registered tags, sorted.
  std::vector<std::string> tags() const;

  // Naming lookup (§3.1.1): the conjunction of per-term lookups, ascending oid order.
  // Multiple results are expected; "no query need uniquely define a data item".
  // Materializes OpenLookupIterator — the two share one plan and one executor.
  Result<std::vector<ObjectId>> Lookup(const std::vector<TagValue>& terms) const;

  // The same conjunction as a pull iterator (the planner/iterator path every naming
  // entry point executes on): conjuncts ordered cheapest-first (EstimateCardinality,
  // which the stores answer from their cardinality caches), the smallest posting list
  // driving a leapfrog intersection, and conjuncts that dwarf the driver degraded to
  // per-candidate membership probes instead of being opened at all. The iterator starts
  // unpositioned (SeekTo first) and must not outlive this collection.
  Result<std::unique_ptr<PostingIterator>> OpenLookupIterator(
      const std::vector<TagValue>& terms, PlanStats* stats = nullptr) const;

 private:
  IndexCollection() = default;

  std::map<std::string, std::unique_ptr<IndexStore>, std::less<>> stores_;
};

// Set intersection helper shared with the query engine (inputs must be sorted).
std::vector<ObjectId> IntersectSorted(const std::vector<ObjectId>& a,
                                      const std::vector<ObjectId>& b);

}  // namespace index
}  // namespace hfad

#endif  // HFAD_SRC_INDEX_INDEX_STORE_H_
