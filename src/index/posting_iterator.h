// Seekable posting iterators and the set algebra the unified naming path runs on.
//
// Every naming entry point — tag lookup, boolean query, ranked search candidates, POSIX
// directory enumeration — executes as a tree of PostingIterators pulled lazily in
// ascending-oid order. Nothing materializes a complete result set unless a caller drains
// the iterator; `Find`-style pagination (limit/after) is just SeekTo + a bounded pull.
//
// The building blocks:
//
//   * PostingIterator      — the pull interface: Valid/Value/Next/SeekTo. Iterators start
//                            unpositioned; SeekTo(0) positions at the first posting.
//                            Seeks are forward-only (a lower bound at or before the
//                            current position is a no-op), which is what makes leapfrog
//                            intersection and `after`-pagination O(seeks), not O(rows).
//   * VectorPostingIterator / LazyPostingIterator — materialized postings (cache hits,
//                            the ID fastpath, prefix scans) behind the same interface.
//   * AndPostingIterator   — leapfrog intersection: the cheapest conjunct drives, the
//                            rest are seeked to each candidate. Conjuncts whose postings
//                            dwarf the driver degrade to per-candidate membership probes
//                            (IndexStore::Contains) instead of opening postings at all.
//                            Negations are probes/seeks that must miss.
//   * OrPostingIterator    — ascending merge with duplicate collapse.
//
// PlanStats lives here (re-exported as query::PlanStats) so the iterators themselves can
// account for the work they do; the counters keep their historical meanings.
#ifndef HFAD_SRC_INDEX_POSTING_ITERATOR_H_
#define HFAD_SRC_INDEX_POSTING_ITERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/osd/osd.h"

namespace hfad {
namespace index {

using osd::ObjectId;

class IndexStore;

// Work counters filled by iterator execution (bench/ablation support).
struct PlanStats {
  uint64_t index_lookups = 0;      // Posting streams opened (first fetch counts once).
  uint64_t rows_scanned = 0;       // Total ids pulled out of index storage.
  uint64_t intermediate_rows = 0;  // Rows emitted by intersection/union nodes.
  uint64_t membership_probes = 0;  // Point Contains() probes in place of full lookups.
  bool early_exit = false;         // A conjunction's driver was empty before the other
                                   // conjuncts were ever opened.
};

// The pull interface every posting source implements. Not thread-safe; an iterator must
// not outlive the store (or collection) that produced it, and observes concurrent
// mutations with per-batch consistency only (each fetch sees some consistent tree state).
class PostingIterator {
 public:
  virtual ~PostingIterator() = default;

  // True when positioned on a posting. False before the first SeekTo and at the end.
  virtual bool Valid() const = 0;

  // Current posting. Only meaningful while Valid().
  virtual ObjectId Value() const = 0;

  // Advance past the current posting.
  virtual Status Next() = 0;

  // Position at the first posting >= lower_bound. Forward-only: a bound at or before
  // the current position leaves the iterator where it is.
  virtual Status SeekTo(ObjectId lower_bound) = 0;
};

// Materialized postings (must be sorted ascending, deduplicated). Counts one
// index_lookup plus the full row count into `stats` on first use.
class VectorPostingIterator : public PostingIterator {
 public:
  explicit VectorPostingIterator(std::vector<ObjectId> ids, PlanStats* stats = nullptr);
  explicit VectorPostingIterator(std::shared_ptr<const std::vector<ObjectId>> ids,
                                 PlanStats* stats = nullptr);

  bool Valid() const override;
  ObjectId Value() const override;
  Status Next() override;
  Status SeekTo(ObjectId lower_bound) override;

 private:
  void CountOnce();

  std::vector<ObjectId> owned_;
  std::shared_ptr<const std::vector<ObjectId>> shared_;
  const std::vector<ObjectId>* ids_;
  size_t idx_ = 0;
  bool positioned_ = false;
  PlanStats* const stats_;
};

// Postings produced on first use by `fill` (sorted ascending, deduplicated). Keeps
// construction free so a conjunction driver that comes up empty never pays for the
// other conjuncts (the early-exit the optimizer is counted on to deliver).
class LazyPostingIterator : public PostingIterator {
 public:
  using FillFn = std::function<Result<std::vector<ObjectId>>()>;
  explicit LazyPostingIterator(FillFn fill, PlanStats* stats = nullptr);

  bool Valid() const override;
  ObjectId Value() const override;
  Status Next() override;
  Status SeekTo(ObjectId lower_bound) override;

 private:
  Status Materialize();

  FillFn fill_;
  std::vector<ObjectId> ids_;
  size_t idx_ = 0;
  bool materialized_ = false;
  bool positioned_ = false;
  PlanStats* const stats_;
};

// Leapfrog intersection. positives[0] drives (callers order by ascending cardinality
// estimate); positives[1..] are seeked to each candidate; probes are point membership
// filters (negated probes must miss); negatives are sub-iterators that must miss.
class AndPostingIterator : public PostingIterator {
 public:
  struct Probe {
    const IndexStore* store;
    std::string value;
    bool negated = false;
  };

  AndPostingIterator(std::vector<std::unique_ptr<PostingIterator>> positives,
                     std::vector<Probe> probes,
                     std::vector<std::unique_ptr<PostingIterator>> negatives,
                     PlanStats* stats = nullptr);

  bool Valid() const override { return valid_; }
  ObjectId Value() const override { return value_; }
  Status Next() override;
  Status SeekTo(ObjectId lower_bound) override;

 private:
  // Advance from the driver's current position to the next candidate passing every
  // filter (or exhaust).
  Status FindMatch();

  std::vector<std::unique_ptr<PostingIterator>> positives_;
  std::vector<Probe> probes_;
  std::vector<std::unique_ptr<PostingIterator>> negatives_;
  PlanStats* const stats_;
  bool positioned_ = false;
  bool done_ = false;
  bool valid_ = false;
  ObjectId value_ = 0;
};

// Ascending merge with duplicate collapse.
class OrPostingIterator : public PostingIterator {
 public:
  OrPostingIterator(std::vector<std::unique_ptr<PostingIterator>> children,
                    PlanStats* stats = nullptr);

  bool Valid() const override { return valid_; }
  ObjectId Value() const override { return value_; }
  Status Next() override;
  Status SeekTo(ObjectId lower_bound) override;

 private:
  void Reposition();

  std::vector<std::unique_ptr<PostingIterator>> children_;
  PlanStats* const stats_;
  bool valid_ = false;
  ObjectId value_ = 0;
};

// The shared planning rule for conjunctions: when the driver's estimated cardinality is
// small relative to a conjunct's, probing membership per candidate beats opening the
// conjunct's postings (the 8x factor matches a probe's descent cost vs. a scan step).
inline bool ShouldProbe(uint64_t driver_estimate, uint64_t conjunct_estimate) {
  return conjunct_estimate / 8 > driver_estimate;
}

// Estimate used when a store cannot answer (complements, prefixes, failed estimates):
// large enough to never drive, small enough that sums of several stay ordered.
inline constexpr uint64_t kUnknownCardinality = uint64_t{1} << 62;

// PlanStats grown into a tree: one node per Expr node, annotated by the planner
// (estimates, execution order, probe-degradation decisions) and, when the caller
// asked for EXPLAIN, by post-execution analysis (actual cardinalities, whole-plan
// PlanStats and counter deltas on the root). Built only on request — the normal
// query path never allocates one.
struct PlanNode {
  static constexpr uint64_t kNoActual = ~uint64_t{0};

  std::string op;           // "and" | "or" | "not" | "term" | "prefix".
  std::string detail;       // Term nodes: "tag=value"; prefix nodes: "tag=prefix*".
  uint64_t estimate = 0;    // Planner's cardinality estimate (kUnknownCardinality
                            // when the store could not answer).
  uint64_t actual = kNoActual;  // True posting count (EXPLAIN fills it post-run).
  int planner_order = -1;   // Execution position among a conjunction's positives
                            // (0 = leapfrog driver); -1 outside conjunctions.
  bool degraded_to_probe = false;  // Planner chose per-candidate membership probes
                                   // over opening this conjunct's postings.
  PlanStats stats;          // Root node: whole-plan execution stats.
  uint64_t pages_read = 0;      // Root node: stats-counter deltas over execution.
  uint64_t index_traversals = 0;
  std::vector<PlanNode> children;
};

// One conjunct feeding BuildConjunction: a term backed by a store (probe-eligible,
// postings opened on demand) or a pre-planned sub-iterator (`iter` set). `node`,
// when set, receives the planner's decisions for EXPLAIN.
struct Conjunct {
  const IndexStore* store = nullptr;  // Term conjuncts; caller has validated non-null.
  std::string value;
  std::unique_ptr<PostingIterator> iter;  // Non-term conjuncts.
  uint64_t estimate = 0;
  bool negated = false;
  PlanNode* node = nullptr;  // EXPLAIN annotation target (optional).
};

// THE conjunction planner, shared by IndexCollection::OpenLookupIterator (tag/value
// terms) and query::QueryPlanner (AND nodes): with optimize, positives sort by
// ascending estimate so the cheapest drives the leapfrog, and term conjuncts (positive
// or negated) whose postings dwarf the driver degrade to membership probes
// (ShouldProbe) instead of opening postings at all. Without optimize, textual order and
// no probes (the ablation baseline). At least one non-negated conjunct is required.
Result<std::unique_ptr<PostingIterator>> BuildConjunction(std::vector<Conjunct> conjuncts,
                                                          bool optimize,
                                                          PlanStats* stats = nullptr);

// All objects whose `store` value starts with `prefix` (ascending oid, deduplicated),
// materialized lazily from IndexStore::ScanValues. Backs Expr prefix terms and POSIX
// directory enumeration.
std::unique_ptr<PostingIterator> MakePrefixIterator(const IndexStore* store,
                                                    std::string prefix,
                                                    PlanStats* stats = nullptr);

// Position at the start and pull every posting (the legacy materializing entry points).
Result<std::vector<ObjectId>> DrainPostings(PostingIterator* it);

}  // namespace index
}  // namespace hfad

#endif  // HFAD_SRC_INDEX_POSTING_ITERATOR_H_
