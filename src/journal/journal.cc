#include "src/journal/journal.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/coding.h"
#include "src/common/crc32.h"
#include "src/common/metrics.h"
#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/io/io_engine.h"

namespace hfad {
namespace journal {

namespace {

// CRC over (length, sequence, payload) — everything after the CRC field itself.
uint32_t RecordCrc(uint32_t length, uint64_t sequence, Slice payload) {
  uint8_t hdr[12];
  EncodeFixed32(hdr, length);
  EncodeFixed64(hdr + 4, sequence);
  uint32_t crc = Crc32c(Slice(hdr, sizeof(hdr)));
  return Crc32cExtend(crc, payload);
}

}  // namespace

// One link of the async chain. Owns the drained batch bytes so the engine's
// buffer-lifetime rule holds without copying, and carries the bookkeeping the
// completion needs to finish what LeadCommit does synchronously.
struct Journal::AsyncCommitState {
  uint64_t gen = 0;             // Chain generation (lead-once accounting).
  std::string batch;            // Drained pending_ bytes; Slice target for the write.
  size_t count = 0;             // Records in the batch.
  uint64_t batch_last = 0;      // Highest sequence in the batch.
  uint64_t pos = 0;             // write_pos_ at drain time.
  int attempts = 1;             // Submissions so far (retry accounting).
  std::chrono::steady_clock::time_point start;
};

Journal::Journal(BlockDevice* device, uint64_t region_offset, uint64_t region_size,
                 uint64_t first_sequence)
    : device_(device),
      region_offset_(region_offset),
      region_size_(region_size),
      next_seq_(first_sequence),
      committed_seq_(first_sequence - 1) {}

Journal::~Journal() {
  // An async chain link may still be in flight; its completion touches this
  // object, so wait it out. (Engines owned above the journal are shut down
  // before the journal is destroyed, which also drives this to quiescence.)
  std::unique_lock<std::mutex> lock(mu_);
  commit_cv_.wait(lock, [&] { return !commit_in_progress_; });
}

void Journal::SetIoEngine(io::IoEngine* engine) {
  std::lock_guard<std::mutex> lock(mu_);
  engine_ = engine;
}

void Journal::SetRetryPolicy(const RetryPolicy& retry) {
  std::lock_guard<std::mutex> lock(mu_);
  retry_ = retry;
}

Result<uint64_t> Journal::Append(Slice payload) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t need = kRecordHeaderSize + payload.size();
  // Keep one trailing header's worth of zeroes so recovery always sees a terminator.
  // The in-flight batch still occupies [write_pos_, +inflight_bytes_) until its leader
  // either advances write_pos_ or returns the records to pending_.
  if (write_pos_ + inflight_bytes_ + pending_.size() + need + kRecordHeaderSize >
      region_size_) {
    return Status::NoSpace("journal region full (" + std::to_string(region_size_) +
                           " bytes); checkpoint required");
  }
  uint64_t seq = next_seq_++;
  uint8_t hdr[16];
  uint32_t crc = RecordCrc(static_cast<uint32_t>(payload.size()), seq, payload);
  EncodeFixed32(hdr, MaskCrc(crc));
  EncodeFixed32(hdr + 4, static_cast<uint32_t>(payload.size()));
  EncodeFixed64(hdr + 8, seq);
  pending_.append(reinterpret_cast<const char*>(hdr), sizeof(hdr));
  pending_.append(payload.data(), payload.size());
  pending_count_++;
  return seq;
}

Status Journal::LeadCommit(std::unique_lock<std::mutex>& lock) {
  // Drain the pending buffer: the batch covers (committed_seq_, batch_last].
  std::string batch;
  batch.swap(pending_);
  const size_t batch_count = pending_count_;
  pending_count_ = 0;
  const uint64_t batch_last = next_seq_ - 1;
  const uint64_t pos = write_pos_;
  inflight_bytes_ = batch.size();
  inflight_count_ = batch_count;

  lock.unlock();  // Appenders (and new followers) proceed during the Write+Sync.
  Status s;
  {
    // The histogram records every group commit; the span only lands when the
    // leading thread is inside a sampled operation.
    metrics::ScopedLatency latency(metrics::Hist::kJournalCommit);
    trace::SpanScope span("journal_commit");
    s = retry_.RunWithRetry([&] {
      Status ws = device_->Write(region_offset_ + pos, Slice(batch));
      if (ws.ok()) {
        ws = device_->Sync();
      }
      return ws;
    });
  }
  lock.lock();

  inflight_bytes_ = 0;
  inflight_count_ = 0;
  if (s.ok()) {
    write_pos_ += batch.size();
    committed_seq_ = batch_last;
    stats::Add(stats::Counter::kJournalCommits);
    stats::Add(stats::Counter::kJournalRecords, batch_count);
    stats::Add(stats::Counter::kJournalBytes, batch.size());
  } else {
    // Failed batches stay pending (prepended: records must remain in sequence order
    // ahead of anything appended during the failed IO).
    batch.append(pending_);
    pending_.swap(batch);
    pending_count_ += batch_count;
  }
  commit_in_progress_ = false;
  commit_cv_.notify_all();
  return s;
}

std::shared_ptr<Journal::AsyncCommitState> Journal::PrepareAsyncCommitLocked() {
  auto st = std::make_shared<AsyncCommitState>();
  st->gen = chain_next_gen_++;
  st->batch.swap(pending_);
  st->count = pending_count_;
  pending_count_ = 0;
  st->batch_last = next_seq_ - 1;
  st->pos = write_pos_;
  inflight_bytes_ = st->batch.size();
  inflight_count_ = st->count;
  commit_in_progress_ = true;
  st->start = std::chrono::steady_clock::now();
  return st;
}

void Journal::SubmitAsyncBatch(std::shared_ptr<AsyncCommitState> st) {
  // The leader never parks in Sync(): the write's completion submits the sync,
  // the sync's completion advances the watermark. Both callbacks run on engine
  // completion threads and take only mu_ (a leaf lock on that path).
  io::IoRequest write;
  write.op = io::IoOp::kWrite;
  write.offset = region_offset_ + st->pos;
  write.data = Slice(st->batch);
  write.on_complete = [this, st](io::IoCompletion c) {
    if (!c.status.ok()) {
      // Transient failure: resubmit the whole link immediately (completion
      // threads never sleep; rewriting the same batch bytes is idempotent).
      if (retry_.ShouldRetry(c.status, st->attempts)) {
        st->attempts++;
        SubmitAsyncBatch(st);
        return;
      }
      FinishAsyncCommit(st, c.status);
      return;
    }
    io::IoRequest sync;
    sync.op = io::IoOp::kSync;
    sync.on_complete = [this, st](io::IoCompletion sc) {
      if (!sc.status.ok() && retry_.ShouldRetry(sc.status, st->attempts)) {
        st->attempts++;
        SubmitAsyncBatch(st);
        return;
      }
      FinishAsyncCommit(st, sc.status);
    };
    auto h = engine_->Submit(std::move(sync));
    if (!h.ok()) {
      FinishAsyncCommit(st, h.status());
    }
  };
  auto h = engine_->Submit(std::move(write));
  if (!h.ok()) {
    FinishAsyncCommit(std::move(st), h.status());
  }
}

void Journal::FinishAsyncCommit(std::shared_ptr<AsyncCommitState> st, Status s) {
  std::vector<std::function<void(Status)>> fire;
  Status fire_status = s;
  std::shared_ptr<AsyncCommitState> next;
  {
    std::unique_lock<std::mutex> lock(mu_);
    inflight_bytes_ = 0;
    inflight_count_ = 0;
    if (s.ok()) {
      write_pos_ += st->batch.size();
      committed_seq_ = st->batch_last;
      stats::Add(stats::Counter::kJournalCommits);
      stats::Add(stats::Counter::kJournalRecords, st->count);
      stats::Add(stats::Counter::kJournalBytes, st->batch.size());
    } else {
      // Failed batches stay pending, prepended ahead of anything appended while
      // the chain link was in flight (records must stay in sequence order).
      st->batch.append(pending_);
      pending_.swap(st->batch);
      pending_count_ += st->count;
    }
    chain_done_gen_ = st->gen;
    last_chain_status_ = s;
    commit_in_progress_ = false;
    if (s.ok()) {
      // Covered waiters resolve now; uncovered ones elect this completion thread
      // as the next leader, keeping the chain dense under a commit storm.
      auto split = std::partition(
          async_waiters_.begin(), async_waiters_.end(),
          [&](const auto& w) { return w.first > committed_seq_; });
      for (auto it = split; it != async_waiters_.end(); ++it) {
        fire.push_back(std::move(it->second));
      }
      async_waiters_.erase(split, async_waiters_.end());
      fire_status = Status::Ok();
      if (!async_waiters_.empty()) {
        if (!pending_.empty()) {
          next = PrepareAsyncCommitLocked();
        } else {
          // Unreachable by construction (an uncovered target implies records in
          // pending_), but never strand a waiter if the invariant ever bends.
          for (auto& w : async_waiters_) fire.push_back(std::move(w.second));
          async_waiters_.clear();
        }
      }
    } else {
      // Every waiter learns this chain link's failure, exactly as a blocking
      // follower of a failed sync leader retries/reports for itself.
      for (auto& w : async_waiters_) fire.push_back(std::move(w.second));
      async_waiters_.clear();
    }
    commit_cv_.notify_all();
  }
  metrics::Record(metrics::Hist::kJournalCommit,
                  static_cast<uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - st->start)
                          .count()));
  for (auto& f : fire) f(fire_status);
  if (next) SubmitAsyncBatch(std::move(next));
}

Status Journal::CommitThrough(uint64_t sequence) {
  std::unique_lock<std::mutex> lock(mu_);
  // Clamp to what has actually been appended: sequences from before a Reset() are
  // durable by checkpoint, and asking beyond next_seq_-1 is a caller bug we degrade
  // to "everything appended so far".
  uint64_t target = std::min(sequence, next_seq_ - 1);
  if (engine_ != nullptr) {
    // Async mode: kick the chain instead of leading in place, then sleep on the
    // watermark. Lead-once: after this caller's generation completes it reports
    // that link's outcome rather than retrying forever on a failing device.
    bool led = false;
    uint64_t my_gen = 0;
    for (;;) {
      if (committed_seq_ >= target) {
        return Status::Ok();
      }
      if (led && chain_done_gen_ >= my_gen) {
        return last_chain_status_;
      }
      if (!commit_in_progress_ && !led) {
        if (pending_.empty()) {
          return Status::Ok();  // Reset raced ahead of us.
        }
        auto st = PrepareAsyncCommitLocked();
        my_gen = st->gen;
        led = true;
        lock.unlock();
        SubmitAsyncBatch(std::move(st));
        lock.lock();
        continue;
      }
      commit_cv_.wait(lock);
    }
  }
  for (;;) {
    if (committed_seq_ >= target) {
      return Status::Ok();
    }
    if (!commit_in_progress_) {
      break;
    }
    commit_cv_.wait(lock);
  }
  if (pending_.empty()) {
    return Status::Ok();  // Nothing to write (e.g. Reset raced ahead of us).
  }
  commit_in_progress_ = true;
  return LeadCommit(lock);
}

void Journal::CommitAsync(uint64_t sequence, std::function<void(Status)> done) {
  std::shared_ptr<AsyncCommitState> st;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (engine_ == nullptr) {
      lock.unlock();
      done(CommitThrough(sequence));  // Degraded mode: block, then report.
      return;
    }
    uint64_t target = std::min(sequence, next_seq_ - 1);
    if (committed_seq_ >= target ||
        (!commit_in_progress_ && pending_.empty())) {
      lock.unlock();  // Covered already (or Reset raced): resolve immediately.
      done(Status::Ok());
      return;
    }
    async_waiters_.emplace_back(target, std::move(done));
    if (commit_in_progress_) {
      return;  // The in-flight link (or its successor) will resolve us.
    }
    st = PrepareAsyncCommitLocked();
  }
  SubmitAsyncBatch(std::move(st));
}

Status Journal::Commit() {
  // The target is re-read under the lock inside CommitThrough; max() simply means
  // "everything appended before the call".
  return CommitThrough(~uint64_t{0});
}

size_t Journal::pending_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_count_ + inflight_count_;
}

uint64_t Journal::committed_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_seq_;
}

uint64_t Journal::SpaceRemaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t used =
      write_pos_ + inflight_bytes_ + pending_.size() + kRecordHeaderSize;  // + terminator.
  return used >= region_size_ ? 0 : region_size_ - used;
}

double Journal::Occupancy() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t used = write_pos_ + inflight_bytes_ + pending_.size() + kRecordHeaderSize;
  if (region_size_ == 0) {
    return 1.0;
  }
  return used >= region_size_ ? 1.0
                              : static_cast<double>(used) / static_cast<double>(region_size_);
}

Status Journal::Reset() {
  std::vector<std::function<void(Status)>> fire;
  Status result;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // An in-flight leader still owns [write_pos_, +inflight_bytes_); wait it out so
    // the head zeroes below cannot be overwritten by its batch.
    commit_cv_.wait(lock, [&] { return !commit_in_progress_; });
    pending_.clear();
    pending_count_ = 0;
    write_pos_ = 0;
    committed_seq_ = next_seq_ - 1;  // Everything before the reset is checkpoint-durable.
    // Any async waiter still parked is now covered by the checkpoint that mandated
    // this reset (in steady state the chain epilogue already drained them all).
    // Fired after the head is zeroed: releasing mu_ earlier would let a resolved
    // caller kick a new chain writing at write_pos_ 0 concurrently with the zeroes.
    for (auto& w : async_waiters_) fire.push_back(std::move(w.second));
    async_waiters_.clear();
    // Zero one header so a recovery scan terminates immediately.
    std::string zeroes(kRecordHeaderSize, '\0');
    result = retry_.RunWithRetry([&] {
      Status ws = device_->Write(region_offset_, Slice(zeroes));
      if (ws.ok()) {
        ws = device_->Sync();
      }
      return ws;
    });
  }
  for (auto& f : fire) f(Status::Ok());
  return result;
}

Result<uint64_t> Journal::Recover(
    const std::function<void(uint64_t sequence, Slice payload)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  commit_cv_.wait(lock, [&] { return !commit_in_progress_; });
  pending_.clear();
  pending_count_ = 0;
  // Recovery supersedes any parked async waiter (their records either survived on
  // disk or are gone with the crash being recovered from); resolve rather than
  // strand them. Ok mirrors Reset: the caller owns interpreting recovered state.
  if (!async_waiters_.empty()) {
    auto orphans = std::move(async_waiters_);
    async_waiters_.clear();
    lock.unlock();
    for (auto& w : orphans) w.second(Status::Ok());
    lock.lock();
  }
  uint64_t pos = 0;
  uint64_t recovered = 0;
  bool have_prev_seq = false;
  uint64_t prev_seq = 0;
  while (pos + kRecordHeaderSize <= region_size_) {
    std::string hdr;
    HFAD_RETURN_IF_ERROR(retry_.RunWithRetry(
        [&] { return device_->Read(region_offset_ + pos, kRecordHeaderSize, &hdr); }));
    const uint8_t* h = reinterpret_cast<const uint8_t*>(hdr.data());
    uint32_t masked = DecodeFixed32(h);
    uint32_t length = DecodeFixed32(h + 4);
    uint64_t seq = DecodeFixed64(h + 8);
    if (masked == 0 && length == 0 && seq == 0) {
      break;  // Clean end of log.
    }
    if (pos + kRecordHeaderSize + length > region_size_) {
      break;  // Length field runs off the region: torn header.
    }
    std::string payload;
    HFAD_RETURN_IF_ERROR(retry_.RunWithRetry([&] {
      return device_->Read(region_offset_ + pos + kRecordHeaderSize, length, &payload);
    }));
    if (UnmaskCrc(masked) != RecordCrc(length, seq, Slice(payload))) {
      break;  // Torn or corrupt record: the log ends here.
    }
    if (have_prev_seq && seq != prev_seq + 1) {
      break;  // Stale record from a previous log generation.
    }
    fn(seq, Slice(payload));
    recovered++;
    prev_seq = seq;
    have_prev_seq = true;
    pos += kRecordHeaderSize + length;
  }
  write_pos_ = pos;
  if (have_prev_seq) {
    next_seq_ = prev_seq + 1;
  }
  committed_seq_ = next_seq_ - 1;  // Everything on the device is durable by definition.
  return recovered;
}

uint64_t Journal::next_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t Journal::committed_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_pos_;
}

}  // namespace journal
}  // namespace hfad
