#include "src/journal/journal.h"

#include <algorithm>
#include <utility>

#include "src/common/coding.h"
#include "src/common/crc32.h"
#include "src/common/metrics.h"
#include "src/common/stats.h"
#include "src/common/trace.h"

namespace hfad {
namespace journal {

namespace {

// CRC over (length, sequence, payload) — everything after the CRC field itself.
uint32_t RecordCrc(uint32_t length, uint64_t sequence, Slice payload) {
  uint8_t hdr[12];
  EncodeFixed32(hdr, length);
  EncodeFixed64(hdr + 4, sequence);
  uint32_t crc = Crc32c(Slice(hdr, sizeof(hdr)));
  return Crc32cExtend(crc, payload);
}

}  // namespace

Journal::Journal(BlockDevice* device, uint64_t region_offset, uint64_t region_size,
                 uint64_t first_sequence)
    : device_(device),
      region_offset_(region_offset),
      region_size_(region_size),
      next_seq_(first_sequence),
      committed_seq_(first_sequence - 1) {}

Result<uint64_t> Journal::Append(Slice payload) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t need = kRecordHeaderSize + payload.size();
  // Keep one trailing header's worth of zeroes so recovery always sees a terminator.
  // The in-flight batch still occupies [write_pos_, +inflight_bytes_) until its leader
  // either advances write_pos_ or returns the records to pending_.
  if (write_pos_ + inflight_bytes_ + pending_.size() + need + kRecordHeaderSize >
      region_size_) {
    return Status::NoSpace("journal region full (" + std::to_string(region_size_) +
                           " bytes); checkpoint required");
  }
  uint64_t seq = next_seq_++;
  uint8_t hdr[16];
  uint32_t crc = RecordCrc(static_cast<uint32_t>(payload.size()), seq, payload);
  EncodeFixed32(hdr, MaskCrc(crc));
  EncodeFixed32(hdr + 4, static_cast<uint32_t>(payload.size()));
  EncodeFixed64(hdr + 8, seq);
  pending_.append(reinterpret_cast<const char*>(hdr), sizeof(hdr));
  pending_.append(payload.data(), payload.size());
  pending_count_++;
  return seq;
}

Status Journal::LeadCommit(std::unique_lock<std::mutex>& lock) {
  // Drain the pending buffer: the batch covers (committed_seq_, batch_last].
  std::string batch;
  batch.swap(pending_);
  const size_t batch_count = pending_count_;
  pending_count_ = 0;
  const uint64_t batch_last = next_seq_ - 1;
  const uint64_t pos = write_pos_;
  inflight_bytes_ = batch.size();
  inflight_count_ = batch_count;

  lock.unlock();  // Appenders (and new followers) proceed during the Write+Sync.
  Status s;
  {
    // The histogram records every group commit; the span only lands when the
    // leading thread is inside a sampled operation.
    metrics::ScopedLatency latency(metrics::Hist::kJournalCommit);
    trace::SpanScope span("journal_commit");
    s = device_->Write(region_offset_ + pos, Slice(batch));
    if (s.ok()) {
      s = device_->Sync();
    }
  }
  lock.lock();

  inflight_bytes_ = 0;
  inflight_count_ = 0;
  if (s.ok()) {
    write_pos_ += batch.size();
    committed_seq_ = batch_last;
    stats::Add(stats::Counter::kJournalCommits);
    stats::Add(stats::Counter::kJournalRecords, batch_count);
    stats::Add(stats::Counter::kJournalBytes, batch.size());
  } else {
    // Failed batches stay pending (prepended: records must remain in sequence order
    // ahead of anything appended during the failed IO).
    batch.append(pending_);
    pending_.swap(batch);
    pending_count_ += batch_count;
  }
  commit_in_progress_ = false;
  commit_cv_.notify_all();
  return s;
}

Status Journal::CommitThrough(uint64_t sequence) {
  std::unique_lock<std::mutex> lock(mu_);
  // Clamp to what has actually been appended: sequences from before a Reset() are
  // durable by checkpoint, and asking beyond next_seq_-1 is a caller bug we degrade
  // to "everything appended so far".
  uint64_t target = std::min(sequence, next_seq_ - 1);
  for (;;) {
    if (committed_seq_ >= target) {
      return Status::Ok();
    }
    if (!commit_in_progress_) {
      break;
    }
    commit_cv_.wait(lock);
  }
  if (pending_.empty()) {
    return Status::Ok();  // Nothing to write (e.g. Reset raced ahead of us).
  }
  commit_in_progress_ = true;
  return LeadCommit(lock);
}

Status Journal::Commit() {
  // The target is re-read under the lock inside CommitThrough; max() simply means
  // "everything appended before the call".
  return CommitThrough(~uint64_t{0});
}

size_t Journal::pending_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_count_ + inflight_count_;
}

uint64_t Journal::committed_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_seq_;
}

uint64_t Journal::SpaceRemaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t used =
      write_pos_ + inflight_bytes_ + pending_.size() + kRecordHeaderSize;  // + terminator.
  return used >= region_size_ ? 0 : region_size_ - used;
}

double Journal::Occupancy() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t used = write_pos_ + inflight_bytes_ + pending_.size() + kRecordHeaderSize;
  if (region_size_ == 0) {
    return 1.0;
  }
  return used >= region_size_ ? 1.0
                              : static_cast<double>(used) / static_cast<double>(region_size_);
}

Status Journal::Reset() {
  std::unique_lock<std::mutex> lock(mu_);
  // An in-flight leader still owns [write_pos_, +inflight_bytes_); wait it out so the
  // head zeroes below cannot be overwritten by its batch.
  commit_cv_.wait(lock, [&] { return !commit_in_progress_; });
  pending_.clear();
  pending_count_ = 0;
  write_pos_ = 0;
  committed_seq_ = next_seq_ - 1;  // Everything before the reset is checkpoint-durable.
  // Zero one header so a recovery scan terminates immediately.
  std::string zeroes(kRecordHeaderSize, '\0');
  HFAD_RETURN_IF_ERROR(device_->Write(region_offset_, Slice(zeroes)));
  return device_->Sync();
}

Result<uint64_t> Journal::Recover(
    const std::function<void(uint64_t sequence, Slice payload)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  commit_cv_.wait(lock, [&] { return !commit_in_progress_; });
  pending_.clear();
  pending_count_ = 0;
  uint64_t pos = 0;
  uint64_t recovered = 0;
  bool have_prev_seq = false;
  uint64_t prev_seq = 0;
  while (pos + kRecordHeaderSize <= region_size_) {
    std::string hdr;
    HFAD_RETURN_IF_ERROR(device_->Read(region_offset_ + pos, kRecordHeaderSize, &hdr));
    const uint8_t* h = reinterpret_cast<const uint8_t*>(hdr.data());
    uint32_t masked = DecodeFixed32(h);
    uint32_t length = DecodeFixed32(h + 4);
    uint64_t seq = DecodeFixed64(h + 8);
    if (masked == 0 && length == 0 && seq == 0) {
      break;  // Clean end of log.
    }
    if (pos + kRecordHeaderSize + length > region_size_) {
      break;  // Length field runs off the region: torn header.
    }
    std::string payload;
    HFAD_RETURN_IF_ERROR(
        device_->Read(region_offset_ + pos + kRecordHeaderSize, length, &payload));
    if (UnmaskCrc(masked) != RecordCrc(length, seq, Slice(payload))) {
      break;  // Torn or corrupt record: the log ends here.
    }
    if (have_prev_seq && seq != prev_seq + 1) {
      break;  // Stale record from a previous log generation.
    }
    fn(seq, Slice(payload));
    recovered++;
    prev_seq = seq;
    have_prev_seq = true;
    pos += kRecordHeaderSize + length;
  }
  write_pos_ = pos;
  if (have_prev_seq) {
    next_seq_ = prev_seq + 1;
  }
  committed_seq_ = next_seq_ - 1;  // Everything on the device is durable by definition.
  return recovered;
}

uint64_t Journal::next_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t Journal::committed_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_pos_;
}

}  // namespace journal
}  // namespace hfad
