#include "src/journal/journal.h"

#include "src/common/coding.h"
#include "src/common/crc32.h"
#include "src/common/stats.h"

namespace hfad {
namespace journal {

namespace {

// CRC over (length, sequence, payload) — everything after the CRC field itself.
uint32_t RecordCrc(uint32_t length, uint64_t sequence, Slice payload) {
  uint8_t hdr[12];
  EncodeFixed32(hdr, length);
  EncodeFixed64(hdr + 4, sequence);
  uint32_t crc = Crc32c(Slice(hdr, sizeof(hdr)));
  return Crc32cExtend(crc, payload);
}

}  // namespace

Journal::Journal(BlockDevice* device, uint64_t region_offset, uint64_t region_size,
                 uint64_t first_sequence)
    : device_(device),
      region_offset_(region_offset),
      region_size_(region_size),
      next_seq_(first_sequence) {}

Result<uint64_t> Journal::Append(Slice payload) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t need = kRecordHeaderSize + payload.size();
  // Keep one trailing header's worth of zeroes so recovery always sees a terminator.
  if (write_pos_ + pending_.size() + need + kRecordHeaderSize > region_size_) {
    return Status::NoSpace("journal region full (" + std::to_string(region_size_) +
                           " bytes); checkpoint required");
  }
  uint64_t seq = next_seq_++;
  uint8_t hdr[16];
  uint32_t crc = RecordCrc(static_cast<uint32_t>(payload.size()), seq, payload);
  EncodeFixed32(hdr, MaskCrc(crc));
  EncodeFixed32(hdr + 4, static_cast<uint32_t>(payload.size()));
  EncodeFixed64(hdr + 8, seq);
  pending_.append(reinterpret_cast<const char*>(hdr), sizeof(hdr));
  pending_.append(payload.data(), payload.size());
  pending_count_++;
  return seq;
}

Status Journal::Commit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) {
    return Status::Ok();
  }
  HFAD_RETURN_IF_ERROR(device_->Write(region_offset_ + write_pos_, Slice(pending_)));
  HFAD_RETURN_IF_ERROR(device_->Sync());
  stats::Add(stats::Counter::kJournalRecords, pending_count_);
  stats::Add(stats::Counter::kJournalBytes, pending_.size());
  write_pos_ += pending_.size();
  pending_.clear();
  pending_count_ = 0;
  return Status::Ok();
}

size_t Journal::pending_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_count_;
}

uint64_t Journal::SpaceRemaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t used = write_pos_ + pending_.size() + kRecordHeaderSize;  // Incl. terminator.
  return used >= region_size_ ? 0 : region_size_ - used;
}

Status Journal::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  pending_count_ = 0;
  write_pos_ = 0;
  // Zero one header so a recovery scan terminates immediately.
  std::string zeroes(kRecordHeaderSize, '\0');
  HFAD_RETURN_IF_ERROR(device_->Write(region_offset_, Slice(zeroes)));
  return device_->Sync();
}

Result<uint64_t> Journal::Recover(
    const std::function<void(uint64_t sequence, Slice payload)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  pending_count_ = 0;
  uint64_t pos = 0;
  uint64_t recovered = 0;
  bool have_prev_seq = false;
  uint64_t prev_seq = 0;
  while (pos + kRecordHeaderSize <= region_size_) {
    std::string hdr;
    HFAD_RETURN_IF_ERROR(device_->Read(region_offset_ + pos, kRecordHeaderSize, &hdr));
    const uint8_t* h = reinterpret_cast<const uint8_t*>(hdr.data());
    uint32_t masked = DecodeFixed32(h);
    uint32_t length = DecodeFixed32(h + 4);
    uint64_t seq = DecodeFixed64(h + 8);
    if (masked == 0 && length == 0 && seq == 0) {
      break;  // Clean end of log.
    }
    if (pos + kRecordHeaderSize + length > region_size_) {
      break;  // Length field runs off the region: torn header.
    }
    std::string payload;
    HFAD_RETURN_IF_ERROR(
        device_->Read(region_offset_ + pos + kRecordHeaderSize, length, &payload));
    if (UnmaskCrc(masked) != RecordCrc(length, seq, Slice(payload))) {
      break;  // Torn or corrupt record: the log ends here.
    }
    if (have_prev_seq && seq != prev_seq + 1) {
      break;  // Stale record from a previous log generation.
    }
    fn(seq, Slice(payload));
    recovered++;
    prev_seq = seq;
    have_prev_seq = true;
    pos += kRecordHeaderSize + length;
  }
  write_pos_ = pos;
  if (have_prev_seq) {
    next_seq_ = prev_seq + 1;
  }
  return recovered;
}

uint64_t Journal::next_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t Journal::committed_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_pos_;
}

}  // namespace journal
}  // namespace hfad
