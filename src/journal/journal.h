// Write-ahead log for the hFAD OSD (§3.3: "the OSD may be transactional").
//
// The journal occupies a fixed region of the device, written directly (never through the
// pager). Records are appended in memory and made durable in batches (group commit): one
// contiguous device write plus one Sync covers every record appended since the previous
// Commit. Layout of one record:
//
//   [u32 masked CRC32C][u32 payload length][u64 sequence][payload bytes]
//
// The CRC covers (length, sequence, payload), is masked as in crc32.h, and a record of all
// zeroes marks the end of the log. Sequences increase by exactly one per record.
//
// The log is linear, not a ring: when the region fills, Append returns NoSpace and the
// caller must Checkpoint() — i.e. durably flush the state the journal protects, then reset
// the log. Combined with a no-steal pager this gives the classic no-steal/force-on-
// checkpoint discipline: on-disk state is always exactly the last checkpoint, and crash
// recovery replays the journal suffix on top of it.
//
// Recovery scans from the region start, stopping at the first corrupt, torn, or absent
// record. A crash during Commit() therefore durably preserves some *prefix* of the batch:
// every fully-written record survives, the torn one is discarded by its CRC. Callers must
// treat each record as one complete, independently-applicable operation (the OSD does);
// callers needing all-or-nothing batches should frame them inside a single record.
#ifndef HFAD_SRC_JOURNAL_JOURNAL_H_
#define HFAD_SRC_JOURNAL_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace journal {

// Fixed per-record framing overhead (CRC + length + sequence).
constexpr uint64_t kRecordHeaderSize = 16;

class Journal {
 public:
  // The journal owns [region_offset, region_offset + region_size) of `device`. A fresh
  // journal starts empty with first_sequence as its next sequence number; call Recover()
  // instead when opening an existing volume.
  Journal(BlockDevice* device, uint64_t region_offset, uint64_t region_size,
          uint64_t first_sequence = 1);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Buffer one record. It is durable only after the next Commit(). Returns the record's
  // sequence number, or NoSpace when the region cannot hold it (checkpoint, then retry).
  Result<uint64_t> Append(Slice payload);

  // Durably write every buffered record: one device write, one Sync. No-op when nothing
  // is pending. On IO failure the buffered records remain pending.
  Status Commit();

  // Number of records appended but not yet committed.
  size_t pending_records() const;

  // Bytes of region left for new records (committed + pending already accounted).
  uint64_t SpaceRemaining() const;

  // Logically empty the log after the protected state has been durably checkpointed.
  // Sequence numbering continues; the head of the region is zeroed so recovery stops there.
  Status Reset();

  // Scan the region from the start, calling fn(sequence, payload) for each intact record,
  // in order. Stops at the first invalid record. Leaves the journal positioned to append
  // after the last valid record and returns how many records were recovered.
  Result<uint64_t> Recover(const std::function<void(uint64_t sequence, Slice payload)>& fn);

  // Sequence number the next Append will receive.
  uint64_t next_sequence() const;

  // Total committed bytes currently in the region (test/bench support).
  uint64_t committed_bytes() const;

 private:
  BlockDevice* const device_;
  const uint64_t region_offset_;
  const uint64_t region_size_;

  mutable std::mutex mu_;
  uint64_t next_seq_;
  uint64_t write_pos_ = 0;       // Byte offset within the region of the next commit.
  std::string pending_;          // Encoded records awaiting Commit().
  size_t pending_count_ = 0;
};

}  // namespace journal
}  // namespace hfad

#endif  // HFAD_SRC_JOURNAL_JOURNAL_H_
