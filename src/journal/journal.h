// Write-ahead log for the hFAD OSD (§3.3: "the OSD may be transactional").
//
// The journal occupies a fixed region of the device, written directly (never through the
// pager). Records are appended in memory and made durable in batches (group commit): one
// contiguous device write plus one Sync covers every record appended since the previous
// Commit. Layout of one record:
//
//   [u32 masked CRC32C][u32 payload length][u64 sequence][payload bytes]
//
// The CRC covers (length, sequence, payload), is masked as in crc32.h, and a record of all
// zeroes marks the end of the log. Sequences increase by exactly one per record.
//
// Commit runs a leader/follower protocol (see docs/CONCURRENCY.md): every Commit() caller
// targets the highest sequence appended so far; whoever finds no commit in flight becomes
// the leader, drains the pending buffer, and performs the Write+Sync with the journal lock
// RELEASED — so Append() never waits out an in-flight fsync — then advances the
// committed_seq_ watermark and wakes the followers. A follower whose target is already
// covered returns without touching the device: one fsync amortizes across every thread
// that committed inside its window.
//
// The log is linear, not a ring: when the region fills, Append returns NoSpace and the
// caller must Checkpoint() — i.e. durably flush the state the journal protects, then reset
// the log. Combined with a no-steal pager this gives the classic no-steal/force-on-
// checkpoint discipline: on-disk state is always exactly the last checkpoint, and crash
// recovery replays the journal suffix on top of it.
//
// Recovery scans from the region start, stopping at the first corrupt, torn, or absent
// record. A crash during Commit() therefore durably preserves some *prefix* of the batch:
// every fully-written record survives, the torn one is discarded by its CRC. Callers must
// treat each record as one complete, independently-applicable operation (the OSD does);
// callers needing all-or-nothing batches should frame them inside a single record.
#ifndef HFAD_SRC_JOURNAL_JOURNAL_H_
#define HFAD_SRC_JOURNAL_JOURNAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/retry.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/storage/block_device.h"

namespace hfad {

namespace io {
class IoEngine;
}  // namespace io

namespace journal {

// Fixed per-record framing overhead (CRC + length + sequence).
constexpr uint64_t kRecordHeaderSize = 16;

class Journal {
 public:
  // The journal owns [region_offset, region_offset + region_size) of `device`. A fresh
  // journal starts empty with first_sequence as its next sequence number; call Recover()
  // instead when opening an existing volume.
  Journal(BlockDevice* device, uint64_t region_offset, uint64_t region_size,
          uint64_t first_sequence = 1);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Waits out any in-flight commit chain. Callers owning an IoEngine must destroy
  // (or Shutdown) the engine first so its completion threads have quiesced.
  ~Journal();

  // Route commits through `engine` (null reverts to synchronous leader commits).
  // The group-commit leader then becomes a completion-driven state machine:
  // reserve -> submit write -> submit sync -> advance the watermark from the sync
  // completion. No thread parks inside Sync(); CommitThrough waiters sleep on the
  // journal condvar and thousands of CommitAsync callers can be in flight at
  // once. Call before the journal is shared across threads.
  void SetIoEngine(io::IoEngine* engine);

  // Retry transiently failing commit IO. Sync leaders sleep the policy's
  // backoff between attempts (journal lock released); async chain links
  // resubmit immediately from the completion thread — a completion thread
  // must never sleep. Call before the journal is shared across threads.
  void SetRetryPolicy(const RetryPolicy& retry);

  // Buffer one record. It is durable only after a Commit() covers its sequence. Returns
  // the record's sequence number, or NoSpace when the region cannot hold it (checkpoint,
  // then retry). Holds the journal lock only to reserve + copy: an in-flight commit's
  // device Write/Sync never blocks an append.
  Result<uint64_t> Append(Slice payload);

  // Make every record appended before this call durable. Leader/follower group commit:
  // returns as soon as the committed watermark covers the caller's target — possibly
  // without any device IO of its own. On IO failure the batch's records are returned to
  // the pending buffer (a follower of a failed leader retries as leader and reports its
  // own outcome).
  Status Commit();

  // Block until the watermark covers `sequence` (committing as leader when needed).
  // Sequences from a previous log generation (at or below the last Reset) count as
  // covered. Commit() is CommitThrough(<highest appended>).
  Status CommitThrough(uint64_t sequence);

  // Non-blocking CommitThrough: `done` fires with the commit outcome once the
  // watermark covers `sequence` (immediately, from this call, when it already
  // does). Requires no dedicated thread per caller — completions ride the engine's
  // completion thread, so `done` must follow the completion-thread rules in
  // docs/CONCURRENCY.md (leaf locks only, never block on another completion).
  // Without an engine this degrades to a synchronous CommitThrough + callback.
  void CommitAsync(uint64_t sequence, std::function<void(Status)> done);

  // Number of records appended but not yet durable (pending buffer + in-flight batch).
  size_t pending_records() const;

  // Highest sequence number known durable (the group-commit watermark).
  uint64_t committed_sequence() const;

  // Bytes of region left for new records (committed + in-flight + pending accounted).
  uint64_t SpaceRemaining() const;

  // Fraction of the region consumed (same accounting as SpaceRemaining): the OSD kicks
  // its threshold checkpoint off this.
  double Occupancy() const;

  // Logically empty the log after the protected state has been durably checkpointed.
  // Sequence numbering continues; the head of the region is zeroed so recovery stops
  // there. Waits out any in-flight commit; pending records are discarded (the checkpoint
  // made them durable by other means).
  Status Reset();

  // Scan the region from the start, calling fn(sequence, payload) for each intact record,
  // in order. Stops at the first invalid record. Leaves the journal positioned to append
  // after the last valid record and returns how many records were recovered.
  Result<uint64_t> Recover(const std::function<void(uint64_t sequence, Slice payload)>& fn);

  // Sequence number the next Append will receive.
  uint64_t next_sequence() const;

  // Total committed bytes currently in the region (test/bench support).
  uint64_t committed_bytes() const;

 private:
  // One link of the async commit chain: the batch drained by an async leader, alive
  // (via shared_ptr) until its sync completion lands — the engine requires request
  // buffers to outlive their completions.
  struct AsyncCommitState;

  // Leader body: drain pending_, Write+Sync with `lock` released, advance the watermark
  // (or restore the batch on failure), wake followers. Caller holds `lock` and has
  // already set commit_in_progress_.
  Status LeadCommit(std::unique_lock<std::mutex>& lock);

  // Async leader election: drain pending_ into a chain link and mark the commit in
  // progress. Caller holds mu_ and must call SubmitAsyncBatch with mu_ released.
  std::shared_ptr<AsyncCommitState> PrepareAsyncCommitLocked();

  // Submit the link's write; its completion submits the sync; the sync's completion
  // calls FinishAsyncCommit. Called with mu_ RELEASED (engine locks are leaves).
  void SubmitAsyncBatch(std::shared_ptr<AsyncCommitState> st);

  // Chain epilogue, called from a completion thread: advance the watermark (or
  // restore the batch), fire covered waiters, and lead the next link if uncovered
  // waiters remain. Takes mu_; fires callbacks only after releasing it.
  void FinishAsyncCommit(std::shared_ptr<AsyncCommitState> st, Status s);

  BlockDevice* const device_;
  const uint64_t region_offset_;
  const uint64_t region_size_;

  mutable std::mutex mu_;
  // Signalled when a commit finishes (watermark advanced or leader failed) so followers
  // re-check their target, and when commit_in_progress_ clears.
  std::condition_variable commit_cv_;
  bool commit_in_progress_ = false;

  uint64_t next_seq_;
  uint64_t committed_seq_;       // Highest durable sequence (== next_seq_-1 when clean).
  uint64_t write_pos_ = 0;       // Byte offset within the region of the next commit.
  uint64_t inflight_bytes_ = 0;  // Bytes drained by the in-flight leader (space-reserved).
  std::string pending_;          // Encoded records awaiting a commit batch.
  size_t pending_count_ = 0;
  size_t inflight_count_ = 0;    // Records in the in-flight batch.

  // Transient-failure policy for commit IO (write, sync, Reset's head zeroing).
  RetryPolicy retry_ = RetryPolicy::None();

  // ---- Async commit chain (engine_ != nullptr) ----
  io::IoEngine* engine_ = nullptr;
  // CommitAsync callers whose target the watermark does not yet cover.
  std::vector<std::pair<uint64_t, std::function<void(Status)>>> async_waiters_;
  // Lead-once bookkeeping for async CommitThrough: a blocking caller that kicked
  // chain generation G returns last_chain_status_ once chain_done_gen_ >= G,
  // mirroring the sync mode where each caller leads at most once and reports its
  // own batch's outcome.
  uint64_t chain_next_gen_ = 1;
  uint64_t chain_done_gen_ = 0;
  Status last_chain_status_;
};

}  // namespace journal
}  // namespace hfad

#endif  // HFAD_SRC_JOURNAL_JOURNAL_H_
