// Counted extent tree: the per-object data map that makes hFAD objects *fully*
// byte-accessible (§3.1.2) — reads and overwrites like POSIX, plus Insert of bytes into the
// middle and RemoveRange (the paper's two-off_t truncate) from anywhere.
//
// The paper stores object data in a Berkeley DB btree keyed by file offset. A plain
// offset-keyed tree makes middle insertion O(n): every subsequent key must be re-keyed. We
// instead key *implicitly by cumulative byte count* (an order-statistic / counted B+tree):
//   * leaf pages hold an ordered array of extents (device offset, byte length);
//   * interior pages hold (child page, subtree byte total) pairs.
// An offset is resolved by walking prefix sums, so inserting or removing bytes anywhere is
// O(log n) — only ancestor totals change. bench_btree ablates this against re-keying.
//
// Each extent owns exactly one buddy allocation (its device offset is the allocation
// offset). Splitting an extent copies the tail into a fresh allocation, which bounds split
// cost by kMaxExtentSize. Payload IO bypasses the page cache (raw device IO); only the
// tree pages themselves go through the pager.
//
// Not thread-safe: the OSD serializes access per object.
#ifndef HFAD_SRC_EXTENT_EXTENT_TREE_H_
#define HFAD_SRC_EXTENT_EXTENT_TREE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/storage/buddy_allocator.h"
#include "src/storage/pager.h"

namespace hfad {
namespace extent {

// Largest single extent; larger writes are chunked. Bounds tail-copy cost on splits.
constexpr uint64_t kMaxExtentSize = 64 * 1024;

class ExtentTree {
 public:
  // root_offset == 0 opens an empty (zero-byte) object.
  ExtentTree(Pager* pager, BuddyAllocator* allocator, uint64_t root_offset);
  ~ExtentTree();

  ExtentTree(const ExtentTree&) = delete;
  ExtentTree& operator=(const ExtentTree&) = delete;

  // Current root page (0 when empty). Persist to reopen.
  uint64_t root() const;

  // Logical object size in bytes.
  uint64_t Size() const;

  // Read up to n bytes at offset; short reads happen at end-of-object. Reading at
  // offset == Size() yields an empty result; offset > Size() is OutOfRange.
  Status Read(uint64_t offset, size_t n, std::string* out) const;

  // Overwrite bytes at offset (POSIX pwrite semantics). Writing past the end extends the
  // object; offset > Size() is OutOfRange (no implicit holes — callers zero-fill).
  Status Write(uint64_t offset, Slice data);

  // Insert data at offset, shifting everything at and after offset up by data.size().
  // offset == Size() appends. This is the hFAD `insert` call.
  Status Insert(uint64_t offset, Slice data);

  // Remove `length` bytes starting at offset, shifting the tail down. This is the hFAD
  // two-argument truncate. The range must lie within the object.
  Status RemoveRange(uint64_t offset, uint64_t length);

  // Free all extents and pages; size becomes 0 and root() becomes 0.
  Status Clear();

  // Number of extents in the map (test/bench support).
  Result<uint64_t> CountExtents() const;

  // Verify interior byte totals match children, entry sanity, and type bytes. Expensive.
  Status CheckInvariants() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace extent
}  // namespace hfad

#endif  // HFAD_SRC_EXTENT_EXTENT_TREE_H_
