#include "src/extent/extent_tree.h"

#include <cassert>
#include <cstring>
#include <optional>
#include <vector>

#include "src/common/coding.h"
#include "src/common/stats.h"

namespace hfad {
namespace extent {
namespace {

// Page layout (shared by leaf and interior pages):
//   [0]      u8  page type (kExtentLeaf / kExtentInterior)
//   [1..23]  unused header space (count at [2..3])
//   [24..]   entries, 16 bytes each:
//              leaf:     u64 device offset | u64 byte length
//              interior: u64 child page    | u64 subtree byte total
//
// There are deliberately no sibling links: ranges are resolved by recursive descent, so
// freeing a drained middle leaf can never leave a dangling chain pointer.
constexpr uint8_t kExtentLeaf = 3;
constexpr uint8_t kExtentInterior = 4;
constexpr size_t kHdrSize = 24;
constexpr size_t kEntrySize = 16;
constexpr int kMaxEntries = static_cast<int>((kPageSize - kHdrSize) / kEntrySize);  // 254

struct Entry {
  uint64_t a = 0;  // Leaf: device offset.  Interior: child page.
  uint64_t b = 0;  // Leaf: byte length.    Interior: subtree byte total.
};

uint8_t PageType(const Page& p) { return p.data()[0]; }
void SetPageType(Page& p, uint8_t t) { p.data()[0] = t; }
uint16_t Count(const Page& p) { return DecodeFixed16(p.data() + 2); }
void SetCount(Page& p, uint16_t n) { EncodeFixed16(p.data() + 2, n); }

Entry GetEntry(const Page& p, int i) {
  Entry e;
  e.a = DecodeFixed64(p.data() + kHdrSize + kEntrySize * i);
  e.b = DecodeFixed64(p.data() + kHdrSize + kEntrySize * i + 8);
  return e;
}

void SetEntry(Page& p, int i, const Entry& e) {
  EncodeFixed64(p.data() + kHdrSize + kEntrySize * i, e.a);
  EncodeFixed64(p.data() + kHdrSize + kEntrySize * i + 8, e.b);
  p.MarkDirty();
}

// Insert entry at index i, shifting [i, n) right. Caller checks capacity.
void InsertEntryAt(Page& p, int i, const Entry& e) {
  uint16_t n = Count(p);
  memmove(p.data() + kHdrSize + kEntrySize * (i + 1), p.data() + kHdrSize + kEntrySize * i,
          kEntrySize * (n - i));
  SetEntry(p, i, e);
  SetCount(p, n + 1);
  p.MarkDirty();
}

void RemoveEntryAt(Page& p, int i) {
  uint16_t n = Count(p);
  memmove(p.data() + kHdrSize + kEntrySize * i, p.data() + kHdrSize + kEntrySize * (i + 1),
          kEntrySize * (n - i - 1));
  SetCount(p, n - 1);
  p.MarkDirty();
}

// Sum of entry byte totals (leaf lengths or interior subtree sizes).
uint64_t SumBytes(const Page& p) {
  uint64_t total = 0;
  uint16_t n = Count(p);
  for (int i = 0; i < n; i++) {
    total += GetEntry(p, i).b;
  }
  return total;
}

void InitPage(Page& p, uint8_t type) {
  memset(p.data(), 0, kPageSize);
  SetPageType(p, type);
  p.MarkDirty();
}

// A contiguous run of device bytes backing part of a logical range.
struct Piece {
  uint64_t device_offset;
  uint64_t length;
};

}  // namespace

class ExtentTree::Impl {
 public:
  Impl(Pager* pager, BuddyAllocator* alloc, uint64_t root)
      : pager_(pager), alloc_(alloc), root_(root) {
    if (root_ != 0) {
      auto page = pager_->Get(root_);
      if (page.ok()) {
        size_ = SumBytes(**page);
      } else {
        // An unreadable root (IO fault, checksum rejection) must not masquerade
        // as an empty tree: size_ = 0 would turn every read into a silent
        // zero-byte success. Park the error and surface it from every op.
        root_status_ = page.status();
      }
    }
  }

  uint64_t root() const { return root_; }
  uint64_t Size() const { return size_; }

  Status Read(uint64_t offset, size_t n, std::string* out) const {
    HFAD_RETURN_IF_ERROR(root_status_);
    out->clear();
    if (offset > size_) {
      return Status::OutOfRange("read at " + std::to_string(offset) + " beyond size " +
                                std::to_string(size_));
    }
    uint64_t want = std::min<uint64_t>(n, size_ - offset);
    if (want == 0) {
      return Status::Ok();
    }
    stats::Add(stats::Counter::kIndexTraversals);
    std::vector<Piece> pieces;
    HFAD_RETURN_IF_ERROR(CollectPieces(root_, offset, want, &pieces));
    std::string buf;
    for (const Piece& piece : pieces) {
      HFAD_RETURN_IF_ERROR(
          pager_->ReadRaw(piece.device_offset, static_cast<size_t>(piece.length), &buf));
      out->append(buf);
    }
    return Status::Ok();
  }

  Status Write(uint64_t offset, Slice data) {
    HFAD_RETURN_IF_ERROR(root_status_);
    if (offset > size_) {
      return Status::OutOfRange("write at " + std::to_string(offset) + " beyond size " +
                                std::to_string(size_));
    }
    if (data.empty()) {
      return Status::Ok();
    }
    // Overwrite the covered part in place, then append whatever extends past the end.
    uint64_t covered = std::min<uint64_t>(data.size(), size_ - offset);
    if (covered > 0) {
      std::vector<Piece> pieces;
      HFAD_RETURN_IF_ERROR(CollectPieces(root_, offset, covered, &pieces));
      uint64_t done = 0;
      for (const Piece& piece : pieces) {
        HFAD_RETURN_IF_ERROR(pager_->WriteRaw(
            piece.device_offset, Slice(data.data() + done, piece.length)));
        done += piece.length;
      }
    }
    if (covered < data.size()) {
      HFAD_RETURN_IF_ERROR(
          Insert(size_, Slice(data.data() + covered, data.size() - covered)));
    }
    return Status::Ok();
  }

  Status Insert(uint64_t offset, Slice data) {
    HFAD_RETURN_IF_ERROR(root_status_);
    if (offset > size_) {
      return Status::OutOfRange("insert at " + std::to_string(offset) + " beyond size " +
                                std::to_string(size_));
    }
    if (data.empty()) {
      return Status::Ok();
    }
    stats::Add(stats::Counter::kIndexTraversals);
    if (root_ == 0) {
      HFAD_ASSIGN_OR_RETURN(root_, NewPage(kExtentLeaf));
    }
    // Make `offset` an extent boundary, then add the new extents one chunk at a time.
    HFAD_RETURN_IF_ERROR(SplitBoundary(offset));
    uint64_t at = offset;
    size_t done = 0;
    while (done < data.size()) {
      size_t chunk = std::min<size_t>(kMaxExtentSize, data.size() - done);
      HFAD_ASSIGN_OR_RETURN(BuddyAllocator::Extent ext, alloc_->Allocate(chunk));
      HFAD_RETURN_IF_ERROR(pager_->WriteRaw(ext.offset, Slice(data.data() + done, chunk)));
      Entry e{ext.offset, chunk};
      HFAD_RETURN_IF_ERROR(InsertExtentAt(at, e));
      size_ += chunk;
      at += chunk;
      done += chunk;
    }
    return Status::Ok();
  }

  Status RemoveRange(uint64_t offset, uint64_t length) {
    HFAD_RETURN_IF_ERROR(root_status_);
    if (offset > size_ || length > size_ - offset) {
      return Status::OutOfRange("remove [" + std::to_string(offset) + ", +" +
                                std::to_string(length) + ") beyond size " +
                                std::to_string(size_));
    }
    if (length == 0) {
      return Status::Ok();
    }
    stats::Add(stats::Counter::kIndexTraversals);
    HFAD_RETURN_IF_ERROR(SplitBoundary(offset));
    HFAD_RETURN_IF_ERROR(SplitBoundary(offset + length));
    uint64_t removed = 0;
    HFAD_RETURN_IF_ERROR(RemoveRec(root_, offset, length, &removed));
    if (removed != length) {
      return Status::Internal("removed " + std::to_string(removed) + " of " +
                              std::to_string(length) + " bytes");
    }
    size_ -= length;
    // Collapse a root with a single child (or free an empty root).
    for (;;) {
      if (root_ == 0) {
        return Status::Ok();
      }
      HFAD_ASSIGN_OR_RETURN(PageRef rootp, pager_->Get(root_));
      uint16_t n = Count(*rootp);
      if (PageType(*rootp) == kExtentLeaf) {
        if (n == 0) {
          HFAD_RETURN_IF_ERROR(FreePage(root_));
          root_ = 0;
        }
        return Status::Ok();
      }
      if (n == 0) {
        HFAD_RETURN_IF_ERROR(FreePage(root_));
        root_ = 0;
        return Status::Ok();
      }
      if (n == 1) {
        uint64_t child = GetEntry(*rootp, 0).a;
        HFAD_RETURN_IF_ERROR(FreePage(root_));
        root_ = child;
        continue;
      }
      return Status::Ok();
    }
  }

  Status Clear() {
    HFAD_RETURN_IF_ERROR(root_status_);
    if (root_ != 0) {
      HFAD_RETURN_IF_ERROR(FreeSubtree(root_));
      root_ = 0;
    }
    size_ = 0;
    return Status::Ok();
  }

  Result<uint64_t> CountExtents() const {
    HFAD_RETURN_IF_ERROR(root_status_);
    if (root_ == 0) {
      return uint64_t{0};
    }
    return CountExtentsRec(root_);
  }

  Status CheckInvariants() const {
    HFAD_RETURN_IF_ERROR(root_status_);
    if (root_ == 0) {
      return size_ == 0 ? Status::Ok() : Status::Corruption("empty tree with nonzero size");
    }
    uint64_t total = 0;
    HFAD_RETURN_IF_ERROR(CheckRec(root_, &total));
    if (total != size_) {
      return Status::Corruption("tree total " + std::to_string(total) +
                                " != cached size " + std::to_string(size_));
    }
    return Status::Ok();
  }

 private:
  Result<uint64_t> NewPage(uint8_t type) {
    HFAD_ASSIGN_OR_RETURN(BuddyAllocator::Extent ext, alloc_->Allocate(kPageSize));
    HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->GetZeroed(ext.offset));
    InitPage(*page, type);
    return ext.offset;
  }

  Status FreePage(uint64_t off) {
    pager_->Invalidate(off);
    return alloc_->Free(off);
  }

  // Resolve logical [rel, rel+len) within the subtree at page_off into device pieces.
  Status CollectPieces(uint64_t page_off, uint64_t rel, uint64_t len,
                       std::vector<Piece>* out) const {
    if (len == 0) {
      return Status::Ok();
    }
    HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(page_off));
    stats::Add(stats::Counter::kBtreeNodeVisits);
    uint16_t cnt = Count(*page);
    uint64_t acc = 0;
    for (int i = 0; i < cnt && len > 0; i++) {
      Entry e = GetEntry(*page, i);
      uint64_t lo = acc;
      uint64_t hi = acc + e.b;
      if (hi <= rel) {
        acc = hi;
        continue;
      }
      if (lo >= rel + len) {
        break;
      }
      uint64_t in_lo = std::max(rel, lo) - lo;
      uint64_t in_len = std::min(rel + len, hi) - std::max(rel, lo);
      if (PageType(*page) == kExtentLeaf) {
        out->push_back(Piece{e.a + in_lo, in_len});
      } else {
        HFAD_RETURN_IF_ERROR(CollectPieces(e.a, in_lo, in_len, out));
      }
      acc = hi;
    }
    return Status::Ok();
  }

  // Ensure an extent boundary exists at logical offset k (0 <= k <= size_). If k falls
  // strictly inside an extent, the tail is copied to a fresh allocation and re-inserted as
  // its own extent. No net byte-count change.
  Status SplitBoundary(uint64_t k) {
    if (k == 0 || k == size_ || root_ == 0) {
      return Status::Ok();
    }
    // Locate the leaf entry containing k.
    uint64_t page_off = root_;
    uint64_t rel = k;
    PageRef page;
    for (;;) {
      HFAD_ASSIGN_OR_RETURN(page, pager_->Get(page_off));
      if (PageType(*page) == kExtentLeaf) {
        break;
      }
      uint16_t cnt = Count(*page);
      bool descended = false;
      uint64_t acc = 0;
      for (int i = 0; i < cnt; i++) {
        Entry e = GetEntry(*page, i);
        if (rel < acc + e.b || i == cnt - 1) {
          page_off = e.a;
          rel -= acc;
          descended = true;
          break;
        }
        acc += e.b;
      }
      if (!descended) {
        return Status::Corruption("extent interior with no children");
      }
    }
    int idx = 0;
    uint16_t cnt = Count(*page);
    while (idx < cnt && rel >= GetEntry(*page, idx).b) {
      rel -= GetEntry(*page, idx).b;
      idx++;
    }
    if (idx >= cnt || rel == 0) {
      return Status::Ok();  // Already a boundary.
    }
    Entry e = GetEntry(*page, idx);
    // Copy the tail [rel, e.b) into a fresh allocation.
    uint64_t tail_len = e.b - rel;
    std::string tail;
    HFAD_RETURN_IF_ERROR(pager_->ReadRaw(e.a + rel, static_cast<size_t>(tail_len), &tail));
    HFAD_ASSIGN_OR_RETURN(BuddyAllocator::Extent ext, alloc_->Allocate(tail_len));
    HFAD_RETURN_IF_ERROR(pager_->WriteRaw(ext.offset, Slice(tail)));
    // Shrink the head in place; ancestors lose tail_len until the insert restores it.
    SetEntry(*page, idx, Entry{e.a, rel});
    HFAD_RETURN_IF_ERROR(AdjustAncestors(k - 1, -static_cast<int64_t>(tail_len)));
    size_ -= tail_len;
    Status s = InsertExtentAt(k, Entry{ext.offset, tail_len});
    if (s.ok()) {
      size_ += tail_len;
    }
    return s;
  }

  // Add delta to every interior entry on the descent path covering logical offset `at`
  // (evaluated against pre-adjustment totals).
  Status AdjustAncestors(uint64_t at, int64_t delta) {
    if (root_ == 0) {
      return Status::Ok();
    }
    uint64_t page_off = root_;
    uint64_t rel = at;
    for (;;) {
      HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(page_off));
      if (PageType(*page) == kExtentLeaf) {
        return Status::Ok();
      }
      uint16_t cnt = Count(*page);
      bool descended = false;
      uint64_t acc = 0;
      for (int i = 0; i < cnt; i++) {
        Entry e = GetEntry(*page, i);
        if (rel < acc + e.b || i == cnt - 1) {
          SetEntry(*page, i, Entry{e.a, e.b + static_cast<uint64_t>(delta)});
          page_off = e.a;
          rel -= acc;
          descended = true;
          break;
        }
        acc += e.b;
      }
      if (!descended) {
        return Status::Corruption("extent interior with no children");
      }
    }
  }

  struct SplitOut {
    bool did_split = false;
    Entry right;  // (new page, its byte total)
  };

  // Insert extent `e` so that it begins at logical offset `at` (which must be an existing
  // boundary, or the end of the object). Handles page splits up to the root.
  Status InsertExtentAt(uint64_t at, Entry e) {
    SplitOut out;
    HFAD_RETURN_IF_ERROR(InsertRec(root_, at, e, &out));
    if (out.did_split) {
      HFAD_ASSIGN_OR_RETURN(uint64_t new_root, NewPage(kExtentInterior));
      HFAD_ASSIGN_OR_RETURN(PageRef rp, pager_->Get(new_root));
      HFAD_ASSIGN_OR_RETURN(PageRef old, pager_->Get(root_));
      InsertEntryAt(*rp, 0, Entry{root_, SumBytes(*old)});
      InsertEntryAt(*rp, 1, out.right);
      root_ = new_root;
    }
    return Status::Ok();
  }

  Status InsertRec(uint64_t page_off, uint64_t rel, Entry e, SplitOut* out) {
    HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(page_off));
    stats::Add(stats::Counter::kBtreeNodeVisits);
    uint16_t cnt = Count(*page);
    if (PageType(*page) == kExtentLeaf) {
      int idx = 0;
      uint64_t acc = 0;
      while (idx < cnt && acc < rel) {
        acc += GetEntry(*page, idx).b;
        idx++;
      }
      if (acc != rel) {
        return Status::Internal("insert offset is not an extent boundary");
      }
      if (cnt < kMaxEntries) {
        InsertEntryAt(*page, idx, e);
        return Status::Ok();
      }
      // Split the leaf: upper half moves to a new right page.
      HFAD_ASSIGN_OR_RETURN(uint64_t right_off, NewPage(kExtentLeaf));
      HFAD_ASSIGN_OR_RETURN(PageRef right, pager_->Get(right_off));
      int mid = cnt / 2;
      for (int i = mid; i < cnt; i++) {
        InsertEntryAt(*right, i - mid, GetEntry(*page, i));
      }
      SetCount(*page, static_cast<uint16_t>(mid));
      page->MarkDirty();
      if (idx <= mid) {
        int i2 = 0;
        uint64_t a2 = 0;
        while (i2 < Count(*page) && a2 < rel) {
          a2 += GetEntry(*page, i2).b;
          i2++;
        }
        InsertEntryAt(*page, i2, e);
      } else {
        uint64_t left_bytes = SumBytes(*page);
        uint64_t r = rel - left_bytes;
        int i2 = 0;
        uint64_t a2 = 0;
        while (i2 < Count(*right) && a2 < r) {
          a2 += GetEntry(*right, i2).b;
          i2++;
        }
        InsertEntryAt(*right, i2, e);
      }
      out->did_split = true;
      out->right = Entry{right_off, SumBytes(*right)};
      return Status::Ok();
    }
    // Interior: pick the first child with rel <= its cumulative end; boundary offsets go
    // to the earlier child so appends recurse into the last child naturally.
    int idx = -1;
    uint64_t child_rel = rel;
    for (int i = 0; i < cnt; i++) {
      Entry ce = GetEntry(*page, i);
      if (child_rel <= ce.b) {
        idx = i;
        break;
      }
      child_rel -= ce.b;
    }
    if (idx < 0) {
      return Status::Internal("insert offset beyond interior coverage");
    }
    Entry child_entry = GetEntry(*page, idx);
    SplitOut child_out;
    HFAD_RETURN_IF_ERROR(InsertRec(child_entry.a, child_rel, e, &child_out));
    uint64_t new_child_bytes = child_entry.b + e.b;
    if (child_out.did_split) {
      new_child_bytes -= child_out.right.b;
    }
    SetEntry(*page, idx, Entry{child_entry.a, new_child_bytes});
    if (!child_out.did_split) {
      return Status::Ok();
    }
    if (cnt < kMaxEntries) {
      InsertEntryAt(*page, idx + 1, child_out.right);
      return Status::Ok();
    }
    // Split this interior page, then place the new child entry in the proper half.
    HFAD_ASSIGN_OR_RETURN(uint64_t right_off, NewPage(kExtentInterior));
    HFAD_ASSIGN_OR_RETURN(PageRef right, pager_->Get(right_off));
    int mid = cnt / 2;
    for (int i = mid; i < cnt; i++) {
      InsertEntryAt(*right, i - mid, GetEntry(*page, i));
    }
    SetCount(*page, static_cast<uint16_t>(mid));
    page->MarkDirty();
    if (idx + 1 < mid) {
      InsertEntryAt(*page, idx + 1, child_out.right);
    } else {
      InsertEntryAt(*right, idx + 1 - mid, child_out.right);
    }
    out->did_split = true;
    out->right = Entry{right_off, SumBytes(*right)};
    return Status::Ok();
  }

  // Remove logical [rel, rel+len) from the subtree at page_off. Both ends are extent
  // boundaries (SplitBoundary ran first). Accumulates bytes removed into *removed.
  // Offsets are evaluated against the subtree's *original* layout.
  Status RemoveRec(uint64_t page_off, uint64_t rel, uint64_t len, uint64_t* removed) {
    HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(page_off));
    uint16_t cnt = Count(*page);
    if (PageType(*page) == kExtentLeaf) {
      uint64_t acc = 0;
      int i = 0;
      // Advance to the first entry at or past rel, tracking original offsets.
      while (i < cnt) {
        Entry e = GetEntry(*page, i);
        if (acc >= rel) {
          break;
        }
        if (acc + e.b > rel) {
          return Status::Internal("remove start is not an extent boundary");
        }
        acc += e.b;
        i++;
      }
      // Remove whole entries while they fall inside [rel, rel+len).
      while (i < Count(*page) && acc < rel + len) {
        Entry e = GetEntry(*page, i);
        if (acc + e.b > rel + len) {
          return Status::Internal("remove end is not an extent boundary");
        }
        HFAD_RETURN_IF_ERROR(alloc_->Free(e.a));
        *removed += e.b;
        acc += e.b;
        RemoveEntryAt(*page, i);  // Entry i disappears; successor shifts into i.
      }
      return Status::Ok();
    }
    // Interior: remove the overlap from each child, evaluated against original layout.
    uint64_t acc = 0;
    int i = 0;
    while (i < Count(*page)) {
      Entry ce = GetEntry(*page, i);
      uint64_t lo = acc;
      uint64_t hi = acc + ce.b;
      if (hi <= rel) {
        acc = hi;
        i++;
        continue;
      }
      if (lo >= rel + len) {
        break;
      }
      uint64_t in_lo = std::max(rel, lo) - lo;
      uint64_t in_len = std::min(rel + len, hi) - std::max(rel, lo);
      uint64_t before = *removed;
      HFAD_RETURN_IF_ERROR(RemoveRec(ce.a, in_lo, in_len, removed));
      uint64_t got = *removed - before;
      if (got != in_len) {
        return Status::Internal("child removed unexpected byte count");
      }
      uint64_t new_bytes = ce.b - got;
      if (new_bytes == 0) {
        HFAD_RETURN_IF_ERROR(FreeDrainedSubtree(ce.a));
        RemoveEntryAt(*page, i);
      } else {
        SetEntry(*page, i, Entry{ce.a, new_bytes});
        i++;
      }
      acc = hi;  // Original layout position.
    }
    return Status::Ok();
  }

  // Free a subtree whose byte total has reached zero (all leaf entries already removed).
  Status FreeDrainedSubtree(uint64_t off) {
    HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(off));
    if (PageType(*page) == kExtentInterior) {
      uint16_t n = Count(*page);
      for (int i = 0; i < n; i++) {
        HFAD_RETURN_IF_ERROR(FreeDrainedSubtree(GetEntry(*page, i).a));
      }
    }
    return FreePage(off);
  }

  Status FreeSubtree(uint64_t off) {
    HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(off));
    uint16_t n = Count(*page);
    if (PageType(*page) == kExtentInterior) {
      for (int i = 0; i < n; i++) {
        HFAD_RETURN_IF_ERROR(FreeSubtree(GetEntry(*page, i).a));
      }
    } else {
      for (int i = 0; i < n; i++) {
        HFAD_RETURN_IF_ERROR(alloc_->Free(GetEntry(*page, i).a));
      }
    }
    return FreePage(off);
  }

  Result<uint64_t> CountExtentsRec(uint64_t off) const {
    HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(off));
    uint16_t n = Count(*page);
    if (PageType(*page) == kExtentLeaf) {
      return static_cast<uint64_t>(n);
    }
    uint64_t total = 0;
    for (int i = 0; i < n; i++) {
      HFAD_ASSIGN_OR_RETURN(uint64_t sub, CountExtentsRec(GetEntry(*page, i).a));
      total += sub;
    }
    return total;
  }

  Status CheckRec(uint64_t off, uint64_t* total) const {
    HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(off));
    uint16_t n = Count(*page);
    if (PageType(*page) == kExtentLeaf) {
      for (int i = 0; i < n; i++) {
        Entry e = GetEntry(*page, i);
        if (e.b == 0) {
          return Status::Corruption("zero-length extent");
        }
        *total += e.b;
      }
      return Status::Ok();
    }
    if (PageType(*page) != kExtentInterior) {
      return Status::Corruption("bad extent page type");
    }
    for (int i = 0; i < n; i++) {
      Entry e = GetEntry(*page, i);
      uint64_t child_total = 0;
      HFAD_RETURN_IF_ERROR(CheckRec(e.a, &child_total));
      if (child_total != e.b) {
        return Status::Corruption("interior byte total mismatch: entry says " +
                                  std::to_string(e.b) + ", children sum to " +
                                  std::to_string(child_total));
      }
      *total += e.b;
    }
    return Status::Ok();
  }

  Pager* const pager_;
  BuddyAllocator* const alloc_;
  uint64_t root_;
  uint64_t size_ = 0;
  // Set when the constructor could not load the root page; every op fails with
  // it rather than treating the tree as empty.
  Status root_status_;
};

ExtentTree::ExtentTree(Pager* pager, BuddyAllocator* allocator, uint64_t root_offset)
    : impl_(std::make_unique<Impl>(pager, allocator, root_offset)) {}
ExtentTree::~ExtentTree() = default;

uint64_t ExtentTree::root() const { return impl_->root(); }
uint64_t ExtentTree::Size() const { return impl_->Size(); }
Status ExtentTree::Read(uint64_t offset, size_t n, std::string* out) const {
  return impl_->Read(offset, n, out);
}
Status ExtentTree::Write(uint64_t offset, Slice data) { return impl_->Write(offset, data); }
Status ExtentTree::Insert(uint64_t offset, Slice data) { return impl_->Insert(offset, data); }
Status ExtentTree::RemoveRange(uint64_t offset, uint64_t length) {
  return impl_->RemoveRange(offset, length);
}
Status ExtentTree::Clear() { return impl_->Clear(); }
Result<uint64_t> ExtentTree::CountExtents() const { return impl_->CountExtents(); }
Status ExtentTree::CheckInvariants() const { return impl_->CheckInvariants(); }

}  // namespace extent
}  // namespace hfad
