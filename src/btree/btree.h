// Slotted-page B+tree over the pager — hFAD's replacement for Berkeley DB btrees (§3.4).
//
// One BTree instance is one persistent ordered map from byte-string keys to byte-string
// values. hFAD uses these for: the object table (OID -> object record), per-object metadata,
// every string index store (POSIX paths, USER/UDEF/APP tags), term dictionaries for the
// full-text engine, and directories in the hierarchical baseline.
//
// Layout: 4 KiB slotted pages. Leaf pages are doubly linked for range scans. Values larger
// than kMaxInlineValue spill into buddy-allocated overflow extents. Keys are limited to
// kMaxKeySize (names and tags are short; object data goes through the extent tree, not here).
//
// Deletion uses the "merge empty pages only" discipline (as LMDB does): pages may become
// underfull but are reclaimed as soon as they are empty; interior separators are routing
// lower-bounds and may be stale, which never affects correctness.
//
// Concurrency: a reader/writer lock per tree. Cursors must not be used concurrently with
// writes to the same tree. Cross-tree operations need no shared lock — this is precisely the
// paper's §2.3 point: independent indexes have no shared ancestor to synchronize through.
#ifndef HFAD_SRC_BTREE_BTREE_H_
#define HFAD_SRC_BTREE_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/storage/buddy_allocator.h"
#include "src/storage/pager.h"

namespace hfad {
namespace btree {

constexpr size_t kMaxKeySize = 512;
// Values above this spill to overflow extents. The bound is chosen so that twice the
// maximal encoded cell (key + value + framing + slot) fits in a page, which guarantees a
// byte-aware page split always has a legal split point.
constexpr size_t kMaxInlineValue = 1500;

class BTree {
 public:
  // root_offset == 0 opens an empty tree; the root page is allocated on first insert.
  // The caller owns pager/allocator and must persist root() when it changes.
  BTree(Pager* pager, BuddyAllocator* allocator, uint64_t root_offset);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  // Current root page offset (0 while empty). Persist this to reopen the tree.
  uint64_t root() const;

  // Point lookup. NotFound if absent.
  Result<std::string> Get(Slice key) const;
  bool Contains(Slice key) const;

  // Insert or overwrite. `inserted`, when non-null, reports whether the key was newly
  // inserted (vs. an overwrite) — callers maintaining external cardinality caches get
  // the answer without a separate Count() round-trip.
  Status Put(Slice key, Slice value, bool* inserted = nullptr);

  // Sorted-batch insert: entries must be in ascending key order (adjacent duplicates
  // are legal; the later one wins, matching a Put sequence). Takes the tree lock and
  // the pager mutation hold once for the whole batch, and reuses the located leaf
  // across consecutive entries while interior routing permits, so a sorted batch costs
  // far fewer descents than the equivalent Put loop. `inserted`, when non-null,
  // receives the number of keys newly inserted (overwrites excluded). Out-of-order
  // input fails with InvalidArgument before any mutation.
  Status BulkLoad(const std::vector<std::pair<std::string, std::string>>& entries,
                  uint64_t* inserted = nullptr);

  // Remove. NotFound if absent.
  Status Delete(Slice key);

  // Number of live entries. O(1): maintained since open (lazily counted on first call
  // for trees opened from an existing root).
  uint64_t Count() const;

  // Visit entries in [first, last) in key order; stop early by returning false from fn.
  // Pass empty last to scan to the end.
  Status Scan(Slice first, Slice last,
              const std::function<bool(Slice key, Slice value)>& fn) const;

  // Visit all entries whose key starts with prefix, in order.
  Status ScanPrefix(Slice prefix, const std::function<bool(Slice key, Slice value)>& fn) const;

  // Delete every entry, freeing all pages and overflow extents. root() becomes 0.
  Status Clear();

  // Structural self-check (test support): verifies page types, key ordering within and
  // across pages, sibling links, and separator routing. Expensive.
  Status CheckInvariants() const;

  // Tree height (0 for empty, 1 for a single leaf). Test/bench support.
  Result<int> Height() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace btree
}  // namespace hfad

#endif  // HFAD_SRC_BTREE_BTREE_H_
