#include "src/btree/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/coding.h"
#include "src/common/stats.h"

namespace hfad {
namespace btree {
namespace {

// Page header layout (both leaf and interior pages):
//   [0]      u8  page type (kLeafPage / kInteriorPage)
//   [1]      u8  unused
//   [2..3]   u16 slot count
//   [4..5]   u16 cell area start (cells occupy [cell_start, kPageSize))
//   [6..7]   u16 garbage bytes (dead cell space reclaimable by compaction)
//   [8..15]  u64 leaf: right sibling offset | interior: leftmost child offset
//   [16..23] u64 leaf: left sibling offset  | interior: unused
//   [24..]   u16 slot array; each slot is the in-page offset of a cell
//
// Leaf cell:     varint32 klen | key | u8 kind | kind==0: varint32 vlen, value bytes
//                                              | kind==1: u64 extent offset, u64 value length
// Interior cell: varint32 klen | key | u64 child page offset
constexpr uint8_t kLeafPage = 1;
constexpr uint8_t kInteriorPage = 2;
constexpr size_t kHdrType = 0;
constexpr size_t kHdrNSlots = 2;
constexpr size_t kHdrCellStart = 4;
constexpr size_t kHdrGarbage = 6;
constexpr size_t kHdrLink0 = 8;
constexpr size_t kHdrLink1 = 16;
constexpr size_t kHdrSize = 24;

constexpr uint8_t kValueInline = 0;
constexpr uint8_t kValueOverflow = 1;

uint8_t PageType(const Page& p) { return p.data()[kHdrType]; }
void SetPageType(Page& p, uint8_t t) { p.data()[kHdrType] = t; }

uint16_t NSlots(const Page& p) { return DecodeFixed16(p.data() + kHdrNSlots); }
void SetNSlots(Page& p, uint16_t n) { EncodeFixed16(p.data() + kHdrNSlots, n); }

uint16_t CellStart(const Page& p) { return DecodeFixed16(p.data() + kHdrCellStart); }
void SetCellStart(Page& p, uint16_t v) { EncodeFixed16(p.data() + kHdrCellStart, v); }

uint16_t Garbage(const Page& p) { return DecodeFixed16(p.data() + kHdrGarbage); }
void SetGarbage(Page& p, uint16_t v) { EncodeFixed16(p.data() + kHdrGarbage, v); }

uint64_t Link0(const Page& p) { return DecodeFixed64(p.data() + kHdrLink0); }
void SetLink0(Page& p, uint64_t v) { EncodeFixed64(p.data() + kHdrLink0, v); }

uint64_t Link1(const Page& p) { return DecodeFixed64(p.data() + kHdrLink1); }
void SetLink1(Page& p, uint64_t v) { EncodeFixed64(p.data() + kHdrLink1, v); }

uint16_t SlotAt(const Page& p, int i) { return DecodeFixed16(p.data() + kHdrSize + 2 * i); }
void SetSlotAt(Page& p, int i, uint16_t v) { EncodeFixed16(p.data() + kHdrSize + 2 * i, v); }

void InitPage(Page& p, uint8_t type) {
  memset(p.data(), 0, kPageSize);
  SetPageType(p, type);
  SetCellStart(p, static_cast<uint16_t>(kPageSize));
}

size_t FreeSpace(const Page& p) {
  return CellStart(p) - (kHdrSize + 2 * static_cast<size_t>(NSlots(p)));
}

// A decoded cell. `raw` spans the complete encoded cell within the page buffer.
struct Cell {
  Slice key;
  uint8_t kind = kValueInline;    // Leaf only.
  Slice inline_value;             // Leaf, kind == kValueInline.
  uint64_t overflow_offset = 0;   // Leaf, kind == kValueOverflow.
  uint64_t overflow_length = 0;
  uint64_t child = 0;             // Interior only.
  Slice raw;
};

bool ParseCell(const Page& p, int slot, Cell* out) {
  uint16_t off = SlotAt(p, slot);
  if (off < kHdrSize || off >= kPageSize) {
    return false;
  }
  Slice in(p.cdata() + off, kPageSize - off);
  const char* start = in.data();
  uint32_t klen;
  if (!GetVarint32(&in, &klen) || in.size() < klen) {
    return false;
  }
  out->key = Slice(in.data(), klen);
  in.RemovePrefix(klen);
  if (PageType(p) == kLeafPage) {
    if (in.empty()) {
      return false;
    }
    out->kind = static_cast<uint8_t>(in[0]);
    in.RemovePrefix(1);
    if (out->kind == kValueInline) {
      uint32_t vlen;
      if (!GetVarint32(&in, &vlen) || in.size() < vlen) {
        return false;
      }
      out->inline_value = Slice(in.data(), vlen);
      in.RemovePrefix(vlen);
    } else {
      if (!GetFixed64(&in, &out->overflow_offset) || !GetFixed64(&in, &out->overflow_length)) {
        return false;
      }
    }
  } else {
    if (!GetFixed64(&in, &out->child)) {
      return false;
    }
  }
  out->raw = Slice(start, static_cast<size_t>(in.data() - start));
  return true;
}

// Key-only decode for search probes: LowerBound/ChildIndexFor compare keys dozens of
// times per descent and never need the value/child fields, so skip decoding them.
bool ParseCellKey(const Page& p, int slot, Slice* key) {
  uint16_t off = SlotAt(p, slot);
  if (off < kHdrSize || off >= kPageSize) {
    return false;
  }
  Slice in(p.cdata() + off, kPageSize - off);
  uint32_t klen;
  if (!GetVarint32(&in, &klen) || in.size() < klen) {
    return false;
  }
  *key = Slice(in.data(), klen);
  return true;
}

std::string EncodeLeafCell(Slice key, uint8_t kind, Slice inline_value, uint64_t ov_offset,
                           uint64_t ov_length) {
  std::string cell;
  PutVarint32(&cell, static_cast<uint32_t>(key.size()));
  cell.append(key.data(), key.size());
  cell.push_back(static_cast<char>(kind));
  if (kind == kValueInline) {
    PutVarint32(&cell, static_cast<uint32_t>(inline_value.size()));
    cell.append(inline_value.data(), inline_value.size());
  } else {
    PutFixed64(&cell, ov_offset);
    PutFixed64(&cell, ov_length);
  }
  return cell;
}

std::string EncodeInteriorCell(Slice key, uint64_t child) {
  std::string cell;
  PutVarint32(&cell, static_cast<uint32_t>(key.size()));
  cell.append(key.data(), key.size());
  PutFixed64(&cell, child);
  return cell;
}

// First slot whose key is >= key; NSlots if none. Sets *exact when the key matches.
int LowerBound(const Page& p, Slice key, bool* exact) {
  int lo = 0;
  int hi = NSlots(p);
  *exact = false;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    Slice k;
    if (!ParseCellKey(p, mid, &k)) {
      // Corrupt cell: treat as greater so scans terminate; CheckInvariants reports it.
      hi = mid;
      continue;
    }
    int cmp = k.Compare(key);
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      if (cmp == 0) {
        *exact = true;
      }
      hi = mid;
    }
  }
  return lo;
}

// Child index to descend into for `key`: -1 means the leftmost child, otherwise the child
// of slot i. Children of slot i hold keys >= separator i.
int ChildIndexFor(const Page& p, Slice key) {
  int lo = 0;
  int hi = NSlots(p);
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    Slice k;
    if (!ParseCellKey(p, mid, &k)) {
      hi = mid;
      continue;
    }
    if (k.Compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;
}

// Insert an encoded cell at slot position pos. Caller guarantees space.
void InsertCellAt(Page& p, int pos, const std::string& cell) {
  uint16_t n = NSlots(p);
  uint16_t start = CellStart(p) - static_cast<uint16_t>(cell.size());
  memcpy(p.data() + start, cell.data(), cell.size());
  // Shift slots [pos, n) up by one.
  for (int i = n; i > pos; i--) {
    SetSlotAt(p, i, SlotAt(p, i - 1));
  }
  SetSlotAt(p, pos, start);
  SetNSlots(p, n + 1);
  SetCellStart(p, start);
  p.MarkDirty();
}

// Remove slot pos, accounting its cell as garbage.
void EraseSlotAt(Page& p, int pos) {
  Cell c;
  bool ok = ParseCell(p, pos, &c);
  uint16_t n = NSlots(p);
  for (int i = pos; i < n - 1; i++) {
    SetSlotAt(p, i, SlotAt(p, i + 1));
  }
  SetNSlots(p, n - 1);
  if (ok) {
    SetGarbage(p, Garbage(p) + static_cast<uint16_t>(c.raw.size()));
  }
  p.MarkDirty();
}

// Rewrite the page with only live cells, reclaiming garbage. Preserves slot order.
void CompactPage(Page& p) {
  uint16_t n = NSlots(p);
  std::vector<std::string> cells;
  cells.reserve(n);
  for (int i = 0; i < n; i++) {
    Cell c;
    if (ParseCell(p, i, &c)) {
      cells.push_back(c.raw.ToString());
    }
  }
  uint8_t type = PageType(p);
  uint64_t l0 = Link0(p);
  uint64_t l1 = Link1(p);
  InitPage(p, type);
  SetLink0(p, l0);
  SetLink1(p, l1);
  uint16_t start = static_cast<uint16_t>(kPageSize);
  for (size_t i = 0; i < cells.size(); i++) {
    start -= static_cast<uint16_t>(cells[i].size());
    memcpy(p.data() + start, cells[i].data(), cells[i].size());
    SetSlotAt(p, static_cast<int>(i), start);
  }
  SetNSlots(p, static_cast<uint16_t>(cells.size()));
  SetCellStart(p, start);
  p.MarkDirty();
}

// Byte-aware split point for an ordered cell list. Returns i such that left = [0, i) and
// right = [i, n) (or right = [i+1, n) when promote_middle, with cell i promoted upward)
// both fit in a fresh page including their slot arrays; prefers the most balanced choice.
// Returns 0 when no legal split exists — impossible while cells respect kMaxKeySize /
// kMaxInlineValue, and treated as corruption by callers.
size_t SplitPoint(const std::vector<std::string>& cells, bool promote_middle) {
  const size_t cap = kPageSize - kHdrSize;
  std::vector<size_t> prefix(cells.size() + 1, 0);
  for (size_t i = 0; i < cells.size(); i++) {
    prefix[i + 1] = prefix[i] + cells[i].size() + 2;  // +2 for the slot entry.
  }
  const size_t total = prefix.back();
  size_t best = 0;
  size_t best_score = SIZE_MAX;
  for (size_t i = 1; i < cells.size(); i++) {
    size_t left = prefix[i];
    size_t right = total - prefix[promote_middle ? i + 1 : i];
    if (left > cap || right > cap) {
      continue;
    }
    size_t score = left > right ? left - right : right - left;
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

// Rebuild a page from an ordered list of encoded cells (used on split).
void RebuildPage(Page& p, uint8_t type, const std::vector<std::string>& cells, uint64_t l0,
                 uint64_t l1) {
  InitPage(p, type);
  SetLink0(p, l0);
  SetLink1(p, l1);
  uint16_t start = static_cast<uint16_t>(kPageSize);
  for (size_t i = 0; i < cells.size(); i++) {
    start -= static_cast<uint16_t>(cells[i].size());
    memcpy(p.data() + start, cells[i].data(), cells[i].size());
    SetSlotAt(p, static_cast<int>(i), start);
  }
  SetNSlots(p, static_cast<uint16_t>(cells.size()));
  SetCellStart(p, start);
  p.MarkDirty();
}

}  // namespace

class BTree::Impl {
 public:
  Impl(Pager* pager, BuddyAllocator* allocator, uint64_t root)
      : pager_(pager), alloc_(allocator), root_(root) {}

  uint64_t root() const {
    std::shared_lock lock(mu_);
    return root_;
  }

  Result<std::string> Get(Slice key) const {
    std::shared_lock lock(mu_);
    stats::Add(stats::Counter::kIndexTraversals);
    if (root_ == 0) {
      return Status::NotFound("empty tree");
    }
    uint64_t page_off = root_;
    for (;;) {
      HFAD_ASSIGN_OR_RETURN(PageRef page, RootOrGet(page_off));
      stats::Add(stats::Counter::kBtreeNodeVisits);
      if (PageType(*page) == kLeafPage) {
        bool exact;
        int pos = LowerBound(*page, key, &exact);
        if (!exact) {
          return Status::NotFound("key absent");
        }
        Cell c;
        if (!ParseCell(*page, pos, &c)) {
          return Status::Corruption("unparseable leaf cell");
        }
        return ReadCellValue(c);
      }
      int ci = ChildIndexFor(*page, key);
      if (ci < 0) {
        page_off = Link0(*page);
      } else {
        Cell c;
        if (!ParseCell(*page, ci, &c)) {
          return Status::Corruption("unparseable interior cell");
        }
        page_off = c.child;
      }
      if (page_off == 0) {
        return Status::Corruption("null child pointer");
      }
    }
  }

  Status Put(Slice key, Slice value, bool* inserted = nullptr) {
    // The empty key is legal: the paper stores object metadata under a NULL key (§3.4).
    if (inserted != nullptr) {
      *inserted = false;
    }
    if (key.size() > kMaxKeySize) {
      return Status::InvalidArgument("key size " + std::to_string(key.size()) + " exceeds " +
                                     std::to_string(kMaxKeySize));
    }
    std::unique_lock lock(mu_);
    // Page mutations below span pager round-trips; hold the pager's mutation lock so a
    // concurrent checkpoint (Flush/CollectDirty) never snapshots a half-applied Put.
    auto mutation_hold = pager_->SharedMutationHold();
    stats::Add(stats::Counter::kIndexTraversals);
    if (root_ == 0) {
      HFAD_ASSIGN_OR_RETURN(uint64_t off, NewPage(kLeafPage));
      SetRoot(off);
    }
    // Pin the root page while the exclusive lock is held; shared-lock readers then hit
    // it without a pager round-trip (they never write root_ref_, so no read-side race).
    if (root_ref_ == nullptr || root_ref_->offset() != root_) {
      HFAD_ASSIGN_OR_RETURN(root_ref_, pager_->Get(root_));
    }
    // Encode the cell (spilling large values to an overflow extent first).
    std::string cell;
    uint64_t new_ov_offset = 0;
    if (value.size() > kMaxInlineValue) {
      HFAD_ASSIGN_OR_RETURN(BuddyAllocator::Extent ext, alloc_->Allocate(value.size()));
      HFAD_RETURN_IF_ERROR(pager_->WriteRaw(ext.offset, value));
      new_ov_offset = ext.offset;
      cell = EncodeLeafCell(key, kValueOverflow, Slice(), ext.offset, value.size());
    } else {
      cell = EncodeLeafCell(key, kValueInline, value, 0, 0);
    }

    // Append fastpath: oid-suffixed index keys and the oid-keyed object table insert in
    // ascending order almost always, landing on the rightmost leaf. When the pinned
    // rightmost leaf is still rightmost (no right sibling), strictly precedes the new
    // key, and has room, insert without a descent. The ref is only ever reset when this
    // tree frees or splits the page, so it cannot alias a reused page of another tree.
    if (rightmost_ref_ != nullptr && new_ov_offset == 0) {
      Page& rp = *rightmost_ref_;
      int n = NSlots(rp);
      Slice last_key;
      if (PageType(rp) == kLeafPage && Link0(rp) == 0 && n > 0 &&
          FreeSpace(rp) >= cell.size() + 2 && ParseCellKey(rp, n - 1, &last_key) &&
          key.Compare(last_key) > 0) {
        InsertCellAt(rp, n, cell);
        if (count_valid_) {
          count_++;
        }
        if (inserted != nullptr) {
          *inserted = true;
        }
        return Status::Ok();
      }
    }

    std::vector<Frame> path;
    HFAD_ASSIGN_OR_RETURN(PageRef leaf, DescendLocked(key, &path));

    bool exact;
    int pos = LowerBound(*leaf, key, &exact);
    if (exact) {
      Cell old;
      if (!ParseCell(*leaf, pos, &old)) {
        return Status::Corruption("unparseable leaf cell on update");
      }
      if (old.kind == kValueOverflow) {
        HFAD_RETURN_IF_ERROR(alloc_->Free(old.overflow_offset));
      }
      EraseSlotAt(*leaf, pos);
    } else {
      if (count_valid_) {
        count_++;
      }
      if (inserted != nullptr) {
        *inserted = true;
      }
    }

    Status s = InsertIntoLeaf(leaf, pos, cell, key, path);
    if (!s.ok() && new_ov_offset != 0) {
      (void)alloc_->Free(new_ov_offset);
    }
    if (s.ok() && Link0(*leaf) == 0 && PageType(*leaf) == kLeafPage) {
      // This leaf is (still) the rightmost: remember it for the append fastpath. A
      // split just now would have left it with a right sibling, failing the check.
      rightmost_ref_ = leaf;
    }
    return s;
  }

  Status BulkLoad(const std::vector<std::pair<std::string, std::string>>& entries,
                  uint64_t* inserted_out) {
    if (inserted_out != nullptr) {
      *inserted_out = 0;
    }
    if (entries.empty()) {
      return Status::Ok();
    }
    // Validate before mutating anything: a rejected batch must leave the tree untouched.
    for (size_t i = 0; i < entries.size(); i++) {
      if (entries[i].first.size() > kMaxKeySize) {
        return Status::InvalidArgument("bulk key size " + std::to_string(entries[i].first.size()) +
                                       " exceeds " + std::to_string(kMaxKeySize));
      }
      if (i > 0 && Slice(entries[i].first).Compare(Slice(entries[i - 1].first)) < 0) {
        return Status::InvalidArgument("bulk entries out of order at index " + std::to_string(i));
      }
    }
    std::unique_lock lock(mu_);
    auto mutation_hold = pager_->SharedMutationHold();
    stats::Add(stats::Counter::kIndexTraversals);
    if (root_ == 0) {
      HFAD_ASSIGN_OR_RETURN(uint64_t off, NewPage(kLeafPage));
      SetRoot(off);
    }
    if (root_ref_ == nullptr || root_ref_->offset() != root_) {
      HFAD_ASSIGN_OR_RETURN(root_ref_, pager_->Get(root_));
    }
    uint64_t inserted = 0;
    // Descent cache: the located leaf stays correct for every following key strictly
    // below the routing upper bound recorded during its descent, as long as no split
    // has rewritten the path since.
    PageRef hint_leaf;
    std::vector<Frame> hint_path;
    std::string hint_upper;
    bool hint_bounded = false;
    bool hint_valid = false;
    for (const auto& [key_str, value_str] : entries) {
      Slice key(key_str);
      Slice value(value_str);
      std::string cell;
      uint64_t new_ov_offset = 0;
      if (value.size() > kMaxInlineValue) {
        HFAD_ASSIGN_OR_RETURN(BuddyAllocator::Extent ext, alloc_->Allocate(value.size()));
        HFAD_RETURN_IF_ERROR(pager_->WriteRaw(ext.offset, value));
        new_ov_offset = ext.offset;
        cell = EncodeLeafCell(key, kValueOverflow, Slice(), ext.offset, value.size());
      } else {
        cell = EncodeLeafCell(key, kValueInline, value, 0, 0);
      }

      // Same rightmost-append fastpath as Put: a batch targeting the tail of the key
      // space (the common posting-store shape) never descends at all.
      if (rightmost_ref_ != nullptr && new_ov_offset == 0) {
        Page& rp = *rightmost_ref_;
        int n = NSlots(rp);
        Slice last_key;
        if (PageType(rp) == kLeafPage && Link0(rp) == 0 && n > 0 &&
            FreeSpace(rp) >= cell.size() + 2 && ParseCellKey(rp, n - 1, &last_key) &&
            key.Compare(last_key) > 0) {
          InsertCellAt(rp, n, cell);
          if (count_valid_) {
            count_++;
          }
          inserted++;
          continue;
        }
      }

      PageRef leaf;
      if (hint_valid && (!hint_bounded || key.Compare(Slice(hint_upper)) < 0)) {
        leaf = hint_leaf;
      } else {
        hint_path.clear();
        HFAD_ASSIGN_OR_RETURN(leaf, DescendLocked(key, &hint_path, &hint_upper, &hint_bounded));
        hint_leaf = leaf;
        hint_valid = true;
      }

      bool exact;
      int pos = LowerBound(*leaf, key, &exact);
      if (exact) {
        Cell old;
        if (!ParseCell(*leaf, pos, &old)) {
          return Status::Corruption("unparseable leaf cell on bulk update");
        }
        if (old.kind == kValueOverflow) {
          HFAD_RETURN_IF_ERROR(alloc_->Free(old.overflow_offset));
        }
        EraseSlotAt(*leaf, pos);
      } else {
        if (count_valid_) {
          count_++;
        }
        inserted++;
      }

      bool split = false;
      Status s = InsertIntoLeaf(leaf, pos, cell, key, hint_path, &split);
      if (!s.ok()) {
        if (new_ov_offset != 0) {
          (void)alloc_->Free(new_ov_offset);
        }
        return s;
      }
      if (split) {
        // The leaf was rebuilt and the path may now route differently; re-descend for
        // the next key.
        hint_valid = false;
        hint_leaf.reset();
        hint_path.clear();
      }
      if (Link0(*leaf) == 0 && PageType(*leaf) == kLeafPage) {
        rightmost_ref_ = leaf;
      }
    }
    if (inserted_out != nullptr) {
      *inserted_out = inserted;
    }
    return Status::Ok();
  }

  Status Delete(Slice key) {
    std::unique_lock lock(mu_);
    auto mutation_hold = pager_->SharedMutationHold();
    stats::Add(stats::Counter::kIndexTraversals);
    if (root_ == 0) {
      return Status::NotFound("empty tree");
    }
    std::vector<Frame> path;
    HFAD_ASSIGN_OR_RETURN(PageRef leaf, DescendLocked(key, &path));
    uint64_t leaf_off = leaf->offset();
    bool exact;
    int pos = LowerBound(*leaf, key, &exact);
    if (!exact) {
      return Status::NotFound("key absent");
    }
    Cell c;
    if (!ParseCell(*leaf, pos, &c)) {
      return Status::Corruption("unparseable leaf cell on delete");
    }
    if (c.kind == kValueOverflow) {
      HFAD_RETURN_IF_ERROR(alloc_->Free(c.overflow_offset));
    }
    EraseSlotAt(*leaf, pos);
    if (count_valid_ && count_ > 0) {
      count_--;
    }
    if (NSlots(*leaf) == 0) {
      HFAD_RETURN_IF_ERROR(RemoveEmptyLeaf(leaf_off, *leaf, path));
    }
    return Status::Ok();
  }

  bool Contains(Slice key) const { return Get(key).ok(); }

  uint64_t Count() const {
    {
      std::shared_lock lock(mu_);
      if (count_valid_) {
        return count_;
      }
    }
    std::unique_lock lock(mu_);
    if (count_valid_) {
      return count_;
    }
    uint64_t n = 0;
    Status s = ScanLocked(Slice(), Slice(), [&n](Slice, Slice) {
      n++;
      return true;
    });
    if (s.ok()) {
      count_ = n;
      count_valid_ = true;
    }
    return n;
  }

  Status Scan(Slice first, Slice last,
              const std::function<bool(Slice, Slice)>& fn) const {
    std::shared_lock lock(mu_);
    return ScanLocked(first, last, fn);
  }

  Status ScanPrefix(Slice prefix, const std::function<bool(Slice, Slice)>& fn) const {
    std::shared_lock lock(mu_);
    return ScanLocked(prefix, Slice(), [&](Slice k, Slice v) {
      if (!k.StartsWith(prefix)) {
        return false;
      }
      return fn(k, v);
    });
  }

  Status Clear() {
    std::unique_lock lock(mu_);
    auto mutation_hold = pager_->SharedMutationHold();
    if (root_ != 0) {
      HFAD_RETURN_IF_ERROR(FreeSubtree(root_));
      SetRoot(0);
    }
    count_ = 0;
    count_valid_ = true;
    return Status::Ok();
  }

  Status CheckInvariants() const {
    std::shared_lock lock(mu_);
    if (root_ == 0) {
      return Status::Ok();
    }
    return CheckSubtree(root_, Slice(), Slice(), nullptr);
  }

  Result<int> Height() const {
    std::shared_lock lock(mu_);
    if (root_ == 0) {
      return 0;
    }
    int h = 0;
    uint64_t off = root_;
    for (;;) {
      HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(off));
      h++;
      if (PageType(*page) == kLeafPage) {
        return h;
      }
      off = Link0(*page);
      if (off == 0) {
        return Status::Corruption("interior page with null leftmost child");
      }
    }
  }

 private:
  struct Frame {
    uint64_t page_off;
    int child_index;  // -1 = leftmost, otherwise slot index whose child we took.
  };

  Result<uint64_t> NewPage(uint8_t type) {
    HFAD_ASSIGN_OR_RETURN(BuddyAllocator::Extent ext, alloc_->Allocate(kPageSize));
    HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->GetZeroed(ext.offset));
    InitPage(*page, type);
    return ext.offset;
  }

  Status FreePage(uint64_t off) {
    if (rightmost_ref_ != nullptr && rightmost_ref_->offset() == off) {
      rightmost_ref_.reset();
    }
    pager_->Invalidate(off);
    return alloc_->Free(off);
  }

  Result<std::string> ReadCellValue(const Cell& c) const {
    if (c.kind == kValueInline) {
      return c.inline_value.ToString();
    }
    std::string out;
    HFAD_RETURN_IF_ERROR(
        pager_->ReadRaw(c.overflow_offset, static_cast<size_t>(c.overflow_length), &out));
    return out;
  }

  // Descend from the root to the leaf that owns `key`, recording the path. Returns the
  // leaf's PageRef so callers skip a second pager round-trip for it. When `upper` is
  // non-null it receives the tightest routing upper bound along the path: every key
  // strictly below it routes to the same leaf, so a sorted-batch caller can reuse the
  // leaf without re-descending. *bounded is false when the leaf is on the rightmost
  // spine (no upper bound exists).
  Result<PageRef> DescendLocked(Slice key, std::vector<Frame>* path,
                                std::string* upper = nullptr, bool* bounded = nullptr) const {
    if (bounded != nullptr) {
      *bounded = false;
    }
    uint64_t off = root_;
    for (;;) {
      HFAD_ASSIGN_OR_RETURN(PageRef page, RootOrGet(off));
      stats::Add(stats::Counter::kBtreeNodeVisits);
      if (PageType(*page) == kLeafPage) {
        return page;
      }
      int ci = ChildIndexFor(*page, key);
      if (upper != nullptr && ci + 1 < NSlots(*page)) {
        // Keys >= separator ci+1 route past this child; separators nest, so the
        // deepest one seen is the tightest bound.
        Slice sep;
        if (ParseCellKey(*page, ci + 1, &sep)) {
          upper->assign(sep.data(), sep.size());
          if (bounded != nullptr) {
            *bounded = true;
          }
        }
      }
      path->push_back(Frame{off, ci});
      uint64_t child;
      if (ci < 0) {
        child = Link0(*page);
      } else {
        Cell c;
        if (!ParseCell(*page, ci, &c)) {
          return Status::Corruption("unparseable interior cell in descent");
        }
        child = c.child;
      }
      if (child == 0) {
        return Status::Corruption("null child pointer in descent");
      }
      off = child;
    }
  }

  // Insert `cell` at slot `pos` of `leaf`, splitting up the recorded path as needed.
  // *split, when non-null, reports whether a page split occurred (which invalidates any
  // cached descent path into this leaf).
  Status InsertIntoLeaf(PageRef leaf, int pos, const std::string& cell, Slice /*key*/,
                        const std::vector<Frame>& path, bool* split = nullptr) {
    if (split != nullptr) {
      *split = false;
    }
    size_t need = cell.size() + 2;
    if (FreeSpace(*leaf) >= need) {
      InsertCellAt(*leaf, pos, cell);
      return Status::Ok();
    }
    if (Garbage(*leaf) > 0) {
      CompactPage(*leaf);
      if (FreeSpace(*leaf) >= need) {
        InsertCellAt(*leaf, pos, cell);
        return Status::Ok();
      }
    }
    if (split != nullptr) {
      *split = true;
    }
    // Split: gather all cells plus the new one, rebuild two pages.
    std::vector<std::string> cells;
    uint16_t n = NSlots(*leaf);
    cells.reserve(n + 1);
    for (int i = 0; i < n; i++) {
      Cell c;
      if (!ParseCell(*leaf, i, &c)) {
        return Status::Corruption("unparseable cell during split");
      }
      cells.push_back(c.raw.ToString());
    }
    cells.insert(cells.begin() + pos, cell);

    size_t mid = SplitPoint(cells, /*promote_middle=*/false);
    if (mid == 0) {
      return Status::Corruption("no legal leaf split point");
    }
    HFAD_ASSIGN_OR_RETURN(uint64_t right_off, NewPage(kLeafPage));
    HFAD_ASSIGN_OR_RETURN(PageRef right, pager_->Get(right_off));

    uint64_t old_next = Link0(*leaf);
    std::vector<std::string> left_cells(cells.begin(), cells.begin() + mid);
    std::vector<std::string> right_cells(cells.begin() + mid, cells.end());

    // Separator = first key of the right page (copy it out before rebuilding).
    Slice sep_in_cell;
    {
      // Decode the key length directly from the raw cell bytes.
      Slice in(right_cells[0]);
      uint32_t klen;
      if (!GetVarint32(&in, &klen) || in.size() < klen) {
        return Status::Corruption("bad cell during split");
      }
      sep_in_cell = Slice(in.data(), klen);
    }
    std::string sep = sep_in_cell.ToString();

    RebuildPage(*right, kLeafPage, right_cells, old_next, leaf->offset());
    RebuildPage(*leaf, kLeafPage, left_cells, right_off, Link1(*leaf));
    if (old_next != 0) {
      HFAD_ASSIGN_OR_RETURN(PageRef next, pager_->Get(old_next));
      SetLink1(*next, right_off);
      next->MarkDirty();
    }
    return InsertSeparator(path, sep, right_off);
  }

  // Insert (sep -> right_child) into the parent recorded at the back of `path`,
  // splitting interiors upward as needed.
  Status InsertSeparator(std::vector<Frame> path, std::string sep, uint64_t right_child) {
    for (;;) {
      if (path.empty()) {
        // Split reached the root: grow the tree.
        uint64_t old_root = root_;
        HFAD_ASSIGN_OR_RETURN(uint64_t new_root_off, NewPage(kInteriorPage));
        HFAD_ASSIGN_OR_RETURN(PageRef new_root, pager_->Get(new_root_off));
        SetLink0(*new_root, old_root);
        std::string cell = EncodeInteriorCell(sep, right_child);
        InsertCellAt(*new_root, 0, cell);
        SetRoot(new_root_off);
        return Status::Ok();
      }
      Frame frame = path.back();
      path.pop_back();
      HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(frame.page_off));
      std::string cell = EncodeInteriorCell(sep, right_child);
      bool exact;
      int pos = LowerBound(*page, Slice(sep), &exact);
      size_t need = cell.size() + 2;
      if (FreeSpace(*page) >= need) {
        InsertCellAt(*page, pos, cell);
        return Status::Ok();
      }
      if (Garbage(*page) > 0) {
        CompactPage(*page);
        if (FreeSpace(*page) >= need) {
          InsertCellAt(*page, pos, cell);
          return Status::Ok();
        }
      }
      // Split the interior page. Gather (cells + new one), promote the middle key.
      std::vector<std::string> cells;
      uint16_t n = NSlots(*page);
      cells.reserve(n + 1);
      for (int i = 0; i < n; i++) {
        Cell c;
        if (!ParseCell(*page, i, &c)) {
          return Status::Corruption("unparseable interior cell during split");
        }
        cells.push_back(c.raw.ToString());
      }
      cells.insert(cells.begin() + pos, cell);

      size_t mid = SplitPoint(cells, /*promote_middle=*/true);
      if (mid == 0) {
        return Status::Corruption("no legal interior split point");
      }
      // Decode the promoted cell (separator key + child).
      Slice in(cells[mid]);
      uint32_t klen;
      if (!GetVarint32(&in, &klen) || in.size() < klen + 8) {
        return Status::Corruption("bad interior cell during split");
      }
      std::string promoted_key(in.data(), klen);
      in.RemovePrefix(klen);
      uint64_t promoted_child = DecodeFixed64(in.udata());

      HFAD_ASSIGN_OR_RETURN(uint64_t right_off, NewPage(kInteriorPage));
      HFAD_ASSIGN_OR_RETURN(PageRef right, pager_->Get(right_off));
      std::vector<std::string> left_cells(cells.begin(), cells.begin() + mid);
      std::vector<std::string> right_cells(cells.begin() + mid + 1, cells.end());
      uint64_t leftmost = Link0(*page);
      RebuildPage(*right, kInteriorPage, right_cells, promoted_child, 0);
      RebuildPage(*page, kInteriorPage, left_cells, leftmost, 0);

      sep = std::move(promoted_key);
      right_child = right_off;
      // Loop continues upward with the promoted separator.
    }
  }

  // A leaf became empty: unlink from the sibling chain, free it, and remove its reference
  // from the parent (recursively shrinking empty interiors).
  Status RemoveEmptyLeaf(uint64_t leaf_off, Page& leaf, std::vector<Frame> path) {
    if (path.empty()) {
      // The leaf is the root: the tree is now empty.
      HFAD_RETURN_IF_ERROR(FreePage(leaf_off));
      SetRoot(0);
      return Status::Ok();
    }
    uint64_t next = Link0(leaf);
    uint64_t prev = Link1(leaf);
    if (prev != 0) {
      HFAD_ASSIGN_OR_RETURN(PageRef p, pager_->Get(prev));
      SetLink0(*p, next);
      p->MarkDirty();
    }
    if (next != 0) {
      HFAD_ASSIGN_OR_RETURN(PageRef p, pager_->Get(next));
      SetLink1(*p, prev);
      p->MarkDirty();
    }
    HFAD_RETURN_IF_ERROR(FreePage(leaf_off));
    return RemoveChildFromParent(path);
  }

  // Remove the child reference recorded by the last frame of `path` from its interior page.
  Status RemoveChildFromParent(std::vector<Frame> path) {
    for (;;) {
      Frame frame = path.back();
      path.pop_back();
      HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(frame.page_off));
      uint16_t n = NSlots(*page);
      if (frame.child_index < 0) {
        // Leftmost child vanished. Promote the first cell's child to leftmost.
        if (n > 0) {
          Cell c;
          if (!ParseCell(*page, 0, &c)) {
            return Status::Corruption("unparseable interior cell in shrink");
          }
          SetLink0(*page, c.child);
          EraseSlotAt(*page, 0);
          break;
        }
        // No children remain at all: free this interior and recurse.
        HFAD_RETURN_IF_ERROR(FreePage(frame.page_off));
        if (path.empty()) {
          SetRoot(0);
          return Status::Ok();
        }
        continue;
      }
      EraseSlotAt(*page, frame.child_index);
      break;
    }
    // Collapse a root interior that routes to a single child.
    for (;;) {
      if (root_ == 0) {
        return Status::Ok();
      }
      HFAD_ASSIGN_OR_RETURN(PageRef rootp, pager_->Get(root_));
      if (PageType(*rootp) != kInteriorPage || NSlots(*rootp) != 0) {
        return Status::Ok();
      }
      uint64_t only_child = Link0(*rootp);
      HFAD_RETURN_IF_ERROR(FreePage(root_));
      SetRoot(only_child);
    }
  }

  // Templated on the callback so per-entry dispatch inlines: index lookups are leaf
  // scans, and a std::function hop per cell is measurable there.
  template <typename Fn>
  Status ScanLocked(Slice first, Slice last, const Fn& fn) const {
    stats::Add(stats::Counter::kIndexTraversals);
    if (root_ == 0) {
      return Status::Ok();
    }
    std::vector<Frame> path;
    HFAD_ASSIGN_OR_RETURN(PageRef page, DescendLocked(first, &path));
    bool exact;
    int pos = first.empty() ? 0 : LowerBound(*page, first, &exact);
    // The leftmost matching key may live in a right sibling when `first` is greater than
    // every key in this leaf.
    for (;;) {
      uint16_t n = NSlots(*page);
      for (; pos < n; pos++) {
        Cell c;
        if (!ParseCell(*page, pos, &c)) {
          return Status::Corruption("unparseable cell in scan");
        }
        if (!last.empty() && c.key.Compare(last) >= 0) {
          return Status::Ok();
        }
        if (c.kind == kValueInline) {
          // Inline values go to the callback zero-copy (valid for the callback only).
          if (!fn(c.key, c.inline_value)) {
            return Status::Ok();
          }
          continue;
        }
        HFAD_ASSIGN_OR_RETURN(std::string value, ReadCellValue(c));
        if (!fn(c.key, Slice(value))) {
          return Status::Ok();
        }
      }
      uint64_t next = Link0(*page);
      if (next == 0) {
        return Status::Ok();
      }
      HFAD_ASSIGN_OR_RETURN(page, pager_->Get(next));
      stats::Add(stats::Counter::kBtreeNodeVisits);
      pos = 0;
    }
  }

  Status FreeSubtree(uint64_t off) {
    HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(off));
    if (PageType(*page) == kInteriorPage) {
      HFAD_RETURN_IF_ERROR(FreeSubtree(Link0(*page)));
      uint16_t n = NSlots(*page);
      for (int i = 0; i < n; i++) {
        Cell c;
        if (!ParseCell(*page, i, &c)) {
          return Status::Corruption("unparseable cell in FreeSubtree");
        }
        HFAD_RETURN_IF_ERROR(FreeSubtree(c.child));
      }
    } else {
      uint16_t n = NSlots(*page);
      for (int i = 0; i < n; i++) {
        Cell c;
        if (ParseCell(*page, i, &c) && c.kind == kValueOverflow) {
          HFAD_RETURN_IF_ERROR(alloc_->Free(c.overflow_offset));
        }
      }
    }
    return FreePage(off);
  }

  // Verify ordering/typing of the subtree at `off`; all keys must be in [lo, hi)
  // (empty bounds mean unbounded). Returns the leaf level depth via *depth when non-null.
  Status CheckSubtree(uint64_t off, Slice lo, Slice hi, int* depth) const {
    HFAD_ASSIGN_OR_RETURN(PageRef page, pager_->Get(off));
    uint16_t n = NSlots(*page);
    std::string prev;
    bool have_prev = false;
    for (int i = 0; i < n; i++) {
      Cell c;
      if (!ParseCell(*page, i, &c)) {
        return Status::Corruption("unparseable cell at page " + std::to_string(off));
      }
      if (have_prev && c.key.Compare(Slice(prev)) <= 0) {
        return Status::Corruption("keys out of order at page " + std::to_string(off));
      }
      if (!lo.empty() && c.key.Compare(lo) < 0) {
        return Status::Corruption("key below lower bound at page " + std::to_string(off));
      }
      if (!hi.empty() && c.key.Compare(hi) >= 0) {
        return Status::Corruption("key above upper bound at page " + std::to_string(off));
      }
      prev = c.key.ToString();
      have_prev = true;
    }
    if (PageType(*page) == kInteriorPage) {
      // Child i covers [sep_i, sep_{i+1}); leftmost covers [lo, sep_0).
      std::string prev_sep = lo.ToString();
      uint64_t prev_child = Link0(*page);
      for (int i = 0; i <= n; i++) {
        std::string next_sep;
        if (i < n) {
          Cell c;
          if (!ParseCell(*page, i, &c)) {
            return Status::Corruption("unparseable interior cell");
          }
          next_sep = c.key.ToString();
        } else {
          next_sep = hi.ToString();
        }
        HFAD_RETURN_IF_ERROR(
            CheckSubtree(prev_child, Slice(prev_sep), Slice(next_sep), nullptr));
        if (i < n) {
          Cell c;
          ParseCell(*page, i, &c);
          prev_sep = c.key.ToString();
          prev_child = c.child;
        }
      }
    }
    if (depth != nullptr) {
      *depth = 0;
    }
    return Status::Ok();
  }

  // Point the root cache at a (possibly) new root offset. Every root_ transition goes
  // through here so root_ref_ can never pin a freed-and-reused page across a change.
  void SetRoot(uint64_t off) {
    root_ = off;
    root_ref_.reset();
    // Conservative: any structural root change may also have moved/freed the rightmost
    // leaf (Clear, shrink-to-empty). The next descent-path Put re-caches it.
    rightmost_ref_.reset();
  }

  // Root page fastpath for descents. root_ref_ is written only under the exclusive
  // lock (Put/Delete/SetRoot), so shared-lock readers may copy it concurrently; a null
  // or mismatched ref just falls back to the pager.
  Result<PageRef> RootOrGet(uint64_t off) const {
    if (off == root_ && root_ref_ != nullptr && root_ref_->offset() == off) {
      return root_ref_;
    }
    return pager_->Get(off);
  }

  Pager* const pager_;
  BuddyAllocator* const alloc_;
  uint64_t root_;
  // Pinned ref to the current root page (see RootOrGet).
  PageRef root_ref_;
  // Pinned ref to the last known rightmost leaf (append fastpath in Put). Reset
  // whenever this tree frees the page or the root changes; revalidated on every use.
  PageRef rightmost_ref_;
  mutable std::shared_mutex mu_;
  mutable uint64_t count_ = 0;
  mutable bool count_valid_ = false;
};

BTree::BTree(Pager* pager, BuddyAllocator* allocator, uint64_t root_offset)
    : impl_(std::make_unique<Impl>(pager, allocator, root_offset)) {
  if (root_offset == 0) {
    // A brand-new tree is known-empty; no lazy count scan needed.
  }
}

BTree::~BTree() = default;

uint64_t BTree::root() const { return impl_->root(); }
Result<std::string> BTree::Get(Slice key) const { return impl_->Get(key); }
bool BTree::Contains(Slice key) const { return impl_->Contains(key); }
Status BTree::Put(Slice key, Slice value, bool* inserted) {
  return impl_->Put(key, value, inserted);
}
Status BTree::BulkLoad(const std::vector<std::pair<std::string, std::string>>& entries,
                       uint64_t* inserted) {
  return impl_->BulkLoad(entries, inserted);
}
Status BTree::Delete(Slice key) { return impl_->Delete(key); }
uint64_t BTree::Count() const { return impl_->Count(); }
Status BTree::Scan(Slice first, Slice last,
                   const std::function<bool(Slice, Slice)>& fn) const {
  return impl_->Scan(first, last, fn);
}
Status BTree::ScanPrefix(Slice prefix,
                         const std::function<bool(Slice, Slice)>& fn) const {
  return impl_->ScanPrefix(prefix, fn);
}
Status BTree::Clear() { return impl_->Clear(); }
Status BTree::CheckInvariants() const { return impl_->CheckInvariants(); }
Result<int> BTree::Height() const { return impl_->Height(); }

}  // namespace btree
}  // namespace hfad
