#include "src/core/fsck.h"

#include <set>

#include "src/index/index_store.h"

namespace hfad {
namespace core {

namespace {

// Key for the pending-intent suppression set: (oid, tag, value).
std::string PendingKey(ObjectId oid, const TagValue& name) {
  std::string key = std::to_string(oid);
  key.push_back('\0');
  key += name.tag;
  key.push_back('\0');
  key += name.value;
  return key;
}

}  // namespace

std::string FsckReport::ToString() const {
  std::string out = "fsck: " + std::to_string(objects_checked) + " objects, " +
                    std::to_string(names_checked) + " names, " +
                    std::to_string(postings_checked) + " indexed documents";
  if (shards_checked > 1) {
    out += " across " + std::to_string(shards_checked) + " shards";
  }
  if (clean()) {
    return out + " — clean";
  }
  out += " — " + std::to_string(problems.size()) + " problem(s):";
  for (const std::string& p : problems) {
    out += "\n  " + p;
  }
  return out;
}

Result<FsckReport> CheckFileSystem(FileSystem* fs) {
  FsckReport report;
  // All object probes route through the cluster: on a sharded filesystem ScanObjects
  // merges the per-shard tables into global oid order and CheckObject/Exists hit the
  // owning shard, so the invariants below hold across every volume at once.
  const osd::OsdCluster* cluster = fs->cluster();
  index::IndexCollection* indexes = fs->indexes();
  report.shards_checked = cluster->shard_count();

  // 1. Every object's data structures are internally consistent. Snapshot the oid list
  // first: CheckObject takes an object-shard lock, and mutators hold that lock while
  // updating the object table, so probing from inside ScanObjects' table lock would
  // invert the order (deadlock hazard when fsck runs beside live traffic).
  std::vector<ObjectId> oids;
  HFAD_RETURN_IF_ERROR(cluster->ScanObjects([&](ObjectId oid, const osd::ObjectMeta&) {
    oids.push_back(oid);
    return true;
  }));
  for (ObjectId oid : oids) {
    report.objects_checked++;
    Status s = cluster->CheckObject(oid);
    if (s.IsNotFound()) {
      continue;  // Deleted between snapshot and probe.
    }
    if (!s.ok()) {
      report.problems.push_back("object " + std::to_string(oid) + ": " + s.ToString());
    }
  }

  // Under lazy tag indexing the forward postings legitimately trail the reverse map by
  // exactly the acknowledged-but-unapplied intents. Snapshot that set ONCE, before
  // phases 2 and 3 probe anything: the background worker may apply ops mid-scan, and a
  // pre-phase snapshot can only over-suppress a transiently-stale pair, never report a
  // phantom orphan. Pairs with any pending intent (add or remove) are skipped in both
  // directions.
  std::set<std::string> pending;
  for (const auto& [oid, name] : fs->PendingIndexIntents()) {
    pending.insert(PendingKey(oid, name));
  }

  // 2. Reverse map -> forward indexes: no dangling names.
  HFAD_RETURN_IF_ERROR(fs->ScanAllNames([&](ObjectId oid, const TagValue& name) {
    report.names_checked++;
    if (!cluster->Exists(oid)) {
      report.problems.push_back("name " + name.tag + ":" + name.value +
                                " references dead object " + std::to_string(oid));
      return true;
    }
    const index::IndexStore* store = indexes->store(name.tag);
    if (store == nullptr) {
      report.problems.push_back("name with unregistered tag '" + name.tag + "' on object " +
                                std::to_string(oid));
      return true;
    }
    auto has = store->Contains(name.value, oid);
    if ((!has.ok() || !*has) && pending.count(PendingKey(oid, name)) == 0) {
      report.problems.push_back("reverse name " + name.tag + ":" + name.value +
                                " missing from forward index (object " +
                                std::to_string(oid) + ")");
    }
    return true;
  }));

  // 3. Forward indexes -> reverse map: no orphaned entries, no dead objects.
  // Snapshot each store's entries before probing: HasName takes a tag-shard lock, and
  // the lock order is tag shards before store locks (docs/CONCURRENCY.md), so the
  // probes must not run inside ScanValues' store lock.
  for (const std::string& tag : indexes->tags()) {
    const index::IndexStore* store = indexes->store(tag);
    std::vector<std::pair<std::string, ObjectId>> entries;
    Status scan = store->ScanValues("", [&](Slice value, ObjectId oid) {
      entries.emplace_back(value.ToString(), oid);
      return true;
    });
    if (!scan.ok() && scan.code() != StatusCode::kNotSupported) {
      return scan;  // Real IO failure; NotSupported just means non-enumerable store.
    }
    for (const auto& [value, oid] : entries) {
      if (!cluster->Exists(oid)) {
        // A pending remove intent (Remove() on a lazy filesystem deletes the object
        // before the worker strips its postings) is not an inconsistency.
        if (pending.count(PendingKey(oid, {tag, value})) == 0) {
          report.problems.push_back("index " + tag + " entry '" + value +
                                    "' references dead object " + std::to_string(oid));
        }
        continue;
      }
      if (!fs->HasName(oid, {tag, value}) &&
          pending.count(PendingKey(oid, {tag, value})) == 0) {
        report.problems.push_back("index " + tag + " entry '" + value +
                                  "' has no reverse name (object " + std::to_string(oid) +
                                  ")");
      }
    }
  }

  // 4. Full-text postings reference live objects.
  auto* ft = static_cast<index::FullTextIndexStore*>(indexes->store(index::kTagFulltext));
  HFAD_RETURN_IF_ERROR(ft->engine()->ScanDocuments([&](uint64_t docid) {
    report.postings_checked++;
    if (!cluster->Exists(docid)) {
      report.problems.push_back("full-text index contains dead object " +
                                std::to_string(docid));
    }
    return true;
  }));

  // 5. Pages the scrubber quarantined are lost until something rewrites them; surface
  // each one so the operator knows which shard/offset needs attention.
  for (size_t k = 0; k < cluster->shard_count(); k++) {
    const PageChecksums* cksums = cluster->shard(k)->checksums();
    if (cksums == nullptr) {
      continue;
    }
    for (uint64_t offset : cksums->QuarantinedPages()) {
      report.quarantined_pages++;
      report.problems.push_back("shard " + std::to_string(k) + ": quarantined page at offset " +
                                std::to_string(offset) + " (scrub-confirmed corruption)");
    }
  }

  return report;
}

}  // namespace core
}  // namespace hfad
