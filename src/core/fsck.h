// Offline volume consistency checker ("hfadck").
//
// A tag namespace has invariants a hierarchy never needed: the forward indexes
// (value -> oid) and the reverse map (oid -> names) must mirror each other exactly, and
// every index entry must point at a live object. This checker walks the whole volume and
// verifies:
//
//   1. every object's extent tree passes its structural self-check and its recorded
//      size matches the tree;
//   2. every reverse-map name has a matching forward-index entry (no dangling names);
//   3. every forward-index entry for the standard stores has a matching reverse entry
//      (no orphaned index entries) and names a live object;
//   4. full-text postings reference live objects.
//
// Read-only: fsck reports; it does not repair. Run it on a quiescent FileSystem (no
// concurrent mutations).
#ifndef HFAD_SRC_CORE_FSCK_H_
#define HFAD_SRC_CORE_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/filesystem.h"

namespace hfad {
namespace core {

struct FsckReport {
  uint64_t objects_checked = 0;
  uint64_t names_checked = 0;
  uint64_t postings_checked = 0;
  // OSD shards the object pass covered (1 on a single-volume filesystem).
  uint64_t shards_checked = 0;
  // Device pages quarantined by the scrubber (corrupt with no clean cached copy).
  // Each is also listed in problems with its shard and offset.
  uint64_t quarantined_pages = 0;
  // Human-readable description of every inconsistency found.
  std::vector<std::string> problems;

  bool clean() const { return problems.empty(); }
  std::string ToString() const;
};

// Walk the volume and verify the invariants above. Returns the report; a non-OK status
// means the check itself could not run (IO error), not that the volume is inconsistent.
Result<FsckReport> CheckFileSystem(FileSystem* fs);

}  // namespace core
}  // namespace hfad

#endif  // HFAD_SRC_CORE_FSCK_H_
