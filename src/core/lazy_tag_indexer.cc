#include "src/core/lazy_tag_indexer.h"

#include <algorithm>
#include <map>

#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace hfad {
namespace core {

LazyTagIndexer::LazyTagIndexer(index::IndexCollection* indexes, size_t queue_capacity,
                               size_t batch_limit, size_t worker_count)
    : indexes_(indexes),
      capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      batch_limit_(batch_limit == 0 ? 1 : batch_limit),
      worker_count_(worker_count == 0 ? 1 : worker_count),
      queues_(worker_count_),
      in_flights_(worker_count_) {
  workers_.reserve(worker_count_);
  for (size_t i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

LazyTagIndexer::~LazyTagIndexer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  slots_cv_.notify_all();
  applied_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

size_t LazyTagIndexer::UsedLocked() const {
  size_t used = reserved_;
  for (size_t i = 0; i < worker_count_; ++i) {
    used += queues_[i].size() + in_flights_[i].size();
  }
  return used;
}

void LazyTagIndexer::ReserveSlots(size_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  slots_cv_.wait(lock, [&] {
    if (shutdown_) return true;
    size_t used = UsedLocked();
    // Oversized batches (n > capacity_) are admitted against an empty queue rather
    // than blocking forever.
    return used + n <= capacity_ || used == 0;
  });
  reserved_ += n;
}

void LazyTagIndexer::ReleaseSlots(size_t n) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    reserved_ -= std::min(reserved_, n);
  }
  slots_cv_.notify_all();
}

void LazyTagIndexer::EnqueueReserved(std::vector<Op> ops) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    reserved_ -= std::min(reserved_, ops.size());
    for (auto& op : ops) {
      ++enqueued_total_;
      ++enqueued_by_tag_[op.name.tag];
      size_t w = WorkerFor(op.name.tag);
      queues_[w].push_back(std::move(op));
    }
  }
  work_cv_.notify_all();
}

void LazyTagIndexer::Seed(std::vector<Op> ops) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& op : ops) {
      ++enqueued_total_;
      ++enqueued_by_tag_[op.name.tag];
      size_t w = WorkerFor(op.name.tag);
      queues_[w].push_back(std::move(op));
    }
  }
  work_cv_.notify_all();
}

Status LazyTagIndexer::WaitForTags(const std::vector<std::string>& tags) {
  std::unique_lock<std::mutex> lock(mu_);
  // Snapshot the horizon first: ops enqueued after this call need not be waited on.
  std::vector<std::pair<std::string, uint64_t>> targets;
  targets.reserve(tags.size());
  for (const auto& tag : tags) {
    auto it = enqueued_by_tag_.find(tag);
    if (it != enqueued_by_tag_.end() && it->second > 0) targets.emplace_back(tag, it->second);
  }
  applied_cv_.wait(lock, [&] {
    if (shutdown_) return true;
    for (const auto& t : targets) {
      auto it = applied_by_tag_.find(t.first);
      if (it == applied_by_tag_.end() || it->second < t.second) return false;
    }
    return true;
  });
  return first_error_;
}

Status LazyTagIndexer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t target = enqueued_total_;
  applied_cv_.wait(lock,
                   [&] { return shutdown_ || paused_ || applied_total_ >= target; });
  return first_error_;
}

std::vector<LazyTagIndexer::Op> LazyTagIndexer::SnapshotUnapplied() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Op> out;
  // Per worker: in-flight first, then queued — within a worker that is enqueue
  // order, and per-tag order only depends on one worker (tags are partitioned).
  for (size_t i = 0; i < worker_count_; ++i) {
    out.insert(out.end(), in_flights_[i].begin(), in_flights_[i].end());
    out.insert(out.end(), queues_[i].begin(), queues_[i].end());
  }
  return out;
}

size_t LazyTagIndexer::PendingCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (size_t i = 0; i < worker_count_; ++i) {
    n += queues_[i].size() + in_flights_[i].size();
  }
  return n;
}

Status LazyTagIndexer::first_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

void LazyTagIndexer::SetPausedForTesting(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
  }
  work_cv_.notify_all();
  applied_cv_.notify_all();
}

void LazyTagIndexer::WorkerMain(size_t worker) {
  std::deque<Op>& queue = queues_[worker];
  std::vector<Op>& in_flight = in_flights_[worker];
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || (!paused_ && !queue.empty()); });
    if (shutdown_) return;

    size_t take = std::min(batch_limit_, queue.size());
    in_flight.assign(queue.begin(), queue.begin() + static_cast<ptrdiff_t>(take));
    queue.erase(queue.begin(), queue.begin() + static_cast<ptrdiff_t>(take));

    lock.unlock();
    Status s = ApplyOps(in_flight);
    lock.lock();

    // Horizons advance even when application failed: the error is sticky and strict
    // readers must surface it rather than block forever.
    for (const auto& op : in_flight) {
      ++applied_total_;
      ++applied_by_tag_[op.name.tag];
    }
    in_flight.clear();
    if (!s.ok() && first_error_.ok()) first_error_ = s;

    applied_cv_.notify_all();
    slots_cv_.notify_all();
  }
}

Status LazyTagIndexer::ApplyOps(const std::vector<Op>& ops) {
  metrics::ScopedLatency latency(metrics::Hist::kIndexerApply);
  trace::OpScope op_scope("indexer_apply");
  // Collapse the FIFO batch to the LAST op per (tag, value, oid) — earlier ops are
  // superseded (add-then-remove nets to remove against a NotFound-tolerant store).
  // std::map keeps per-tag groups together and values pre-sorted for ApplyBatch's
  // bulk path.
  struct Final {
    bool add;
  };
  std::map<std::string, std::map<std::pair<std::string, index::ObjectId>, Final>> by_tag;
  for (const auto& op : ops) {
    by_tag[op.name.tag][{op.name.value, op.oid}] = Final{op.add};
  }

  Status first;
  for (const auto& tag_group : by_tag) {
    index::IndexStore* store = indexes_->store(tag_group.first);
    if (store == nullptr) {
      // Stores are validated before enqueue; a missing one here means the collection
      // changed underneath us. Record and keep draining the rest.
      if (first.ok())
        first = Status::Corruption("lazy indexer: no store for tag " + tag_group.first);
      continue;
    }
    std::vector<std::pair<std::string, index::ObjectId>> adds;
    std::vector<std::pair<std::string, index::ObjectId>> removes;
    for (const auto& entry : tag_group.second) {
      if (entry.second.add) {
        adds.push_back(entry.first);
      } else {
        removes.push_back(entry.first);
      }
    }
    Status s = store->ApplyBatch(adds, removes);
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

}  // namespace core
}  // namespace hfad
