#include "src/core/filesystem.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/coding.h"
#include "src/common/metrics.h"
#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/osd/scrubber.h"

namespace hfad {
namespace core {

namespace {

// Foreign (namespace) journal record ops.
constexpr uint8_t kNsAddTag = 1;
constexpr uint8_t kNsRemoveTag = 2;
constexpr uint8_t kNsIndexContent = 3;
constexpr uint8_t kNsUnindexContent = 4;
// One record framing a whole NamespaceBatch: varint op count, then per op one
// kNsAddTag/kNsRemoveTag sub-record. The journal's record-level atomicity is what makes
// the batch recover as a unit.
constexpr uint8_t kNsBatch = 5;
// A lazy-mode tag intent: same framing as kNsBatch (varint count + sub-records), but
// replay applies only the reverse-map half inline and hands the forward posting-store
// half back to the background indexer queue instead of the posting btrees.
constexpr uint8_t kNsIndexIntent = 6;

// Reverse-map btree roots, one named root per shard ("core/reverse-tags/<shard>").
constexpr char kReverseRootPrefix[] = "core/reverse-tags/";

std::string ReverseRootName(size_t shard) {
  return kReverseRootPrefix + std::to_string(shard);
}

std::string OidBytes(ObjectId oid) {
  std::string key(8, '\0');
  for (int i = 7; i >= 0; i--) {
    key[i] = static_cast<char>(oid & 0xff);
    oid >>= 8;
  }
  return key;
}

std::string ReverseKey(ObjectId oid, const TagValue& name) {
  std::string key = OidBytes(oid);
  key += name.tag;
  key.push_back('\0');
  key += name.value;
  return key;
}

// Decode the "tag \0 value" suffix of a reverse key.
TagValue DecodeNameSuffix(Slice rest) {
  size_t sep = 0;
  while (sep < rest.size() && rest[sep] != '\0') {
    sep++;
  }
  TagValue tv;
  tv.tag = std::string(rest.data(), sep);
  if (sep + 1 <= rest.size()) {
    tv.value = std::string(rest.data() + sep + 1, rest.size() - sep - 1);
  }
  return tv;
}

ObjectId OidFromKey(Slice key) {
  ObjectId oid = 0;
  for (size_t i = 0; i < 8 && i < key.size(); i++) {
    oid = (oid << 8) | static_cast<uint8_t>(key[i]);
  }
  return oid;
}

std::string EncodeTagRecord(uint8_t op, ObjectId oid, const TagValue& name) {
  std::string rec;
  rec.push_back(static_cast<char>(op));
  PutVarint64(&rec, oid);
  PutLengthPrefixed(&rec, name.tag);
  PutLengthPrefixed(&rec, name.value);
  return rec;
}

std::string EncodeOidRecord(uint8_t op, ObjectId oid) {
  std::string rec;
  rec.push_back(static_cast<char>(op));
  PutVarint64(&rec, oid);
  return rec;
}

bool TaggableTag(const std::string& tag) {
  return tag != index::kTagFulltext && tag != index::kTagId;
}

// Every tag the expression touches (including under NOT: a stale negated posting is
// just as wrong as a stale positive one) — the strict-visibility wait set.
void CollectQueryTags(const query::Expr& e, std::vector<std::string>* out) {
  if (e.kind == query::Expr::Kind::kTerm || e.kind == query::Expr::Kind::kPrefix) {
    out->push_back(e.tag);
    return;
  }
  for (const auto& child : e.children) {
    CollectQueryTags(*child, out);
  }
}

}  // namespace

// ---------------------------------------------------------------- construction

FileSystem::FileSystem(std::unique_ptr<osd::OsdCluster> cluster,
                       std::unique_ptr<index::IndexCollection> indexes,
                       const FileSystemOptions& options)
    : options_(options), cluster_(std::move(cluster)), osd_(cluster_->meta()),
      indexes_(std::move(indexes)) {
  for (size_t shard = 0; shard < kTagShards; shard++) {
    auto root = osd_->GetNamedRoot(ReverseRootName(shard));
    reverse_[shard].root = root.ok() ? *root : 0;
    reverse_[shard].tree = std::make_unique<btree::BTree>(osd_->pager(), osd_->allocator(),
                                                          reverse_[shard].root);
  }
  query_engine_ = std::make_unique<query::QueryEngine>(indexes_.get());
  if (options_.lazy_indexing_threads > 0) {
    auto* ft = static_cast<index::FullTextIndexStore*>(indexes_->store(index::kTagFulltext));
    lazy_indexer_ = std::make_unique<fulltext::LazyIndexer>(ft->engine(),
                                                            options_.lazy_indexing_threads);
  }
  if (options_.lazy_tag_indexing) {
    tag_indexer_ = std::make_unique<LazyTagIndexer>(indexes_.get(),
                                                    options_.tag_intent_queue_capacity,
                                                    /*batch_limit=*/256,
                                                    options_.tag_indexer_workers);
  }
}

FileSystem::~FileSystem() {
  // Drain background indexing before the indexes are torn down.
  lazy_indexer_.reset();
  if (tag_indexer_ != nullptr) {
    // Apply what we can (Drain returns immediately while a test holds the queue
    // paused)...
    (void)tag_indexer_->Drain();
  }
  // ...then checkpoint: anything still unapplied rides the pending set via the
  // checkpoint provider and is re-seeded on the next Open.
  (void)Checkpoint();
  if (tag_indexer_ != nullptr) {
    // The OSD's own close-time checkpoint must not call back into a dead indexer; the
    // pending set it would have persisted is exactly what the line above persisted.
    cluster_->SetUnappliedForeignProvider(nullptr);
    tag_indexer_.reset();
  }
}

namespace {

// shard_count 0 means "one shard per device"; anything else must match exactly.
Status ValidateShardCount(size_t devices, size_t shard_count) {
  if (devices == 0) {
    return Status::InvalidArgument("filesystem needs at least one device");
  }
  if (shard_count != 0 && shard_count != devices) {
    return Status::InvalidArgument("shard_count " + std::to_string(shard_count) +
                                   " does not match device count " +
                                   std::to_string(devices));
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<FileSystem>> FileSystem::Create(std::shared_ptr<BlockDevice> device,
                                                       FileSystemOptions options) {
  std::vector<std::shared_ptr<BlockDevice>> devices;
  devices.push_back(std::move(device));
  return Create(std::move(devices), std::move(options));
}

Result<std::unique_ptr<FileSystem>> FileSystem::Create(
    std::vector<std::shared_ptr<BlockDevice>> devices, FileSystemOptions options) {
  HFAD_RETURN_IF_ERROR(ValidateShardCount(devices.size(), options.shard_count));
  HFAD_ASSIGN_OR_RETURN(std::unique_ptr<osd::OsdCluster> cluster,
                        osd::OsdCluster::Create(std::move(devices), options.osd));
  HFAD_ASSIGN_OR_RETURN(std::unique_ptr<index::IndexCollection> indexes,
                        index::IndexCollection::Mount(cluster->meta()));
  std::unique_ptr<FileSystem> fs(
      new FileSystem(std::move(cluster), std::move(indexes), options));
  HFAD_RETURN_IF_ERROR(fs->AdoptRecoveredIntents({}));
  return fs;
}

Result<std::unique_ptr<FileSystem>> FileSystem::Open(std::shared_ptr<BlockDevice> device,
                                                     FileSystemOptions options) {
  std::vector<std::shared_ptr<BlockDevice>> devices;
  devices.push_back(std::move(device));
  return Open(std::move(devices), std::move(options));
}

Result<std::unique_ptr<FileSystem>> FileSystem::Open(
    std::vector<std::shared_ptr<BlockDevice>> devices, FileSystemOptions options) {
  HFAD_RETURN_IF_ERROR(ValidateShardCount(devices.size(), options.shard_count));
  // Namespace records replay through a lazily-mounted index collection on the metadata
  // shard; the collection is then adopted by the FileSystem. Index intents (lazy mode's
  // journaled-but-possibly-unapplied tag mutations) accumulate here: their reverse-map
  // half replays inline, their forward half is handed to AdoptRecoveredIntents after
  // construction.
  auto recovered = std::make_shared<std::vector<BatchOp>>();
  std::unique_ptr<index::IndexCollection> replay_indexes;
  auto hook = [&replay_indexes, recovered](osd::Osd* meta, osd::Osd* data,
                                           osd::OsdCluster* cluster, size_t shard,
                                           bool filter_to_shard, Slice payload) -> Status {
    if (replay_indexes == nullptr) {
      HFAD_ASSIGN_OR_RETURN(replay_indexes, index::IndexCollection::Mount(meta));
      // Install a provider over the recovered set NOW: each shard's Osd::Open ends
      // recovery with a checkpoint that resets its journal, and at that moment this
      // closure is the only thing that can carry still-unapplied intents into the new
      // pending set. Each shard persists only the intents whose oid it owns.
      cluster->SetUnappliedForeignProvider([recovered, cluster](size_t s) {
        std::vector<std::string> payloads;
        for (const BatchOp& op : *recovered) {
          if (cluster->ShardOf(op.oid) != s) {
            continue;
          }
          payloads.push_back(EncodeIntentRecord({op}));
        }
        return payloads;
      });
    }
    return ApplyNamespaceRecord(meta, data, cluster, shard, filter_to_shard,
                                replay_indexes.get(), payload, recovered.get());
  };
  HFAD_ASSIGN_OR_RETURN(std::unique_ptr<osd::OsdCluster> cluster,
                        osd::OsdCluster::Open(std::move(devices), options.osd, hook));
  std::unique_ptr<index::IndexCollection> indexes = std::move(replay_indexes);
  if (indexes == nullptr) {
    HFAD_ASSIGN_OR_RETURN(indexes, index::IndexCollection::Mount(cluster->meta()));
  }
  std::unique_ptr<FileSystem> fs(
      new FileSystem(std::move(cluster), std::move(indexes), options));
  HFAD_RETURN_IF_ERROR(fs->AdoptRecoveredIntents(std::move(*recovered)));
  return fs;
}

// ---------------------------------------------------------------- replay

// Replay one add/remove association (shared by single-tag records and batch
// sub-records). Tolerates NotFound: the original op may have failed after journaling.
Status FileSystem::ReplayTagOp(osd::Osd* meta, index::IndexCollection* indexes,
                               uint8_t op, ObjectId oid, const TagValue& name) {
  index::IndexStore* store = indexes->store(name.tag);
  if (store == nullptr) {
    return Status::Corruption("tag record for unknown store '" + name.tag + "'");
  }
  const std::string root_name = ReverseRootName(TagShardOf(oid));
  btree::BTree reverse(meta->pager(), meta->allocator(),
                       meta->GetNamedRoot(root_name).value_or(0));
  Status s;
  if (op == kNsAddTag) {
    s = store->Add(name.value, oid);
    if (s.ok()) {
      s = reverse.Put(ReverseKey(oid, name), Slice());
    }
  } else {
    s = store->Remove(name.value, oid);
    if (s.ok() || s.IsNotFound()) {
      Status rs = reverse.Delete(ReverseKey(oid, name));
      s = rs.IsNotFound() ? Status::Ok() : rs;
    }
  }
  if (s.IsNotFound()) {
    s = Status::Ok();
  }
  HFAD_RETURN_IF_ERROR(s);
  return meta->SetNamedRoot(root_name, reverse.root());
}

// Replay the reverse-map half of one index intent. The forward posting update is NOT
// applied here — the live lazy write path applied only the reverse map inline, so
// replay reproduces exactly that state and leaves the forward half to the queue.
Status FileSystem::ReplayIntentReverse(osd::Osd* meta, index::IndexCollection* indexes,
                                       uint8_t op, ObjectId oid, const TagValue& name) {
  if (indexes->store(name.tag) == nullptr) {
    return Status::Corruption("index intent for unknown store '" + name.tag + "'");
  }
  const std::string root_name = ReverseRootName(TagShardOf(oid));
  btree::BTree reverse(meta->pager(), meta->allocator(),
                       meta->GetNamedRoot(root_name).value_or(0));
  if (op == kNsAddTag) {
    HFAD_RETURN_IF_ERROR(reverse.Put(ReverseKey(oid, name), Slice()));
  } else {
    Status s = reverse.Delete(ReverseKey(oid, name));
    if (!s.ok() && !s.IsNotFound()) {
      return s;
    }
  }
  return meta->SetNamedRoot(root_name, reverse.root());
}

Status FileSystem::ApplyNamespaceRecord(osd::Osd* meta, osd::Osd* data,
                                        const osd::OsdCluster* cluster, size_t shard,
                                        bool filter_to_shard,
                                        index::IndexCollection* indexes, Slice payload,
                                        std::vector<BatchOp>* recovered) {
  if (payload.empty()) {
    return Status::Corruption("empty namespace record");
  }
  uint8_t op = static_cast<uint8_t>(payload[0]);
  Slice in = payload;
  in.RemovePrefix(1);
  if (op == kNsBatch || op == kNsIndexIntent) {
    uint64_t count = 0;
    if (!GetVarint64(&in, &count)) {
      return Status::Corruption("bad batch record count");
    }
    for (uint64_t i = 0; i < count; i++) {
      if (in.empty()) {
        return Status::Corruption("truncated batch record");
      }
      uint8_t sub_op = static_cast<uint8_t>(in[0]);
      in.RemovePrefix(1);
      uint64_t oid;
      Slice tag, value;
      if (!GetVarint64(&in, &oid) || !GetLengthPrefixed(&in, &tag) ||
          !GetLengthPrefixed(&in, &value)) {
        return Status::Corruption("bad batch sub-record");
      }
      if (sub_op != kNsAddTag && sub_op != kNsRemoveTag) {
        return Status::Corruption("unknown batch sub-op " + std::to_string(sub_op));
      }
      // A cross-shard batch replays once per participant; each participant redoes only
      // the slice it owns, so the union over shards is exactly the whole batch.
      if (filter_to_shard && cluster->ShardOf(oid) != shard) {
        continue;
      }
      TagValue name{tag.ToString(), value.ToString()};
      if (op == kNsIndexIntent && recovered != nullptr) {
        HFAD_RETURN_IF_ERROR(ReplayIntentReverse(meta, indexes, sub_op, oid, name));
        recovered->push_back(BatchOp{sub_op, oid, name});
      } else {
        // kNsBatch, or an intent with nowhere to defer to: apply fully inline.
        HFAD_RETURN_IF_ERROR(ReplayTagOp(meta, indexes, sub_op, oid, name));
      }
    }
    return Status::Ok();
  }
  uint64_t oid;
  if (!GetVarint64(&in, &oid)) {
    return Status::Corruption("bad namespace record oid");
  }
  switch (op) {
    case kNsAddTag:
    case kNsRemoveTag: {
      Slice tag, value;
      if (!GetLengthPrefixed(&in, &tag) || !GetLengthPrefixed(&in, &value)) {
        return Status::Corruption("bad tag record");
      }
      return ReplayTagOp(meta, indexes, op, oid, {tag.ToString(), value.ToString()});
    }
    case kNsIndexContent: {
      // Object bytes live on the shard whose journal carried the record.
      auto size = data->Size(oid);
      if (size.status().IsNotFound()) {
        return Status::Ok();  // Object deleted later in the log.
      }
      HFAD_RETURN_IF_ERROR(size.status());
      std::string content;
      HFAD_RETURN_IF_ERROR(data->Read(oid, 0, *size, &content));
      auto* ft = static_cast<index::FullTextIndexStore*>(indexes->store(index::kTagFulltext));
      return ft->Add(content, oid);
    }
    case kNsUnindexContent: {
      auto* ft = static_cast<index::FullTextIndexStore*>(indexes->store(index::kTagFulltext));
      Status s = ft->Remove(Slice(), oid);
      return s.IsNotFound() ? Status::Ok() : s;
    }
    default:
      return Status::Corruption("unknown namespace record op " + std::to_string(op));
  }
}

std::string FileSystem::EncodeIntentRecord(const std::vector<BatchOp>& ops) {
  std::string rec;
  rec.push_back(static_cast<char>(kNsIndexIntent));
  PutVarint64(&rec, ops.size());
  for (const BatchOp& op : ops) {
    rec.push_back(static_cast<char>(op.op));
    PutVarint64(&rec, op.oid);
    PutLengthPrefixed(&rec, op.name.tag);
    PutLengthPrefixed(&rec, op.name.value);
  }
  return rec;
}

Status FileSystem::AdoptRecoveredIntents(std::vector<BatchOp> recovered) {
  if (tag_indexer_ != nullptr) {
    std::vector<LazyTagIndexer::Op> iops;
    iops.reserve(recovered.size());
    for (const BatchOp& op : recovered) {
      iops.push_back(LazyTagIndexer::Op{op.op == kNsAddTag, op.oid, op.name});
    }
    tag_indexer_->Seed(std::move(iops));
    // Live provider: every checkpoint persists whatever the worker has not applied yet
    // (queue + in-flight), so acknowledged intents survive the journal reset that ends
    // the checkpoint. Re-applying an in-flight op after a crash is idempotent. Each
    // shard persists only the intents whose oid it owns — the shard whose journal
    // acknowledged them.
    LazyTagIndexer* indexer = tag_indexer_.get();
    osd::OsdCluster* cluster = cluster_.get();
    cluster_->SetUnappliedForeignProvider([indexer, cluster](size_t shard) {
      std::vector<std::string> payloads;
      for (const LazyTagIndexer::Op& op : indexer->SnapshotUnapplied()) {
        if (cluster->ShardOf(op.oid) != shard) {
          continue;
        }
        payloads.push_back(EncodeIntentRecord(
            {BatchOp{op.add ? kNsAddTag : kNsRemoveTag, op.oid, op.name}}));
      }
      return payloads;
    });
    return Status::Ok();
  }
  // Inline mode adopting a (possibly lazily-written) volume: the deferred forward
  // updates are applied right now. Adds for objects deleted later in the log are
  // skipped; removes always run (NotFound-tolerant) so a pre-crash applied add cannot
  // leave an orphaned posting.
  for (const BatchOp& op : recovered) {
    if (op.op == kNsAddTag && !cluster_->Exists(op.oid)) {
      continue;
    }
    index::IndexStore* store = indexes_->store(op.name.tag);
    if (store == nullptr) {
      return Status::Corruption("recovered intent for unknown store '" + op.name.tag + "'");
    }
    Status s = op.op == kNsAddTag ? store->Add(op.name.value, op.oid)
                                  : store->Remove(op.name.value, op.oid);
    if (!s.ok() && !s.IsNotFound()) {
      return s;
    }
  }
  // Empty provider (not null) so the next checkpoint clears the persisted pending set
  // now that everything in it has been applied.
  cluster_->SetUnappliedForeignProvider([](size_t) { return std::vector<std::string>(); });
  return Status::Ok();
}

Status FileSystem::JournalAndEnqueueIntents(const std::vector<BatchOp>& ops,
                                            uint64_t* token_out) {
  *token_out = 0;
  std::vector<LazyTagIndexer::Op> iops;
  iops.reserve(ops.size());
  for (const BatchOp& op : ops) {
    iops.push_back(LazyTagIndexer::Op{op.op == kNsAddTag, op.oid, op.name});
  }
  // Reserve BEFORE the journal append: ReserveSlots may block on the worker, and the
  // worker needs the volume lock this append is about to take shared (a full queue
  // under the volume lock would deadlock against a waiting checkpoint).
  tag_indexer_->ReserveSlots(iops.size());
  const size_t n = iops.size();
  bool multi_shard = false;
  if (cluster_->shard_count() > 1) {
    const size_t first = cluster_->ShardOf(ops[0].oid);
    for (const BatchOp& op : ops) {
      if (cluster_->ShardOf(op.oid) != first) {
        multi_shard = true;
        break;
      }
    }
  }
  if (!multi_shard) {
    // The enqueue rides the append's own volume-lock hold: a checkpoint either sees
    // the record in the journal AND the ops in the queue, or neither — the invariant
    // the pending-set persistence depends on.
    Status s = cluster_->AppendForeign(
        ops[0].oid, EncodeIntentRecord(ops),
        [&] { tag_indexer_->EnqueueReserved(std::move(iops)); }, token_out);
    if (!s.ok()) {
      tag_indexer_->ReleaseSlots(n);
    }
    return s;
  }
  // Cross-shard: the intent commits via the prepare/commit protocol, then enqueues.
  // The gap between commit and enqueue is covered by the cluster's retention lists
  // (the token is unmarked, so every participant's checkpoint persists the record).
  std::vector<ObjectId> oids;
  oids.reserve(ops.size());
  for (const BatchOp& op : ops) {
    oids.push_back(op.oid);
  }
  auto token = cluster_->CommitForeignBatch(oids, EncodeIntentRecord(ops));
  if (!token.ok()) {
    tag_indexer_->ReleaseSlots(n);
    return token.status();
  }
  tag_indexer_->EnqueueReserved(std::move(iops));
  *token_out = *token;
  return Status::Ok();
}

// ---------------------------------------------------------------- naming

Result<std::unique_ptr<index::PostingIterator>> FileSystem::OpenQuery(
    const query::Expr& expr, query::PlanStats* stats) const {
  return query_engine_->planner().Plan(expr, stats);
}

Result<query::FindPage> FileSystem::Find(const query::Expr& expr,
                                         const query::FindOptions& options) const {
  metrics::ScopedLatency latency(metrics::Hist::kFind);
  trace::OpScope op("find");
  // Strict visibility under lazy tag indexing: wait out the applied-sequence horizon
  // of every tag the query touches before planning, so any mutation acknowledged
  // before this call is in the postings the plan reads. Relaxed skips straight to the
  // current postings.
  if (tag_indexer_ != nullptr && options.visibility == query::Visibility::kStrict) {
    std::vector<std::string> tags;
    CollectQueryTags(expr, &tags);
    std::sort(tags.begin(), tags.end());
    tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
    HFAD_RETURN_IF_ERROR(tag_indexer_->WaitForTags(tags));
  }
  if (options.explain == nullptr) {
    HFAD_ASSIGN_OR_RETURN(auto it, query_engine_->planner().Plan(expr, options.stats));
    return query::Paginate(it.get(), options);
  }
  // EXPLAIN: plan with node annotation, execute with whole-plan stats on the root, and
  // capture the counter deltas BEFORE the analyze pass — its extra index reads must not
  // pollute the reported pages_read / index_traversals.
  query::Explain* explain = options.explain;
  explain->root = query::PlanNode{};
  explain->planner_optimized = true;
  const stats::Snapshot before = stats::Snapshot::Take();
  HFAD_ASSIGN_OR_RETURN(
      auto it, query_engine_->planner().Plan(expr, &explain->root.stats, &explain->root));
  Result<query::FindPage> page = query::Paginate(it.get(), options);
  const stats::Snapshot delta = stats::Snapshot::Take().Delta(before);
  explain->root.pages_read = delta[stats::Counter::kPageReads];
  explain->root.index_traversals = delta[stats::Counter::kIndexTraversals];
  if (options.stats != nullptr) {
    options.stats->index_lookups += explain->root.stats.index_lookups;
    options.stats->rows_scanned += explain->root.stats.rows_scanned;
    options.stats->intermediate_rows += explain->root.stats.intermediate_rows;
    options.stats->membership_probes += explain->root.stats.membership_probes;
    options.stats->early_exit = options.stats->early_exit || explain->root.stats.early_exit;
  }
  HFAD_RETURN_IF_ERROR(query_engine_->planner().AnalyzeActuals(expr, &explain->root));
  return page;
}

Result<query::FindPage> FileSystem::Find(Slice query_text,
                                         const query::FindOptions& options) const {
  HFAD_ASSIGN_OR_RETURN(std::unique_ptr<query::Expr> expr, query::Parse(query_text));
  return Find(*expr, options);
}

Result<std::vector<ObjectId>> FileSystem::Lookup(const std::vector<TagValue>& terms) const {
  if (terms.empty()) {
    return Status::InvalidArgument("naming lookup needs at least one tag/value pair");
  }
  HFAD_ASSIGN_OR_RETURN(query::FindPage page, Find(*query::Expr::AndTerms(terms)));
  return std::move(page.ids);
}

Result<std::vector<ObjectId>> FileSystem::Query(Slice query_text) const {
  HFAD_ASSIGN_OR_RETURN(query::FindPage page, Find(query_text));
  return std::move(page.ids);
}

Result<std::vector<fulltext::SearchHit>> FileSystem::SearchText(
    const std::vector<std::string>& terms, size_t limit) const {
  SearchTextOptions options;
  options.limit = limit;
  return SearchText(terms, options);
}

Result<std::vector<fulltext::SearchHit>> FileSystem::SearchText(
    const std::vector<std::string>& terms, const SearchTextOptions& options) const {
  metrics::ScopedLatency latency(metrics::Hist::kSearchText);
  trace::OpScope op("search_text");
  if (terms.empty()) {
    return Status::InvalidArgument("empty search");
  }
  // Same normalization contract as the engine's own Search: stopwords and
  // non-indexable terms are rejected, not silently empty.
  std::vector<std::string> normalized;
  normalized.reserve(terms.size());
  for (const std::string& t : terms) {
    std::string norm = fulltext::NormalizeTerm(t);
    if (norm.empty()) {
      return Status::InvalidArgument("term '" + t + "' has no indexable characters");
    }
    if (fulltext::IsStopword(norm)) {
      return Status::InvalidArgument("term '" + norm + "' is a stopword and never indexed");
    }
    normalized.push_back(std::move(norm));
  }
  // Candidate generation through the same planner/iterator path as every other naming
  // entry point; BM25 then scores only the surviving conjunction.
  std::vector<std::unique_ptr<query::Expr>> children;
  children.reserve(normalized.size());
  for (const std::string& norm : normalized) {
    children.push_back(query::Expr::Term(std::string(index::kTagFulltext), norm));
  }
  std::unique_ptr<query::Expr> expr =
      children.size() == 1 ? std::move(children[0]) : query::Expr::And(std::move(children));
  query::FindOptions find_options;
  find_options.visibility = options.visibility;
  HFAD_ASSIGN_OR_RETURN(query::FindPage page, Find(*expr, find_options));
  const auto* ft =
      static_cast<const index::FullTextIndexStore*>(indexes_->store(index::kTagFulltext));
  return ft->engine()->ScoreDocuments(normalized, page.ids, options.limit);
}

SearchCursor FileSystem::OpenCursor() const { return SearchCursor(this); }

NamespaceBatch FileSystem::NewBatch() { return NamespaceBatch(this); }

// ---------------------------------------------------------------- lifecycle

Result<ObjectId> FileSystem::Create(const std::vector<TagValue>& names) {
  metrics::ScopedLatency latency(metrics::Hist::kCreate);
  trace::OpScope op("create");
  for (const TagValue& name : names) {
    if (!TaggableTag(name.tag)) {
      return Status::InvalidArgument("tag '" + name.tag + "' cannot be assigned manually");
    }
    if (indexes_->store(name.tag) == nullptr) {
      return Status::NotFound("no index store for tag '" + name.tag + "'");
    }
  }
  HFAD_ASSIGN_OR_RETURN(ObjectId oid, cluster_->CreateObject());
  if (names.empty()) {
    return oid;
  }
  // All initial names ride one batch: one shard acquisition, one journal record.
  std::vector<BatchOp> ops;
  ops.reserve(names.size());
  for (const TagValue& name : names) {
    ops.push_back(BatchOp{kNsAddTag, oid, name});
  }
  HFAD_RETURN_IF_ERROR(CommitBatch(ops));
  return oid;
}

Status FileSystem::Remove(ObjectId oid) {
  HFAD_ASSIGN_OR_RETURN(std::vector<TagValue> names, Tags(oid));
  for (const TagValue& name : names) {
    HFAD_RETURN_IF_ERROR(RemoveTag(oid, name));
  }
  // Strip any full-text postings (journaled so replay stays in sync).
  {
    auto lock = tag_mu_.LockExclusive(oid);
    uint64_t token = 0;
    HFAD_RETURN_IF_ERROR(
        cluster_->AppendForeign(oid, EncodeOidRecord(kNsUnindexContent, oid), &token));
    auto* ft = static_cast<index::FullTextIndexStore*>(indexes_->store(index::kTagFulltext));
    Status s = ft->Remove(Slice(), oid);
    if (!s.ok() && !s.IsNotFound()) {
      return s;
    }
    cluster_->MarkForeignApplied(token);
  }
  return cluster_->DeleteObject(oid);
}

// ---------------------------------------------------------------- tags

Status FileSystem::SyncReverseRoot(size_t shard) {
  ReverseShard& rs = reverse_[shard];
  if (rs.tree->root() != rs.root) {
    rs.root = rs.tree->root();
    HFAD_RETURN_IF_ERROR(osd_->SetNamedRoot(ReverseRootName(shard), rs.root));
  }
  return Status::Ok();
}

Status FileSystem::AddTagApply(ObjectId oid, const TagValue& name) {
  index::IndexStore* store = indexes_->store(name.tag);
  HFAD_RETURN_IF_ERROR(store->Add(name.value, oid));
  size_t shard = TagShardOf(oid);
  HFAD_RETURN_IF_ERROR(reverse_[shard].tree->Put(ReverseKey(oid, name), Slice()));
  return SyncReverseRoot(shard);
}

Status FileSystem::RemoveTagApply(ObjectId oid, const TagValue& name) {
  index::IndexStore* store = indexes_->store(name.tag);
  HFAD_RETURN_IF_ERROR(store->Remove(name.value, oid));
  size_t shard = TagShardOf(oid);
  Status s = reverse_[shard].tree->Delete(ReverseKey(oid, name));
  if (!s.ok() && !s.IsNotFound()) {
    return s;
  }
  return SyncReverseRoot(shard);
}

Status FileSystem::AddTag(ObjectId oid, const TagValue& name) {
  metrics::ScopedLatency latency(metrics::Hist::kAddTag);
  trace::OpScope op("add_tag");
  if (!TaggableTag(name.tag)) {
    return Status::InvalidArgument("tag '" + name.tag +
                                   "' cannot be assigned manually (use IndexContent for "
                                   "FULLTEXT; IDs are intrinsic)");
  }
  if (indexes_->store(name.tag) == nullptr) {
    return Status::NotFound("no index store for tag '" + name.tag + "'");
  }
  if (!cluster_->Exists(oid)) {
    return Status::NotFound("no object " + std::to_string(oid));
  }
  return AddTagValidated(oid, name);
}

Status FileSystem::AddTagValidated(ObjectId oid, const TagValue& name) {
  auto lock = tag_mu_.LockExclusive(oid);
  uint64_t token = 0;
  if (tag_indexer_ != nullptr) {
    // Lazy: journal the intent + enqueue the forward update, then update only the
    // reverse map inline — naming state (Tags/HasName/Remove) stays authoritative
    // while the posting btrees catch up in the background.
    HFAD_RETURN_IF_ERROR(JournalAndEnqueueIntents({BatchOp{kNsAddTag, oid, name}}, &token));
    size_t shard = TagShardOf(oid);
    HFAD_RETURN_IF_ERROR(reverse_[shard].tree->Put(ReverseKey(oid, name), Slice()));
    HFAD_RETURN_IF_ERROR(SyncReverseRoot(shard));
    cluster_->MarkForeignApplied(token);
    return Status::Ok();
  }
  if (osd_->journaling_enabled()) {
    HFAD_RETURN_IF_ERROR(
        cluster_->AppendForeign(oid, EncodeTagRecord(kNsAddTag, oid, name), &token));
  }
  HFAD_RETURN_IF_ERROR(AddTagApply(oid, name));
  cluster_->MarkForeignApplied(token);
  return Status::Ok();
}

Status FileSystem::RemoveTag(ObjectId oid, const TagValue& name) {
  metrics::ScopedLatency latency(metrics::Hist::kRemoveTag);
  trace::OpScope op("remove_tag");
  if (indexes_->store(name.tag) == nullptr) {
    return Status::NotFound("no index store for tag '" + name.tag + "'");
  }
  auto lock = tag_mu_.LockExclusive(oid);
  // Validate first so a journaled remove always corresponds to a real association.
  if (!reverse_[TagShardOf(oid)].tree->Contains(ReverseKey(oid, name))) {
    return Status::NotFound("object " + std::to_string(oid) + " has no name " + name.tag +
                            ":" + name.value);
  }
  uint64_t token = 0;
  if (tag_indexer_ != nullptr) {
    HFAD_RETURN_IF_ERROR(
        JournalAndEnqueueIntents({BatchOp{kNsRemoveTag, oid, name}}, &token));
    size_t shard = TagShardOf(oid);
    Status s = reverse_[shard].tree->Delete(ReverseKey(oid, name));
    if (!s.ok() && !s.IsNotFound()) {
      return s;
    }
    HFAD_RETURN_IF_ERROR(SyncReverseRoot(shard));
    cluster_->MarkForeignApplied(token);
    return Status::Ok();
  }
  if (osd_->journaling_enabled()) {
    HFAD_RETURN_IF_ERROR(
        cluster_->AppendForeign(oid, EncodeTagRecord(kNsRemoveTag, oid, name), &token));
  }
  HFAD_RETURN_IF_ERROR(RemoveTagApply(oid, name));
  cluster_->MarkForeignApplied(token);
  return Status::Ok();
}

Status FileSystem::CommitBatch(const std::vector<BatchOp>& ops) {
  if (ops.empty()) {
    return Status::Ok();
  }
  metrics::ScopedLatency latency(metrics::Hist::kBatchCommit);
  trace::OpScope op("batch_commit");
  std::vector<uint64_t> oids;
  oids.reserve(ops.size());
  for (const BatchOp& op : ops) {
    if (!cluster_->Exists(op.oid)) {
      return Status::NotFound("no object " + std::to_string(op.oid));
    }
    oids.push_back(op.oid);
  }
  // Every involved shard once, ascending (the MultiLock deadlock-freedom rule), instead
  // of lock/unlock per tag.
  auto lock = tag_mu_.LockMultiExclusive(oids);
  // Validate removals against pre-batch state so a journaled batch always corresponds
  // to applicable ops (same rule as the single-op RemoveTag).
  for (const BatchOp& op : ops) {
    if (op.op == kNsRemoveTag &&
        !reverse_[TagShardOf(op.oid)].tree->Contains(ReverseKey(op.oid, op.name))) {
      return Status::NotFound("object " + std::to_string(op.oid) + " has no name " +
                              op.name.tag + ":" + op.name.value);
    }
  }
  if (tag_indexer_ != nullptr) {
    // Lazy: ONE intent record + one enqueue for the whole batch, reverse map inline,
    // each touched shard's root synced once. A batch spanning multiple owner shards
    // commits via the cluster's prepare/commit protocol inside
    // JournalAndEnqueueIntents.
    uint64_t token = 0;
    HFAD_RETURN_IF_ERROR(JournalAndEnqueueIntents(ops, &token));
    std::vector<size_t> shards;
    for (const BatchOp& op : ops) {
      size_t shard = TagShardOf(op.oid);
      shards.push_back(shard);
      if (op.op == kNsAddTag) {
        HFAD_RETURN_IF_ERROR(reverse_[shard].tree->Put(ReverseKey(op.oid, op.name), Slice()));
      } else {
        Status s = reverse_[shard].tree->Delete(ReverseKey(op.oid, op.name));
        if (!s.ok() && !s.IsNotFound()) {
          return s;
        }
      }
    }
    std::sort(shards.begin(), shards.end());
    shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
    for (size_t shard : shards) {
      HFAD_RETURN_IF_ERROR(SyncReverseRoot(shard));
    }
    cluster_->MarkForeignApplied(token);
    return Status::Ok();
  }
  uint64_t token = 0;
  if (osd_->journaling_enabled()) {
    std::string rec;
    rec.push_back(static_cast<char>(kNsBatch));
    PutVarint64(&rec, ops.size());
    for (const BatchOp& op : ops) {
      rec.push_back(static_cast<char>(op.op));
      PutVarint64(&rec, op.oid);
      PutLengthPrefixed(&rec, op.name.tag);
      PutLengthPrefixed(&rec, op.name.value);
    }
    bool multi_shard = false;
    if (cluster_->shard_count() > 1) {
      const size_t first = cluster_->ShardOf(oids[0]);
      for (uint64_t oid : oids) {
        if (cluster_->ShardOf(oid) != first) {
          multi_shard = true;
          break;
        }
      }
    }
    if (multi_shard) {
      // Atomic across owners: prepares on every participant, commit on the
      // coordinator, all durable before any op applies (src/osd/osd_cluster.h).
      HFAD_ASSIGN_OR_RETURN(token, cluster_->CommitForeignBatch(oids, rec));
    } else {
      HFAD_RETURN_IF_ERROR(cluster_->AppendForeign(oids[0], rec, &token));
    }
  }
  for (const BatchOp& op : ops) {
    if (op.op == kNsAddTag) {
      HFAD_RETURN_IF_ERROR(AddTagApply(op.oid, op.name));
    } else {
      HFAD_RETURN_IF_ERROR(RemoveTagApply(op.oid, op.name));
    }
  }
  cluster_->MarkForeignApplied(token);
  return Status::Ok();
}

Result<std::vector<TagValue>> FileSystem::Tags(ObjectId oid) const {
  if (!cluster_->Exists(oid)) {
    return Status::NotFound("no object " + std::to_string(oid));
  }
  auto lock = tag_mu_.LockShared(oid);
  std::vector<TagValue> out;
  std::string prefix = OidBytes(oid);
  HFAD_RETURN_IF_ERROR(reverse_[TagShardOf(oid)].tree->ScanPrefix(
      prefix, [&](Slice key, Slice) {
        out.push_back(
            DecodeNameSuffix(Slice(key.data() + prefix.size(), key.size() - prefix.size())));
        return true;
      }));
  return out;
}

bool FileSystem::HasName(ObjectId oid, const TagValue& name) const {
  auto lock = tag_mu_.LockShared(oid);
  return reverse_[TagShardOf(oid)].tree->Contains(ReverseKey(oid, name));
}

Status FileSystem::ScanAllNames(
    const std::function<bool(ObjectId, const TagValue&)>& fn) const {
  // The reverse map is striped by oid, but the contract is a global scan in oid order:
  // visit shards one at a time (each under its shared lock), gather a snapshot, and
  // merge. Keys start with the big-endian oid, so a plain sort restores global
  // (oid, tag, value) order across shards. Shard-at-a-time gives the same per-shard
  // consistency as StripedMap::ForEach — mutations racing the scan land before or
  // after their shard's visit, never mid-shard — while keeping hold times short (and
  // staying under ThreadSanitizer's 64-held-locks ceiling). The locks are dropped
  // before the callbacks run, so fn may call back into the FileSystem freely; it sees
  // the snapshot.
  std::vector<std::string> keys;
  for (size_t shard = 0; shard < kTagShards; shard++) {
    auto lock = tag_mu_.LockShardShared(shard);
    HFAD_RETURN_IF_ERROR(reverse_[shard].tree->Scan("", "", [&](Slice key, Slice) {
      keys.push_back(key.ToString());
      return true;
    }));
  }
  std::sort(keys.begin(), keys.end());
  for (const std::string& key : keys) {
    if (key.size() < 9) {
      continue;  // Malformed; fsck reports it via the forward pass.
    }
    ObjectId oid = OidFromKey(key);
    TagValue tv = DecodeNameSuffix(Slice(key.data() + 8, key.size() - 8));
    if (!fn(oid, tv)) {
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Status FileSystem::IndexContentNow(ObjectId oid) {
  HFAD_ASSIGN_OR_RETURN(uint64_t size, cluster_->Size(oid));
  std::string content;
  HFAD_RETURN_IF_ERROR(cluster_->Read(oid, 0, size, &content));
  auto* ft = static_cast<index::FullTextIndexStore*>(indexes_->store(index::kTagFulltext));
  return ft->Add(content, oid);
}

Status FileSystem::IndexContent(ObjectId oid) {
  if (!cluster_->Exists(oid)) {
    return Status::NotFound("no object " + std::to_string(oid));
  }
  auto lock = tag_mu_.LockExclusive(oid);
  uint64_t token = 0;
  HFAD_RETURN_IF_ERROR(
      cluster_->AppendForeign(oid, EncodeOidRecord(kNsIndexContent, oid), &token));
  if (lazy_indexer_ == nullptr) {
    HFAD_RETURN_IF_ERROR(IndexContentNow(oid));
    cluster_->MarkForeignApplied(token);
    return Status::Ok();
  }
  // Snapshot the content now so later writes do not race the background worker; the
  // worker indexes exactly these bytes.
  HFAD_ASSIGN_OR_RETURN(uint64_t size, cluster_->Size(oid));
  std::string content;
  HFAD_RETURN_IF_ERROR(cluster_->Read(oid, 0, size, &content));
  lazy_indexer_->Submit(oid, std::move(content));
  // Same crash contract as the single-volume lazy path: the record's redo (a content
  // re-read) is durable until here; the submitted snapshot itself lives only in memory.
  cluster_->MarkForeignApplied(token);
  return Status::Ok();
}

Status FileSystem::WaitForIndexing() {
  if (lazy_indexer_ == nullptr) {
    return Status::Ok();
  }
  lazy_indexer_->Drain();
  return lazy_indexer_->first_error();
}

Status FileSystem::WaitForTagIndexing() {
  if (tag_indexer_ == nullptr) {
    return Status::Ok();
  }
  return tag_indexer_->Drain();
}

std::vector<std::pair<ObjectId, TagValue>> FileSystem::PendingIndexIntents() const {
  std::vector<std::pair<ObjectId, TagValue>> out;
  if (tag_indexer_ == nullptr) {
    return out;
  }
  for (const LazyTagIndexer::Op& op : tag_indexer_->SnapshotUnapplied()) {
    out.emplace_back(op.oid, op.name);
  }
  return out;
}

// ---------------------------------------------------------------- access

Status FileSystem::Read(ObjectId oid, uint64_t offset, size_t n, std::string* out) const {
  return cluster_->Read(oid, offset, n, out);
}

Status FileSystem::Write(ObjectId oid, uint64_t offset, Slice data) {
  return cluster_->Write(oid, offset, data);
}

Status FileSystem::Insert(ObjectId oid, uint64_t offset, Slice data) {
  return cluster_->Insert(oid, offset, data);
}

Status FileSystem::Truncate(ObjectId oid, uint64_t offset, uint64_t length) {
  return cluster_->RemoveRange(oid, offset, length);
}

Result<uint64_t> FileSystem::Size(ObjectId oid) const { return cluster_->Size(oid); }

Result<osd::ObjectMeta> FileSystem::Stat(ObjectId oid) const { return cluster_->Stat(oid); }

Status FileSystem::SetAttributes(ObjectId oid, uint32_t mode, uint32_t uid, uint32_t gid) {
  return cluster_->SetAttributes(oid, mode, uid, gid);
}

Status FileSystem::Sync() { return cluster_->Sync(); }

Status FileSystem::Checkpoint() { return cluster_->Checkpoint(); }

// ---------------------------------------------------------------- observability

std::string FileSystem::DumpMetrics() const {
  metrics::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Value(uint64_t{1});
  w.Key("scope").Value("filesystem");
  metrics::WriteCountersJson(&w);
  metrics::WriteHistogramsJson(&w);

  // Gauges aggregate across shards (sums for counts, max for occupancy — the shard
  // closest to a forced checkpoint is the one that matters) so the top-level keys keep
  // their single-volume meaning; the per-shard breakdown follows.
  double occupancy = 0.0;
  uint64_t pending_records = 0, resident_pages = 0, dirty_pages = 0;
  uint64_t io_submitted = 0, io_completed = 0, io_in_flight = 0, io_max_qd = 0;
  uint64_t scrub_passes = 0, quarantined = 0;
  bool writeback_error = false, checksums_enabled = false;
  std::string io_backend = "none";
  for (size_t k = 0; k < cluster_->shard_count(); k++) {
    osd::Osd* shard = cluster_->shard(k);
    occupancy = std::max(occupancy, shard->journal_occupancy());
    pending_records += shard->journal_pending_records();
    resident_pages += shard->pager()->cached_pages();
    dirty_pages += shard->pager()->dirty_pages();
    writeback_error = writeback_error || !shard->pager()->writeback_error().ok();
    checksums_enabled = checksums_enabled || shard->checksums() != nullptr;
    if (shard->scrubber() != nullptr) {
      scrub_passes += shard->scrubber()->passes();
    }
    if (shard->checksums() != nullptr) {
      quarantined += shard->checksums()->QuarantinedPages().size();
    }
    if (io::IoEngine* eng = shard->io_engine()) {
      io_backend = eng->backend_name();
      io_submitted += eng->submitted();
      io_completed += eng->completed();
      io_in_flight += eng->in_flight();
      io_max_qd = std::max(io_max_qd, eng->max_queue_depth());
    }
  }
  const HealthState worst_health = cluster_->worst_health();
  w.Key("gauges").BeginObject();
  w.Key("journal_occupancy_pct").Value(occupancy * 100.0);
  w.Key("journal_pending_records").Value(pending_records);
  w.Key("pager_resident_pages").Value(resident_pages);
  w.Key("pager_dirty_pages").Value(dirty_pages);
  w.Key("io_backend").Value(io_backend);
  w.Key("io_submitted").Value(io_submitted);
  w.Key("io_completed").Value(io_completed);
  w.Key("io_in_flight").Value(io_in_flight);
  w.Key("io_max_queue_depth").Value(io_max_qd);
  w.Key("indexer_queue_depth")
      .Value(static_cast<uint64_t>(tag_indexer_ != nullptr ? tag_indexer_->PendingCount() : 0));
  w.Key("checkpointer_state").Value(static_cast<int64_t>(osd_->checkpointer_state()));
  w.Key("object_count").Value(cluster_->object_count());
  w.Key("shard_count").Value(static_cast<uint64_t>(cluster_->shard_count()));
  w.Key("volume_health").Value(static_cast<int64_t>(worst_health));
  w.Key("volume_health_name").Value(std::string(HealthStateName(worst_health)));
  w.Key("pager_writeback_error").Value(static_cast<uint64_t>(writeback_error ? 1 : 0));
  w.Key("checksums_enabled").Value(static_cast<uint64_t>(checksums_enabled ? 1 : 0));
  w.Key("scrub_passes").Value(scrub_passes);
  w.Key("quarantined_pages").Value(quarantined);
  w.EndObject();

  if (cluster_->shard_count() > 1) {
    w.Key("shards").BeginArray();
    for (size_t k = 0; k < cluster_->shard_count(); k++) {
      osd::Osd* shard = cluster_->shard(k);
      w.BeginObject();
      w.Key("shard").Value(static_cast<uint64_t>(k));
      w.Key("journal_occupancy_pct").Value(shard->journal_occupancy() * 100.0);
      w.Key("journal_pending_records").Value(shard->journal_pending_records());
      w.Key("pager_resident_pages")
          .Value(static_cast<uint64_t>(shard->pager()->cached_pages()));
      w.Key("pager_dirty_pages").Value(static_cast<uint64_t>(shard->pager()->dirty_pages()));
      w.Key("checkpointer_state").Value(static_cast<int64_t>(shard->checkpointer_state()));
      w.Key("object_count").Value(shard->object_count());
      w.Key("volume_health").Value(static_cast<int64_t>(shard->health_state()));
      w.EndObject();
    }
    w.EndArray();
  }

  w.Key("locks").BeginObject();
  WriteLockStatsJson(&w, "tag_shards", tag_mu_);
  w.Key("pager_stripes").BeginObject();
  w.Key("total_acquisitions").Value(osd_->pager()->stripe_lock_acquisitions());
  w.Key("total_contentions").Value(osd_->pager()->stripe_lock_contentions());
  w.Key("top_contended").BeginArray();
  for (const auto& st : osd_->pager()->TopContendedStripes(4)) {
    w.BeginObject();
    w.Key("shard").Value(static_cast<uint64_t>(st.stripe));
    w.Key("acquisitions").Value(st.acquisitions);
    w.Key("contentions").Value(st.contentions);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();

  w.EndObject();
  return w.str();
}

// ---------------------------------------------------------------- SearchCursor

Status SearchCursor::Refine(const TagValue& term) {
  if (fs_->indexes()->store(term.tag) == nullptr) {
    return Status::NotFound("no index store for tag '" + term.tag + "'");
  }
  path_.push_back(term);
  return Status::Ok();
}

Status SearchCursor::Up() {
  if (!path_.empty()) {
    path_.pop_back();
  }
  return Status::Ok();
}

Result<query::FindPage> SearchCursor::ResultsPage(const query::FindOptions& options) const {
  if (path_.empty()) {
    // Root: page over every object on the volume in oid order, seeking straight to the
    // keyset anchor — no page ever rescans the table head up to `after`.
    query::FindPage page;
    const ObjectId after = options.after;
    if (after == std::numeric_limits<ObjectId>::max()) {
      return page;  // Nothing can follow the maximal oid.
    }
    HFAD_RETURN_IF_ERROR(fs_->cluster()->ScanObjects(
        after + 1, [&](ObjectId oid, const osd::ObjectMeta&) {
          if (options.limit != 0 && page.ids.size() == options.limit) {
            page.has_more = true;
            page.next_after = page.ids.back();
            return false;
          }
          page.ids.push_back(oid);
          return true;
        }));
    return page;
  }
  return fs_->Find(*query::Expr::AndTerms(path_), options);
}

Result<std::vector<ObjectId>> SearchCursor::Results() const {
  query::FindOptions options;
  options.limit = kDefaultResultLimit;
  options.visibility = visibility_;
  HFAD_ASSIGN_OR_RETURN(query::FindPage page, ResultsPage(options));
  return std::move(page.ids);
}

// ---------------------------------------------------------------- NamespaceBatch

Status NamespaceBatch::AddTag(ObjectId oid, const TagValue& name) {
  if (!TaggableTag(name.tag)) {
    return Status::InvalidArgument("tag '" + name.tag +
                                   "' cannot be assigned manually (use IndexContent for "
                                   "FULLTEXT; IDs are intrinsic)");
  }
  if (fs_->indexes()->store(name.tag) == nullptr) {
    return Status::NotFound("no index store for tag '" + name.tag + "'");
  }
  ops_.push_back(FileSystem::BatchOp{kNsAddTag, oid, name});
  return Status::Ok();
}

Status NamespaceBatch::RemoveTag(ObjectId oid, const TagValue& name) {
  if (fs_->indexes()->store(name.tag) == nullptr) {
    return Status::NotFound("no index store for tag '" + name.tag + "'");
  }
  ops_.push_back(FileSystem::BatchOp{kNsRemoveTag, oid, name});
  return Status::Ok();
}

Result<ObjectId> NamespaceBatch::Create(const std::vector<TagValue>& names) {
  for (const TagValue& name : names) {
    if (!TaggableTag(name.tag)) {
      return Status::InvalidArgument("tag '" + name.tag + "' cannot be assigned manually");
    }
    if (fs_->indexes()->store(name.tag) == nullptr) {
      return Status::NotFound("no index store for tag '" + name.tag + "'");
    }
  }
  HFAD_ASSIGN_OR_RETURN(ObjectId oid, fs_->cluster_->CreateObject());
  for (const TagValue& name : names) {
    ops_.push_back(FileSystem::BatchOp{kNsAddTag, oid, name});
  }
  return oid;
}

Status NamespaceBatch::Commit() {
  HFAD_RETURN_IF_ERROR(fs_->CommitBatch(ops_));
  ops_.clear();
  return Status::Ok();
}

}  // namespace core
}  // namespace hfad
