#include "src/core/filesystem.h"

#include <algorithm>
#include <utility>

#include "src/common/coding.h"

namespace hfad {
namespace core {

namespace {

// Foreign (namespace) journal record ops.
constexpr uint8_t kNsAddTag = 1;
constexpr uint8_t kNsRemoveTag = 2;
constexpr uint8_t kNsIndexContent = 3;
constexpr uint8_t kNsUnindexContent = 4;

// Reverse-map btree roots, one named root per shard ("core/reverse-tags/<shard>").
constexpr char kReverseRootPrefix[] = "core/reverse-tags/";

std::string ReverseRootName(size_t shard) {
  return kReverseRootPrefix + std::to_string(shard);
}

std::string OidBytes(ObjectId oid) {
  std::string key(8, '\0');
  for (int i = 7; i >= 0; i--) {
    key[i] = static_cast<char>(oid & 0xff);
    oid >>= 8;
  }
  return key;
}

std::string ReverseKey(ObjectId oid, const TagValue& name) {
  std::string key = OidBytes(oid);
  key += name.tag;
  key.push_back('\0');
  key += name.value;
  return key;
}

// Decode the "tag \0 value" suffix of a reverse key.
TagValue DecodeNameSuffix(Slice rest) {
  size_t sep = 0;
  while (sep < rest.size() && rest[sep] != '\0') {
    sep++;
  }
  TagValue tv;
  tv.tag = std::string(rest.data(), sep);
  if (sep + 1 <= rest.size()) {
    tv.value = std::string(rest.data() + sep + 1, rest.size() - sep - 1);
  }
  return tv;
}

ObjectId OidFromKey(Slice key) {
  ObjectId oid = 0;
  for (size_t i = 0; i < 8 && i < key.size(); i++) {
    oid = (oid << 8) | static_cast<uint8_t>(key[i]);
  }
  return oid;
}

std::string EncodeTagRecord(uint8_t op, ObjectId oid, const TagValue& name) {
  std::string rec;
  rec.push_back(static_cast<char>(op));
  PutVarint64(&rec, oid);
  PutLengthPrefixed(&rec, name.tag);
  PutLengthPrefixed(&rec, name.value);
  return rec;
}

std::string EncodeOidRecord(uint8_t op, ObjectId oid) {
  std::string rec;
  rec.push_back(static_cast<char>(op));
  PutVarint64(&rec, oid);
  return rec;
}

bool TaggableTag(const std::string& tag) {
  return tag != index::kTagFulltext && tag != index::kTagId;
}

}  // namespace

// ---------------------------------------------------------------- construction

FileSystem::FileSystem(std::unique_ptr<osd::Osd> osd,
                       std::unique_ptr<index::IndexCollection> indexes,
                       const FileSystemOptions& options)
    : options_(options), osd_(std::move(osd)), indexes_(std::move(indexes)) {
  for (size_t shard = 0; shard < kTagShards; shard++) {
    auto root = osd_->GetNamedRoot(ReverseRootName(shard));
    reverse_[shard].root = root.ok() ? *root : 0;
    reverse_[shard].tree = std::make_unique<btree::BTree>(osd_->pager(), osd_->allocator(),
                                                          reverse_[shard].root);
  }
  query_engine_ = std::make_unique<query::QueryEngine>(indexes_.get());
  if (options_.lazy_indexing_threads > 0) {
    auto* ft = static_cast<index::FullTextIndexStore*>(indexes_->store(index::kTagFulltext));
    lazy_indexer_ = std::make_unique<fulltext::LazyIndexer>(ft->engine(),
                                                            options_.lazy_indexing_threads);
  }
}

FileSystem::~FileSystem() {
  // Drain background indexing before the indexes are torn down.
  lazy_indexer_.reset();
  (void)Checkpoint();
}

Result<std::unique_ptr<FileSystem>> FileSystem::Create(std::shared_ptr<BlockDevice> device,
                                                       FileSystemOptions options) {
  HFAD_ASSIGN_OR_RETURN(std::unique_ptr<osd::Osd> osd,
                        osd::Osd::Create(std::move(device), options.osd));
  HFAD_ASSIGN_OR_RETURN(std::unique_ptr<index::IndexCollection> indexes,
                        index::IndexCollection::Mount(osd.get()));
  return std::unique_ptr<FileSystem>(
      new FileSystem(std::move(osd), std::move(indexes), options));
}

Result<std::unique_ptr<FileSystem>> FileSystem::Open(std::shared_ptr<BlockDevice> device,
                                                     FileSystemOptions options) {
  // Namespace records replay through a lazily-mounted index collection on the volume
  // being opened; the collection is then adopted by the FileSystem.
  std::unique_ptr<index::IndexCollection> replay_indexes;
  auto hook = [&replay_indexes](osd::Osd* volume, Slice payload) -> Status {
    if (replay_indexes == nullptr) {
      HFAD_ASSIGN_OR_RETURN(replay_indexes, index::IndexCollection::Mount(volume));
    }
    return ApplyNamespaceRecord(volume, replay_indexes.get(), payload);
  };
  HFAD_ASSIGN_OR_RETURN(std::unique_ptr<osd::Osd> osd,
                        osd::Osd::Open(std::move(device), options.osd, hook));
  std::unique_ptr<index::IndexCollection> indexes = std::move(replay_indexes);
  if (indexes == nullptr) {
    HFAD_ASSIGN_OR_RETURN(indexes, index::IndexCollection::Mount(osd.get()));
  }
  return std::unique_ptr<FileSystem>(
      new FileSystem(std::move(osd), std::move(indexes), options));
}

// ---------------------------------------------------------------- replay

Status FileSystem::ApplyNamespaceRecord(osd::Osd* volume,
                                        index::IndexCollection* indexes, Slice payload) {
  if (payload.empty()) {
    return Status::Corruption("empty namespace record");
  }
  uint8_t op = static_cast<uint8_t>(payload[0]);
  Slice in = payload;
  in.RemovePrefix(1);
  uint64_t oid;
  if (!GetVarint64(&in, &oid)) {
    return Status::Corruption("bad namespace record oid");
  }
  switch (op) {
    case kNsAddTag:
    case kNsRemoveTag: {
      Slice tag, value;
      if (!GetLengthPrefixed(&in, &tag) || !GetLengthPrefixed(&in, &value)) {
        return Status::Corruption("bad tag record");
      }
      index::IndexStore* store = indexes->store(tag.view());
      if (store == nullptr) {
        return Status::Corruption("tag record for unknown store '" + tag.ToString() + "'");
      }
      const std::string root_name = ReverseRootName(TagShardOf(oid));
      btree::BTree reverse(volume->pager(), volume->allocator(),
                           volume->GetNamedRoot(root_name).value_or(0));
      TagValue name{tag.ToString(), value.ToString()};
      Status s;
      if (op == kNsAddTag) {
        s = store->Add(name.value, oid);
        if (s.ok()) {
          s = reverse.Put(ReverseKey(oid, name), Slice());
        }
      } else {
        s = store->Remove(name.value, oid);
        if (s.ok() || s.IsNotFound()) {
          Status rs = reverse.Delete(ReverseKey(oid, name));
          s = rs.IsNotFound() ? Status::Ok() : rs;
        }
      }
      if (s.IsNotFound()) {
        s = Status::Ok();  // The original op may have failed after journaling; tolerate.
      }
      HFAD_RETURN_IF_ERROR(s);
      return volume->SetNamedRoot(root_name, reverse.root());
    }
    case kNsIndexContent: {
      auto size = volume->Size(oid);
      if (size.status().IsNotFound()) {
        return Status::Ok();  // Object deleted later in the log.
      }
      HFAD_RETURN_IF_ERROR(size.status());
      std::string content;
      HFAD_RETURN_IF_ERROR(volume->Read(oid, 0, *size, &content));
      auto* ft = static_cast<index::FullTextIndexStore*>(indexes->store(index::kTagFulltext));
      return ft->Add(content, oid);
    }
    case kNsUnindexContent: {
      auto* ft = static_cast<index::FullTextIndexStore*>(indexes->store(index::kTagFulltext));
      Status s = ft->Remove(Slice(), oid);
      return s.IsNotFound() ? Status::Ok() : s;
    }
    default:
      return Status::Corruption("unknown namespace record op " + std::to_string(op));
  }
}

// ---------------------------------------------------------------- naming

Result<std::vector<ObjectId>> FileSystem::Lookup(const std::vector<TagValue>& terms) const {
  return indexes_->Lookup(terms);
}

Result<std::vector<ObjectId>> FileSystem::Query(Slice query_text) const {
  return query_engine_->Run(query_text);
}

Result<std::vector<fulltext::SearchHit>> FileSystem::SearchText(
    const std::vector<std::string>& terms, size_t limit) const {
  const auto* ft =
      static_cast<const index::FullTextIndexStore*>(indexes_->store(index::kTagFulltext));
  return ft->engine()->Search(terms, limit);
}

SearchCursor FileSystem::OpenCursor() const { return SearchCursor(this); }

// ---------------------------------------------------------------- lifecycle

Result<ObjectId> FileSystem::Create(const std::vector<TagValue>& names) {
  for (const TagValue& name : names) {
    if (!TaggableTag(name.tag)) {
      return Status::InvalidArgument("tag '" + name.tag + "' cannot be assigned manually");
    }
    if (indexes_->store(name.tag) == nullptr) {
      return Status::NotFound("no index store for tag '" + name.tag + "'");
    }
  }
  HFAD_ASSIGN_OR_RETURN(ObjectId oid, osd_->CreateObject());
  for (const TagValue& name : names) {
    // Tags validated above and the object is known to exist — skip AddTag's rechecks.
    HFAD_RETURN_IF_ERROR(AddTagValidated(oid, name));
  }
  return oid;
}

Status FileSystem::Remove(ObjectId oid) {
  HFAD_ASSIGN_OR_RETURN(std::vector<TagValue> names, Tags(oid));
  for (const TagValue& name : names) {
    HFAD_RETURN_IF_ERROR(RemoveTag(oid, name));
  }
  // Strip any full-text postings (journaled so replay stays in sync).
  {
    auto lock = tag_mu_.LockExclusive(oid);
    HFAD_RETURN_IF_ERROR(osd_->AppendForeign(EncodeOidRecord(kNsUnindexContent, oid)));
    auto* ft = static_cast<index::FullTextIndexStore*>(indexes_->store(index::kTagFulltext));
    Status s = ft->Remove(Slice(), oid);
    if (!s.ok() && !s.IsNotFound()) {
      return s;
    }
  }
  return osd_->DeleteObject(oid);
}

// ---------------------------------------------------------------- tags

Status FileSystem::SyncReverseRoot(size_t shard) {
  ReverseShard& rs = reverse_[shard];
  if (rs.tree->root() != rs.root) {
    rs.root = rs.tree->root();
    HFAD_RETURN_IF_ERROR(osd_->SetNamedRoot(ReverseRootName(shard), rs.root));
  }
  return Status::Ok();
}

Status FileSystem::AddTagApply(ObjectId oid, const TagValue& name) {
  index::IndexStore* store = indexes_->store(name.tag);
  HFAD_RETURN_IF_ERROR(store->Add(name.value, oid));
  size_t shard = TagShardOf(oid);
  HFAD_RETURN_IF_ERROR(reverse_[shard].tree->Put(ReverseKey(oid, name), Slice()));
  return SyncReverseRoot(shard);
}

Status FileSystem::RemoveTagApply(ObjectId oid, const TagValue& name) {
  index::IndexStore* store = indexes_->store(name.tag);
  HFAD_RETURN_IF_ERROR(store->Remove(name.value, oid));
  size_t shard = TagShardOf(oid);
  Status s = reverse_[shard].tree->Delete(ReverseKey(oid, name));
  if (!s.ok() && !s.IsNotFound()) {
    return s;
  }
  return SyncReverseRoot(shard);
}

Status FileSystem::AddTag(ObjectId oid, const TagValue& name) {
  if (!TaggableTag(name.tag)) {
    return Status::InvalidArgument("tag '" + name.tag +
                                   "' cannot be assigned manually (use IndexContent for "
                                   "FULLTEXT; IDs are intrinsic)");
  }
  if (indexes_->store(name.tag) == nullptr) {
    return Status::NotFound("no index store for tag '" + name.tag + "'");
  }
  if (!osd_->Exists(oid)) {
    return Status::NotFound("no object " + std::to_string(oid));
  }
  return AddTagValidated(oid, name);
}

Status FileSystem::AddTagValidated(ObjectId oid, const TagValue& name) {
  auto lock = tag_mu_.LockExclusive(oid);
  if (osd_->journaling_enabled()) {
    HFAD_RETURN_IF_ERROR(osd_->AppendForeign(EncodeTagRecord(kNsAddTag, oid, name)));
  }
  return AddTagApply(oid, name);
}

Status FileSystem::RemoveTag(ObjectId oid, const TagValue& name) {
  if (indexes_->store(name.tag) == nullptr) {
    return Status::NotFound("no index store for tag '" + name.tag + "'");
  }
  auto lock = tag_mu_.LockExclusive(oid);
  // Validate first so a journaled remove always corresponds to a real association.
  if (!reverse_[TagShardOf(oid)].tree->Contains(ReverseKey(oid, name))) {
    return Status::NotFound("object " + std::to_string(oid) + " has no name " + name.tag +
                            ":" + name.value);
  }
  if (osd_->journaling_enabled()) {
    HFAD_RETURN_IF_ERROR(osd_->AppendForeign(EncodeTagRecord(kNsRemoveTag, oid, name)));
  }
  return RemoveTagApply(oid, name);
}

Result<std::vector<TagValue>> FileSystem::Tags(ObjectId oid) const {
  if (!osd_->Exists(oid)) {
    return Status::NotFound("no object " + std::to_string(oid));
  }
  auto lock = tag_mu_.LockShared(oid);
  std::vector<TagValue> out;
  std::string prefix = OidBytes(oid);
  HFAD_RETURN_IF_ERROR(reverse_[TagShardOf(oid)].tree->ScanPrefix(
      prefix, [&](Slice key, Slice) {
        out.push_back(
            DecodeNameSuffix(Slice(key.data() + prefix.size(), key.size() - prefix.size())));
        return true;
      }));
  return out;
}

bool FileSystem::HasName(ObjectId oid, const TagValue& name) const {
  auto lock = tag_mu_.LockShared(oid);
  return reverse_[TagShardOf(oid)].tree->Contains(ReverseKey(oid, name));
}

Status FileSystem::ScanAllNames(
    const std::function<bool(ObjectId, const TagValue&)>& fn) const {
  // The reverse map is striped by oid, but the contract is a global scan in oid order:
  // visit shards one at a time (each under its shared lock), gather a snapshot, and
  // merge. Keys start with the big-endian oid, so a plain sort restores global
  // (oid, tag, value) order across shards. Shard-at-a-time gives the same per-shard
  // consistency as StripedMap::ForEach — mutations racing the scan land before or
  // after their shard's visit, never mid-shard — while keeping hold times short (and
  // staying under ThreadSanitizer's 64-held-locks ceiling). The locks are dropped
  // before the callbacks run, so fn may call back into the FileSystem freely; it sees
  // the snapshot.
  std::vector<std::string> keys;
  for (size_t shard = 0; shard < kTagShards; shard++) {
    auto lock = tag_mu_.LockShardShared(shard);
    HFAD_RETURN_IF_ERROR(reverse_[shard].tree->Scan("", "", [&](Slice key, Slice) {
      keys.push_back(key.ToString());
      return true;
    }));
  }
  std::sort(keys.begin(), keys.end());
  for (const std::string& key : keys) {
    if (key.size() < 9) {
      continue;  // Malformed; fsck reports it via the forward pass.
    }
    ObjectId oid = OidFromKey(key);
    TagValue tv = DecodeNameSuffix(Slice(key.data() + 8, key.size() - 8));
    if (!fn(oid, tv)) {
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Status FileSystem::IndexContentNow(ObjectId oid) {
  HFAD_ASSIGN_OR_RETURN(uint64_t size, osd_->Size(oid));
  std::string content;
  HFAD_RETURN_IF_ERROR(osd_->Read(oid, 0, size, &content));
  auto* ft = static_cast<index::FullTextIndexStore*>(indexes_->store(index::kTagFulltext));
  return ft->Add(content, oid);
}

Status FileSystem::IndexContent(ObjectId oid) {
  if (!osd_->Exists(oid)) {
    return Status::NotFound("no object " + std::to_string(oid));
  }
  auto lock = tag_mu_.LockExclusive(oid);
  HFAD_RETURN_IF_ERROR(osd_->AppendForeign(EncodeOidRecord(kNsIndexContent, oid)));
  if (lazy_indexer_ == nullptr) {
    return IndexContentNow(oid);
  }
  // Snapshot the content now so later writes do not race the background worker; the
  // worker indexes exactly these bytes.
  HFAD_ASSIGN_OR_RETURN(uint64_t size, osd_->Size(oid));
  std::string content;
  HFAD_RETURN_IF_ERROR(osd_->Read(oid, 0, size, &content));
  lazy_indexer_->Submit(oid, std::move(content));
  return Status::Ok();
}

Status FileSystem::WaitForIndexing() {
  if (lazy_indexer_ == nullptr) {
    return Status::Ok();
  }
  lazy_indexer_->Drain();
  return lazy_indexer_->first_error();
}

// ---------------------------------------------------------------- access

Status FileSystem::Read(ObjectId oid, uint64_t offset, size_t n, std::string* out) const {
  return osd_->Read(oid, offset, n, out);
}

Status FileSystem::Write(ObjectId oid, uint64_t offset, Slice data) {
  return osd_->Write(oid, offset, data);
}

Status FileSystem::Insert(ObjectId oid, uint64_t offset, Slice data) {
  return osd_->Insert(oid, offset, data);
}

Status FileSystem::Truncate(ObjectId oid, uint64_t offset, uint64_t length) {
  return osd_->RemoveRange(oid, offset, length);
}

Result<uint64_t> FileSystem::Size(ObjectId oid) const { return osd_->Size(oid); }

Result<osd::ObjectMeta> FileSystem::Stat(ObjectId oid) const { return osd_->Stat(oid); }

Status FileSystem::SetAttributes(ObjectId oid, uint32_t mode, uint32_t uid, uint32_t gid) {
  return osd_->SetAttributes(oid, mode, uid, gid);
}

Status FileSystem::Sync() { return osd_->Sync(); }

Status FileSystem::Checkpoint() { return osd_->Checkpoint(); }

// ---------------------------------------------------------------- SearchCursor

Status SearchCursor::Refine(const TagValue& term) {
  const index::IndexStore* store = fs_->indexes()->store(term.tag);
  if (store == nullptr) {
    return Status::NotFound("no index store for tag '" + term.tag + "'");
  }
  HFAD_ASSIGN_OR_RETURN(std::vector<ObjectId> ids, store->Lookup(term.value));
  if (cached_) {
    results_ = index::IntersectSorted(results_, ids);
  } else if (!path_.empty()) {
    // Shouldn't happen (cache tracks path), but recompute defensively.
    HFAD_ASSIGN_OR_RETURN(results_, fs_->Lookup(path_));
    results_ = index::IntersectSorted(results_, ids);
  } else {
    results_ = std::move(ids);
  }
  cached_ = true;
  path_.push_back(term);
  return Status::Ok();
}

Status SearchCursor::Up() {
  if (path_.empty()) {
    return Status::Ok();
  }
  path_.pop_back();
  cached_ = false;
  results_.clear();
  return Status::Ok();
}

Result<std::vector<ObjectId>> SearchCursor::Results() const {
  if (cached_) {
    return results_;
  }
  if (path_.empty()) {
    // Root: every object on the volume.
    std::vector<ObjectId> all;
    HFAD_RETURN_IF_ERROR(const_cast<FileSystem*>(fs_)->volume()->ScanObjects(
        [&](ObjectId oid, const osd::ObjectMeta&) {
          all.push_back(oid);
          return true;
        }));
    results_ = std::move(all);
    cached_ = true;
    return results_;
  }
  HFAD_ASSIGN_OR_RETURN(results_, fs_->Lookup(path_));
  cached_ = true;
  return results_;
}

}  // namespace core
}  // namespace hfad
