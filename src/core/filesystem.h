// The native hFAD API (§3.1): the paper's primary contribution, assembled.
//
// A FileSystem is a tagged, search-based namespace over an OSD volume. There are two
// halves, exactly as §3.1 lays them out:
//
//   * Naming interfaces map tagged search terms to objects. A name is any vector of
//     tag/value pairs; the result is the conjunction of per-index lookups, may contain
//     many objects, and no name need be unique (§3.1.1). Boolean queries and ranked
//     full-text search are layered on the same index stores. A POSIX path is just one
//     name among many (src/posix builds that layer on top of this API).
//
//   * Access interfaces manipulate an object once located: POSIX-compatible read and
//     write, plus insert (grow the middle) and the two-off_t truncate (shrink anywhere)
//     (§3.1.2).
//
// Tag mutations are journaled through the OSD (write-ahead), so the namespace and the
// object store recover together, in order, after a crash.
//
// Content indexing follows §3.4: "we use background threads to perform lazy full-text
// indexing." IndexContent(oid) snapshots the object's bytes and either indexes them
// synchronously (lazy_indexing_threads == 0) or queues them for the background workers;
// WaitForIndexing() drains the queue.
//
// Open question #2 ("extend the notion of a current directory to be an iterative
// refinement of a search") is implemented by SearchCursor: a stack of refinements whose
// intersection is the cursor's "directory contents"; Up() pops one refinement like cd ..
#ifndef HFAD_SRC_CORE_FILESYSTEM_H_
#define HFAD_SRC_CORE_FILESYSTEM_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sharded_lock.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/core/lazy_tag_indexer.h"
#include "src/fulltext/fulltext.h"
#include "src/index/index_store.h"
#include "src/osd/osd.h"
#include "src/osd/osd_cluster.h"
#include "src/query/query.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace core {

using index::ObjectId;
using index::TagValue;

struct FileSystemOptions {
  osd::OsdOptions osd;
  // Background full-text indexing workers; 0 indexes synchronously in IndexContent.
  int lazy_indexing_threads = 2;
  // Lazy TAG indexing (§3.4 generalized to the namespace itself): tag mutations journal
  // an intent, update the reverse map inline, and return; a background worker applies
  // the forward posting-store updates in sorted bulk batches. Readers choose per query
  // between strict (wait for the horizon) and relaxed (current postings) visibility via
  // query::FindOptions::visibility. Acknowledged intents survive crashes: recovery
  // rebuilds the unapplied queue from the journal and the checkpoint's pending set.
  bool lazy_tag_indexing = false;
  // Bound on acknowledged-but-unapplied tag intents; mutators block past it.
  size_t tag_intent_queue_capacity = 4096;
  // Tag-indexer application threads. Tags are hash-partitioned across workers, so
  // per-tag FIFO order (and strict visibility) holds at any count.
  size_t tag_indexer_workers = 1;
  // Number of OSD shards (ROADMAP item 1). 1 (the default) is today's single-volume
  // behavior, byte-compatible with existing volumes; 0 means one shard per device
  // passed to the multi-device Create/Open. Any other value must match the device
  // count. Objects are hash-placed across shards; namespace metadata lives on shard 0;
  // cross-shard NamespaceBatch commits use the cluster's prepare/commit protocol
  // (src/osd/osd_cluster.h).
  size_t shard_count = 1;
};

class SearchCursor;
class NamespaceBatch;

class FileSystem {
 public:
  // Format a fresh volume.
  static Result<std::unique_ptr<FileSystem>> Create(std::shared_ptr<BlockDevice> device,
                                                    FileSystemOptions options = {});
  // Open an existing volume, recovering object store and namespace together.
  static Result<std::unique_ptr<FileSystem>> Open(std::shared_ptr<BlockDevice> device,
                                                  FileSystemOptions options = {});

  // Sharded forms: one volume per device, objects hash-placed across them
  // (FileSystemOptions::shard_count must be 0 or match devices.size()). Open recovers
  // every shard and resolves in-doubt cross-shard batches before returning.
  static Result<std::unique_ptr<FileSystem>> Create(
      std::vector<std::shared_ptr<BlockDevice>> devices, FileSystemOptions options = {});
  static Result<std::unique_ptr<FileSystem>> Open(
      std::vector<std::shared_ptr<BlockDevice>> devices, FileSystemOptions options = {});

  ~FileSystem();

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  // ---- Naming interfaces (§3.1.1) ----
  //
  // All naming is ONE search interface (§3.1): every entry point below compiles to a
  // query::Expr and executes through Find's planner/iterator path. The legacy
  // signatures are thin adapters kept for incremental migration.

  // THE naming entry point: evaluate `expr` through the cost-based planner and pull one
  // page of matching oids (ascending). FindOptions.limit caps the page;
  // FindOptions.after resumes a previous page — together they make every naming
  // consumer streamable instead of materializing complete result sets.
  Result<query::FindPage> Find(const query::Expr& expr,
                               const query::FindOptions& options = {}) const;

  // Parse the boolean query syntax, then Find.
  Result<query::FindPage> Find(Slice query_text,
                               const query::FindOptions& options = {}) const;

  // The same plan as a pull iterator (unpositioned; SeekTo before use) for consumers
  // that stream without page boundaries. Borrows this FileSystem and `stats`.
  Result<std::unique_ptr<index::PostingIterator>> OpenQuery(
      const query::Expr& expr, query::PlanStats* stats = nullptr) const;

  // Objects matching every tag/value term (ascending oid; possibly many; possibly
  // none). Adapter: Find over a conjunction of terms, fully drained.
  Result<std::vector<ObjectId>> Lookup(const std::vector<TagValue>& terms) const;

  // Boolean query over the same namespace, e.g. "UDEF:beach AND NOT USER:nick".
  // Adapter: parse + Find, fully drained.
  Result<std::vector<ObjectId>> Query(Slice query_text) const;

  // Options for SearchText (the full-text adapter's slice of FindOptions).
  struct SearchTextOptions {
    // Maximum hits returned; 0 means unlimited.
    size_t limit = 0;
    // Read visibility of the candidate query under lazy tag indexing (see
    // query::Visibility); ignored with inline indexing.
    query::Visibility visibility = query::Visibility::kStrict;
  };

  // Ranked conjunctive full-text search (BM25). Adapter: the candidate set is the
  // planner's conjunction of FULLTEXT terms; BM25 scores the candidates.
  Result<std::vector<fulltext::SearchHit>> SearchText(const std::vector<std::string>& terms,
                                                      const SearchTextOptions& options) const;

  // Legacy form; equivalent to SearchText(terms, {.limit = limit}).
  Result<std::vector<fulltext::SearchHit>> SearchText(const std::vector<std::string>& terms,
                                                      size_t limit = 0) const;

  // Iterative search refinement (open question #2).
  SearchCursor OpenCursor() const;

  // Staged namespace mutations applied atomically with one journal record (see
  // NamespaceBatch below).
  NamespaceBatch NewBatch();

  // ---- Object lifecycle ----

  // Create an object carrying the given initial names.
  Result<ObjectId> Create(const std::vector<TagValue>& names = {});

  // Remove an object: every name, any full-text postings, then the object itself.
  Status Remove(ObjectId oid);

  // ---- Tag management ----

  // Associate a name with an object. FULLTEXT and ID are not taggable: full-text names
  // come from IndexContent, and IDs are intrinsic.
  Status AddTag(ObjectId oid, const TagValue& name);
  Status RemoveTag(ObjectId oid, const TagValue& name);

  // Every name the object carries, sorted by (tag, value).
  Result<std::vector<TagValue>> Tags(ObjectId oid) const;

  // True when the reverse map records this exact name on the object (fsck support).
  bool HasName(ObjectId oid, const TagValue& name) const;

  // Visit every (object, name) pair on the volume, in oid order (fsck support).
  Status ScanAllNames(const std::function<bool(ObjectId, const TagValue&)>& fn) const;

  // (Re)index the object's current bytes for full-text search. Queued to the background
  // workers when lazy indexing is enabled; WaitForIndexing() makes results visible.
  Status IndexContent(ObjectId oid);

  // Drain the lazy indexer (no-op when synchronous). Returns the first indexing error.
  Status WaitForIndexing();

  // Drain the lazy TAG indexer: wait until every tag intent acknowledged before the
  // call is applied to the posting stores. No-op with inline indexing. Returns the
  // indexer's sticky first application error.
  Status WaitForTagIndexing();

  // Tag intents journaled/acknowledged but not yet applied to the posting stores
  // (queue + in-flight), for fsck's orphan suppression. Empty with inline indexing.
  std::vector<std::pair<ObjectId, TagValue>> PendingIndexIntents() const;

  // True when this filesystem defers forward posting updates to the background worker.
  bool lazy_tag_indexing() const { return tag_indexer_ != nullptr; }

  // Crash/concurrency test support: pin the indexer queue in a chosen drain state.
  LazyTagIndexer* tag_indexer_for_testing() { return tag_indexer_.get(); }

  // ---- Access interfaces (§3.1.2) ----

  Status Read(ObjectId oid, uint64_t offset, size_t n, std::string* out) const;
  Status Write(ObjectId oid, uint64_t offset, Slice data);
  // Insert bytes at offset, shifting the tail up.
  Status Insert(ObjectId oid, uint64_t offset, Slice data);
  // The hFAD truncate: remove `length` bytes at `offset` (two off_t's, §3.1.2).
  Status Truncate(ObjectId oid, uint64_t offset, uint64_t length);
  Result<uint64_t> Size(ObjectId oid) const;
  Result<osd::ObjectMeta> Stat(ObjectId oid) const;
  Status SetAttributes(ObjectId oid, uint32_t mode, uint32_t uid, uint32_t gid);

  // ---- Durability ----

  Status Sync();
  Status Checkpoint();

  // ---- Observability ----

  // One stable-schema JSON document (docs/OBSERVABILITY.md): process-wide counters and
  // latency histograms plus this filesystem's gauges (journal occupancy, pager resident/
  // dirty pages, indexer queue depth, checkpointer state) and lock contention stats
  // (tag shards, OSD object mutex, pager stripes — per-shard top-N included).
  std::string DumpMetrics() const;

  // ---- Lower layers (for the POSIX shim, benches, and tests) ----

  // The metadata shard (shard 0) — where named roots, index stores, and journal gauges
  // live. On a single-shard filesystem this is the whole volume, as before.
  osd::Osd* volume() { return osd_; }
  osd::OsdCluster* cluster() { return cluster_.get(); }
  const osd::OsdCluster* cluster() const { return cluster_.get(); }
  index::IndexCollection* indexes() { return indexes_.get(); }
  const index::IndexCollection* indexes() const { return indexes_.get(); }

 private:
  friend class NamespaceBatch;

  FileSystem(std::unique_ptr<osd::OsdCluster> cluster,
             std::unique_ptr<index::IndexCollection> indexes,
             const FileSystemOptions& options);

  // One staged namespace mutation (NamespaceBatch's unit; also the journal sub-record).
  struct BatchOp {
    uint8_t op;  // kNsAddTag or kNsRemoveTag (filesystem.cc record constants).
    ObjectId oid;
    TagValue name;
  };

  // Apply a validated batch atomically: every involved tag shard acquired once (ordered
  // MultiLock), RemoveTag preconditions checked against pre-batch state, ONE journal
  // record for the whole batch, then in-order apply. Crash recovery replays the record
  // as a unit.
  Status CommitBatch(const std::vector<BatchOp>& ops);

  // Apply one foreign journal record (shared by live journaling and crash replay).
  // `meta` is the metadata shard (namespace btrees), `data` the shard whose journal the
  // record came from (object content reads for kNsIndexContent) — the same Osd on a
  // single-shard filesystem. When `filter_to_shard` is set the payload is a cross-shard
  // batch redone on one participant: only sub-ops whose oid is owned by `shard` apply.
  // Index-intent records (lazy mode) replay their reverse-map half inline and append
  // the deferred forward half to `recovered` (applied fully inline when null).
  static Status ApplyNamespaceRecord(osd::Osd* meta, osd::Osd* data,
                                     const osd::OsdCluster* cluster, size_t shard,
                                     bool filter_to_shard,
                                     index::IndexCollection* indexes, Slice payload,
                                     std::vector<BatchOp>* recovered = nullptr);

  // Replay one add/remove association (single-tag records and batch sub-records). All
  // namespace state lives on `meta`.
  static Status ReplayTagOp(osd::Osd* meta, index::IndexCollection* indexes, uint8_t op,
                            ObjectId oid, const TagValue& name);

  // Replay the reverse-map half of one index intent (the inline half of the lazy
  // write path; the forward half is what `recovered` carries out of replay).
  static Status ReplayIntentReverse(osd::Osd* meta, index::IndexCollection* indexes,
                                    uint8_t op, ObjectId oid, const TagValue& name);

  // Serialize ops as one kNsIndexIntent journal payload.
  static std::string EncodeIntentRecord(const std::vector<BatchOp>& ops);

  // Post-recovery hand-off: seed the background queue (lazy) or apply the deferred
  // forward updates inline (non-lazy), then install the live checkpoint provider.
  Status AdoptRecoveredIntents(std::vector<BatchOp> recovered);

  // Lazy-mode body of AddTagValidated/RemoveTag/CommitBatch: reserve queue slots, then
  // journal ONE intent record — on the owning shard with the enqueue riding the same
  // journal-lock hold when all ops share an owner, or via the cluster's cross-shard
  // prepare/commit protocol (the retention lists carry the records over the enqueue
  // gap) when they do not. Caller holds every involved tag shard, applies the
  // reverse-map half afterwards, and passes `token_out` to MarkForeignApplied once it
  // has.
  Status JournalAndEnqueueIntents(const std::vector<BatchOp>& ops, uint64_t* token_out);

  // AddTag minus the tag/store/existence validation, for callers (Create) that have
  // already established those invariants.
  Status AddTagValidated(ObjectId oid, const TagValue& name);
  Status AddTagApply(ObjectId oid, const TagValue& name);
  Status RemoveTagApply(ObjectId oid, const TagValue& name);
  Status IndexContentNow(ObjectId oid);

  // Tag state is striped (see docs/CONCURRENCY.md): shard i of tag_mu_ guards both the
  // serialization of tag mutations for oids in shard i and that shard's slice of the
  // reverse map, so unrelated objects' tag operations never touch a common lock — no
  // global reverse_mu_ bottleneck, which is the paper's §2.3 argument applied to our
  // own metadata.
  static constexpr size_t kTagShards = 64;
  static constexpr size_t TagShardOf(ObjectId oid) {
    return ShardedMutex<kTagShards>::ShardOf(oid);
  }

  // One stripe of the reverse map oid -> names (so Remove() can strip every name).
  // Backed by a named btree per shard; `root` mirrors the last persisted root.
  struct ReverseShard {
    std::unique_ptr<btree::BTree> tree;
    uint64_t root = 0;
  };

  // Persist shard's reverse-tree root if it moved. Caller holds the shard exclusively.
  Status SyncReverseRoot(size_t shard);

  const FileSystemOptions options_;
  std::unique_ptr<osd::OsdCluster> cluster_;
  osd::Osd* osd_ = nullptr;  // cluster_->meta(): the shard namespace state lives on.
  std::unique_ptr<index::IndexCollection> indexes_;
  std::unique_ptr<query::QueryEngine> query_engine_;
  std::unique_ptr<fulltext::LazyIndexer> lazy_indexer_;
  std::unique_ptr<LazyTagIndexer> tag_indexer_;  // Null unless lazy_tag_indexing.

  mutable ShardedMutex<kTagShards> tag_mu_;
  std::array<ReverseShard, kTagShards> reverse_;
};

// Iterative refinement of a search as a "current directory" (§4, open question #2).
// Each Refine() pushes one tag/value term; Results() is the conjunction of all terms,
// evaluated live through the Find path. Up() pops the most recent term — the
// search-namespace analogue of "cd ..".
class SearchCursor {
 public:
  // Results() returns at most this many ids — an unrefined cursor used to enumerate the
  // entire volume unbounded; now every materializing read is a capped page (use
  // ResultsPage to continue past it).
  static constexpr size_t kDefaultResultLimit = 1024;

  explicit SearchCursor(const FileSystem* fs) : fs_(fs) {}

  // Narrow the cursor by one more term (validated against the registered stores). The
  // result set only ever shrinks.
  Status Refine(const TagValue& term);

  // Drop the most recent refinement. No-op at the root.
  Status Up();

  // First page (kDefaultResultLimit) of the current result set. At the root (no
  // refinements) this pages over every object on the volume.
  Result<std::vector<ObjectId>> Results() const;

  // Paged results with caller-controlled limit/after — the streaming form. Each call
  // re-evaluates against the live namespace; FindOptions.after keyset-anchors the page,
  // so concurrent mutations never duplicate or reorder ids across pages.
  Result<query::FindPage> ResultsPage(const query::FindOptions& options) const;

  // The refinement stack, oldest first — the cursor's "working directory path".
  const std::vector<TagValue>& path() const { return path_; }

  size_t depth() const { return path_.size(); }

  // Read visibility used by Results(); ResultsPage callers carry their own choice in
  // FindOptions::visibility. Meaningful only under lazy tag indexing (query::Visibility).
  void set_visibility(query::Visibility v) { visibility_ = v; }
  query::Visibility visibility() const { return visibility_; }

 private:
  const FileSystem* fs_;
  std::vector<TagValue> path_;
  query::Visibility visibility_ = query::Visibility::kStrict;
};

// Staged namespace mutations applied as one atomic unit — the write-side half of the
// unified naming API. Stage any mix of AddTag/RemoveTag (and Create for fresh objects
// whose initial names ride the batch), then Commit():
//
//   * every involved tag shard is acquired exactly once, in ascending shard order
//     (deadlock-free MultiLock), instead of once per tag;
//   * ONE journal record covers the whole batch (vs. one per tag for the loose calls) —
//     the API-level answer to journal-append contention on tag-storm workloads;
//   * crash recovery replays the batch as a unit: after a crash either every staged op
//     is recovered or none is (the journal's record-level atomicity).
//
// RemoveTag preconditions are validated against the pre-batch state under the locks,
// before journaling: a batch that removes a name it also stages an add for is rejected.
// Not thread-safe; one thread stages and commits. Commit clears the batch on success so
// the instance is reusable.
class NamespaceBatch {
 public:
  explicit NamespaceBatch(FileSystem* fs) : fs_(fs) {}

  // Stage one association. Tag validity (taggable, store registered) is checked here;
  // object existence at Commit.
  Status AddTag(ObjectId oid, const TagValue& name);

  // Stage one removal. The association must exist when Commit runs.
  Status RemoveTag(ObjectId oid, const TagValue& name);

  // Create a fresh object now (object allocation is OSD-journaled immediately) and
  // stage its initial names onto the batch.
  Result<ObjectId> Create(const std::vector<TagValue>& names = {});

  // Apply every staged op atomically (see class comment). On success the batch clears.
  Status Commit();

  // Discard staged ops without applying them. Objects from Create() persist (they were
  // allocated eagerly), just without the staged names.
  void Clear() { ops_.clear(); }

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

 private:
  FileSystem* const fs_;
  std::vector<FileSystem::BatchOp> ops_;
};

}  // namespace core
}  // namespace hfad

#endif  // HFAD_SRC_CORE_FILESYSTEM_H_
