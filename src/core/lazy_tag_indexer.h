// Background application of tag mutations (§3.4: indexing is a cache over naming state
// and need not be synchronous with mutation).
//
// In lazy mode the FileSystem journals a tag intent, updates the reverse map inline
// (naming state stays authoritative), enqueues the forward posting-store update here,
// and returns. Worker threads (configurable count, default 1) drain per-worker queues
// into the posting btrees in sorted bulk batches (IndexStore::ApplyBatch ->
// Btree::BulkLoad). Visibility is explicit: strict readers wait on per-tag
// applied-sequence horizons (the PR 5 committed_seq_ idiom, one watermark pair per
// tag), relaxed readers take the postings as they are.
//
// With multiple workers, tags are partitioned across workers by hash: every op for a
// given tag lands in the same worker's FIFO queue, so per-tag application order still
// equals per-tag enqueue order and the horizon counters stay correct — the exact
// invariant that makes strict visibility a counter comparison. Distinct tags may
// apply out of mutual order, which was never guaranteed.
//
// Crash safety is owned by the layers around this class: intents are journaled before
// they are enqueued (Osd::AppendForeign with the enqueue callback under the same volume
// lock hold), checkpoints persist SnapshotUnapplied() into the volume
// ("osd/pending-foreign"), and recovery Seed()s the rebuilt queue.
//
// Lock order (docs/CONCURRENCY.md): mu_ here is a leaf lock on the enqueue side —
// callers hold a tag shard lock (never the volume lock) when they block in
// ReserveSlots. The worker acquires store locks / the volume lock only while NOT
// holding mu_.
#ifndef HFAD_SRC_CORE_LAZY_TAG_INDEXER_H_
#define HFAD_SRC_CORE_LAZY_TAG_INDEXER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/index/index_store.h"

namespace hfad {
namespace core {

class LazyTagIndexer {
 public:
  // One deferred posting-store mutation.
  struct Op {
    bool add = true;  // true = add association, false = remove.
    index::ObjectId oid = 0;
    index::TagValue name;
  };

  // `indexes` must outlive this object. `queue_capacity` bounds acknowledged-but-
  // unapplied intents across all workers (mutators block in ReserveSlots beyond it);
  // `batch_limit` caps ops taken per worker application round; `worker_count` sets
  // how many application threads partition the tag space (see file comment).
  LazyTagIndexer(index::IndexCollection* indexes, size_t queue_capacity,
                 size_t batch_limit = 256, size_t worker_count = 1);
  ~LazyTagIndexer();

  LazyTagIndexer(const LazyTagIndexer&) = delete;
  LazyTagIndexer& operator=(const LazyTagIndexer&) = delete;

  // Block until n queue slots are free, then reserve them. MUST be called before the
  // caller takes the volume lock: blocking on the worker while holding the volume lock
  // shared deadlocks against a waiting checkpoint (writer-priority) that the worker's
  // own store writes queue behind. Batches larger than the capacity are admitted once
  // the queue is fully empty.
  void ReserveSlots(size_t n);

  // Give back reserved slots that will not be enqueued (journal append failed).
  void ReleaseSlots(size_t n);

  // Move ops into previously reserved slots. Never blocks — safe under the volume
  // lock, which is what makes journal-append + enqueue atomic against checkpoints.
  void EnqueueReserved(std::vector<Op> ops);

  // Recovery: seed the queue with intents rebuilt from the journal/pending set. May
  // exceed the capacity transiently; takes no reservation.
  void Seed(std::vector<Op> ops);

  // Wait until every op enqueued before this call for any of `tags` has been applied
  // (the strict-visibility horizon). Returns the sticky first application error.
  Status WaitForTags(const std::vector<std::string>& tags);

  // Global horizon: wait for everything currently enqueued. Returns immediately while
  // paused (test support) — a paused queue would never drain.
  Status Drain();

  // Queued + in-flight ops in queue order — the checkpoint provider's and fsck's view
  // of what the posting stores may still be missing.
  std::vector<Op> SnapshotUnapplied() const;

  size_t PendingCount() const;

  // First store-application error, sticky (applied horizons still advance past a
  // failed batch so strict readers surface the error instead of hanging).
  Status first_error() const;

  // Test support: freeze the worker between batches so crash tests can pin the queue
  // in a partially drained state.
  void SetPausedForTesting(bool paused);

 private:
  void WorkerMain(size_t worker);

  // Apply one popped batch to the posting stores. Called with mu_ NOT held.
  Status ApplyOps(const std::vector<Op>& ops);

  // Which worker owns a tag. All state stays under the single mu_; only the
  // queues are per-worker, which is what the FIFO horizon invariant needs.
  size_t WorkerFor(const std::string& tag) const {
    return std::hash<std::string>{}(tag) % worker_count_;
  }

  // Ops enqueued or in application, summed across workers. Caller holds mu_.
  size_t UsedLocked() const;

  index::IndexCollection* const indexes_;
  const size_t capacity_;
  const size_t batch_limit_;
  const size_t worker_count_;

  mutable std::mutex mu_;
  std::condition_variable slots_cv_;    // Reservers waiting for queue room.
  std::condition_variable work_cv_;     // Workers waiting for ops / unpause.
  std::condition_variable applied_cv_;  // Strict readers waiting on horizons.

  std::vector<std::deque<Op>> queues_;       // Per worker: enqueued, not picked up.
  std::vector<std::vector<Op>> in_flights_;  // Per worker: application in progress.
  size_t reserved_ = 0;          // Slots reserved but not yet enqueued.
  bool paused_ = false;
  bool shutdown_ = false;
  Status first_error_;

  // Per-tag horizons: how many ops for this tag were ever enqueued / applied. The
  // queue is FIFO and batches are queue prefixes, so per-tag application order equals
  // per-tag enqueue order and a counter pair is a correct watermark.
  std::unordered_map<std::string, uint64_t> enqueued_by_tag_;
  std::unordered_map<std::string, uint64_t> applied_by_tag_;
  uint64_t enqueued_total_ = 0;
  uint64_t applied_total_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace core
}  // namespace hfad

#endif  // HFAD_SRC_CORE_LAZY_TAG_INDEXER_H_
