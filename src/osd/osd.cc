#include "src/osd/osd.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "src/common/coding.h"
#include "src/common/metrics.h"
#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/extent/extent_tree.h"
#include "src/osd/scrubber.h"

namespace hfad {
namespace osd {

namespace {

// Journal record types. Logical records (applied ops) live below 100; foreign records
// (higher layers) are 100; checkpoint-epilogue records live at 200+.
constexpr uint8_t kRtCreate = 1;
constexpr uint8_t kRtDelete = 2;
constexpr uint8_t kRtWrite = 3;
constexpr uint8_t kRtInsert = 4;
constexpr uint8_t kRtRemoveRange = 5;
constexpr uint8_t kRtTruncate = 6;
constexpr uint8_t kRtSetAttr = 7;
constexpr uint8_t kRtForeign = 100;
constexpr uint8_t kRtPageImage = 200;
constexpr uint8_t kRtAllocSnapshot = 201;
constexpr uint8_t kRtCheckpointCommit = 202;

// Reservation slack per op for btree page dirtying beyond the payload itself.
constexpr uint64_t kOpEpilogueSlack = 64 * 1024;

// Named root of the btree holding journaled-but-unapplied foreign payloads across a
// checkpoint's journal reset (see SetUnappliedForeignProvider).
constexpr char kPendingForeignRoot[] = "osd/pending-foreign";

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::system_clock::now().time_since_epoch())
                                   .count());
}

// Object-table key: big-endian OID so that byte order equals numeric order.
std::string OidKey(ObjectId oid) {
  std::string key(8, '\0');
  for (int i = 7; i >= 0; i--) {
    key[i] = static_cast<char>(oid & 0xff);
    oid >>= 8;
  }
  return key;
}

ObjectId OidFromKey(Slice key) {
  ObjectId oid = 0;
  for (size_t i = 0; i < 8 && i < key.size(); i++) {
    oid = (oid << 8) | static_cast<uint8_t>(key[i]);
  }
  return oid;
}

// Object-table record: metadata plus the extent-tree root.
struct ObjectRecord {
  ObjectMeta meta;
  uint64_t extent_root = 0;
};

std::string EncodeRecord(const ObjectRecord& r) {
  std::string out;
  PutVarint32(&out, r.meta.mode);
  PutVarint32(&out, r.meta.uid);
  PutVarint32(&out, r.meta.gid);
  PutFixed64(&out, r.meta.atime_ns);
  PutFixed64(&out, r.meta.mtime_ns);
  PutFixed64(&out, r.meta.ctime_ns);
  PutVarint64(&out, r.meta.size);
  PutFixed64(&out, r.extent_root);
  return out;
}

Result<ObjectRecord> DecodeRecord(Slice in) {
  ObjectRecord r;
  if (!GetVarint32(&in, &r.meta.mode) || !GetVarint32(&in, &r.meta.uid) ||
      !GetVarint32(&in, &r.meta.gid) || !GetFixed64(&in, &r.meta.atime_ns) ||
      !GetFixed64(&in, &r.meta.mtime_ns) || !GetFixed64(&in, &r.meta.ctime_ns) ||
      !GetVarint64(&in, &r.meta.size) || !GetFixed64(&in, &r.extent_root)) {
    return Status::Corruption("undecodable object record");
  }
  return r;
}

}  // namespace

// ---------------------------------------------------------------- construction

Osd::Osd(std::shared_ptr<BlockDevice> device, const OsdOptions& options, Superblock sb)
    : device_(std::move(device)), options_(options), sb_(sb) {}

void Osd::InitStructures() {
  allocator_ = std::make_unique<BuddyAllocator>(sb_.heap_offset, sb_.heap_size);
  pager_ = std::make_unique<Pager>(device_.get(), options_.pager_capacity_pages,
                                   /*no_steal=*/options_.journaling);
  journal_ = std::make_unique<journal::Journal>(device_.get(), sb_.journal_offset,
                                                sb_.journal_size);
  // cksum_offset == 0 means the volume predates checksums (pre-v3 superblock)
  // or was created with them off; it keeps running unverified.
  if (sb_.cksum_offset != 0 && sb_.cksum_size != 0) {
    checksums_ = std::make_unique<PageChecksums>(sb_.device_size, kPageSize);
    pager_->SetChecksums(checksums_.get());
  }
  pager_->SetVolumeHealth(&health_);
  pager_->SetRetryPolicy(options_.retry);
  journal_->SetRetryPolicy(options_.retry);
  object_table_ =
      std::make_unique<btree::BTree>(pager_.get(), allocator_.get(), sb_.object_table_root);
  named_roots_ =
      std::make_unique<btree::BTree>(pager_.get(), allocator_.get(), sb_.index_dir_root);
  if (checksums_) {
    Scrubber::Options sopts;
    sopts.device_size = sb_.device_size;
    sopts.interval_ms = options_.scrub_interval_ms;
    sopts.pages_per_batch = options_.scrub_pages_per_batch;
    sopts.pause_us = options_.scrub_pause_us;
    sopts.retry = options_.retry;
    scrubber_ = std::make_unique<Scrubber>(device_.get(), pager_.get(), checksums_.get(),
                                           &health_, sopts);
    scrubber_->SetRepairKick([this] { RequestCheckpoint(); });
  }
  if (options_.io_threads > 0) {
    io::IoEngineOptions eopts;
    eopts.threads = options_.io_threads;
    eopts.backend = options_.io_backend;
    io_engine_ = io::CreateIoEngine(device_.get(), eopts);
    journal_->SetIoEngine(io_engine_.get());
    pager_->SetIoEngine(io_engine_.get());
  }
  next_oid_.store(sb_.next_oid);
}

Result<std::unique_ptr<Osd>> Osd::Create(std::shared_ptr<BlockDevice> device,
                                         const OsdOptions& options) {
  const uint64_t dev_size = device->Size();
  uint64_t journal_size = options.journal_size;
  if (journal_size == 0) {
    journal_size = dev_size / 8;
    journal_size = std::max<uint64_t>(journal_size, 256 * 1024);
    journal_size = std::min<uint64_t>(journal_size, 64ull * 1024 * 1024);
  }
  journal_size = (journal_size + kPageSize - 1) / kPageSize * kPageSize;

  // The checksum region holds one 8-byte entry per device page (plus header and
  // CRC), page-rounded; it sits between the journal and the heap.
  uint64_t cksum_area = 0;
  if (options.page_checksums) {
    cksum_area = (PageChecksums::SerializedSize(dev_size, kPageSize) + kPageSize - 1) /
                 kPageSize * kPageSize;
  }

  // Heap is the largest power of two that fits after the fixed regions. The allocator
  // snapshot area must hold one entry (~16 B) per minimum-size allocation.
  uint64_t heap_size = kPageSize;
  uint64_t alloc_area = 0;
  uint64_t heap_offset = 0;
  for (uint64_t trial = kPageSize; ; trial *= 2) {
    uint64_t area = std::max<uint64_t>(64 * 1024, trial / 256);
    area = (area + kPageSize - 1) / kPageSize * kPageSize;
    uint64_t off = Superblock::kSuperblockSize + area + journal_size + cksum_area;
    if (off + trial > dev_size) {
      break;
    }
    heap_size = trial;
    alloc_area = area;
    heap_offset = off;
  }
  if (heap_offset == 0 || heap_size < 4 * kPageSize) {
    return Status::InvalidArgument("device too small for an hFAD volume (" +
                                   std::to_string(dev_size) + " bytes)");
  }

  Superblock sb;
  sb.device_size = dev_size;
  sb.alloc_area_offset = Superblock::kSuperblockSize;
  sb.alloc_area_size = alloc_area;
  sb.alloc_snapshot_size = 0;
  sb.journal_offset = Superblock::kSuperblockSize + alloc_area;
  sb.journal_size = journal_size;
  sb.heap_offset = heap_offset;
  sb.heap_size = heap_size;
  if (options.page_checksums) {
    sb.cksum_offset = Superblock::kSuperblockSize + alloc_area + journal_size;
    sb.cksum_size = cksum_area;
    sb.cksum_generation = 0;  // First checkpoint bumps to 1 and persists the table.
  }

  std::unique_ptr<Osd> osd(new Osd(std::move(device), options, sb));
  osd->InitStructures();
  HFAD_RETURN_IF_ERROR(osd->journal_->Reset());
  HFAD_RETURN_IF_ERROR(osd->CheckpointLocked());
  osd->StartCheckpointThread();
  if (osd->scrubber_) {
    osd->scrubber_->Start();
  }
  return osd;
}

Result<std::unique_ptr<Osd>> Osd::Open(std::shared_ptr<BlockDevice> device,
                                       const OsdOptions& options,
                                       ForeignReplayFn replay_foreign) {
  // Open-path reads retry like runtime reads: a transient fault while mounting
  // should not fail the whole volume.
  std::string buf;
  HFAD_RETURN_IF_ERROR(options.retry.RunWithRetry(
      [&] { return device->Read(0, Superblock::kSuperblockSize, &buf); }));
  HFAD_ASSIGN_OR_RETURN(Superblock sb, Superblock::Decode(buf));
  if (sb.device_size != device->Size()) {
    return Status::Corruption("superblock device size mismatch");
  }

  std::unique_ptr<Osd> osd(new Osd(std::move(device), options, sb));
  osd->InitStructures();

  // Restore the allocator to the last checkpoint's state. A decode failure is
  // deferred, not fatal yet: a crash between the in-place alloc-area write and
  // the superblock commit leaves the OLD superblock's snapshot size pointing at
  // NEW area bytes, and the journal's checkpoint epilogue (durable before any
  // in-place write) carries the authoritative snapshot that replay redoes below.
  Status alloc_restore;
  if (sb.alloc_snapshot_size > 0) {
    std::string snap;
    alloc_restore = options.retry.RunWithRetry([&] {
      return osd->device_->Read(sb.alloc_area_offset, sb.alloc_snapshot_size, &snap);
    });
    if (alloc_restore.ok()) {
      alloc_restore = osd->allocator_->Deserialize(snap);
    }
  }

  // Load the persisted checksum table. ANY failure — torn region, rotted region
  // bytes, a generation left stale by a crash between the region write and the
  // superblock commit — degrades to an absent table: pages go unverified until
  // the next checkpoint re-persists, never falsely rejected.
  if (osd->checksums_ && sb.cksum_generation > 0) {
    uint64_t table_size = PageChecksums::SerializedSize(sb.device_size, kPageSize);
    std::string table;
    if (table_size <= sb.cksum_size &&
        options.retry
            .RunWithRetry(
                [&] { return osd->device_->Read(sb.cksum_offset, table_size, &table); })
            .ok()) {
      (void)osd->checksums_->Deserialize(Slice(table), sb.cksum_generation);
    }
  }

  // Scan the journal. The LAST complete checkpoint epilogue (ending in a commit
  // record) is redone physically; logical records after it are replayed on top.
  // Epilogue records with no commit record behind them — a checkpoint torn mid-commit —
  // are skipped entirely: the logical records preceding them describe the same state.
  std::vector<std::pair<uint64_t, std::string>> records;
  HFAD_RETURN_IF_ERROR(osd->journal_
                           ->Recover([&](uint64_t seq, Slice payload) {
                             records.emplace_back(seq, payload.ToString());
                           })
                           .status());

  size_t replay_from = 0;  // First record index NOT covered by a redone checkpoint.
  for (size_t i = 0; i < records.size(); i++) {
    if (!records[i].second.empty() &&
        static_cast<uint8_t>(records[i].second[0]) == kRtCheckpointCommit) {
      replay_from = i + 1;
    }
  }

  if (!alloc_restore.ok()) {
    // Only redo can rebuild the allocator now; without a journaled snapshot in
    // the covered epilogue the volume is genuinely corrupt.
    bool snapshot_in_redo = false;
    for (size_t i = 0; i < replay_from && !snapshot_in_redo; i++) {
      snapshot_in_redo = !records[i].second.empty() &&
                         static_cast<uint8_t>(records[i].second[0]) == kRtAllocSnapshot;
    }
    if (!snapshot_in_redo) {
      return alloc_restore;
    }
  }

  // Replay rewrites pages whose persisted CRCs are legitimately stale (a
  // force-synced raw overwrite changed device bytes after the table was
  // persisted); reads during replay must not trip over them. Stamping stays on,
  // so the table is consistent again once replay finishes.
  if (osd->checksums_ && !records.empty()) {
    osd->checksums_->set_verify_enabled(false);
  }

  if (replay_from > 0) {
    // Redo: write every journaled page image in place, restore the allocator snapshot,
    // then adopt the committed roots. All of it is idempotent.
    for (size_t i = 0; i < replay_from; i++) {
      Slice in(records[i].second);
      uint8_t type = static_cast<uint8_t>(in[0]);
      in.RemovePrefix(1);
      if (type == kRtPageImage) {
        uint64_t off;
        if (!GetFixed64(&in, &off) || in.size() != kPageSize) {
          return Status::Corruption("bad page-image record");
        }
        HFAD_RETURN_IF_ERROR(osd->device_->Write(off, in));
        if (osd->checksums_) {
          // The image IS the page's full content: restamp rather than dropping
          // coverage (this device write bypasses the pager's stamping paths).
          osd->checksums_->Stamp(off, in);
        }
      } else if (type == kRtAllocSnapshot) {
        HFAD_RETURN_IF_ERROR(osd->allocator_->Deserialize(in.ToString()));
        HFAD_RETURN_IF_ERROR(osd->device_->Write(osd->sb_.alloc_area_offset, in));
        osd->sb_.alloc_snapshot_size = in.size();
        if (osd->checksums_) {
          // The redo writes only the snapshot bytes; trailing area pages keep
          // whatever the interrupted checkpoint left. The final checkpoint below
          // rewrites the padded area and restamps.
          osd->checksums_->InvalidateRange(osd->sb_.alloc_area_offset,
                                           osd->sb_.alloc_area_size);
        }
      } else if (type == kRtCheckpointCommit) {
        uint64_t table_root, named_root, next_oid;
        if (!GetFixed64(&in, &table_root) || !GetFixed64(&in, &named_root) ||
            !GetFixed64(&in, &next_oid)) {
          return Status::Corruption("bad checkpoint-commit record");
        }
        osd->sb_.object_table_root = table_root;
        osd->sb_.index_dir_root = named_root;
        osd->sb_.next_oid = next_oid;
      }
      // Logical records covered by the epilogue are already contained in the images.
    }
    HFAD_RETURN_IF_ERROR(osd->device_->Write(0, osd->sb_.Encode()));
    HFAD_RETURN_IF_ERROR(osd->device_->Sync());
    // Re-open the btrees on the committed roots. The journal is deliberately NOT reset
    // yet: until the final checkpoint below lands, a crash during the remaining
    // recovery must still find every record. (The page cache is untouched so far —
    // recovery IO above went straight to the device — so no stale pages to drop.)
    osd->object_table_ = std::make_unique<btree::BTree>(
        osd->pager_.get(), osd->allocator_.get(), osd->sb_.object_table_root);
    osd->named_roots_ = std::make_unique<btree::BTree>(
        osd->pager_.get(), osd->allocator_.get(), osd->sb_.index_dir_root);
    osd->next_oid_.store(osd->sb_.next_oid);
  }

  osd->in_recovery_ = true;

  // Feed the last checkpoint's persisted unapplied-foreign set through the replay hook
  // BEFORE the logical suffix: those intents were journaled before every record the
  // journal still holds, so per-key ordering is preserved.
  {
    auto raw = osd->named_roots_->Get(kPendingForeignRoot);
    if (raw.ok()) {
      if (raw->size() != 8) {
        osd->in_recovery_ = false;
        return Status::Corruption("bad pending-foreign root entry");
      }
      uint64_t proot = DecodeFixed64(reinterpret_cast<const uint8_t*>(raw->data()));
      if (proot != 0) {
        btree::BTree tree(osd->pager_.get(), osd->allocator_.get(), proot);
        std::vector<std::string> payloads;
        Status s = tree.Scan(Slice(), Slice(), [&](Slice, Slice value) {
          payloads.push_back(value.ToString());
          return true;
        });
        if (!s.ok()) {
          osd->in_recovery_ = false;
          return s;
        }
        if (!payloads.empty() && replay_foreign == nullptr) {
          osd->in_recovery_ = false;
          return Status::Corruption("persisted foreign intents but no replay hook");
        }
        for (const std::string& p : payloads) {
          s = replay_foreign(osd.get(), Slice(p));
          if (!s.ok()) {
            osd->in_recovery_ = false;
            return Status::Corruption("pending-foreign replay failed: " + s.ToString());
          }
        }
      }
    } else if (!raw.status().IsNotFound()) {
      osd->in_recovery_ = false;
      return raw.status();
    }
  }

  // Replay logical records past the last complete checkpoint, skipping any epilogue
  // prefix a torn later checkpoint attempt left behind (its page images are redundant
  // with the logical records already replayed).
  for (size_t i = replay_from; i < records.size(); i++) {
    const auto& [seq, payload] = records[i];
    if (!payload.empty()) {
      uint8_t type = static_cast<uint8_t>(payload[0]);
      if (type == kRtPageImage || type == kRtAllocSnapshot) {
        continue;
      }
    }
    Status s = osd->ReplayRecord(Slice(payload), replay_foreign);
    if (!s.ok()) {
      osd->in_recovery_ = false;
      return Status::Corruption("journal replay failed at seq " + std::to_string(seq) +
                                ": " + s.ToString());
    }
  }
  osd->in_recovery_ = false;
  if (osd->checksums_) {
    // Every stale entry has been restamped by now (redo images directly, raw
    // overwrites by their replayed — force-synced, hence present — records).
    osd->checksums_->set_verify_enabled(true);
  }
  // Make the recovered state the new checkpoint; only its success empties the journal,
  // so a crash inside it still finds every record next time. One pathological escape:
  // if the surviving journal content leaves no room for this checkpoint's epilogue,
  // empty the journal first — the physical redo above is already durable, so only ops
  // replayed from the logical suffix would be exposed to a crash inside the retry.
  Status ck = osd->CheckpointLocked();
  if (ck.IsNoSpace()) {
    HFAD_RETURN_IF_ERROR(osd->journal_->Reset());
    ck = osd->CheckpointLocked();
  }
  HFAD_RETURN_IF_ERROR(ck);
  osd->StartCheckpointThread();
  if (osd->scrubber_) {
    osd->scrubber_->Start();
  }
  return osd;
}

Osd::~Osd() {
  // Best effort: make acknowledged state durable on clean shutdown. Close() retains the
  // outcome in last_close_status() and counts failures into stats — a destructor cannot
  // return the error, but it must not vanish either.
  (void)Close();
}

Status Osd::Close() {
  {
    std::lock_guard<std::mutex> lock(close_mu_);
    if (closed_) {
      return last_close_status_;
    }
    closed_ = true;
  }
  if (scrubber_) {
    scrubber_->Stop();  // Before the checkpointer: a repair kick must find it alive or gone.
  }
  StopCheckpointThread();
  Status s = Checkpoint();
  {
    std::lock_guard<std::mutex> lock(close_mu_);
    last_close_status_ = s;
  }
  if (!s.ok()) {
    stats::Add(stats::Counter::kOsdCloseErrors);
  }
  return s;
}

Status Osd::last_close_status() const {
  std::lock_guard<std::mutex> lock(close_mu_);
  return last_close_status_;
}

// ------------------------------------------------------- background checkpointer

void Osd::StartCheckpointThread() {
  if (!options_.journaling || options_.checkpoint_kick_occupancy <= 0 ||
      options_.checkpoint_kick_occupancy >= 1) {
    return;
  }
  ckpt_state_.store(static_cast<int>(CheckpointerState::kIdle),
                    std::memory_order_relaxed);
  checkpoint_thread_ = std::thread([this] { CheckpointThreadMain(); });
}

void Osd::StopCheckpointThread() {
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_shutdown_ = true;
  }
  ckpt_cv_.notify_all();
  if (checkpoint_thread_.joinable()) {
    checkpoint_thread_.join();
  }
  ckpt_state_.store(static_cast<int>(CheckpointerState::kDisabled),
                    std::memory_order_relaxed);
}

void Osd::MaybeKickCheckpoint() {
  if (!checkpoint_thread_.joinable() ||
      journal_->Occupancy() < options_.checkpoint_kick_occupancy) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    if (ckpt_requested_ || ckpt_shutdown_) {
      return;  // Already kicked (or shutting down); the thread will re-check occupancy.
    }
    ckpt_requested_ = true;
    ckpt_state_.store(static_cast<int>(CheckpointerState::kKicked),
                      std::memory_order_relaxed);
  }
  ckpt_cv_.notify_one();
}

void Osd::CheckpointThreadMain() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(ckpt_mu_);
      ckpt_state_.store(static_cast<int>(ckpt_requested_ ? CheckpointerState::kKicked
                                                         : CheckpointerState::kIdle),
                        std::memory_order_relaxed);
      ckpt_cv_.wait(lock, [&] { return ckpt_requested_ || ckpt_shutdown_; });
      if (ckpt_shutdown_) {
        return;
      }
      ckpt_requested_ = false;
      ckpt_state_.store(static_cast<int>(CheckpointerState::kRunning),
                        std::memory_order_relaxed);
    }
    // An IO error here is not fatal to ops: the journal simply keeps filling and the
    // synchronous NoSpace backstop in EnsureJournalSpace reports it on the op path.
    trace::OpScope op("bg_checkpoint");
    (void)Checkpoint();
  }
}

// ---------------------------------------------------------------- health gates

Status Osd::CheckWritable() const {
  HealthState s = health_.state();
  if (s == HealthState::kFailed) {
    return Status::IoError("volume failed: " + health_.reason());
  }
  if (s == HealthState::kReadOnly) {
    return Status::ReadOnly("volume is read-only: " + health_.reason());
  }
  return Status::Ok();
}

Status Osd::CheckReadable() const {
  if (!health_.readable()) {
    return Status::IoError("volume failed: " + health_.reason());
  }
  return Status::Ok();
}

void Osd::ReconcileChecksumsWithAllocator() {
  if (!checksums_) {
    return;
  }
  uint64_t pos = sb_.heap_offset;
  const uint64_t heap_end = sb_.heap_offset + sb_.heap_size;
  for (const auto& ext : allocator_->LiveExtents()) {  // Sorted by offset.
    if (ext.offset > pos) {
      checksums_->InvalidateRange(pos, ext.offset - pos);
    }
    pos = ext.offset + ext.length;
  }
  if (heap_end > pos) {
    checksums_->InvalidateRange(pos, heap_end - pos);
  }
}

Status Osd::ScrubNow(ScrubReport* report) {
  if (!scrubber_) {
    if (report != nullptr) {
      *report = ScrubReport{};
    }
    return Status::Ok();  // No checksums: nothing to scrub against.
  }
  return scrubber_->ScrubPass(report);
}

// ---------------------------------------------------------------- journaling core

Status Osd::JournalRecord(Slice payload, uint64_t reserved, bool force_sync) {
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    logical_reserved_ -= std::min(logical_reserved_, reserved);
    auto seq_or = journal_->Append(payload);
    if (!seq_or.ok()) {
      return seq_or.status();
    }
    seq = *seq_or;
  }
  if (force_sync || !options_.group_commit) {
    // Outside journal_mu_: the journal's leader/follower protocol does the fsync, and
    // concurrent appenders must be able to ride (or simply ignore) it.
    return journal_->CommitThrough(seq);
  }
  return Status::Ok();
}

// Object size with the object + volume locks already held.
Result<uint64_t> Osd::LockedSize(ObjectId oid) const {
  HFAD_ASSIGN_OR_RETURN(std::string raw, object_table_->Get(OidKey(oid)));
  HFAD_ASSIGN_OR_RETURN(ObjectRecord rec, DecodeRecord(raw));
  return rec.meta.size;
}

Result<bool> Osd::EnsureJournalSpace(uint64_t record_bytes, uint64_t* reserved) {
  *reserved = 0;
  if (!options_.journaling || in_recovery_) {
    return true;
  }
  const uint64_t logical_need = record_bytes + journal::kRecordHeaderSize;
  const uint64_t epilogue_need = record_bytes + kOpEpilogueSlack;
  // An op this large can never coexist with its own epilogue: exclusive path.
  if (2 * (logical_need + epilogue_need) > sb_.journal_size) {
    return false;
  }
  auto try_reserve = [&]() {
    std::lock_guard<std::mutex> lock(journal_mu_);
    uint64_t committed_epilogue =
        pager_->dirty_pages() * (kPageSize + 32) + allocator_->allocation_count() * 16 +
        4096;
    uint64_t available = journal_->SpaceRemaining();
    uint64_t needed =
        logical_need + epilogue_need + logical_reserved_ + epilogue_reserved_ +
        committed_epilogue;
    if (available < needed) {
      return false;
    }
    logical_reserved_ += logical_need;
    epilogue_reserved_ += epilogue_need;
    *reserved = logical_need;
    return true;
  };
  // Fast path: the reservation fits. Kick the background checkpointer when occupancy
  // crosses the threshold so the journal is usually emptied long before any op has to
  // fall into the synchronous backstop below — a tag storm then never stalls an op
  // behind a full checkpoint on its own path.
  if (try_reserve()) {
    MaybeKickCheckpoint();
    return true;
  }
  // Backstop. The structural check above guarantees an op this size fits an empty
  // journal, so a failed reservation is transient pressure from concurrent reservers
  // (or a background checkpoint that has not finished yet). Checkpoint and re-reserve
  // *while still holding the volume lock*: re-checking only on the next loop iteration
  // would let rival threads refill the reservation budget first and starve this op
  // (observed as spurious NoSpace under an 8-thread tag storm once the tag path got
  // fast enough). The retry bound covers reservations that slip in between our
  // checkpoint and re-check.
  for (int attempt = 0; attempt < 8; attempt++) {
    std::unique_lock<std::shared_mutex> vlock(volume_mu_);
    HFAD_RETURN_IF_ERROR(CheckpointLocked());
    if (try_reserve()) {
      return true;
    }
  }
  return Status::NoSpace("journal cannot accommodate op of " +
                         std::to_string(record_bytes) + " bytes even after checkpoint");
}

Status Osd::PersistUnappliedForeign() {
  UnappliedForeignFn provider;
  {
    std::lock_guard<std::mutex> lock(foreign_mu_);
    provider = unapplied_foreign_;
  }
  if (!provider) {
    // No layer defers application — or it has not mounted yet, in which case the tree
    // still holds the last accurate snapshot and must not be cleared.
    return Status::Ok();
  }
  std::vector<std::string> payloads = provider();
  uint64_t root = 0;
  auto raw = named_roots_->Get(kPendingForeignRoot);
  if (raw.ok()) {
    if (raw->size() != 8) {
      return Status::Corruption("bad pending-foreign root entry");
    }
    root = DecodeFixed64(reinterpret_cast<const uint8_t*>(raw->data()));
  } else if (!raw.status().IsNotFound()) {
    return raw.status();
  }
  if (payloads.empty() && root == 0) {
    return Status::Ok();  // Nothing pending and nothing persisted: zero overhead.
  }
  btree::BTree tree(pager_.get(), allocator_.get(), root);
  HFAD_RETURN_IF_ERROR(tree.Clear());
  for (size_t i = 0; i < payloads.size(); i++) {
    // Big-endian index keys keep journal order under the btree's byte order.
    HFAD_RETURN_IF_ERROR(tree.Put(OidKey(i), payloads[i]));
  }
  if (tree.root() != root) {
    std::string value(8, '\0');
    EncodeFixed64(reinterpret_cast<uint8_t*>(value.data()), tree.root());
    HFAD_RETURN_IF_ERROR(named_roots_->Put(kPendingForeignRoot, value));
  }
  return Status::Ok();
}

Status Osd::CheckpointLocked() {
  metrics::ScopedLatency latency(metrics::Hist::kCheckpoint);
  trace::SpanScope span("checkpoint");
  // Callers hold volume_mu_ exclusively (or are single-threaded construction paths).
  // Persist the unapplied foreign set FIRST: the rewritten btree pages are dirty by the
  // time the epilogue below collects page images, so the snapshot commits (or not)
  // atomically with this checkpoint — the journal reset at the end can then never
  // orphan an acknowledged-but-unapplied intent.
  HFAD_RETURN_IF_ERROR(PersistUnappliedForeign());
  if (options_.journaling) {
    HFAD_RETURN_IF_ERROR(journal_->Commit());
  }

  std::string alloc_snap = allocator_->Serialize();
  if (alloc_snap.size() > sb_.alloc_area_size) {
    return Status::Internal("allocator snapshot (" + std::to_string(alloc_snap.size()) +
                            " bytes) exceeds the snapshot area");
  }

  if (options_.journaling) {
    // Epilogue: journal every dirty page image, the allocator snapshot, and the commit
    // record; one group commit makes the checkpoint redo-able.
    std::vector<std::pair<uint64_t, std::string>> dirty;
    pager_->CollectDirty(&dirty);
    for (const auto& [off, image] : dirty) {
      std::string rec;
      rec.push_back(static_cast<char>(kRtPageImage));
      PutFixed64(&rec, off);
      rec.append(image);
      HFAD_RETURN_IF_ERROR(journal_->Append(rec).status());
    }
    std::string snap_rec;
    snap_rec.push_back(static_cast<char>(kRtAllocSnapshot));
    snap_rec.append(alloc_snap);
    HFAD_RETURN_IF_ERROR(journal_->Append(snap_rec).status());
    std::string commit_rec;
    commit_rec.push_back(static_cast<char>(kRtCheckpointCommit));
    PutFixed64(&commit_rec, object_table_->root());
    PutFixed64(&commit_rec, named_roots_->root());
    PutFixed64(&commit_rec, next_oid_.load());
    HFAD_RETURN_IF_ERROR(journal_->Append(commit_rec).status());
    HFAD_RETURN_IF_ERROR(journal_->Commit());
  }

  // In-place phase: now redo-able from the journal if we crash. A persistent IO
  // failure here means durability can no longer be promised — the volume goes
  // read-only (reads and Finds keep serving off the intact last checkpoint).
  Status in_place = [&]() -> Status {
    HFAD_RETURN_IF_ERROR(pager_->Flush());
    if (checksums_ != nullptr) {
      // Write the snapshot padded to whole pages and stamp them, so the alloc
      // area is under scrub/verify coverage like any heap page.
      std::string padded = alloc_snap;
      padded.resize((padded.size() + kPageSize - 1) / kPageSize * kPageSize, '\0');
      HFAD_RETURN_IF_ERROR(options_.retry.RunWithRetry(
          [&] { return device_->Write(sb_.alloc_area_offset, Slice(padded)); }));
      for (uint64_t off = 0; off < padded.size(); off += kPageSize) {
        checksums_->Stamp(sb_.alloc_area_offset + off, Slice(padded.data() + off, kPageSize));
      }
    } else {
      HFAD_RETURN_IF_ERROR(options_.retry.RunWithRetry(
          [&] { return device_->Write(sb_.alloc_area_offset, Slice(alloc_snap)); }));
    }
    sb_.alloc_snapshot_size = alloc_snap.size();
    sb_.object_table_root = object_table_->root();
    sb_.index_dir_root = named_roots_->root();
    sb_.next_oid = next_oid_.load();
    if (checksums_ != nullptr) {
      // Drop entries for heap pages the allocator no longer considers live: a
      // post-checkpoint raw write whose record never committed leaves device
      // bytes under a stale CRC, but its extent shows as free after recovery —
      // so free pages must carry no entry in the persisted table.
      ReconcileChecksumsWithAllocator();
      // Region before superblock: a crash in between leaves the superblock
      // holding the old generation, so the new region is dropped at Open —
      // never trusted half-written.
      sb_.cksum_generation++;
      std::string table = checksums_->Serialize(sb_.cksum_generation);
      HFAD_RETURN_IF_ERROR(options_.retry.RunWithRetry(
          [&] { return device_->Write(sb_.cksum_offset, Slice(table)); }));
    }
    HFAD_RETURN_IF_ERROR(options_.retry.RunWithRetry(
        [&] { return device_->Write(0, sb_.Encode()); }));
    return options_.retry.RunWithRetry([&] { return device_->Sync(); });
  }();
  if (!in_place.ok()) {
    if (in_place.IsIoError()) {
      health_.Escalate(HealthState::kReadOnly,
                       "checkpoint in-place phase failed: " + in_place.ToString());
    }
    return in_place;
  }

  if (options_.journaling) {
    HFAD_RETURN_IF_ERROR(journal_->Reset());
  }
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    epilogue_reserved_ = 0;
  }
  // The checkpoint succeeded: everything applied to this volume before the quiesce is
  // durable. Tell the registered listener (OsdCluster retention trimming) last, still
  // under the exclusive volume lock, so nothing can apply-and-mark between the page
  // flush above and the notification.
  std::function<void()> callback;
  {
    std::lock_guard<std::mutex> lock(foreign_mu_);
    callback = checkpoint_callback_;
  }
  if (callback) {
    callback();
  }
  return Status::Ok();
}

Status Osd::Checkpoint() {
  // A read-only or failed volume cannot promise durability: reporting success
  // here would let a cluster trim replicated intents a dead shard still needs.
  // (Close() bypasses this gate via CheckpointLocked and surfaces the raw IO
  // error if the device really cannot take the final flush.)
  HFAD_RETURN_IF_ERROR(CheckWritable());
  std::unique_lock<std::shared_mutex> vlock(volume_mu_);
  return CheckpointLocked();
}

Status Osd::Sync() {
  HFAD_RETURN_IF_ERROR(CheckWritable());
  if (!options_.journaling) {
    return Checkpoint();
  }
  // No journal_mu_: Commit is the journal's leader/follower protocol, and holding the
  // append lock across an fsync is exactly what group commit exists to avoid.
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  return journal_->Commit();
}

Status Osd::AppendForeign(Slice payload) {
  HFAD_RETURN_IF_ERROR(CheckWritable());
  if (!options_.journaling) {
    return Status::Ok();  // No journal: higher layers get checkpoint durability only.
  }
  if (in_recovery_) {
    return Status::Ok();  // Replay must not re-journal.
  }
  std::string rec;
  rec.push_back(static_cast<char>(kRtForeign));
  rec.append(payload.data(), payload.size());
  uint64_t reserved = 0;
  HFAD_ASSIGN_OR_RETURN(bool fits, EnsureJournalSpace(rec.size(), &reserved));
  if (!fits) {
    return Status::InvalidArgument("foreign record too large for the journal");
  }
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  return JournalRecord(rec, reserved);
}

Status Osd::AppendForeign(Slice payload, const std::function<void()>& with_lock) {
  HFAD_RETURN_IF_ERROR(CheckWritable());
  if (!options_.journaling) {
    // No record to write, but the callback still needs the volume lock so its effect
    // is atomic against a checkpoint's unapplied-foreign snapshot.
    std::shared_lock<std::shared_mutex> vlock(volume_mu_);
    if (with_lock) {
      with_lock();
    }
    return Status::Ok();
  }
  if (in_recovery_) {
    return Status::Ok();  // Replay must not re-journal; recovery seeds the layer itself.
  }
  std::string rec;
  rec.push_back(static_cast<char>(kRtForeign));
  rec.append(payload.data(), payload.size());
  uint64_t reserved = 0;
  HFAD_ASSIGN_OR_RETURN(bool fits, EnsureJournalSpace(rec.size(), &reserved));
  if (!fits) {
    return Status::InvalidArgument("foreign record too large for the journal");
  }
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  HFAD_RETURN_IF_ERROR(JournalRecord(rec, reserved));
  if (with_lock) {
    with_lock();
  }
  return Status::Ok();
}

void Osd::SetUnappliedForeignProvider(UnappliedForeignFn fn) {
  std::lock_guard<std::mutex> lock(foreign_mu_);
  unapplied_foreign_ = std::move(fn);
}

void Osd::SetCheckpointCallback(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(foreign_mu_);
  checkpoint_callback_ = std::move(fn);
}

void Osd::RequestCheckpoint() {
  if (!checkpoint_thread_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    if (ckpt_requested_ || ckpt_shutdown_) {
      return;
    }
    ckpt_requested_ = true;
    ckpt_state_.store(static_cast<int>(CheckpointerState::kKicked),
                      std::memory_order_relaxed);
  }
  ckpt_cv_.notify_one();
}

// ---------------------------------------------------------------- replay

Status Osd::ReplayRecord(Slice payload, const ForeignReplayFn& replay_foreign) {
  if (payload.empty()) {
    return Status::Corruption("empty journal record");
  }
  uint8_t type = static_cast<uint8_t>(payload[0]);
  Slice in = payload;
  in.RemovePrefix(1);
  switch (type) {
    case kRtCreate: {
      uint64_t oid, now;
      if (!GetVarint64(&in, &oid) || !GetFixed64(&in, &now)) {
        return Status::Corruption("bad create record");
      }
      HFAD_RETURN_IF_ERROR(DoCreate(oid, now).status());
      uint64_t expect = next_oid_.load();
      while (expect <= oid && !next_oid_.compare_exchange_weak(expect, oid + 1)) {
      }
      return Status::Ok();
    }
    case kRtDelete: {
      uint64_t oid;
      if (!GetVarint64(&in, &oid)) {
        return Status::Corruption("bad delete record");
      }
      return DoDelete(oid);
    }
    case kRtWrite:
    case kRtInsert: {
      uint64_t oid, off, now;
      Slice data;
      if (!GetVarint64(&in, &oid) || !GetVarint64(&in, &off) || !GetFixed64(&in, &now) ||
          !GetLengthPrefixed(&in, &data)) {
        return Status::Corruption("bad write/insert record");
      }
      return type == kRtWrite ? DoWrite(oid, off, data, now) : DoInsert(oid, off, data, now);
    }
    case kRtRemoveRange: {
      uint64_t oid, off, len, now;
      if (!GetVarint64(&in, &oid) || !GetVarint64(&in, &off) || !GetVarint64(&in, &len) ||
          !GetFixed64(&in, &now)) {
        return Status::Corruption("bad remove-range record");
      }
      return DoRemoveRange(oid, off, len, now);
    }
    case kRtTruncate: {
      uint64_t oid, size, now;
      if (!GetVarint64(&in, &oid) || !GetVarint64(&in, &size) || !GetFixed64(&in, &now)) {
        return Status::Corruption("bad truncate record");
      }
      return DoTruncate(oid, size, now);
    }
    case kRtSetAttr: {
      uint64_t oid, now;
      uint32_t mode, uid, gid;
      if (!GetVarint64(&in, &oid) || !GetVarint32(&in, &mode) || !GetVarint32(&in, &uid) ||
          !GetVarint32(&in, &gid) || !GetFixed64(&in, &now)) {
        return Status::Corruption("bad setattr record");
      }
      return DoSetAttributes(oid, mode, uid, gid, now);
    }
    case kRtForeign:
      if (replay_foreign == nullptr) {
        return Status::Corruption("foreign journal record but no replay hook");
      }
      return replay_foreign(this, in);
    default:
      return Status::Corruption("unknown journal record type " + std::to_string(type));
  }
}

// ---------------------------------------------------------------- lifecycle ops

Result<ObjectId> Osd::CreateObject() {
  HFAD_RETURN_IF_ERROR(CheckWritable());
  std::string rec_payload;
  uint64_t reserved = 0;
  HFAD_ASSIGN_OR_RETURN(bool fits, EnsureJournalSpace(32, &reserved));
  (void)fits;  // A create record always fits.
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  ObjectId oid = next_oid_.fetch_add(1);
  auto olock = object_mu_.LockExclusive(oid);
  uint64_t now = NowNs();
  if (options_.journaling && !in_recovery_) {
    rec_payload.push_back(static_cast<char>(kRtCreate));
    PutVarint64(&rec_payload, oid);
    PutFixed64(&rec_payload, now);
    HFAD_RETURN_IF_ERROR(JournalRecord(rec_payload, reserved));
  }
  HFAD_RETURN_IF_ERROR(DoCreate(oid, now).status());
  return oid;
}

Result<ObjectId> Osd::CreateObjectAt(ObjectId oid) {
  HFAD_RETURN_IF_ERROR(CheckWritable());
  std::string rec_payload;
  uint64_t reserved = 0;
  HFAD_ASSIGN_OR_RETURN(bool fits, EnsureJournalSpace(32, &reserved));
  (void)fits;  // A create record always fits.
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  // Advance the counter past the chosen id (same CAS loop as replay) so a later
  // CreateObject() on this volume can never collide with it.
  uint64_t expect = next_oid_.load();
  while (expect <= oid && !next_oid_.compare_exchange_weak(expect, oid + 1)) {
  }
  auto olock = object_mu_.LockExclusive(oid);
  uint64_t now = NowNs();
  if (options_.journaling && !in_recovery_) {
    rec_payload.push_back(static_cast<char>(kRtCreate));
    PutVarint64(&rec_payload, oid);
    PutFixed64(&rec_payload, now);
    HFAD_RETURN_IF_ERROR(JournalRecord(rec_payload, reserved));
  }
  HFAD_RETURN_IF_ERROR(DoCreate(oid, now).status());
  return oid;
}

Result<ObjectId> Osd::DoCreate(ObjectId oid, uint64_t now_ns) {
  std::string key = OidKey(oid);
  ObjectRecord rec;
  rec.meta.atime_ns = rec.meta.mtime_ns = rec.meta.ctime_ns = now_ns;
  // Fresh oids come off the monotonic next_oid_ counter and replayed creates always
  // postdate the last checkpoint (the journal resets there), so the key is new; Put's
  // inserted flag is a cheaper uniqueness check than a separate Contains descent.
  bool inserted = false;
  HFAD_RETURN_IF_ERROR(object_table_->Put(key, EncodeRecord(rec), &inserted));
  if (!inserted) {
    return Status::AlreadyExists("object " + std::to_string(oid) + " already exists");
  }
  return oid;
}

Status Osd::DeleteObject(ObjectId oid) {
  HFAD_RETURN_IF_ERROR(CheckWritable());
  uint64_t reserved = 0;
  HFAD_ASSIGN_OR_RETURN(bool fits, EnsureJournalSpace(32, &reserved));
  (void)fits;
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  auto olock = object_mu_.LockExclusive(oid);
  if (options_.journaling && !in_recovery_) {
    if (!object_table_->Contains(OidKey(oid))) {
      return Status::NotFound("no object " + std::to_string(oid));
    }
    std::string rec;
    rec.push_back(static_cast<char>(kRtDelete));
    PutVarint64(&rec, oid);
    HFAD_RETURN_IF_ERROR(JournalRecord(rec, reserved));
  }
  return DoDelete(oid);
}

Status Osd::DoDelete(ObjectId oid) {
  std::string key = OidKey(oid);
  HFAD_ASSIGN_OR_RETURN(std::string raw, object_table_->Get(key));
  HFAD_ASSIGN_OR_RETURN(ObjectRecord rec, DecodeRecord(raw));
  extent::ExtentTree tree(pager_.get(), allocator_.get(), rec.extent_root);
  HFAD_RETURN_IF_ERROR(tree.Clear());
  return object_table_->Delete(key);
}

bool Osd::Exists(ObjectId oid) const {
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  return object_table_->Contains(OidKey(oid));
}

uint64_t Osd::object_count() const {
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  return object_table_->Count();
}

uint64_t Osd::journal_records_appended() const {
  return journal_->next_sequence() - 1;  // Journal sequencing is internally locked.
}

double Osd::journal_occupancy() const {
  return options_.journaling ? journal_->Occupancy() : 0.0;
}

uint64_t Osd::journal_pending_records() const {
  return options_.journaling ? journal_->pending_records() : 0;
}

std::string Osd::DumpMetrics() const {
  metrics::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Value(uint64_t{1});
  w.Key("scope").Value("osd");
  metrics::WriteCountersJson(&w);
  metrics::WriteHistogramsJson(&w);

  w.Key("gauges").BeginObject();
  w.Key("journal_occupancy_pct").Value(journal_occupancy() * 100.0);
  w.Key("journal_pending_records").Value(journal_pending_records());
  w.Key("pager_resident_pages").Value(static_cast<uint64_t>(pager_->cached_pages()));
  w.Key("pager_dirty_pages").Value(static_cast<uint64_t>(pager_->dirty_pages()));
  w.Key("checkpointer_state").Value(static_cast<int64_t>(checkpointer_state()));
  w.Key("object_count").Value(object_count());
  w.Key("heap_allocated_bytes").Value(heap_allocated_bytes());
  w.Key("io_backend").Value(io_engine_ ? io_engine_->backend_name() : "none");
  w.Key("io_submitted").Value(io_engine_ ? io_engine_->submitted() : 0);
  w.Key("io_completed").Value(io_engine_ ? io_engine_->completed() : 0);
  w.Key("io_in_flight").Value(io_engine_ ? io_engine_->in_flight() : 0);
  w.Key("io_max_queue_depth").Value(io_engine_ ? io_engine_->max_queue_depth() : 0);
  w.Key("volume_health").Value(static_cast<int64_t>(health_.state()));
  w.Key("volume_health_name").Value(std::string(HealthStateName(health_.state())));
  w.Key("pager_writeback_error").Value(int64_t{pager_->writeback_error().ok() ? 0 : 1});
  w.Key("checksums_enabled").Value(int64_t{checksums_ ? 1 : 0});
  w.Key("scrub_passes").Value(scrubber_ ? scrubber_->passes() : 0);
  w.Key("quarantined_pages")
      .Value(checksums_ ? static_cast<uint64_t>(checksums_->QuarantinedPages().size()) : 0);
  w.EndObject();

  w.Key("locks").BeginObject();
  WriteLockStatsJson(&w, "object_mutex", object_mu_);
  w.Key("pager_stripes").BeginObject();
  w.Key("total_acquisitions").Value(pager_->stripe_lock_acquisitions());
  w.Key("total_contentions").Value(pager_->stripe_lock_contentions());
  w.Key("top_contended").BeginArray();
  for (const auto& st : pager_->TopContendedStripes(4)) {
    w.BeginObject();
    w.Key("shard").Value(static_cast<uint64_t>(st.stripe));
    w.Key("acquisitions").Value(st.acquisitions);
    w.Key("contentions").Value(st.contentions);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();

  w.EndObject();
  return w.str();
}

Status Osd::ScanObjects(const std::function<bool(ObjectId, const ObjectMeta&)>& fn) const {
  return ScanObjects(0, fn);
}

Status Osd::ScanObjects(ObjectId start,
                        const std::function<bool(ObjectId, const ObjectMeta&)>& fn) const {
  HFAD_RETURN_IF_ERROR(CheckReadable());
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  Status decode_status;
  // Big-endian OID keys make the numeric lower bound a plain key lower bound.
  Status s = object_table_->Scan(start == 0 ? std::string() : OidKey(start), "",
                                 [&](Slice key, Slice value) {
                                   auto rec = DecodeRecord(value);
                                   if (!rec.ok()) {
                                     decode_status = rec.status();
                                     return false;
                                   }
                                   return fn(OidFromKey(key), rec->meta);
                                 });
  HFAD_RETURN_IF_ERROR(decode_status);
  return s;
}

// ---------------------------------------------------------------- metadata ops

Result<ObjectMeta> Osd::Stat(ObjectId oid) const {
  HFAD_RETURN_IF_ERROR(CheckReadable());
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  auto olock = object_mu_.LockShared(oid);
  HFAD_ASSIGN_OR_RETURN(std::string raw, object_table_->Get(OidKey(oid)));
  HFAD_ASSIGN_OR_RETURN(ObjectRecord rec, DecodeRecord(raw));
  return rec.meta;
}

Status Osd::SetAttributes(ObjectId oid, uint32_t mode, uint32_t uid, uint32_t gid) {
  HFAD_RETURN_IF_ERROR(CheckWritable());
  uint64_t reserved = 0;
  HFAD_ASSIGN_OR_RETURN(bool fits, EnsureJournalSpace(32, &reserved));
  (void)fits;
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  auto olock = object_mu_.LockExclusive(oid);
  uint64_t now = NowNs();
  if (options_.journaling && !in_recovery_) {
    if (!object_table_->Contains(OidKey(oid))) {
      return Status::NotFound("no object " + std::to_string(oid));
    }
    std::string rec;
    rec.push_back(static_cast<char>(kRtSetAttr));
    PutVarint64(&rec, oid);
    PutVarint32(&rec, mode);
    PutVarint32(&rec, uid);
    PutVarint32(&rec, gid);
    PutFixed64(&rec, now);
    HFAD_RETURN_IF_ERROR(JournalRecord(rec, reserved));
  }
  return DoSetAttributes(oid, mode, uid, gid, now);
}

Status Osd::DoSetAttributes(ObjectId oid, uint32_t mode, uint32_t uid, uint32_t gid,
                            uint64_t now_ns) {
  std::string key = OidKey(oid);
  HFAD_ASSIGN_OR_RETURN(std::string raw, object_table_->Get(key));
  HFAD_ASSIGN_OR_RETURN(ObjectRecord rec, DecodeRecord(raw));
  rec.meta.mode = mode;
  rec.meta.uid = uid;
  rec.meta.gid = gid;
  rec.meta.ctime_ns = now_ns;
  return object_table_->Put(key, EncodeRecord(rec));
}

// ---------------------------------------------------------------- byte access

Status Osd::Read(ObjectId oid, uint64_t offset, size_t n, std::string* out) const {
  HFAD_RETURN_IF_ERROR(CheckReadable());
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  // Plain reads hold the object shard shared; atime maintenance mutates the record,
  // so it needs the exclusive hold.
  std::shared_lock<std::shared_mutex> oshared;
  std::unique_lock<std::shared_mutex> oexcl;
  if (options_.update_atime) {
    oexcl = object_mu_.LockExclusive(oid);
  } else {
    oshared = object_mu_.LockShared(oid);
  }
  std::string key = OidKey(oid);
  HFAD_ASSIGN_OR_RETURN(std::string raw, object_table_->Get(key));
  HFAD_ASSIGN_OR_RETURN(ObjectRecord rec, DecodeRecord(raw));
  extent::ExtentTree tree(pager_.get(), allocator_.get(), rec.extent_root);
  HFAD_RETURN_IF_ERROR(tree.Read(offset, n, out));
  if (options_.update_atime) {
    rec.meta.atime_ns = NowNs();
    // atime is restored only to checkpoint granularity after a crash (like relatime);
    // it is deliberately not journaled.
    HFAD_RETURN_IF_ERROR(object_table_->Put(key, EncodeRecord(rec)));
  }
  return Status::Ok();
}

namespace {

// Data-op journal payload: type, oid, offset, mtime, data.
std::string EncodeDataRecord(uint8_t type, ObjectId oid, uint64_t offset, uint64_t now,
                             Slice data) {
  std::string rec;
  rec.push_back(static_cast<char>(type));
  PutVarint64(&rec, oid);
  PutVarint64(&rec, offset);
  PutFixed64(&rec, now);
  PutLengthPrefixed(&rec, data);
  return rec;
}

}  // namespace

Status Osd::Write(ObjectId oid, uint64_t offset, Slice data) {
  HFAD_RETURN_IF_ERROR(CheckWritable());
  uint64_t reserved = 0;
  HFAD_ASSIGN_OR_RETURN(bool fits, EnsureJournalSpace(data.size() + 64, &reserved));
  if (!fits) {
    // Op too large to journal: apply under an exclusive lock and checkpoint immediately,
    // so no later journal record can depend on unjournaled state.
    std::unique_lock<std::shared_mutex> vlock(volume_mu_);
    HFAD_RETURN_IF_ERROR(DoWrite(oid, offset, data, NowNs()));
    return CheckpointLocked();
  }
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  auto olock = object_mu_.LockExclusive(oid);
  uint64_t now = NowNs();
  if (options_.journaling && !in_recovery_) {
    HFAD_ASSIGN_OR_RETURN(uint64_t size, LockedSize(oid));
    if (offset > size) {
      return Status::OutOfRange("write at " + std::to_string(offset) + " past end " +
                                std::to_string(size));
    }
    // Overwrites clobber live payload bytes in place (raw IO, not no-steal cached), so
    // the redo record must be durable first.
    bool overwrite = offset < size;
    HFAD_RETURN_IF_ERROR(JournalRecord(EncodeDataRecord(kRtWrite, oid, offset, now, data),
                                       reserved, overwrite));
  }
  return DoWrite(oid, offset, data, now);
}

Status Osd::Insert(ObjectId oid, uint64_t offset, Slice data) {
  HFAD_RETURN_IF_ERROR(CheckWritable());
  uint64_t reserved = 0;
  HFAD_ASSIGN_OR_RETURN(bool fits, EnsureJournalSpace(data.size() + 64, &reserved));
  if (!fits) {
    std::unique_lock<std::shared_mutex> vlock(volume_mu_);
    HFAD_RETURN_IF_ERROR(DoInsert(oid, offset, data, NowNs()));
    return CheckpointLocked();
  }
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  auto olock = object_mu_.LockExclusive(oid);
  uint64_t now = NowNs();
  if (options_.journaling && !in_recovery_) {
    HFAD_ASSIGN_OR_RETURN(uint64_t size, LockedSize(oid));
    if (offset > size) {
      return Status::OutOfRange("insert at " + std::to_string(offset) + " past end " +
                                std::to_string(size));
    }
    HFAD_RETURN_IF_ERROR(
        JournalRecord(EncodeDataRecord(kRtInsert, oid, offset, now, data), reserved));
  }
  return DoInsert(oid, offset, data, now);
}

Status Osd::RemoveRange(ObjectId oid, uint64_t offset, uint64_t length) {
  HFAD_RETURN_IF_ERROR(CheckWritable());
  uint64_t reserved = 0;
  HFAD_ASSIGN_OR_RETURN(bool fits, EnsureJournalSpace(64, &reserved));
  (void)fits;
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  auto olock = object_mu_.LockExclusive(oid);
  uint64_t now = NowNs();
  if (options_.journaling && !in_recovery_) {
    HFAD_ASSIGN_OR_RETURN(uint64_t size, LockedSize(oid));
    if (offset + length > size) {
      return Status::OutOfRange("remove range past end of object");
    }
    std::string rec;
    rec.push_back(static_cast<char>(kRtRemoveRange));
    PutVarint64(&rec, oid);
    PutVarint64(&rec, offset);
    PutVarint64(&rec, length);
    PutFixed64(&rec, now);
    HFAD_RETURN_IF_ERROR(JournalRecord(rec, reserved));
  }
  return DoRemoveRange(oid, offset, length, now);
}

Status Osd::Truncate(ObjectId oid, uint64_t new_size) {
  HFAD_RETURN_IF_ERROR(CheckWritable());
  uint64_t reserved = 0;
  HFAD_ASSIGN_OR_RETURN(bool fits, EnsureJournalSpace(64, &reserved));
  (void)fits;
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  auto olock = object_mu_.LockExclusive(oid);
  uint64_t now = NowNs();
  if (options_.journaling && !in_recovery_) {
    HFAD_RETURN_IF_ERROR(LockedSize(oid).status());  // Object must exist.
    std::string rec;
    rec.push_back(static_cast<char>(kRtTruncate));
    PutVarint64(&rec, oid);
    PutVarint64(&rec, new_size);
    PutFixed64(&rec, now);
    HFAD_RETURN_IF_ERROR(JournalRecord(rec, reserved));
  }
  return DoTruncate(oid, new_size, now);
}

Result<uint64_t> Osd::Size(ObjectId oid) const {
  HFAD_RETURN_IF_ERROR(CheckReadable());
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  auto olock = object_mu_.LockShared(oid);
  HFAD_ASSIGN_OR_RETURN(std::string raw, object_table_->Get(OidKey(oid)));
  HFAD_ASSIGN_OR_RETURN(ObjectRecord rec, DecodeRecord(raw));
  return rec.meta.size;
}

// Shared read-modify-write on an object's extent tree + record.
namespace {

template <typename Fn>
Status MutateObject(btree::BTree* table, Pager* pager, BuddyAllocator* alloc, ObjectId oid,
                    uint64_t now_ns, const Fn& fn) {
  std::string key = OidKey(oid);
  auto raw = table->Get(key);
  if (!raw.ok()) {
    return raw.status();
  }
  auto rec = DecodeRecord(*raw);
  if (!rec.ok()) {
    return rec.status();
  }
  extent::ExtentTree tree(pager, alloc, rec->extent_root);
  HFAD_RETURN_IF_ERROR(fn(&tree));
  rec->extent_root = tree.root();
  rec->meta.size = tree.Size();
  rec->meta.mtime_ns = now_ns;
  return table->Put(key, EncodeRecord(*rec));
}

}  // namespace

Status Osd::DoWrite(ObjectId oid, uint64_t offset, Slice data, uint64_t now_ns) {
  return MutateObject(object_table_.get(), pager_.get(), allocator_.get(), oid, now_ns,
                      [&](extent::ExtentTree* tree) { return tree->Write(offset, data); });
}

Status Osd::DoInsert(ObjectId oid, uint64_t offset, Slice data, uint64_t now_ns) {
  return MutateObject(object_table_.get(), pager_.get(), allocator_.get(), oid, now_ns,
                      [&](extent::ExtentTree* tree) { return tree->Insert(offset, data); });
}

Status Osd::DoRemoveRange(ObjectId oid, uint64_t offset, uint64_t length, uint64_t now_ns) {
  return MutateObject(
      object_table_.get(), pager_.get(), allocator_.get(), oid, now_ns,
      [&](extent::ExtentTree* tree) { return tree->RemoveRange(offset, length); });
}

Status Osd::DoTruncate(ObjectId oid, uint64_t new_size, uint64_t now_ns) {
  return MutateObject(object_table_.get(), pager_.get(), allocator_.get(), oid, now_ns,
                      [&](extent::ExtentTree* tree) -> Status {
                        uint64_t size = tree->Size();
                        if (new_size < size) {
                          return tree->RemoveRange(new_size, size - new_size);
                        }
                        if (new_size > size) {
                          std::string zeros(new_size - size, '\0');
                          return tree->Write(size, zeros);
                        }
                        return Status::Ok();
                      });
}

Status Osd::CheckObject(ObjectId oid) const {
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  auto olock = object_mu_.LockShared(oid);
  HFAD_ASSIGN_OR_RETURN(std::string raw, object_table_->Get(OidKey(oid)));
  HFAD_ASSIGN_OR_RETURN(ObjectRecord rec, DecodeRecord(raw));
  extent::ExtentTree tree(pager_.get(), allocator_.get(), rec.extent_root);
  HFAD_RETURN_IF_ERROR(tree.CheckInvariants());
  if (tree.Size() != rec.meta.size) {
    return Status::Corruption("object " + std::to_string(oid) + " records size " +
                              std::to_string(rec.meta.size) + " but extent tree holds " +
                              std::to_string(tree.Size()));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------- named roots

Result<uint64_t> Osd::GetNamedRoot(const std::string& name) const {
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  auto raw = named_roots_->Get(name);
  if (raw.status().IsNotFound()) {
    return uint64_t{0};
  }
  HFAD_RETURN_IF_ERROR(raw.status());
  if (raw->size() != 8) {
    return Status::Corruption("bad named-root entry for " + name);
  }
  return DecodeFixed64(reinterpret_cast<const uint8_t*>(raw->data()));
}

Status Osd::SetNamedRoot(const std::string& name, uint64_t root) {
  std::shared_lock<std::shared_mutex> vlock(volume_mu_);
  std::string value(8, '\0');
  EncodeFixed64(reinterpret_cast<uint8_t*>(value.data()), root);
  return named_roots_->Put(name, value);
}

}  // namespace osd
}  // namespace hfad
