// Online scrub: walk every checksummed page of the volume against live traffic,
// verify device content against the per-page CRC table, and repair or quarantine
// what mismatches.
//
// Repair never copies page bytes itself — that would race content mutators
// (btree writers own their pages' content locks, which the scrubber cannot
// take). Instead, when a corrupt device page still has a cached copy, the
// scrubber marks that page dirty: the next checkpoint rewrites the device from
// the cache under full exclusion and restamps the CRC. Under the no-steal
// discipline a cached clean page IS the last checkpoint's content, so this
// restores exactly the bytes the journal expects to replay onto. A corrupt page
// with no cached copy has no clean source (the device copy was the only one);
// it is quarantined — every subsequent read fails loudly with Corruption until
// a rewrite restamps it — and reported through fsck.
//
// Pacing: each batch of pages holds the pager's shared mutation hold per page
// (flush_mu_ shared -> stripe lock, the established order; see
// docs/CONCURRENCY.md), then sleeps, so a background pass bounds its drag on
// checkpoints and foreground IO.
#ifndef HFAD_SRC_OSD_SCRUBBER_H_
#define HFAD_SRC_OSD_SCRUBBER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "src/common/retry.h"
#include "src/common/status.h"
#include "src/storage/block_device.h"
#include "src/storage/checksums.h"
#include "src/storage/pager.h"
#include "src/storage/volume_health.h"

namespace hfad {
namespace osd {

struct ScrubReport {
  uint64_t pages_scanned = 0;      // Checksummed pages read and verified.
  uint64_t errors_found = 0;       // CRC mismatches confirmed by a second read.
  uint64_t pages_repaired = 0;     // Re-dirtied from a cached copy (rewritten by
                                   // the next checkpoint).
  uint64_t pages_quarantined = 0;  // No clean source; reads now fail loudly.
  uint64_t io_errors = 0;          // Device reads that failed past the retry policy.
};

class Scrubber {
 public:
  struct Options {
    uint64_t device_size = 0;
    uint64_t interval_ms = 0;        // 0: no background thread.
    size_t pages_per_batch = 256;    // Pages verified between pacing sleeps.
    uint64_t pause_us = 500;         // Sleep between batches.
    RetryPolicy retry;               // For the device reads.
  };

  Scrubber(BlockDevice* device, Pager* pager, PageChecksums* checksums,
           VolumeHealth* health, Options options);
  ~Scrubber();  // Stops the background thread.

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  // Called after a pass that repaired pages, outside all scrubber locks. The
  // OSD wires this to RequestCheckpoint so repairs reach the device promptly.
  void SetRepairKick(std::function<void()> kick);

  // Start the background thread (no-op when interval_ms == 0).
  void Start();
  // Stop and join the background thread. Idempotent.
  void Stop();

  // One full synchronous pass, unpaced. Safe concurrently with live traffic
  // and with the background thread (passes are serialized by pass_mu_).
  Status ScrubPass(ScrubReport* report);

  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }
  ScrubReport last_report() const;

 private:
  Status RunPass(ScrubReport* report, bool paced);
  // Verify one page; counts into *report. Never fails the pass — read faults
  // and corruption are recorded, escalated, and the walk continues.
  void ScrubPage(uint64_t offset, ScrubReport* report);
  void BackgroundMain();

  BlockDevice* const device_;
  Pager* const pager_;
  PageChecksums* const checksums_;
  VolumeHealth* const health_;
  const Options options_;

  std::function<void()> repair_kick_;

  std::mutex pass_mu_;  // Serializes passes (manual vs. background).
  std::atomic<uint64_t> passes_{0};
  mutable std::mutex report_mu_;
  ScrubReport last_report_;

  std::thread thread_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_shutdown_ = false;
  bool bg_started_ = false;
};

}  // namespace osd
}  // namespace hfad

#endif  // HFAD_SRC_OSD_SCRUBBER_H_
