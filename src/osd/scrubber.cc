#include "src/osd/scrubber.h"

#include <chrono>
#include <string>
#include <utility>

#include "src/common/stats.h"

namespace hfad {
namespace osd {

Scrubber::Scrubber(BlockDevice* device, Pager* pager, PageChecksums* checksums,
                   VolumeHealth* health, Options options)
    : device_(device),
      pager_(pager),
      checksums_(checksums),
      health_(health),
      options_(std::move(options)) {}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::SetRepairKick(std::function<void()> kick) {
  std::lock_guard<std::mutex> lock(pass_mu_);
  repair_kick_ = std::move(kick);
}

void Scrubber::Start() {
  if (options_.interval_ms == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(bg_mu_);
  if (bg_started_) {
    return;
  }
  bg_started_ = true;
  bg_shutdown_ = false;
  thread_ = std::thread([this] { BackgroundMain(); });
}

void Scrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (!bg_started_) {
      return;
    }
    bg_shutdown_ = true;
  }
  bg_cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  std::lock_guard<std::mutex> lock(bg_mu_);
  bg_started_ = false;
}

Status Scrubber::ScrubPass(ScrubReport* report) { return RunPass(report, /*paced=*/false); }

Status Scrubber::RunPass(ScrubReport* report, bool paced) {
  ScrubReport local;
  bool repaired_any = false;
  std::function<void()> kick;
  {
    std::lock_guard<std::mutex> lock(pass_mu_);
    kick = repair_kick_;
    size_t in_batch = 0;
    for (uint64_t offset = 0; offset + kPageSize <= options_.device_size;
         offset += kPageSize) {
      if (!health_->readable()) {
        break;  // Volume failed underneath us; nothing left to protect.
      }
      if (paced) {
        std::lock_guard<std::mutex> bg(bg_mu_);
        if (bg_shutdown_) {
          break;
        }
      }
      if (!checksums_->HasChecksum(offset)) {
        continue;  // Unstamped or quarantined: nothing to verify.
      }
      ScrubPage(offset, &local);
      if (paced && ++in_batch >= options_.pages_per_batch) {
        in_batch = 0;
        if (options_.pause_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(options_.pause_us));
        }
      }
    }
    repaired_any = local.pages_repaired > 0;
    passes_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    last_report_ = local;
  }
  if (report != nullptr) {
    *report = local;
  }
  if (repaired_any && kick) {
    kick();  // Outside pass_mu_: the kick may wake a checkpoint synchronously.
  }
  return Status::Ok();
}

void Scrubber::ScrubPage(uint64_t offset, ScrubReport* report) {
  // flush_mu_ shared for the whole page: a concurrent Flush cannot be mid-way
  // between writing new content and stamping its CRC while we read the device.
  auto hold = pager_->SharedMutationHold();
  std::string buf;
  Status rs = options_.retry.RunWithRetry(
      [&] { return device_->Read(offset, kPageSize, &buf); });
  if (!rs.ok()) {
    report->io_errors++;
    if (options_.retry.IsTransient(rs)) {
      health_->Escalate(HealthState::kDegraded,
                        "scrub: persistent read failure at " + std::to_string(offset));
    }
    return;
  }
  report->pages_scanned++;
  stats::Add(stats::Counter::kScrubPagesScanned);
  if (checksums_->Verify(offset, Slice(buf)).ok()) {
    return;
  }
  // Confirm with a second read before acting: a transient controller misread
  // must not quarantine a healthy page.
  std::string again;
  Status rs2 = options_.retry.RunWithRetry(
      [&] { return device_->Read(offset, kPageSize, &again); });
  if (rs2.ok() && checksums_->Verify(offset, Slice(again)).ok()) {
    return;
  }
  report->errors_found++;
  stats::Add(stats::Counter::kScrubErrorsFound);
  if (PageRef page = pager_->Peek(offset)) {
    // A cached copy exists: under no-steal it is the last checkpoint's content
    // (or newer, if dirty). Re-dirty it so the next checkpoint rewrites the
    // device from the cache and restamps — no content bytes are read here, so
    // this cannot race the structure that owns the page.
    page->MarkDirty();
    report->pages_repaired++;
    stats::Add(stats::Counter::kScrubPagesRepaired);
    health_->Escalate(HealthState::kDegraded,
                      "scrub: corrupt device page at " + std::to_string(offset) +
                          " (repairing from cache)");
    return;
  }
  checksums_->Quarantine(offset);
  report->pages_quarantined++;
  stats::Add(stats::Counter::kScrubPagesQuarantined);
  health_->Escalate(HealthState::kDegraded,
                    "scrub: unrepairable corrupt page at " + std::to_string(offset));
}

void Scrubber::BackgroundMain() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(bg_mu_);
      bg_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                      [&] { return bg_shutdown_; });
      if (bg_shutdown_) {
        return;
      }
    }
    RunPass(nullptr, /*paced=*/true);
  }
}

}  // namespace osd
}  // namespace hfad
