#include "src/osd/osd_cluster.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/coding.h"
#include "src/osd/scrubber.h"

namespace hfad {
namespace osd {

// ---------------------------------------------------------------- construction

Result<std::unique_ptr<OsdCluster>> OsdCluster::Create(
    std::vector<std::shared_ptr<BlockDevice>> devices, const OsdOptions& options) {
  if (devices.empty()) {
    return Status::InvalidArgument("cluster needs at least one device");
  }
  std::unique_ptr<OsdCluster> cluster(new OsdCluster());
  const size_t n = devices.size();
  cluster->n_ = n;
  cluster->journaling_ = options.journaling;
  cluster->retained_.resize(n);
  cluster->provider_installed_.assign(n, false);
  for (size_t k = 0; k < n; k++) {
    HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Osd> osd,
                          Osd::Create(std::move(devices[k]), options));
    cluster->osds_.push_back(std::move(osd));
  }
  if (n > 1) {
    OsdCluster* raw = cluster.get();
    for (size_t k = 0; k < n; k++) {
      // Stamp and checkpoint each shard so a crash right after Create still leaves an
      // openable, correctly-identified cluster. Single-shard volumes are deliberately
      // not stamped: they stay byte-compatible with pre-cluster volumes.
      const uint64_t stamp = (static_cast<uint64_t>(n) << 32) | (k + 1);
      HFAD_RETURN_IF_ERROR(cluster->osds_[k]->SetNamedRoot(kShardStampRoot, stamp));
      HFAD_RETURN_IF_ERROR(cluster->osds_[k]->Checkpoint());
      cluster->InstallShardProvider(k, cluster->osds_[k].get());
    }
    cluster->osds_[0]->SetCheckpointCallback([raw] { raw->TrimRetained(); });
  }
  return cluster;
}

Result<std::unique_ptr<OsdCluster>> OsdCluster::Open(
    std::vector<std::shared_ptr<BlockDevice>> devices, const OsdOptions& options,
    ForeignReplayFn replay_foreign) {
  if (devices.empty()) {
    return Status::InvalidArgument("cluster needs at least one device");
  }
  std::unique_ptr<OsdCluster> cluster(new OsdCluster());
  const size_t n = devices.size();
  cluster->n_ = n;
  cluster->journaling_ = options.journaling;
  cluster->hook_ = std::move(replay_foreign);
  cluster->retained_.resize(n);
  cluster->provider_installed_.assign(n, false);
  OsdCluster* raw = cluster.get();
  // Shards open in index order. The coordinator of any batch is its minimum
  // participant index, so a batch's verdict (commit record present or not) is always
  // established before a higher shard's prepare record replays.
  for (size_t k = 0; k < n; k++) {
    auto opened = Osd::Open(std::move(devices[k]), options,
                            [raw, k](Osd* volume, Slice payload) {
                              return raw->ReplayShardRecord(k, volume, payload);
                            });
    raw->opening_ = nullptr;
    HFAD_RETURN_IF_ERROR(opened.status());
    cluster->osds_.push_back(std::move(opened).value());
    // Coordinator-side prepares whose commit never appeared in this shard's stream:
    // the commit was never durable, so the batch is uncommitted — discard.
    cluster->open_deferred_.clear();
    HFAD_ASSIGN_OR_RETURN(uint64_t stamp,
                          cluster->osds_[k]->GetNamedRoot(kShardStampRoot));
    if (n == 1) {
      if (stamp != 0) {
        return Status::InvalidArgument(
            "volume is shard " + std::to_string((stamp & 0xffffffffu) - 1) + " of a " +
            std::to_string(stamp >> 32) + "-shard cluster; open it with all its devices");
      }
    } else {
      const uint64_t want = (static_cast<uint64_t>(n) << 32) | (k + 1);
      if (stamp != want) {
        return Status::InvalidArgument("device " + std::to_string(k) +
                                       " is not shard " + std::to_string(k) + " of a " +
                                       std::to_string(n) + "-shard cluster");
      }
      if (!cluster->provider_installed_[k]) {
        cluster->InstallShardProvider(k, cluster->osds_[k].get());
      }
    }
  }
  uint64_t next = 1;
  for (const auto& osd : cluster->osds_) {
    next = std::max(next, osd->next_object_id());
  }
  cluster->next_oid_.store(next);
  cluster->next_batch_id_.store(cluster->max_batch_id_seen_ + 1);
  if (n > 1) {
    cluster->osds_[0]->SetCheckpointCallback([raw] { raw->TrimRetained(); });
  }
  return cluster;
}

OsdCluster::~OsdCluster() { (void)Close(); }

Status OsdCluster::Close() {
  // Metadata shard first: its checkpoint makes every cross-shard effect durable and
  // trims the retention lists, so the data shards then close with (near-)empty pending
  // sets. Every shard is closed even if an earlier one fails.
  Status first;
  for (auto& osd : osds_) {
    Status s = osd->Close();
    if (first.ok() && !s.ok()) {
      first = s;
    }
  }
  return first;
}

// ---------------------------------------------------------------- object ops

Result<ObjectId> OsdCluster::CreateObject() {
  if (n_ == 1) {
    return osds_[0]->CreateObject();
  }
  const ObjectId oid = next_oid_.fetch_add(1);
  return osds_[ShardOf(oid)]->CreateObjectAt(oid);
}

uint64_t OsdCluster::object_count() const {
  uint64_t total = 0;
  for (const auto& osd : osds_) {
    total += osd->object_count();
  }
  return total;
}

Status OsdCluster::ScanObjects(
    ObjectId start, const std::function<bool(ObjectId, const ObjectMeta&)>& fn) const {
  if (n_ == 1) {
    return osds_[0]->ScanObjects(start, fn);
  }
  // K-way merge over per-shard ordered scans. Each head is fetched with a one-item
  // seek, so a capped consumer (cursor pagination) costs O(page * shards * log n)
  // instead of a full sweep.
  struct Head {
    bool valid = false;
    ObjectId oid = 0;
    ObjectMeta meta;
  };
  std::vector<Head> heads(n_);
  auto refill = [&](size_t k, ObjectId from) -> Status {
    heads[k].valid = false;
    return osds_[k]->ScanObjects(from, [&](ObjectId oid, const ObjectMeta& meta) {
      heads[k].valid = true;
      heads[k].oid = oid;
      heads[k].meta = meta;
      return false;
    });
  };
  for (size_t k = 0; k < n_; k++) {
    HFAD_RETURN_IF_ERROR(refill(k, start));
  }
  for (;;) {
    size_t best = n_;
    for (size_t k = 0; k < n_; k++) {
      if (heads[k].valid && (best == n_ || heads[k].oid < heads[best].oid)) {
        best = k;
      }
    }
    if (best == n_) {
      return Status::Ok();
    }
    if (!fn(heads[best].oid, heads[best].meta)) {
      return Status::Ok();
    }
    if (heads[best].oid == std::numeric_limits<ObjectId>::max()) {
      heads[best].valid = false;
      continue;
    }
    HFAD_RETURN_IF_ERROR(refill(best, heads[best].oid + 1));
  }
}

// ---------------------------------------------------------------- durability

Status OsdCluster::Sync() {
  // Attempt every shard even after a failure: a degraded shard must not starve
  // the healthy ones of durability. First error wins the return value.
  Status first;
  for (auto& osd : osds_) {
    Status s = osd->Sync();
    if (first.ok() && !s.ok()) {
      first = s;
    }
  }
  return first;
}

Status OsdCluster::Checkpoint() {
  // Index order puts the metadata shard first; see Close() for why that matters.
  // As with Sync, an unhealthy shard does not block the others' checkpoints.
  Status first;
  for (auto& osd : osds_) {
    Status s = osd->Checkpoint();
    if (first.ok() && !s.ok()) {
      first = s;
    }
  }
  return first;
}

// ---------------------------------------------------------------- health

HealthState OsdCluster::worst_health() const {
  HealthState worst = HealthState::kHealthy;
  for (const auto& osd : osds_) {
    worst = std::max(worst, osd->health_state());
  }
  return worst;
}

Status OsdCluster::ScrubAll(ScrubReport* total) {
  if (total != nullptr) {
    *total = ScrubReport{};
  }
  Status first;
  for (auto& osd : osds_) {
    ScrubReport one;
    Status s = osd->ScrubNow(&one);
    if (first.ok() && !s.ok()) {
      first = s;
    }
    if (total != nullptr) {
      total->pages_scanned += one.pages_scanned;
      total->errors_found += one.errors_found;
      total->pages_repaired += one.pages_repaired;
      total->pages_quarantined += one.pages_quarantined;
      total->io_errors += one.io_errors;
    }
  }
  return first;
}

// ---------------------------------------------------------------- foreign records

Status OsdCluster::AppendForeign(ObjectId oid, Slice payload, uint64_t* token_out) {
  return AppendForeign(oid, payload, nullptr, token_out);
}

Status OsdCluster::AppendForeign(ObjectId oid, Slice payload,
                                 const std::function<void()>& with_lock,
                                 uint64_t* token_out) {
  if (token_out != nullptr) {
    *token_out = 0;
  }
  if (n_ == 1) {
    // Pass-through, bit-for-bit what a bare Osd would journal.
    return osds_[0]->AppendForeign(payload, with_lock);
  }
  const size_t k = ShardOf(oid);
  std::string rec;
  rec.reserve(payload.size() + 1);
  rec.push_back(static_cast<char>(kCfPlain));
  rec.append(payload.data(), payload.size());
  // Records on the metadata shard itself need no retention: record and effects share a
  // checkpoint, the same durability contract as a single volume.
  const bool retain = journaling_ && k != 0;
  const uint64_t token = retain ? next_token_.fetch_add(1) : 0;
  Status s = osds_[k]->AppendForeign(rec, [&] {
    if (retain) {
      Retain(k, rec, token);
    }
    if (with_lock) {
      with_lock();
    }
  });
  HFAD_RETURN_IF_ERROR(s);
  if (token_out != nullptr) {
    *token_out = token;
  }
  return Status::Ok();
}

Result<uint64_t> OsdCluster::CommitForeignBatch(const std::vector<ObjectId>& oids,
                                                Slice payload) {
  if (n_ == 1) {
    return Status::InvalidArgument("cross-shard batch on a single-shard cluster");
  }
  std::vector<size_t> parts;
  parts.reserve(oids.size());
  for (ObjectId oid : oids) {
    parts.push_back(ShardOf(oid));
  }
  std::sort(parts.begin(), parts.end());
  parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
  if (parts.size() < 2) {
    return Status::InvalidArgument("cross-shard batch needs at least two owner shards");
  }
  if (!journaling_) {
    return uint64_t{0};  // Checkpoint durability only, like every other mutation.
  }
  const size_t coord = parts[0];
  const uint64_t batch_id = next_batch_id_.fetch_add(1);
  const uint64_t token = next_token_.fetch_add(1);

  std::string prep;
  prep.reserve(payload.size() + 16);
  prep.push_back(static_cast<char>(kCfPrepare));
  PutFixed64(&prep, batch_id);
  PutVarint64(&prep, coord);
  prep.append(payload.data(), payload.size());
  for (size_t k : parts) {
    Status s = osds_[k]->AppendForeign(prep, [&] { Retain(k, prep, token); });
    if (!s.ok()) {
      // No commit record can exist: recovery discards the orphan prepares, so their
      // retained copies may be dropped as soon as the metadata shard checkpoints.
      MarkForeignApplied(token);
      return s;
    }
  }
  for (size_t k : parts) {
    Status s = osds_[k]->Sync();
    if (!s.ok()) {
      MarkForeignApplied(token);
      return s;
    }
  }

  std::string com;
  com.push_back(static_cast<char>(kCfCommit));
  PutFixed64(&com, batch_id);
  // Point of no return: once the commit append is attempted it may be (partially)
  // durable, so on error the retained records are deliberately NOT marked applied —
  // they stay in every participant's pending set until a recovery resolves the batch
  // one way for all shards.
  HFAD_RETURN_IF_ERROR(osds_[coord]->AppendForeign(com, [&] { Retain(coord, com, token); }));
  // The commit must be durable before the caller applies the ops and releases its
  // locks: recovery's discard rule assumes no later record depends on an uncommitted
  // batch.
  HFAD_RETURN_IF_ERROR(osds_[coord]->Sync());
  return token;
}

void OsdCluster::MarkForeignApplied(uint64_t token) {
  if (token == 0 || n_ == 1) {
    return;
  }
  std::lock_guard<std::mutex> lock(retained_mu_);
  applied_tokens_.insert(token);
}

void OsdCluster::SetUnappliedForeignProvider(UnappliedProviderFn fn) {
  {
    std::lock_guard<std::mutex> lock(provider_mu_);
    higher_provider_ = std::move(fn);
  }
  if (n_ != 1) {
    return;  // Per-shard providers read higher_provider_ at call time.
  }
  // Single shard: mirror the higher layer's provider directly onto the volume,
  // unframed — including during recovery, when the volume has not been handed over yet
  // (the final checkpoint inside Osd::Open persists through this provider).
  Osd* volume = !osds_.empty() ? osds_[0].get() : opening_;
  if (volume == nullptr) {
    return;
  }
  bool has;
  {
    std::lock_guard<std::mutex> lock(provider_mu_);
    has = static_cast<bool>(higher_provider_);
  }
  if (!has) {
    volume->SetUnappliedForeignProvider(nullptr);
    return;
  }
  volume->SetUnappliedForeignProvider([this]() {
    UnappliedProviderFn higher;
    {
      std::lock_guard<std::mutex> lock(provider_mu_);
      higher = higher_provider_;
    }
    return higher ? higher(0) : std::vector<std::string>();
  });
}

size_t OsdCluster::retained_for_testing() const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  size_t total = 0;
  for (const auto& list : retained_) {
    total += list.size();
  }
  return total;
}

// ---------------------------------------------------------------- retention

void OsdCluster::Retain(size_t k, std::string payload, uint64_t token) {
  size_t total = 0;
  {
    std::lock_guard<std::mutex> lock(retained_mu_);
    retained_[k].push_back(Retained{std::move(payload), token});
    for (const auto& list : retained_) {
      total += list.size();
    }
  }
  if (total >= kRetainedKickThreshold && !osds_.empty()) {
    // A metadata-shard checkpoint is what trims the lists; nudge it along. Async kick
    // only — this runs under a data shard's volume lock.
    osds_[0]->RequestCheckpoint();
  }
}

void OsdCluster::RetainReplayed(size_t k, Slice payload) {
  std::lock_guard<std::mutex> lock(retained_mu_);
  const uint64_t token = next_token_.fetch_add(1);
  retained_[k].push_back(Retained{payload.ToString(), token});
  // Replayed records are applied to metadata state as part of recovery itself, so the
  // next metadata-shard checkpoint may drop them.
  applied_tokens_.insert(token);
}

void OsdCluster::TrimRetained() {
  std::lock_guard<std::mutex> lock(retained_mu_);
  if (applied_tokens_.empty()) {
    return;
  }
  for (auto& list : retained_) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const Retained& r) {
                                return applied_tokens_.count(r.token) != 0;
                              }),
               list.end());
  }
  // Every entry of every marked token was just swept (all shards, one critical
  // section), so the marks have no further referents.
  applied_tokens_.clear();
}

// ---------------------------------------------------------------- recovery

void OsdCluster::InstallShardProvider(size_t k, Osd* volume) {
  provider_installed_[k] = true;
  volume->SetUnappliedForeignProvider([this, k]() {
    std::vector<std::string> out;
    {
      std::lock_guard<std::mutex> lock(retained_mu_);
      out.reserve(retained_[k].size());
      for (const Retained& r : retained_[k]) {
        out.push_back(r.payload);
      }
    }
    UnappliedProviderFn higher;
    {
      std::lock_guard<std::mutex> lock(provider_mu_);
      higher = higher_provider_;
    }
    if (higher) {
      std::vector<std::string> payloads = higher(k);
      for (std::string& p : payloads) {
        std::string rec;
        rec.reserve(p.size() + 1);
        rec.push_back(static_cast<char>(kCfPlain));
        rec.append(p);
        out.push_back(std::move(rec));
      }
    }
    return out;
  });
}

Status OsdCluster::ReplayShardRecord(size_t k, Osd* volume, Slice payload) {
  opening_ = volume;
  if (n_ == 1) {
    if (!hook_) {
      return Status::Corruption("foreign journal record but no replay hook");
    }
    return hook_(volume, volume, this, 0, false, payload);
  }
  // Install the shard's provider before any record applies: Osd::Open ends with a
  // checkpoint that resets the journal, and by then the retention list must be what
  // carries these records forward.
  if (!provider_installed_[k]) {
    InstallShardProvider(k, volume);
  }
  if (payload.empty()) {
    return Status::Corruption("empty cluster record");
  }
  const uint8_t kind = static_cast<uint8_t>(payload[0]);
  Slice in = payload;
  in.RemovePrefix(1);
  switch (kind) {
    case kCfPlain: {
      if (!hook_) {
        return Status::Corruption("cluster record but no replay hook");
      }
      HFAD_RETURN_IF_ERROR(hook_(MetaForReplay(k, volume), volume, this, k, false, in));
      if (k != 0) {
        RetainReplayed(k, payload);
      }
      return Status::Ok();
    }
    case kCfPrepare: {
      uint64_t batch_id = 0, coord = 0;
      if (!GetFixed64(&in, &batch_id) || !GetVarint64(&in, &coord)) {
        return Status::Corruption("bad cluster prepare record");
      }
      max_batch_id_seen_ = std::max(max_batch_id_seen_, batch_id);
      if (coord == k) {
        // Our own commit record, if it exists, is later in this same stream.
        open_deferred_.push_back(
            DeferredPrepare{batch_id, payload.ToString(), in.ToString()});
        return Status::Ok();
      }
      if (committed_.count(batch_id) == 0) {
        // The coordinator (a lower shard, already recovered) has no commit record:
        // the batch never committed. Discard.
        return Status::Ok();
      }
      if (!hook_) {
        return Status::Corruption("cluster record but no replay hook");
      }
      HFAD_RETURN_IF_ERROR(hook_(MetaForReplay(k, volume), volume, this, k, true, in));
      RetainReplayed(k, payload);
      return Status::Ok();
    }
    case kCfCommit: {
      uint64_t batch_id = 0;
      if (!GetFixed64(&in, &batch_id)) {
        return Status::Corruption("bad cluster commit record");
      }
      max_batch_id_seen_ = std::max(max_batch_id_seen_, batch_id);
      committed_.insert(batch_id);
      for (auto it = open_deferred_.begin(); it != open_deferred_.end();) {
        if (it->batch_id == batch_id) {
          if (!hook_) {
            return Status::Corruption("cluster record but no replay hook");
          }
          HFAD_RETURN_IF_ERROR(
              hook_(MetaForReplay(k, volume), volume, this, k, true, Slice(it->inner)));
          RetainReplayed(k, it->framed);
          it = open_deferred_.erase(it);
        } else {
          ++it;
        }
      }
      RetainReplayed(k, payload);
      return Status::Ok();
    }
    default:
      return Status::Corruption("unknown cluster record kind " + std::to_string(kind));
  }
}

}  // namespace osd
}  // namespace hfad
