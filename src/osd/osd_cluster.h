// Multi-volume sharded object store: N independent Osd volumes behind one object-id
// space (ROADMAP item 1 — the scale-out lever).
//
// Placement: object ids come off one cluster-wide monotonic counter and are placed by a
// Fibonacci hash of the id, so every volume keeps its own journal, pager, allocator, and
// background checkpointer — per-shard group commit instead of one global fsync queue.
// Single-object ops route straight through to the owning volume with no cluster-level
// locks on the hot path.
//
// Shard 0 is the *metadata shard*: the FileSystem layer keeps its named roots, index
// stores, reverse maps, and full-text state there, exactly as on a single volume. A
// shard_count of 1 is a total pass-through — byte-compatible with volumes created before
// clustering existed (no record framing, no stamps).
//
// Cross-shard atomicity (NamespaceBatch spanning owners) is a prepare/commit journal
// record pair inside the existing foreign-record envelope — no new OSD record types on
// disk:
//
//   prepare  [kCfPrepare][fixed64 batch_id][varint coordinator][full inner payload]
//            appended to EVERY participant shard's journal, then group-committed;
//   commit   [kCfCommit][fixed64 batch_id]
//            appended to the coordinator (the minimum participant shard index) and made
//            durable BEFORE the caller applies the ops or releases its locks.
//
// Recovery opens shards in index order (coordinator <= every participant, so a batch's
// verdict is always known before any participant's prepare replays) and resolves
// in-doubt batches by the coordinator's commit record: present => redo the prepare's
// owned slice on every shard, absent => discard everywhere. Discarding is safe because
// commit durability precedes lock release — no later record can depend on an
// uncommitted batch.
//
// Retention: a record journaled on shard k has its namespace effects on shard 0's
// state, so shard k's checkpoint (which resets shard k's journal) must not be the last
// copy until a shard-0 checkpoint has captured those effects. The cluster keeps each
// such record in an in-memory retention list that rides shard k's unapplied-foreign
// provider (persisted into the shard's pending-foreign set by its checkpoints) and is
// trimmed by the metadata shard's checkpoint callback once the applying layer has
// marked the record applied (MarkForeignApplied). Replay is idempotent, so an entry
// persisted one checkpoint longer than necessary is harmless.
#ifndef HFAD_SRC_OSD_OSD_CLUSTER_H_
#define HFAD_SRC_OSD_OSD_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/osd/osd.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace osd {

class OsdCluster {
 public:
  // Replay hook for higher-layer records. `meta` is the metadata shard (== `volume`
  // while shard 0 itself is being opened), `volume` the shard whose journal the record
  // came from (object content reads go here), `shard` its index. When
  // `filter_to_shard` is set the payload is a cross-shard batch being redone on one
  // participant: the hook must apply only the ops whose owner is `shard`.
  using ForeignReplayFn =
      std::function<Status(Osd* meta, Osd* volume, OsdCluster* cluster, size_t shard,
                           bool filter_to_shard, Slice payload)>;

  // Per-shard unapplied-payload provider for the higher layer (the lazy tag indexer's
  // queued intents, filtered to the shard whose checkpoint is asking).
  using UnappliedProviderFn = std::function<std::vector<std::string>(size_t shard)>;

  // Format one fresh volume per device. More than one device stamps each volume with
  // (shard_count, shard_index) so Open can reject reordered or mixed device sets.
  static Result<std::unique_ptr<OsdCluster>> Create(
      std::vector<std::shared_ptr<BlockDevice>> devices, const OsdOptions& options);

  // Open existing volumes, running per-shard crash recovery in shard order and
  // resolving in-doubt cross-shard batches (see file comment).
  static Result<std::unique_ptr<OsdCluster>> Open(
      std::vector<std::shared_ptr<BlockDevice>> devices, const OsdOptions& options,
      ForeignReplayFn replay_foreign = nullptr);

  ~OsdCluster();

  OsdCluster(const OsdCluster&) = delete;
  OsdCluster& operator=(const OsdCluster&) = delete;

  // ---- Topology ----

  size_t shard_count() const { return n_; }

  // Owning shard of an object id. Stable across versions: it is on-disk placement.
  size_t ShardOf(ObjectId oid) const {
    if (n_ == 1) {
      return 0;
    }
    return static_cast<size_t>((oid * 0x9E3779B97F4A7C15ull) >> 32) % n_;
  }

  // The metadata shard: named roots, index heap, reverse maps live here.
  Osd* meta() { return osds_[0].get(); }
  const Osd* meta() const { return osds_[0].get(); }
  Osd* shard(size_t k) { return osds_[k].get(); }
  const Osd* shard(size_t k) const { return osds_[k].get(); }
  Osd* owner(ObjectId oid) { return osds_[ShardOf(oid)].get(); }
  const Osd* owner(ObjectId oid) const { return osds_[ShardOf(oid)].get(); }

  bool journaling_enabled() const { return osds_[0]->journaling_enabled(); }

  // ---- Object lifecycle and data ops (routed to the owner, no cluster locks) ----

  Result<ObjectId> CreateObject();
  Status DeleteObject(ObjectId oid) { return owner(oid)->DeleteObject(oid); }
  bool Exists(ObjectId oid) const { return owner(oid)->Exists(oid); }
  Result<ObjectMeta> Stat(ObjectId oid) const { return owner(oid)->Stat(oid); }
  Status SetAttributes(ObjectId oid, uint32_t mode, uint32_t uid, uint32_t gid) {
    return owner(oid)->SetAttributes(oid, mode, uid, gid);
  }
  Status Read(ObjectId oid, uint64_t offset, size_t n, std::string* out) const {
    return owner(oid)->Read(oid, offset, n, out);
  }
  Status Write(ObjectId oid, uint64_t offset, Slice data) {
    return owner(oid)->Write(oid, offset, data);
  }
  Status Insert(ObjectId oid, uint64_t offset, Slice data) {
    return owner(oid)->Insert(oid, offset, data);
  }
  Status RemoveRange(ObjectId oid, uint64_t offset, uint64_t length) {
    return owner(oid)->RemoveRange(oid, offset, length);
  }
  Status Truncate(ObjectId oid, uint64_t new_size) {
    return owner(oid)->Truncate(oid, new_size);
  }
  Result<uint64_t> Size(ObjectId oid) const { return owner(oid)->Size(oid); }
  Status CheckObject(ObjectId oid) const { return owner(oid)->CheckObject(oid); }

  // Live objects across every shard.
  uint64_t object_count() const;

  // Visit objects with oid >= start across all shards, merged into global oid order.
  Status ScanObjects(ObjectId start,
                     const std::function<bool(ObjectId, const ObjectMeta&)>& fn) const;
  Status ScanObjects(const std::function<bool(ObjectId, const ObjectMeta&)>& fn) const {
    return ScanObjects(0, fn);
  }

  // ---- Durability (fan-out) ----

  Status Sync();

  // Checkpoints the metadata shard first (so its callback trims the retention lists),
  // then every data shard.
  Status Checkpoint();

  Status Close();

  // ---- Higher-layer journaling ----
  //
  // All namespace records for object X go through the journal of X's owner: per-object
  // record order stays within one journal, and content-indexing replay reads X's bytes
  // from the volume being recovered. Records journaled off the metadata shard are
  // retained (see file comment); `token_out` receives a handle the caller passes to
  // MarkForeignApplied once the record's effects are applied to metadata-shard state
  // (0 = nothing retained). `with_lock` runs under the owning shard's volume lock,
  // exactly like Osd::AppendForeign.

  Status AppendForeign(ObjectId oid, Slice payload, uint64_t* token_out = nullptr);
  Status AppendForeign(ObjectId oid, Slice payload,
                       const std::function<void()>& with_lock,
                       uint64_t* token_out = nullptr);

  // Two-phase commit of one payload spanning multiple owner shards (`oids` are the
  // batch's members; at least two distinct owners). On return the batch is durably
  // committed on every participant: prepares group-committed everywhere, then the
  // coordinator's commit record synced — all before the caller applies the ops. The
  // returned token covers every prepare and the commit record.
  Result<uint64_t> CommitForeignBatch(const std::vector<ObjectId>& oids, Slice payload);

  // The record(s) behind `token` have been fully applied to metadata-shard state; the
  // next metadata-shard checkpoint may drop their retained copies. No-op for token 0.
  void MarkForeignApplied(uint64_t token);

  // Install (or clear) the higher layer's per-shard unapplied-payload provider. Each
  // shard's checkpoint snapshot is the retention list plus this provider's payloads
  // for that shard.
  void SetUnappliedForeignProvider(UnappliedProviderFn fn);

  // Retention-list size across shards (test support).
  size_t retained_for_testing() const;

  // ---- Fault-domain health ----
  //
  // Health is per shard: every routed op already hits the owning volume's own
  // gate, so a failed shard fails exactly its objects while the others keep
  // serving. A cross-shard batch with a read-only participant aborts at that
  // participant's prepare append, before any commit record exists.

  HealthState shard_health(size_t k) const { return osds_[k]->health_state(); }

  // Worst health across shards — the cluster-level degradation gauge.
  HealthState worst_health() const;

  // One synchronous scrub pass per shard, reports summed. Shards without
  // checksums contribute empty reports.
  Status ScrubAll(ScrubReport* total);

 private:
  OsdCluster() = default;

  // Cluster record framing inside the Osd foreign-record envelope (multi-shard only;
  // a single-shard cluster writes the higher layer's payload bytes unchanged).
  static constexpr uint8_t kCfPlain = 1;
  static constexpr uint8_t kCfPrepare = 2;
  static constexpr uint8_t kCfCommit = 3;

  // Stamp named root recording (shard_count << 32) | (shard_index + 1) on every
  // multi-shard volume.
  static constexpr char kShardStampRoot[] = "osd/cluster-shard";

  struct Retained {
    std::string payload;  // Framed exactly as journaled; round-trips through replay.
    uint64_t token;
  };

  struct DeferredPrepare {
    uint64_t batch_id;
    std::string framed;  // Full framed prepare record.
    std::string inner;   // Payload after the prepare header.
  };

  // Per-shard Osd::Open replay adapter body: unframe, resolve 2PC, forward to hook_.
  Status ReplayShardRecord(size_t k, Osd* volume, Slice payload);

  // Install shard k's unapplied-foreign provider (retention list + higher layer).
  void InstallShardProvider(size_t k, Osd* volume);

  void Retain(size_t k, std::string payload, uint64_t token);
  // Retain a record re-applied during recovery: immediately clearable by the next
  // metadata-shard checkpoint (its effects are in metadata state already).
  void RetainReplayed(size_t k, Slice payload);
  // Metadata-shard checkpoint callback: drop every retained entry whose token has been
  // marked applied (the checkpoint that just completed captured its effects).
  void TrimRetained();

  Osd* MetaForReplay(size_t k, Osd* volume) {
    return k == 0 ? volume : osds_[0].get();
  }

  // Kick the metadata shard's checkpointer once this many records are retained, so the
  // lists stay bounded under sustained off-meta traffic.
  static constexpr size_t kRetainedKickThreshold = 256;

  std::vector<std::unique_ptr<Osd>> osds_;
  size_t n_ = 1;  // Shard count; fixed before any shard opens.
  ForeignReplayFn hook_;
  bool journaling_ = true;

  std::atomic<uint64_t> next_oid_{1};
  std::atomic<uint64_t> next_batch_id_{1};
  std::atomic<uint64_t> next_token_{1};

  // Retention state (leaf lock; taken under shard volume locks and inside the
  // metadata shard's checkpoint callback).
  mutable std::mutex retained_mu_;
  std::vector<std::vector<Retained>> retained_;
  std::unordered_set<uint64_t> applied_tokens_;

  std::mutex provider_mu_;
  UnappliedProviderFn higher_provider_;

  // Open-time state (single-threaded recovery).
  Osd* opening_ = nullptr;              // Shard currently inside Osd::Open.
  std::vector<bool> provider_installed_;
  std::unordered_set<uint64_t> committed_;     // Batch ids with a durable commit.
  std::vector<DeferredPrepare> open_deferred_; // Coordinator-side prepares awaiting
                                               // their commit in the same stream.
  uint64_t max_batch_id_seen_ = 0;
};

}  // namespace osd
}  // namespace hfad

#endif  // HFAD_SRC_OSD_OSD_CLUSTER_H_
