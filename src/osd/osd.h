// The hFAD object-based storage device (§3.3).
//
// The OSD presents uniquely-identified containers of bytes. Each object carries metadata
// (security attributes, access/modification times, size) and is *fully byte-accessible*
// (§3.1.2): beyond POSIX-style read/write, bytes can be inserted into the middle of an
// object and removed from anywhere (the two-off_t truncate). The OSD is comparable to the
// ZFS DMU, except it exposes a flat object space rather than objsets.
//
// One Osd instance owns a complete volume on a BlockDevice:
//
//   [0, 4K)      superblock
//   [4K, +A)     allocator-snapshot area
//   [.., +J)     journal region
//   [heap, end)  buddy-allocated heap: btree pages, extent payloads, postings
//
// Object bookkeeping lives in the *object table*, a btree mapping OID -> object record
// (metadata + extent-tree root). Object data lives in per-object counted extent trees.
//
// Durability ("the OSD may be transactional" — §3.3, made concrete here):
//   * journaling on (default): every mutating op appends one logical redo record; the
//     pager runs no-steal, so on-disk pages always equal the last checkpoint. Checkpoints
//     journal the dirty page images plus a commit record (jbd-style), then write in place.
//     Recovery either redoes a completed checkpoint or replays the logical records.
//   * journaling off: a plain write-back cache; durability only at Checkpoint().
//
// Concurrency: per-object sharded reader/writer locks (common::ShardedMutex) for data
// ops — mutations exclusive, reads shared — plus a global reader/writer lock that lets
// Checkpoint() quiesce the volume. Independent objects never contend on a shared
// ancestor, which is exactly the paper's §2.3 argument. See docs/CONCURRENCY.md for the
// full locking model and ordering rules.
#ifndef HFAD_SRC_OSD_OSD_H_
#define HFAD_SRC_OSD_OSD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>

#include "src/btree/btree.h"
#include "src/common/retry.h"
#include "src/common/sharded_lock.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/io/io_engine.h"
#include "src/journal/journal.h"
#include "src/storage/block_device.h"
#include "src/storage/buddy_allocator.h"
#include "src/storage/checksums.h"
#include "src/storage/pager.h"
#include "src/storage/superblock.h"
#include "src/storage/volume_health.h"

namespace hfad {
namespace osd {

class Scrubber;
struct ScrubReport;

using ObjectId = uint64_t;

// Per-object metadata (§3.3: "security attributes, its last access and modified times,
// and its size"). Size is maintained by the OSD; the rest is caller-settable.
struct ObjectMeta {
  uint32_t mode = 0600;   // POSIX-style permission bits.
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t atime_ns = 0;
  uint64_t mtime_ns = 0;
  uint64_t ctime_ns = 0;
  uint64_t size = 0;      // Maintained by the OSD; ignored on SetAttributes.
};

struct OsdOptions {
  // Append a redo record per mutating op and checkpoint jbd-style (see file comment).
  bool journaling = true;
  // With journaling: defer the journal sync until Sync()/Checkpoint() (group commit).
  // Without group commit every mutating op syncs the journal before returning.
  bool group_commit = true;
  // Page-cache capacity. With journaling the cache can exceed this (no-steal).
  size_t pager_capacity_pages = 4096;
  // Journal region size; 0 = 1/8 of the device clamped to [256 KiB, 64 MiB].
  uint64_t journal_size = 0;
  // Maintain atime on reads (off by default, like mounting noatime).
  bool update_atime = false;
  // Journal occupancy at which the reservation path kicks the background checkpointer,
  // so a checkpoint is usually already done (or in flight) before any op ever sees
  // NoSpace and has to checkpoint synchronously. <= 0 or >= 1 disables the kick.
  double checkpoint_kick_occupancy = 0.7;
  // IoEngine worker threads for this volume. The engine turns the group-commit
  // leader and pager write-back into completion-driven state machines (see
  // src/io/io_engine.h): commits ride Journal::CommitAsync chains and eviction
  // write-back clears dirty bits from completions, so a handful of threads
  // sustains thousands of in-flight commits. 0 disables the engine entirely and
  // restores the fully synchronous pre-engine paths (crash tests sweep both).
  int io_threads = 2;
  // Engine backend selection; kAuto probes io_uring (when built and the device
  // has a native fd) and falls back to the portable thread pool.
  io::IoBackend io_backend = io::IoBackend::kAuto;
  // Maintain per-page CRC32C checksums (fresh volumes only; existing volumes keep
  // whatever their superblock says). Verified on every pager miss and by scrub.
  bool page_checksums = true;
  // Transient-IO retry policy for the pager miss path, journal commit chain, and
  // write-back completions. RetryPolicy::None() disables retry (crash tests that
  // count device writes sweep with it disabled).
  RetryPolicy retry;
  // Background scrub cadence; 0 disables the scrub thread (ScrubNow() still
  // works). Each pass walks every checksummed page of the volume.
  uint64_t scrub_interval_ms = 0;
  // Scrub pacing against live traffic: verify this many pages, then sleep
  // scrub_pause_us before the next batch.
  size_t scrub_pages_per_batch = 256;
  uint64_t scrub_pause_us = 500;
};

class Osd {
 public:
  // Journal replay hook for records appended by higher layers through AppendForeign().
  // Called in journal order, interleaved correctly with the OSD's own records. The Osd*
  // is the volume being opened (not yet returned from Open), so the hook can mount the
  // higher layer's structures on it lazily.
  using ForeignReplayFn = std::function<Status(Osd* volume, Slice payload)>;

  // Format `device` as a fresh volume. The device must be at least ~2 MiB.
  static Result<std::unique_ptr<Osd>> Create(std::shared_ptr<BlockDevice> device,
                                             const OsdOptions& options);

  // Open an existing volume, running crash recovery. `replay_foreign` may be null when no
  // higher layer journals through this OSD.
  static Result<std::unique_ptr<Osd>> Open(std::shared_ptr<BlockDevice> device,
                                           const OsdOptions& options,
                                           ForeignReplayFn replay_foreign = nullptr);

  ~Osd();

  Osd(const Osd&) = delete;
  Osd& operator=(const Osd&) = delete;

  // ---- Object lifecycle ----

  // Allocate a fresh object (empty, metadata defaulted, times set to now).
  Result<ObjectId> CreateObject();

  // Create an object under a caller-chosen id (AlreadyExists when taken) and advance
  // the volume's id counter past it. OsdCluster allocates ids from a cluster-wide
  // counter and places them by hash, so the owning volume cannot pick the id itself.
  Result<ObjectId> CreateObjectAt(ObjectId oid);

  // The next id CreateObject() would hand out. OsdCluster recovers its cluster-wide
  // counter as the max across shards.
  uint64_t next_object_id() const { return next_oid_.load(); }

  // Remove an object and free all its storage.
  Status DeleteObject(ObjectId oid);

  bool Exists(ObjectId oid) const;

  // Whether the volume journals logical records. Higher layers use this to skip
  // encoding records that AppendForeign would discard anyway.
  bool journaling_enabled() const { return options_.journaling; }

  // Number of live objects.
  uint64_t object_count() const;

  // Visit every object in OID order. Stop early by returning false.
  Status ScanObjects(const std::function<bool(ObjectId, const ObjectMeta&)>& fn) const;

  // Seekable form: visit objects with oid >= start, in OID order. Paginated consumers
  // (SearchCursor root enumeration) resume from `after + 1` instead of rescanning the
  // table head on every page.
  Status ScanObjects(ObjectId start,
                     const std::function<bool(ObjectId, const ObjectMeta&)>& fn) const;

  // ---- Metadata ----

  Result<ObjectMeta> Stat(ObjectId oid) const;

  // Update mode/uid/gid (and ctime). Size and times are OSD-maintained.
  Status SetAttributes(ObjectId oid, uint32_t mode, uint32_t uid, uint32_t gid);

  // ---- Byte access (§3.1.2) ----

  // Read up to n bytes at offset; short reads at end of object.
  Status Read(ObjectId oid, uint64_t offset, size_t n, std::string* out) const;

  // Overwrite (POSIX pwrite); writing at the end extends the object.
  Status Write(ObjectId oid, uint64_t offset, Slice data);

  // Insert bytes at offset, shifting the tail up — the hFAD `insert` call.
  Status Insert(ObjectId oid, uint64_t offset, Slice data);

  // Remove `length` bytes at offset, shifting the tail down — the hFAD two-off_t truncate.
  Status RemoveRange(ObjectId oid, uint64_t offset, uint64_t length);

  // POSIX-style truncate: shrink drops the tail, grow zero-fills.
  Status Truncate(ObjectId oid, uint64_t new_size);

  Result<uint64_t> Size(ObjectId oid) const;

  // ---- Durability ----

  // Make every acknowledged op durable (journal commit). No-op without journaling.
  Status Sync();

  // Full checkpoint: journal dirty page images + commit record, write everything in
  // place, persist allocator snapshot and superblock, reset the journal.
  Status Checkpoint();

  // Quiesce the volume: stop the background checkpointer and take a final checkpoint.
  // Idempotent; the destructor calls it when the caller has not. The outcome is kept in
  // last_close_status() and a failure counts into stats (kOsdCloseErrors), so shutdown
  // errors are never silently dropped.
  Status Close();

  // Outcome of the last Close() (Ok before any close).
  Status last_close_status() const;

  // ---- Support for the index layer ----
  //
  // Index stores allocate their own btrees from the volume heap. Their roots are
  // registered under names so reopening the volume can find them.

  Pager* pager() { return pager_.get(); }
  BuddyAllocator* allocator() { return allocator_.get(); }

  // Root registered under `name`, or 0 when absent.
  Result<uint64_t> GetNamedRoot(const std::string& name) const;
  Status SetNamedRoot(const std::string& name, uint64_t root);

  // Journal a higher-layer logical record; replayed via the Open() hook after a crash.
  // A no-op when journaling is off (the higher layer then has checkpoint durability,
  // like every other mutation).
  Status AppendForeign(Slice payload);

  // Journal a higher-layer record and, on success, run `with_lock` while still holding
  // the volume lock the append ran under — the atomic append+enqueue the lazy indexer
  // needs: a checkpoint can never slip between the journal append and the enqueue and
  // miss the intent in both the journal and the unapplied-foreign snapshot. With
  // journaling off no record is written but the callback still runs under the volume
  // lock (same atomicity against the checkpoint's snapshot). `with_lock` must never
  // block on threads that take the volume lock (docs/CONCURRENCY.md).
  Status AppendForeign(Slice payload, const std::function<void()>& with_lock);

  // ---- Deferred application of foreign records (lazy indexing) ----
  //
  // A higher layer that defers applying its journaled records registers a provider
  // returning the payloads still unapplied at the moment of the call. Every checkpoint
  // persists that snapshot into a volume-resident btree (named root
  // "osd/pending-foreign") inside the checkpoint's atomic page-image epilogue, so
  // resetting the journal never orphans an acknowledged-but-unapplied record. Open()
  // feeds the persisted set through `replay_foreign` BEFORE the journal's logical
  // suffix (those records predate everything the journal still holds). A null provider
  // (the default) leaves the persisted set untouched.
  using UnappliedForeignFn = std::function<std::vector<std::string>()>;
  void SetUnappliedForeignProvider(UnappliedForeignFn fn);

  // Invoked at the very end of every successful checkpoint, still under the exclusive
  // volume lock. OsdCluster hangs retention-list trimming off the metadata shard's
  // checkpoints: once this volume's checkpoint has captured the cross-shard effects,
  // the other shards' copies of the corresponding records may be dropped. The callback
  // must not call back into this Osd (the volume lock is held) and must not block.
  void SetCheckpointCallback(std::function<void()> fn);

  // Wake the background checkpointer regardless of journal occupancy (no-op when the
  // thread is not running). OsdCluster uses it to bound retention-list growth.
  void RequestCheckpoint();

  // True while Open() is replaying the journal. Higher layers use this to suppress
  // re-journaling during their own replay.
  bool in_recovery() const { return in_recovery_; }

  // Volume heap statistics (bench support).
  uint64_t heap_allocated_bytes() const { return allocator_->allocated_bytes(); }

  // ---- Observability ----

  // Where the background checkpointer currently is, as a dump-able gauge.
  enum class CheckpointerState : int {
    kDisabled = 0,  // No background thread (journaling off or kick disabled).
    kIdle = 1,      // Thread parked, waiting for a kick.
    kKicked = 2,    // Kick delivered, checkpoint not yet started.
    kRunning = 3,   // Checkpoint in progress.
  };
  CheckpointerState checkpointer_state() const {
    return static_cast<CheckpointerState>(ckpt_state_.load(std::memory_order_relaxed));
  }

  // Journal gauges (0 / empty when journaling is off).
  double journal_occupancy() const;
  uint64_t journal_pending_records() const;

  // This volume's IoEngine (null when io_threads == 0). OsdCluster aggregates the
  // per-shard engines' gauges in FileSystem::DumpMetrics.
  io::IoEngine* io_engine() const { return io_engine_.get(); }

  // One JSON document: process counters + latency histograms + this volume's gauges
  // (journal occupancy, pager residency, checkpointer state) + per-shard lock hot
  // spots. Schema documented in docs/OBSERVABILITY.md.
  std::string DumpMetrics() const;

  // Total journal records ever appended on this volume (monotonic across checkpoints;
  // sequence numbering continues over journal resets). bench_query uses deltas to
  // compare batched vs. per-tag mutation on records written.
  uint64_t journal_records_appended() const;

  // Structural self-check of one object: its extent tree's invariants hold and the
  // recorded size matches the tree. Expensive; used by fsck.
  Status CheckObject(ObjectId oid) const;

  // ---- Fault-domain hardening ----

  // This volume's health state machine. Mutations are rejected with
  // Status::ReadOnly once the state passes kDegraded; nothing is served at
  // kFailed. Escalation is driven by the pager (read faults, checksum
  // mismatches), the checkpoint path (persistent write/sync failures), and
  // the scrubber (quarantines).
  VolumeHealth& health() { return health_; }
  const VolumeHealth& health() const { return health_; }
  HealthState health_state() const { return health_.state(); }

  // Per-page checksum table; null when the volume predates checksums (pre-v3
  // superblock) or was created with page_checksums off.
  PageChecksums* checksums() const { return checksums_.get(); }

  // Run one full synchronous scrub pass (independent of the background
  // thread). Unavailable (Ok, empty report) when checksums are off.
  Status ScrubNow(ScrubReport* report);

  // The scrubber, for gauges (pass count, last report). Null when checksums
  // are off.
  Scrubber* scrubber() const { return scrubber_.get(); }

 private:
  Osd(std::shared_ptr<BlockDevice> device, const OsdOptions& options, Superblock sb);

  // Second-phase construction shared by Create/Open.
  void InitStructures();

  // Background checkpointer (see OsdOptions::checkpoint_kick_occupancy). Started once
  // construction is complete; MaybeKickCheckpoint() wakes it from the reservation path.
  void StartCheckpointThread();
  void StopCheckpointThread();
  void MaybeKickCheckpoint();
  void CheckpointThreadMain();

  // Journal one OSD redo record and release the caller's space reservation. Called with
  // the relevant object lock held, *before* the op is applied (write-ahead). force_sync
  // commits the journal immediately — required before any apply that overwrites live
  // extent payload in place, because payload IO bypasses the no-steal page cache.
  Status JournalRecord(Slice payload, uint64_t reserved, bool force_sync = false);

  // Object size with the object + volume locks already held.
  Result<uint64_t> LockedSize(ObjectId oid) const;

  // Health gates: every mutating entry point rejects with Status::ReadOnly
  // (or IoError at kFailed) before touching any state; reads are rejected only
  // at kFailed. Cheap — one relaxed atomic load on the happy path.
  Status CheckWritable() const;
  Status CheckReadable() const;

  // Drop checksum entries for heap pages the allocator no longer considers
  // live. Called under the exclusive volume lock during checkpoint: an extent
  // freed (or an orphaned post-checkpoint raw write whose record never
  // committed) must not leave a stale entry that a future reallocation-less
  // read could trip over after recovery loads the persisted table.
  void ReconcileChecksumsWithAllocator();

  // Reserve journal space for a record of `record_bytes` plus its share of the checkpoint
  // epilogue, checkpointing first when needed. Returns false when the op is too large to
  // ever journal — the caller must take the exclusive apply-then-checkpoint path.
  Result<bool> EnsureJournalSpace(uint64_t record_bytes, uint64_t* reserved);

  Status CheckpointLocked();

  // Rewrite the pending-foreign btree from the registered provider's snapshot. Called
  // at the top of CheckpointLocked (volume lock exclusive), so the rewritten pages ride
  // the checkpoint's own epilogue. Accesses named_roots_ directly — Get/SetNamedRoot
  // take volume_mu_ shared and would deadlock under the exclusive hold.
  Status PersistUnappliedForeign();

  // Apply one journal record during recovery (type dispatch).
  Status ReplayRecord(Slice payload, const ForeignReplayFn& replay_foreign);

  // Op internals (no journaling, no global lock) shared by public ops and replay.
  Result<ObjectId> DoCreate(ObjectId oid, uint64_t now_ns);
  Status DoDelete(ObjectId oid);
  Status DoWrite(ObjectId oid, uint64_t offset, Slice data, uint64_t now_ns);
  Status DoInsert(ObjectId oid, uint64_t offset, Slice data, uint64_t now_ns);
  Status DoRemoveRange(ObjectId oid, uint64_t offset, uint64_t length, uint64_t now_ns);
  Status DoTruncate(ObjectId oid, uint64_t new_size, uint64_t now_ns);
  Status DoSetAttributes(ObjectId oid, uint32_t mode, uint32_t uid, uint32_t gid,
                         uint64_t now_ns);

  std::shared_ptr<BlockDevice> device_;
  const OsdOptions options_;
  Superblock sb_;

  std::unique_ptr<BuddyAllocator> allocator_;
  std::unique_ptr<PageChecksums> checksums_;  // Null when disabled; see checksums().
  VolumeHealth health_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<journal::Journal> journal_;
  std::unique_ptr<btree::BTree> object_table_;
  std::unique_ptr<btree::BTree> named_roots_;
  std::unique_ptr<Scrubber> scrubber_;  // Null when checksums are off.
  // Declared after everything it serves: destroyed FIRST, so its Shutdown drains
  // every completion callback into still-live journal/pager state.
  std::unique_ptr<io::IoEngine> io_engine_;

  // Ops hold shared; Checkpoint holds exclusive.
  mutable std::shared_mutex volume_mu_;
  // Protects journal appends and the reservation counters below.
  std::mutex journal_mu_;
  // Per-object sharded reader/writer locks: mutations take the object's shard
  // exclusive, pure readers (Read/Stat/Size/CheckObject) take it shared, so
  // independent objects never contend and readers of one object run in parallel.
  static constexpr size_t kObjectShards = 64;
  mutable ShardedMutex<kObjectShards> object_mu_;

  // Journal-space reservations (see EnsureJournalSpace). logical_reserved_ is released
  // when the reserved record is appended; epilogue_reserved_ (space for the dirty page
  // images a pending op may add to the next checkpoint) is released only by a checkpoint.
  uint64_t logical_reserved_ = 0;
  uint64_t epilogue_reserved_ = 0;

  std::atomic<uint64_t> next_oid_{1};
  bool in_recovery_ = false;

  // Unapplied-foreign provider (SetUnappliedForeignProvider). Guarded by foreign_mu_
  // so installation can race checkpoints safely.
  std::mutex foreign_mu_;
  UnappliedForeignFn unapplied_foreign_;
  std::function<void()> checkpoint_callback_;  // Also guarded by foreign_mu_.

  // Background checkpointer state (StartCheckpointThread).
  std::thread checkpoint_thread_;
  std::mutex ckpt_mu_;
  std::condition_variable ckpt_cv_;
  bool ckpt_requested_ = false;
  bool ckpt_shutdown_ = false;
  // CheckpointerState, maintained by MaybeKickCheckpoint/CheckpointThreadMain.
  std::atomic<int> ckpt_state_{0};

  // Close() bookkeeping.
  mutable std::mutex close_mu_;
  bool closed_ = false;
  Status last_close_status_;
};

}  // namespace osd
}  // namespace hfad

#endif  // HFAD_SRC_OSD_OSD_H_
