// POSIX compatibility layer (§3.1.1): "we support POSIX naming as a thin layer atop the
// native API. A naming operation on POSIX path P translates into a lookup on the
// tag/value pair: POSIX/P."
//
// A path is ONE name among many — nothing else about the object is special. That single
// design choice yields the §2 behaviours directly:
//
//   * Lookup is one index probe on the full path, not a component-at-a-time walk through
//     shared ancestor directories (§2.3's four-traversal complaint).
//   * Hard links are just additional POSIX names on the same object (§2.2: "a data item
//     may have many names, all equally useful").
//   * Directories are ordinary objects whose "contents" are a prefix range scan over the
//     POSIX index — there is no directory data structure to contend on.
//
// The trade-off is also honest: renaming a directory rewrites the paths of everything
// under it (full-path keys), which bench_naming_flex measures.
//
// In the paper's prototype this layer is mounted through Linux/FUSE; FUSE only marshals
// VFS calls into user space, so this in-process library is the identical code path minus
// kernel round trips (see DESIGN.md substitutions).
#ifndef HFAD_SRC_POSIX_POSIX_FS_H_
#define HFAD_SRC_POSIX_POSIX_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/filesystem.h"

namespace hfad {
namespace posix {

using core::ObjectId;

// Open flags (a subset of fcntl.h semantics, renamed to avoid macro collisions).
enum OpenFlags : int {
  kRead = 1 << 0,
  kWrite = 1 << 1,
  kCreate = 1 << 2,   // Create if absent (needs kWrite).
  kExclusive = 1 << 3,  // With kCreate: fail if the path exists.
  kTruncate = 1 << 4,   // Truncate to zero on open.
  kAppend = 1 << 5,     // All writes go to end-of-file.
};

// Directory bit for ObjectMeta::mode (matches S_IFDIR).
constexpr uint32_t kModeDir = 0040000;

struct DirEntry {
  std::string name;  // Final component, not the full path.
  ObjectId oid = 0;
  bool is_dir = false;
};

struct StatResult {
  osd::ObjectMeta meta;
  bool is_dir = false;
  uint64_t nlink = 1;  // Number of POSIX names on the object.
};

class PosixFs {
 public:
  using Fd = int;

  // Mounts the POSIX namespace on an hFAD file system; creates "/" if absent. The
  // FileSystem must outlive the PosixFs.
  static Result<std::unique_ptr<PosixFs>> Mount(core::FileSystem* fs);

  PosixFs(const PosixFs&) = delete;
  PosixFs& operator=(const PosixFs&) = delete;

  // ---- handles ----

  Result<Fd> Open(const std::string& path, int flags, uint32_t mode = 0644);
  Status Close(Fd fd);

  // Positional IO (pread/pwrite semantics; does not move the file offset).
  Result<size_t> Pread(Fd fd, uint64_t offset, size_t n, std::string* out) const;
  Result<size_t> Pwrite(Fd fd, uint64_t offset, Slice data);

  // Sequential IO through the handle's file offset.
  Result<size_t> Read(Fd fd, size_t n, std::string* out);
  Result<size_t> Write(Fd fd, Slice data);
  Result<uint64_t> Seek(Fd fd, uint64_t offset);

  // hFAD extensions on handles (§3.1.2): insert and two-off_t truncate.
  Status InsertAt(Fd fd, uint64_t offset, Slice data);
  Status RemoveRange(Fd fd, uint64_t offset, uint64_t length);

  // ---- namespace ----

  Status Mkdir(const std::string& path, uint32_t mode = 0755);
  Status Rmdir(const std::string& path);  // Directory must be empty.
  // Remove one path name. The object is freed only when no names of ANY kind remain —
  // an object still tagged (UDEF/USER/APP) survives losing its last path (§2.2).
  Status Unlink(const std::string& path);
  // Hard link: one more POSIX name on the same object.
  Status Link(const std::string& existing, const std::string& link_path);
  // Rename a file or directory tree. Directory renames rewrite all descendant paths.
  Status Rename(const std::string& from, const std::string& to);
  Result<std::vector<DirEntry>> Readdir(const std::string& path) const;
  Result<StatResult> Stat(const std::string& path) const;
  Status Truncate(const std::string& path, uint64_t new_size);

  // The object behind a path — the bridge from POSIX naming to the native API.
  Result<ObjectId> Resolve(const std::string& path) const;

  Status Sync() { return fs_->Sync(); }

 private:
  explicit PosixFs(core::FileSystem* fs) : fs_(fs) {}

  Result<ObjectId> ResolveNorm(const std::string& path) const;
  Result<bool> IsDirOid(ObjectId oid) const;
  Status RequireParentDir(const std::string& norm_path) const;
  Status AddPathName(ObjectId oid, const std::string& path);
  Status RemovePathName(ObjectId oid, const std::string& path);
  // Number of POSIX names currently on the object.
  Result<uint64_t> LinkCount(ObjectId oid) const;

  core::FileSystem* const fs_;

  struct Handle {
    ObjectId oid = 0;
    int flags = 0;
    uint64_t offset = 0;
  };
  mutable std::mutex handles_mu_;
  std::map<Fd, Handle> handles_;
  Fd next_fd_ = 3;  // Tradition.
};

// Path normalization: requires a leading '/', collapses duplicate slashes, strips any
// trailing slash (except the root itself), and rejects "", ".", ".." components.
Result<std::string> NormalizePath(const std::string& path);

// Parent of a normalized path ("/" for top-level entries; "/" has no parent -> "").
std::string ParentPath(const std::string& norm_path);

// Final component of a normalized path ("" for the root).
std::string Basename(const std::string& norm_path);

}  // namespace posix
}  // namespace hfad

#endif  // HFAD_SRC_POSIX_POSIX_FS_H_
