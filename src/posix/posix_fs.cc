#include "src/posix/posix_fs.h"

#include <algorithm>
#include <utility>

namespace hfad {
namespace posix {

namespace {

const index::IndexStore* PosixStore(const core::FileSystem* fs) {
  return fs->indexes()->store(index::kTagPosix);
}

}  // namespace

// ---------------------------------------------------------------- path helpers

Result<std::string> NormalizePath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: '" + path + "'");
  }
  std::string out;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      i++;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      i++;
    }
    if (i == start) {
      break;
    }
    std::string component = path.substr(start, i - start);
    if (component == "." || component == "..") {
      return Status::InvalidArgument("'.' and '..' are not supported in paths");
    }
    out += "/";
    out += component;
  }
  return out.empty() ? std::string("/") : out;
}

std::string ParentPath(const std::string& norm_path) {
  if (norm_path == "/") {
    return "";
  }
  size_t slash = norm_path.rfind('/');
  return slash == 0 ? std::string("/") : norm_path.substr(0, slash);
}

std::string Basename(const std::string& norm_path) {
  if (norm_path == "/") {
    return "";
  }
  return norm_path.substr(norm_path.rfind('/') + 1);
}

// ---------------------------------------------------------------- mount

Result<std::unique_ptr<PosixFs>> PosixFs::Mount(core::FileSystem* fs) {
  std::unique_ptr<PosixFs> pfs(new PosixFs(fs));
  auto root = pfs->ResolveNorm("/");
  if (root.status().IsNotFound()) {
    HFAD_ASSIGN_OR_RETURN(ObjectId oid, fs->Create({{std::string(index::kTagPosix), "/"}}));
    HFAD_RETURN_IF_ERROR(fs->SetAttributes(oid, kModeDir | 0755, 0, 0));
  } else {
    HFAD_RETURN_IF_ERROR(root.status());
  }
  return pfs;
}

// ---------------------------------------------------------------- resolution

Result<ObjectId> PosixFs::ResolveNorm(const std::string& path) const {
  // THE hFAD path lookup: one probe of one index with the full path as the key. No
  // component walk, no per-directory locks (§2.3).
  HFAD_ASSIGN_OR_RETURN(std::vector<ObjectId> ids, PosixStore(fs_)->Lookup(path));
  if (ids.empty()) {
    return Status::NotFound("no such path: " + path);
  }
  if (ids.size() > 1) {
    return Status::Corruption("path '" + path + "' names " + std::to_string(ids.size()) +
                              " objects");
  }
  return ids[0];
}

Result<ObjectId> PosixFs::Resolve(const std::string& path) const {
  HFAD_ASSIGN_OR_RETURN(std::string norm, NormalizePath(path));
  return ResolveNorm(norm);
}

Result<bool> PosixFs::IsDirOid(ObjectId oid) const {
  HFAD_ASSIGN_OR_RETURN(osd::ObjectMeta meta, fs_->Stat(oid));
  return (meta.mode & kModeDir) != 0;
}

Status PosixFs::RequireParentDir(const std::string& norm_path) const {
  std::string parent = ParentPath(norm_path);
  if (parent.empty()) {
    return Status::InvalidArgument("the root directory cannot be created or removed");
  }
  auto oid = ResolveNorm(parent);
  if (oid.status().IsNotFound()) {
    return Status::NotFound("parent directory does not exist: " + parent);
  }
  HFAD_RETURN_IF_ERROR(oid.status());
  HFAD_ASSIGN_OR_RETURN(bool is_dir, IsDirOid(*oid));
  if (!is_dir) {
    return Status::InvalidArgument("parent is not a directory: " + parent);
  }
  return Status::Ok();
}

Status PosixFs::AddPathName(ObjectId oid, const std::string& path) {
  return fs_->AddTag(oid, {std::string(index::kTagPosix), path});
}

Status PosixFs::RemovePathName(ObjectId oid, const std::string& path) {
  return fs_->RemoveTag(oid, {std::string(index::kTagPosix), path});
}

Result<uint64_t> PosixFs::LinkCount(ObjectId oid) const {
  HFAD_ASSIGN_OR_RETURN(std::vector<core::TagValue> tags, fs_->Tags(oid));
  uint64_t n = 0;
  for (const auto& tv : tags) {
    if (tv.tag == index::kTagPosix) {
      n++;
    }
  }
  return n;
}

// ---------------------------------------------------------------- handles

Result<PosixFs::Fd> PosixFs::Open(const std::string& path, int flags, uint32_t mode) {
  HFAD_ASSIGN_OR_RETURN(std::string norm, NormalizePath(path));
  if ((flags & (kRead | kWrite)) == 0) {
    return Status::InvalidArgument("open needs kRead and/or kWrite");
  }
  auto resolved = ResolveNorm(norm);
  ObjectId oid;
  if (resolved.ok()) {
    if ((flags & kCreate) != 0 && (flags & kExclusive) != 0) {
      return Status::AlreadyExists("path exists: " + norm);
    }
    oid = *resolved;
    HFAD_ASSIGN_OR_RETURN(bool is_dir, IsDirOid(oid));
    if (is_dir) {
      return Status::InvalidArgument("cannot open a directory for IO: " + norm);
    }
    if ((flags & kTruncate) != 0) {
      HFAD_ASSIGN_OR_RETURN(uint64_t size, fs_->Size(oid));
      if (size > 0) {
        HFAD_RETURN_IF_ERROR(fs_->Truncate(oid, 0, size));
      }
    }
  } else if (resolved.status().IsNotFound() && (flags & kCreate) != 0) {
    if ((flags & kWrite) == 0) {
      return Status::InvalidArgument("kCreate requires kWrite");
    }
    HFAD_RETURN_IF_ERROR(RequireParentDir(norm));
    HFAD_ASSIGN_OR_RETURN(oid, fs_->Create({{std::string(index::kTagPosix), norm}}));
    HFAD_RETURN_IF_ERROR(fs_->SetAttributes(oid, mode & ~kModeDir, 0, 0));
  } else {
    return resolved.status();
  }
  std::lock_guard<std::mutex> lock(handles_mu_);
  Fd fd = next_fd_++;
  handles_[fd] = Handle{oid, flags, 0};
  return fd;
}

Status PosixFs::Close(Fd fd) {
  std::lock_guard<std::mutex> lock(handles_mu_);
  return handles_.erase(fd) > 0 ? Status::Ok()
                                : Status::InvalidArgument("bad file descriptor");
}

Result<size_t> PosixFs::Pread(Fd fd, uint64_t offset, size_t n, std::string* out) const {
  Handle h;
  {
    std::lock_guard<std::mutex> lock(handles_mu_);
    auto it = handles_.find(fd);
    if (it == handles_.end()) {
      return Status::InvalidArgument("bad file descriptor");
    }
    h = it->second;
  }
  if ((h.flags & kRead) == 0) {
    return Status::InvalidArgument("descriptor not open for reading");
  }
  // Reading at/after EOF returns 0 bytes, POSIX-style.
  HFAD_ASSIGN_OR_RETURN(uint64_t size, fs_->Size(h.oid));
  if (offset >= size) {
    out->clear();
    return size_t{0};
  }
  HFAD_RETURN_IF_ERROR(fs_->Read(h.oid, offset, n, out));
  return out->size();
}

Result<size_t> PosixFs::Pwrite(Fd fd, uint64_t offset, Slice data) {
  Handle h;
  {
    std::lock_guard<std::mutex> lock(handles_mu_);
    auto it = handles_.find(fd);
    if (it == handles_.end()) {
      return Status::InvalidArgument("bad file descriptor");
    }
    h = it->second;
  }
  if ((h.flags & kWrite) == 0) {
    return Status::InvalidArgument("descriptor not open for writing");
  }
  HFAD_ASSIGN_OR_RETURN(uint64_t size, fs_->Size(h.oid));
  if ((h.flags & kAppend) != 0) {
    offset = size;
  } else if (offset > size) {
    // POSIX allows sparse writes; hFAD has no holes, so zero-fill the gap.
    HFAD_RETURN_IF_ERROR(fs_->Write(h.oid, size, std::string(offset - size, '\0')));
  }
  HFAD_RETURN_IF_ERROR(fs_->Write(h.oid, offset, data));
  return data.size();
}

Result<size_t> PosixFs::Read(Fd fd, size_t n, std::string* out) {
  uint64_t offset;
  {
    std::lock_guard<std::mutex> lock(handles_mu_);
    auto it = handles_.find(fd);
    if (it == handles_.end()) {
      return Status::InvalidArgument("bad file descriptor");
    }
    offset = it->second.offset;
  }
  HFAD_ASSIGN_OR_RETURN(size_t got, Pread(fd, offset, n, out));
  std::lock_guard<std::mutex> lock(handles_mu_);
  auto it = handles_.find(fd);
  if (it != handles_.end()) {
    it->second.offset = offset + got;
  }
  return got;
}

Result<size_t> PosixFs::Write(Fd fd, Slice data) {
  uint64_t offset;
  {
    std::lock_guard<std::mutex> lock(handles_mu_);
    auto it = handles_.find(fd);
    if (it == handles_.end()) {
      return Status::InvalidArgument("bad file descriptor");
    }
    offset = it->second.offset;
  }
  HFAD_ASSIGN_OR_RETURN(size_t put, Pwrite(fd, offset, data));
  std::lock_guard<std::mutex> lock(handles_mu_);
  auto it = handles_.find(fd);
  if (it != handles_.end()) {
    it->second.offset = offset + put;
  }
  return put;
}

Result<uint64_t> PosixFs::Seek(Fd fd, uint64_t offset) {
  std::lock_guard<std::mutex> lock(handles_mu_);
  auto it = handles_.find(fd);
  if (it == handles_.end()) {
    return Status::InvalidArgument("bad file descriptor");
  }
  it->second.offset = offset;
  return offset;
}

Status PosixFs::InsertAt(Fd fd, uint64_t offset, Slice data) {
  std::lock_guard<std::mutex> lock(handles_mu_);
  auto it = handles_.find(fd);
  if (it == handles_.end() || (it->second.flags & kWrite) == 0) {
    return Status::InvalidArgument("bad or read-only file descriptor");
  }
  return fs_->Insert(it->second.oid, offset, data);
}

Status PosixFs::RemoveRange(Fd fd, uint64_t offset, uint64_t length) {
  std::lock_guard<std::mutex> lock(handles_mu_);
  auto it = handles_.find(fd);
  if (it == handles_.end() || (it->second.flags & kWrite) == 0) {
    return Status::InvalidArgument("bad or read-only file descriptor");
  }
  return fs_->Truncate(it->second.oid, offset, length);
}

// ---------------------------------------------------------------- namespace ops

Status PosixFs::Mkdir(const std::string& path, uint32_t mode) {
  HFAD_ASSIGN_OR_RETURN(std::string norm, NormalizePath(path));
  if (norm == "/") {
    return Status::AlreadyExists("/");
  }
  if (ResolveNorm(norm).ok()) {
    return Status::AlreadyExists(norm);
  }
  HFAD_RETURN_IF_ERROR(RequireParentDir(norm));
  HFAD_ASSIGN_OR_RETURN(ObjectId oid, fs_->Create({{std::string(index::kTagPosix), norm}}));
  return fs_->SetAttributes(oid, kModeDir | (mode & 0777), 0, 0);
}

Status PosixFs::Rmdir(const std::string& path) {
  HFAD_ASSIGN_OR_RETURN(std::string norm, NormalizePath(path));
  if (norm == "/") {
    return Status::InvalidArgument("cannot remove the root directory");
  }
  HFAD_ASSIGN_OR_RETURN(ObjectId oid, ResolveNorm(norm));
  HFAD_ASSIGN_OR_RETURN(bool is_dir, IsDirOid(oid));
  if (!is_dir) {
    return Status::InvalidArgument("not a directory: " + norm);
  }
  // Emptiness is an existence probe, not an enumeration: stop at the first descendant.
  // (A prefix Expr through Find would materialize the whole descendant set first.)
  bool has_descendant = false;
  HFAD_RETURN_IF_ERROR(
      PosixStore(fs_)->ScanValues(norm + "/", [&](Slice, ObjectId) {
        has_descendant = true;
        return false;
      }));
  if (has_descendant) {
    return Status::Busy("directory not empty: " + norm);
  }
  return fs_->Remove(oid);
}

Status PosixFs::Unlink(const std::string& path) {
  HFAD_ASSIGN_OR_RETURN(std::string norm, NormalizePath(path));
  HFAD_ASSIGN_OR_RETURN(ObjectId oid, ResolveNorm(norm));
  HFAD_ASSIGN_OR_RETURN(bool is_dir, IsDirOid(oid));
  if (is_dir) {
    return Status::InvalidArgument("is a directory (use Rmdir): " + norm);
  }
  HFAD_RETURN_IF_ERROR(RemovePathName(oid, norm));
  // POSIX frees the inode when its last link goes; hFAD's equivalent is the last *name*
  // of any kind (§2.2: a path is just one name — UDEF/USER/APP tags keep the object
  // alive and reachable even with no paths left).
  HFAD_ASSIGN_OR_RETURN(std::vector<core::TagValue> names, fs_->Tags(oid));
  if (names.empty()) {
    return fs_->Remove(oid);
  }
  return Status::Ok();
}

Status PosixFs::Link(const std::string& existing, const std::string& link_path) {
  HFAD_ASSIGN_OR_RETURN(std::string from, NormalizePath(existing));
  HFAD_ASSIGN_OR_RETURN(std::string to, NormalizePath(link_path));
  HFAD_ASSIGN_OR_RETURN(ObjectId oid, ResolveNorm(from));
  HFAD_ASSIGN_OR_RETURN(bool is_dir, IsDirOid(oid));
  if (is_dir) {
    return Status::InvalidArgument("hard links to directories are not allowed");
  }
  if (ResolveNorm(to).ok()) {
    return Status::AlreadyExists(to);
  }
  HFAD_RETURN_IF_ERROR(RequireParentDir(to));
  // §2.2 in one line: naming is decoupled from access, so a link is just another name.
  return AddPathName(oid, to);
}

Status PosixFs::Rename(const std::string& from, const std::string& to) {
  HFAD_ASSIGN_OR_RETURN(std::string src, NormalizePath(from));
  HFAD_ASSIGN_OR_RETURN(std::string dst, NormalizePath(to));
  if (src == "/" || dst == "/") {
    return Status::InvalidArgument("cannot rename the root directory");
  }
  if (dst == src) {
    return Status::Ok();
  }
  if (dst.size() > src.size() && dst.compare(0, src.size(), src) == 0 &&
      dst[src.size()] == '/') {
    return Status::InvalidArgument("cannot move a directory into itself");
  }
  HFAD_ASSIGN_OR_RETURN(ObjectId oid, ResolveNorm(src));
  if (ResolveNorm(dst).ok()) {
    return Status::AlreadyExists(dst);
  }
  HFAD_RETURN_IF_ERROR(RequireParentDir(dst));
  HFAD_ASSIGN_OR_RETURN(bool is_dir, IsDirOid(oid));

  HFAD_RETURN_IF_ERROR(AddPathName(oid, dst));
  HFAD_RETURN_IF_ERROR(RemovePathName(oid, src));
  if (!is_dir) {
    return Status::Ok();
  }
  // Directory rename: full-path keys mean every descendant must be re-keyed. Collect
  // first (the scan must not race our own mutations), then rewrite.
  std::vector<std::pair<std::string, ObjectId>> descendants;
  std::string prefix = src + "/";
  HFAD_RETURN_IF_ERROR(
      PosixStore(fs_)->ScanValues(prefix, [&](Slice value, ObjectId child) {
        descendants.emplace_back(value.ToString(), child);
        return true;
      }));
  for (const auto& [old_path, child] : descendants) {
    std::string new_path = dst + old_path.substr(src.size());
    HFAD_RETURN_IF_ERROR(AddPathName(child, new_path));
    HFAD_RETURN_IF_ERROR(RemovePathName(child, old_path));
  }
  return Status::Ok();
}

Result<std::vector<DirEntry>> PosixFs::Readdir(const std::string& path) const {
  HFAD_ASSIGN_OR_RETURN(std::string norm, NormalizePath(path));
  HFAD_ASSIGN_OR_RETURN(ObjectId dir_oid, ResolveNorm(norm));
  HFAD_ASSIGN_OR_RETURN(bool is_dir, IsDirOid(dir_oid));
  if (!is_dir) {
    return Status::InvalidArgument("not a directory: " + norm);
  }
  // readdir = a prefix query on the POSIX index through the unified Find path, then
  // each entry's direct-child names reconstructed from its own tags (an object
  // hard-linked twice into this directory lists twice, as before). One plan, one
  // execution: re-planning per page would re-materialize the prefix scan each time.
  std::string prefix = norm == "/" ? "/" : norm + "/";
  auto expr = query::Expr::Prefix(std::string(index::kTagPosix), prefix);
  std::vector<DirEntry> entries;
  HFAD_ASSIGN_OR_RETURN(query::FindPage page, fs_->Find(*expr));
  for (ObjectId oid : page.ids) {
    HFAD_ASSIGN_OR_RETURN(std::vector<core::TagValue> tags, fs_->Tags(oid));
    for (const core::TagValue& tv : tags) {
      if (tv.tag != index::kTagPosix || tv.value.size() <= prefix.size() ||
          tv.value.compare(0, prefix.size(), prefix) != 0) {
        continue;
      }
      Slice rest(tv.value.data() + prefix.size(), tv.value.size() - prefix.size());
      bool direct_child = true;
      for (size_t i = 0; i < rest.size(); i++) {
        if (rest[i] == '/') {
          direct_child = false;  // Deeper descendant.
          break;
        }
      }
      if (direct_child) {
        entries.push_back(DirEntry{rest.ToString(), oid, false});
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  for (DirEntry& e : entries) {
    HFAD_ASSIGN_OR_RETURN(e.is_dir, IsDirOid(e.oid));
  }
  return entries;
}

Result<StatResult> PosixFs::Stat(const std::string& path) const {
  HFAD_ASSIGN_OR_RETURN(std::string norm, NormalizePath(path));
  HFAD_ASSIGN_OR_RETURN(ObjectId oid, ResolveNorm(norm));
  StatResult st;
  HFAD_ASSIGN_OR_RETURN(st.meta, fs_->Stat(oid));
  st.is_dir = (st.meta.mode & kModeDir) != 0;
  HFAD_ASSIGN_OR_RETURN(st.nlink, LinkCount(oid));
  return st;
}

Status PosixFs::Truncate(const std::string& path, uint64_t new_size) {
  HFAD_ASSIGN_OR_RETURN(ObjectId oid, Resolve(path));
  HFAD_ASSIGN_OR_RETURN(uint64_t size, fs_->Size(oid));
  if (new_size < size) {
    return fs_->Truncate(oid, new_size, size - new_size);
  }
  if (new_size > size) {
    return fs_->Write(oid, size, std::string(new_size - size, '\0'));
  }
  return Status::Ok();
}

}  // namespace posix
}  // namespace hfad
