// Persistent inverted index with BM25 ranking — hFAD's replacement for Lucene (§3.4).
//
// The index lives in one btree (provided by the caller, typically allocated from the OSD
// heap and registered as a named root). Key space layout, all byte-ordered so related
// entries cluster:
//
//   "P" term '\0' oid(8B BE) -> varint freq, delta-varint positions   (one posting)
//   "D" term                 -> varint document frequency
//   "T" oid(8B BE)           -> per-doc term list (term, freq)*       (for removal)
//   "L" oid(8B BE)           -> varint document length in tokens
//   "S"                      -> varint doc_count, varint total_tokens (corpus stats)
//
// Queries are conjunctive (§3.1.1: results are "the conjunction of the results of an
// index lookup for each element") and ranked by BM25. Indexing can be synchronous or
// handed to the LazyIndexer, which mirrors the paper's "background threads to perform
// lazy full-text indexing" (§3.4).
//
// Thread safety: Search is safe concurrently with indexing; Index/Remove are internally
// serialized (tokenization happens outside the lock).
#ifndef HFAD_SRC_FULLTEXT_FULLTEXT_H_
#define HFAD_SRC_FULLTEXT_FULLTEXT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/btree/btree.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/fulltext/tokenizer.h"

namespace hfad {
namespace fulltext {

struct SearchHit {
  uint64_t docid = 0;
  double score = 0.0;  // BM25; higher is better.
};

// BM25 parameters (standard defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

class FullTextIndex {
 public:
  // The caller owns `tree` and persists its root (e.g. as an OSD named root).
  explicit FullTextIndex(btree::BTree* tree, Bm25Params params = {});

  FullTextIndex(const FullTextIndex&) = delete;
  FullTextIndex& operator=(const FullTextIndex&) = delete;

  // Index (or re-index) a document. Replaces any previous content for docid.
  Status IndexDocument(uint64_t docid, Slice text);

  // Remove a document from the index. NotFound if it was never indexed.
  Status RemoveDocument(uint64_t docid);

  // Conjunctive search: documents containing *every* term, ranked by summed BM25.
  // Terms are normalized (lowercased) first; stopwords and empty terms are rejected as
  // InvalidArgument since they are never indexed. limit == 0 means unlimited.
  Result<std::vector<SearchHit>> Search(const std::vector<std::string>& terms,
                                        size_t limit = 0) const;

  // Documents containing `term`, unranked (index-store building block).
  Result<std::vector<uint64_t>> Postings(const std::string& term) const;

  // Visit the docids containing `term`, ascending, starting at the first docid >=
  // first_docid; stop early by returning false. The seekable-iterator building block:
  // one bounded btree range scan, no posting materialization.
  Status ScanPostingDocs(const std::string& term, uint64_t first_docid,
                         const std::function<bool(uint64_t docid)>& fn) const;

  // BM25-score an externally produced candidate set (the planner's conjunction of the
  // terms) and return hits sorted by descending score (ties by ascending docid),
  // truncated to `limit` when non-zero. Terms must be normalized and non-empty;
  // candidates not containing a term contribute nothing for it.
  Result<std::vector<SearchHit>> ScoreDocuments(const std::vector<std::string>& terms,
                                                const std::vector<uint64_t>& docids,
                                                size_t limit = 0) const;

  // Point probe: does `docid` contain `term`? One btree lookup, no posting scan.
  Result<bool> ContainsPosting(const std::string& term, uint64_t docid) const;

  // Exact phrase search using stored positions: documents where the terms appear
  // consecutively. Stopwords inside the phrase are skipped but still consume a position.
  Result<std::vector<SearchHit>> SearchPhrase(const std::vector<std::string>& phrase,
                                              size_t limit = 0) const;

  // Number of indexed documents.
  Result<uint64_t> doc_count() const;

  // Visit every indexed document id (fsck support). Stop early by returning false.
  Status ScanDocuments(const std::function<bool(uint64_t docid)>& fn) const;

  // Document frequency of a term (0 when absent).
  Result<uint64_t> DocumentFrequency(const std::string& term) const;

 private:
  struct Posting {
    uint64_t docid;
    uint32_t freq;
    std::vector<uint32_t> positions;
  };

  Status RemoveLocked(uint64_t docid);
  Result<std::vector<Posting>> PostingsLocked(const std::string& term) const;
  Result<std::pair<uint64_t, uint64_t>> CorpusStats() const;  // (docs, total tokens)

  btree::BTree* const tree_;
  const Bm25Params params_;
  mutable std::mutex write_mu_;  // Serializes multi-entry index mutations.
};

// Background lazy indexer (§3.4): worker threads drain a queue of (docid, text) pairs
// into a FullTextIndex. Documents are searchable only after they have been drained.
class LazyIndexer {
 public:
  LazyIndexer(FullTextIndex* index, int num_threads);
  ~LazyIndexer();  // Drains the queue, then joins the workers.

  LazyIndexer(const LazyIndexer&) = delete;
  LazyIndexer& operator=(const LazyIndexer&) = delete;

  // Enqueue a document for indexing. Returns immediately.
  void Submit(uint64_t docid, std::string text);

  // Block until every submitted document has been indexed.
  void Drain();

  // Documents waiting or in flight.
  size_t backlog() const;

  // First error any worker hit (Ok if none). Sticky.
  Status first_error() const;

 private:
  void WorkerLoop();

  FullTextIndex* const index_;
  mutable std::mutex mu_;
  std::condition_variable cv_;         // Signals work available or shutdown.
  std::condition_variable drained_cv_; // Signals backlog reaching zero.
  std::deque<std::pair<uint64_t, std::string>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  Status first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace fulltext
}  // namespace hfad

#endif  // HFAD_SRC_FULLTEXT_FULLTEXT_H_
