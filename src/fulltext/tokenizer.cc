#include "src/fulltext/tokenizer.h"

#include <array>
#include <cctype>

namespace hfad {
namespace fulltext {

namespace {

constexpr size_t kMaxTermLength = 64;

// Small closed-class stopword list; enough to keep postings for function words from
// dominating the index without needing language detection.
const std::array<std::string_view, 32> kStopwords = {
    "a",    "an",   "and",  "are", "as",   "at",   "be",   "but",  "by",   "for", "if",
    "in",   "into", "is",   "it",  "its",  "no",   "not",  "of",   "on",   "or",  "such",
    "that", "the",  "their", "then", "there", "these", "they", "this", "to", "was"};

}  // namespace

bool IsStopword(const std::string& term) {
  for (std::string_view w : kStopwords) {
    if (term == w) {
      return true;
    }
  }
  return false;
}

std::vector<Token> Tokenize(Slice text) {
  std::vector<Token> out;
  std::string cur;
  uint32_t position = 0;
  auto flush = [&] {
    if (!cur.empty()) {
      if (cur.size() > kMaxTermLength) {
        cur.resize(kMaxTermLength);
      }
      if (!IsStopword(cur)) {
        out.push_back(Token{cur, position});
      }
      position++;
      cur.clear();
    }
  };
  for (size_t i = 0; i < text.size(); i++) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    if (std::isalnum(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else {
      flush();
    }
  }
  flush();
  return out;
}

std::string NormalizeTerm(Slice term) {
  std::string out;
  for (size_t i = 0; i < term.size(); i++) {
    unsigned char c = static_cast<unsigned char>(term[i]);
    if (std::isalnum(c)) {
      out.push_back(static_cast<char>(std::tolower(c)));
    }
  }
  if (out.size() > kMaxTermLength) {
    out.resize(kMaxTermLength);
  }
  return out;
}

}  // namespace fulltext
}  // namespace hfad
