// Tokenizer for the full-text engine: lowercased alphanumeric terms with positions,
// minus a small English stopword list. Deliberately simple — the paper treats full-text
// indexing as a black box (it used Lucene); what matters is the interface contract:
// text in, ordered (term, position) stream out.
#ifndef HFAD_SRC_FULLTEXT_TOKENIZER_H_
#define HFAD_SRC_FULLTEXT_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/slice.h"

namespace hfad {
namespace fulltext {

struct Token {
  std::string term;   // Lowercased.
  uint32_t position;  // Ordinal position in the document (stopwords still advance it).
};

// True for terms that are never indexed ("the", "and", ...).
bool IsStopword(const std::string& term);

// Split text into tokens at non-alphanumeric boundaries. Terms longer than 64 bytes are
// truncated; pure stopwords are dropped (but still consume a position).
std::vector<Token> Tokenize(Slice text);

// Normalize a user-supplied query term the same way Tokenize would (lowercase; empty
// result means the term was not indexable).
std::string NormalizeTerm(Slice term);

}  // namespace fulltext
}  // namespace hfad

#endif  // HFAD_SRC_FULLTEXT_TOKENIZER_H_
