#include "src/fulltext/fulltext.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <utility>

#include "src/common/coding.h"
#include "src/common/stats.h"

namespace hfad {
namespace fulltext {

namespace {

std::string OidBytes(uint64_t docid) {
  std::string key(8, '\0');
  for (int i = 7; i >= 0; i--) {
    key[i] = static_cast<char>(docid & 0xff);
    docid >>= 8;
  }
  return key;
}

uint64_t OidFromBytes(Slice b) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8 && i < b.size(); i++) {
    v = (v << 8) | static_cast<uint8_t>(b[i]);
  }
  return v;
}

std::string PostingKey(const std::string& term, uint64_t docid) {
  std::string key = "P" + term;
  key.push_back('\0');
  key += OidBytes(docid);
  return key;
}

std::string DfKey(const std::string& term) { return "D" + term; }
std::string DocTermsKey(uint64_t docid) { return "T" + OidBytes(docid); }
std::string DocLenKey(uint64_t docid) { return "L" + OidBytes(docid); }
const char kStatsKey[] = "S";

}  // namespace

FullTextIndex::FullTextIndex(btree::BTree* tree, Bm25Params params)
    : tree_(tree), params_(params) {}

Status FullTextIndex::IndexDocument(uint64_t docid, Slice text) {
  // Tokenize outside the lock: it is the CPU-heavy part and touches no shared state.
  std::vector<Token> tokens = Tokenize(text);
  uint64_t doc_len = tokens.empty() ? 0 : tokens.back().position + 1;

  // term -> (freq, positions)
  std::map<std::string, std::pair<uint32_t, std::vector<uint32_t>>> terms;
  for (const Token& t : tokens) {
    auto& entry = terms[t.term];
    entry.first++;
    entry.second.push_back(t.position);
  }

  std::lock_guard<std::mutex> lock(write_mu_);
  // Re-indexing replaces the previous version.
  Status removed = RemoveLocked(docid);
  if (!removed.ok() && !removed.IsNotFound()) {
    return removed;
  }

  std::string doc_terms;
  for (const auto& [term, entry] : terms) {
    // Posting: freq, then delta-encoded positions.
    std::string posting;
    PutVarint32(&posting, entry.first);
    uint32_t prev = 0;
    for (uint32_t pos : entry.second) {
      PutVarint32(&posting, pos - prev);
      prev = pos;
    }
    HFAD_RETURN_IF_ERROR(tree_->Put(PostingKey(term, docid), posting));

    // Document frequency.
    uint64_t df = 0;
    auto raw = tree_->Get(DfKey(term));
    if (raw.ok()) {
      Slice in(*raw);
      GetVarint64(&in, &df);
    } else if (!raw.status().IsNotFound()) {
      return raw.status();
    }
    std::string df_val;
    PutVarint64(&df_val, df + 1);
    HFAD_RETURN_IF_ERROR(tree_->Put(DfKey(term), df_val));

    PutLengthPrefixed(&doc_terms, term);
    stats::Add(stats::Counter::kFulltextTermsPosted);
  }
  HFAD_RETURN_IF_ERROR(tree_->Put(DocTermsKey(docid), doc_terms));

  std::string len_val;
  PutVarint64(&len_val, doc_len);
  HFAD_RETURN_IF_ERROR(tree_->Put(DocLenKey(docid), len_val));

  HFAD_ASSIGN_OR_RETURN(auto cs, CorpusStats());
  std::string stats_val;
  PutVarint64(&stats_val, cs.first + 1);
  PutVarint64(&stats_val, cs.second + doc_len);
  HFAD_RETURN_IF_ERROR(tree_->Put(kStatsKey, stats_val));
  stats::Add(stats::Counter::kFulltextDocsIndexed);
  return Status::Ok();
}

Status FullTextIndex::RemoveDocument(uint64_t docid) {
  std::lock_guard<std::mutex> lock(write_mu_);
  return RemoveLocked(docid);
}

Status FullTextIndex::RemoveLocked(uint64_t docid) {
  auto raw_terms = tree_->Get(DocTermsKey(docid));
  if (!raw_terms.ok()) {
    return raw_terms.status();  // NotFound when the doc was never indexed.
  }
  Slice in(*raw_terms);
  Slice term_slice;
  while (GetLengthPrefixed(&in, &term_slice)) {
    std::string term = term_slice.ToString();
    HFAD_RETURN_IF_ERROR(tree_->Delete(PostingKey(term, docid)));
    uint64_t df = 0;
    auto raw_df = tree_->Get(DfKey(term));
    if (raw_df.ok()) {
      Slice dfi(*raw_df);
      GetVarint64(&dfi, &df);
    }
    if (df <= 1) {
      // Last posting for this term.
      Status s = tree_->Delete(DfKey(term));
      if (!s.ok() && !s.IsNotFound()) {
        return s;
      }
    } else {
      std::string df_val;
      PutVarint64(&df_val, df - 1);
      HFAD_RETURN_IF_ERROR(tree_->Put(DfKey(term), df_val));
    }
  }
  // Document length and corpus stats.
  uint64_t doc_len = 0;
  auto raw_len = tree_->Get(DocLenKey(docid));
  if (raw_len.ok()) {
    Slice li(*raw_len);
    GetVarint64(&li, &doc_len);
    HFAD_RETURN_IF_ERROR(tree_->Delete(DocLenKey(docid)));
  }
  HFAD_RETURN_IF_ERROR(tree_->Delete(DocTermsKey(docid)));
  HFAD_ASSIGN_OR_RETURN(auto cs, CorpusStats());
  std::string stats_val;
  PutVarint64(&stats_val, cs.first > 0 ? cs.first - 1 : 0);
  PutVarint64(&stats_val, cs.second >= doc_len ? cs.second - doc_len : 0);
  return tree_->Put(kStatsKey, stats_val);
}

Result<std::pair<uint64_t, uint64_t>> FullTextIndex::CorpusStats() const {
  auto raw = tree_->Get(kStatsKey);
  if (raw.status().IsNotFound()) {
    return std::pair<uint64_t, uint64_t>{0, 0};
  }
  HFAD_RETURN_IF_ERROR(raw.status());
  Slice in(*raw);
  uint64_t docs = 0, tokens = 0;
  if (!GetVarint64(&in, &docs) || !GetVarint64(&in, &tokens)) {
    return Status::Corruption("bad corpus stats entry");
  }
  return std::pair<uint64_t, uint64_t>{docs, tokens};
}

Result<std::vector<FullTextIndex::Posting>> FullTextIndex::PostingsLocked(
    const std::string& term) const {
  std::vector<Posting> out;
  std::string prefix = "P" + term;
  prefix.push_back('\0');
  Status decode_status;
  HFAD_RETURN_IF_ERROR(tree_->ScanPrefix(prefix, [&](Slice key, Slice value) {
    Posting p;
    Slice oid_bytes(key.data() + prefix.size(), key.size() - prefix.size());
    p.docid = OidFromBytes(oid_bytes);
    Slice in = value;
    if (!GetVarint32(&in, &p.freq)) {
      decode_status = Status::Corruption("bad posting for term " + term);
      return false;
    }
    uint32_t pos = 0;
    for (uint32_t i = 0; i < p.freq; i++) {
      uint32_t delta;
      if (!GetVarint32(&in, &delta)) {
        decode_status = Status::Corruption("bad positions for term " + term);
        return false;
      }
      pos += delta;
      p.positions.push_back(pos);
    }
    out.push_back(std::move(p));
    return true;
  }));
  HFAD_RETURN_IF_ERROR(decode_status);
  return out;
}

Result<std::vector<uint64_t>> FullTextIndex::Postings(const std::string& term) const {
  std::string norm = NormalizeTerm(term);
  if (norm.empty()) {
    return Status::InvalidArgument("term has no indexable characters");
  }
  HFAD_ASSIGN_OR_RETURN(std::vector<Posting> postings, PostingsLocked(norm));
  std::vector<uint64_t> out;
  out.reserve(postings.size());
  for (const Posting& p : postings) {
    out.push_back(p.docid);
  }
  return out;
}

Status FullTextIndex::ScanPostingDocs(const std::string& term, uint64_t first_docid,
                                      const std::function<bool(uint64_t)>& fn) const {
  std::string norm = NormalizeTerm(term);
  if (norm.empty()) {
    return Status::InvalidArgument("term has no indexable characters");
  }
  // Keys run "P" term '\0' oid(8B BE); the byte after the range's NUL separator is 0x01.
  std::string first = PostingKey(norm, first_docid);
  std::string last = "P" + norm + '\x01';
  return tree_->Scan(first, last, [&](Slice key, Slice) {
    return fn(OidFromBytes(Slice(key.data() + key.size() - 8, 8)));
  });
}

Result<std::vector<SearchHit>> FullTextIndex::ScoreDocuments(
    const std::vector<std::string>& terms, const std::vector<uint64_t>& docids,
    size_t limit) const {
  if (terms.empty()) {
    return Status::InvalidArgument("empty search");
  }
  HFAD_ASSIGN_OR_RETURN(auto cs, CorpusStats());
  if (cs.first == 0 || docids.empty()) {
    return std::vector<SearchHit>{};
  }
  const double n_docs = static_cast<double>(cs.first);
  const double avg_len = cs.second > 0 ? static_cast<double>(cs.second) / n_docs : 1.0;

  std::vector<double> idf(terms.size());
  for (size_t qi = 0; qi < terms.size(); qi++) {
    HFAD_ASSIGN_OR_RETURN(uint64_t df, DocumentFrequency(terms[qi]));
    idf[qi] = std::log((n_docs - static_cast<double>(df) + 0.5) /
                       (static_cast<double>(df) + 0.5) +
                       1.0);
  }

  std::vector<SearchHit> hits;
  hits.reserve(docids.size());
  for (uint64_t docid : docids) {
    uint64_t doc_len = 1;
    auto raw_len = tree_->Get(DocLenKey(docid));
    if (raw_len.ok()) {
      Slice li(*raw_len);
      GetVarint64(&li, &doc_len);
    }
    const double norm_len = static_cast<double>(doc_len) / avg_len;
    double score = 0.0;
    for (size_t qi = 0; qi < terms.size(); qi++) {
      auto raw = tree_->Get(PostingKey(terms[qi], docid));
      if (raw.status().IsNotFound()) {
        continue;
      }
      HFAD_RETURN_IF_ERROR(raw.status());
      Slice in(*raw);
      uint32_t freq = 0;
      if (!GetVarint32(&in, &freq)) {
        return Status::Corruption("bad posting for term " + terms[qi]);
      }
      const double f = static_cast<double>(freq);
      score += idf[qi] * f * (params_.k1 + 1.0) /
               (f + params_.k1 * (1.0 - params_.b + params_.b * norm_len));
    }
    hits.push_back(SearchHit{docid, score});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    return a.score != b.score ? a.score > b.score : a.docid < b.docid;
  });
  if (limit != 0 && hits.size() > limit) {
    hits.resize(limit);
  }
  return hits;
}

Result<bool> FullTextIndex::ContainsPosting(const std::string& term, uint64_t docid) const {
  std::string norm = NormalizeTerm(term);
  if (norm.empty()) {
    return Status::InvalidArgument("term has no indexable characters");
  }
  return tree_->Contains(PostingKey(norm, docid));
}

Result<std::vector<SearchHit>> FullTextIndex::Search(const std::vector<std::string>& terms,
                                                     size_t limit) const {
  if (terms.empty()) {
    return Status::InvalidArgument("empty search");
  }
  std::vector<std::string> normalized;
  for (const std::string& t : terms) {
    std::string norm = NormalizeTerm(t);
    if (norm.empty()) {
      return Status::InvalidArgument("term '" + t + "' has no indexable characters");
    }
    if (IsStopword(norm)) {
      return Status::InvalidArgument("term '" + norm + "' is a stopword and never indexed");
    }
    normalized.push_back(std::move(norm));
  }

  HFAD_ASSIGN_OR_RETURN(auto cs, CorpusStats());
  const double n_docs = static_cast<double>(cs.first);
  if (cs.first == 0) {
    return std::vector<SearchHit>{};
  }
  const double avg_len = cs.second > 0 ? static_cast<double>(cs.second) / n_docs : 1.0;

  // Conjunction with accumulated BM25 contributions.
  std::unordered_map<uint64_t, double> scores;
  std::unordered_map<uint64_t, int> matched;
  for (size_t qi = 0; qi < normalized.size(); qi++) {
    HFAD_ASSIGN_OR_RETURN(std::vector<Posting> postings, PostingsLocked(normalized[qi]));
    if (postings.empty()) {
      return std::vector<SearchHit>{};  // Conjunction with an absent term is empty.
    }
    const double df = static_cast<double>(postings.size());
    const double idf = std::log((n_docs - df + 0.5) / (df + 0.5) + 1.0);
    for (const Posting& p : postings) {
      if (qi > 0 && matched.find(p.docid) == matched.end()) {
        continue;  // Not in the running intersection.
      }
      uint64_t doc_len = 1;
      auto raw_len = tree_->Get(DocLenKey(p.docid));
      if (raw_len.ok()) {
        Slice li(*raw_len);
        GetVarint64(&li, &doc_len);
      }
      const double f = static_cast<double>(p.freq);
      const double norm_len = static_cast<double>(doc_len) / avg_len;
      const double tf = f * (params_.k1 + 1.0) /
                        (f + params_.k1 * (1.0 - params_.b + params_.b * norm_len));
      scores[p.docid] += idf * tf;
      matched[p.docid]++;
    }
  }

  std::vector<SearchHit> hits;
  for (const auto& [docid, count] : matched) {
    if (static_cast<size_t>(count) == normalized.size()) {
      hits.push_back(SearchHit{docid, scores[docid]});
    }
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    return a.score != b.score ? a.score > b.score : a.docid < b.docid;
  });
  if (limit != 0 && hits.size() > limit) {
    hits.resize(limit);
  }
  return hits;
}

Result<std::vector<SearchHit>> FullTextIndex::SearchPhrase(
    const std::vector<std::string>& phrase, size_t limit) const {
  // Normalize, remembering each term's offset within the phrase so stopwords (which are
  // not indexed but did consume positions) can be skipped correctly.
  std::vector<std::pair<std::string, uint32_t>> terms;  // (term, offset in phrase)
  uint32_t offset = 0;
  for (const std::string& t : phrase) {
    std::string norm = NormalizeTerm(t);
    if (norm.empty()) {
      return Status::InvalidArgument("phrase term '" + t + "' not indexable");
    }
    if (!IsStopword(norm)) {
      terms.emplace_back(norm, offset);
    }
    offset++;
  }
  if (terms.empty()) {
    return Status::InvalidArgument("phrase contains only stopwords");
  }

  // Candidate docs: conjunction of all terms, with positions.
  std::unordered_map<uint64_t, std::vector<std::vector<uint32_t>>> candidates;
  for (size_t qi = 0; qi < terms.size(); qi++) {
    HFAD_ASSIGN_OR_RETURN(std::vector<Posting> postings, PostingsLocked(terms[qi].first));
    std::unordered_map<uint64_t, std::vector<std::vector<uint32_t>>> next;
    for (Posting& p : postings) {
      if (qi == 0) {
        next[p.docid].push_back(std::move(p.positions));
      } else {
        auto it = candidates.find(p.docid);
        if (it != candidates.end()) {
          next[p.docid] = std::move(it->second);
          next[p.docid].push_back(std::move(p.positions));
        }
      }
    }
    candidates = std::move(next);
    if (candidates.empty()) {
      return std::vector<SearchHit>{};
    }
  }

  // A match at base position b requires term i at position b + offset_i - offset_0.
  std::vector<SearchHit> hits;
  for (const auto& [docid, position_lists] : candidates) {
    int match_count = 0;
    for (uint32_t base : position_lists[0]) {
      bool all = true;
      for (size_t i = 1; i < terms.size(); i++) {
        uint32_t want = base + terms[i].second - terms[0].second;
        const auto& positions = position_lists[i];
        if (!std::binary_search(positions.begin(), positions.end(), want)) {
          all = false;
          break;
        }
      }
      if (all) {
        match_count++;
      }
    }
    if (match_count > 0) {
      hits.push_back(SearchHit{docid, static_cast<double>(match_count)});
    }
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    return a.score != b.score ? a.score > b.score : a.docid < b.docid;
  });
  if (limit != 0 && hits.size() > limit) {
    hits.resize(limit);
  }
  return hits;
}

Status FullTextIndex::ScanDocuments(const std::function<bool(uint64_t)>& fn) const {
  return tree_->ScanPrefix("T", [&](Slice key, Slice) {
    Slice oid_bytes(key.data() + 1, key.size() - 1);
    return fn(OidFromBytes(oid_bytes));
  });
}

Result<uint64_t> FullTextIndex::doc_count() const {
  HFAD_ASSIGN_OR_RETURN(auto cs, CorpusStats());
  return cs.first;
}

Result<uint64_t> FullTextIndex::DocumentFrequency(const std::string& term) const {
  std::string norm = NormalizeTerm(term);
  auto raw = tree_->Get(DfKey(norm));
  if (raw.status().IsNotFound()) {
    return uint64_t{0};
  }
  HFAD_RETURN_IF_ERROR(raw.status());
  Slice in(*raw);
  uint64_t df = 0;
  GetVarint64(&in, &df);
  return df;
}

// ---------------------------------------------------------------- LazyIndexer

LazyIndexer::LazyIndexer(FullTextIndex* index, int num_threads) : index_(index) {
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

LazyIndexer::~LazyIndexer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void LazyIndexer::Submit(uint64_t docid, std::string text) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back(docid, std::move(text));
  }
  cv_.notify_one();
}

void LazyIndexer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t LazyIndexer::backlog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

Status LazyIndexer::first_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

void LazyIndexer::WorkerLoop() {
  for (;;) {
    std::pair<uint64_t, std::string> work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty() || shutdown_; });
      if (queue_.empty()) {
        return;  // Shutdown with nothing left: workers drain the queue first.
      }
      work = std::move(queue_.front());
      queue_.pop_front();
      in_flight_++;
    }
    Status s = index_->IndexDocument(work.first, Slice(work.second));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!s.ok() && first_error_.ok()) {
        first_error_ = s;
      }
      in_flight_--;
      if (queue_.empty() && in_flight_ == 0) {
        drained_cv_.notify_all();
      }
    }
  }
}

}  // namespace fulltext
}  // namespace hfad
