// Sharded reader/writer locking — the lock-striping idiom shared by the FileSystem tag
// state, the index stores, and the OSD object locks.
//
// The paper's §2.3 complaint about hierarchies is a *locking* complaint: unrelated files
// synchronize through a shared ancestor directory. The tag namespace removes the shared
// ancestor from the data structures; this header removes it from the locks. State is
// striped into N independently locked shards keyed by object id (or any hashed key), so
// operations on unrelated objects never touch the same mutex, and read-mostly paths take
// the shard in shared mode.
//
// Two building blocks:
//
//   * ShardedMutex<N>: N cache-line-isolated std::shared_mutex shards. Single-shard
//     acquisition is ShardOf(key) -> shared/exclusive RAII guard. Multi-shard operations
//     (cross-tag retags, whole-structure scans) acquire shards in ascending shard-index
//     order — the global lock-ordering rule that makes multi-shard acquisition
//     deadlock-free (two MultiLocks always take their common shards in the same order).
//
//   * StripedMap<K, V>: a hash map striped over a ShardedMutex — each stripe is an
//     independent map guarded by its shard. Point ops lock one stripe; ForEach visits
//     stripes one at a time in shard order (a consistent *per-stripe* snapshot, not a
//     global one — same guarantee a sharded cache gives).
//
// Instrumentation: every acquisition is counted per shard and into the process-global
// hfad::stats counters (kLockAcquisitions / kLockContentions, via a try-lock-first
// probe), so bench_contention can attribute throughput cliffs to specific shards.
#ifndef HFAD_SRC_COMMON_SHARDED_LOCK_H_
#define HFAD_SRC_COMMON_SHARDED_LOCK_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/stats.h"

namespace hfad {

template <size_t kShards>
class ShardedMutex {
  static_assert(kShards > 0 && (kShards & (kShards - 1)) == 0,
                "shard count must be a power of two");

 public:
  static constexpr size_t kNumShards = kShards;

  ShardedMutex() = default;
  ShardedMutex(const ShardedMutex&) = delete;
  ShardedMutex& operator=(const ShardedMutex&) = delete;

  // Shard index for a key. Object ids are assigned sequentially, so the low bits alone
  // spread consecutive oids round-robin across every shard; string keys should be hashed
  // by the caller first (std::hash is fine).
  static constexpr size_t ShardOf(uint64_t key) { return key & (kShards - 1); }

  // ---- Single-shard acquisition ----

  [[nodiscard]] std::unique_lock<std::shared_mutex> LockExclusive(uint64_t key) {
    return LockShardExclusive(ShardOf(key));
  }

  [[nodiscard]] std::shared_lock<std::shared_mutex> LockShared(uint64_t key) const {
    return LockShardShared(ShardOf(key));
  }

  [[nodiscard]] std::unique_lock<std::shared_mutex> LockShardExclusive(size_t shard) {
    Shard& s = shards_[shard];
    std::unique_lock<std::shared_mutex> lock(s.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      s.contentions.fetch_add(1, std::memory_order_relaxed);
      stats::Add(stats::Counter::kLockContentions);
      lock.lock();
    }
    s.acquisitions.fetch_add(1, std::memory_order_relaxed);
    stats::Add(stats::Counter::kLockAcquisitions);
    return lock;
  }

  [[nodiscard]] std::shared_lock<std::shared_mutex> LockShardShared(size_t shard) const {
    const Shard& s = shards_[shard];
    std::shared_lock<std::shared_mutex> lock(s.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      s.contentions.fetch_add(1, std::memory_order_relaxed);
      stats::Add(stats::Counter::kLockContentions);
      lock.lock();
    }
    s.acquisitions.fetch_add(1, std::memory_order_relaxed);
    stats::Add(stats::Counter::kLockAcquisitions);
    return lock;
  }

  // ---- Multi-shard acquisition ----
  //
  // MultiLock owns a set of shards, acquired in ascending shard-index order (duplicates
  // collapsed) and released in reverse. This is the only sanctioned way to hold more
  // than one shard of the same ShardedMutex at once.

  class MultiLock {
   public:
    MultiLock() = default;
    MultiLock(MultiLock&& other) noexcept
        : owner_(other.owner_), exclusive_(other.exclusive_),
          shards_(std::move(other.shards_)) {
      other.owner_ = nullptr;
      other.shards_.clear();
    }
    MultiLock& operator=(MultiLock&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        exclusive_ = other.exclusive_;
        shards_ = std::move(other.shards_);
        other.owner_ = nullptr;
        other.shards_.clear();
      }
      return *this;
    }
    MultiLock(const MultiLock&) = delete;
    MultiLock& operator=(const MultiLock&) = delete;
    ~MultiLock() { Release(); }

    bool owns_locks() const { return owner_ != nullptr; }
    const std::vector<size_t>& shards() const { return shards_; }

   private:
    friend class ShardedMutex;
    MultiLock(const ShardedMutex* owner, bool exclusive, std::vector<size_t> shards)
        : owner_(owner), exclusive_(exclusive), shards_(std::move(shards)) {}

    void Release() {
      if (owner_ == nullptr) {
        return;
      }
      for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
        if (exclusive_) {
          owner_->shards_[*it].mu.unlock();
        } else {
          owner_->shards_[*it].mu.unlock_shared();
        }
      }
      owner_ = nullptr;
      shards_.clear();
    }

    const ShardedMutex* owner_ = nullptr;
    bool exclusive_ = false;
    std::vector<size_t> shards_;
  };

  // Exclusive hold over the shards covering `keys` (cross-tag / cross-object ops).
  [[nodiscard]] MultiLock LockMultiExclusive(std::initializer_list<uint64_t> keys) {
    return LockMulti(SortedShards(keys), /*exclusive=*/true);
  }
  [[nodiscard]] MultiLock LockMultiExclusive(const std::vector<uint64_t>& keys) {
    return LockMulti(SortedShards(keys), /*exclusive=*/true);
  }

  // Shared hold over every shard (whole-structure scans: fsck, ScanAllNames).
  [[nodiscard]] MultiLock LockAllShared() const {
    std::vector<size_t> all(kShards);
    for (size_t i = 0; i < kShards; i++) {
      all[i] = i;
    }
    return const_cast<ShardedMutex*>(this)->LockMulti(std::move(all),
                                                      /*exclusive=*/false);
  }

  // ---- Per-shard instrumentation ----

  uint64_t acquisitions(size_t shard) const {
    return shards_[shard].acquisitions.load(std::memory_order_relaxed);
  }
  uint64_t contentions(size_t shard) const {
    return shards_[shard].contentions.load(std::memory_order_relaxed);
  }
  uint64_t total_acquisitions() const {
    uint64_t n = 0;
    for (const Shard& s : shards_) {
      n += s.acquisitions.load(std::memory_order_relaxed);
    }
    return n;
  }
  uint64_t total_contentions() const {
    uint64_t n = 0;
    for (const Shard& s : shards_) {
      n += s.contentions.load(std::memory_order_relaxed);
    }
    return n;
  }

  // One shard's counters, for DumpMetrics-style reporting.
  struct ShardStat {
    size_t shard = 0;
    uint64_t acquisitions = 0;
    uint64_t contentions = 0;
  };

  // The n most contended shards, descending by contention count (ties broken by
  // shard index). Shards with zero contentions are omitted, so a well-striped
  // lock legitimately reports an empty list.
  std::vector<ShardStat> TopContended(size_t n) const {
    std::vector<ShardStat> all;
    for (size_t i = 0; i < kShards; i++) {
      uint64_t c = shards_[i].contentions.load(std::memory_order_relaxed);
      if (c == 0) {
        continue;
      }
      all.push_back({i, shards_[i].acquisitions.load(std::memory_order_relaxed), c});
    }
    std::sort(all.begin(), all.end(), [](const ShardStat& a, const ShardStat& b) {
      return a.contentions != b.contentions ? a.contentions > b.contentions
                                            : a.shard < b.shard;
    });
    if (all.size() > n) {
      all.resize(n);
    }
    return all;
  }

 private:
  // A shard gets its own cache line so uncontended acquisitions on neighbouring shards
  // do not false-share.
  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    mutable std::atomic<uint64_t> acquisitions{0};
    mutable std::atomic<uint64_t> contentions{0};
  };

  template <typename Keys>
  static std::vector<size_t> SortedShards(const Keys& keys) {
    std::vector<size_t> shards;
    shards.reserve(keys.size());
    for (uint64_t key : keys) {
      shards.push_back(ShardOf(key));
    }
    std::sort(shards.begin(), shards.end());
    shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
    return shards;
  }

  MultiLock LockMulti(std::vector<size_t> shards, bool exclusive) {
    // Ascending shard order (SortedShards guarantees it) is the deadlock-freedom rule.
    for (size_t idx : shards) {
      Shard& s = shards_[idx];
      bool contended;
      if (exclusive) {
        contended = !s.mu.try_lock();
        if (contended) {
          s.mu.lock();
        }
      } else {
        contended = !s.mu.try_lock_shared();
        if (contended) {
          s.mu.lock_shared();
        }
      }
      if (contended) {
        s.contentions.fetch_add(1, std::memory_order_relaxed);
        stats::Add(stats::Counter::kLockContentions);
      }
      s.acquisitions.fetch_add(1, std::memory_order_relaxed);
      stats::Add(stats::Counter::kLockAcquisitions);
    }
    return MultiLock(this, exclusive, std::move(shards));
  }

  mutable std::array<Shard, kShards> shards_;
};

// Emit one lock's stats as a named JSON object into an open "locks" object:
//   "<name>": {"total_acquisitions": .., "total_contentions": ..,
//              "top_contended": [{"shard": i, "acquisitions": .., "contentions": ..}]}
// Shared by the DumpMetrics() implementations so every striped lock reports the
// same shape.
template <size_t N>
void WriteLockStatsJson(metrics::JsonWriter* w, std::string_view name,
                        const ShardedMutex<N>& mu, size_t top_n = 4) {
  w->Key(name).BeginObject();
  w->Key("total_acquisitions").Value(mu.total_acquisitions());
  w->Key("total_contentions").Value(mu.total_contentions());
  w->Key("top_contended").BeginArray();
  for (const auto& st : mu.TopContended(top_n)) {
    w->BeginObject();
    w->Key("shard").Value(static_cast<uint64_t>(st.shard));
    w->Key("acquisitions").Value(st.acquisitions);
    w->Key("contentions").Value(st.contentions);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

// A hash map striped over a ShardedMutex: point operations lock exactly one stripe, so
// lookups and inserts on different stripes proceed fully in parallel.
template <typename K, typename V, size_t kStripes = 16, typename Hash = std::hash<K>>
class StripedMap {
 public:
  static constexpr size_t kNumStripes = kStripes;

  size_t StripeOf(const K& key) const {
    return ShardedMutex<kStripes>::ShardOf(Hash{}(key));
  }

  // Returns false if the key is absent; otherwise copies the value out.
  bool Get(const K& key, V* out) const {
    size_t stripe = StripeOf(key);
    auto lock = mu_.LockShardShared(stripe);
    auto it = maps_[stripe].find(key);
    if (it == maps_[stripe].end()) {
      return false;
    }
    *out = it->second;
    return true;
  }

  bool Contains(const K& key) const {
    size_t stripe = StripeOf(key);
    auto lock = mu_.LockShardShared(stripe);
    return maps_[stripe].count(key) != 0;
  }

  // Insert or overwrite. Returns true when the key was newly inserted.
  bool Put(const K& key, V value) {
    size_t stripe = StripeOf(key);
    auto lock = mu_.LockShardExclusive(stripe);
    auto [it, inserted] = maps_[stripe].insert_or_assign(key, std::move(value));
    (void)it;
    if (inserted) {
      size_.fetch_add(1, std::memory_order_relaxed);
    }
    return inserted;
  }

  // Put with a per-stripe occupancy bound: when the stripe is full, one resident entry
  // (first in bucket order — effectively random under hashing) is evicted to make room.
  // O(1), no global clears; memory is bounded at stripe_cap * kStripes entries. The
  // cache-usage pattern this serves: unique keys stream through without ever forcing a
  // wholesale flush of the entries that do get reused.
  bool PutWithEvict(const K& key, V value, size_t stripe_cap) {
    size_t stripe = StripeOf(key);
    auto lock = mu_.LockShardExclusive(stripe);
    auto& map = maps_[stripe];
    auto [it, inserted] = map.insert_or_assign(key, std::move(value));
    if (inserted) {
      size_.fetch_add(1, std::memory_order_relaxed);
      if (map.size() > stripe_cap) {
        auto victim = map.begin();
        if (victim == it) {
          ++victim;
        }
        if (victim != map.end()) {
          map.erase(victim);
          size_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
    }
    return inserted;
  }

  // Returns true when the key existed.
  bool Erase(const K& key) {
    size_t stripe = StripeOf(key);
    auto lock = mu_.LockShardExclusive(stripe);
    if (maps_[stripe].erase(key) == 0) {
      return false;
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  // Atomic read-modify-write of one key's value. `fn(V&)` runs with the stripe held
  // exclusively; the value is default-constructed first if the key was absent.
  template <typename Fn>
  void Mutate(const K& key, const Fn& fn) {
    size_t stripe = StripeOf(key);
    auto lock = mu_.LockShardExclusive(stripe);
    auto [it, inserted] = maps_[stripe].try_emplace(key);
    if (inserted) {
      size_.fetch_add(1, std::memory_order_relaxed);
    }
    fn(it->second);
  }

  // Like Mutate, but a no-op on absent keys (for maintaining cached values without
  // fabricating entries). Returns true when the key was present.
  template <typename Fn>
  bool MutateIfPresent(const K& key, const Fn& fn) {
    size_t stripe = StripeOf(key);
    auto lock = mu_.LockShardExclusive(stripe);
    auto it = maps_[stripe].find(key);
    if (it == maps_[stripe].end()) {
      return false;
    }
    fn(it->second);
    return true;
  }

  // Visit every entry, one stripe at a time in stripe order (per-stripe consistency;
  // entries added or removed in already-visited stripes are not revisited). Stop early
  // by returning false.
  void ForEach(const std::function<bool(const K&, const V&)>& fn) const {
    for (size_t stripe = 0; stripe < kStripes; stripe++) {
      auto lock = mu_.LockShardShared(stripe);
      for (const auto& [key, value] : maps_[stripe]) {
        if (!fn(key, value)) {
          return;
        }
      }
    }
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

  void Clear() {
    for (size_t stripe = 0; stripe < kStripes; stripe++) {
      auto lock = mu_.LockShardExclusive(stripe);
      size_.fetch_sub(maps_[stripe].size(), std::memory_order_relaxed);
      maps_[stripe].clear();
    }
  }

  // The underlying lock, for callers that need per-stripe stats.
  const ShardedMutex<kStripes>& mutex() const { return mu_; }

 private:
  mutable ShardedMutex<kStripes> mu_;
  std::array<std::unordered_map<K, V, Hash>, kStripes> maps_;
  std::atomic<int64_t> size_{0};
};

}  // namespace hfad

#endif  // HFAD_SRC_COMMON_SHARDED_LOCK_H_
