#include "src/common/stats.h"

namespace hfad {
namespace stats {

void ResetAll() {
  for (auto& a : internal::g_counters) {
    a.store(0, std::memory_order_relaxed);
  }
}

std::string_view CounterName(Counter c) {
  switch (c) {
    case Counter::kIndexTraversals:
      return "index_traversals";
    case Counter::kBtreeNodeVisits:
      return "btree_node_visits";
    case Counter::kPageReads:
      return "page_reads";
    case Counter::kPageWrites:
      return "page_writes";
    case Counter::kPagerHits:
      return "pager_hits";
    case Counter::kLockAcquisitions:
      return "lock_acquisitions";
    case Counter::kLockContentions:
      return "lock_contentions";
    case Counter::kDirComponentsWalked:
      return "dir_components_walked";
    case Counter::kExtentsAllocated:
      return "extents_allocated";
    case Counter::kExtentsFreed:
      return "extents_freed";
    case Counter::kJournalRecords:
      return "journal_records";
    case Counter::kJournalBytes:
      return "journal_bytes";
    case Counter::kJournalCommits:
      return "journal_commits";
    case Counter::kDeviceWriteBatches:
      return "device_write_batches";
    case Counter::kDeviceBatchRuns:
      return "device_batch_runs";
    case Counter::kOsdCloseErrors:
      return "osd_close_errors";
    case Counter::kFulltextDocsIndexed:
      return "fulltext_docs_indexed";
    case Counter::kFulltextTermsPosted:
      return "fulltext_terms_posted";
    case Counter::kChecksumVerifies:
      return "checksum_verifies";
    case Counter::kChecksumFailures:
      return "checksum_failures";
    case Counter::kIoRetries:
      return "io_retries";
    case Counter::kPagerWritebackErrors:
      return "pager_writeback_errors";
    case Counter::kScrubPagesScanned:
      return "scrub_pages_scanned";
    case Counter::kScrubErrorsFound:
      return "scrub_errors_found";
    case Counter::kScrubPagesRepaired:
      return "scrub_pages_repaired";
    case Counter::kScrubPagesQuarantined:
      return "scrub_pages_quarantined";
    case Counter::kNumCounters:
      break;
  }
  return "unknown";
}

Snapshot Snapshot::Take() {
  Snapshot s;
  for (int i = 0; i < kNumCounters; i++) {
    s.values[i] = internal::g_counters[i].load(std::memory_order_relaxed);
  }
  return s;
}

Snapshot Snapshot::Delta(const Snapshot& earlier) const {
  Snapshot d;
  for (int i = 0; i < kNumCounters; i++) {
    d.values[i] = values[i] - earlier.values[i];
  }
  return d;
}

std::string Snapshot::ToString() const {
  std::string out;
  for (int i = 0; i < kNumCounters; i++) {
    if (values[i] == 0) {
      continue;
    }
    if (!out.empty()) {
      out += " ";
    }
    out += CounterName(static_cast<Counter>(i));
    out += "=";
    out += std::to_string(values[i]);
  }
  return out.empty() ? "(all zero)" : out;
}

}  // namespace stats
}  // namespace hfad
