#include "src/common/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/stats.h"

namespace hfad {
namespace metrics {

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

std::string_view HistName(Hist h) {
  switch (h) {
    case Hist::kCreate:
      return "create";
    case Hist::kAddTag:
      return "add_tag";
    case Hist::kRemoveTag:
      return "remove_tag";
    case Hist::kFind:
      return "find";
    case Hist::kSearchText:
      return "search_text";
    case Hist::kBatchCommit:
      return "batch_commit";
    case Hist::kJournalCommit:
      return "journal_commit";
    case Hist::kPageRead:
      return "page_read";
    case Hist::kCheckpoint:
      return "checkpoint";
    case Hist::kIndexerApply:
      return "indexer_apply";
    case Hist::kNumHists:
      break;
  }
  return "unknown";
}

HistSnapshot HistSnapshot::Take(Hist h) {
  const internal::HistData& d = internal::g_hists[static_cast<int>(h)];
  HistSnapshot s;
  // Bucket loads are relaxed and not atomic as a set: concurrent recorders can
  // make count briefly disagree with the bucket sum. Percentile() normalizes by
  // the bucket total, so the skew only dates the snapshot, never corrupts it.
  for (int i = 0; i < kNumBuckets; i++) {
    s.buckets[i] = d.buckets[i].load(std::memory_order_relaxed);
  }
  s.count = d.count.load(std::memory_order_relaxed);
  s.sum = d.sum.load(std::memory_order_relaxed);
  s.max = d.max.load(std::memory_order_relaxed);
  return s;
}

uint64_t HistSnapshot::Percentile(double q) const {
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    total += buckets[i];
  }
  if (total == 0) {
    return 0;
  }
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the requested quantile, 1-based; walk buckets until it is covered.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    seen += buckets[i];
    if (seen >= rank) {
      // Midpoint of the bucket, clamped to the observed max so p99 never
      // reports beyond a value that was actually recorded.
      uint64_t lo = BucketLowerBound(i);
      uint64_t hi = (i + 1 < kNumBuckets) ? BucketLowerBound(i + 1) : lo + 1;
      uint64_t mid = lo + (hi - lo) / 2;
      return (max != 0 && mid > max) ? max : mid;
    }
  }
  return max;
}

void ResetAll() {
  for (auto& d : internal::g_hists) {
    for (auto& b : d.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    d.count.store(0, std::memory_order_relaxed);
    d.sum.store(0, std::memory_order_relaxed);
    d.max.store(0, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------------- JsonWriter

void JsonWriter::MaybeComma() {
  if (need_comma_) {
    out_ += ',';
  }
  need_comma_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  MaybeComma();
  out_ += '"';
  for (char c : k) {
    if (c == '"' || c == '\\') {
      out_ += '\\';
    }
    out_ += c;
  }
  out_ += "\":";
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  MaybeComma();
  out_ += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') {
      out_ += '\\';
      out_ += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out_ += buf;
    } else {
      out_ += c;
    }
  }
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

// ------------------------------------------------- shared document fragments

void WriteCountersJson(JsonWriter* w) {
  w->Key("counters").BeginObject();
  stats::Snapshot snap = stats::Snapshot::Take();
  for (int i = 0; i < stats::kNumCounters; i++) {
    auto c = static_cast<stats::Counter>(i);
    w->Key(stats::CounterName(c)).Value(snap[c]);
  }
  w->EndObject();
}

void WriteHistogramsJson(JsonWriter* w) {
  w->Key("histograms").BeginObject();
  for (int i = 0; i < kNumHists; i++) {
    auto h = static_cast<Hist>(i);
    HistSnapshot s = HistSnapshot::Take(h);
    w->Key(HistName(h)).BeginObject();
    w->Key("count").Value(s.count);
    w->Key("sum_ns").Value(s.sum);
    w->Key("mean_ns").Value(s.Mean());
    w->Key("p50_ns").Value(s.Percentile(0.50));
    w->Key("p90_ns").Value(s.Percentile(0.90));
    w->Key("p99_ns").Value(s.Percentile(0.99));
    w->Key("max_ns").Value(s.max);
    w->EndObject();
  }
  w->EndObject();
}

}  // namespace metrics
}  // namespace hfad
