// Process-wide latency histograms: the second half of the paper's §2.3 instrumentation
// story. stats.h counts *what* the system did (traversals, page IOs, lock waits);
// these histograms record *how long* each operation class took, with enough
// resolution to read p50/p90/p99/max off a live process.
//
// Design mirrors stats.h: a fixed enum of histograms, constant-initialized arrays of
// relaxed atomics, no registration, no locks, cheap enough to stay on in Release.
// Buckets are log-linear (one octave of powers of two split into 4 linear
// sub-buckets), so relative error is bounded at ~12.5% across the full nanosecond-
// to-minutes range while a Record() is two fetch_adds and change.
#ifndef HFAD_SRC_COMMON_METRICS_H_
#define HFAD_SRC_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace hfad {
namespace metrics {

enum class Hist : int {
  kCreate = 0,      // FileSystem::Create (validated single-object create).
  kAddTag,          // FileSystem::AddTag.
  kRemoveTag,       // FileSystem::RemoveTag.
  kFind,            // FileSystem::Find (parse excluded; plan + execute + paginate).
  kSearchText,      // FileSystem::SearchText full-text conjunctions.
  kBatchCommit,     // NamespaceBatch::Commit via FileSystem::CommitBatch.
  kJournalCommit,   // Journal leader Write+Sync (the group-commit fsync section).
  kPageRead,        // Pager miss servicing (device read + frame install).
  kCheckpoint,      // Osd::CheckpointLocked end-to-end.
  kIndexerApply,    // LazyTagIndexer background batch application.
  kNumHists,        // Sentinel.
};

constexpr int kNumHists = static_cast<int>(Hist::kNumHists);

// Log-linear bucketing: values 0..3 map to buckets 0..3; larger values map to
// (octave-1)*4 + sub where octave = floor(log2(v)) and sub is the next two bits.
// 64-bit values need at most (63-1)*4 + 3 + 1 = 252 buckets.
constexpr int kSubBuckets = 4;
constexpr int kNumBuckets = 252;

inline int BucketIndex(uint64_t v) {
  if (v < kSubBuckets) {
    return static_cast<int>(v);
  }
  int octave = 63 - __builtin_clzll(v);
  int sub = static_cast<int>((v >> (octave - 2)) & (kSubBuckets - 1));
  return (octave - 1) * kSubBuckets + sub;
}

// Inclusive lower bound of a bucket (inverse of BucketIndex).
inline uint64_t BucketLowerBound(int idx) {
  if (idx < kSubBuckets) {
    return static_cast<uint64_t>(idx);
  }
  int octave = idx / kSubBuckets + 1;
  uint64_t sub = static_cast<uint64_t>(idx % kSubBuckets);
  return (uint64_t{1} << octave) + (sub << (octave - 2));
}

namespace internal {

struct HistData {
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> max{0};
};

// Constant-initialized like stats::internal::g_counters: no magic-static guard on
// the hot path.
inline std::array<HistData, kNumHists> g_hists{};

// Kill switch so the overhead benchmark has a true "instrumentation off" baseline.
inline std::atomic<bool> g_enabled{true};

}  // namespace internal

inline bool Enabled() { return internal::g_enabled.load(std::memory_order_relaxed); }

// Enable/disable all histogram recording (default on). Benchmark-only knob.
void SetEnabled(bool on);

// Record one sample (nanoseconds) into histogram h.
inline void Record(Hist h, uint64_t nanos) {
  if (!Enabled()) {
    return;
  }
  internal::HistData& d = internal::g_hists[static_cast<int>(h)];
  d.buckets[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
  d.count.fetch_add(1, std::memory_order_relaxed);
  d.sum.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t prev = d.max.load(std::memory_order_relaxed);
  while (nanos > prev &&
         !d.max.compare_exchange_weak(prev, nanos, std::memory_order_relaxed)) {
  }
}

// RAII latency sample: start at construction, Record() at destruction. When
// recording is disabled the clock is never read.
class ScopedLatency {
 public:
  explicit ScopedLatency(Hist h) : hist_(h), armed_(Enabled()) {
    if (armed_) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedLatency() {
    if (armed_) {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
      Record(hist_, static_cast<uint64_t>(ns));
    }
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Hist hist_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

// Human-readable name ("find", "journal_commit", ...).
std::string_view HistName(Hist h);

// Point-in-time copy of one histogram; percentiles are interpolated from the
// bucket midpoints, so they carry the bucketing's ~12.5% relative error.
struct HistSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  static HistSnapshot Take(Hist h);
  // Value (ns) at quantile q in [0,1]; 0 when the histogram is empty.
  uint64_t Percentile(double q) const;
  uint64_t Mean() const { return count == 0 ? 0 : sum / count; }
};

// Reset every histogram to zero (benchmark setup).
void ResetAll();

// ---------------------------------------------------------------------------
// Minimal JSON emitter shared by DumpMetrics() implementations. Emits compact,
// deterministic JSON (insertion order preserved, keys escaped, doubles with
// fixed precision) — enough for the documented schema, no parser needed.
// ---------------------------------------------------------------------------

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view k);
  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  std::string out_;
  bool need_comma_ = false;
};

// Append the standard "counters" and "histograms" JSON objects (used by both
// Osd::DumpMetrics and FileSystem::DumpMetrics so the two documents agree).
void WriteCountersJson(JsonWriter* w);
void WriteHistogramsJson(JsonWriter* w);

}  // namespace metrics
}  // namespace hfad

#endif  // HFAD_SRC_COMMON_METRICS_H_
