#include "src/common/coding.h"

namespace hfad {

void PutVarint32(std::string* dst, uint32_t v) {
  uint8_t buf[5];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<uint8_t>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t v) {
  uint8_t buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<uint8_t>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

bool GetVarint64Slow(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint8_t byte = static_cast<uint8_t>((*input)[0]);
    input->RemovePrefix(1);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

void PutLengthPrefixed(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixed(Slice* input, Slice* result) {
  uint32_t len;
  if (!GetVarint32(input, &len) || input->size() < len) {
    return false;
  }
  *result = Slice(input->data(), len);
  input->RemovePrefix(len);
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) {
    return false;
  }
  *value = DecodeFixed32(input->udata());
  input->RemovePrefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) {
    return false;
  }
  *value = DecodeFixed64(input->udata());
  input->RemovePrefix(8);
  return true;
}

int VarintLength(uint64_t v) {
  int n = 1;
  while (v >= 0x80) {
    v >>= 7;
    n++;
  }
  return n;
}

}  // namespace hfad
