// Sampled operation tracing: attributes cost to *individual* operations, where
// stats.h/metrics.h aggregate. A sampled op (1-in-N, configurable) carries a
// thread-local trace context through the layers it crosses — FileSystem entry
// point → query planner → posting iterators → pager → journal commit — and each
// instrumented section publishes a span (name, op id, depth, start, duration,
// counter deltas) into a fixed-size lock-free ring readable at any time with
// DumpRecent().
//
// Concurrency model: every slot field is a relaxed atomic plus a per-slot
// version counter (odd while a writer is mid-publish), so readers never race
// writers in the TSan sense. A reader that observes a version change mid-copy
// discards the slot; a slot reclaimed by two wrapping writers at once may carry
// a torn span, which is acceptable for a diagnostic ring and flagged by the
// version check in the common case.
#ifndef HFAD_SRC_COMMON_TRACE_H_
#define HFAD_SRC_COMMON_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace hfad {
namespace trace {

constexpr size_t kRingSize = 4096;

// A completed span copied out of the ring.
struct SpanRecord {
  std::string name;
  uint64_t op_id = 0;       // Groups spans belonging to one sampled operation.
  uint32_t depth = 0;       // 0 = operation root, children nest below.
  uint64_t start_ns = 0;    // steady_clock nanoseconds (process-relative).
  uint64_t duration_ns = 0;
  // Counter deltas over the span, from this thread's perspective. Concurrent
  // threads bump the same globals, so under load these are attributions of
  // *system* activity during the span, not exact per-op costs.
  uint64_t index_traversals = 0;
  uint64_t page_reads = 0;
  uint64_t pager_hits = 0;
  uint64_t journal_commits = 0;
};

namespace internal {

struct Slot {
  std::atomic<uint64_t> version{0};  // Odd while being written.
  std::atomic<const char*> name{nullptr};  // Always a string literal.
  std::atomic<uint64_t> op_id{0};
  std::atomic<uint32_t> depth{0};
  std::atomic<uint64_t> start_ns{0};
  std::atomic<uint64_t> duration_ns{0};
  std::atomic<uint64_t> d_traversals{0};
  std::atomic<uint64_t> d_page_reads{0};
  std::atomic<uint64_t> d_pager_hits{0};
  std::atomic<uint64_t> d_journal_commits{0};
};

inline std::array<Slot, kRingSize> g_ring{};
inline std::atomic<uint64_t> g_next_slot{0};
inline std::atomic<uint64_t> g_op_counter{0};

// 0 = tracing off, 1 = every op, N = one op in N. Default: 1-in-64.
inline std::atomic<uint32_t> g_sample_every{64};
inline std::atomic<uint64_t> g_sample_counter{0};

// Per-thread context: set by the root OpScope of a sampled operation, read by
// every SpanScope below it. Not armed → SpanScope costs one TLS load + branch.
struct TlsContext {
  bool armed = false;
  uint64_t op_id = 0;
  uint32_t depth = 0;
};
inline thread_local TlsContext g_tls;

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void PublishSpan(const char* name, uint64_t op_id, uint32_t depth,
                 uint64_t start_ns, uint64_t duration_ns,
                 const stats::Snapshot& before);

}  // namespace internal

// Configure sampling: 0 disables tracing, 1 traces every operation, N traces
// one operation in N. Takes effect for operations that start afterwards.
void SetSampleEvery(uint32_t n);
uint32_t SampleEvery();

// True if the current thread is inside a sampled operation (used by call sites
// that want to skip snapshot work when no span will be recorded).
inline bool Active() { return internal::g_tls.armed; }

// Root scope for one logical operation (Create, Find, an indexer drain...).
// Makes the sampling decision; when sampled, arms the thread-local context so
// nested SpanScopes record, and publishes its own depth-0 span at destruction.
// Nested OpScopes (e.g. Find called from SearchText) behave as child spans.
class OpScope {
 public:
  explicit OpScope(const char* name);
  ~OpScope();
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  const char* name_;
  bool recording_ = false;
  bool root_ = false;  // This scope armed the context (vs. nested in one).
  uint64_t start_ns_ = 0;
  stats::Snapshot before_;
};

// Child scope: records a span only when the thread's context is armed.
class SpanScope {
 public:
  explicit SpanScope(const char* name) : name_(name) {
    if (internal::g_tls.armed) {
      recording_ = true;
      internal::g_tls.depth++;
      start_ns_ = internal::NowNs();
      before_ = stats::Snapshot::Take();
    }
  }
  ~SpanScope() {
    if (recording_) {
      uint64_t dur = internal::NowNs() - start_ns_;
      internal::g_tls.depth--;
      internal::PublishSpan(name_, internal::g_tls.op_id,
                            internal::g_tls.depth + 1, start_ns_, dur, before_);
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  bool recording_ = false;
  uint64_t start_ns_ = 0;
  stats::Snapshot before_;
};

// Copy the most recent completed spans out of the ring, newest first, at most
// max_spans (0 = the whole ring). Slots caught mid-write are skipped.
std::vector<SpanRecord> DumpRecent(size_t max_spans = 0);

// Clear the ring (benchmark/test setup).
void ResetRing();

}  // namespace trace
}  // namespace hfad

#endif  // HFAD_SRC_COMMON_TRACE_H_
