#include "src/common/trace.h"

namespace hfad {
namespace trace {

void SetSampleEvery(uint32_t n) {
  internal::g_sample_every.store(n, std::memory_order_relaxed);
}

uint32_t SampleEvery() {
  return internal::g_sample_every.load(std::memory_order_relaxed);
}

namespace internal {

void PublishSpan(const char* name, uint64_t op_id, uint32_t depth,
                 uint64_t start_ns, uint64_t duration_ns,
                 const stats::Snapshot& before) {
  stats::Snapshot after = stats::Snapshot::Take();
  stats::Snapshot delta = after.Delta(before);
  uint64_t idx = g_next_slot.fetch_add(1, std::memory_order_relaxed) % kRingSize;
  Slot& s = g_ring[idx];
  // Odd version = mid-publish; readers discard the slot. Release on the opening
  // bump and acquire-side pairing is unnecessary here — all fields are atomics,
  // so torn *fields* are impossible and a torn *span* (two writers wrapping onto
  // the same slot) is tolerated by design.
  s.version.fetch_add(1, std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.op_id.store(op_id, std::memory_order_relaxed);
  s.depth.store(depth, std::memory_order_relaxed);
  s.start_ns.store(start_ns, std::memory_order_relaxed);
  s.duration_ns.store(duration_ns, std::memory_order_relaxed);
  s.d_traversals.store(delta[stats::Counter::kIndexTraversals],
                       std::memory_order_relaxed);
  s.d_page_reads.store(delta[stats::Counter::kPageReads],
                       std::memory_order_relaxed);
  s.d_pager_hits.store(delta[stats::Counter::kPagerHits],
                       std::memory_order_relaxed);
  s.d_journal_commits.store(delta[stats::Counter::kJournalCommits],
                            std::memory_order_relaxed);
  s.version.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

OpScope::OpScope(const char* name) : name_(name) {
  using internal::g_tls;
  if (g_tls.armed) {
    // Nested operation (SearchText calling Find): record as a child span.
    recording_ = true;
    g_tls.depth++;
    start_ns_ = internal::NowNs();
    before_ = stats::Snapshot::Take();
    return;
  }
  uint32_t every = internal::g_sample_every.load(std::memory_order_relaxed);
  if (every == 0) {
    return;
  }
  if (every > 1 &&
      internal::g_sample_counter.fetch_add(1, std::memory_order_relaxed) %
              every !=
          0) {
    return;
  }
  recording_ = true;
  root_ = true;
  g_tls.armed = true;
  g_tls.op_id = internal::g_op_counter.fetch_add(1, std::memory_order_relaxed);
  g_tls.depth = 0;
  start_ns_ = internal::NowNs();
  before_ = stats::Snapshot::Take();
}

OpScope::~OpScope() {
  using internal::g_tls;
  if (!recording_) {
    return;
  }
  uint64_t dur = internal::NowNs() - start_ns_;
  if (root_) {
    internal::PublishSpan(name_, g_tls.op_id, 0, start_ns_, dur, before_);
    g_tls.armed = false;
    g_tls.depth = 0;
  } else {
    g_tls.depth--;
    internal::PublishSpan(name_, g_tls.op_id, g_tls.depth + 1, start_ns_, dur,
                          before_);
  }
}

std::vector<SpanRecord> DumpRecent(size_t max_spans) {
  using internal::g_ring;
  if (max_spans == 0 || max_spans > kRingSize) {
    max_spans = kRingSize;
  }
  std::vector<SpanRecord> out;
  out.reserve(max_spans);
  uint64_t next = internal::g_next_slot.load(std::memory_order_relaxed);
  // Walk backwards from the most recently claimed slot.
  for (size_t step = 1; step <= kRingSize && out.size() < max_spans; step++) {
    uint64_t pos = next + kRingSize - step;  // next-1, next-2, ... (mod ring)
    internal::Slot& s = g_ring[pos % kRingSize];
    uint64_t v1 = s.version.load(std::memory_order_relaxed);
    if (v1 == 0 || (v1 & 1) != 0) {
      continue;  // Never written, or a writer is mid-publish.
    }
    SpanRecord r;
    const char* name = s.name.load(std::memory_order_relaxed);
    r.name = name ? name : "?";
    r.op_id = s.op_id.load(std::memory_order_relaxed);
    r.depth = s.depth.load(std::memory_order_relaxed);
    r.start_ns = s.start_ns.load(std::memory_order_relaxed);
    r.duration_ns = s.duration_ns.load(std::memory_order_relaxed);
    r.index_traversals = s.d_traversals.load(std::memory_order_relaxed);
    r.page_reads = s.d_page_reads.load(std::memory_order_relaxed);
    r.pager_hits = s.d_pager_hits.load(std::memory_order_relaxed);
    r.journal_commits = s.d_journal_commits.load(std::memory_order_relaxed);
    if (s.version.load(std::memory_order_relaxed) != v1) {
      continue;  // Overwritten while copying.
    }
    out.push_back(std::move(r));
  }
  return out;
}

void ResetRing() {
  for (auto& s : internal::g_ring) {
    s.version.store(0, std::memory_order_relaxed);
    s.name.store(nullptr, std::memory_order_relaxed);
  }
  internal::g_next_slot.store(0, std::memory_order_relaxed);
}

}  // namespace trace
}  // namespace hfad
