// Deterministic xorshift128+ PRNG for tests, benchmarks, and workload generators.
//
// Not cryptographic. Deterministic given a seed so every experiment is reproducible.
#ifndef HFAD_SRC_COMMON_RANDOM_H_
#define HFAD_SRC_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace hfad {

class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to spread the seed across both words.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    for (uint64_t* w : {&s0_, &s1_}) {
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      *w = z ^ (z >> 31);
      z += 0x9e3779b97f4a7c15ull;
    }
    if (s0_ == 0 && s1_ == 0) {
      s0_ = 1;
    }
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  // True with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  // Zipfian-ish skew: smaller values much more likely. max exclusive.
  uint64_t Skewed(uint64_t max_log) { return Uniform(uint64_t{1} << Uniform(max_log + 1)); }

  double NextDouble() { return static_cast<double>(Next() >> 11) / 9007199254740992.0; }

  // Random lowercase ASCII string of length n.
  std::string NextString(size_t n) {
    std::string s(n, 'a');
    for (size_t i = 0; i < n; i++) {
      s[i] = static_cast<char>('a' + Uniform(26));
    }
    return s;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace hfad

#endif  // HFAD_SRC_COMMON_RANDOM_H_
