#include "src/common/status.h"

namespace hfad {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNoSpace:
      return "NoSpace";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kReadOnly:
      return "ReadOnly";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace hfad
