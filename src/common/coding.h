// Little-endian fixed-width and varint encoding used by all on-"disk" structures.
//
// Every persistent structure in hFAD (superblock, btree pages, journal records, postings)
// serializes through these helpers so that layout is uniform and auditable in one place.
#ifndef HFAD_SRC_COMMON_CODING_H_
#define HFAD_SRC_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/common/slice.h"

namespace hfad {

inline void EncodeFixed16(uint8_t* dst, uint16_t v) { memcpy(dst, &v, 2); }
inline void EncodeFixed32(uint8_t* dst, uint32_t v) { memcpy(dst, &v, 4); }
inline void EncodeFixed64(uint8_t* dst, uint64_t v) { memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const uint8_t* src) {
  uint16_t v;
  memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const uint8_t* src) {
  uint32_t v;
  memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const uint8_t* src) {
  uint64_t v;
  memcpy(&v, src, 8);
  return v;
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(reinterpret_cast<uint8_t*>(buf), v);
  dst->append(buf, 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(reinterpret_cast<uint8_t*>(buf), v);
  dst->append(buf, 8);
}

// Varint32/64: LEB128, 1-5 / 1-10 bytes.
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

// Multi-byte varint decode; out-of-line rare path (most persisted lengths fit one byte).
bool GetVarint64Slow(Slice* input, uint64_t* value);

// Returns false if the input is exhausted or malformed. On success advances *input.
// Decode is inline with a one-byte fast path: btree cell parsing decodes a varint per
// key/value and dominates index scans, so the common v < 128 case must not pay a call.
inline bool GetVarint64(Slice* input, uint64_t* value) {
  if (!input->empty()) {
    uint8_t byte = static_cast<uint8_t>((*input)[0]);
    if ((byte & 0x80) == 0) {
      *value = byte;
      input->RemovePrefix(1);
      return true;
    }
  }
  return GetVarint64Slow(input, value);
}

inline bool GetVarint32(Slice* input, uint32_t* value) {
  if (!input->empty()) {
    uint8_t byte = static_cast<uint8_t>((*input)[0]);
    if ((byte & 0x80) == 0) {
      *value = byte;
      input->RemovePrefix(1);
      return true;
    }
  }
  uint64_t v64;
  if (!GetVarint64Slow(input, &v64) || v64 > UINT32_MAX) {
    return false;
  }
  *value = static_cast<uint32_t>(v64);
  return true;
}

// Length-prefixed strings: varint32 length then bytes.
void PutLengthPrefixed(std::string* dst, const Slice& value);
bool GetLengthPrefixed(Slice* input, Slice* result);

// Fixed-width reads with bounds checking; advance *input on success.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

// Number of bytes PutVarint64 would emit.
int VarintLength(uint64_t v);

}  // namespace hfad

#endif  // HFAD_SRC_COMMON_CODING_H_
