// Global instrumentation counters behind the paper's Section 2.3 experiment.
//
// The paper's central quantitative claim is a count: "at a minimum, we encountered four index
// traversals" between a search term and a data block in a hierarchical system. These counters
// let the benchmarks report *index traversals*, *page IOs*, and *lock acquisitions* directly
// instead of inferring them from wall-clock time.
//
// Counters are process-global, thread-safe (relaxed atomics), and cheap enough to stay enabled
// in release builds. Benchmarks snapshot-and-subtract around a measured region.
#ifndef HFAD_SRC_COMMON_STATS_H_
#define HFAD_SRC_COMMON_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace hfad {
namespace stats {

enum class Counter : int {
  kIndexTraversals = 0,  // One complete descent of any index structure (btree, dir, postings).
  kBtreeNodeVisits,      // Individual btree node inspections.
  kPageReads,            // Pager cache misses that hit the device.
  kPageWrites,           // Dirty page write-backs.
  kPagerHits,            // Pager cache hits.
  kLockAcquisitions,     // Directory/structure lock acquisitions.
  kLockContentions,      // Lock acquisitions that had to wait.
  kDirComponentsWalked,  // Path components resolved by hierarchical lookup.
  kExtentsAllocated,
  kExtentsFreed,
  kJournalRecords,
  kJournalBytes,
  kJournalCommits,       // Group-commit batches made durable (one Write+Sync each).
  kDeviceWriteBatches,   // WriteBatch calls served.
  kDeviceBatchRuns,      // Coalesced device writes those batches decomposed into.
  kOsdCloseErrors,       // Osd destructors whose final checkpoint failed.
  kFulltextDocsIndexed,
  kFulltextTermsPosted,
  kChecksumVerifies,       // Page checksum comparisons performed (read path + scrub).
  kChecksumFailures,       // Comparisons that mismatched: latent corruption detected.
  kIoRetries,              // Transient device errors retried by a RetryPolicy.
  kPagerWritebackErrors,   // Async eviction write-backs that failed (sticky per pager).
  kScrubPagesScanned,      // Pages a scrub pass verified against the device.
  kScrubErrorsFound,       // Scrub-detected checksum mismatches.
  kScrubPagesRepaired,     // Mismatched pages rewritten from a clean cached copy.
  kScrubPagesQuarantined,  // Mismatched pages with no clean source; reads now fail loudly.
  kNumCounters,  // Sentinel.
};

constexpr int kNumCounters = static_cast<int>(Counter::kNumCounters);

namespace internal {
// Constant-initialized (no magic-static guard), so the hot-path Add() inlines to a
// single relaxed fetch_add.
inline std::array<std::atomic<uint64_t>, kNumCounters> g_counters{};
}  // namespace internal

// Increment a counter by delta.
inline void Add(Counter c, uint64_t delta = 1) {
  internal::g_counters[static_cast<int>(c)].fetch_add(delta, std::memory_order_relaxed);
}

// Current value.
inline uint64_t Get(Counter c) {
  return internal::g_counters[static_cast<int>(c)].load(std::memory_order_relaxed);
}

// Reset every counter to zero (benchmark setup).
void ResetAll();

// Human-readable name ("index_traversals", ...).
std::string_view CounterName(Counter c);

// A point-in-time copy of all counters; Delta() gives per-region costs.
struct Snapshot {
  uint64_t values[kNumCounters] = {};

  static Snapshot Take();
  // this - earlier, element-wise.
  Snapshot Delta(const Snapshot& earlier) const;
  uint64_t operator[](Counter c) const { return values[static_cast<int>(c)]; }
  std::string ToString() const;
};

}  // namespace stats
}  // namespace hfad

#endif  // HFAD_SRC_COMMON_STATS_H_
