// Slice: a non-owning (pointer, length) view of bytes, with byte-string comparison helpers.
//
// Equivalent in spirit to std::span<const std::byte> but with the string-like operations
// (compare, starts_with, ToString) that the btree and index code need constantly.
#ifndef HFAD_SRC_COMMON_SLICE_H_
#define HFAD_SRC_COMMON_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace hfad {

class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const uint8_t* data, size_t size)
      : data_(reinterpret_cast<const char*>(data)), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}     // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}       // NOLINT
  Slice(const char* cstr) : data_(cstr), size_(cstr ? strlen(cstr) : 0) {}  // NOLINT
  Slice(const std::vector<uint8_t>& v)                                  // NOLINT
      : data_(reinterpret_cast<const char*>(v.data())), size_(v.size()) {}

  const char* data() const { return data_; }
  const uint8_t* udata() const { return reinterpret_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  // Drop the first n bytes (n must be <= size()).
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  // Lexicographic byte comparison: <0, 0, >0 like memcmp.
  int Compare(const Slice& other) const {
    size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : memcmp(data_, other.data_, min_len);
    if (r != 0) {
      return r;
    }
    if (size_ < other.size_) {
      return -1;
    }
    if (size_ > other.size_) {
      return 1;
    }
    return 0;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           (prefix.size_ == 0 || memcmp(data_, prefix.data_, prefix.size_) == 0);
  }

  bool operator==(const Slice& other) const { return Compare(other) == 0; }
  bool operator!=(const Slice& other) const { return Compare(other) != 0; }
  bool operator<(const Slice& other) const { return Compare(other) < 0; }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace hfad

#endif  // HFAD_SRC_COMMON_SLICE_H_
