#include "src/common/crc32.h"

#include <array>
#include <cstring>

namespace hfad {
namespace {

// CRC-32C polynomial (reversed): 0x82f63b78.
constexpr uint32_t kPoly = 0x82f63b78u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int k = 0; k < 8; k++) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

uint32_t ExtendSoftware(uint32_t crc, const uint8_t* p, size_t n) {
  const auto& table = Table();
  for (size_t i = 0; i < n; i++) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HFAD_CRC32C_HW 1

bool HaveSse42() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}

// SSE4.2 CRC32 instruction implements exactly this polynomial. Inline asm
// rather than intrinsics so no file needs -msse4.2 (the runtime check gates
// execution, not compilation). ~8x the table path: the page-verify cost on
// every pager miss and scrub pass is dominated by this loop.
uint32_t ExtendHardware(uint32_t crc, const uint8_t* p, size_t n) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    asm("crc32q %1, %0" : "+r"(c) : "rm"(chunk));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    asm("crc32b %1, %0" : "+r"(c) : "rm"(*p));
    p++;
    n--;
  }
  return static_cast<uint32_t>(c);
}
#endif  // __x86_64__

}  // namespace

uint32_t Crc32cExtend(uint32_t init, Slice data) {
  uint32_t crc = ~init;
#ifdef HFAD_CRC32C_HW
  if (HaveSse42()) {
    return ~ExtendHardware(crc, data.udata(), data.size());
  }
#endif
  return ~ExtendSoftware(crc, data.udata(), data.size());
}

uint32_t Crc32c(Slice data) { return Crc32cExtend(0, data); }

}  // namespace hfad
