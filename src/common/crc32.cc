#include "src/common/crc32.h"

#include <array>

namespace hfad {
namespace {

// CRC-32C polynomial (reversed): 0x82f63b78.
constexpr uint32_t kPoly = 0x82f63b78u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int k = 0; k < 8; k++) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t init, Slice data) {
  const auto& table = Table();
  uint32_t crc = ~init;
  const uint8_t* p = data.udata();
  for (size_t i = 0; i < data.size(); i++) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(Slice data) { return Crc32cExtend(0, data); }

}  // namespace hfad
