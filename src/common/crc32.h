// CRC-32C (Castagnoli) used to validate journal records and on-disk page headers.
#ifndef HFAD_SRC_COMMON_CRC32_H_
#define HFAD_SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

#include "src/common/slice.h"

namespace hfad {

// CRC of data, seeded with init (0 for a fresh computation). Streaming use:
// crc = Crc32c(a); crc = Crc32cExtend(crc, b) == Crc32c(a+b).
uint32_t Crc32c(Slice data);
uint32_t Crc32cExtend(uint32_t init, Slice data);

// Masking (as in LevelDB): CRCs of CRCs are weak; store masked values on disk.
inline uint32_t MaskCrc(uint32_t crc) { return ((crc >> 15) | (crc << 17)) + 0xa282ead8u; }
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace hfad

#endif  // HFAD_SRC_COMMON_CRC32_H_
