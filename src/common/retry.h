// Bounded retry with exponential backoff for transient device errors.
//
// A RetryPolicy is consulted wherever a device IO failure may be transient (a
// flaky cable, a momentarily saturated controller): the pager miss path, the
// journal commit chain, and async write-back completion. Only kIoError is
// treated as retryable — Corruption means the bytes arrived but are wrong
// (retrying re-reads the same wrong bytes from the page cache), NoSpace and
// caller errors are deterministic.
//
// Two consumption modes:
//   - RunWithRetry(): synchronous paths. Sleeps base_backoff * 2^attempt
//     between attempts. Callers must NOT hold stripe locks (or any lock a
//     completion thread could need) across the call.
//   - ShouldRetry(): completion-thread paths (FinishAsyncCommit, pager
//     WritebackDone) where sleeping would stall the IO engine. The caller
//     resubmits immediately and tracks its own attempt count.
#ifndef HFAD_SRC_COMMON_RETRY_H_
#define HFAD_SRC_COMMON_RETRY_H_

#include <chrono>
#include <thread>

#include "src/common/stats.h"
#include "src/common/status.h"

namespace hfad {

struct RetryPolicy {
  // Total tries, including the first. <= 1 disables retry.
  int max_attempts = 3;
  // Sleep before attempt k (k >= 1) is base_backoff << (k - 1).
  std::chrono::microseconds base_backoff{100};

  static RetryPolicy None() { return RetryPolicy{1, std::chrono::microseconds{0}}; }

  bool IsTransient(const Status& s) const { return s.code() == StatusCode::kIoError; }

  // For completion threads: should attempt (attempts_so_far + 1) be made?
  // Bumps kIoRetries when it says yes.
  bool ShouldRetry(const Status& s, int attempts_so_far) const {
    if (!IsTransient(s) || attempts_so_far >= max_attempts) {
      return false;
    }
    stats::Add(stats::Counter::kIoRetries);
    return true;
  }

  // Synchronous helper: run op() up to max_attempts times, sleeping an
  // exponentially growing backoff between transient failures. Returns the
  // first success or the last failure.
  template <typename Op>
  Status RunWithRetry(Op&& op) const {
    Status s = op();
    for (int attempt = 1; attempt < max_attempts && IsTransient(s); attempt++) {
      stats::Add(stats::Counter::kIoRetries);
      if (base_backoff.count() > 0) {
        std::this_thread::sleep_for(base_backoff * (1 << (attempt - 1)));
      }
      s = op();
    }
    return s;
  }
};

}  // namespace hfad

#endif  // HFAD_SRC_COMMON_RETRY_H_
