// Error model for hFAD: Status / Result<T>, no exceptions on hot paths.
//
// Every fallible operation in the library returns either a Status (for operations with no
// payload) or a Result<T> (a value-or-Status union). Codes are deliberately few; the message
// carries detail for humans, the code carries detail for programs.
#ifndef HFAD_SRC_COMMON_STATUS_H_
#define HFAD_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace hfad {

// Machine-readable error category. Keep in sync with StatusCodeName().
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,         // Key, object, path, or term does not exist.
  kAlreadyExists = 2,    // Create collided with an existing entity.
  kInvalidArgument = 3,  // Caller error: bad offset, malformed query, etc.
  kOutOfRange = 4,       // Offset/length beyond the end of an object or device.
  kNoSpace = 5,          // Allocator or device exhausted.
  kCorruption = 6,       // On-disk structure failed validation (bad magic, CRC, ...).
  kNotSupported = 7,     // Operation valid but not implemented for this configuration.
  kBusy = 8,             // Resource locked or has active references.
  kIoError = 9,          // Underlying device failed.
  kInternal = 10,        // Invariant violation inside the library.
  kReadOnly = 11,        // Volume degraded to read-only; mutations rejected, reads still served.
};

// Human-readable name for a code ("NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

// Value-less success/error result. Cheap to copy when OK (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string_view msg) { return Status(StatusCode::kNotFound, msg); }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status OutOfRange(std::string_view msg) { return Status(StatusCode::kOutOfRange, msg); }
  static Status NoSpace(std::string_view msg) { return Status(StatusCode::kNoSpace, msg); }
  static Status Corruption(std::string_view msg) { return Status(StatusCode::kCorruption, msg); }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status Busy(std::string_view msg) { return Status(StatusCode::kBusy, msg); }
  static Status IoError(std::string_view msg) { return Status(StatusCode::kIoError, msg); }
  static Status Internal(std::string_view msg) { return Status(StatusCode::kInternal, msg); }
  static Status ReadOnly(std::string_view msg) { return Status(StatusCode::kReadOnly, msg); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNoSpace() const { return code_ == StatusCode::kNoSpace; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsReadOnly() const { return code_ == StatusCode::kReadOnly; }

  const std::string& message() const { return message_; }

  // "NotFound: no object with oid 17" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg) : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

// Value-or-Status. Access to value() when !ok() asserts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}                     // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {               // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "Result<T> built from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Status of the operation; Status::Ok() when a value is present.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(repr_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

// Propagate errors: RETURN_IF_ERROR(DoThing()).
#define HFAD_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::hfad::Status _s = (expr);           \
    if (!_s.ok()) {                       \
      return _s;                          \
    }                                     \
  } while (0)

// Assign-or-propagate: HFAD_ASSIGN_OR_RETURN(auto v, Compute()).
#define HFAD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

#define HFAD_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define HFAD_ASSIGN_OR_RETURN_NAME(a, b) HFAD_ASSIGN_OR_RETURN_CONCAT(a, b)
#define HFAD_ASSIGN_OR_RETURN(lhs, rexpr) \
  HFAD_ASSIGN_OR_RETURN_IMPL(HFAD_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

}  // namespace hfad

#endif  // HFAD_SRC_COMMON_STATUS_H_
