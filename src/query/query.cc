#include "src/query/query.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <limits>
#include <utility>

#include "src/common/metrics.h"

namespace hfad {
namespace query {

// ---------------------------------------------------------------- AST constructors

std::unique_ptr<Expr> Expr::Term(std::string tag, std::string value) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kTerm;
  e->tag = std::move(tag);
  e->value = std::move(value);
  return e;
}

std::unique_ptr<Expr> Expr::Prefix(std::string tag, std::string value_prefix) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kPrefix;
  e->tag = std::move(tag);
  e->value = std::move(value_prefix);
  return e;
}

std::unique_ptr<Expr> Expr::And(std::vector<std::unique_ptr<Expr>> children) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAnd;
  e->children = std::move(children);
  return e;
}

std::unique_ptr<Expr> Expr::Or(std::vector<std::unique_ptr<Expr>> children) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kOr;
  e->children = std::move(children);
  return e;
}

std::unique_ptr<Expr> Expr::Not(std::unique_ptr<Expr> child) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNot;
  e->children.push_back(std::move(child));
  return e;
}

std::unique_ptr<Expr> Expr::AndTerms(const std::vector<index::TagValue>& terms) {
  std::vector<std::unique_ptr<Expr>> children;
  children.reserve(terms.size());
  for (const index::TagValue& term : terms) {
    children.push_back(Term(term.tag, term.value));
  }
  if (children.size() == 1) {
    return std::move(children[0]);
  }
  return And(std::move(children));
}

// ---------------------------------------------------------------- parser

namespace {

// Nesting bound: recursive descent must not be crashable by adversarial input.
constexpr int kMaxParseDepth = 64;

enum class TokKind { kWord, kColon, kLParen, kRParen, kQuoted, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  size_t pos = 0;  // 0-based byte offset of the token's first character.
};

// 1-based position for error messages.
std::string AtPos(size_t pos) { return " at position " + std::to_string(pos + 1); }

class Lexer {
 public:
  explicit Lexer(Slice text) : text_(text.ToString()) {}

  Result<Token> Next() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
    size_t start = pos_;
    if (pos_ >= text_.size()) {
      return Token{TokKind::kEnd, "", start};
    }
    char c = text_[pos_];
    if (c == ':') {
      pos_++;
      return Token{TokKind::kColon, ":", start};
    }
    if (c == '(') {
      pos_++;
      return Token{TokKind::kLParen, "(", start};
    }
    if (c == ')') {
      pos_++;
      return Token{TokKind::kRParen, ")", start};
    }
    if (c == '"') {
      pos_++;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        out.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated quoted value" + AtPos(start));
      }
      pos_++;  // Closing quote.
      return Token{TokKind::kQuoted, out, start};
    }
    std::string out;
    while (pos_ < text_.size()) {
      char w = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(w)) || w == ':' || w == '(' || w == ')' ||
          w == '"') {
        break;
      }
      out.push_back(w);
      pos_++;
    }
    return Token{TokKind::kWord, out, start};
  }

 private:
  std::string text_;
  size_t pos_ = 0;
};

bool IsKeyword(const Token& t, const char* kw) {
  if (t.kind != TokKind::kWord || t.text.size() != strlen(kw)) {
    return false;
  }
  for (size_t i = 0; i < t.text.size(); i++) {
    if (std::toupper(static_cast<unsigned char>(t.text[i])) != kw[i]) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  explicit Parser(Slice text) : lexer_(text) {}

  Result<std::unique_ptr<Expr>> Parse() {
    HFAD_RETURN_IF_ERROR(Advance());
    if (cur_.kind == TokKind::kEnd) {
      return Status::InvalidArgument("empty query");
    }
    HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseOr());
    if (cur_.kind != TokKind::kEnd) {
      return Status::InvalidArgument("trailing input after query" + AtPos(cur_.pos) +
                                     ": '" + cur_.text + "'");
    }
    return e;
  }

 private:
  Status Advance() {
    HFAD_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::Ok();
  }

  Result<std::unique_ptr<Expr>> ParseOr() {
    if (++depth_ > kMaxParseDepth) {
      return Status::InvalidArgument("query nesting exceeds depth " +
                                     std::to_string(kMaxParseDepth) + AtPos(cur_.pos));
    }
    auto result = ParseOrInner();
    depth_--;
    return result;
  }

  Result<std::unique_ptr<Expr>> ParseOrInner() {
    HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> first, ParseAnd());
    std::vector<std::unique_ptr<Expr>> children;
    children.push_back(std::move(first));
    while (IsKeyword(cur_, "OR")) {
      HFAD_RETURN_IF_ERROR(Advance());
      HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> next, ParseAnd());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) {
      return std::move(children[0]);
    }
    return Expr::Or(std::move(children));
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    std::vector<std::unique_ptr<Expr>> children;
    HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> first, ParseUnary());
    children.push_back(std::move(first));
    for (;;) {
      if (IsKeyword(cur_, "AND")) {
        HFAD_RETURN_IF_ERROR(Advance());
      } else if (cur_.kind == TokKind::kEnd || cur_.kind == TokKind::kRParen ||
                 IsKeyword(cur_, "OR")) {
        break;
      }
      // Implicit AND between adjacent operands.
      HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> next, ParseUnary());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) {
      return std::move(children[0]);
    }
    return Expr::And(std::move(children));
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    // Chained NOTs recurse here without passing through ParseOr, so they need their own
    // depth charge — "NOT NOT NOT ..." must hit the bound, not the process stack.
    if (++depth_ > kMaxParseDepth) {
      return Status::InvalidArgument("query nesting exceeds depth " +
                                     std::to_string(kMaxParseDepth) + AtPos(cur_.pos));
    }
    auto result = ParseUnaryInner();
    depth_--;
    return result;
  }

  Result<std::unique_ptr<Expr>> ParseUnaryInner() {
    if (IsKeyword(cur_, "NOT")) {
      HFAD_RETURN_IF_ERROR(Advance());
      if (cur_.kind == TokKind::kEnd) {
        return Status::InvalidArgument("dangling NOT with no operand" + AtPos(cur_.pos));
      }
      HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseUnary());
      return Expr::Not(std::move(child));
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    if (cur_.kind == TokKind::kLParen) {
      size_t open_pos = cur_.pos;
      HFAD_RETURN_IF_ERROR(Advance());
      if (cur_.kind == TokKind::kRParen) {
        return Status::InvalidArgument("empty parentheses" + AtPos(open_pos));
      }
      HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOr());
      if (cur_.kind != TokKind::kRParen) {
        return Status::InvalidArgument("unclosed '(' opened" + AtPos(open_pos));
      }
      HFAD_RETURN_IF_ERROR(Advance());
      return inner;
    }
    if (cur_.kind == TokKind::kEnd) {
      return Status::InvalidArgument("unexpected end of query (expected a tag:value term)" +
                                     AtPos(cur_.pos));
    }
    if (cur_.kind != TokKind::kWord) {
      return Status::InvalidArgument("expected tag:value term, got '" + cur_.text + "'" +
                                     AtPos(cur_.pos));
    }
    std::string tag = cur_.text;
    HFAD_RETURN_IF_ERROR(Advance());
    if (cur_.kind != TokKind::kColon) {
      return Status::InvalidArgument("expected ':' after tag '" + tag + "'" +
                                     AtPos(cur_.pos));
    }
    size_t value_pos = cur_.pos + 1;
    HFAD_RETURN_IF_ERROR(Advance());
    if (cur_.kind != TokKind::kWord && cur_.kind != TokKind::kQuoted) {
      return Status::InvalidArgument("expected value after '" + tag + ":'" +
                                     AtPos(value_pos));
    }
    if (cur_.kind == TokKind::kQuoted && cur_.text.empty()) {
      return Status::InvalidArgument("empty value for tag '" + tag + "'" +
                                     AtPos(cur_.pos));
    }
    std::string value = cur_.text;
    bool quoted = cur_.kind == TokKind::kQuoted;
    HFAD_RETURN_IF_ERROR(Advance());
    // Unquoted values may themselves contain colons (UDEF:person:grandma): keep
    // absorbing ':'-joined words until whitespace or a structural token.
    while (!quoted && cur_.kind == TokKind::kColon) {
      value.push_back(':');
      HFAD_RETURN_IF_ERROR(Advance());
      if (cur_.kind == TokKind::kWord || cur_.kind == TokKind::kQuoted) {
        value += cur_.text;
        HFAD_RETURN_IF_ERROR(Advance());
      } else {
        break;
      }
    }
    // An unquoted value ending in '*' is a prefix term (quote the value to keep a
    // literal star).
    if (!quoted && !value.empty() && value.back() == '*') {
      value.pop_back();
      return Expr::Prefix(std::move(tag), std::move(value));
    }
    return Expr::Term(std::move(tag), std::move(value));
  }

  Lexer lexer_;
  Token cur_{TokKind::kEnd, "", 0};
  int depth_ = 0;
};

}  // namespace

Result<std::unique_ptr<Expr>> Parse(Slice text) { return Parser(text).Parse(); }

std::string ToString(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kTerm:
      return expr.tag + ":\"" + expr.value + "\"";
    case Expr::Kind::kPrefix:
      return expr.tag + ":" + expr.value + "*";
    case Expr::Kind::kNot:
      return "NOT " + ToString(*expr.children[0]);
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      std::string op = expr.kind == Expr::Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < expr.children.size(); i++) {
        if (i > 0) {
          out += op;
        }
        out += ToString(*expr.children[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

// ---------------------------------------------------------------- planner

namespace {

// Both "couldn't estimate" sentinels (index::kUnknownCardinality and this file's
// kUnknown) sit at ~2^62; anything that large is a sentinel, not a cardinality.
bool EstimateKnown(uint64_t estimate) { return estimate < (uint64_t{1} << 61); }

// Fill op/detail/estimate for one node (children are the caller's job).
void FillNodeShallow(const Expr& expr, const QueryPlanner& planner,
                     index::PlanNode* node) {
  switch (expr.kind) {
    case Expr::Kind::kTerm:
      node->op = "term";
      node->detail = expr.tag + "=" + expr.value;
      break;
    case Expr::Kind::kPrefix:
      node->op = "prefix";
      node->detail = expr.tag + "=" + expr.value + "*";
      break;
    case Expr::Kind::kAnd:
      node->op = "and";
      break;
    case Expr::Kind::kOr:
      node->op = "or";
      break;
    case Expr::Kind::kNot:
      node->op = "not";
      break;
  }
  node->estimate = planner.Estimate(expr);
}

}  // namespace

uint64_t QueryPlanner::Estimate(const Expr& expr) const {
  constexpr uint64_t kUnknown = std::numeric_limits<uint64_t>::max() / 4;
  switch (expr.kind) {
    case Expr::Kind::kTerm: {
      const index::IndexStore* s = indexes_->store(expr.tag);
      if (s == nullptr) {
        return kUnknown;
      }
      auto est = s->EstimateCardinality(expr.value);
      return est.ok() ? *est : kUnknown;
    }
    case Expr::Kind::kPrefix:
      return kUnknown;  // Stores estimate exact values only.
    case Expr::Kind::kAnd: {
      uint64_t best = kUnknown;
      for (const auto& child : expr.children) {
        if (child->kind != Expr::Kind::kNot) {
          best = std::min(best, Estimate(*child));
        }
      }
      return best;
    }
    case Expr::Kind::kOr: {
      uint64_t total = 0;
      for (const auto& child : expr.children) {
        total += Estimate(*child);
      }
      return total;
    }
    case Expr::Kind::kNot:
      return kUnknown;  // Complements are unbounded.
  }
  return kUnknown;
}

Result<std::unique_ptr<index::PostingIterator>> QueryPlanner::PlanAnd(
    const Expr& expr, PlanStats* stats, PlanNode* explain) const {
  // Map each child onto an index::Conjunct — terms stay store+value (probe-eligible,
  // opened on demand), everything else is pre-planned into a sub-iterator — and let the
  // shared conjunction planner (index::BuildConjunction, also behind
  // IndexCollection::OpenLookupIterator) do the ordering and probe degradation.
  std::vector<index::Conjunct> conjuncts;
  conjuncts.reserve(expr.children.size());
  if (explain != nullptr) {
    // Sized once up front: Conjunct::node pointers into this vector must stay
    // valid through the BuildConjunction call below.
    explain->children.resize(expr.children.size());
  }
  for (size_t i = 0; i < expr.children.size(); i++) {
    const Expr* node = expr.children[i].get();
    PlanNode* cnode = explain != nullptr ? &explain->children[i] : nullptr;
    index::Conjunct c;
    if (node->kind == Expr::Kind::kNot) {
      c.negated = true;
      if (cnode != nullptr) {
        FillNodeShallow(*node, *this, cnode);
        cnode->children.resize(1);
      }
      node = node->children[0].get();
    }
    c.estimate = optimize_ ? Estimate(*node) : 0;
    // The node the planner annotates (order, probe degradation) is the conjunct-
    // level one; for a negation the operand's own description nests below it.
    PlanNode* inner = cnode == nullptr ? nullptr
                      : c.negated      ? &cnode->children[0]
                                       : cnode;
    c.node = cnode;
    if (node->kind == Expr::Kind::kTerm) {
      const index::IndexStore* s = indexes_->store(node->tag);
      if (s == nullptr) {
        return Status::NotFound("no index store for tag '" + node->tag + "'");
      }
      c.store = s;
      c.value = node->value;
      if (inner != nullptr) {
        FillNodeShallow(*node, *this, inner);
      }
    } else {
      HFAD_ASSIGN_OR_RETURN(c.iter, Plan(*node, stats, inner));
    }
    conjuncts.push_back(std::move(c));
  }
  return index::BuildConjunction(std::move(conjuncts), optimize_, stats);
}

Result<std::unique_ptr<index::PostingIterator>> QueryPlanner::Plan(
    const Expr& expr, PlanStats* stats, PlanNode* explain) const {
  if (explain != nullptr) {
    FillNodeShallow(expr, *this, explain);
  }
  switch (expr.kind) {
    case Expr::Kind::kTerm: {
      const index::IndexStore* s = indexes_->store(expr.tag);
      if (s == nullptr) {
        return Status::NotFound("no index store for tag '" + expr.tag + "'");
      }
      return s->OpenPostings(expr.value, stats);
    }
    case Expr::Kind::kPrefix: {
      const index::IndexStore* s = indexes_->store(expr.tag);
      if (s == nullptr) {
        return Status::NotFound("no index store for tag '" + expr.tag + "'");
      }
      // Streaming on the standard stores (value discovery + heap merge); plug-in stores
      // fall back to the materializing MakePrefixIterator default.
      return s->OpenPrefixPostings(expr.value, stats);
    }
    case Expr::Kind::kAnd:
      return PlanAnd(expr, stats, explain);
    case Expr::Kind::kOr: {
      std::vector<std::unique_ptr<index::PostingIterator>> children;
      children.reserve(expr.children.size());
      if (explain != nullptr) {
        explain->children.resize(expr.children.size());
      }
      for (size_t i = 0; i < expr.children.size(); i++) {
        HFAD_ASSIGN_OR_RETURN(
            auto it, Plan(*expr.children[i], stats,
                          explain != nullptr ? &explain->children[i] : nullptr));
        children.push_back(std::move(it));
      }
      return std::unique_ptr<index::PostingIterator>(
          std::make_unique<index::OrPostingIterator>(std::move(children), stats));
    }
    case Expr::Kind::kNot:
      return Status::InvalidArgument(
          "negation is only meaningful inside a conjunction (found bare NOT)");
  }
  return Status::Internal("unreachable expression kind");
}

Status QueryPlanner::AnalyzeActuals(const Expr& expr, PlanNode* node) const {
  switch (expr.kind) {
    case Expr::Kind::kTerm:
    case Expr::Kind::kPrefix: {
      const index::IndexStore* s = indexes_->store(expr.tag);
      if (s == nullptr) {
        return Status::NotFound("no index store for tag '" + expr.tag + "'");
      }
      // Count the real postings with a throwaway iterator: these are the extra
      // reads an EXPLAIN pays for "estimated vs. actual".
      HFAD_ASSIGN_OR_RETURN(auto it, expr.kind == Expr::Kind::kTerm
                                         ? s->OpenPostings(expr.value, nullptr)
                                         : s->OpenPrefixPostings(expr.value, nullptr));
      HFAD_ASSIGN_OR_RETURN(std::vector<ObjectId> ids,
                            index::DrainPostings(it.get()));
      node->actual = ids.size();
      return Status::Ok();
    }
    case Expr::Kind::kNot:
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      if (node->children.size() != expr.children.size()) {
        return Status::Internal("EXPLAIN tree does not mirror the expression");
      }
      for (size_t i = 0; i < expr.children.size(); i++) {
        HFAD_RETURN_IF_ERROR(AnalyzeActuals(*expr.children[i], &node->children[i]));
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable expression kind");
}

// ---------------------------------------------------------------- EXPLAIN rendering

namespace {

void AppendNodeText(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.op;
  if (!node.detail.empty()) {
    *out += " ";
    *out += node.detail;
  }
  if (EstimateKnown(node.estimate)) {
    *out += " est=" + std::to_string(node.estimate);
  } else {
    *out += " est=?";
  }
  if (node.actual != PlanNode::kNoActual) {
    *out += " actual=" + std::to_string(node.actual);
  }
  if (node.planner_order >= 0) {
    *out += " order=" + std::to_string(node.planner_order);
    if (node.planner_order == 0) {
      *out += " (driver)";
    }
  }
  if (node.degraded_to_probe) {
    *out += " [probe]";
  }
  if (depth == 0) {
    *out += " | lookups=" + std::to_string(node.stats.index_lookups) +
            " rows=" + std::to_string(node.stats.rows_scanned) +
            " probes=" + std::to_string(node.stats.membership_probes) +
            " pages_read=" + std::to_string(node.pages_read) +
            " traversals=" + std::to_string(node.index_traversals);
    if (node.stats.early_exit) {
      *out += " early_exit";
    }
  }
  *out += "\n";
  for (const PlanNode& child : node.children) {
    AppendNodeText(child, depth + 1, out);
  }
}

void AppendNodeJson(const PlanNode& node, bool root, metrics::JsonWriter* w) {
  w->BeginObject();
  w->Key("op").Value(node.op);
  if (!node.detail.empty()) {
    w->Key("detail").Value(node.detail);
  }
  if (EstimateKnown(node.estimate)) {
    w->Key("estimate").Value(node.estimate);
  } else {
    w->Key("estimate").Value("unknown");
  }
  if (node.actual != PlanNode::kNoActual) {
    w->Key("actual").Value(node.actual);
  }
  if (node.planner_order >= 0) {
    w->Key("planner_order").Value(static_cast<int64_t>(node.planner_order));
  }
  if (node.degraded_to_probe) {
    w->Key("degraded_to_probe").Value(true);
  }
  if (root) {
    w->Key("stats").BeginObject();
    w->Key("index_lookups").Value(node.stats.index_lookups);
    w->Key("rows_scanned").Value(node.stats.rows_scanned);
    w->Key("intermediate_rows").Value(node.stats.intermediate_rows);
    w->Key("membership_probes").Value(node.stats.membership_probes);
    w->Key("early_exit").Value(node.stats.early_exit);
    w->EndObject();
    w->Key("pages_read").Value(node.pages_read);
    w->Key("index_traversals").Value(node.index_traversals);
  }
  if (!node.children.empty()) {
    w->Key("children").BeginArray();
    for (const PlanNode& child : node.children) {
      AppendNodeJson(child, /*root=*/false, w);
    }
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

std::string Explain::ToString() const {
  std::string out;
  if (!planner_optimized) {
    out += "(planner: textual order, probes disabled)\n";
  }
  AppendNodeText(root, 0, &out);
  return out;
}

std::string Explain::ToJson() const {
  metrics::JsonWriter w;
  w.BeginObject();
  w.Key("planner_optimized").Value(planner_optimized);
  w.Key("plan");
  AppendNodeJson(root, /*root=*/true, &w);
  w.EndObject();
  return w.str();
}

// ---------------------------------------------------------------- execution

Result<FindPage> Paginate(index::PostingIterator* it, const FindOptions& options) {
  FindPage page;
  if (options.after == std::numeric_limits<ObjectId>::max()) {
    return page;  // Nothing can follow the maximal oid.
  }
  HFAD_RETURN_IF_ERROR(it->SeekTo(options.after == 0 ? 0 : options.after + 1));
  while (it->Valid()) {
    if (options.limit != 0 && page.ids.size() == options.limit) {
      page.has_more = true;
      page.next_after = page.ids.back();
      break;
    }
    page.ids.push_back(it->Value());
    HFAD_RETURN_IF_ERROR(it->Next());
  }
  return page;
}

Result<std::vector<ObjectId>> QueryEngine::Evaluate(const Expr& expr,
                                                    PlanStats* stats) const {
  HFAD_ASSIGN_OR_RETURN(auto it, planner_.Plan(expr, stats));
  return index::DrainPostings(it.get());
}

Result<std::vector<ObjectId>> QueryEngine::Run(Slice text, PlanStats* stats) const {
  HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr, Parse(text));
  return Evaluate(*expr, stats);
}

}  // namespace query
}  // namespace hfad
