#include "src/query/query.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <limits>
#include <utility>

namespace hfad {
namespace query {

// ---------------------------------------------------------------- AST constructors

std::unique_ptr<Expr> Expr::Term(std::string tag, std::string value) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kTerm;
  e->tag = std::move(tag);
  e->value = std::move(value);
  return e;
}

std::unique_ptr<Expr> Expr::And(std::vector<std::unique_ptr<Expr>> children) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAnd;
  e->children = std::move(children);
  return e;
}

std::unique_ptr<Expr> Expr::Or(std::vector<std::unique_ptr<Expr>> children) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kOr;
  e->children = std::move(children);
  return e;
}

std::unique_ptr<Expr> Expr::Not(std::unique_ptr<Expr> child) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNot;
  e->children.push_back(std::move(child));
  return e;
}

// ---------------------------------------------------------------- parser

namespace {

enum class TokKind { kWord, kColon, kLParen, kRParen, kQuoted, kEnd };

struct Token {
  TokKind kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(Slice text) : text_(text.ToString()) {}

  Result<Token> Next() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
    if (pos_ >= text_.size()) {
      return Token{TokKind::kEnd, ""};
    }
    char c = text_[pos_];
    if (c == ':') {
      pos_++;
      return Token{TokKind::kColon, ":"};
    }
    if (c == '(') {
      pos_++;
      return Token{TokKind::kLParen, "("};
    }
    if (c == ')') {
      pos_++;
      return Token{TokKind::kRParen, ")"};
    }
    if (c == '"') {
      pos_++;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        out.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated quoted value");
      }
      pos_++;  // Closing quote.
      return Token{TokKind::kQuoted, out};
    }
    std::string out;
    while (pos_ < text_.size()) {
      char w = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(w)) || w == ':' || w == '(' || w == ')' ||
          w == '"') {
        break;
      }
      out.push_back(w);
      pos_++;
    }
    return Token{TokKind::kWord, out};
  }

 private:
  std::string text_;
  size_t pos_ = 0;
};

bool IsKeyword(const Token& t, const char* kw) {
  if (t.kind != TokKind::kWord || t.text.size() != strlen(kw)) {
    return false;
  }
  for (size_t i = 0; i < t.text.size(); i++) {
    if (std::toupper(static_cast<unsigned char>(t.text[i])) != kw[i]) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  explicit Parser(Slice text) : lexer_(text) {}

  Result<std::unique_ptr<Expr>> Parse() {
    HFAD_RETURN_IF_ERROR(Advance());
    HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseOr());
    if (cur_.kind != TokKind::kEnd) {
      return Status::InvalidArgument("trailing input after query: '" + cur_.text + "'");
    }
    return e;
  }

 private:
  Status Advance() {
    HFAD_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::Ok();
  }

  Result<std::unique_ptr<Expr>> ParseOr() {
    HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> first, ParseAnd());
    std::vector<std::unique_ptr<Expr>> children;
    children.push_back(std::move(first));
    while (IsKeyword(cur_, "OR")) {
      HFAD_RETURN_IF_ERROR(Advance());
      HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> next, ParseAnd());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) {
      return std::move(children[0]);
    }
    return Expr::Or(std::move(children));
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    std::vector<std::unique_ptr<Expr>> children;
    HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> first, ParseUnary());
    children.push_back(std::move(first));
    for (;;) {
      if (IsKeyword(cur_, "AND")) {
        HFAD_RETURN_IF_ERROR(Advance());
      } else if (cur_.kind == TokKind::kEnd || cur_.kind == TokKind::kRParen ||
                 IsKeyword(cur_, "OR")) {
        break;
      }
      // Implicit AND between adjacent operands.
      HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> next, ParseUnary());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) {
      return std::move(children[0]);
    }
    return Expr::And(std::move(children));
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (IsKeyword(cur_, "NOT")) {
      HFAD_RETURN_IF_ERROR(Advance());
      HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseUnary());
      return Expr::Not(std::move(child));
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    if (cur_.kind == TokKind::kLParen) {
      HFAD_RETURN_IF_ERROR(Advance());
      HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOr());
      if (cur_.kind != TokKind::kRParen) {
        return Status::InvalidArgument("expected ')'");
      }
      HFAD_RETURN_IF_ERROR(Advance());
      return inner;
    }
    if (cur_.kind != TokKind::kWord) {
      return Status::InvalidArgument("expected tag:value term, got '" + cur_.text + "'");
    }
    std::string tag = cur_.text;
    HFAD_RETURN_IF_ERROR(Advance());
    if (cur_.kind != TokKind::kColon) {
      return Status::InvalidArgument("expected ':' after tag '" + tag + "'");
    }
    HFAD_RETURN_IF_ERROR(Advance());
    if (cur_.kind != TokKind::kWord && cur_.kind != TokKind::kQuoted) {
      return Status::InvalidArgument("expected value after '" + tag + ":'");
    }
    std::string value = cur_.text;
    bool quoted = cur_.kind == TokKind::kQuoted;
    HFAD_RETURN_IF_ERROR(Advance());
    // Unquoted values may themselves contain colons (UDEF:person:grandma): keep
    // absorbing ':'-joined words until whitespace or a structural token.
    while (!quoted && cur_.kind == TokKind::kColon) {
      value.push_back(':');
      HFAD_RETURN_IF_ERROR(Advance());
      if (cur_.kind == TokKind::kWord || cur_.kind == TokKind::kQuoted) {
        value += cur_.text;
        HFAD_RETURN_IF_ERROR(Advance());
      } else {
        break;
      }
    }
    return Expr::Term(std::move(tag), std::move(value));
  }

  Lexer lexer_;
  Token cur_{TokKind::kEnd, ""};
};

std::vector<ObjectId> UnionSorted(const std::vector<ObjectId>& a,
                                  const std::vector<ObjectId>& b) {
  std::vector<ObjectId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<ObjectId> DifferenceSorted(const std::vector<ObjectId>& a,
                                       const std::vector<ObjectId>& b) {
  std::vector<ObjectId> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace

Result<std::unique_ptr<Expr>> Parse(Slice text) { return Parser(text).Parse(); }

std::string ToString(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kTerm:
      return expr.tag + ":\"" + expr.value + "\"";
    case Expr::Kind::kNot:
      return "NOT " + ToString(*expr.children[0]);
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      std::string op = expr.kind == Expr::Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < expr.children.size(); i++) {
        if (i > 0) {
          out += op;
        }
        out += ToString(*expr.children[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

// ---------------------------------------------------------------- evaluation

uint64_t QueryEngine::Estimate(const Expr& expr) const {
  constexpr uint64_t kUnknown = std::numeric_limits<uint64_t>::max() / 4;
  switch (expr.kind) {
    case Expr::Kind::kTerm: {
      const index::IndexStore* s = indexes_->store(expr.tag);
      if (s == nullptr) {
        return kUnknown;
      }
      auto est = s->EstimateCardinality(expr.value);
      return est.ok() ? *est : kUnknown;
    }
    case Expr::Kind::kAnd: {
      uint64_t best = kUnknown;
      for (const auto& child : expr.children) {
        if (child->kind != Expr::Kind::kNot) {
          best = std::min(best, Estimate(*child));
        }
      }
      return best;
    }
    case Expr::Kind::kOr: {
      uint64_t total = 0;
      for (const auto& child : expr.children) {
        total += Estimate(*child);
      }
      return total;
    }
    case Expr::Kind::kNot:
      return kUnknown;  // Complements are unbounded.
  }
  return kUnknown;
}

Result<std::vector<ObjectId>> QueryEngine::EvalAnd(const Expr& expr,
                                                   PlanStats* stats) const {
  std::vector<const Expr*> positives;
  std::vector<const Expr*> negatives;
  for (const auto& child : expr.children) {
    if (child->kind == Expr::Kind::kNot) {
      negatives.push_back(child->children[0].get());
    } else {
      positives.push_back(child.get());
    }
  }
  if (positives.empty()) {
    return Status::InvalidArgument(
        "a conjunction needs at least one non-negated term (NOT alone names the "
        "unbounded complement)");
  }
  // The optimizer's whole job (ablated in bench_query_plan): cheapest conjunct first.
  if (optimize_) {
    std::vector<std::pair<uint64_t, const Expr*>> ranked;
    ranked.reserve(positives.size());
    for (const Expr* p : positives) {
      ranked.emplace_back(Estimate(*p), p);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    positives.clear();
    for (const auto& [est, p] : ranked) {
      positives.push_back(p);
    }
  }

  std::vector<ObjectId> result;
  bool first = true;
  for (const Expr* p : positives) {
    if (!first && result.empty()) {
      if (stats != nullptr) {
        stats->early_exit = true;
      }
      return result;  // Empty intersection: skip the remaining (larger) lookups.
    }
    // When the running intersection is already small relative to this conjunct,
    // probing membership per candidate beats materializing the conjunct's postings.
    if (!first && p->kind == Expr::Kind::kTerm && optimize_ &&
        result.size() * 8 < Estimate(*p)) {
      const index::IndexStore* s = indexes_->store(p->tag);
      if (s == nullptr) {
        return Status::NotFound("no index store for tag '" + p->tag + "'");
      }
      std::vector<ObjectId> kept;
      kept.reserve(result.size());
      for (ObjectId oid : result) {
        HFAD_ASSIGN_OR_RETURN(bool has, s->Contains(p->value, oid));
        if (stats != nullptr) {
          stats->membership_probes++;
        }
        if (has) {
          kept.push_back(oid);
        }
      }
      result = std::move(kept);
      if (stats != nullptr) {
        stats->intermediate_rows += result.size();
      }
      continue;
    }
    HFAD_ASSIGN_OR_RETURN(std::vector<ObjectId> ids, EvalNode(*p, stats));
    if (first) {
      result = std::move(ids);
      first = false;
    } else {
      result = index::IntersectSorted(result, ids);
    }
    if (stats != nullptr) {
      stats->intermediate_rows += result.size();
    }
  }
  for (const Expr* n : negatives) {
    if (result.empty()) {
      break;
    }
    HFAD_ASSIGN_OR_RETURN(std::vector<ObjectId> ids, EvalNode(*n, stats));
    result = DifferenceSorted(result, ids);
    if (stats != nullptr) {
      stats->intermediate_rows += result.size();
    }
  }
  return result;
}

Result<std::vector<ObjectId>> QueryEngine::EvalNode(const Expr& expr,
                                                    PlanStats* stats) const {
  switch (expr.kind) {
    case Expr::Kind::kTerm: {
      const index::IndexStore* s = indexes_->store(expr.tag);
      if (s == nullptr) {
        return Status::NotFound("no index store for tag '" + expr.tag + "'");
      }
      HFAD_ASSIGN_OR_RETURN(std::vector<ObjectId> ids, s->Lookup(expr.value));
      if (stats != nullptr) {
        stats->index_lookups++;
        stats->rows_scanned += ids.size();
      }
      return ids;
    }
    case Expr::Kind::kAnd:
      return EvalAnd(expr, stats);
    case Expr::Kind::kOr: {
      std::vector<ObjectId> result;
      for (const auto& child : expr.children) {
        HFAD_ASSIGN_OR_RETURN(std::vector<ObjectId> ids, EvalNode(*child, stats));
        result = UnionSorted(result, ids);
        if (stats != nullptr) {
          stats->intermediate_rows += result.size();
        }
      }
      return result;
    }
    case Expr::Kind::kNot:
      return Status::InvalidArgument(
          "negation is only meaningful inside a conjunction (found bare NOT)");
  }
  return Status::Internal("unreachable expression kind");
}

Result<std::vector<ObjectId>> QueryEngine::Evaluate(const Expr& expr,
                                                    PlanStats* stats) const {
  return EvalNode(expr, stats);
}

Result<std::vector<ObjectId>> QueryEngine::Run(Slice text, PlanStats* stats) const {
  HFAD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr, Parse(text));
  return Evaluate(*expr, stats);
}

}  // namespace query
}  // namespace hfad
