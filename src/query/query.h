// The unified naming query core — the paper's §3.1 claim ("all naming is one search
// interface over the same index stores") as an API: a query AST, a cost-based planner,
// and pull-based execution with pagination. Every naming entry point (tag lookup,
// boolean query, ranked search candidates, POSIX directory enumeration) compiles to an
// Expr and executes through QueryPlanner as a tree of seekable posting iterators; the
// paper's open question #3 ("should they include full-fledged query optimizers?") is
// answered with a deliberately bounded design:
//
//   * arbitrary AND / OR / NOT expressions over tag:value terms, with parentheses, plus
//     tag:prefix* terms (a value-prefix match — what directory enumeration compiles to);
//   * a selectivity-based planner that orders conjuncts by ascending estimated
//     cardinality (the index stores' cardinality caches make the estimate O(1) warm):
//     the cheapest conjunct drives a leapfrog intersection, conjuncts that dwarf the
//     driver degrade to per-candidate membership probes, and an empty driver ends the
//     query before the expensive terms are ever opened;
//   * pull execution: plans run as index::PostingIterator trees, so `limit`/`after`
//     pagination (FindOptions) costs O(page), not O(result set);
//   * no cost-based join planning — index stores expose only a cardinality estimate, and
//     the engine stays a thin client above them, which is the paper's layering.
//
// Query syntax:   UDEF:vacation AND USER:margo AND NOT UDEF:work
//                 FULLTEXT:report (FULLTEXT:2009 OR FULLTEXT:2008)
//                 POSIX:/home/margo/* AND UDEF:draft
// Adjacent terms are implicitly conjoined. Values with spaces use double quotes:
// POSIX:"/home/m/my file.txt" (quoting keeps a trailing '*' literal). NOT binds tighter
// than AND, AND tighter than OR. Negation is only meaningful inside a conjunction (NOT x
// alone would name the unbounded complement), so a NOT without positive siblings is
// rejected. Malformed input fails with Status::InvalidArgument carrying the 1-based
// position of the offending token.
#ifndef HFAD_SRC_QUERY_QUERY_H_
#define HFAD_SRC_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/index/index_store.h"
#include "src/index/posting_iterator.h"

namespace hfad {
namespace query {

using index::ObjectId;

// Work counters filled by execution (bench/ablation support); defined next to the
// iterators that fill it.
using PlanStats = index::PlanStats;

// The EXPLAIN plan tree (one node per Expr node); defined next to the conjunction
// planner that annotates it.
using PlanNode = index::PlanNode;

// Structured EXPLAIN for one Find call: the planner's term ordering and probe-
// degradation decisions, per-term estimated vs. actual cardinalities (actuals are
// measured post-execution with extra index reads — EXPLAIN ANALYZE pricing), and
// whole-plan execution stats plus pages-read / index-traversal counter deltas on
// the root. Request one via FindOptions::explain.
struct Explain {
  PlanNode root;
  bool planner_optimized = true;  // False under the ablation (optimize=false) planner.

  // Indented one-line-per-node tree for logs and tests.
  std::string ToString() const;
  // Nested JSON (schema in docs/OBSERVABILITY.md).
  std::string ToJson() const;
};

// Expression tree. Terms carry tag/value (kPrefix: value is a prefix to match); And/Or
// carry children; Not carries exactly one.
struct Expr {
  enum class Kind { kTerm, kPrefix, kAnd, kOr, kNot };

  Kind kind = Kind::kTerm;
  std::string tag;    // kTerm / kPrefix only.
  std::string value;  // kTerm / kPrefix only.
  std::vector<std::unique_ptr<Expr>> children;

  static std::unique_ptr<Expr> Term(std::string tag, std::string value);
  // Matches every object whose `tag` value starts with `value_prefix` (the query-syntax
  // form is an unquoted value ending in '*').
  static std::unique_ptr<Expr> Prefix(std::string tag, std::string value_prefix);
  static std::unique_ptr<Expr> And(std::vector<std::unique_ptr<Expr>> children);
  static std::unique_ptr<Expr> Or(std::vector<std::unique_ptr<Expr>> children);
  static std::unique_ptr<Expr> Not(std::unique_ptr<Expr> child);

  // A conjunction of plain terms — the shape FileSystem::Lookup compiles to.
  static std::unique_ptr<Expr> AndTerms(const std::vector<index::TagValue>& terms);
};

// Parse the query syntax described above. Malformed input (unbalanced parentheses,
// dangling AND/OR/NOT, missing or empty values, nesting deeper than 64) returns
// InvalidArgument with the 1-based character position of the problem.
Result<std::unique_ptr<Expr>> Parse(Slice text);

// Canonical text form (parenthesized), for tests and debugging.
std::string ToString(const Expr& expr);

// Read-visibility contract for one Find call under lazy background indexing (see
// docs/API.md). With inline indexing the two modes are indistinguishable.
enum class Visibility {
  // Wait until the background indexer has applied every tag intent enqueued before the
  // call for the tags this query touches (the per-tag applied-sequence horizon), then
  // execute. Every previously acknowledged mutation is visible.
  kStrict,
  // Execute against the postings as they are right now. Acknowledged-but-unapplied tag
  // mutations may be missing; no waiting, the ingest-side win of lazy indexing.
  kRelaxed,
};

// Pagination and accounting for one Find/Evaluate call.
struct FindOptions {
  // Maximum ids returned; 0 means unlimited.
  size_t limit = 0;
  // Resume strictly after this oid (pass the previous page's next_after). 0 starts at
  // the beginning. Pages are stable under concurrent mutation in the sense that the
  // sequence of pages never repeats or reorders an oid; objects mutated between pages
  // may appear in neither or exactly one page.
  ObjectId after = 0;
  // Optional work counters, filled during execution.
  PlanStats* stats = nullptr;
  // Index visibility under lazy background indexing; ignored (always effectively
  // strict) when the filesystem indexes inline.
  Visibility visibility = Visibility::kStrict;
  // When set, Find fills a structured EXPLAIN of the executed plan. Costs extra
  // index reads after execution (actual cardinalities); leave null on hot paths.
  Explain* explain = nullptr;
};

// One page of results (ascending oid).
struct FindPage {
  std::vector<ObjectId> ids;
  bool has_more = false;     // More results exist past this page.
  ObjectId next_after = 0;   // Pass as FindOptions::after to continue; set when
                             // has_more (equals ids.back()).
};

// Pull one page out of a planned iterator (SeekTo(after+1), then at most `limit` ids).
Result<FindPage> Paginate(index::PostingIterator* it, const FindOptions& options);

// Compiles expressions into posting-iterator trees. Stateless apart from the two
// configuration members; cheap to construct per query.
class QueryPlanner {
 public:
  // With optimize = false conjuncts run in textual order and never degrade to
  // membership probes (the ablation baseline).
  explicit QueryPlanner(const index::IndexCollection* indexes, bool optimize = true)
      : indexes_(indexes), optimize_(optimize) {}

  // Compile `expr` into an unpositioned iterator (SeekTo before use). The iterator
  // borrows the index collection and `stats`; both must outlive it. With `explain`
  // set, a PlanNode tree mirroring `expr` is built under it and annotated with the
  // planner's estimates, ordering, and probe decisions (the node must outlive the
  // BuildConjunction call, not the iterator).
  Result<std::unique_ptr<index::PostingIterator>> Plan(const Expr& expr,
                                                       PlanStats* stats = nullptr,
                                                       PlanNode* explain = nullptr) const;

  // Cheap upper-bound cardinality estimate used to order conjuncts.
  uint64_t Estimate(const Expr& expr) const;

  // Fill PlanNode::actual for every term/prefix node under `node` by counting the
  // real postings (extra index reads — the EXPLAIN ANALYZE price). `node` must have
  // been built by Plan(expr, ..., explain) for the same expression.
  Status AnalyzeActuals(const Expr& expr, PlanNode* node) const;

 private:
  Result<std::unique_ptr<index::PostingIterator>> PlanAnd(const Expr& expr,
                                                          PlanStats* stats,
                                                          PlanNode* explain) const;

  const index::IndexCollection* const indexes_;
  const bool optimize_;
};

// Parse/evaluate facade over the planner (the legacy boolean-query entry point; results
// fully materialized).
class QueryEngine {
 public:
  explicit QueryEngine(const index::IndexCollection* indexes, bool optimize = true)
      : planner_(indexes, optimize) {}

  // Evaluate an expression; results ascending by oid.
  Result<std::vector<ObjectId>> Evaluate(const Expr& expr, PlanStats* stats = nullptr) const;

  // Parse + evaluate.
  Result<std::vector<ObjectId>> Run(Slice text, PlanStats* stats = nullptr) const;

  const QueryPlanner& planner() const { return planner_; }

 private:
  const QueryPlanner planner_;
};

}  // namespace query
}  // namespace hfad

#endif  // HFAD_SRC_QUERY_QUERY_H_
