// Boolean query engine over the index stores — the paper's open question #3 ("should
// they support arbitrary boolean queries? Should they include full-fledged query
// optimizers?") answered with a deliberately bounded design:
//
//   * arbitrary AND / OR / NOT expressions over tag:value terms, with parentheses;
//   * a selectivity-based optimizer that evaluates conjuncts in ascending estimated
//     cardinality (cheapest index first, early exit on an empty intersection);
//   * no cost-based join planning — index stores expose only a cardinality estimate, and
//     the engine stays a thin client above them, which is the paper's layering.
//
// Query syntax:   UDEF:vacation AND USER:margo AND NOT UDEF:work
//                 FULLTEXT:report (FULLTEXT:2009 OR FULLTEXT:2008)
// Adjacent terms are implicitly conjoined. Values with spaces use double quotes:
// POSIX:"/home/m/my file.txt". NOT binds tighter than AND, AND tighter than OR. Negation
// is only meaningful inside a conjunction (NOT x alone would name the unbounded
// complement), so a NOT without positive siblings is rejected.
#ifndef HFAD_SRC_QUERY_QUERY_H_
#define HFAD_SRC_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/index/index_store.h"

namespace hfad {
namespace query {

using index::ObjectId;

// Expression tree. Terms carry tag/value; And/Or carry children; Not carries exactly one.
struct Expr {
  enum class Kind { kTerm, kAnd, kOr, kNot };

  Kind kind = Kind::kTerm;
  std::string tag;    // kTerm only.
  std::string value;  // kTerm only.
  std::vector<std::unique_ptr<Expr>> children;

  static std::unique_ptr<Expr> Term(std::string tag, std::string value);
  static std::unique_ptr<Expr> And(std::vector<std::unique_ptr<Expr>> children);
  static std::unique_ptr<Expr> Or(std::vector<std::unique_ptr<Expr>> children);
  static std::unique_ptr<Expr> Not(std::unique_ptr<Expr> child);
};

// Parse the query syntax described above.
Result<std::unique_ptr<Expr>> Parse(Slice text);

// Canonical text form (parenthesized), for tests and debugging.
std::string ToString(const Expr& expr);

// Work counters filled by Evaluate (bench/ablation support).
struct PlanStats {
  uint64_t index_lookups = 0;        // IndexStore::Lookup calls issued.
  uint64_t rows_scanned = 0;         // Total ids returned by those lookups.
  uint64_t intermediate_rows = 0;    // Sum of intersection/union result sizes.
  uint64_t membership_probes = 0;    // Point Contains() probes in place of full lookups.
  bool early_exit = false;           // A conjunction emptied before all terms ran.
};

class QueryEngine {
 public:
  // With optimize = false conjuncts run in textual order (the ablation baseline).
  explicit QueryEngine(const index::IndexCollection* indexes, bool optimize = true)
      : indexes_(indexes), optimize_(optimize) {}

  // Evaluate an expression; results ascending by oid.
  Result<std::vector<ObjectId>> Evaluate(const Expr& expr, PlanStats* stats = nullptr) const;

  // Parse + evaluate.
  Result<std::vector<ObjectId>> Run(Slice text, PlanStats* stats = nullptr) const;

 private:
  Result<std::vector<ObjectId>> EvalNode(const Expr& expr, PlanStats* stats) const;
  Result<std::vector<ObjectId>> EvalAnd(const Expr& expr, PlanStats* stats) const;
  // Cheap upper-bound estimate used to order conjuncts.
  uint64_t Estimate(const Expr& expr) const;

  const index::IndexCollection* const indexes_;
  const bool optimize_;
};

}  // namespace query
}  // namespace hfad

#endif  // HFAD_SRC_QUERY_QUERY_H_
