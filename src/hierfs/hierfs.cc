#include "src/hierfs/hierfs.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/coding.h"
#include "src/common/stats.h"
#include "src/extent/extent_tree.h"

namespace hfad {
namespace hierfs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::system_clock::now().time_since_epoch())
                                   .count());
}

std::string InoKey(Ino ino) {
  std::string key(8, '\0');
  for (int i = 7; i >= 0; i--) {
    key[i] = static_cast<char>(ino & 0xff);
    ino >>= 8;
  }
  return key;
}

std::string EncodeInode(const Inode& inode) {
  std::string out;
  PutVarint32(&out, inode.mode);
  PutVarint32(&out, inode.uid);
  PutVarint32(&out, inode.gid);
  PutVarint32(&out, inode.nlink);
  PutVarint64(&out, inode.size);
  PutFixed64(&out, inode.mtime_ns);
  PutFixed64(&out, inode.data_root);
  return out;
}

Result<Inode> DecodeInode(Slice in) {
  Inode inode;
  if (!GetVarint32(&in, &inode.mode) || !GetVarint32(&in, &inode.uid) ||
      !GetVarint32(&in, &inode.gid) || !GetVarint32(&in, &inode.nlink) ||
      !GetVarint64(&in, &inode.size) || !GetFixed64(&in, &inode.mtime_ns) ||
      !GetFixed64(&in, &inode.data_root)) {
    return Status::Corruption("undecodable inode");
  }
  return inode;
}

// Split a normalized absolute path into components.
Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: '" + path + "'");
  }
  std::vector<std::string> components;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      i++;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      i++;
    }
    if (i > start) {
      std::string c = path.substr(start, i - start);
      if (c == "." || c == "..") {
        return Status::InvalidArgument("'.' and '..' are not supported");
      }
      components.push_back(std::move(c));
    }
  }
  return components;
}

}  // namespace

// ---------------------------------------------------------------- construction

HierFs::HierFs(std::shared_ptr<BlockDevice> device, Superblock sb)
    : device_(std::move(device)), sb_(sb) {}

void HierFs::InitStructures() {
  allocator_ = std::make_unique<BuddyAllocator>(sb_.heap_offset, sb_.heap_size);
  pager_ = std::make_unique<Pager>(device_.get(), 4096);
  inode_table_ =
      std::make_unique<btree::BTree>(pager_.get(), allocator_.get(), sb_.object_table_root);
  next_ino_.store(sb_.next_oid);
}

Result<std::unique_ptr<HierFs>> HierFs::Create(std::shared_ptr<BlockDevice> device) {
  const uint64_t dev_size = device->Size();
  uint64_t alloc_area = 1024 * 1024;
  uint64_t heap_offset = Superblock::kSuperblockSize + alloc_area;
  uint64_t heap_size = kPageSize;
  while (heap_offset + heap_size * 2 <= dev_size) {
    heap_size *= 2;
  }
  if (heap_size < 16 * kPageSize) {
    return Status::InvalidArgument("device too small for a hierfs volume");
  }
  Superblock sb;
  sb.device_size = dev_size;
  sb.alloc_area_offset = Superblock::kSuperblockSize;
  sb.alloc_area_size = alloc_area;
  sb.journal_offset = 0;
  sb.journal_size = 0;
  sb.heap_offset = heap_offset;
  sb.heap_size = heap_size;
  sb.next_oid = kRootIno + 1;

  std::unique_ptr<HierFs> fs(new HierFs(std::move(device), sb));
  fs->InitStructures();
  Inode root;
  root.mode = kModeDir | 0755;
  root.nlink = 2;
  root.mtime_ns = NowNs();
  HFAD_RETURN_IF_ERROR(fs->inode_table_->Put(InoKey(kRootIno), EncodeInode(root)));
  HFAD_RETURN_IF_ERROR(fs->Flush());
  return fs;
}

Result<std::unique_ptr<HierFs>> HierFs::Open(std::shared_ptr<BlockDevice> device) {
  std::string buf;
  HFAD_RETURN_IF_ERROR(device->Read(0, Superblock::kSuperblockSize, &buf));
  HFAD_ASSIGN_OR_RETURN(Superblock sb, Superblock::Decode(buf));
  std::unique_ptr<HierFs> fs(new HierFs(std::move(device), sb));
  fs->InitStructures();
  if (sb.alloc_snapshot_size > 0) {
    std::string snap;
    HFAD_RETURN_IF_ERROR(fs->device_->Read(sb.alloc_area_offset, sb.alloc_snapshot_size,
                                           &snap));
    HFAD_RETURN_IF_ERROR(fs->allocator_->Deserialize(snap));
  }
  return fs;
}

Status HierFs::Flush() {
  std::string snap = allocator_->Serialize();
  if (snap.size() > sb_.alloc_area_size) {
    return Status::Internal("allocator snapshot exceeds area");
  }
  HFAD_RETURN_IF_ERROR(pager_->Flush());
  HFAD_RETURN_IF_ERROR(device_->Write(sb_.alloc_area_offset, Slice(snap)));
  sb_.alloc_snapshot_size = snap.size();
  sb_.object_table_root = inode_table_->root();
  sb_.next_oid = next_ino_.load();
  HFAD_RETURN_IF_ERROR(device_->Write(0, sb_.Encode()));
  return device_->Sync();
}

// ---------------------------------------------------------------- inode helpers

Result<Inode> HierFs::GetInode(Ino ino) const {
  HFAD_ASSIGN_OR_RETURN(std::string raw, inode_table_->Get(InoKey(ino)));
  return DecodeInode(raw);
}

Status HierFs::PutInode(Ino ino, const Inode& inode) {
  return inode_table_->Put(InoKey(ino), EncodeInode(inode));
}

std::shared_mutex* HierFs::DirLock(Ino ino) const {
  std::lock_guard<std::mutex> lock(lock_table_mu_);
  auto& entry = lock_table_[ino];
  if (entry == nullptr) {
    entry = std::make_unique<std::shared_mutex>();
  }
  return entry.get();
}

Result<Ino> HierFs::DirLookup(const Inode& dir, Slice name) const {
  btree::BTree entries(pager_.get(), allocator_.get(), dir.data_root);
  HFAD_ASSIGN_OR_RETURN(std::string raw, entries.Get(name));
  Slice in(raw);
  uint64_t ino;
  if (!GetVarint64(&in, &ino)) {
    return Status::Corruption("bad directory entry");
  }
  return ino;
}

// ---------------------------------------------------------------- path walk

Result<Ino> HierFs::ResolvePath(const std::string& path) const {
  HFAD_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  Ino cur = kRootIno;
  for (const std::string& component : components) {
    // §2.3: every lookup under /home/nick and /home/margo alike synchronizes through
    // the shared ancestors' locks.
    std::shared_mutex* lock = DirLock(cur);
    stats::Add(stats::Counter::kLockAcquisitions);
    if (!lock->try_lock_shared()) {
      stats::Add(stats::Counter::kLockContentions);
      lock->lock_shared();
    }
    std::shared_lock<std::shared_mutex> guard(*lock, std::adopt_lock);
    HFAD_ASSIGN_OR_RETURN(Inode dir, GetInode(cur));
    if (!dir.is_dir()) {
      return Status::InvalidArgument("not a directory on path: " + path);
    }
    stats::Add(stats::Counter::kDirComponentsWalked);
    HFAD_ASSIGN_OR_RETURN(cur, DirLookup(dir, component));
  }
  return cur;
}

Result<std::pair<Ino, std::string>> HierFs::WalkToParent(const std::string& path) const {
  HFAD_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  if (components.empty()) {
    return Status::InvalidArgument("the root has no parent");
  }
  std::string leaf = components.back();
  std::string parent = "/";
  for (size_t i = 0; i + 1 < components.size(); i++) {
    parent += components[i];
    if (i + 2 < components.size()) {
      parent += "/";
    }
  }
  HFAD_ASSIGN_OR_RETURN(Ino parent_ino, ResolvePath(parent));
  return std::pair<Ino, std::string>{parent_ino, leaf};
}

// ---------------------------------------------------------------- namespace ops

Status HierFs::Mkdir(const std::string& path, uint32_t mode) {
  HFAD_ASSIGN_OR_RETURN(auto parent_leaf, WalkToParent(path));
  auto [parent_ino, name] = parent_leaf;

  std::shared_mutex* lock = DirLock(parent_ino);
  stats::Add(stats::Counter::kLockAcquisitions);
  if (!lock->try_lock()) {
    stats::Add(stats::Counter::kLockContentions);
    lock->lock();
  }
  std::unique_lock<std::shared_mutex> guard(*lock, std::adopt_lock);

  HFAD_ASSIGN_OR_RETURN(Inode parent, GetInode(parent_ino));
  if (!parent.is_dir()) {
    return Status::InvalidArgument("parent is not a directory");
  }
  btree::BTree entries(pager_.get(), allocator_.get(), parent.data_root);
  if (entries.Contains(name)) {
    return Status::AlreadyExists(path);
  }
  Ino ino = next_ino_.fetch_add(1);
  Inode dir;
  dir.mode = kModeDir | (mode & 0777);
  dir.nlink = 2;
  dir.mtime_ns = NowNs();
  {
    std::lock_guard<std::mutex> ilock(inode_mu_);
    HFAD_RETURN_IF_ERROR(PutInode(ino, dir));
  }
  std::string value;
  PutVarint64(&value, ino);
  HFAD_RETURN_IF_ERROR(entries.Put(name, value));
  if (entries.root() != parent.data_root) {
    parent.data_root = entries.root();
  }
  parent.mtime_ns = NowNs();
  std::lock_guard<std::mutex> ilock(inode_mu_);
  return PutInode(parent_ino, parent);
}

Result<Ino> HierFs::CreateFile(const std::string& path, uint32_t mode) {
  HFAD_ASSIGN_OR_RETURN(auto parent_leaf, WalkToParent(path));
  auto [parent_ino, name] = parent_leaf;

  std::shared_mutex* lock = DirLock(parent_ino);
  stats::Add(stats::Counter::kLockAcquisitions);
  if (!lock->try_lock()) {
    stats::Add(stats::Counter::kLockContentions);
    lock->lock();
  }
  std::unique_lock<std::shared_mutex> guard(*lock, std::adopt_lock);

  HFAD_ASSIGN_OR_RETURN(Inode parent, GetInode(parent_ino));
  if (!parent.is_dir()) {
    return Status::InvalidArgument("parent is not a directory");
  }
  btree::BTree entries(pager_.get(), allocator_.get(), parent.data_root);
  if (entries.Contains(name)) {
    return Status::AlreadyExists(path);
  }
  Ino ino = next_ino_.fetch_add(1);
  Inode file;
  file.mode = mode & ~kModeDir;
  file.mtime_ns = NowNs();
  {
    std::lock_guard<std::mutex> ilock(inode_mu_);
    HFAD_RETURN_IF_ERROR(PutInode(ino, file));
  }
  std::string value;
  PutVarint64(&value, ino);
  HFAD_RETURN_IF_ERROR(entries.Put(name, value));
  parent.data_root = entries.root();
  parent.mtime_ns = NowNs();
  std::lock_guard<std::mutex> ilock(inode_mu_);
  HFAD_RETURN_IF_ERROR(PutInode(parent_ino, parent));
  return ino;
}

Status HierFs::Unlink(const std::string& path) {
  HFAD_ASSIGN_OR_RETURN(auto parent_leaf, WalkToParent(path));
  auto [parent_ino, name] = parent_leaf;

  std::shared_mutex* lock = DirLock(parent_ino);
  stats::Add(stats::Counter::kLockAcquisitions);
  if (!lock->try_lock()) {
    stats::Add(stats::Counter::kLockContentions);
    lock->lock();
  }
  std::unique_lock<std::shared_mutex> guard(*lock, std::adopt_lock);

  HFAD_ASSIGN_OR_RETURN(Inode parent, GetInode(parent_ino));
  btree::BTree entries(pager_.get(), allocator_.get(), parent.data_root);
  HFAD_ASSIGN_OR_RETURN(Ino ino, DirLookup(parent, name));
  HFAD_ASSIGN_OR_RETURN(Inode inode, GetInode(ino));
  if (inode.is_dir()) {
    return Status::InvalidArgument("is a directory: " + path);
  }
  HFAD_RETURN_IF_ERROR(entries.Delete(name));
  parent.data_root = entries.root();
  parent.mtime_ns = NowNs();
  std::lock_guard<std::mutex> ilock(inode_mu_);
  HFAD_RETURN_IF_ERROR(PutInode(parent_ino, parent));
  if (inode.nlink <= 1) {
    extent::ExtentTree data(pager_.get(), allocator_.get(), inode.data_root);
    HFAD_RETURN_IF_ERROR(data.Clear());
    return inode_table_->Delete(InoKey(ino));
  }
  inode.nlink--;
  return PutInode(ino, inode);
}

Status HierFs::Rmdir(const std::string& path) {
  HFAD_ASSIGN_OR_RETURN(auto parent_leaf, WalkToParent(path));
  auto [parent_ino, name] = parent_leaf;

  std::shared_mutex* lock = DirLock(parent_ino);
  stats::Add(stats::Counter::kLockAcquisitions);
  std::unique_lock<std::shared_mutex> guard(*lock);

  HFAD_ASSIGN_OR_RETURN(Inode parent, GetInode(parent_ino));
  btree::BTree entries(pager_.get(), allocator_.get(), parent.data_root);
  HFAD_ASSIGN_OR_RETURN(Ino ino, DirLookup(parent, name));
  HFAD_ASSIGN_OR_RETURN(Inode dir, GetInode(ino));
  if (!dir.is_dir()) {
    return Status::InvalidArgument("not a directory: " + path);
  }
  btree::BTree children(pager_.get(), allocator_.get(), dir.data_root);
  if (children.Count() != 0) {
    return Status::Busy("directory not empty: " + path);
  }
  HFAD_RETURN_IF_ERROR(children.Clear());
  HFAD_RETURN_IF_ERROR(entries.Delete(name));
  parent.data_root = entries.root();
  parent.mtime_ns = NowNs();
  std::lock_guard<std::mutex> ilock(inode_mu_);
  HFAD_RETURN_IF_ERROR(PutInode(parent_ino, parent));
  return inode_table_->Delete(InoKey(ino));
}

Status HierFs::Link(const std::string& existing, const std::string& link_path) {
  HFAD_ASSIGN_OR_RETURN(Ino ino, ResolvePath(existing));
  HFAD_ASSIGN_OR_RETURN(Inode inode, GetInode(ino));
  if (inode.is_dir()) {
    return Status::InvalidArgument("hard links to directories are not allowed");
  }
  HFAD_ASSIGN_OR_RETURN(auto parent_leaf, WalkToParent(link_path));
  auto [parent_ino, name] = parent_leaf;

  std::shared_mutex* lock = DirLock(parent_ino);
  stats::Add(stats::Counter::kLockAcquisitions);
  std::unique_lock<std::shared_mutex> guard(*lock);

  HFAD_ASSIGN_OR_RETURN(Inode parent, GetInode(parent_ino));
  btree::BTree entries(pager_.get(), allocator_.get(), parent.data_root);
  if (entries.Contains(name)) {
    return Status::AlreadyExists(link_path);
  }
  std::string value;
  PutVarint64(&value, ino);
  HFAD_RETURN_IF_ERROR(entries.Put(name, value));
  parent.data_root = entries.root();
  std::lock_guard<std::mutex> ilock(inode_mu_);
  HFAD_RETURN_IF_ERROR(PutInode(parent_ino, parent));
  inode.nlink++;
  return PutInode(ino, inode);
}

Status HierFs::Rename(const std::string& from, const std::string& to) {
  HFAD_ASSIGN_OR_RETURN(auto src_pl, WalkToParent(from));
  HFAD_ASSIGN_OR_RETURN(auto dst_pl, WalkToParent(to));
  auto [src_parent, src_name] = src_pl;
  auto [dst_parent, dst_name] = dst_pl;

  // Lock parents in ino order to avoid deadlock.
  std::shared_mutex* first = DirLock(std::min(src_parent, dst_parent));
  std::shared_mutex* second = DirLock(std::max(src_parent, dst_parent));
  stats::Add(stats::Counter::kLockAcquisitions, src_parent == dst_parent ? 1 : 2);
  std::unique_lock<std::shared_mutex> g1(*first);
  std::unique_lock<std::shared_mutex> g2;
  if (second != first) {
    g2 = std::unique_lock<std::shared_mutex>(*second);
  }

  HFAD_ASSIGN_OR_RETURN(Inode sparent, GetInode(src_parent));
  btree::BTree src_entries(pager_.get(), allocator_.get(), sparent.data_root);
  HFAD_ASSIGN_OR_RETURN(Ino ino, DirLookup(sparent, src_name));

  HFAD_ASSIGN_OR_RETURN(Inode dparent, GetInode(dst_parent));
  btree::BTree dst_entries_same(pager_.get(), allocator_.get(), dparent.data_root);
  btree::BTree* dst_entries = src_parent == dst_parent ? &src_entries : &dst_entries_same;
  if (dst_entries->Contains(dst_name)) {
    return Status::AlreadyExists(to);
  }
  std::string value;
  PutVarint64(&value, ino);
  HFAD_RETURN_IF_ERROR(dst_entries->Put(dst_name, value));
  HFAD_RETURN_IF_ERROR(src_entries.Delete(src_name));

  std::lock_guard<std::mutex> ilock(inode_mu_);
  if (src_parent == dst_parent) {
    sparent.data_root = src_entries.root();
    sparent.mtime_ns = NowNs();
    return PutInode(src_parent, sparent);
  }
  sparent.data_root = src_entries.root();
  sparent.mtime_ns = NowNs();
  HFAD_RETURN_IF_ERROR(PutInode(src_parent, sparent));
  dparent.data_root = dst_entries->root();
  dparent.mtime_ns = NowNs();
  return PutInode(dst_parent, dparent);
}

Result<std::vector<DirEntry>> HierFs::Readdir(const std::string& path) const {
  return ReaddirPage(path, 0, "");
}

Result<std::vector<DirEntry>> HierFs::ReaddirPage(const std::string& path, size_t limit,
                                                  const std::string& after_name,
                                                  bool* has_more) const {
  HFAD_ASSIGN_OR_RETURN(Ino ino, ResolvePath(path));

  std::shared_mutex* lock = DirLock(ino);
  stats::Add(stats::Counter::kLockAcquisitions);
  std::shared_lock<std::shared_mutex> guard(*lock);

  HFAD_ASSIGN_OR_RETURN(Inode dir, GetInode(ino));
  if (!dir.is_dir()) {
    return Status::InvalidArgument("not a directory: " + path);
  }
  if (has_more != nullptr) {
    *has_more = false;
  }
  btree::BTree entries(pager_.get(), allocator_.get(), dir.data_root);
  std::vector<DirEntry> out;
  Status decode_status;
  // Keyset pagination: resume at the first name strictly after `after_name` (entry
  // names never contain NUL, so appending one forms the immediate successor key).
  std::string start = after_name.empty() ? std::string() : after_name + '\0';
  HFAD_RETURN_IF_ERROR(entries.Scan(start, "", [&](Slice name, Slice value) {
    if (limit != 0 && out.size() == limit) {
      if (has_more != nullptr) {
        *has_more = true;
      }
      return false;
    }
    Slice in(value);
    uint64_t child = 0;
    if (!GetVarint64(&in, &child)) {
      decode_status = Status::Corruption("bad directory entry");
      return false;
    }
    out.push_back(DirEntry{name.ToString(), child, false});
    return true;
  }));
  HFAD_RETURN_IF_ERROR(decode_status);
  for (DirEntry& e : out) {
    HFAD_ASSIGN_OR_RETURN(Inode child, GetInode(e.ino));
    e.is_dir = child.is_dir();
  }
  return out;
}

Result<Inode> HierFs::Stat(const std::string& path) const {
  HFAD_ASSIGN_OR_RETURN(Ino ino, ResolvePath(path));
  return GetInode(ino);
}

Result<Inode> HierFs::StatIno(Ino ino) const { return GetInode(ino); }

uint64_t HierFs::inode_count() const { return inode_table_->Count(); }

// ---------------------------------------------------------------- file IO

Status HierFs::Read(Ino ino, uint64_t offset, size_t n, std::string* out) const {
  HFAD_ASSIGN_OR_RETURN(Inode inode, GetInode(ino));
  if (inode.is_dir()) {
    return Status::InvalidArgument("cannot read a directory");
  }
  extent::ExtentTree data(pager_.get(), allocator_.get(), inode.data_root);
  return data.Read(offset, n, out);
}

Status HierFs::Write(Ino ino, uint64_t offset, Slice data_in) {
  std::lock_guard<std::mutex> ilock(inode_mu_);
  HFAD_ASSIGN_OR_RETURN(Inode inode, GetInode(ino));
  if (inode.is_dir()) {
    return Status::InvalidArgument("cannot write a directory");
  }
  extent::ExtentTree data(pager_.get(), allocator_.get(), inode.data_root);
  HFAD_RETURN_IF_ERROR(data.Write(offset, data_in));
  inode.data_root = data.root();
  inode.size = data.Size();
  inode.mtime_ns = NowNs();
  return PutInode(ino, inode);
}

Status HierFs::Truncate(Ino ino, uint64_t new_size) {
  std::lock_guard<std::mutex> ilock(inode_mu_);
  HFAD_ASSIGN_OR_RETURN(Inode inode, GetInode(ino));
  extent::ExtentTree data(pager_.get(), allocator_.get(), inode.data_root);
  uint64_t size = data.Size();
  if (new_size < size) {
    HFAD_RETURN_IF_ERROR(data.RemoveRange(new_size, size - new_size));
  } else if (new_size > size) {
    HFAD_RETURN_IF_ERROR(data.Write(size, std::string(new_size - size, '\0')));
  }
  inode.data_root = data.root();
  inode.size = data.Size();
  inode.mtime_ns = NowNs();
  return PutInode(ino, inode);
}

Status HierFs::InsertViaRewrite(Ino ino, uint64_t offset, Slice data_in) {
  // POSIX's only way to grow the middle of a file: read the tail, overwrite from the
  // insertion point, and rewrite the (shifted) tail — O(file size - offset) bytes of IO.
  std::lock_guard<std::mutex> ilock(inode_mu_);
  HFAD_ASSIGN_OR_RETURN(Inode inode, GetInode(ino));
  extent::ExtentTree data(pager_.get(), allocator_.get(), inode.data_root);
  uint64_t size = data.Size();
  if (offset > size) {
    return Status::OutOfRange("insert past end of file");
  }
  std::string tail;
  HFAD_RETURN_IF_ERROR(data.Read(offset, size - offset, &tail));
  HFAD_RETURN_IF_ERROR(data.Write(offset, data_in));
  HFAD_RETURN_IF_ERROR(data.Write(offset + data_in.size(), tail));
  inode.data_root = data.root();
  inode.size = data.Size();
  inode.mtime_ns = NowNs();
  return PutInode(ino, inode);
}

}  // namespace hierfs
}  // namespace hfad
