// hierfs: the hierarchical baseline — "historical practice" for the paper's benches.
//
// The paper's conclusion invites "comparisons ... relative to historical practice", and
// its Section 2 argues against precisely this design. hierfs therefore implements the
// classic FFS-shaped architecture as faithfully as the comparison requires, on the SAME
// substrate as hFAD (block device, pager, buddy allocator, btrees, extent trees) so that
// measured differences come from the *namespace architecture*, not the plumbing:
//
//   * an inode table (btree: ino -> inode record);
//   * directories as per-directory btrees of name -> ino;
//   * component-at-a-time path resolution, read-locking every directory on the way down
//     (the §2.3 shared-ancestor synchronization) and counting kDirComponentsWalked,
//     kIndexTraversals, and kLockAcquisitions/kLockContentions as it goes;
//   * file data in extent trees, like hFAD, so data-path costs cancel out.
//
// Unlike hFAD, a file's canonical name IS its position in the tree: renameing a
// directory is O(1) here (pointer swing in the parent) but finding a file by anything
// other than its path requires an external index layered ON TOP of files — which is
// exactly the four-plus-index-traversal stack bench_traversals measures.
//
// hierfs is deliberately not journaled (neither was FFS); durability is Flush().
#ifndef HFAD_SRC_HIERFS_HIERFS_H_
#define HFAD_SRC_HIERFS_HIERFS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/btree/btree.h"
#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/storage/block_device.h"
#include "src/storage/buddy_allocator.h"
#include "src/storage/pager.h"
#include "src/storage/superblock.h"

namespace hfad {
namespace hierfs {

using Ino = uint64_t;

constexpr Ino kRootIno = 1;
constexpr uint32_t kModeDir = 0040000;

struct Inode {
  uint32_t mode = 0644;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint32_t nlink = 1;
  uint64_t size = 0;
  uint64_t mtime_ns = 0;
  uint64_t data_root = 0;  // Extent tree (file) or directory btree (dir) root.

  bool is_dir() const { return (mode & kModeDir) != 0; }
};

struct DirEntry {
  std::string name;
  Ino ino = 0;
  bool is_dir = false;
};

class HierFs {
 public:
  // Format a fresh hierarchical volume on `device` (root directory created).
  static Result<std::unique_ptr<HierFs>> Create(std::shared_ptr<BlockDevice> device);

  // Reopen a previously Flush()ed volume.
  static Result<std::unique_ptr<HierFs>> Open(std::shared_ptr<BlockDevice> device);

  HierFs(const HierFs&) = delete;
  HierFs& operator=(const HierFs&) = delete;

  // ---- namespace (component-at-a-time, per-directory locking) ----

  // Walk the path from "/" to its inode. This is the instrumented §2.3 code path.
  Result<Ino> ResolvePath(const std::string& path) const;

  Status Mkdir(const std::string& path, uint32_t mode = 0755);
  Result<Ino> CreateFile(const std::string& path, uint32_t mode = 0644);
  Status Unlink(const std::string& path);
  Status Rmdir(const std::string& path);
  // Hard link: a second directory entry for the same inode.
  Status Link(const std::string& existing, const std::string& link_path);
  // Rename. Within the tree this is cheap (entry moves between directory btrees) —
  // the hierarchical design's one structural advantage, kept honest here.
  Status Rename(const std::string& from, const std::string& to);
  Result<std::vector<DirEntry>> Readdir(const std::string& path) const;

  // Paged directory enumeration mirroring hFAD's FindOptions shape so the baseline and
  // the tag namespace can be compared on streaming consumers too: at most `limit`
  // entries (0 = all) strictly after `after_name` in name order; *has_more (optional)
  // reports whether entries remain past the page. Pages are keyset-anchored, so
  // concurrent creates/unlinks never duplicate an entry across pages.
  Result<std::vector<DirEntry>> ReaddirPage(const std::string& path, size_t limit,
                                            const std::string& after_name,
                                            bool* has_more = nullptr) const;
  Result<Inode> Stat(const std::string& path) const;
  Result<Inode> StatIno(Ino ino) const;

  // ---- file IO (by inode, like a kernel working on a resolved vnode) ----

  Status Read(Ino ino, uint64_t offset, size_t n, std::string* out) const;
  Status Write(Ino ino, uint64_t offset, Slice data);
  Status Truncate(Ino ino, uint64_t new_size);

  // POSIX has no insert: growing the middle of a file is read-shift-rewrite, which
  // bench_insert_middle measures against hFAD's extent-tree insert. Provided here so
  // the bench exercises a realistic in-FS implementation of the workaround.
  Status InsertViaRewrite(Ino ino, uint64_t offset, Slice data);

  // Persist everything (superblock + dirty pages). No journal, no crash atomicity.
  Status Flush();

  uint64_t inode_count() const;

 private:
  HierFs(std::shared_ptr<BlockDevice> device, Superblock sb);
  void InitStructures();

  Result<Inode> GetInode(Ino ino) const;
  Status PutInode(Ino ino, const Inode& inode);
  Result<std::pair<Ino, std::string>> WalkToParent(const std::string& path) const;
  // Look `name` up in directory `dir` (dir lock must be held by the caller).
  Result<Ino> DirLookup(const Inode& dir, Slice name) const;

  // Per-directory lock, created on demand.
  std::shared_mutex* DirLock(Ino ino) const;

  std::shared_ptr<BlockDevice> device_;
  Superblock sb_;
  std::unique_ptr<BuddyAllocator> allocator_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<btree::BTree> inode_table_;
  std::atomic<uint64_t> next_ino_{kRootIno + 1};

  mutable std::mutex lock_table_mu_;
  mutable std::unordered_map<Ino, std::unique_ptr<std::shared_mutex>> lock_table_;
  // Serializes inode-record read-modify-write (the classic global inode lock).
  mutable std::mutex inode_mu_;
};

}  // namespace hierfs
}  // namespace hfad

#endif  // HFAD_SRC_HIERFS_HIERFS_H_
