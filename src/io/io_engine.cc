#include "src/io/io_engine.h"

#include <utility>

namespace hfad {
namespace io {

size_t IoEngine::Poll(std::vector<IoCompletion>* out) {
  std::deque<IoCompletion> drained;
  {
    std::lock_guard<std::mutex> lock(cq_mu_);
    drained.swap(cq_);
  }
  size_t n = drained.size();
  for (auto& c : drained) out->push_back(std::move(c));
  return n;
}

size_t IoEngine::Wait(std::vector<IoCompletion>* out) {
  std::deque<IoCompletion> drained;
  {
    std::unique_lock<std::mutex> lock(cq_mu_);
    cq_cv_.wait(lock, [this] {
      return !cq_.empty() ||
             (cq_shutdown_ && completed_.load(std::memory_order_acquire) >=
                                  submitted_.load(std::memory_order_acquire));
    });
    drained.swap(cq_);
  }
  size_t n = drained.size();
  for (auto& c : drained) out->push_back(std::move(c));
  return n;
}

void IoEngine::Deliver(std::function<void(IoCompletion)> cb,
                       IoCompletion completion) {
  // Count the completion before dispatch so in_flight() never under-reports while
  // a callback is still running, and so Wait()'s shutdown predicate (completed >=
  // submitted) only fires once everything has been handed off.
  completed_.fetch_add(1, std::memory_order_release);
  if (cb) {
    cb(std::move(completion));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(cq_mu_);
    cq_.push_back(std::move(completion));
  }
  cq_cv_.notify_all();
}

void IoEngine::NotifyShutdownForWaiters() {
  {
    std::lock_guard<std::mutex> lock(cq_mu_);
    cq_shutdown_ = true;
  }
  cq_cv_.notify_all();
}

std::unique_ptr<IoEngine> CreateIoEngine(BlockDevice* device,
                                         const IoEngineOptions& options) {
  int threads = options.threads > 0 ? options.threads : 1;
  if (options.backend != IoBackend::kThreadPool) {
    // kAuto / kUring: the uring factory itself checks HFAD_WITH_URING, the
    // device's native fd, and whether io_uring_setup works in this process
    // (seccomp filters commonly deny it); null means "use the fallback".
    if (auto uring = CreateUringEngine(device, threads)) return uring;
  }
  return CreateThreadPoolEngine(device, threads);
}

Status SubmitAndWait(IoEngine* engine, IoRequest req) {
  struct WaitState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
  };
  auto state = std::make_shared<WaitState>();
  req.on_complete = [state](IoCompletion c) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->status = std::move(c.status);
      state->done = true;
    }
    state->cv.notify_one();
  };
  auto handle = engine->Submit(std::move(req));
  if (!handle.ok()) return handle.status();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] { return state->done; });
  return state->status;
}

}  // namespace io
}  // namespace hfad
