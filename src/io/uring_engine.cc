// io_uring IoEngine backend (Linux). Uses raw syscalls — io_uring_setup /
// io_uring_enter plus hand-mapped SQ/CQ rings — so no liburing dependency. Only
// compiled under HFAD_WITH_URING (CMake detects <linux/io_uring.h>); even then
// CreateUringEngine probes io_uring_setup at runtime and returns null when the
// kernel or a seccomp filter refuses, so callers transparently fall back to the
// thread-pool backend.
//
// Shape: submitters fill SQEs under sq_mu_ and flush them with a non-blocking
// io_uring_enter; one reactor thread parks in io_uring_enter(GETEVENTS) and
// drains CQEs, resolving per-op state and calling IoEngine::Deliver. A writev
// becomes one IORING_OP_WRITEV per coalesced run (CoalesceExtents — same
// sort/merge and stats accounting as the synchronous WriteBatch paths), completed
// when the last run's CQE lands, first error wins.
#include "src/io/io_engine.h"

#ifdef HFAD_WITH_URING

#include <linux/io_uring.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <thread>
#include <unordered_map>
#include <utility>

namespace hfad {
namespace io {
namespace {

long SysUringSetup(unsigned entries, struct io_uring_params* p) {
  return syscall(__NR_io_uring_setup, entries, p);
}

long SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                   unsigned flags) {
  return syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
                 nullptr, 0);
}

// Ring pointers live in kernel-shared memory; accesses use the same
// acquire/release pairing liburing uses (kernel releases CQ tail / acquires SQ
// tail, we do the mirror image).
uint32_t LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
void StoreRelease(unsigned* p, uint32_t v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

constexpr uint64_t kWakeUserData = 0;  // NOP used to kick the reactor at shutdown.

class UringEngine : public IoEngine {
 public:
  // Takes ownership of ring_fd and the three mappings (sq may alias cq under
  // IORING_FEAT_SINGLE_MMAP).
  UringEngine(BlockDevice* device, int ring_fd, const io_uring_params& params,
              void* sq_ring, size_t sq_ring_bytes, void* cq_ring,
              size_t cq_ring_bytes, io_uring_sqe* sqes, size_t sqes_bytes)
      : device_(device),
        ring_fd_(ring_fd),
        file_fd_(device->native_fd()),
        sq_ring_(sq_ring),
        sq_ring_bytes_(sq_ring_bytes),
        cq_ring_(cq_ring),
        cq_ring_bytes_(cq_ring_bytes),
        sqes_(sqes),
        sqes_bytes_(sqes_bytes) {
    auto* sq = static_cast<char*>(sq_ring);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_entries_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_entries);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<char*>(cq_ring);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    reactor_ = std::thread([this] { ReactorMain(); });
  }

  ~UringEngine() override {
    Shutdown();
    if (sqes_) munmap(sqes_, sqes_bytes_);
    if (cq_ring_ && cq_ring_ != sq_ring_) munmap(cq_ring_, cq_ring_bytes_);
    if (sq_ring_) munmap(sq_ring_, sq_ring_bytes_);
    if (ring_fd_ >= 0) close(ring_fd_);
  }

  Result<IoHandle> Submit(IoRequest req) override {
    auto op = std::make_unique<OpState>();
    op->user_data = req.user_data;
    op->on_complete = std::move(req.on_complete);

    std::lock_guard<std::mutex> sq_lock(sq_mu_);
    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::IoError("io engine is shut down");
    }
    uint64_t id = next_op_id_++;

    // Bounds are enforced up front: the kernel would happily extend the file
    // past the device's fixed capacity. Failing here still honors exactly-once —
    // the op is resolved through the normal CQE path via a NOP carrying -errno.
    Status bounds = Status::Ok();
    unsigned sqes_needed = 1;
    std::vector<blockdev_internal::WriteRun> runs;
    switch (req.op) {
      case IoOp::kRead:
        bounds = RangeCheck(req.offset, req.size);
        op->read_buf.resize(req.size);
        op->expected_bytes = req.size;
        break;
      case IoOp::kWrite:
        bounds = RangeCheck(req.offset, req.data.size());
        op->write_data = req.data;  // Caller keeps the buffer alive.
        op->expected_bytes = req.data.size();
        break;
      case IoOp::kWritev: {
        runs = blockdev_internal::CoalesceExtents(&req.extents);
        op->extents = std::move(req.extents);  // Runs' Slices point into these.
        for (const auto& run : runs) {
          Status s = RangeCheck(run.offset, run.size);
          if (!s.ok()) {
            bounds = s;
            break;
          }
        }
        if (bounds.ok() && !runs.empty()) {
          sqes_needed = static_cast<unsigned>(runs.size());
          op->iovecs.resize(runs.size());
          for (size_t i = 0; i < runs.size(); ++i) {
            for (const Slice& part : runs[i].parts) {
              op->iovecs[i].push_back(
                  {const_cast<char*>(part.data()), part.size()});
            }
          }
        }
        break;
      }
      case IoOp::kSync:
        break;
    }
    if (!bounds.ok()) {
      op->forced_error = bounds;
      runs.clear();
      sqes_needed = 1;  // NOP to route the failure through the reactor.
    }
    if (sqes_needed > sq_entries_) {
      return Status::IoError("writev exceeds io_uring queue depth");
    }
    op->remaining = sqes_needed;
    IoHandle handle = RecordSubmit();

    // Precompute every SQE's fields BEFORE publishing the op: once it is in
    // ops_, the reactor may touch (and on the final CQE, free) the state at any
    // moment, and the only submit-to-reactor ordering visible to a race checker
    // is the state_mu_ hand-off. After the emplace the op is never dereferenced
    // on this thread again.
    struct PreparedSqe {
      uint8_t opcode = IORING_OP_NOP;
      uint64_t addr = 0;
      unsigned len = 0;
      uint64_t off = 0;
      unsigned fsync_flags = 0;
    };
    std::vector<PreparedSqe> prepared(sqes_needed);
    if (bounds.ok()) {
      switch (req.op) {
        case IoOp::kRead:
          prepared[0] = {IORING_OP_READ,
                         reinterpret_cast<uint64_t>(op->read_buf.data()),
                         static_cast<unsigned>(op->read_buf.size()), req.offset,
                         0};
          break;
        case IoOp::kWrite:
          prepared[0] = {IORING_OP_WRITE,
                         reinterpret_cast<uint64_t>(op->write_data.data()),
                         static_cast<unsigned>(op->write_data.size()),
                         req.offset, 0};
          break;
        case IoOp::kWritev:
          // runs.empty() (every extent empty) leaves the single NOP default.
          for (size_t i = 0; i < runs.size(); ++i) {
            prepared[i] = {IORING_OP_WRITEV,
                           reinterpret_cast<uint64_t>(op->iovecs[i].data()),
                           static_cast<unsigned>(op->iovecs[i].size()),
                           runs[i].offset, 0};
          }
          break;
        case IoOp::kSync:
          // IORING_FSYNC_DATASYNC mirrors fdatasync().
          prepared[0] = {IORING_OP_FSYNC, 0, 0, 0, IORING_FSYNC_DATASYNC};
          break;
      }
    }

    {
      std::lock_guard<std::mutex> st_lock(state_mu_);
      ops_.emplace(id, std::move(op));
    }

    // Fill + flush the SQEs. SQ-full is transient (the kernel consumes entries
    // inside io_uring_enter), so flushing and retrying cannot spin forever.
    unsigned filled = 0;
    while (filled < sqes_needed) {
      unsigned tail = *sq_tail_;
      unsigned head = LoadAcquire(sq_head_);
      if (tail - head >= sq_entries_) {
        FlushSq(0);
        continue;
      }
      unsigned idx = tail & sq_mask_;
      io_uring_sqe* sqe = &sqes_[idx];
      memset(sqe, 0, sizeof(*sqe));
      sqe->fd = file_fd_;
      sqe->user_data = id;
      sqe->opcode = prepared[filled].opcode;
      sqe->addr = prepared[filled].addr;
      sqe->len = prepared[filled].len;
      sqe->off = prepared[filled].off;
      sqe->fsync_flags = prepared[filled].fsync_flags;
      sq_array_[idx] = idx;
      StoreRelease(sq_tail_, tail + 1);
      ++filled;
    }
    FlushSq(filled);
    return handle;
  }

  void Shutdown() override {
    {
      std::lock_guard<std::mutex> sq_lock(sq_mu_);
      if (shutdown_.exchange(true, std::memory_order_acq_rel)) {
        if (reactor_.joinable()) reactor_.join();
        return;
      }
      SubmitWakeNopLocked();
    }
    if (reactor_.joinable()) reactor_.join();
    NotifyShutdownForWaiters();
  }

  const char* backend_name() const override { return "io_uring"; }

 private:
  struct OpState {
    uint64_t user_data = 0;
    std::function<void(IoCompletion)> on_complete;
    unsigned remaining = 1;  // CQEs outstanding (writev: one per run).
    Status first_error = Status::Ok();
    Status forced_error = Status::Ok();  // Pre-submit bounds failure.
    uint64_t done_bytes = 0;
    uint64_t expected_bytes = 0;  // kRead / kWrite short-transfer detection.
    std::string read_buf;
    Slice write_data;
    std::vector<WriteExtent> extents;
    std::vector<std::vector<struct iovec>> iovecs;
  };

  Status RangeCheck(uint64_t offset, uint64_t size) const {
    uint64_t cap = device_->Size();
    if (offset > cap || size > cap - offset) {
      return Status::IoError("io beyond device capacity");
    }
    return Status::Ok();
  }

  void FlushSq(unsigned submitted_hint) {
    // to_submit just tells the kernel how many new entries to look at; it reads
    // the ring tail itself, so a conservative sq_entries_ is always safe.
    unsigned n = submitted_hint ? submitted_hint : sq_entries_;
    while (SysUringEnter(ring_fd_, n, 0, 0) < 0 && errno == EINTR) {
    }
  }

  void SubmitWakeNopLocked() {
    for (;;) {
      unsigned tail = *sq_tail_;
      unsigned head = LoadAcquire(sq_head_);
      if (tail - head >= sq_entries_) {
        FlushSq(0);
        continue;
      }
      unsigned idx = tail & sq_mask_;
      io_uring_sqe* sqe = &sqes_[idx];
      memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_NOP;
      sqe->user_data = kWakeUserData;
      sq_array_[idx] = idx;
      StoreRelease(sq_tail_, tail + 1);
      FlushSq(1);
      return;
    }
  }

  void ReactorMain() {
    for (;;) {
      bool drained_any = DrainCq();
      bool stopping = shutdown_.load(std::memory_order_acquire);
      if (stopping) {
        std::lock_guard<std::mutex> st_lock(state_mu_);
        if (ops_.empty()) return;
      }
      if (drained_any) continue;
      long rc = SysUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      if (rc < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
        // Ring is wedged; abort everything still pending, exactly once each.
        AbortAllPending(Status::IoError(std::string("io_uring_enter: ") +
                                        strerror(errno)));
        return;
      }
    }
  }

  bool DrainCq() {
    bool any = false;
    unsigned head = *cq_head_;
    for (;;) {
      unsigned tail = LoadAcquire(cq_tail_);
      if (head == tail) break;
      io_uring_cqe cqe = cqes_[head & cq_mask_];
      StoreRelease(cq_head_, ++head);
      any = true;
      if (cqe.user_data == kWakeUserData) continue;
      ResolveCqe(cqe);
    }
    return any;
  }

  void ResolveCqe(const io_uring_cqe& cqe) {
    std::unique_ptr<OpState> finished;
    {
      std::lock_guard<std::mutex> st_lock(state_mu_);
      auto it = ops_.find(cqe.user_data);
      if (it == ops_.end()) return;  // Defensive: unknown CQE.
      OpState* op = it->second.get();
      if (cqe.res < 0) {
        if (op->first_error.ok()) {
          op->first_error =
              Status::IoError(std::string("io_uring op: ") + strerror(-cqe.res));
        }
      } else {
        op->done_bytes += static_cast<uint64_t>(cqe.res);
      }
      if (--op->remaining > 0) return;
      finished = std::move(it->second);
      ops_.erase(it);
    }
    IoCompletion c;
    c.user_data = finished->user_data;
    if (!finished->forced_error.ok()) {
      c.status = finished->forced_error;
    } else if (!finished->first_error.ok()) {
      c.status = finished->first_error;
    } else if (finished->done_bytes < finished->expected_bytes) {
      c.status = Status::IoError("io_uring short transfer");
    } else {
      c.read_data = std::move(finished->read_buf);
    }
    Deliver(std::move(finished->on_complete), std::move(c));
  }

  void AbortAllPending(const Status& why) {
    std::unordered_map<uint64_t, std::unique_ptr<OpState>> orphans;
    {
      std::lock_guard<std::mutex> st_lock(state_mu_);
      orphans.swap(ops_);
    }
    for (auto& kv : orphans) {
      IoCompletion c;
      c.user_data = kv.second->user_data;
      c.status = why;
      Deliver(std::move(kv.second->on_complete), std::move(c));
    }
  }

  BlockDevice* const device_;
  const int ring_fd_;
  const int file_fd_;

  void* sq_ring_;
  size_t sq_ring_bytes_;
  void* cq_ring_;
  size_t cq_ring_bytes_;
  io_uring_sqe* sqes_;
  size_t sqes_bytes_;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  std::mutex sq_mu_;  // Serializes SQE fill + tail publish across submitters.
  uint64_t next_op_id_ = 1;  // 0 is the reactor wake token.
  std::atomic<bool> shutdown_{false};

  std::mutex state_mu_;  // Guards ops_; leaf — never held across Deliver.
  std::unordered_map<uint64_t, std::unique_ptr<OpState>> ops_;

  std::thread reactor_;
};

}  // namespace

std::unique_ptr<IoEngine> CreateUringEngine(BlockDevice* device,
                                            int depth_hint) {
  if (device->native_fd() < 0) return nullptr;
  unsigned entries = 256;
  while (entries < static_cast<unsigned>(depth_hint) && entries < 4096) {
    entries *= 2;
  }
  io_uring_params params;
  memset(&params, 0, sizeof(params));
  long fd = SysUringSetup(entries, &params);
  if (fd < 0) return nullptr;  // Old kernel or seccomp — use the thread pool.

  size_t sq_bytes = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  size_t cq_bytes =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_bytes = cq_bytes = sq_bytes > cq_bytes ? sq_bytes : cq_bytes;
  }
  void* sq_ring = mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, static_cast<int>(fd),
                       IORING_OFF_SQ_RING);
  if (sq_ring == MAP_FAILED) {
    close(static_cast<int>(fd));
    return nullptr;
  }
  void* cq_ring = sq_ring;
  if (!single_mmap) {
    cq_ring = mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, static_cast<int>(fd),
                   IORING_OFF_CQ_RING);
    if (cq_ring == MAP_FAILED) {
      munmap(sq_ring, sq_bytes);
      close(static_cast<int>(fd));
      return nullptr;
    }
  }
  size_t sqes_bytes = params.sq_entries * sizeof(io_uring_sqe);
  void* sqes = mmap(nullptr, sqes_bytes, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, static_cast<int>(fd),
                    IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    if (cq_ring != sq_ring) munmap(cq_ring, cq_bytes);
    munmap(sq_ring, sq_bytes);
    close(static_cast<int>(fd));
    return nullptr;
  }
  return std::unique_ptr<IoEngine>(new UringEngine(
      device, static_cast<int>(fd), params, sq_ring, sq_bytes, cq_ring,
      cq_bytes, static_cast<io_uring_sqe*>(sqes), sqes_bytes));
}

}  // namespace io
}  // namespace hfad

#else  // !HFAD_WITH_URING

namespace hfad {
namespace io {

std::unique_ptr<IoEngine> CreateUringEngine(BlockDevice*, int) {
  return nullptr;
}

}  // namespace io
}  // namespace hfad

#endif  // HFAD_WITH_URING
