// Portable IoEngine backend: N workers draining a submission deque and executing
// each request through the BlockDevice virtuals. Fault injection, write-budget
// accounting, and sync hooks on FaultyBlockDevice therefore behave identically to
// the synchronous paths — the device cannot tell who called it.
#include <thread>
#include <utility>

#include "src/io/io_engine.h"

namespace hfad {
namespace io {
namespace {

class ThreadPoolEngine : public IoEngine {
 public:
  ThreadPoolEngine(BlockDevice* device, int threads) : device_(device) {
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerMain(); });
    }
  }

  ~ThreadPoolEngine() override { Shutdown(); }

  Result<IoHandle> Submit(IoRequest req) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        return Status::IoError("io engine is shut down");
      }
      IoHandle handle = RecordSubmit();
      queue_.push_back(std::move(req));
      work_cv_.notify_one();
      return handle;
    }
  }

  void Shutdown() override {
    std::deque<IoRequest> orphans;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      shutdown_ = true;
      // Requests accepted but not yet picked up are aborted here (exactly once);
      // requests a worker already holds run to normal completion below.
      orphans.swap(queue_);
    }
    work_cv_.notify_all();
    for (auto& req : orphans) {
      IoCompletion c;
      c.user_data = req.user_data;
      c.status = Status::IoError("aborted by engine shutdown");
      Deliver(std::move(req.on_complete), std::move(c));
    }
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    NotifyShutdownForWaiters();
  }

  const char* backend_name() const override { return "thread_pool"; }

 private:
  void WorkerMain() {
    for (;;) {
      IoRequest req;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) return;  // shutdown_ with nothing left to run.
        req = std::move(queue_.front());
        queue_.pop_front();
      }
      IoCompletion c;
      c.user_data = req.user_data;
      switch (req.op) {
        case IoOp::kRead:
          c.status = device_->Read(req.offset, req.size, &c.read_data);
          break;
        case IoOp::kWrite:
          c.status = device_->Write(req.offset, req.data);
          break;
        case IoOp::kWritev:
          c.status = device_->WriteBatch(req.extents);
          break;
        case IoOp::kSync:
          c.status = device_->Sync();
          break;
      }
      Deliver(std::move(req.on_complete), std::move(c));
    }
  }

  BlockDevice* const device_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<IoRequest> queue_;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace

std::unique_ptr<IoEngine> CreateThreadPoolEngine(BlockDevice* device,
                                                 int threads) {
  return std::unique_ptr<IoEngine>(
      new ThreadPoolEngine(device, threads > 0 ? threads : 1));
}

}  // namespace io
}  // namespace hfad
