// Completion-based I/O engine: explicit submission/completion semantics over a
// BlockDevice.
//
// Every op today burns a thread for the full device round-trip; the group-commit
// leader still parks inside Sync(). The IoEngine splits each op into a non-blocking
// Submit and an asynchronous completion, the DAOS/Ceph ObjectStore shape: callers
// submit IoRequests (read | write | writev | sync) tagged with user_data, and
// completions are delivered either to the request's on_complete callback (dispatched
// on an engine-internal completion thread) or to a completion queue drained with
// Poll()/Wait(). The thread count then stops being the ceiling on in-flight ops —
// the journal keeps thousands of commits in flight on a handful of engine threads.
//
// Two backends behind one interface (CreateIoEngine picks at runtime):
//
//   * thread-pool — portable: N workers pop a submission queue and run the device's
//     own virtual Read/Write/WriteBatch/Sync. Because the device methods themselves
//     execute, FaultyBlockDevice write-budget and sync-hook accounting is identical
//     through the async path by construction, so the crash harness torn-write sweeps
//     exercise the engine unchanged.
//   * io_uring — Linux, raw syscalls (no liburing dependency), compiled under
//     HFAD_WITH_URING and selected only when the device exposes a native fd
//     (FileBlockDevice) and io_uring_setup succeeds at runtime (seccomp-restricted
//     environments fall back to the thread pool).
//
// Completion contract (the engine's one hard invariant): every successfully
// submitted request completes EXACTLY once — executed, failed, or aborted by
// Shutdown — and buffers referenced by a request (write data, writev extents) must
// stay valid until its completion fires. Completion ordering across requests is
// unspecified; callers needing write-then-sync ordering chain the second submit
// from the first completion (see Journal's async commit state machine).
//
// Callback rules (docs/CONCURRENCY.md "completion threads"): on_complete runs on an
// engine-internal thread with NO engine locks held. It may take leaf locks
// (journal mu_, pager stripe/writeback locks) and may Submit follow-up requests,
// but must never block on another completion or acquire the volume lock.
#ifndef HFAD_SRC_IO_IO_ENGINE_H_
#define HFAD_SRC_IO_IO_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/common/status.h"
#include "src/storage/block_device.h"

namespace hfad {
namespace io {

enum class IoOp : uint8_t {
  kRead = 0,   // offset/size -> IoCompletion::read_data
  kWrite = 1,  // offset/data
  kWritev = 2, // extents (sorted + coalesced like BlockDevice::WriteBatch)
  kSync = 3,   // durability barrier for previously COMPLETED writes
};

// Delivered exactly once per submitted request.
struct IoCompletion {
  uint64_t user_data = 0;
  Status status;
  std::string read_data;  // kRead only.
};

// One submission. Buffers behind `data` / `extents` must outlive the completion.
struct IoRequest {
  IoOp op = IoOp::kWrite;
  uint64_t offset = 0;               // kRead / kWrite.
  size_t size = 0;                   // kRead.
  Slice data;                        // kWrite.
  std::vector<WriteExtent> extents;  // kWritev.
  uint64_t user_data = 0;
  // When set, the completion is dispatched to this callback on an engine thread and
  // never enters the Poll/Wait queue. When null, Poll()/Wait() deliver it.
  std::function<void(IoCompletion)> on_complete;
};

// Opaque per-submission id (monotonic within an engine).
using IoHandle = uint64_t;

enum class IoBackend : uint8_t {
  kAuto = 0,        // io_uring when built + device + kernel allow it, else thread pool.
  kThreadPool = 1,  // Portable worker-pool backend.
  kUring = 2,       // io_uring or bust (CreateIoEngine falls back with a note).
};

struct IoEngineOptions {
  // Submission workers (thread-pool backend) / queue depth hint (io_uring).
  int threads = 2;
  IoBackend backend = IoBackend::kAuto;
};

// Shared engine shell: gauges and the no-callback completion queue. Backends call
// Deliver() for every finished op; it routes to the callback or the queue.
class IoEngine {
 public:
  virtual ~IoEngine() = default;

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  // Enqueue one request. Never blocks on device IO; fails only after Shutdown().
  virtual Result<IoHandle> Submit(IoRequest req) = 0;

  // Drain in-flight ops and stop. Requests accepted but not yet started complete
  // with IoError("aborted by engine shutdown") — still exactly once. Idempotent;
  // the destructor calls it.
  virtual void Shutdown() = 0;

  virtual const char* backend_name() const = 0;

  // Non-blocking: move every queued no-callback completion into *out (appended).
  // Returns the number delivered.
  size_t Poll(std::vector<IoCompletion>* out);

  // Block until at least one no-callback completion is available (delivering all
  // queued), or until the engine is shut down with nothing left in flight
  // (returns 0).
  size_t Wait(std::vector<IoCompletion>* out);

  // ---- Gauges (DumpMetrics "io" block) ----
  uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }
  uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  uint64_t in_flight() const {
    uint64_t s = submitted();
    uint64_t c = completed();
    return s > c ? s - c : 0;
  }
  uint64_t max_queue_depth() const {
    return max_depth_.load(std::memory_order_relaxed);
  }

 protected:
  IoEngine() = default;

  // Account one accepted submission; returns its handle.
  IoHandle RecordSubmit() {
    uint64_t s = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t depth = s - completed_.load(std::memory_order_relaxed);
    uint64_t prev = max_depth_.load(std::memory_order_relaxed);
    while (depth > prev &&
           !max_depth_.compare_exchange_weak(prev, depth, std::memory_order_relaxed)) {
    }
    return s;
  }

  // Deliver one finished op: run the callback (engine thread, no locks held) or
  // queue it for Poll/Wait. The exactly-once contract is the caller's to uphold.
  void Deliver(std::function<void(IoCompletion)> cb, IoCompletion completion);

  // Wake Wait()ers blocked on an engine that is going idle-forever.
  void NotifyShutdownForWaiters();

 private:
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> max_depth_{0};

  std::mutex cq_mu_;
  std::condition_variable cq_cv_;
  std::deque<IoCompletion> cq_;
  bool cq_shutdown_ = false;
};

// Build an engine for `device`. Backend choice: kThreadPool always works; kAuto
// (and kUring) use io_uring only when HFAD_WITH_URING is compiled in, the device
// has a native fd, and io_uring_setup succeeds at runtime — otherwise the thread
// pool is returned. Never fails: the thread-pool backend has no preconditions.
std::unique_ptr<IoEngine> CreateIoEngine(BlockDevice* device,
                                         const IoEngineOptions& options);

// Convenience: submit one request and block until its completion, returning its
// status. Used by synchronous paths (pager Flush) that still want the engine to
// carry the IO so fault injection and gauges see one code path.
Status SubmitAndWait(IoEngine* engine, IoRequest req);

// Internal backend factories (io_engine.cc / thread_pool_engine.cc /
// uring_engine.cc). CreateUringEngine returns null when unsupported.
std::unique_ptr<IoEngine> CreateThreadPoolEngine(BlockDevice* device, int threads);
std::unique_ptr<IoEngine> CreateUringEngine(BlockDevice* device, int depth_hint);

}  // namespace io
}  // namespace hfad

#endif  // HFAD_SRC_IO_IO_ENGINE_H_
