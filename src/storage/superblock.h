// On-disk volume layout and the superblock that anchors it.
//
// Layout of an hFAD volume on a BlockDevice:
//
//   [0, 4K)                superblock (CRC-protected, written on every Flush)
//   [4K, 4K + alloc_area)  allocator snapshot area (length in superblock)
//   [.., .. + journal)     journal region (fixed size ring)
//   [heap_start, end)      buddy-allocated heap: btree pages, extents, postings
//
// The superblock stores the geometry plus the root pointers of the volume's top-level
// structures (object table, index directory). It is the single source of truth on open.
// The 4 KiB region holds TWO identical CRC-protected 2 KiB slots: a crash can tear the
// superblock write anywhere and still leave one slot intact (fully new or fully old —
// either is recoverable, because the journal's checkpoint epilogue carries the roots).
#ifndef HFAD_SRC_STORAGE_SUPERBLOCK_H_
#define HFAD_SRC_STORAGE_SUPERBLOCK_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace hfad {

struct Superblock {
  static constexpr uint32_t kMagic = 0x68464144;  // "hFAD"
  static constexpr uint32_t kVersion = 3;         // v3: checksum region; v2: dual-slot layout.
  static constexpr uint64_t kSuperblockSize = 4096;
  static constexpr uint64_t kSlotSize = kSuperblockSize / 2;

  uint64_t device_size = 0;
  uint64_t alloc_area_offset = 0;  // Where the allocator snapshot lives.
  uint64_t alloc_area_size = 0;
  uint64_t alloc_snapshot_size = 0;  // Live bytes within the snapshot area.
  uint64_t journal_offset = 0;
  uint64_t journal_size = 0;
  uint64_t heap_offset = 0;   // Buddy region start.
  uint64_t heap_size = 0;     // Buddy region size (power of two).
  uint64_t object_table_root = 0;  // Btree root page offset (0 = empty).
  uint64_t index_dir_root = 0;     // Index-store directory btree root (0 = empty).
  uint64_t next_oid = 1;           // Next unallocated object id.
  uint64_t journal_sequence = 0;   // First journal sequence not yet checkpointed.
  // v3 checksum region: per-page CRC table persisted at checkpoint. All three fields
  // are 0 on volumes created before v3 (and on v1/v2 decode), which disables page
  // checksumming — pre-existing volumes keep opening and working unchecked.
  uint64_t cksum_offset = 0;       // Checksum region start (0 = no region).
  uint64_t cksum_size = 0;         // Checksum region byte size.
  uint64_t cksum_generation = 0;   // Generation the region must carry to be trusted.

  // Serialize to exactly kSuperblockSize bytes with trailing CRC.
  std::string Encode() const;
  // Validate magic/version/CRC and decode. buf must be kSuperblockSize bytes.
  static Result<Superblock> Decode(const std::string& buf);
};

}  // namespace hfad

#endif  // HFAD_SRC_STORAGE_SUPERBLOCK_H_
