#include "src/storage/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hfad {

namespace {

Status RangeCheck(uint64_t offset, size_t size, uint64_t capacity) {
  if (offset > capacity || size > capacity - offset) {
    return Status::OutOfRange("device access [" + std::to_string(offset) + ", +" +
                              std::to_string(size) + ") beyond capacity " +
                              std::to_string(capacity));
  }
  return Status::Ok();
}

}  // namespace

MemoryBlockDevice::MemoryBlockDevice(uint64_t size_bytes) : data_(size_bytes, 0) {}

Status MemoryBlockDevice::Read(uint64_t offset, size_t size, std::string* out) const {
  HFAD_RETURN_IF_ERROR(RangeCheck(offset, size, data_.size()));
  out->assign(data_.data() + offset, size);
  return Status::Ok();
}

Status MemoryBlockDevice::Write(uint64_t offset, Slice data) {
  HFAD_RETURN_IF_ERROR(RangeCheck(offset, data.size(), data_.size()));
  memcpy(data_.data() + offset, data.data(), data.size());
  return Status::Ok();
}

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(const std::string& path,
                                                               uint64_t size_bytes) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(size_bytes)) != 0) {
    ::close(fd);
    return Status::IoError("ftruncate " + path + ": " + strerror(errno));
  }
  return std::unique_ptr<FileBlockDevice>(new FileBlockDevice(fd, size_bytes));
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status FileBlockDevice::Read(uint64_t offset, size_t size, std::string* out) const {
  HFAD_RETURN_IF_ERROR(RangeCheck(offset, size, size_));
  out->resize(size);
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::pread(fd_, out->data() + done, size - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pread: ") + strerror(errno));
    }
    if (n == 0) {
      // Sparse tail of a fresh file: zero-fill, matching MemoryBlockDevice semantics.
      memset(out->data() + done, 0, size - done);
      break;
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FileBlockDevice::Write(uint64_t offset, Slice data) {
  HFAD_RETURN_IF_ERROR(RangeCheck(offset, data.size(), size_));
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("pwrite: ") + strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FileBlockDevice::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(std::string("fdatasync: ") + strerror(errno));
  }
  return Status::Ok();
}

Status FaultyBlockDevice::Write(uint64_t offset, Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  writes_attempted_++;
  if (write_budget_ < 0) {
    return base_->Write(offset, data);
  }
  if (write_budget_ == 0) {
    if (torn_writes_ && !data.empty()) {
      // Persist a deterministic partial prefix once, then fail everything.
      size_t torn = data.size() / 2;
      if (torn > 0) {
        (void)base_->Write(offset, Slice(data.data(), torn));
      }
      torn_writes_ = false;  // Only one torn write per crash.
    }
    return Status::IoError("write budget exhausted (injected crash)");
  }
  write_budget_--;
  return base_->Write(offset, data);
}

Status FaultyBlockDevice::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (write_budget_ == 0) {
    return Status::IoError("sync after injected crash");
  }
  return base_->Sync();
}

void FaultyBlockDevice::SetWriteBudget(int64_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  write_budget_ = budget;
}

}  // namespace hfad
